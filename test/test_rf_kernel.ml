(* PR-9 tests for the incremental rf-consistency kernel.

   The kernel contract: [read_candidates] and the allocation-free
   [read_window]/[read_candidate] pair must return exactly the writes
   the specification-style rescan [read_candidates_ref] returns — with
   the kernel on (saturated summaries + memoized foreign floors) and
   off (full per-rule scan) — at every point of randomized commit
   sequences mixing stores, loads, CAS-failure loads, RMWs, fences and
   arena mark/restore cycles; and a kernel-on exploration must produce
   bit-identical graph sets, bug lists and verdicts to a kernel-off one
   across the whole registry, serial and under [-j2]. *)

module E = C11.Execution
module A = C11.Action
module B = Structures.Benchmark
module Ords = Structures.Ords
open C11.Memory_order

let sorted_ids l = List.sort Stdlib.compare (List.map (fun (a : A.t) -> a.A.id) l)

let window_ids x ~tid ~mo ~loc =
  let n = E.read_window x ~tid ~mo ~loc in
  List.sort Stdlib.compare (List.init n (fun i -> (E.read_candidate x ~loc i).A.id))

(* ------------------------------------------------------------------ *)
(* Randomized window differential *)

let store_mos = [| Relaxed; Release; Seq_cst |]
let load_mos = [| Relaxed; Acquire; Seq_cst |]
let rmw_mos = [| Relaxed; Acquire; Release; Acq_rel; Seq_cst |]
let fence_mos = [| Acquire; Release; Acq_rel; Seq_cst |]

(* Every query surface agrees with the oracle, for both executions, and
   the two executions agree with each other. *)
let check_agree ~where xk xr ~nthreads locs =
  for tid = 0 to nthreads - 1 do
    Array.iter
      (fun mo ->
        Array.iter
          (fun loc ->
            let oracle = sorted_ids (E.read_candidates_ref xk ~tid ~mo ~loc) in
            let check what got =
              Alcotest.(check (list int)) (Printf.sprintf "%s: %s = oracle" where what) oracle got
            in
            check "kernel-on candidates" (sorted_ids (E.read_candidates xk ~tid ~mo ~loc));
            check "kernel-on window" (window_ids xk ~tid ~mo ~loc);
            check "kernel-off oracle" (sorted_ids (E.read_candidates_ref xr ~tid ~mo ~loc));
            check "kernel-off candidates" (sorted_ids (E.read_candidates xr ~tid ~mo ~loc));
            check "kernel-off window" (window_ids xr ~tid ~mo ~loc))
          locs)
      load_mos
  done

let test_window_differential () =
  let rng = Random.State.make [| 0x9F; 0xC11; 9 |] in
  for round = 1 to 40 do
    let xk = E.create () in
    let xr = E.create ~rf_kernel:false () in
    let both f =
      f xk;
      f xr
    in
    let nthreads = 1 + Random.State.int rng 3 in
    for child = 1 to nthreads - 1 do
      both (fun x ->
          ignore (E.commit_create x ~tid:0 ~child);
          ignore (E.commit_start x ~tid:child))
    done;
    let nlocs = 1 + Random.State.int rng 2 in
    let locs =
      Array.init nlocs (fun _ ->
          let lk = E.alloc xk ~tid:0 ~count:1 ~init:(Some 0) in
          let lr = E.alloc xr ~tid:0 ~count:1 ~init:(Some 0) in
          Alcotest.(check int) "lockstep alloc" lk lr;
          lk)
    in
    let marks = ref [] in
    let value = ref 1 in
    for step = 1 to 16 + Random.State.int rng 12 do
      let where = Printf.sprintf "round %d step %d" round step in
      check_agree ~where xk xr ~nthreads locs;
      let tid = Random.State.int rng nthreads in
      let loc = locs.(Random.State.int rng nlocs) in
      match Random.State.int rng 12 with
      | 0 | 1 | 2 ->
        let mo = store_mos.(Random.State.int rng (Array.length store_mos)) in
        let v = !value in
        incr value;
        both (fun x -> ignore (E.commit_store x ~tid ~mo ~loc ~value:v ()))
      | 3 | 4 | 5 -> (
        let mo = load_mos.(Random.State.int rng (Array.length load_mos)) in
        match E.read_candidates xk ~tid ~mo ~loc with
        | [] -> ()
        | cs ->
          let w = List.nth cs (Random.State.int rng (List.length cs)) in
          ignore (E.commit_load xk ~tid ~mo ~loc ~rf:(Some w) ());
          ignore (E.commit_load xr ~tid ~mo ~loc ~rf:(Some (E.action xr w.A.id)) ()))
      | 6 | 7 -> (
        (* the CAS-failure path: scan the window under the failure
           ordering, commit a load from a non-newest candidate *)
        let mo = load_mos.(Random.State.int rng (Array.length load_mos)) in
        match E.read_window xk ~tid ~mo ~loc with
        | 0 -> ()
        | n ->
          let w = E.read_candidate xk ~loc (Random.State.int rng n) in
          ignore (E.commit_load xk ~tid ~mo ~loc ~rf:(Some w) ());
          ignore (E.commit_load xr ~tid ~mo ~loc ~rf:(Some (E.action xr w.A.id)) ()))
      | 8 | 9 ->
        let mo = rmw_mos.(Random.State.int rng (Array.length rmw_mos)) in
        let v = !value in
        incr value;
        both (fun x -> ignore (E.commit_rmw x ~tid ~mo ~loc ~value:v ()))
      | 10 ->
        let mo = fence_mos.(Random.State.int rng (Array.length fence_mos)) in
        both (fun x -> ignore (E.commit_fence x ~tid ~mo))
      | _ -> (
        (* arena backtracking: the kernel columns, memo eras and the
           live-SC-fence count must all rewind with the graph *)
        match Random.State.int rng 2, !marks with
        | 0, _ | _, [] -> marks := (E.mark xk, E.mark xr) :: !marks
        | _, (mk, mr) :: rest ->
          E.restore xk mk;
          E.restore xr mr;
          marks := rest)
    done;
    check_agree ~where:(Printf.sprintf "round %d end" round) xk xr ~nthreads locs
  done

(* ------------------------------------------------------------------ *)
(* Explorer equivalence over the registry *)

let cap = 30_000
let checker = Cdsspec.Checker.default_config

let with_kernel (b : B.t) on =
  { b with B.scheduler = { b.B.scheduler with Mc.Scheduler.rf_kernel = on } }

let runk b on jobs ords t =
  fst
    (Store.explore_checked ~checker ~use_cache:true ~max_execs:(Some cap) ~jobs ~prune:true
       ~engine:`Arena (with_kernel b on) ~ords t)

let keys (r : Mc.Explorer.result) = List.map Mc.Bug.key r.bugs

let test_explorer_equivalence () =
  let fast_total = ref 0 in
  List.iter
    (fun (b : B.t) ->
      let ords = Ords.default b.B.sites in
      let t = List.hd b.B.tests in
      let where = b.B.name ^ "/" ^ t.B.test_name in
      let on = runk b true 1 ords t in
      let off = runk b false 1 ords t in
      Alcotest.(check bool) (where ^ ": graph sets identical") true (on.graphs = off.graphs);
      Alcotest.(check int)
        (where ^ ": distinct graphs")
        off.stats.distinct_graphs on.stats.distinct_graphs;
      Alcotest.(check int) (where ^ ": explored") off.stats.explored on.stats.explored;
      Alcotest.(check (list string)) (where ^ ": bug keys") (keys off) (keys on);
      Alcotest.(check (option string))
        (where ^ ": first buggy trace")
        off.first_buggy_trace on.first_buggy_trace;
      (* the pre-replay pruning ledger is mode-independent: both sides
         answer the same queries and exclude the same stores *)
      Alcotest.(check int) (where ^ ": rf queries") off.stats.rf_queries on.stats.rf_queries;
      Alcotest.(check int) (where ^ ": rf rejected") off.stats.rf_rejected on.stats.rf_rejected;
      Alcotest.(check int) (where ^ ": kernel-off takes no fast path") 0 off.stats.rf_fast;
      fast_total := !fast_total + on.stats.rf_fast;
      (* parallel kernel-on run agrees with the serial pair *)
      if not on.stats.truncated then begin
        let on2 = runk b true 2 ords t in
        Alcotest.(check bool) (where ^ ": -j2 graph sets identical") true (on.graphs = on2.graphs);
        Alcotest.(check (list string)) (where ^ ": -j2 bug keys") (keys on) (keys on2)
      end)
    Structures.Registry.exhaustive;
  Alcotest.(check bool)
    (Printf.sprintf "fast path not vacuous (%d memo hits)" !fast_total)
    true (!fast_total > 0)

let () =
  Alcotest.run "rf-kernel"
    [
      ( "window",
        [ Alcotest.test_case "randomized window differential" `Quick test_window_differential ] );
      ( "explorer",
        [ Alcotest.test_case "kernel on/off equivalence" `Slow test_explorer_equivalence ] );
    ]
