(* PR-5 differential tests for equivalence pruning.

   The pruning soundness contract: for every exhaustive registry
   structure, exploring with [prune = true] must report exactly the same
   distinct-graph set, the same deduplicated bug list (same keys, same
   order — including checker verdicts, which arrive through the
   [Cdsspec.Checker.hook] as spec-violation bugs) and the same first
   buggy trace as the unpruned explorer — in serial and under [-j2]
   work-stealing parallelism. Pruning may only cut work, never add it:
   the pruned run explores at most as many interleavings. *)

module E = Mc.Explorer
module B = Structures.Benchmark

(* Large enough that every gated structure exhausts; runs that still
   truncate are skipped (truncated pruned/unpruned pairs legitimately
   diverge) but the test fails if too few structures were actually
   compared, so the differential can never go vacuous. *)
let cap = 30_000

let explore ~prune ~jobs (b : B.t) ~ords (t : B.test) =
  let config =
    {
      E.default_config with
      scheduler = b.B.scheduler;
      max_executions = Some cap;
      prune;
    }
  in
  let hook = Cdsspec.Checker.hook b.B.spec in
  if jobs <= 1 then E.explore ~config ~on_feasible:hook (t.B.program ords)
  else Mc.Parallel.explore ~config ~on_feasible:hook ~jobs (t.B.program ords)

let keys (r : E.result) = List.map Mc.Bug.key r.bugs

(* Compare a pruned run against the unpruned reference: identical
   semantic outputs, never more work. *)
let check_against ~where (off : E.result) (on_ : E.result) =
  Alcotest.(check bool) (where ^ ": pruned run exhausts too") false on_.stats.truncated;
  Alcotest.(check bool)
    (where ^ ": pruning never adds work")
    true
    (on_.stats.explored <= off.stats.explored);
  Alcotest.(check int)
    (where ^ ": distinct graphs")
    off.stats.distinct_graphs on_.stats.distinct_graphs;
  Alcotest.(check bool) (where ^ ": graph sets identical") true (off.graphs = on_.graphs);
  Alcotest.(check (list string)) (where ^ ": bug keys") (keys off) (keys on_);
  Alcotest.(check (option string))
    (where ^ ": first buggy trace")
    off.first_buggy_trace on_.first_buggy_trace

let check_structure ?ords ?(label = "") (b : B.t) gated =
  let ords = match ords with Some o -> o | None -> Structures.Ords.default b.B.sites in
  let t = List.hd b.B.tests in
  let where = b.B.name ^ label ^ "/" ^ t.B.test_name in
  let off = explore ~prune:false ~jobs:1 b ~ords t in
  if off.stats.truncated then
    (* beyond the cap: the unpruned reference is partial, so the
       graph-set comparison is meaningless — skip, counted by [gated] *)
    ()
  else begin
    incr gated;
    let on_serial = explore ~prune:true ~jobs:1 b ~ords t in
    let on_par = explore ~prune:true ~jobs:2 b ~ords t in
    check_against ~where:(where ^ " (serial)") off on_serial;
    check_against ~where:(where ^ " (-j2)") off on_par;
    (* the pruned counters reconcile: every explored run either repeats a
       known graph or contributes a fresh one (or was cut earlier) *)
    Alcotest.(check bool)
      (where ^ ": pruned_equiv bounded")
      true
      (on_serial.stats.pruned_equiv <= on_serial.stats.explored)
  end

let test_registry_differential () =
  let gated = ref 0 in
  List.iter (fun b -> check_structure b gated) Structures.Registry.exhaustive;
  (* the gate must not be vacuous: most exhaustive structures exhaust
     well under the cap *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 12 structures gated (got %d)" !gated)
    true (!gated >= 12)

(* Known-buggy memory orders: pruning must preserve the bug list and the
   elected first buggy trace, not just graph counts. *)
let test_buggy_differential () =
  let b =
    match Structures.Registry.find "M&S Queue" with
    | Some b -> b
    | None -> Alcotest.fail "missing M&S Queue"
  in
  let gated = ref 0 in
  List.iter
    (fun (label, ords) -> check_structure ~ords ~label:("[" ^ label ^ "]") b gated)
    Structures.Ms_queue.known_bugs;
  Alcotest.(check bool) "buggy configurations gated" true (!gated >= 1);
  (* sanity: the weakened orders do produce bugs, so the bug-list
     comparison above was not trivially empty = empty *)
  let _, ords = List.hd Structures.Ms_queue.known_bugs in
  let t = List.hd b.B.tests in
  let r = explore ~prune:true ~jobs:1 b ~ords t in
  Alcotest.(check bool) "weakened M&S queue buggy under pruning" true (r.bugs <> [])

(* On a structure with rich graph-repetition (many interleavings per
   graph), pruning must actually fire — guards against a fingerprint so
   fine-grained it never matches. *)
let test_pruning_fires () =
  let b =
    match Structures.Registry.find "Seqlock" with
    | Some b -> b
    | None -> Alcotest.fail "missing Seqlock"
  in
  let ords = Structures.Ords.default b.B.sites in
  let t = List.hd b.B.tests in
  let off = explore ~prune:false ~jobs:1 b ~ords t in
  let on_ = explore ~prune:true ~jobs:1 b ~ords t in
  Alcotest.(check bool) "reference exhausts" false off.stats.truncated;
  Alcotest.(check bool) "pruning fired" true (on_.stats.pruned_equiv > 0);
  Alcotest.(check bool)
    "strictly fewer interleavings"
    true
    (on_.stats.explored < off.stats.explored)

let () =
  Alcotest.run "prune"
    [
      ( "differential",
        [
          Alcotest.test_case "every exhaustive structure" `Slow test_registry_differential;
          Alcotest.test_case "known-buggy orders" `Quick test_buggy_differential;
          Alcotest.test_case "pruning fires" `Quick test_pruning_fires;
        ] );
    ]
