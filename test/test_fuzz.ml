(* The fuzz engine's contracts: same seed ⇒ identical campaign (bug
   list, coverage count, minimized traces); a seeded buggy structure is
   found within the budget and its reported trace — original and
   minimized — reproduces the bug deterministically; minimization never
   lengthens a trace; fingerprints identify executions. *)

module P = Mc.Program
module E = Mc.Explorer
module F = Fuzz.Engine
open C11.Memory_order

let bench name =
  match Structures.Registry.find name with
  | Some b -> b
  | None -> Alcotest.fail ("unknown benchmark " ^ name)

let find_test (b : Structures.Benchmark.t) name =
  List.find (fun (t : Structures.Benchmark.test) -> t.test_name = name) b.tests

let fuzz_bench ?(executions = 2000) ?(bias = Fuzz.Bias.Prefer_stale_rf) ~seed
    (b : Structures.Benchmark.t) ords (t : Structures.Benchmark.test) =
  F.run
    ~config:
      {
        F.default_config with
        scheduler = { b.scheduler with sleep_sets = false };
        bias;
        max_executions = Some executions;
      }
    ~on_feasible:(Cdsspec.Checker.hook b.spec)
    ~seed (t.program ords)

(* ------------------------- determinism ---------------------------- *)

let strip_timing (s : F.stats) = { s with time = 0.; time_to_first_bug = None }

let test_same_seed_same_campaign () =
  let b = bench "M&S Queue" in
  let t = find_test b "1enq-1deq" in
  let ords = Structures.Ms_queue.known_buggy_ords in
  let r1 = fuzz_bench ~executions:800 ~seed:42 b ords t in
  let r2 = fuzz_bench ~executions:800 ~seed:42 b ords t in
  Alcotest.(check (list string))
    "bug keys"
    (List.map (fun (f : F.found) -> Mc.Bug.key f.bug) r1.found)
    (List.map (fun (f : F.found) -> Mc.Bug.key f.bug) r2.found);
  Alcotest.(check int) "coverage" r1.stats.coverage r2.stats.coverage;
  Alcotest.(check int) "feasible" r1.stats.feasible r2.stats.feasible;
  Alcotest.(check int) "executions" r1.stats.executions r2.stats.executions;
  Alcotest.(check bool)
    "stats equal modulo timing" true
    (strip_timing r1.stats = strip_timing r2.stats);
  List.iter2
    (fun (f1 : F.found) (f2 : F.found) ->
      Alcotest.(check (list int)) "trace" f1.trace f2.trace;
      Alcotest.(check (list int)) "minimized trace" f1.minimized f2.minimized;
      Alcotest.(check int) "finding execution" f1.execution f2.execution)
    r1.found r2.found

let test_bias_policies_all_run () =
  (* each policy must drive a campaign to completion, deterministically *)
  let b = bench "Treiber Stack" in
  let t = List.hd b.tests in
  let ords = Structures.Ords.default b.sites in
  List.iter
    (fun bias ->
      let r1 = fuzz_bench ~executions:300 ~bias ~seed:7 b ords t in
      let r2 = fuzz_bench ~executions:300 ~bias ~seed:7 b ords t in
      Alcotest.(check int)
        (Fuzz.Bias.to_string bias ^ ": coverage deterministic")
        r1.stats.coverage r2.stats.coverage;
      Alcotest.(check bool)
        (Fuzz.Bias.to_string bias ^ ": ran the budget")
        true
        (r1.stats.executions = 300))
    Fuzz.Bias.all

(* --------------------- finding a seeded bug ----------------------- *)

let test_finds_seeded_bug_and_reproduces () =
  let b = bench "M&S Queue" in
  let t = find_test b "1enq-1deq" in
  let ords = Structures.Ms_queue.known_buggy_ords in
  let r = fuzz_bench ~executions:3000 ~seed:1 b ords t in
  Alcotest.(check bool) "found the seeded bug" true (r.found <> []);
  let f = List.hd r.found in
  let key = Mc.Bug.key f.bug in
  (* the un-minimized trace reproduces *)
  let _, bugs =
    F.replay
      ~scheduler:{ b.scheduler with sleep_sets = false }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      ~decisions:f.trace (t.program ords)
  in
  Alcotest.(check bool)
    "original trace reproduces" true
    (List.exists (fun b' -> Mc.Bug.key b' = key) bugs);
  (* the minimized trace reproduces and is no longer *)
  let _, bugs' =
    F.replay
      ~scheduler:{ b.scheduler with sleep_sets = false }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      ~decisions:f.minimized (t.program ords)
  in
  Alcotest.(check bool)
    "minimized trace reproduces" true
    (List.exists (fun b' -> Mc.Bug.key b' = key) bugs');
  Alcotest.(check bool)
    "minimized no longer than original" true
    (List.length f.minimized <= List.length f.trace);
  (* time-to-first-bug was recorded *)
  Alcotest.(check bool) "time to first bug" true (r.stats.time_to_first_bug <> None)

let test_correct_orders_find_nothing () =
  let b = bench "M&S Queue" in
  let t = find_test b "1enq-1deq" in
  let r = fuzz_bench ~executions:500 ~seed:3 b (Structures.Ords.default b.sites) t in
  Alcotest.(check int) "no bugs on correct orders" 0 (List.length r.found);
  Alcotest.(check bool) "feasible runs happened" true (r.stats.feasible > 0)

let test_stop_on_first_bug () =
  let b = bench "M&S Queue" in
  let t = find_test b "1enq-1deq" in
  let ords = Structures.Ms_queue.known_buggy_ords in
  let r =
    F.run
      ~config:
        {
          F.default_config with
          scheduler = { b.scheduler with sleep_sets = false };
          max_executions = Some 3000;
          stop_on_first_bug = true;
        }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      ~seed:1 (t.program ords)
  in
  Alcotest.(check bool) "found" true (r.found <> []);
  Alcotest.(check bool) "stopped early" true r.stats.truncated;
  Alcotest.(check bool) "stopped at the finding run" true (r.stats.executions <= 3000)

(* -------------------------- replay -------------------------------- *)

(* Relaxed store buffering: every (r1, r2) outcome is reachable, so the
   decision list fully determines the outcome. *)
let sb_refs = (ref (-1), ref (-1))

let sb_program () =
  let r1, r2 = sb_refs in
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let t1 =
    P.spawn (fun () ->
        P.store Relaxed x 1;
        r1 := P.load Relaxed y)
  in
  let t2 =
    P.spawn (fun () ->
        P.store Relaxed y 1;
        r2 := P.load Relaxed x)
  in
  P.join t1;
  P.join t2

let test_replay_is_deterministic () =
  let r = F.run ~config:{ F.default_config with max_executions = Some 50 } ~seed:9 sb_program in
  Alcotest.(check int) "ran all" 50 r.stats.executions;
  (* replaying any decision list twice commits identical graphs *)
  let fingerprint decisions =
    let run_r, _ = F.replay ~decisions sb_program in
    Fuzz.Fingerprint.execution run_r.exec
  in
  List.iter
    (fun decisions ->
      Alcotest.(check int64) "replay stable" (fingerprint decisions) (fingerprint decisions))
    [ []; [ 1 ]; [ 0; 1; 1 ]; [ 2; 1; 0; 1 ] ]

let test_replay_tolerates_garbage () =
  (* out-of-range and overlong indices clamp/ignore instead of crashing *)
  let run_r, _ = F.replay ~decisions:[ 99; 99; 99; 99; 99; 99; 99; 99; 99 ] sb_program in
  match run_r.outcome with
  | Mc.Scheduler.Complete | Pruned_loop_bound _ | Pruned_max_actions -> ()
  | Pruned_sleep_set -> Alcotest.fail "sleep sets must be off under replay"
  | Pruned_equiv -> Alcotest.fail "equivalence pruning must be off under replay"

(* ------------------------ fingerprints ---------------------------- *)

let test_fingerprint_coverage_bounds () =
  (* coverage counts distinct execution graphs (the canonical
     fingerprint the explorer's equivalence pruning uses): positive, a
     subset of the exhaustive graph set, and bounded by its size *)
  let exhaustive =
    E.explore
      ~config:
        {
          E.default_config with
          scheduler = { Mc.Scheduler.default_config with sleep_sets = false };
        }
      sb_program
  in
  let r = F.run ~config:{ F.default_config with max_executions = Some 2000 } ~seed:5 sb_program in
  Alcotest.(check bool) "coverage positive" true (r.stats.coverage > 0);
  Alcotest.(check bool)
    "coverage bounded by exhaustive distinct graphs" true
    (r.stats.coverage <= exhaustive.stats.distinct_graphs);
  Alcotest.(check bool)
    "fuzzed graphs are a subset of the exhaustive graph set" true
    (List.for_all (fun fp -> List.mem fp exhaustive.graphs) r.graphs);
  (* the tiny SB tree should be near-saturated by 2000 runs *)
  Alcotest.(check bool)
    "most behaviours covered" true
    (r.stats.coverage * 2 >= exhaustive.stats.distinct_graphs)

(* ------------------------ minimization ---------------------------- *)

let nth_or_0 l n = match List.nth_opt l n with Some v -> v | None -> 0

let test_minimize_pure () =
  (* target: position 7 must hold 1 — everything else is noise *)
  let check l = nth_or_0 l 7 = 1 in
  let minimized, replays = Fuzz.Minimize.run ~check [ 3; 1; 4; 1; 5; 9; 2; 1 ] in
  Alcotest.(check (list int)) "only the load-bearing index survives"
    [ 0; 0; 0; 0; 0; 0; 0; 1 ] minimized;
  Alcotest.(check bool) "spent some replays" true (replays > 0)

let test_minimize_strips_tail () =
  let check l = nth_or_0 l 0 = 2 in
  let minimized, _ = Fuzz.Minimize.run ~check [ 2; 3; 1; 4 ] in
  Alcotest.(check (list int)) "tail stripped" [ 2 ] minimized

let test_minimize_fixed_point () =
  (* an already-minimal trace survives unchanged *)
  let check l = nth_or_0 l 0 = 1 && nth_or_0 l 1 = 2 in
  let minimized, _ = Fuzz.Minimize.run ~check [ 1; 2 ] in
  Alcotest.(check (list int)) "unchanged" [ 1; 2 ] minimized

(* --------------------- explorer compatibility --------------------- *)

let test_explorer_result_shim () =
  let b = bench "M&S Queue" in
  let t = find_test b "1enq-1deq" in
  let ords = Structures.Ms_queue.known_buggy_ords in
  let r = fuzz_bench ~executions:3000 ~seed:1 b ords t in
  let er = F.explorer_result r in
  Alcotest.(check int) "explored" r.stats.executions er.stats.explored;
  Alcotest.(check int) "feasible" r.stats.feasible er.stats.feasible;
  Alcotest.(check int) "buggy" r.stats.buggy er.stats.buggy;
  Alcotest.(check int) "no sleep-set prunes" 0 er.stats.pruned_sleep_set;
  Alcotest.(check int) "no equivalence prunes" 0 er.stats.pruned_equiv;
  Alcotest.(check int) "distinct graphs = coverage" r.stats.coverage er.stats.distinct_graphs;
  Alcotest.(check bool) "graph set carried over" true (r.graphs = er.graphs);
  Alcotest.(check (list string))
    "bug list carried over"
    (List.map (fun (f : F.found) -> Mc.Bug.key f.bug) r.found)
    (List.map Mc.Bug.key er.bugs);
  Alcotest.(check (option string)) "first trace" r.first_buggy_trace er.first_buggy_trace

(* ------------------------ trace strings --------------------------- *)

let test_trace_string_roundtrip () =
  List.iter
    (fun l ->
      Alcotest.(check (option (list int)))
        "roundtrip" (Some l)
        (F.trace_of_string (F.trace_to_string l)))
    [ []; [ 0 ]; [ 3; 0; 1; 2 ]; [ 10; 11; 0 ] ];
  Alcotest.(check (option (list int))) "garbage rejected" None (F.trace_of_string "1.x.2");
  Alcotest.(check (option (list int))) "negatives rejected" None (F.trace_of_string "1.-2")

(* -------------------- oversized fuzz workloads --------------------- *)

let test_oversized_workloads_fuzz () =
  (* beyond-exhaustive workloads: fuzz a few hundred runs through each,
     checking the engine copes and correct orders stay clean *)
  List.iter
    (fun (b : Structures.Benchmark.t) ->
      let t = List.hd b.tests in
      let r = fuzz_bench ~executions:150 ~seed:11 b (Structures.Ords.default b.sites) t in
      Alcotest.(check int) (b.name ^ ": ran the budget") 150 r.stats.executions;
      Alcotest.(check bool) (b.name ^ ": some feasible") true (r.stats.feasible > 0);
      Alcotest.(check int) (b.name ^ ": no bugs on correct orders") 0 (List.length r.found))
    (Structures.Oversized.all ())

let test_oversized_seeded_bug () =
  (* the seeded-buggy oversized M&S queue is fuzz-findable; stop at the
     first finding — a full campaign on 4 threads × 16 calls surfaces
     dozens of distinct bug sites, and minimizing them all is bench
     territory, not test territory *)
  let b = Structures.Oversized.ms_queue in
  let t = List.hd b.tests in
  let r =
    F.run
      ~config:
        {
          F.default_config with
          scheduler = { b.scheduler with sleep_sets = false };
          max_executions = Some 2000;
          stop_on_first_bug = true;
        }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      ~seed:1
      (t.program Structures.Ms_queue.known_buggy_ords)
  in
  Alcotest.(check bool) "bug found in oversized workload" true (r.found <> []);
  let f = List.hd r.found in
  Alcotest.(check bool)
    "minimized no longer than original" true
    (List.length f.minimized <= List.length f.trace)

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same campaign" `Quick test_same_seed_same_campaign;
          Alcotest.test_case "all bias policies" `Quick test_bias_policies_all_run;
        ] );
      ( "bug-finding",
        [
          Alcotest.test_case "seeded bug found + reproduced" `Quick
            test_finds_seeded_bug_and_reproduces;
          Alcotest.test_case "correct orders clean" `Quick test_correct_orders_find_nothing;
          Alcotest.test_case "stop on first bug" `Quick test_stop_on_first_bug;
        ] );
      ( "replay",
        [
          Alcotest.test_case "deterministic" `Quick test_replay_is_deterministic;
          Alcotest.test_case "tolerates garbage" `Quick test_replay_tolerates_garbage;
        ] );
      ( "coverage",
        [ Alcotest.test_case "fingerprint bounds" `Quick test_fingerprint_coverage_bounds ] );
      ( "minimization",
        [
          Alcotest.test_case "pure ddmin" `Quick test_minimize_pure;
          Alcotest.test_case "strips tail" `Quick test_minimize_strips_tail;
          Alcotest.test_case "fixed point" `Quick test_minimize_fixed_point;
        ] );
      ( "compatibility",
        [
          Alcotest.test_case "explorer result shim" `Quick test_explorer_result_shim;
          Alcotest.test_case "trace strings" `Quick test_trace_string_roundtrip;
        ] );
      ( "oversized",
        [
          Alcotest.test_case "workloads fuzz clean" `Quick test_oversized_workloads_fuzz;
          Alcotest.test_case "seeded bug found" `Quick test_oversized_seeded_bug;
        ] );
    ]
