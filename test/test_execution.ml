(* White-box tests of the execution-graph layer: drive C11.Execution
   directly (no scheduler) and check candidate filtering, synchronization
   clocks, race detection and the poison model. *)

module E = C11.Execution
module A = C11.Action
open C11.Memory_order

let ids actions = List.map (fun (a : A.t) -> a.id) actions

let test_alloc_and_init () =
  let x = E.create () in
  let loc = E.alloc x ~tid:0 ~count:2 ~init:(Some 7) in
  Alcotest.(check int) "two init actions" 2 (E.num_actions x);
  (match E.last_write x loc with
  | Some w -> Alcotest.(check (option int)) "init value" (Some 7) w.written_value
  | None -> Alcotest.fail "no init write");
  let loc2 = E.alloc x ~tid:0 ~count:1 ~init:None in
  Alcotest.(check bool) "distinct locations" true (loc2 <> loc && loc2 <> loc + 1)

let test_poison_reported () =
  let x = E.create () in
  let loc = E.alloc x ~tid:0 ~count:1 ~init:None in
  match E.read_candidates x ~tid:0 ~mo:Relaxed ~loc with
  | [ w ] ->
    let _, problems = E.commit_load x ~tid:0 ~mo:Relaxed ~loc ~rf:(Some w) () in
    Alcotest.(check bool) "uninit reported" true
      (List.exists (function E.Uninitialized_load _ -> true | _ -> false) problems)
  | l -> Alcotest.failf "expected 1 poison candidate, got %d" (List.length l)

let test_cowr_filters_candidates () =
  let x = E.create () in
  let loc = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  let w1, _ = E.commit_store x ~tid:0 ~mo:Relaxed ~loc ~value:1 () in
  let _w2, _ = E.commit_store x ~tid:0 ~mo:Relaxed ~loc ~value:2 () in
  (* thread 0 saw its own stores: only the newest is readable *)
  (match E.read_candidates x ~tid:0 ~mo:Relaxed ~loc with
  | [ w ] -> Alcotest.(check (option int)) "own newest only" (Some 2) w.written_value
  | l -> Alcotest.failf "expected 1 candidate for writer, got %d" (List.length l));
  ignore w1

let test_unrelated_thread_sees_all () =
  let x = E.create () in
  let loc = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  ignore (E.commit_create x ~tid:0 ~child:1);
  ignore (E.commit_start x ~tid:1);
  (* tid 1 inherits the init write via create, then tid 0 stores more *)
  let _ = E.commit_store x ~tid:0 ~mo:Relaxed ~loc ~value:1 () in
  let _ = E.commit_store x ~tid:0 ~mo:Relaxed ~loc ~value:2 () in
  let candidates = E.read_candidates x ~tid:1 ~mo:Relaxed ~loc in
  Alcotest.(check int) "init + both stores readable" 3 (List.length candidates)

let test_sc_load_restricted () =
  let x = E.create () in
  let loc = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  ignore (E.commit_create x ~tid:0 ~child:1);
  ignore (E.commit_start x ~tid:1);
  let _ = E.commit_store x ~tid:0 ~mo:Seq_cst ~loc ~value:1 () in
  (* a relaxed load by tid 1 may still read the init... *)
  Alcotest.(check int) "relaxed sees both" 2
    (List.length (E.read_candidates x ~tid:1 ~mo:Relaxed ~loc));
  (* ...but a seq_cst load must read the latest seq_cst store *)
  match E.read_candidates x ~tid:1 ~mo:Seq_cst ~loc with
  | [ w ] -> Alcotest.(check (option int)) "sc store forced" (Some 1) w.written_value
  | l -> Alcotest.failf "expected 1 sc candidate, got %d" (List.length l)

let test_release_acquire_clock () =
  let x = E.create () in
  let data = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  let flag = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  ignore (E.commit_create x ~tid:0 ~child:1);
  ignore (E.commit_start x ~tid:1);
  let d, _ = E.commit_store x ~tid:0 ~mo:Relaxed ~loc:data ~value:42 () in
  let f, _ = E.commit_store x ~tid:0 ~mo:Release ~loc:flag ~value:1 () in
  let l, _ = E.commit_load x ~tid:1 ~mo:Acquire ~loc:flag ~rf:(Some f) () in
  Alcotest.(check bool) "store hb acquire-load" true (E.happens_before x d.id l.id);
  (* now the data store is hb-visible: the stale init is filtered *)
  (match E.read_candidates x ~tid:1 ~mo:Relaxed ~loc:data with
  | [ w ] -> Alcotest.(check (option int)) "data forced" (Some 42) w.written_value
  | cand -> Alcotest.failf "expected 1 candidate, got %d" (List.length cand))

let test_relaxed_read_no_sw () =
  let x = E.create () in
  let data = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  let flag = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  ignore (E.commit_create x ~tid:0 ~child:1);
  ignore (E.commit_start x ~tid:1);
  let d, _ = E.commit_store x ~tid:0 ~mo:Relaxed ~loc:data ~value:42 () in
  let f, _ = E.commit_store x ~tid:0 ~mo:Release ~loc:flag ~value:1 () in
  let l, _ = E.commit_load x ~tid:1 ~mo:Relaxed ~loc:flag ~rf:(Some f) () in
  Alcotest.(check bool) "no hb through relaxed load" false (E.happens_before x d.id l.id)

let test_race_detection_direct () =
  let x = E.create () in
  let loc = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  ignore (E.commit_create x ~tid:0 ~child:1);
  ignore (E.commit_start x ~tid:1);
  let _, p1 = E.commit_na_store x ~tid:0 ~loc ~value:1 () in
  Alcotest.(check int) "no race on first store" 0 (List.length p1);
  let _, p2 = E.commit_na_load x ~tid:1 ~loc () in
  Alcotest.(check bool) "race on unordered na load" true
    (List.exists (function E.Data_race _ -> true | _ -> false) p2)

let test_rmw_reads_latest () =
  let x = E.create () in
  let loc = E.alloc x ~tid:0 ~count:1 ~init:(Some 5) in
  let _ = E.commit_store x ~tid:0 ~mo:Relaxed ~loc ~value:9 () in
  (match E.rmw_candidate x ~loc with
  | Some w -> Alcotest.(check (option int)) "latest" (Some 9) w.written_value
  | None -> Alcotest.fail "no candidate");
  let a, _ = E.commit_rmw x ~tid:0 ~mo:Acq_rel ~loc ~value:10 () in
  Alcotest.(check (option int)) "rmw read" (Some 9) a.read_value;
  Alcotest.(check (option int)) "rmw write" (Some 10) a.written_value

(* An RMW on a location with no writes at all must report the same clean
   uninitialized-access bug as a load with [rf = None] — not raise. The
   read half observes garbage (0, no rf edge); the write half is a real
   store later accesses can read. *)
let test_rmw_uninitialized () =
  let uninit p =
    List.exists (function E.Uninitialized_load _ -> true | _ -> false) p
  in
  let x = E.create () in
  (* loc 0 is never allocated: zero stores, not even a poison write *)
  let loc = 0 in
  let m = E.mark x in
  let a, problems = E.commit_rmw x ~tid:0 ~mo:Acq_rel ~loc ~value:7 () in
  Alcotest.(check bool) "uninitialized access reported" true (uninit problems);
  Alcotest.(check bool) "no rf edge" true (a.rf = None);
  Alcotest.(check (option int)) "read half observes 0" (Some 0) a.read_value;
  Alcotest.(check (option int)) "write half committed" (Some 7) a.written_value;
  (* the write half is real: it is now the mo-maximal write *)
  (match E.rmw_candidate x ~loc with
  | Some w -> Alcotest.(check (option int)) "rmw value readable" (Some 7) w.written_value
  | None -> Alcotest.fail "rmw write half missing");
  (* a second RMW chains off it cleanly *)
  let b, p2 = E.commit_rmw x ~tid:0 ~mo:Acq_rel ~loc ~value:8 () in
  Alcotest.(check bool) "second rmw is clean" false (uninit p2);
  Alcotest.(check (option int)) "second rmw reads the first" (Some 7) b.read_value;
  (* restore rewinds the half-committed rmw without desync *)
  E.restore x m;
  Alcotest.(check bool) "restore rewinds to zero stores" true
    (E.rmw_candidate x ~loc = None);
  let c, p3 = E.commit_rmw x ~tid:0 ~mo:Acq_rel ~loc ~value:9 () in
  Alcotest.(check bool) "replayed rmw still reported" true (uninit p3);
  Alcotest.(check (option int)) "replayed write half" (Some 9) c.written_value;
  (* and an RMW reading an allocated-but-uninitialized (poison) cell is
     reported the same way, with a real rf edge to the poison write *)
  let ploc = E.alloc x ~tid:0 ~count:1 ~init:None in
  let d, p4 = E.commit_rmw x ~tid:0 ~mo:Acq_rel ~loc:ploc ~value:1 () in
  Alcotest.(check bool) "poison rmw reported" true (uninit p4);
  Alcotest.(check bool) "poison rmw has an rf edge" true (d.rf <> None)

let test_release_sequence_clock () =
  (* store-release by T0, RMW by T1, acquire load by T2 reading the RMW:
     T2 must know T0's pre-release writes *)
  let x = E.create () in
  let data = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  let flag = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  ignore (E.commit_create x ~tid:0 ~child:1);
  ignore (E.commit_create x ~tid:0 ~child:2);
  ignore (E.commit_start x ~tid:1);
  ignore (E.commit_start x ~tid:2);
  let d, _ = E.commit_store x ~tid:0 ~mo:Relaxed ~loc:data ~value:42 () in
  let _, _ = E.commit_store x ~tid:0 ~mo:Release ~loc:flag ~value:1 () in
  let rmw, _ = E.commit_rmw x ~tid:1 ~mo:Relaxed ~loc:flag ~value:2 () in
  let l, _ = E.commit_load x ~tid:2 ~mo:Acquire ~loc:flag ~rf:(Some rmw) () in
  Alcotest.(check bool) "release sequence carries hb" true (E.happens_before x d.id l.id)

let test_hb_or_sc () =
  let x = E.create () in
  let a = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  let b = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  ignore (E.commit_create x ~tid:0 ~child:1);
  ignore (E.commit_start x ~tid:1);
  let w1, _ = E.commit_store x ~tid:0 ~mo:Seq_cst ~loc:a ~value:1 () in
  let w2, _ = E.commit_store x ~tid:1 ~mo:Seq_cst ~loc:b ~value:1 () in
  Alcotest.(check bool) "no hb between sc stores" false (E.happens_before x w1.id w2.id);
  Alcotest.(check bool) "but sc-ordered" true (E.hb_or_sc x w1.id w2.id);
  Alcotest.(check bool) "not symmetric" false (E.hb_or_sc x w2.id w1.id)

(* ------------------ incremental rf-kernel differential ------------------ *)

(* The incremental coherence indices behind [read_candidates] must agree
   with the specification-style rescan [read_candidates_ref] at every
   point of randomized commit sequences mixing stores, loads and RMWs
   across threads, locations and memory orders. Seeded, so failures
   replay. *)
let test_rf_kernel_differential () =
  let rng = Random.State.make [| 0xC11; 5 |] in
  let sorted_ids l = List.sort Stdlib.compare (ids l) in
  let store_mos = [| Relaxed; Release; Seq_cst |] in
  let load_mos = [| Relaxed; Acquire; Seq_cst |] in
  let rmw_mos = [| Relaxed; Acquire; Release; Acq_rel; Seq_cst |] in
  for round = 1 to 50 do
    let x = E.create () in
    let nthreads = 1 + Random.State.int rng 3 in
    for child = 1 to nthreads - 1 do
      ignore (E.commit_create x ~tid:0 ~child);
      ignore (E.commit_start x ~tid:child)
    done;
    let locs =
      Array.init
        (1 + Random.State.int rng 2)
        (fun _ -> E.alloc x ~tid:0 ~count:1 ~init:(Some 0))
    in
    let value = ref 1 in
    for step = 1 to 12 + Random.State.int rng 10 do
      (* differential: the kernel and the oracle agree for every
         (tid, mo, loc) before each commit mutates the indices *)
      for tid = 0 to nthreads - 1 do
        Array.iter
          (fun mo ->
            Array.iter
              (fun loc ->
                Alcotest.(check (list int))
                  (Printf.sprintf "round %d step %d: kernel = oracle" round step)
                  (sorted_ids (E.read_candidates_ref x ~tid ~mo ~loc))
                  (sorted_ids (E.read_candidates x ~tid ~mo ~loc)))
              locs)
          load_mos
      done;
      let tid = Random.State.int rng nthreads in
      let loc = locs.(Random.State.int rng (Array.length locs)) in
      match Random.State.int rng 3 with
      | 0 ->
        let mo = store_mos.(Random.State.int rng (Array.length store_mos)) in
        ignore (E.commit_store x ~tid ~mo ~loc ~value:!value ());
        incr value
      | 1 -> (
        let mo = load_mos.(Random.State.int rng (Array.length load_mos)) in
        match E.read_candidates x ~tid ~mo ~loc with
        | [] -> ()
        | cs ->
          let w = List.nth cs (Random.State.int rng (List.length cs)) in
          ignore (E.commit_load x ~tid ~mo ~loc ~rf:(Some w) ()))
      | _ ->
        let mo = rmw_mos.(Random.State.int rng (Array.length rmw_mos)) in
        ignore (E.commit_rmw x ~tid ~mo ~loc ~value:!value ());
        incr value
    done
  done

let test_dot_renders () =
  let x = E.create () in
  let loc = E.alloc x ~tid:0 ~count:1 ~init:(Some 0) in
  let w, _ = E.commit_store x ~tid:0 ~mo:Release ~loc ~value:1 () in
  let _, _ = E.commit_load x ~tid:0 ~mo:Acquire ~loc ~rf:(Some w) () in
  let dot = C11.Dot.render x in
  Alcotest.(check bool) "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has rf edge" true (contains dot "rf")

let () =
  Alcotest.run "execution"
    [
      ( "graph",
        [
          Alcotest.test_case "alloc and init" `Quick test_alloc_and_init;
          Alcotest.test_case "poison" `Quick test_poison_reported;
          Alcotest.test_case "CoWR filter" `Quick test_cowr_filters_candidates;
          Alcotest.test_case "unrelated sees all" `Quick test_unrelated_thread_sees_all;
          Alcotest.test_case "sc load restricted" `Quick test_sc_load_restricted;
          Alcotest.test_case "release/acquire clock" `Quick test_release_acquire_clock;
          Alcotest.test_case "relaxed read no sw" `Quick test_relaxed_read_no_sw;
          Alcotest.test_case "race detection" `Quick test_race_detection_direct;
          Alcotest.test_case "rmw reads latest" `Quick test_rmw_reads_latest;
          Alcotest.test_case "rmw uninitialized" `Quick test_rmw_uninitialized;
          Alcotest.test_case "release sequence clock" `Quick test_release_sequence_clock;
          Alcotest.test_case "hb or sc" `Quick test_hb_or_sc;
          Alcotest.test_case "rf kernel differential" `Quick test_rf_kernel_differential;
          Alcotest.test_case "dot renders" `Quick test_dot_renders;
        ] );
    ]
