(* Unit and property tests for the c11 memory-model kit: memory orders,
   vector clocks, the relation kit, and growable vectors. *)

module Mo = C11.Memory_order
module Clock = C11.Clock
module Rel = C11.Relation
module Vec = C11.Vec

(* ------------------------- memory orders ------------------------- *)

let test_mo_predicates () =
  Alcotest.(check bool) "seq_cst acquires" true (Mo.is_acquire Mo.Seq_cst);
  Alcotest.(check bool) "seq_cst releases" true (Mo.is_release Mo.Seq_cst);
  Alcotest.(check bool) "acquire does not release" false (Mo.is_release Mo.Acquire);
  Alcotest.(check bool) "release does not acquire" false (Mo.is_acquire Mo.Release);
  Alcotest.(check bool) "relaxed is neither" false
    (Mo.is_acquire Mo.Relaxed || Mo.is_release Mo.Relaxed)

let test_mo_validity () =
  Alcotest.(check bool) "acquire store invalid" false (Mo.valid_for Mo.For_store Mo.Acquire);
  Alcotest.(check bool) "release load invalid" false (Mo.valid_for Mo.For_load Mo.Release);
  Alcotest.(check bool) "acq_rel rmw valid" true (Mo.valid_for Mo.For_rmw Mo.Acq_rel);
  Alcotest.(check bool) "relaxed fence is a no-op but accepted" true
    (Mo.valid_for Mo.For_fence Mo.Relaxed)

(* weakening chains terminate and stay valid for the kind *)
let test_mo_weaken_chains () =
  List.iter
    (fun kind ->
      List.iter
        (fun start ->
          let rec chase mo n =
            Alcotest.(check bool) "valid along chain" true (Mo.valid_for kind mo);
            Alcotest.(check bool) "chain short" true (n < 6);
            match Mo.weaken kind mo with
            | Some weaker ->
              Alcotest.(check bool) "strictly weaker or incomparable" true
                (Mo.compare weaker mo < 0);
              chase weaker (n + 1)
            | None -> ()
          in
          chase start 0)
        (Mo.all_for kind))
    [ Mo.For_load; Mo.For_store; Mo.For_rmw; Mo.For_fence ]

let test_mo_string_roundtrip () =
  List.iter
    (fun mo -> Alcotest.(check bool) "roundtrip" true (Mo.of_string (Mo.to_string mo) = Some mo))
    [ Mo.Relaxed; Mo.Acquire; Mo.Release; Mo.Acq_rel; Mo.Seq_cst ]

(* --------------------------- clocks ------------------------------ *)

let clock_of l = List.fold_left (fun c (tid, seq) -> Clock.set c tid seq) Clock.empty l

let clock_gen =
  QCheck.Gen.(
    map clock_of (list_size (int_bound 6) (pair (int_bound 4) (int_bound 10))))

let clock_arb = QCheck.make ~print:(fun c -> Fmt.str "%a" Clock.pp c) clock_gen

let prop_join_upper_bound =
  QCheck.Test.make ~name:"join is an upper bound" ~count:300 (QCheck.pair clock_arb clock_arb)
    (fun (a, b) ->
      let j = Clock.join a b in
      Clock.leq a j && Clock.leq b j)

let prop_join_commutative =
  QCheck.Test.make ~name:"join commutes" ~count:300 (QCheck.pair clock_arb clock_arb)
    (fun (a, b) -> Clock.equal (Clock.join a b) (Clock.join b a))

let prop_join_idempotent =
  QCheck.Test.make ~name:"join idempotent" ~count:300 clock_arb (fun a ->
      Clock.equal (Clock.join a a) a)

let prop_join_associative =
  QCheck.Test.make ~name:"join associative" ~count:300
    (QCheck.triple clock_arb clock_arb clock_arb) (fun (a, b, c) ->
      Clock.equal (Clock.join a (Clock.join b c)) (Clock.join (Clock.join a b) c))

let prop_set_covers =
  QCheck.Test.make ~name:"set makes covers true" ~count:300
    (QCheck.triple clock_arb QCheck.(int_bound 4) QCheck.(int_bound 10)) (fun (c, tid, seq) ->
      Clock.covers (Clock.set c tid seq) ~tid ~seq)

(* Packed-vs-array differential: a clock is a plain max-array; the
   packed immediate representation must be observationally identical to
   that model. The generator deliberately straddles both packing
   boundaries — tid 3/4 and seq 32767/32768 — so every scenario mixes
   packed clocks, spilled clocks, and clocks that cross over mid-way. *)
let model_dim = 8

let boundary_gen =
  QCheck.Gen.(
    let tid = oneof [ int_bound 3; int_range 4 (model_dim - 1) ] in
    let seq = oneof [ int_bound 9; int_range 32760 32775 ] in
    list_size (int_bound 8) (pair tid seq))

let boundary_arb =
  QCheck.make
    ~print:(fun l ->
      String.concat "; " (List.map (fun (t, s) -> Printf.sprintf "%d:=%d" t s) l))
    boundary_gen

let model_of l =
  let m = Array.make model_dim 0 in
  List.iter (fun (tid, seq) -> if seq > m.(tid) then m.(tid) <- seq) l;
  m

let model_leq a b = Array.for_all2 (fun x y -> x <= y) a b

let for_alli f a =
  let ok = ref true in
  Array.iteri (fun i x -> if not (f i x) then ok := false) a;
  !ok

let packable m =
  Array.for_all (fun s -> s <= 32767) m && for_alli (fun i s -> i <= 3 || s = 0) m

let prop_packed_differential =
  QCheck.Test.make ~name:"packed/array differential" ~count:1000
    (QCheck.pair boundary_arb boundary_arb) (fun (la, lb) ->
      let a = clock_of la and b = clock_of lb in
      let ma = model_of la and mb = model_of lb in
      let mj = Array.map2 max ma mb in
      let j = Clock.join a b in
      (* get agrees with the model everywhere, including never-set tids *)
      for_alli (fun i s -> Clock.get a i = s) ma
      && for_alli (fun i s -> Clock.get j i = s) mj
      (* leq / equal / covers agree with the pointwise model *)
      && Clock.leq a b = model_leq ma mb
      && Clock.leq b a = model_leq mb ma
      && Clock.equal a b = (ma = mb)
      && List.for_all (fun (tid, seq) -> Clock.covers j ~tid ~seq = (mj.(tid) >= seq)) la
      (* representation is canonical: packed iff packable, on both the
         built clocks and the join (which may cross the boundary) *)
      && Clock.is_packed a = packable ma
      && Clock.is_packed b = packable mb
      && Clock.is_packed j = packable mj)

let test_clock_basics () =
  let c = Clock.singleton ~tid:2 ~seq:5 in
  Alcotest.(check bool) "covers own" true (Clock.covers c ~tid:2 ~seq:5);
  Alcotest.(check bool) "covers earlier" true (Clock.covers c ~tid:2 ~seq:3);
  Alcotest.(check bool) "not later" false (Clock.covers c ~tid:2 ~seq:6);
  Alcotest.(check bool) "not other thread" false (Clock.covers c ~tid:1 ~seq:1);
  Alcotest.(check bool) "empty covers nothing" false (Clock.covers Clock.empty ~tid:0 ~seq:1);
  Alcotest.(check bool) "set is monotone" true
    (Clock.get (Clock.set c 2 3) 2 = 5) (* no downgrade *)

(* Edge cases the explorer leans on: the empty clock, queries about
   threads a clock has never seen, and growth past the backing array. *)
let test_clock_edges () =
  (* the empty clock trivially covers step 0 of any thread (nothing
     happened yet), and nothing beyond *)
  Alcotest.(check bool) "empty covers step 0" true (Clock.covers Clock.empty ~tid:7 ~seq:0);
  Alcotest.(check bool) "empty covers no real step" false
    (Clock.covers Clock.empty ~tid:0 ~seq:1);
  Alcotest.(check int) "empty get" 0 (Clock.get Clock.empty 99);
  (* queries about never-seen tids: beyond the backing array *)
  let c = Clock.singleton ~tid:2 ~seq:5 in
  Alcotest.(check bool) "never-seen tid not covered" false (Clock.covers c ~tid:50 ~seq:1);
  Alcotest.(check bool) "never-seen tid step 0 covered" true (Clock.covers c ~tid:50 ~seq:0);
  Alcotest.(check int) "never-seen tid get" 0 (Clock.get c 50);
  (* growth: set on a tid far past the current capacity keeps old entries *)
  let big = Clock.set c 40 3 in
  Alcotest.(check int) "grown entry" 3 (Clock.get big 40);
  Alcotest.(check int) "old entry preserved" 5 (Clock.get big 2);
  Alcotest.(check bool) "growth is monotone" true (Clock.leq c big);
  (* joins across different lengths, both orientations *)
  let j1 = Clock.join c big and j2 = Clock.join big c in
  Alcotest.(check bool) "join of prefix is the larger" true
    (Clock.equal j1 big && Clock.equal j2 big);
  Alcotest.(check bool) "join with empty is identity" true
    (Clock.equal (Clock.join Clock.empty big) big
    && Clock.equal (Clock.join big Clock.empty) big);
  (* leq treats missing trailing entries as zero in both directions *)
  Alcotest.(check bool) "shorter leq longer" true (Clock.leq c big);
  Alcotest.(check bool) "longer not leq shorter" false (Clock.leq big c);
  Alcotest.(check bool) "empty leq anything" true (Clock.leq Clock.empty c)

(* -------------------------- relations ---------------------------- *)

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let r = Rel.create 4 in
  Rel.add_edge r 0 1;
  Rel.add_edge r 0 2;
  Rel.add_edge r 1 3;
  Rel.add_edge r 2 3;
  r

let test_relation_reachability () =
  let r = diamond () in
  Alcotest.(check bool) "0 -> 3" true (Rel.reachable r 0 3);
  Alcotest.(check bool) "3 -/-> 0" false (Rel.reachable r 3 0);
  Alcotest.(check bool) "1 and 2 unordered" false (Rel.ordered r 1 2);
  Alcotest.(check bool) "acyclic" true (Rel.is_acyclic r);
  Alcotest.(check (list int)) "down set of 3" [ 0; 1; 2 ] (List.sort compare (Rel.down_set r 3))

let test_relation_cycle () =
  let r = Rel.create 3 in
  Rel.add_edge r 0 1;
  Rel.add_edge r 1 2;
  Rel.add_edge r 2 0;
  Alcotest.(check bool) "cyclic" false (Rel.is_acyclic r)

let test_topological_sorts_diamond () =
  let r = diamond () in
  let sorts, truncated = Rel.topological_sorts ~nodes:[ 0; 1; 2; 3 ] r in
  Alcotest.(check bool) "not truncated" false truncated;
  Alcotest.(check int) "two linear extensions" 2 (List.length sorts);
  List.iter
    (fun s ->
      Alcotest.(check bool) "0 first" true (List.hd s = 0);
      Alcotest.(check bool) "3 last" true (List.nth s 3 = 3))
    sorts

let test_topological_sorts_empty_order () =
  let r = Rel.create 4 in
  let sorts, _ = Rel.topological_sorts ~nodes:[ 0; 1; 2; 3 ] r in
  Alcotest.(check int) "4! extensions" 24 (List.length sorts)

let test_topological_sorts_truncation () =
  let r = Rel.create 6 in
  let sorts, truncated = Rel.topological_sorts ~max:10 ~nodes:[ 0; 1; 2; 3; 4; 5 ] r in
  Alcotest.(check bool) "truncated" true truncated;
  Alcotest.(check int) "capped" 10 (List.length sorts)

let test_topological_sorts_sampled () =
  let r = diamond () in
  let sorts, _ = Rel.topological_sorts ~sample:(20, 7) ~nodes:[ 0; 1; 2; 3 ] r in
  Alcotest.(check int) "20 samples" 20 (List.length sorts);
  (* samples are valid linear extensions *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "respects edges" true
        (List.hd s = 0 && List.nth s 3 = 3))
    sorts

(* random DAG: edges only i -> j for i < j, so always acyclic *)
let dag_gen =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* edges = list_size (int_bound 10) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    return (n, List.filter (fun (a, b) -> a < b) edges))

let dag_arb =
  QCheck.make
    ~print:(fun (n, e) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) e)))
    dag_gen

let build_dag (n, edges) =
  let r = Rel.create n in
  List.iter (fun (a, b) -> Rel.add_edge r a b) edges;
  r

let prop_sorts_respect_order =
  QCheck.Test.make ~name:"every sort is a linear extension" ~count:200 dag_arb (fun (n, edges) ->
      let r = build_dag (n, edges) in
      let nodes = List.init n (fun i -> i) in
      let sorts, _ = Rel.topological_sorts ~max:500 ~nodes r in
      List.for_all
        (fun sort ->
          List.for_all
            (fun (a, b) ->
              let pos x =
                let rec go i = function
                  | [] -> -1
                  | y :: tl -> if x = y then i else go (i + 1) tl
                in
                go 0 sort
              in
              pos a < pos b)
            edges
          && List.sort compare sort = nodes)
        sorts)

let prop_sorts_distinct =
  QCheck.Test.make ~name:"sorts are pairwise distinct" ~count:100 dag_arb (fun (n, edges) ->
      let r = build_dag (n, edges) in
      let nodes = List.init n (fun i -> i) in
      let sorts, _ = Rel.topological_sorts ~max:500 ~nodes r in
      List.length (List.sort_uniq compare sorts) = List.length sorts)

let prop_down_set_closed =
  QCheck.Test.make ~name:"down sets are downward closed" ~count:200 dag_arb (fun (n, edges) ->
      let r = build_dag (n, edges) in
      List.for_all
        (fun node ->
          let ds = Rel.down_set r node in
          List.for_all (fun x -> List.for_all (fun (a, b) -> b <> x || List.mem a ds) edges) ds)
        (List.init n (fun i -> i)))

(* ----------------------------- vec ------------------------------- *)

let test_vec () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Vec.set v 42 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 42);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Vec.truncate v 10;
  Alcotest.(check int) "truncate" 10 (Vec.length v);
  Alcotest.(check (list int)) "to_list prefix" [ 0; 1; 2 ]
    (List.filteri (fun i _ -> i < 3) (Vec.to_list v))

(* Growth past the initial 8-slot capacity across several doublings,
   and reuse after truncating back to empty. *)
let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Alcotest.(check int) "length after growth" 1000 (Vec.length v);
  let ok = ref true in
  Vec.iteri (fun i x -> if i <> x then ok := false) v;
  Alcotest.(check bool) "contents survive doubling" true !ok;
  Vec.truncate v 0;
  Alcotest.(check bool) "empty after full truncate" true (Vec.is_empty v);
  Alcotest.check_raises "pop on empty" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Vec.pop v));
  Alcotest.check_raises "last on empty" (Invalid_argument "Vec.last") (fun () ->
      ignore (Vec.last v));
  Vec.push v 7;
  Alcotest.(check int) "reusable after truncate" 7 (Vec.last v)

let test_vec_fold_right_while () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 2; 3; 4; 5 ];
  (* sum from the right, stop when the element is 2 *)
  let sum =
    Vec.fold_right_while (fun _ x acc -> if x = 2 then `Stop acc else `Continue (acc + x)) v 0
  in
  Alcotest.(check int) "stopped early" (3 + 4 + 5) sum

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "c11"
    [
      ( "memory-order",
        [
          Alcotest.test_case "predicates" `Quick test_mo_predicates;
          Alcotest.test_case "validity" `Quick test_mo_validity;
          Alcotest.test_case "weaken chains" `Quick test_mo_weaken_chains;
          Alcotest.test_case "string roundtrip" `Quick test_mo_string_roundtrip;
        ] );
      ( "clock",
        [
          Alcotest.test_case "basics" `Quick test_clock_basics;
          Alcotest.test_case "edges" `Quick test_clock_edges;
          qt prop_join_upper_bound;
          qt prop_join_commutative;
          qt prop_join_idempotent;
          qt prop_join_associative;
          qt prop_set_covers;
          qt prop_packed_differential;
        ] );
      ( "relation",
        [
          Alcotest.test_case "reachability" `Quick test_relation_reachability;
          Alcotest.test_case "cycle" `Quick test_relation_cycle;
          Alcotest.test_case "diamond sorts" `Quick test_topological_sorts_diamond;
          Alcotest.test_case "empty order" `Quick test_topological_sorts_empty_order;
          Alcotest.test_case "truncation" `Quick test_topological_sorts_truncation;
          Alcotest.test_case "sampling" `Quick test_topological_sorts_sampled;
          qt prop_sorts_respect_order;
          qt prop_sorts_distinct;
          qt prop_down_set_closed;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "fold_right_while" `Quick test_vec_fold_right_while;
        ] );
    ]
