(* PR-7 tests for the persistent cross-run result store.

   The store soundness contract: a warm re-run of an identical job must
   report exactly the cold run's verdicts — same distinct-graph set,
   same deduplicated bug keys, same first buggy trace — in serial and
   under [-j2]; and the store must treat anything suspicious (corrupt
   entry, truncated file, foreign engine revision) as a miss plus a
   deletion, never as an answer. *)

module E = Mc.Explorer
module B = Structures.Benchmark
module Ords = Structures.Ords

let cap = 30_000

(* Fresh scratch directory per call, under the test sandbox cwd. *)
let scratch_counter = ref 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_dir () =
  incr scratch_counter;
  let d = Printf.sprintf "store-scratch-%d" !scratch_counter in
  rm_rf d;
  d

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".bin")
  |> List.map (Filename.concat dir)

let checker = Cdsspec.Checker.default_config

let run ?store ~jobs ~prune (b : B.t) ~ords (t : B.test) =
  Store.explore_checked ?store ~checker ~use_cache:true ~max_execs:(Some cap) ~jobs ~prune
    ~engine:`Arena b ~ords t

let keys (r : E.result) = List.map Mc.Bug.key r.bugs

let check_semantics ~where (cold : E.result) (warm : E.result) =
  Alcotest.(check bool) (where ^ ": graph sets identical") true (cold.graphs = warm.graphs);
  Alcotest.(check int)
    (where ^ ": distinct graphs")
    cold.stats.distinct_graphs warm.stats.distinct_graphs;
  Alcotest.(check (list string)) (where ^ ": bug keys") (keys cold) (keys warm);
  Alcotest.(check (option string))
    (where ^ ": first buggy trace")
    cold.first_buggy_trace warm.first_buggy_trace

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

let default_key ?(kind = `Check) ?(test = "t") ?(prune = true) ?(max_execs = Some cap)
    ?(sched = Mc.Scheduler.default_config) ords =
  Store.job_key ~kind ~bench:"bench" ~test ~ords ~sched ~prune ~engine:`Arena ~max_execs ~checker
    ~use_cache:true

let test_fingerprint_stability () =
  let ords = [ ("a", C11.Memory_order.Seq_cst); ("b", C11.Memory_order.Acquire) ] in
  Alcotest.(check string)
    "same key, same fingerprint"
    (Store.fingerprint (default_key ords))
    (Store.fingerprint (default_key ords));
  let base = Store.fingerprint (default_key ords) in
  let differs what k =
    Alcotest.(check bool) (what ^ " changes the fingerprint") false (Store.fingerprint k = base)
  in
  differs "kind" (default_key ~kind:`Advisor ords);
  differs "test name" (default_key ~test:"other" ords);
  differs "ords table" (default_key [ ("a", C11.Memory_order.Relaxed); ("b", C11.Memory_order.Acquire) ]);
  differs "prune flag" (default_key ~prune:false ords);
  differs "rf_kernel flag"
    (default_key ~sched:{ Mc.Scheduler.default_config with rf_kernel = false } ords);
  (* check keys are cap-agnostic (the cap lives in the entry's partial
     flag); advisor keys keep the cap *)
  Alcotest.(check string) "check keys ignore max_executions" base
    (Store.fingerprint (default_key ~max_execs:None ords));
  Alcotest.(check bool) "advisor keys keep max_executions" false
    (Store.fingerprint (default_key ~kind:`Advisor ~max_execs:None ords)
    = Store.fingerprint (default_key ~kind:`Advisor ords))

(* ------------------------------------------------------------------ *)
(* Entry roundtrip *)

let test_entry_roundtrip () =
  let dir = scratch_dir () in
  let s = Store.open_dir dir in
  let key = default_key [ ("a", C11.Memory_order.Seq_cst) ] in
  let entry =
    {
      Store.graphs = [ 3L; 17L; Int64.min_int ];
      closed =
        [
          { Mc.Scheduler.fp = 42L; sleeping = [ 1; 3 ]; nacts = 7 };
          { Mc.Scheduler.fp = -9L; sleeping = []; nacts = 0 };
        ];
      check_entries =
        [
          {
            Cdsspec.Checker.entry_key = "k1";
            entry_verdict =
              [
                { Cdsspec.Checker.kind = `Admissibility; message = "m1" };
                { Cdsspec.Checker.kind = `Unjustified; message = "m2 with \n newline" };
              ];
            entry_h_trunc = true;
            entry_p_trunc = false;
          };
        ];
      behaviours = [ ("t1", [ 5L; 6L ]); ("t2", []) ];
      explored = 12345;
      time = 1.5;
      partial = Some 321;
    }
  in
  Store.save s key entry;
  (match Store.load s key with
  | None -> Alcotest.fail "saved entry loads"
  | Some e ->
    Alcotest.(check bool) "graphs roundtrip" true (e.Store.graphs = entry.Store.graphs);
    Alcotest.(check bool) "closed roundtrip" true (e.Store.closed = entry.Store.closed);
    Alcotest.(check bool) "check entries roundtrip" true
      (e.Store.check_entries = entry.Store.check_entries);
    Alcotest.(check bool) "behaviours roundtrip" true
      (e.Store.behaviours = entry.Store.behaviours);
    Alcotest.(check int) "explored roundtrip" entry.Store.explored e.Store.explored;
    Alcotest.(check bool) "time roundtrip" true (e.Store.time = entry.Store.time);
    Alcotest.(check bool) "partial roundtrip" true (e.Store.partial = entry.Store.partial));
  (* a different key never reads someone else's entry *)
  let other = default_key ~test:"other" [ ("a", C11.Memory_order.Seq_cst) ] in
  Alcotest.(check bool) "foreign key misses" true (Store.load s other = None);
  rm_rf dir

let test_check_cache_roundtrip () =
  let cache = Cdsspec.Checker.create_cache () in
  Alcotest.(check int) "fresh cache exports nothing" 0
    (List.length (Cdsspec.Checker.export_entries cache));
  let entries =
    [
      {
        Cdsspec.Checker.entry_key = "alpha";
        entry_verdict = [];
        entry_h_trunc = false;
        entry_p_trunc = false;
      };
      {
        Cdsspec.Checker.entry_key = "beta";
        entry_verdict = [ { Cdsspec.Checker.kind = `Assertion; message = "boom" } ];
        entry_h_trunc = false;
        entry_p_trunc = true;
      };
    ]
  in
  Cdsspec.Checker.import_entries cache entries;
  let exported =
    List.sort compare (Cdsspec.Checker.export_entries cache)
  in
  Alcotest.(check bool) "import/export roundtrip" true (exported = List.sort compare entries);
  let c = Cdsspec.Checker.cache_counters cache in
  Alcotest.(check int) "imports are not hits" 0 c.Mc.Explorer.cache_hits;
  Alcotest.(check int) "imports are not misses" 0 c.Mc.Explorer.cache_misses;
  Alcotest.(check int) "imports land in the table" 2 c.Mc.Explorer.cache_entries;
  (* no-op on a memoization-off cache: --no-check-cache keeps its meaning *)
  let off = Cdsspec.Checker.create_cache ~memoize:false () in
  Cdsspec.Checker.import_entries off entries;
  Alcotest.(check int) "memoize-off cache stays empty" 0
    (Cdsspec.Checker.cache_counters off).Mc.Explorer.cache_entries

(* ------------------------------------------------------------------ *)
(* Cold/warm differential over the registry *)

let test_registry_differential () =
  let dir = scratch_dir () in
  let gated = ref 0 in
  List.iter
    (fun (b : B.t) ->
      let ords = Ords.default b.B.sites in
      let t = List.hd b.B.tests in
      let where = b.B.name ^ "/" ^ t.B.test_name in
      let store = Store.open_dir dir in
      let cold, d0 = run ~store ~jobs:1 ~prune:true b ~ords t in
      Alcotest.(check bool) (where ^ ": first run is cold") true (d0 = `Miss);
      if not cold.stats.truncated then begin
        incr gated;
        (* serial warm *)
        let warm, d1 = run ~store ~jobs:1 ~prune:true b ~ords t in
        Alcotest.(check bool) (where ^ ": second run is warm") true (d1 = `Hit);
        check_semantics ~where:(where ^ " (serial)") cold warm;
        (if cold.bugs = [] then
           Alcotest.(check bool)
             (where ^ ": warm run collapses")
             true
             (warm.stats.explored < max 2 cold.stats.explored));
        (* parallel warm: same closed keys shared read-only across domains *)
        let warm2, d2 = run ~store ~jobs:2 ~prune:true b ~ords t in
        Alcotest.(check bool) (where ^ ": -j2 run is warm") true (d2 = `Hit);
        check_semantics ~where:(where ^ " (-j2)") cold warm2
      end)
    Structures.Registry.exhaustive;
  Alcotest.(check bool)
    (Printf.sprintf "differential not vacuous (%d structures gated)" !gated)
    true (!gated >= 10);
  rm_rf dir

(* A cold [-j2] store still warms a serial re-run: under work stealing
   the frozen/donated levels are never closed, so the stored set is a
   subset of the serial one — the warm run re-explores the difference
   and the union of graphs is unchanged. *)
let test_parallel_cold_store () =
  let dir = scratch_dir () in
  let b =
    match Structures.Registry.find "Treiber Stack" with
    | Some b -> b
    | None -> Alcotest.fail "Treiber Stack registered"
  in
  let ords = Ords.default b.B.sites in
  let t = List.hd b.B.tests in
  let store = Store.open_dir dir in
  let cold, d0 = run ~store ~jobs:2 ~prune:true b ~ords t in
  Alcotest.(check bool) "cold -j2 misses" true (d0 = `Miss);
  let warm, d1 = run ~store ~jobs:1 ~prune:true b ~ords t in
  Alcotest.(check bool) "serial re-run hits" true (d1 = `Hit);
  check_semantics ~where:"-j2 cold, serial warm" cold warm;
  rm_rf dir

(* A clean run truncated by its execution cap persists a partial entry
   scoped by that cap. Same-or-smaller caps warm from it (identical bug
   verdicts; the warm graphs cover the cold ones — a warm run may
   legitimately out-explore the capped cold run), larger caps are
   treated as misses, and the first run to explore to completion
   upgrades the entry in place, after which every cap hits and the
   graphs equal the uncapped reference. *)
let test_partial_capped_runs () =
  let dir = scratch_dir () in
  let b =
    match Structures.Registry.find "Treiber Stack" with
    | Some b -> b
    | None -> Alcotest.fail "Treiber Stack registered"
  in
  let ords = Ords.default b.B.sites in
  let t = List.hd b.B.tests in
  let runc ?store max_execs =
    Store.explore_checked ?store ~checker ~use_cache:true ~max_execs ~jobs:1 ~prune:true
      ~engine:`Arena b ~ords t
  in
  (* uncapped storeless reference *)
  let reference, _ = runc None in
  Alcotest.(check bool) "reference is clean" true (reference.bugs = []);
  Alcotest.(check bool) "reference completes" true (not reference.stats.truncated);
  let total = reference.stats.explored in
  Alcotest.(check bool) "structure big enough to cap" true (total >= 8);
  let small = total / 4 and mid = total / 2 in
  let store = Store.open_dir dir in
  let cold, d0 = runc ~store (Some small) in
  Alcotest.(check bool) "capped cold misses" true (d0 = `Miss);
  Alcotest.(check bool) "capped cold truncates" true cold.stats.truncated;
  Alcotest.(check bool) "capped cold is clean" true (cold.bugs = []);
  Alcotest.(check bool) "partial entry persisted" true (entry_files dir <> []);
  (* same cap warms: verdict identity, graph coverage *)
  let warm, d1 = runc ~store (Some small) in
  Alcotest.(check bool) "same-cap run warms" true (d1 = `Hit);
  Alcotest.(check (list string)) "same-cap warm bug keys" (keys cold) (keys warm);
  Alcotest.(check bool) "warm graphs cover cold graphs" true
    (List.for_all (fun g -> List.mem g warm.graphs) cold.graphs);
  (* smaller cap is still compatible *)
  let _, d2 = runc ~store (Some (max 1 (small - 1))) in
  Alcotest.(check bool) "smaller-cap run warms" true (d2 = `Hit);
  (* larger cap: the stored partial cannot vouch for it *)
  let coldm, d3 = runc ~store (Some mid) in
  Alcotest.(check bool) "larger-cap run misses" true (d3 = `Miss);
  Alcotest.(check bool) "larger-cap cold truncates" true coldm.stats.truncated;
  (* uncapped run: miss again, completes, upgrades the entry in place *)
  let full, d4 = runc ~store None in
  Alcotest.(check bool) "uncapped run misses the partial entry" true (d4 = `Miss);
  Alcotest.(check bool) "uncapped run completes" true (not full.stats.truncated);
  Alcotest.(check bool) "uncapped graphs match reference" true
    (full.graphs = reference.graphs);
  (* after the upgrade every cap warms and reports the full graph set *)
  let warm_full, d5 = runc ~store None in
  Alcotest.(check bool) "uncapped re-run warms" true (d5 = `Hit);
  check_semantics ~where:"complete entry, uncapped warm" reference warm_full;
  let warm_capped, d6 = runc ~store (Some small) in
  Alcotest.(check bool) "capped run warms off the complete entry" true (d6 = `Hit);
  Alcotest.(check bool) "capped warm reports the full graph set" true
    (warm_capped.graphs = reference.graphs);
  (* the capped warm run must not have downgraded the complete entry *)
  let _, d7 = runc ~store None in
  Alcotest.(check bool) "complete entry survives capped warm runs" true (d7 = `Hit);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Corruption and invalidation *)

let test_corrupt_entry_discarded () =
  let dir = scratch_dir () in
  let b =
    match Structures.Registry.find "Treiber Stack" with
    | Some b -> b
    | None -> Alcotest.fail "Treiber Stack registered"
  in
  let ords = Ords.default b.B.sites in
  let t = List.hd b.B.tests in
  let store = Store.open_dir dir in
  let cold, _ = run ~store ~jobs:1 ~prune:true b ~ords t in
  let files = entry_files dir in
  Alcotest.(check bool) "cold run wrote an entry" true (files <> []);
  (* flip one byte in the middle of every entry *)
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = Bytes.of_string (really_input_string ic n) in
      close_in ic;
      let i = n / 2 in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0xFF));
      let oc = open_out_bin path in
      output_bytes oc s;
      close_out oc)
    files;
  let store = Store.open_dir dir in
  let r, d = run ~store ~jobs:1 ~prune:true b ~ords t in
  Alcotest.(check bool) "corrupt entry reads as a miss" true (d = `Miss);
  Alcotest.(check bool) "corruption was counted" true ((Store.stats store).corrupt > 0);
  check_semantics ~where:"after corruption" cold r;
  (* truncated file: cut an entry in half *)
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic (n / 2) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc)
    (entry_files dir);
  let store = Store.open_dir dir in
  let r, d = run ~store ~jobs:1 ~prune:true b ~ords t in
  Alcotest.(check bool) "truncated entry reads as a miss" true (d = `Miss);
  check_semantics ~where:"after truncation" cold r;
  rm_rf dir

let test_engine_rev_flush () =
  let dir = scratch_dir () in
  let s = Store.open_dir dir in
  let key = default_key [ ("a", C11.Memory_order.Seq_cst) ] in
  Store.save s key
    {
      Store.graphs = [ 1L ];
      closed = [];
      check_entries = [];
      behaviours = [];
      explored = 1;
      time = 0.;
      partial = None;
    };
  Alcotest.(check bool) "entry exists" true (entry_files dir <> []);
  (* same rev: reopening keeps entries *)
  let s = Store.open_dir dir in
  Alcotest.(check bool) "same-rev reopen keeps entries" true (Store.load s key <> None);
  (* forge a meta from another engine revision *)
  let oc = open_out_bin (Filename.concat dir "meta") in
  output_string oc "cdsspec-store/1\nsome-other-engine/0\n";
  close_out oc;
  let s = Store.open_dir dir in
  Alcotest.(check bool) "rev mismatch flushes every entry" true (entry_files dir = []);
  Alcotest.(check bool) "flushed entry misses" true (Store.load s key = None);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Advisor through the store *)

let test_advisor_warm () =
  let dir = scratch_dir () in
  let b =
    match Structures.Registry.find "Treiber Stack" with
    | Some b -> b
    | None -> Alcotest.fail "Treiber Stack registered"
  in
  let summary =
    Analyze.Access_summary.collect
      ~config:{ Analyze.Access_summary.default_config with max_executions = Some cap }
      b
  in
  let config store =
    { Analyze.Weaken.default_config with max_executions = Some cap; store }
  in
  let strip (r : Analyze.Weaken.report) =
    List.map
      (fun (c : Analyze.Weaken.candidate) ->
        (c.site, c.from_order, c.to_order, Analyze.Weaken.verdict_to_string c.verdict, c.explored))
      r.candidates
  in
  let baseline = Analyze.Weaken.advise ~config:(config None) b ~summary in
  let store = Store.open_dir dir in
  let cold = Analyze.Weaken.advise ~config:(config (Some store)) b ~summary in
  Alcotest.(check bool) "store-cold advisor matches storeless" true
    (strip baseline = strip cold);
  let store = Store.open_dir dir in
  let warm = Analyze.Weaken.advise ~config:(config (Some store)) b ~summary in
  Alcotest.(check bool) "warm advisor verdicts identical" true (strip cold = strip warm);
  Alcotest.(check bool) "warm advisor actually hit the store" true
    ((Store.stats store).hits > 0);
  rm_rf dir

let () =
  Alcotest.run "store"
    [
      ( "fingerprint",
        [ Alcotest.test_case "stability and sensitivity" `Quick test_fingerprint_stability ] );
      ( "codec",
        [
          Alcotest.test_case "entry roundtrip" `Quick test_entry_roundtrip;
          Alcotest.test_case "check-cache export/import" `Quick test_check_cache_roundtrip;
        ] );
      ( "differential",
        [
          Alcotest.test_case "registry cold vs warm" `Slow test_registry_differential;
          Alcotest.test_case "parallel cold store" `Quick test_parallel_cold_store;
          Alcotest.test_case "partial capped runs" `Slow test_partial_capped_runs;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "corrupt entry discarded" `Quick test_corrupt_entry_discarded;
          Alcotest.test_case "engine-rev flush" `Quick test_engine_rev_flush;
        ] );
      ("advisor", [ Alcotest.test_case "warm advisor" `Slow test_advisor_warm ]);
    ]
