(* The parallel explorer's determinism contract: for exhaustive runs
   with pruning off, [Parallel.explore ~jobs:n] must report exactly the
   serial explorer's stats, bug list (same keys, same order) and first
   buggy trace under both partitioning strategies — and the prefix
   partition the static strategy parallelizes over must cover the
   decision tree with no duplicates. With pruning on, the run-count
   stats are split-dependent by design, but the semantic outputs
   (distinct-graph set, bug list, first buggy trace) must still match
   the serial pruned run. *)

module P = Mc.Program
module E = Mc.Explorer
module Par = Mc.Parallel
module Vec = C11.Vec
open C11.Memory_order

let bench name =
  match Structures.Registry.find name with
  | Some b -> b
  | None -> Alcotest.fail ("unknown benchmark " ^ name)

let explore_bench ?(prune = false) ?strategy ~jobs (b : Structures.Benchmark.t) ords
    (t : Structures.Benchmark.test) =
  Par.explore ~jobs ?strategy
    ~config:{ E.default_config with scheduler = b.scheduler; prune }
    ~on_feasible:(Cdsspec.Checker.hook b.spec)
    (t.program ords)

(* ------------------------ determinism ----------------------------- *)

(* Pruning off: runs partition exactly across work items, so every
   counter must match the serial explorer under either strategy. *)
let check_deterministic ?ords ?strategy name =
  let b = bench name in
  let t = List.hd b.tests in
  let ords = match ords with Some o -> o | None -> Structures.Ords.default b.sites in
  let s = explore_bench ~jobs:1 b ords t in
  let p = explore_bench ?strategy ~jobs:4 b ords t in
  Alcotest.(check int) (name ^ ": explored") s.stats.explored p.stats.explored;
  Alcotest.(check int) (name ^ ": feasible") s.stats.feasible p.stats.feasible;
  Alcotest.(check int) (name ^ ": buggy") s.stats.buggy p.stats.buggy;
  Alcotest.(check int)
    (name ^ ": pruned (loop bound)")
    s.stats.pruned_loop_bound p.stats.pruned_loop_bound;
  Alcotest.(check int)
    (name ^ ": pruned (sleep set)")
    s.stats.pruned_sleep_set p.stats.pruned_sleep_set;
  Alcotest.(check int) (name ^ ": distinct graphs") s.stats.distinct_graphs p.stats.distinct_graphs;
  Alcotest.(check bool) (name ^ ": truncated") s.stats.truncated p.stats.truncated;
  Alcotest.(check bool) (name ^ ": graph sets") true (s.graphs = p.graphs);
  Alcotest.(check (list string))
    (name ^ ": bug keys")
    (List.map Mc.Bug.key s.bugs) (List.map Mc.Bug.key p.bugs);
  Alcotest.(check (option string))
    (name ^ ": first buggy trace")
    s.first_buggy_trace p.first_buggy_trace

let test_registry_determinism () =
  List.iter check_deterministic
    [ "Treiber Stack"; "SPSC Queue"; "Ticket Lock"; "Seqlock"; "M&S Queue" ]

let test_registry_determinism_static () =
  List.iter
    (check_deterministic ~strategy:`Static)
    [ "Treiber Stack"; "Ticket Lock"; "Seqlock" ]

(* Pruning on: semantic outputs only — graph set, bug keys in order,
   first buggy trace. Run counts are split-dependent (each work item has
   its own visited table), so they are deliberately not compared. *)
let check_pruned_deterministic ?ords name =
  let b = bench name in
  let t = List.hd b.tests in
  let ords = match ords with Some o -> o | None -> Structures.Ords.default b.sites in
  let s = explore_bench ~prune:true ~jobs:1 b ords t in
  let p = explore_bench ~prune:true ~jobs:4 b ords t in
  Alcotest.(check bool) (name ^ ": pruned graph sets") true (s.graphs = p.graphs);
  Alcotest.(check int)
    (name ^ ": pruned distinct graphs")
    s.stats.distinct_graphs p.stats.distinct_graphs;
  Alcotest.(check (list string))
    (name ^ ": pruned bug keys")
    (List.map Mc.Bug.key s.bugs) (List.map Mc.Bug.key p.bugs);
  Alcotest.(check (option string))
    (name ^ ": pruned first buggy trace")
    s.first_buggy_trace p.first_buggy_trace

let test_pruned_determinism () =
  List.iter check_pruned_deterministic [ "Treiber Stack"; "Seqlock"; "M&S Queue" ];
  check_pruned_deterministic ~ords:(snd (List.hd Structures.Ms_queue.known_bugs)) "M&S Queue"

(* A buggy configuration: parallel runs must find the same deduplicated
   bug set and elect the same first buggy trace as the serial DFS. *)
let test_buggy_determinism () =
  let ords = snd (List.hd Structures.Ms_queue.known_bugs) in
  check_deterministic ~ords "M&S Queue";
  check_deterministic ~ords ~strategy:`Static "M&S Queue";
  let b = bench "M&S Queue" in
  let t = List.hd b.Structures.Benchmark.tests in
  let r = explore_bench ~jobs:4 b ords t in
  Alcotest.(check bool) "weakened M&S queue is buggy" true (r.bugs <> [])

(* Different jobs counts agree with each other, not just with jobs=1. *)
let test_jobs_invariance () =
  let b = bench "Seqlock" in
  let t = List.hd b.Structures.Benchmark.tests in
  let ords = Structures.Ords.default b.Structures.Benchmark.sites in
  let r2 = explore_bench ~jobs:2 b ords t in
  let r3 = explore_bench ~jobs:3 b ords t in
  Alcotest.(check int) "explored 2 = 3 jobs" r2.stats.explored r3.stats.explored;
  Alcotest.(check int) "feasible 2 = 3 jobs" r2.stats.feasible r3.stats.feasible;
  Alcotest.(check bool) "graphs 2 = 3 jobs" true (r2.graphs = r3.graphs)

(* Truncation under a global cap: not deterministic, but the cap must
   engage and the run must be flagged. *)
let test_truncation () =
  let b = bench "Seqlock" in
  let t = List.hd b.Structures.Benchmark.tests in
  let ords = Structures.Ords.default b.Structures.Benchmark.sites in
  let r =
    Par.explore ~jobs:4
      ~config:
        {
          E.default_config with
          scheduler = b.scheduler;
          max_executions = Some 10;
          prune = false;
        }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      (t.program ords)
  in
  Alcotest.(check bool) "truncated" true r.stats.truncated;
  Alcotest.(check bool) "stopped early" true (r.stats.explored < 842);
  Alcotest.(check bool) "ran at least the cap" true (r.stats.explored >= 10)

(* ------------------- prefix partition coverage -------------------- *)

(* Store buffering with relaxed accesses: a small tree with both
   scheduling and reads-from branching at every level. *)
let sb_program () =
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let t1 =
    P.spawn (fun () ->
        P.store Relaxed x 1;
        ignore (P.load Relaxed y))
  in
  let t2 =
    P.spawn (fun () ->
        P.store Relaxed y 1;
        ignore (P.load Relaxed x))
  in
  P.join t1;
  P.join t2

let prefix_key p =
  Array.to_list
    (Array.map (fun d -> (Mc.Scheduler.decision_arity d, Mc.Scheduler.decision_chosen d)) p)

let test_prefix_cover () =
  (* Pruning off: each subtree has its own visited table, so pruned runs
     would not sum across a partition — exact-coverage sums require the
     unpruned explorer. *)
  let config = { E.default_config with prune = false } in
  let serial = E.explore ~config sb_program in
  Alcotest.(check bool) "tree is nontrivial" true (serial.stats.explored > 10);
  List.iter
    (fun depth ->
      let ps = Par.prefixes ~config:config.scheduler ~depth sb_program in
      let keys = List.map prefix_key ps in
      Alcotest.(check int)
        (Printf.sprintf "depth %d: prefixes distinct" depth)
        (List.length keys)
        (List.length (List.sort_uniq Stdlib.compare keys));
      let explored, feasible =
        List.fold_left
          (fun (e, f) p ->
            let trace = Vec.create () in
            Array.iter (Vec.push trace) p;
            let r = E.explore_subtree ~config ~trace ~frozen:(Array.length p) sb_program in
            (* the frozen prefix is never popped by backtracking *)
            Alcotest.(check int)
              (Printf.sprintf "depth %d: frozen prefix survives" depth)
              (Array.length p) (Vec.length trace);
            (e + r.stats.explored, f + r.stats.feasible))
          (0, 0) ps
      in
      (* subtrees partition the tree: every run explored exactly once *)
      Alcotest.(check int)
        (Printf.sprintf "depth %d: explored covered exactly" depth)
        serial.stats.explored explored;
      Alcotest.(check int)
        (Printf.sprintf "depth %d: feasible covered exactly" depth)
        serial.stats.feasible feasible)
    [ 1; 2; 3; 5; 8 ]

(* backtrack ~frozen flips only decisions beyond the frozen prefix. *)
let test_backtrack_frozen () =
  let trace : Mc.Scheduler.decision Vec.t = Vec.create () in
  Vec.push trace
    (Mc.Scheduler.Sched { sched_chosen = 0; candidates = [| 0; 1 |]; state = None });
  Vec.push trace (Mc.Scheduler.Choice { choice_chosen = 0; num = 2 });
  (* frozen=1: the Choice flips, then exhausts; the Sched never flips *)
  Alcotest.(check bool) "first flip" true (E.backtrack ~frozen:1 trace);
  Alcotest.(check int) "choice bumped" 1
    (Mc.Scheduler.decision_chosen (Vec.get trace 1));
  Alcotest.(check bool) "subtree exhausted" false (E.backtrack ~frozen:1 trace);
  Alcotest.(check int) "frozen decision intact" 0
    (Mc.Scheduler.decision_chosen (Vec.get trace 0));
  Alcotest.(check int) "trace truncated to prefix" 1 (Vec.length trace)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "registry benchmarks (steal)" `Quick test_registry_determinism;
          Alcotest.test_case "registry benchmarks (static)" `Quick
            test_registry_determinism_static;
          Alcotest.test_case "pruned semantic determinism" `Quick test_pruned_determinism;
          Alcotest.test_case "buggy configuration" `Quick test_buggy_determinism;
          Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
          Alcotest.test_case "truncation" `Quick test_truncation;
        ] );
      ( "partition",
        [
          Alcotest.test_case "prefix coverage" `Quick test_prefix_cover;
          Alcotest.test_case "backtrack frozen" `Quick test_backtrack_frozen;
        ] );
    ]
