(* Tests for the analysis layer (lib/analyze): the fact collector, the
   lint rule engine, the counterexample-guided weakening advisor and the
   pinned JSON report schema. *)

module Mo = C11.Memory_order
module Ords = Structures.Ords
module B = Structures.Benchmark
module AS = Analyze.Access_summary
module Lint = Analyze.Lint
module Weaken = Analyze.Weaken

let bench name =
  match Structures.Registry.find name with
  | Some b -> b
  | None -> Alcotest.failf "no benchmark %S in the registry" name

(* --- Ords.downgrades ------------------------------------------------ *)

let test_downgrades () =
  let chain kind order =
    Ords.downgrades (Ords.site "s" kind order) |> List.map Mo.to_string
  in
  Alcotest.(check (list string))
    "seq_cst rmw"
    [ "acq_rel"; "release"; "relaxed" ]
    (chain Mo.For_rmw Mo.Seq_cst);
  Alcotest.(check (list string))
    "seq_cst load" [ "acquire"; "relaxed" ] (chain Mo.For_load Mo.Seq_cst);
  Alcotest.(check (list string))
    "release store" [ "relaxed" ] (chain Mo.For_store Mo.Release);
  Alcotest.(check (list string)) "relaxed load" [] (chain Mo.For_load Mo.Relaxed)

(* --- golden lint findings on an over-synchronized Treiber stack ------ *)

(* Forcing every site to seq_cst makes the acquire/SC rules fire: the
   published table needs no acquire on pop's next-pointer load and no SC
   anywhere, so the all-seq_cst variant must produce exactly the advice
   findings below (in rule order, all on pop_load_next). *)
let test_all_seq_cst_treiber () =
  let b = bench "Treiber Stack" in
  let all_sc =
    {
      b with
      B.sites =
        List.map (fun (s : Ords.site) -> { s with Ords.order = Mo.Seq_cst }) b.sites;
    }
  in
  let summary = AS.collect all_sc in
  Alcotest.(check (list int)) "no bugs" [] (List.map (fun _ -> 0) summary.AS.bugs);
  Alcotest.(check bool) "untruncated" false summary.AS.truncated;
  let findings = Lint.lint summary in
  let shape =
    List.map
      (fun (f : Lint.finding) ->
        (Lint.severity_to_string f.severity, f.rule, Option.value ~default:"-" f.site))
      findings
  in
  Alcotest.(check (list (triple string string string)))
    "golden findings"
    [
      ("advice", "acquire-never-gains", "pop_load_next");
      ("advice", "seq-cst-unconstrained", "pop_load_next");
      ("advice", "single-thread-atomic", "pop_load_next");
    ]
    shape

(* --- advisor finds the safe weakening on the published Treiber ------- *)

let test_treiber_safe_to_weaken () =
  let b = bench "Treiber Stack" in
  let summary = AS.collect b in
  Alcotest.(check bool) "baseline untruncated" false summary.AS.truncated;
  let findings = Lint.lint summary in
  let report = Weaken.advise ~findings b ~summary in
  Alcotest.(check bool) "advisor untruncated" false report.Weaken.truncated;
  let cand =
    List.find_opt
      (fun (c : Weaken.candidate) ->
        c.Weaken.site = "pop_cas_top" && c.Weaken.to_order = Mo.Release)
      report.Weaken.candidates
  in
  match cand with
  | None -> Alcotest.fail "no pop_cas_top -> release candidate"
  | Some c ->
    Alcotest.(check string)
      "safe to weaken" "safe-to-weaken"
      (Weaken.verdict_to_string c.Weaken.verdict)

(* --- advisor pins the injected seqlock bug with a replayable witness - *)

let seqlock_config = { AS.default_config with AS.max_executions = Some 25_000 }

let test_seqlock_spec_violating () =
  let b = bench "Seqlock" in
  let summary = AS.collect ~config:seqlock_config b in
  let wconfig =
    { Weaken.default_config with Weaken.max_executions = Some 25_000 }
  in
  let report = Weaken.advise ~config:wconfig ~only_sites:[ "write_store_seq" ] b ~summary in
  let cand =
    match report.Weaken.candidates with
    | [ c ] -> c
    | cs -> Alcotest.failf "expected 1 candidate, got %d" (List.length cs)
  in
  Alcotest.(check string) "weakened to relaxed" "relaxed" (Mo.to_string cand.Weaken.to_order);
  match cand.Weaken.verdict with
  | Weaken.Spec_violating { witness = Some trace; witness_test = Some test_name; _ } ->
    (* The witness must replay to a spec violation under `--replay`
       semantics: single run, sleep sets off, checker attached. *)
    let t =
      List.find (fun (t : B.test) -> t.B.test_name = test_name) b.B.tests
    in
    let decisions =
      match Fuzz.Engine.trace_of_string trace with
      | Some ds -> ds
      | None -> Alcotest.failf "unparseable witness trace %S" trace
    in
    let ords = Ords.with_order b.B.sites "write_store_seq" Mo.Relaxed in
    let scheduler = { b.B.scheduler with Mc.Scheduler.sleep_sets = false } in
    let on_feasible exec annots = Cdsspec.Checker.hook b.B.spec exec annots in
    let _, bugs =
      Fuzz.Engine.replay ~scheduler ~on_feasible ~decisions (t.B.program ords)
    in
    Alcotest.(check bool) "witness replays to a bug" true (bugs <> [])
  | v ->
    Alcotest.failf "expected spec-violating with witness, got %s"
      (Weaken.verdict_to_string v)

(* --- pinned JSON report schema --------------------------------------- *)

(* Exact golden output for the Atomic Register report (timings zeroed):
   any change to the cdsspec-lint/1 schema must update this string
   consciously. Deterministic: jobs = 1, no budget, exhaustive. *)
let golden_register_json =
  {gold|{
  "schema": "cdsspec-lint/1",
  "reports": [
    {
      "bench": "Atomic Register",
      "summary": {
        "explored": 1043,
        "feasible": 447,
        "buggy": 0,
        "truncated": false,
        "time_s": 0,
        "sites": [
          {
            "name": "reg_store",
            "kind": "store",
            "order": "relaxed",
            "occurrences": 887,
            "executions": 447,
            "release_writes": 0,
            "sw_edges": 0,
            "sw_carried": 0,
            "acquire_reads": 0,
            "acquire_gained": 0,
            "sc_ops": 0,
            "sc_constrained": 0,
            "cross_thread_reads": 377,
            "relaxed_published": 377,
            "access_tids": 4,
            "single_thread": false
          },
          {
            "name": "reg_load",
            "kind": "load",
            "order": "relaxed",
            "occurrences": 878,
            "executions": 447,
            "release_writes": 0,
            "sw_edges": 0,
            "sw_carried": 0,
            "acquire_reads": 0,
            "acquire_gained": 0,
            "sc_ops": 0,
            "sc_constrained": 0,
            "cross_thread_reads": 0,
            "relaxed_published": 0,
            "access_tids": 4,
            "single_thread": false
          }
        ],
        "methods": [
          {
            "name": "write",
            "calls": 887,
            "calls_with_ordering_point": 887
          },
          {
            "name": "read",
            "calls": 878,
            "calls_with_ordering_point": 878
          }
        ],
        "admissibility_rules": []
      },
      "findings": [
        {
          "rule": "relaxed-store-publishes",
          "severity": "info",
          "site": "reg_store",
          "message": "relaxed store read cross-thread 377 time(s) with no sw edge (e.g. action #6 read by #10); fine if the value is self-contained, an ordering bug if it publishes an object",
          "evidence": "#0 T0.1 start relaxed\n#1 T0.2 store relaxed @0 [<alloc>]\n#2 T0.3 store relaxed @0 w=0\n#3 T0.4 create(1) relaxed\n#4 T0.5 create(2) relaxed\n#5 T1.1 start relaxed\n#6 T1.2 store relaxed @0 w=1 [reg_store]\n#7 T1.3 finish relaxed\n#8 T0.6 join(1) relaxed\n#9 T2.1 start relaxed\n#10 T2.2 load relaxed @0 r=1 rf=#6 [reg_load]\n#11 T2.3 finish relaxed\n#12 T0.7 join(2) relaxed\n#13 T0.8 finish relaxed\n"
        }
      ],
      "advice": null
    }
  ]
}
|gold}

let test_json_schema () =
  let b = bench "Atomic Register" in
  let summary = AS.collect b in
  let findings = Lint.lint summary in
  let r = { Analyze.Report.summary; findings; advice = None } in
  let json =
    Analyze.Json.to_string (Analyze.Report.wrap [ Analyze.Report.to_json ~timings:false r ])
  in
  Alcotest.(check string) "pinned cdsspec-lint/1 schema" golden_register_json json

let () =
  Alcotest.run "analyze"
    [
      ("downgrades", [ Alcotest.test_case "chains" `Quick test_downgrades ]);
      ( "lint",
        [ Alcotest.test_case "all-seq_cst treiber golden" `Slow test_all_seq_cst_treiber ] );
      ( "advisor",
        [
          Alcotest.test_case "treiber safe-to-weaken" `Slow test_treiber_safe_to_weaken;
          Alcotest.test_case "seqlock spec-violating pin" `Slow test_seqlock_spec_violating;
        ] );
      ("report", [ Alcotest.test_case "json schema golden" `Slow test_json_schema ]);
    ]
