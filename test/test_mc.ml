(* Litmus-style validation of the model checker: the allowed/forbidden
   outcome sets of classic weak-memory shapes under various orders. *)

module P = Mc.Program
module E = Mc.Explorer
open C11.Memory_order

let outcomes_of ?config main collect =
  let acc = ref [] in
  let result =
    E.explore ?config ~on_feasible:(fun _ _ ->
        let o = collect () in
        if not (List.mem o !acc) then acc := o :: !acc;
        [])
      main
  in
  (List.sort Stdlib.compare !acc, result)

let explore_bugs main =
  let r = E.explore main in
  r.bugs

(* Store buffering: T1: x=1; r1=y  /  T2: y=1; r2=x *)
let sb_program mo_store mo_load r1 r2 () =
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let t1 =
    P.spawn (fun () ->
        P.store mo_store x 1;
        r1 := P.load mo_load y)
  in
  let t2 =
    P.spawn (fun () ->
        P.store mo_store y 1;
        r2 := P.load mo_load x)
  in
  P.join t1;
  P.join t2

let test_sb_relaxed () =
  let r1 = ref (-1) and r2 = ref (-1) in
  let outs, _ = outcomes_of (sb_program Relaxed Relaxed r1 r2) (fun () -> (!r1, !r2)) in
  Alcotest.(check bool) "0,0 allowed" true (List.mem (0, 0) outs);
  Alcotest.(check bool) "1,1 allowed" true (List.mem (1, 1) outs);
  Alcotest.(check bool) "0,1 allowed" true (List.mem (0, 1) outs);
  Alcotest.(check bool) "1,0 allowed" true (List.mem (1, 0) outs)

let test_sb_seq_cst () =
  let r1 = ref (-1) and r2 = ref (-1) in
  let outs, _ = outcomes_of (sb_program Seq_cst Seq_cst r1 r2) (fun () -> (!r1, !r2)) in
  Alcotest.(check bool) "0,0 forbidden under SC" false (List.mem (0, 0) outs);
  Alcotest.(check bool) "1,1 allowed" true (List.mem (1, 1) outs)

(* Store buffering with relaxed accesses but seq_cst fences between them:
   the fences restore the SC result. *)
let test_sb_sc_fences () =
  let r1 = ref (-1) and r2 = ref (-1) in
  let main () =
    let x = P.malloc ~init:0 1 in
    let y = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.store Relaxed x 1;
          P.fence Seq_cst;
          r1 := P.load Relaxed y)
    in
    let t2 =
      P.spawn (fun () ->
          P.store Relaxed y 1;
          P.fence Seq_cst;
          r2 := P.load Relaxed x)
    in
    P.join t1;
    P.join t2
  in
  let outs, _ = outcomes_of main (fun () -> (!r1, !r2)) in
  Alcotest.(check bool) "0,0 forbidden with sc fences" false (List.mem (0, 0) outs)

(* Message passing: T1: data=42; flag=1  /  T2: if flag==1 then r=data *)
let mp_program mo_store mo_load r () =
  let data = P.malloc ~init:0 1 in
  let flag = P.malloc ~init:0 1 in
  let t1 =
    P.spawn (fun () ->
        P.store Relaxed data 42;
        P.store mo_store flag 1)
  in
  let t2 =
    P.spawn (fun () ->
        let f = P.load mo_load flag in
        if f = 1 then r := P.load Relaxed data else r := -1)
  in
  P.join t1;
  P.join t2

let test_mp_release_acquire () =
  let r = ref (-2) in
  let outs, _ = outcomes_of (mp_program Release Acquire r) (fun () -> !r) in
  Alcotest.(check bool) "flag seen implies data seen" false (List.mem 0 outs);
  Alcotest.(check bool) "42 observable" true (List.mem 42 outs);
  Alcotest.(check bool) "flag may be missed" true (List.mem (-1) outs)

let test_mp_relaxed_allows_stale () =
  let r = ref (-2) in
  let outs, _ = outcomes_of (mp_program Relaxed Relaxed r) (fun () -> !r) in
  Alcotest.(check bool) "stale data=0 allowed when relaxed" true (List.mem 0 outs)

(* MP with release/acquire *fences* around relaxed accesses. *)
let test_mp_fences () =
  let r = ref (-2) in
  let main () =
    let data = P.malloc ~init:0 1 in
    let flag = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.store Relaxed data 42;
          P.fence Release;
          P.store Relaxed flag 1)
    in
    let t2 =
      P.spawn (fun () ->
          let f = P.load Relaxed flag in
          P.fence Acquire;
          if f = 1 then r := P.load Relaxed data else r := -1)
    in
    P.join t1;
    P.join t2
  in
  let outs, _ = outcomes_of main (fun () -> !r) in
  Alcotest.(check bool) "fence pair forbids stale read" false (List.mem 0 outs);
  Alcotest.(check bool) "42 observable" true (List.mem 42 outs)

(* IRIW: two writers, two readers; readers disagree on order only when
   not seq_cst. *)
let iriw_program mo r1a r1b r2a r2b () =
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let w1 = P.spawn (fun () -> P.store mo x 1) in
  let w2 = P.spawn (fun () -> P.store mo y 1) in
  let rd1 =
    P.spawn (fun () ->
        r1a := P.load mo x;
        r1b := P.load mo y)
  in
  let rd2 =
    P.spawn (fun () ->
        r2a := P.load mo y;
        r2b := P.load mo x)
  in
  P.join w1;
  P.join w2;
  P.join rd1;
  P.join rd2

let test_iriw () =
  let r1a = ref 0 and r1b = ref 0 and r2a = ref 0 and r2b = ref 0 in
  let collect () = (!r1a, !r1b, !r2a, !r2b) in
  let outs_ra, _ = outcomes_of (iriw_program Acquire r1a r1b r2a r2b) collect in
  (* writers use Acquire for loads only; rebuild with release stores *)
  ignore outs_ra;
  let program mo_w mo_r () =
    let x = P.malloc ~init:0 1 in
    let y = P.malloc ~init:0 1 in
    let w1 = P.spawn (fun () -> P.store mo_w x 1) in
    let w2 = P.spawn (fun () -> P.store mo_w y 1) in
    let rd1 =
      P.spawn (fun () ->
          r1a := P.load mo_r x;
          r1b := P.load mo_r y)
    in
    let rd2 =
      P.spawn (fun () ->
          r2a := P.load mo_r y;
          r2b := P.load mo_r x)
    in
    P.join w1;
    P.join w2;
    P.join rd1;
    P.join rd2
  in
  let outs, _ = outcomes_of (program Release Acquire) collect in
  Alcotest.(check bool) "iriw split allowed under rel/acq" true (List.mem (1, 0, 1, 0) outs);
  let outs_sc, _ = outcomes_of (program Seq_cst Seq_cst) collect in
  Alcotest.(check bool) "iriw split forbidden under sc" false (List.mem (1, 0, 1, 0) outs_sc)

(* Coherence: a single location behaves SC-per-location even relaxed. *)
let test_coherence_corr () =
  let r1 = ref 0 and r2 = ref 0 in
  let main () =
    let x = P.malloc ~init:0 1 in
    let w = P.spawn (fun () -> P.store Relaxed x 1) in
    let rd =
      P.spawn (fun () ->
          r1 := P.load Relaxed x;
          r2 := P.load Relaxed x)
    in
    P.join w;
    P.join rd
  in
  let outs, _ = outcomes_of main (fun () -> (!r1, !r2)) in
  Alcotest.(check bool) "new then old forbidden (CoRR)" false (List.mem (1, 0) outs);
  Alcotest.(check bool) "old then new allowed" true (List.mem (0, 1) outs)

let test_cowr () =
  (* After observing its own store, a thread cannot read an older value. *)
  let r = ref (-1) in
  let main () =
    let x = P.malloc ~init:0 1 in
    let t =
      P.spawn (fun () ->
          P.store Relaxed x 5;
          r := P.load Relaxed x)
    in
    P.join t
  in
  let outs, _ = outcomes_of main (fun () -> !r) in
  Alcotest.(check (list int)) "reads own store" [ 5 ] outs

(* Release sequences: an acquire load reading from an RMW that extends a
   release store's sequence synchronizes with the release store. *)
let test_release_sequence_through_rmw () =
  let r = ref (-2) in
  let main () =
    let data = P.malloc ~init:0 1 in
    let flag = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.store Relaxed data 42;
          P.store Release flag 1)
    in
    let t2 = P.spawn (fun () -> ignore (P.fetch_add Relaxed flag 10)) in
    let t3 =
      P.spawn (fun () ->
          let f = P.load Acquire flag in
          if f = 11 then r := P.load Relaxed data else r := -1)
    in
    P.join t1;
    P.join t2;
    P.join t3
  in
  let outs, _ = outcomes_of main (fun () -> !r) in
  (* reading the RMW (11) must synchronize with the release store that
     heads the sequence, so data = 42 is guaranteed *)
  Alcotest.(check bool) "stale data after rmw read forbidden" false (List.mem 0 outs);
  Alcotest.(check bool) "42 observable" true (List.mem 42 outs)

(* A same-location relaxed store by ANOTHER thread breaks the release
   sequence (C++11 rules): reading it gives no synchronization. *)
let test_release_sequence_broken_by_foreign_store () =
  let r = ref (-2) in
  let main () =
    let data = P.malloc ~init:0 1 in
    let flag = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.store Relaxed data 42;
          P.store Release flag 1)
    in
    let t2 = P.spawn (fun () -> P.store Relaxed flag 7) in
    let t3 =
      P.spawn (fun () ->
          let f = P.load Acquire flag in
          if f = 7 then r := P.load Relaxed data else r := -1)
    in
    P.join t1;
    P.join t2;
    P.join t3
  in
  let outs, _ = outcomes_of main (fun () -> !r) in
  Alcotest.(check bool) "foreign store gives no sw: stale data allowed" true (List.mem 0 outs)

(* C11 29.8p3: release store + acquire FENCE after a relaxed load. *)
let test_acquire_fence_rule () =
  let r = ref (-2) in
  let main () =
    let data = P.malloc ~init:0 1 in
    let flag = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.store Relaxed data 42;
          P.store Release flag 1)
    in
    let t2 =
      P.spawn (fun () ->
          let f = P.load Relaxed flag in
          P.fence Acquire;
          if f = 1 then r := P.load Relaxed data else r := -1)
    in
    P.join t1;
    P.join t2
  in
  let outs, _ = outcomes_of main (fun () -> !r) in
  Alcotest.(check bool) "acquire fence upgrades the relaxed load" false (List.mem 0 outs)

(* C11 29.8p2: release FENCE before a relaxed store + acquire load. *)
let test_release_fence_rule () =
  let r = ref (-2) in
  let main () =
    let data = P.malloc ~init:0 1 in
    let flag = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.store Relaxed data 42;
          P.fence Release;
          P.store Relaxed flag 1)
    in
    let t2 =
      P.spawn (fun () ->
          let f = P.load Acquire flag in
          if f = 1 then r := P.load Relaxed data else r := -1)
    in
    P.join t1;
    P.join t2
  in
  let outs, _ = outcomes_of main (fun () -> !r) in
  Alcotest.(check bool) "release fence upgrades the relaxed store" false (List.mem 0 outs)

(* Without any fence, the same relaxed pair admits the stale read. *)
let test_no_fence_is_weak () =
  let r = ref (-2) in
  let main () =
    let data = P.malloc ~init:0 1 in
    let flag = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.store Relaxed data 42;
          P.store Relaxed flag 1)
    in
    let t2 =
      P.spawn (fun () ->
          let f = P.load Acquire flag in
          if f = 1 then r := P.load Relaxed data else r := -1)
    in
    P.join t1;
    P.join t2
  in
  let outs, _ = outcomes_of main (fun () -> !r) in
  Alcotest.(check bool) "stale read allowed without fence" true (List.mem 0 outs)

(* Thread create/join synchronize. *)
let test_create_join_synchronize () =
  let main () =
    let x = P.malloc 1 in
    P.na_store x 1;
    let t = P.spawn (fun () -> P.na_store x 2) in
    P.join t;
    ignore (P.na_load x)
  in
  let bugs = explore_bugs main in
  Alcotest.(check (list string)) "no race through create/join" []
    (List.map Mc.Bug.key bugs)

(* Uninitialized malloc'd memory is readable until synchronization forces
   the reader past it (poison-write model). *)
let test_poison_visibility () =
  let main () =
    let x = P.malloc 1 in
    (* a write in the allocating thread; same-thread read is forced past
       the poison by coherence *)
    P.store Relaxed x 3;
    ignore (P.load Relaxed x)
  in
  let bugs = explore_bugs main in
  Alcotest.(check (list string)) "own store hides poison" [] (List.map Mc.Bug.key bugs)

let test_poison_cross_thread () =
  let main () =
    let x = P.malloc 1 in
    let t1 = P.spawn (fun () -> P.store Relaxed x 3) in
    let t2 = P.spawn (fun () -> ignore (P.load Relaxed x)) in
    P.join t1;
    P.join t2
  in
  let bugs = explore_bugs main in
  let has = List.exists (function Mc.Bug.Uninitialized_load _ -> true | _ -> false) bugs in
  Alcotest.(check bool) "unsynchronized reader can observe poison" true has

(* Data race detection. *)
let test_race_detected () =
  let main () =
    let x = P.malloc ~init:0 1 in
    let t1 = P.spawn (fun () -> P.na_store x 1) in
    let t2 = P.spawn (fun () -> ignore (P.na_load x)) in
    P.join t1;
    P.join t2
  in
  let bugs = explore_bugs main in
  let has_race = List.exists (function Mc.Bug.Data_race _ -> true | _ -> false) bugs in
  Alcotest.(check bool) "race reported" true has_race

let test_no_race_when_ordered () =
  let main () =
    let x = P.malloc ~init:0 1 in
    let flag = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.na_store x 1;
          P.store Release flag 1)
    in
    let t2 =
      P.spawn (fun () ->
          if P.load Acquire flag = 1 then ignore (P.na_load x))
    in
    P.join t1;
    P.join t2
  in
  let bugs = explore_bugs main in
  let has_race = List.exists (function Mc.Bug.Data_race _ -> true | _ -> false) bugs in
  Alcotest.(check bool) "no race with rel/acq ordering" false has_race

let test_race_when_relaxed_flag () =
  let main () =
    let x = P.malloc ~init:0 1 in
    let flag = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          P.na_store x 1;
          P.store Relaxed flag 1)
    in
    let t2 =
      P.spawn (fun () ->
          if P.load Relaxed flag = 1 then ignore (P.na_load x))
    in
    P.join t1;
    P.join t2
  in
  let bugs = explore_bugs main in
  let has_race = List.exists (function Mc.Bug.Data_race _ -> true | _ -> false) bugs in
  Alcotest.(check bool) "race with relaxed flag" true has_race

let test_uninitialized_load () =
  let main () =
    let x = P.malloc 1 in
    ignore (P.load Relaxed x)
  in
  let bugs = explore_bugs main in
  let has = List.exists (function Mc.Bug.Uninitialized_load _ -> true | _ -> false) bugs in
  Alcotest.(check bool) "uninit load reported" true has

let test_assertion () =
  let main () =
    let x = P.malloc ~init:1 1 in
    P.check (P.load Relaxed x = 2) "x should be 2"
  in
  let bugs = explore_bugs main in
  let has = List.exists (function Mc.Bug.Assertion_failure _ -> true | _ -> false) bugs in
  Alcotest.(check bool) "assertion failure reported" true has

(* CAS semantics: success reads the newest store; failure may read stale
   values whose value differs from the expected one. *)
let test_cas () =
  let ok = ref false and seen = ref (-1) in
  let main () =
    let x = P.malloc ~init:0 1 in
    let t1 = P.spawn (fun () -> P.store Relaxed x 7) in
    let t2 =
      P.spawn (fun () ->
          let success, v = P.cas_val Acq_rel x ~expected:7 ~desired:9 in
          ok := success;
          seen := v)
    in
    P.join t1;
    P.join t2
  in
  let outs, _ = outcomes_of main (fun () -> (!ok, !seen)) in
  Alcotest.(check bool) "cas can succeed seeing 7" true (List.mem (true, 7) outs);
  Alcotest.(check bool) "cas can fail seeing 0" true (List.mem (false, 0) outs);
  Alcotest.(check bool) "cas cannot fail seeing 7" false (List.mem (false, 7) outs)

let test_fetch_add () =
  let r1 = ref (-1) and r2 = ref (-1) in
  let main () =
    let x = P.malloc ~init:0 1 in
    let t1 = P.spawn (fun () -> r1 := P.fetch_add Acq_rel x 1) in
    let t2 = P.spawn (fun () -> r2 := P.fetch_add Acq_rel x 1) in
    P.join t1;
    P.join t2
  in
  let outs, _ = outcomes_of main (fun () -> List.sort Stdlib.compare [ !r1; !r2 ]) in
  Alcotest.(check (list (list int))) "fetch_add atomic" [ [ 0; 1 ] ] outs

let test_exploration_counts () =
  (* Two independent writers to distinct locations: schedules differ but
     behaviours coincide; explorer must terminate with a handful of runs. *)
  let main () =
    let x = P.malloc ~init:0 1 in
    let y = P.malloc ~init:0 1 in
    let t1 = P.spawn (fun () -> P.store Relaxed x 1) in
    let t2 = P.spawn (fun () -> P.store Relaxed y 1) in
    P.join t1;
    P.join t2
  in
  let r = E.explore main in
  Alcotest.(check bool) "explored some" true (r.stats.explored >= 2);
  Alcotest.(check int) "explored = feasible + pruned" r.stats.explored
    (r.stats.feasible + r.stats.pruned_loop_bound + r.stats.pruned_max_actions
   + r.stats.pruned_sleep_set + r.stats.pruned_equiv);
  Alcotest.(check bool) "no bugs" true (r.bugs = [])

(* Loop bounding: an unbounded spin against a flag that is eventually set
   must terminate exploration and keep the feasible executions. *)
let test_spin_loop_terminates () =
  let r = ref (-1) in
  let main () =
    let flag = P.malloc ~init:0 1 in
    let t1 = P.spawn (fun () -> P.store Release flag 1) in
    let t2 =
      P.spawn (fun () ->
          let rec wait () = if P.load Acquire flag = 0 then wait () else () in
          wait ();
          r := 1)
    in
    P.join t1;
    P.join t2
  in
  let outs, result = outcomes_of main (fun () -> !r) in
  Alcotest.(check (list int)) "spin exits" [ 1 ] outs;
  Alcotest.(check bool) "some branches pruned" true (result.stats.pruned_loop_bound > 0)

(* ------------------------------------------------------------------ *)
(* Bug.key deduplication: the explorer folds per-execution reports into
   one list keyed by Bug.key, so the key must identify "the same bug
   found again" (same sites, any action ids) without conflating distinct
   bugs at the same location. *)

let action ~id ~tid ~site ~loc kind : C11.Action.t =
  {
    id;
    tid;
    seq = id + 1;
    kind;
    loc;
    mo = C11.Memory_order.Relaxed;
    read_value = None;
    written_value = None;
    rf = None;
    site;
    clock = C11.Clock.empty;
    release_clock = None;
  }

let test_bug_key_dedupes_across_ids () =
  (* the same race rediscovered in another execution commits at different
     action ids; the key must not depend on them *)
  let race ~first_id ~second_id =
    Mc.Bug.Data_race
      {
        first = action ~id:first_id ~tid:1 ~site:(Some "writer") ~loc:7 C11.Action.Na_store;
        second = action ~id:second_id ~tid:2 ~site:(Some "reader") ~loc:7 C11.Action.Na_load;
      }
  in
  Alcotest.(check string)
    "same race at different ids dedupes"
    (Mc.Bug.key (race ~first_id:3 ~second_id:8))
    (Mc.Bug.key (race ~first_id:14 ~second_id:2))

let test_bug_key_separates_kinds () =
  (* distinct bug kinds at the same location must keep distinct keys *)
  let a = action ~id:3 ~tid:1 ~site:(Some "reader") ~loc:7 C11.Action.Na_load in
  let race =
    Mc.Bug.Data_race
      { first = action ~id:1 ~tid:2 ~site:(Some "reader") ~loc:7 C11.Action.Na_store; second = a }
  in
  let uninit = Mc.Bug.Uninitialized_load a in
  Alcotest.(check bool)
    "race and uninit at one location stay distinct" true
    (Mc.Bug.key race <> Mc.Bug.key uninit)

let test_bug_key_separates_sites () =
  (* the same race shape between different site pairs is a different bug *)
  let race s1 s2 =
    Mc.Bug.Data_race
      {
        first = action ~id:0 ~tid:1 ~site:(Some s1) ~loc:7 C11.Action.Na_store;
        second = action ~id:1 ~tid:2 ~site:(Some s2) ~loc:7 C11.Action.Na_load;
      }
  in
  Alcotest.(check bool)
    "different site pairs stay distinct" true
    (Mc.Bug.key (race "enq_store" "deq_load") <> Mc.Bug.key (race "enq_store" "peek_load"))

let test_bug_key_dedupes_in_exploration () =
  (* end to end: a racy flag race fires on many interleavings, yet the
     explorer reports it once *)
  let main () =
    let x = P.malloc ~init:0 1 in
    let y = P.malloc ~init:0 1 in
    (* the relaxed traffic on y multiplies interleavings; the na pair on
       x races in every one of them *)
    let t1 =
      P.spawn (fun () ->
          P.store Relaxed y 1;
          P.na_store ~site:"w" x 1)
    in
    let t2 =
      P.spawn (fun () ->
          ignore (P.load Relaxed y);
          ignore (P.na_load ~site:"r" x))
    in
    P.join t1;
    P.join t2
  in
  let r = E.explore main in
  let keys = List.map Mc.Bug.key r.bugs in
  Alcotest.(check bool) "raced at all" true (r.stats.buggy >= 1);
  Alcotest.(check bool) "buggy on several executions" true (r.stats.buggy > List.length r.bugs);
  Alcotest.(check int) "deduplicated to distinct keys" (List.length keys)
    (List.length (List.sort_uniq Stdlib.compare keys))

let () =
  Alcotest.run "mc"
    [
      ( "litmus",
        [
          Alcotest.test_case "sb relaxed" `Quick test_sb_relaxed;
          Alcotest.test_case "sb seq_cst" `Quick test_sb_seq_cst;
          Alcotest.test_case "sb sc fences" `Quick test_sb_sc_fences;
          Alcotest.test_case "mp release acquire" `Quick test_mp_release_acquire;
          Alcotest.test_case "mp relaxed" `Quick test_mp_relaxed_allows_stale;
          Alcotest.test_case "mp fences" `Quick test_mp_fences;
          Alcotest.test_case "iriw" `Quick test_iriw;
          Alcotest.test_case "coherence CoRR" `Quick test_coherence_corr;
          Alcotest.test_case "coherence CoWR" `Quick test_cowr;
        ] );
      ( "synchronization",
        [
          Alcotest.test_case "release sequence via rmw" `Quick test_release_sequence_through_rmw;
          Alcotest.test_case "release sequence broken" `Quick
            test_release_sequence_broken_by_foreign_store;
          Alcotest.test_case "acquire fence (29.8p3)" `Quick test_acquire_fence_rule;
          Alcotest.test_case "release fence (29.8p2)" `Quick test_release_fence_rule;
          Alcotest.test_case "no fence is weak" `Quick test_no_fence_is_weak;
          Alcotest.test_case "create/join" `Quick test_create_join_synchronize;
          Alcotest.test_case "poison hidden by own store" `Quick test_poison_visibility;
          Alcotest.test_case "poison visible cross-thread" `Quick test_poison_cross_thread;
        ] );
      ( "builtin-checks",
        [
          Alcotest.test_case "race detected" `Quick test_race_detected;
          Alcotest.test_case "no race when ordered" `Quick test_no_race_when_ordered;
          Alcotest.test_case "race when relaxed flag" `Quick test_race_when_relaxed_flag;
          Alcotest.test_case "uninitialized load" `Quick test_uninitialized_load;
          Alcotest.test_case "assertion" `Quick test_assertion;
        ] );
      ( "rmw",
        [
          Alcotest.test_case "cas" `Quick test_cas;
          Alcotest.test_case "fetch_add" `Quick test_fetch_add;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "counts" `Quick test_exploration_counts;
          Alcotest.test_case "spin loop terminates" `Quick test_spin_loop_terminates;
        ] );
      ( "bug-dedup",
        [
          Alcotest.test_case "same race, different ids" `Quick test_bug_key_dedupes_across_ids;
          Alcotest.test_case "distinct kinds, same location" `Quick test_bug_key_separates_kinds;
          Alcotest.test_case "distinct site pairs" `Quick test_bug_key_separates_sites;
          Alcotest.test_case "explorer dedupes end to end" `Quick
            test_bug_key_dedupes_in_exploration;
        ] );
    ]
