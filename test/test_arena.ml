(* Differential oracle for the arena engine: the copy-free
   snapshot/restore scheduler sessions must be observably identical to
   the legacy fresh-run-per-execution engine — same stats, same graph
   sets, same bug lists, same first buggy traces — over every registry
   structure, serially and under work-stealing parallelism, with and
   without equivalence pruning. Plus direct unit tests of the arena
   watermark snapshot/restore machinery. *)

module E = Mc.Explorer
module S = Mc.Scheduler
module P = Mc.Program
module B = Structures.Benchmark

let find name =
  match Structures.Registry.find name with
  | Some b -> b
  | None -> Alcotest.failf "unknown benchmark %s" name

(* Everything in [stats] that must agree between engines: wall-clock,
   allocation and snapshot counters are engine-specific by design. *)
let stats_key (s : E.stats) =
  [
    s.explored;
    s.feasible;
    s.pruned_loop_bound;
    s.pruned_max_actions;
    s.pruned_sleep_set;
    s.pruned_equiv;
    s.distinct_graphs;
    s.buggy;
    (if s.truncated then 1 else 0);
  ]

let run_bench ~engine ~prune ~jobs ~cap (b : B.t) (t : B.test) =
  E.(
    Mc.Parallel.explore ~jobs
      ~config:
        { default_config with scheduler = b.scheduler; engine; prune; max_executions = cap }
      (t.program (Structures.Ords.default b.sites)))

let check_identical name (a : E.result) (l : E.result) =
  Alcotest.(check (list int)) (name ^ ": stats") (stats_key l.stats) (stats_key a.stats);
  Alcotest.(check bool) (name ^ ": graph set") true (a.graphs = l.graphs);
  Alcotest.(check (list string))
    (name ^ ": bug keys")
    (List.map Mc.Bug.key l.bugs)
    (List.map Mc.Bug.key a.bugs);
  Alcotest.(check (option string)) (name ^ ": first trace") l.first_buggy_trace a.first_buggy_trace

(* Serial sweep: every exhaustive registry structure, both prune modes.
   The cap keeps the suite fast; serial DFS truncates deterministically,
   so capped rows still compare byte-for-byte. *)
let test_serial_differential () =
  List.iter
    (fun (b : B.t) ->
      List.iter
        (fun (t : B.test) ->
          List.iter
            (fun prune ->
              let name = Printf.sprintf "%s/%s prune=%b" b.name t.test_name prune in
              let a = run_bench ~engine:`Arena ~prune ~jobs:1 ~cap:(Some 10_000) b t in
              let l = run_bench ~engine:`Legacy ~prune ~jobs:1 ~cap:(Some 10_000) b t in
              check_identical name a l)
            [ true; false ])
        b.tests)
    Structures.Registry.exhaustive

(* Work-stealing parallelism: uncapped (a shared execution budget
   truncates at a scheduling-dependent point), so only each structure's
   first unit test — small enough to exhaust — is swept. With pruning
   the explored/pruned counters legitimately vary with donation timing,
   so only the order-independent outputs are compared. *)
let test_parallel_differential () =
  List.iter
    (fun name ->
      let b = find name in
      let t = List.hd b.tests in
      let a = run_bench ~engine:`Arena ~prune:false ~jobs:2 ~cap:None b t in
      let l = run_bench ~engine:`Legacy ~prune:false ~jobs:2 ~cap:None b t in
      check_identical (name ^ "/" ^ t.test_name ^ " -j2") a l;
      let a = run_bench ~engine:`Arena ~prune:true ~jobs:2 ~cap:None b t in
      let l = run_bench ~engine:`Legacy ~prune:true ~jobs:2 ~cap:None b t in
      let n = name ^ "/" ^ t.test_name ^ " -j2 pruned" in
      Alcotest.(check bool) (n ^ ": graph set") true (a.graphs = l.graphs);
      Alcotest.(check (list string))
        (n ^ ": bug keys")
        (List.map Mc.Bug.key l.bugs)
        (List.map Mc.Bug.key a.bugs);
      Alcotest.(check (option string)) (n ^ ": first trace") l.first_buggy_trace
        a.first_buggy_trace)
    [ "Lazy Init"; "Seqlock"; "Treiber Stack" ]

(* Commit-path mode identity: the first-run direct-dispatch hook
   ([inline_visible]) and the finished-thread replay skip
   ([replay_finished = false], sound here because registry programs
   publish observations only through the execution graph) are pure
   optimizations — every combination must produce the same stats, graph
   sets, bug lists and first traces as the plain fiber path. *)
let run_modes ~inline ~replay_finished ~prune ~jobs ~cap (b : B.t) (t : B.test) =
  let scheduler = { b.scheduler with S.inline_visible = inline; replay_finished } in
  E.(
    Mc.Parallel.explore ~jobs
      ~config:{ default_config with scheduler; engine = `Arena; prune; max_executions = cap }
      (t.program (Structures.Ords.default b.sites)))

let mode_combos =
  [ (false, true); (true, true); (false, false); (true, false) ]

let test_commit_mode_identity () =
  List.iter
    (fun name ->
      let b = find name in
      let t = List.hd b.tests in
      List.iter
        (fun prune ->
          let base =
            run_modes ~inline:false ~replay_finished:true ~prune ~jobs:1 ~cap:(Some 10_000) b t
          in
          List.iter
            (fun (inline, rf) ->
              let m = run_modes ~inline ~replay_finished:rf ~prune ~jobs:1 ~cap:(Some 10_000) b t in
              let n =
                Printf.sprintf "%s/%s inline=%b replay_finished=%b prune=%b" name t.test_name
                  inline rf prune
              in
              check_identical n m base)
            mode_combos)
        [ true; false ])
    [ "MCS Lock"; "Chase-Lev Deque"; "Seqlock"; "Bounded Queue" ]

(* The same four mode combinations under -j2 work stealing: donation
   timing varies the counters, so compare the order-independent
   outputs. *)
let test_commit_mode_identity_parallel () =
  let b = find "MCS Lock" in
  let t = List.hd b.tests in
  let base = run_modes ~inline:false ~replay_finished:true ~prune:true ~jobs:2 ~cap:None b t in
  List.iter
    (fun (inline, rf) ->
      let m = run_modes ~inline ~replay_finished:rf ~prune:true ~jobs:2 ~cap:None b t in
      let n = Printf.sprintf "-j2 inline=%b replay_finished=%b" inline rf in
      Alcotest.(check bool) (n ^ ": graph set") true (m.graphs = base.graphs);
      Alcotest.(check (list string))
        (n ^ ": bug keys")
        (List.map Mc.Bug.key base.bugs)
        (List.map Mc.Bug.key m.bugs);
      Alcotest.(check (option string)) (n ^ ": first trace") base.first_buggy_trace
        m.first_buggy_trace)
    mode_combos

(* Seeded fuzz campaigns ride the identical decision stream whatever the
   dispatch mode: inline commits never consume a pick, so bugs, coverage
   and minimized reproducers must be bit-identical across modes. *)
let test_commit_mode_identity_fuzz () =
  let b = find "Seqlock" in
  let t = List.hd b.tests in
  let campaign ~inline ~replay_finished =
    Fuzz.Engine.run
      ~config:
        {
          Fuzz.Engine.default_config with
          scheduler =
            { b.scheduler with S.sleep_sets = false; inline_visible = inline; replay_finished };
          max_executions = Some 2_000;
        }
      ~seed:42
      (t.program (Structures.Ords.default b.sites))
  in
  let base = campaign ~inline:false ~replay_finished:true in
  List.iter
    (fun (inline, rf) ->
      let r = campaign ~inline ~replay_finished:rf in
      let n = Printf.sprintf "fuzz inline=%b replay_finished=%b" inline rf in
      Alcotest.(check int) (n ^ ": feasible") base.stats.feasible r.stats.feasible;
      Alcotest.(check int) (n ^ ": coverage") base.stats.coverage r.stats.coverage;
      Alcotest.(check (list string))
        (n ^ ": found bugs")
        (List.map (fun (f : Fuzz.Engine.found) -> Mc.Bug.key f.bug) base.found)
        (List.map (fun (f : Fuzz.Engine.found) -> Mc.Bug.key f.bug) r.found);
      Alcotest.(check (list string))
        (n ^ ": reproducer traces")
        (List.map (fun (f : Fuzz.Engine.found) -> Fuzz.Engine.trace_to_string f.minimized) base.found)
        (List.map (fun (f : Fuzz.Engine.found) -> Fuzz.Engine.trace_to_string f.minimized) r.found))
    mode_combos

(* Same seed, same campaign: the fuzzer rides the same commit path as
   the engines (direct-dispatch hook included), so a seeded campaign
   must be reproducible down to the minimized reproducer traces. *)
let test_fuzz_deterministic () =
  let b = find "Seqlock" in
  let t = List.hd b.tests in
  let campaign () =
    Fuzz.Engine.run
      ~config:
        {
          Fuzz.Engine.default_config with
          scheduler = { b.scheduler with S.sleep_sets = false };
          max_executions = Some 2_000;
        }
      ~seed:42
      (t.program (Structures.Ords.default b.sites))
  in
  let r1 = campaign () and r2 = campaign () in
  Alcotest.(check int) "executions" r1.stats.executions r2.stats.executions;
  Alcotest.(check int) "feasible" r1.stats.feasible r2.stats.feasible;
  Alcotest.(check int) "coverage" r1.stats.coverage r2.stats.coverage;
  Alcotest.(check (list string))
    "found bugs"
    (List.map (fun (f : Fuzz.Engine.found) -> Mc.Bug.key f.bug) r1.found)
    (List.map (fun (f : Fuzz.Engine.found) -> Mc.Bug.key f.bug) r2.found);
  Alcotest.(check (list string))
    "reproducer traces"
    (List.map (fun (f : Fuzz.Engine.found) -> Fuzz.Engine.trace_to_string f.minimized) r1.found)
    (List.map (fun (f : Fuzz.Engine.found) -> Fuzz.Engine.trace_to_string f.minimized) r2.found)

(* Direct watermark unit test: mark, commit past it, restore, and the
   arena is back — lengths and fingerprint — including across nested
   (stacked) marks restored out of order. *)
let test_watermark_nested () =
  let exec = C11.Execution.create () in
  let commit_pair tid loc v =
    ignore (C11.Execution.commit_store exec ~tid ~mo:C11.Memory_order.Relaxed ~loc ~value:v ());
    ignore (C11.Execution.commit_load exec ~tid ~mo:C11.Memory_order.Relaxed ~loc ~rf:None ())
  in
  ignore (C11.Execution.commit_start exec ~tid:0);
  commit_pair 0 1 10;
  let m1 = C11.Execution.mark exec in
  let n1 = C11.Execution.num_actions exec in
  let fp1 = C11.Execution.fingerprint exec in
  commit_pair 0 2 20;
  let m2 = C11.Execution.mark exec in
  let n2 = C11.Execution.num_actions exec in
  let fp2 = C11.Execution.fingerprint exec in
  commit_pair 0 3 30;
  Alcotest.(check bool) "grew past m2" true (C11.Execution.num_actions exec > n2);
  (* inner restore first *)
  C11.Execution.restore exec m2;
  Alcotest.(check int) "m2 length" n2 (C11.Execution.num_actions exec);
  Alcotest.(check int64) "m2 fingerprint" fp2 (C11.Execution.fingerprint exec);
  (* re-grow along a different branch, then rewind all the way to m1 *)
  commit_pair 0 4 40;
  C11.Execution.restore exec m1;
  Alcotest.(check int) "m1 length" n1 (C11.Execution.num_actions exec);
  Alcotest.(check int64) "m1 fingerprint" fp1 (C11.Execution.fingerprint exec);
  (* the rewound graph is still a live arena: committing works *)
  commit_pair 0 5 50;
  Alcotest.(check int) "regrew" (n1 + 2) (C11.Execution.num_actions exec)

(* Regression: after a restore, *every* thread must re-execute its side
   effects — including one that had already finished by the snapshot.
   User closures may share mutable state that the main closure resets
   each execution (the SC-oracle observation pattern below); preserving
   any fiber across a restore wipes its recorded observations without
   re-applying them. This program has exactly one outcome (every CAS
   fails: nothing ever stores 1 first), but a partial replay reports
   phantom outcomes with torn observation lists. *)
let test_side_effect_replay () =
  let module OS = Set.Make (struct
    type t = int list

    let compare = compare
  end) in
  let observations = Array.make 3 [] in
  let program () =
    let l = P.malloc ~init:0 1 in
    Array.fill observations 0 3 [];
    let record i v = observations.(i) <- observations.(i) @ [ v ] in
    let t0 =
      P.spawn (fun () ->
          record 0 (if P.cas Seq_cst l ~expected:1 ~desired:2 then 1 else 0);
          record 0 (P.load Seq_cst l))
    in
    (* finishes after a single load — the fiber a partial replay keeps *)
    let t1 = P.spawn (fun () -> record 1 (P.load Seq_cst l)) in
    let t2 =
      P.spawn (fun () ->
          record 2 (P.load Seq_cst l);
          record 2 (if P.cas Seq_cst l ~expected:1 ~desired:2 then 1 else 0);
          record 2 (if P.cas Seq_cst l ~expected:2 ~desired:1 then 1 else 0))
    in
    P.join t0;
    P.join t1;
    P.join t2
  in
  let outcomes engine =
    let o = ref OS.empty in
    ignore
      (E.explore
         ~config:{ E.default_config with engine }
         ~on_feasible:(fun _ _ ->
           o := OS.add (List.concat (Array.to_list observations)) !o;
           [])
         program);
    !o
  in
  let a = outcomes `Arena and l = outcomes `Legacy in
  Alcotest.(check int) "single outcome" 1 (OS.cardinal a);
  Alcotest.(check bool) "matches legacy" true (OS.equal a l)

(* Session-level snapshot/restore: drive a session through a full DFS by
   hand (the explorer's backtracking contract) and check that every
   execution matches a fresh legacy run of the same trace, that restores
   happen, and that the arena rewinds rather than accumulates. *)
let test_session_restore () =
  let program () =
    let l = P.malloc ~init:0 1 in
    let t1 = P.spawn (fun () -> P.store Relaxed l 1) in
    let t2 = P.spawn (fun () -> ignore (P.load Relaxed l)) in
    P.join t1;
    P.join t2
  in
  let config = { S.default_config with sleep_sets = false } in
  let trace = C11.Vec.create () in
  let session = S.session_create ~config ~trace program in
  let arena = S.session_exec session in
  let fps = ref [] in
  let lens = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let r = S.session_run session in
    Alcotest.(check bool) "complete" true (r.outcome = S.Complete);
    Alcotest.(check bool) "bug-free" true (r.bugs = []);
    fps := C11.Execution.fingerprint r.exec :: !fps;
    lens := C11.Execution.num_actions r.exec :: !lens;
    (* the result's graph is the session's single arena *)
    Alcotest.(check bool) "arena identity" true (r.exec == arena);
    if not (E.backtrack trace) then continue_ := false
  done;
  let snapshots, restores = S.session_counters session in
  Alcotest.(check bool) "took snapshots" true (snapshots > 0);
  Alcotest.(check int) "one restore per re-run" (List.length !fps - 1) restores;
  (* every execution of this program commits the same number of actions:
     if restore failed to truncate the arena the lengths would climb *)
  (match !lens with
  | [] -> Alcotest.fail "no executions"
  | n :: rest -> List.iter (Alcotest.(check int) "arena rewound between runs" n) rest);
  (* same DFS with the legacy engine: same graphs in the same order *)
  let legacy_trace = C11.Vec.create () in
  let legacy_fps = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let r = S.run ~config ~trace:legacy_trace program in
    legacy_fps := C11.Execution.fingerprint r.exec :: !legacy_fps;
    if not (E.backtrack legacy_trace) then continue_ := false
  done;
  Alcotest.(check bool) "graphs match legacy" true (!fps = !legacy_fps)

let () =
  Alcotest.run "arena"
    [
      ( "differential",
        [
          Alcotest.test_case "exhaustive registry, serial" `Quick test_serial_differential;
          Alcotest.test_case "work stealing -j2" `Quick test_parallel_differential;
          Alcotest.test_case "seeded fuzz campaign" `Quick test_fuzz_deterministic;
        ] );
      ( "commit-modes",
        [
          Alcotest.test_case "serial" `Quick test_commit_mode_identity;
          Alcotest.test_case "work stealing -j2" `Quick test_commit_mode_identity_parallel;
          Alcotest.test_case "seeded fuzz" `Quick test_commit_mode_identity_fuzz;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "nested watermarks" `Quick test_watermark_nested;
          Alcotest.test_case "side-effect replay" `Quick test_side_effect_replay;
          Alcotest.test_case "session restore" `Quick test_session_restore;
        ] );
    ]
