(* PR-7 protocol tests for the serve daemon.

   The daemon runs in an in-process domain on a scratch Unix socket; the
   tests drive it through {!Serve.Client}, the same code path the
   [cdsspec_run client] subcommand uses. Verdicts streamed over the
   protocol are pinned against direct {!Store.explore_checked} runs —
   the serve layer must be a transport, never a semantics change. *)

module J = Analyze.Json
module B = Structures.Benchmark

let cap = 30_000

(* ------------------------------------------------------------------ *)
(* JSON wire format *)

let samples =
  [
    J.Null;
    J.Bool true;
    J.Bool false;
    J.Int 0;
    J.Int (-42);
    J.Int max_int;
    J.Float 1.5;
    J.Float (-0.25);
    J.Str "";
    J.Str "plain";
    J.Str "esc \" \\ \n \t \r \x01 end";
    J.Str "caf\xc3\xa9";
    J.List [];
    J.List [ J.Int 1; J.Str "two"; J.Null ];
    J.Obj [];
    J.Obj
      [
        ("event", J.Str "result");
        ("bugs", J.List [ J.Obj [ ("key", J.Str "k"); ("message", J.Str "line1\nline2") ] ]);
        ("nested", J.Obj [ ("deep", J.List [ J.List [ J.Bool false ] ]) ]);
      ];
  ]

let test_json_roundtrip () =
  List.iter
    (fun j ->
      (match J.of_string (J.to_line j) with
      | Ok j' -> Alcotest.(check bool) ("to_line roundtrip: " ^ J.to_line j) true (j = j')
      | Error m -> Alcotest.fail ("to_line roundtrip failed: " ^ m));
      match J.of_string (J.to_string j) with
      | Ok j' -> Alcotest.(check bool) ("to_string roundtrip: " ^ J.to_line j) true (j = j')
      | Error m -> Alcotest.fail ("to_string roundtrip failed: " ^ m))
    samples;
  (* NDJSON framing invariant: one event, one line *)
  List.iter
    (fun j ->
      Alcotest.(check bool)
        "compact form never contains a newline"
        false
        (String.contains (J.to_line j) '\n'))
    samples

let test_json_errors () =
  let rejects what s =
    match J.of_string s with
    | Ok _ -> Alcotest.fail (what ^ ": should be rejected: " ^ s)
    | Error _ -> ()
  in
  rejects "empty" "";
  rejects "trailing garbage" "{} x";
  rejects "bare word" "treiber";
  rejects "unterminated string" "\"abc";
  rejects "unterminated object" "{\"a\": 1";
  rejects "missing colon" "{\"a\" 1}";
  rejects "trailing comma" "[1,]";
  (match J.of_string "  { \"a\" : [ 1 , 2.5 ] } " with
  | Ok (J.Obj [ ("a", J.List [ J.Int 1; J.Float 2.5 ]) ]) -> ()
  | Ok _ -> Alcotest.fail "whitespace parse wrong shape"
  | Error m -> Alcotest.fail ("whitespace parse failed: " ^ m))

(* ------------------------------------------------------------------ *)
(* Daemon harness *)

let socket_counter = ref 0

(* Run [f] against an in-process daemon; clean shutdown (with the "bye"
   ack) and domain join are part of every test's teardown, so a wedged
   server fails the test rather than leaking. *)
let with_server ?store_dir ~jobs f =
  incr socket_counter;
  let socket = Printf.sprintf "serve-test-%d.sock" !socket_counter in
  if Sys.file_exists socket then Sys.remove socket;
  let d = Domain.spawn (fun () -> Serve.Server.serve ~socket ~jobs ?store_dir ()) in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "server socket appears" true (Sys.file_exists socket);
  Fun.protect
    ~finally:(fun () ->
      (let c = Serve.Client.connect socket in
       Serve.Client.send c (J.Obj [ ("op", J.Str "shutdown") ]);
       (match Serve.Client.recv ~timeout:30. c with
       | Serve.Client.Msg j ->
         Alcotest.(check (option string))
           "shutdown acked with bye" (Some "bye")
           (Option.bind (J.member "event" j) J.to_str)
       | _ -> Alcotest.fail "no bye on shutdown");
       Serve.Client.close c);
      Domain.join d;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f socket)

let ev j = Option.bind (J.member "event" j) J.to_str
let str_f k j = Option.bind (J.member k j) J.to_str
let int_f k j = Option.bind (J.member k j) J.to_int

(* Like {!Serve.Client.wait} but with a timeout on every line, so a
   wedged daemon fails loudly instead of hanging the suite. *)
let wait_job c ~job =
  let rec go acc =
    match Serve.Client.recv ~timeout:300. c with
    | Serve.Client.Timeout -> Alcotest.fail "timed out waiting for job events"
    | Serve.Client.Eof -> Alcotest.fail "server closed connection mid-job"
    | Serve.Client.Msg j -> (
      if Serve.Client.job_id j <> Some job then go acc
      else
        let acc = j :: acc in
        match ev j with Some ("done" | "error") -> List.rev acc | _ -> go acc)
  in
  go []

let submit c req =
  Serve.Client.send c req;
  match Serve.Client.recv ~timeout:30. c with
  | Serve.Client.Msg j when ev j = Some "accepted" -> (
    match Serve.Client.job_id j with
    | Some job -> job
    | None -> Alcotest.fail "accepted event without job id")
  | Serve.Client.Msg j -> Alcotest.fail ("expected accepted, got " ^ J.to_line j)
  | _ -> Alcotest.fail "no accepted event"

let check_req ?test bench =
  J.Obj
    ([ ("op", J.Str "check"); ("bench", J.Str bench); ("max_executions", J.Int cap) ]
    @ match test with Some t -> [ ("test", J.Str t) ] | None -> [])

(* The protocol-visible summary of one result event. *)
let result_summary j =
  ( Option.get (str_f "test" j),
    (match J.member "bugs" j with
    | Some (J.List bs) -> List.filter_map (str_f "key") bs
    | _ -> []),
    Option.get (int_f "explored" j),
    Option.get (int_f "distinct_graphs" j) )

let results_of events =
  List.filter_map (fun j -> if ev j = Some "result" then Some (result_summary j) else None) events

(* Reference: what a direct in-process check of the same job reports. *)
let direct_results ?store bench ~test =
  let b = Option.get (Structures.Registry.find bench) in
  let ords = Structures.Ords.default b.B.sites in
  let tests =
    match test with
    | None -> b.B.tests
    | Some t -> List.filter (fun (x : B.test) -> x.B.test_name = t) b.B.tests
  in
  List.map
    (fun (t : B.test) ->
      let r, _ =
        Store.explore_checked ?store ~checker:Cdsspec.Checker.default_config ~use_cache:true
          ~max_execs:(Some cap) ~jobs:1 ~prune:true ~engine:`Arena b ~ords t
      in
      (t.B.test_name, List.map Mc.Bug.key r.Mc.Explorer.bugs, r.Mc.Explorer.stats.explored,
       r.Mc.Explorer.stats.distinct_graphs))
    tests

(* ------------------------------------------------------------------ *)
(* Protocol tests *)

let test_ping_and_list () =
  with_server ~jobs:2 (fun socket ->
      let c = Serve.Client.connect socket in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () ->
          Serve.Client.send c (J.Obj [ ("op", J.Str "ping") ]);
          (match Serve.Client.recv ~timeout:30. c with
          | Serve.Client.Msg j ->
            Alcotest.(check (option string)) "pong" (Some "pong") (ev j);
            Alcotest.(check (option string))
              "pong carries the engine revision"
              (Some Mc.Engine_rev.current)
              (str_f "engine_rev" j);
            Alcotest.(check (option int)) "pong reports pool size" (Some 2) (int_f "jobs" j)
          | _ -> Alcotest.fail "no pong");
          Serve.Client.send c (J.Obj [ ("op", J.Str "list") ]);
          match Serve.Client.recv ~timeout:30. c with
          | Serve.Client.Msg j -> (
            Alcotest.(check (option string)) "benchmarks event" (Some "benchmarks") (ev j);
            match J.member "benchmarks" j with
            | Some (J.List bs) ->
              let names = List.filter_map (str_f "name") bs in
              Alcotest.(check bool)
                "list includes Treiber Stack" true
                (List.mem "Treiber Stack" names)
            | _ -> Alcotest.fail "benchmarks field missing")
          | _ -> Alcotest.fail "no benchmarks event"))

let test_unknown_bench_suggestions () =
  with_server ~jobs:1 (fun socket ->
      let c = Serve.Client.connect socket in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () ->
          let job = submit c (check_req "treiber stak") in
          match wait_job c ~job with
          | [ j ] ->
            Alcotest.(check (option string)) "job fails" (Some "error") (ev j);
            let sugg =
              match J.member "suggestions" j with
              | Some (J.List l) -> List.filter_map J.to_str l
              | _ -> []
            in
            Alcotest.(check bool)
              "error suggests the real name" true
              (List.mem "Treiber Stack" sugg)
          | evs ->
            Alcotest.fail
              (Printf.sprintf "expected a single error event, got %d events" (List.length evs))))

let test_bad_override () =
  with_server ~jobs:1 (fun socket ->
      let c = Serve.Client.connect socket in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () ->
          Serve.Client.send c
            (J.Obj
               [
                 ("op", J.Str "check");
                 ("bench", J.Str "Treiber Stack");
                 ("overrides", J.List [ J.List [ J.Str "no_such_site"; J.Str "relaxed" ] ]);
               ]);
          (* accepted, then a structured error — a typo'd pin must never
             silently check the published table instead *)
          (match Serve.Client.recv ~timeout:30. c with
          | Serve.Client.Msg j -> Alcotest.(check (option string)) "accepted" (Some "accepted") (ev j)
          | _ -> Alcotest.fail "no accepted event");
          match Serve.Client.recv ~timeout:60. c with
          | Serve.Client.Msg j -> Alcotest.(check (option string)) "error" (Some "error") (ev j)
          | _ -> Alcotest.fail "no error event"))

let test_concurrent_clients () =
  (* two clients with overlapping jobs on a 2-worker pool; each client's
     verdicts must match a direct run of the same job *)
  let expect_a = direct_results "Treiber Stack" ~test:None in
  let expect_b = direct_results "M&S Queue" ~test:(Some "2enq-2deq") in
  with_server ~jobs:2 (fun socket ->
      let ca = Serve.Client.connect socket in
      let cb = Serve.Client.connect socket in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close ca;
          Serve.Client.close cb)
        (fun () ->
          let ja = submit ca (check_req "Treiber Stack") in
          let jb = submit cb (check_req "M&S Queue" ~test:"2enq-2deq") in
          let evs_a = wait_job ca ~job:ja in
          let evs_b = wait_job cb ~job:jb in
          Alcotest.(check bool)
            "client A verdicts match direct check" true
            (results_of evs_a = expect_a);
          Alcotest.(check bool)
            "client B verdicts match direct check" true
            (results_of evs_b = expect_b);
          let done_ok evs =
            match List.rev evs with
            | last :: _ when ev last = Some "done" -> J.member "ok" last = Some (J.Bool true)
            | _ -> false
          in
          Alcotest.(check bool) "client A done ok" true (done_ok evs_a);
          Alcotest.(check bool) "client B done ok" true (done_ok evs_b)))

let test_disconnect_does_not_wedge () =
  with_server ~jobs:1 (fun socket ->
      (* client 1 submits a multi-test job and vanishes right after the
         accept — on a 1-worker pool a wedged or fd-racing worker would
         stall every later job *)
      let c1 = Serve.Client.connect socket in
      let _job = submit c1 (check_req "M&S Queue") in
      Serve.Client.close c1;
      let c2 = Serve.Client.connect socket in
      Fun.protect ~finally:(fun () -> Serve.Client.close c2) (fun () ->
          let job = submit c2 (check_req "Treiber Stack" ~test:"2push-2pop") in
          let evs = wait_job c2 ~job in
          match List.rev evs with
          | last :: _ ->
            Alcotest.(check (option string))
              "job after disconnect completes" (Some "done") (ev last)
          | [] -> Alcotest.fail "no events for post-disconnect job"))

let test_store_warm_over_protocol () =
  let dir = "serve-store-scratch" in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  with_server ~jobs:1 ~store_dir:dir (fun socket ->
      let c = Serve.Client.connect socket in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () ->
          let req = check_req "M&S Queue" ~test:"2enq-2deq" in
          let cold = wait_job c ~job:(submit c req) in
          let warm = wait_job c ~job:(submit c req) in
          let dispo evs =
            List.filter_map (fun j -> if ev j = Some "result" then str_f "store" j else None) evs
          in
          Alcotest.(check (list string)) "first job is cold" [ "miss" ] (dispo cold);
          Alcotest.(check (list string)) "second job is warm" [ "hit" ] (dispo warm);
          Alcotest.(check bool)
            "warm verdicts identical over the wire" true
            (results_of cold
            |> List.map (fun (t, bugs, _, g) -> (t, bugs, g))
            = (results_of warm |> List.map (fun (t, bugs, _, g) -> (t, bugs, g))));
          let explored evs = List.map (fun (_, _, e, _) -> e) (results_of evs) in
          Alcotest.(check bool)
            "warm job collapses" true
            (List.for_all2 (fun w c -> w <= c) (explored warm) (explored cold))));
  rm_rf dir

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "printer/parser roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "ping and list" `Quick test_ping_and_list;
          Alcotest.test_case "unknown bench suggestions" `Quick test_unknown_bench_suggestions;
          Alcotest.test_case "bad override" `Quick test_bad_override;
          Alcotest.test_case "concurrent clients" `Slow test_concurrent_clients;
          Alcotest.test_case "disconnect does not wedge pool" `Quick test_disconnect_does_not_wedge;
          Alcotest.test_case "warm store over protocol" `Quick test_store_warm_over_protocol;
        ] );
    ]
