(* Tests for the cdsspec core layer: sequential state helpers, method-call
   extraction from annotation streams, the ordering relation, and the
   checking semantics of Definitions 1-6. *)

module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Call = Cdsspec.Call
module Il = Cdsspec.Seq_state.Int_list
module Im = Cdsspec.Seq_state.Int_map
open C11.Memory_order

(* --------------------------- seq state --------------------------- *)

let test_int_list () =
  let l = Il.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "front" (Some 1) (Il.front l);
  Alcotest.(check (option int)) "back" (Some 3) (Il.back l);
  Alcotest.(check (list int)) "push_back" [ 1; 2; 3; 4 ] (Il.to_list (Il.push_back 4 l));
  Alcotest.(check (list int)) "push_front" [ 0; 1; 2; 3 ] (Il.to_list (Il.push_front 0 l));
  Alcotest.(check (list int)) "pop_front" [ 2; 3 ] (Il.to_list (Il.pop_front l));
  Alcotest.(check (list int)) "pop_back" [ 1; 2 ] (Il.to_list (Il.pop_back l));
  Alcotest.(check (list int)) "remove middle" [ 1; 3 ] (Il.to_list (Il.remove 2 l));
  Alcotest.(check (list int)) "remove absent" [ 1; 2; 3 ] (Il.to_list (Il.remove 9 l));
  Alcotest.(check bool) "mem" true (Il.mem 2 l);
  Alcotest.(check bool) "empty" true (Il.is_empty Il.empty);
  Alcotest.(check (option int)) "front of empty" None (Il.front Il.empty);
  Alcotest.(check (list int)) "pop empty" [] (Il.to_list (Il.pop_front Il.empty))

let int_list_arb = QCheck.(list_of_size (Gen.int_bound 8) small_int)

let prop_push_pop_front =
  QCheck.Test.make ~name:"push_front then pop_front is identity" ~count:200 int_list_arb
    (fun l ->
      let il = Il.of_list l in
      Il.to_list (Il.pop_front (Il.push_front 42 il)) = l)

let prop_push_back_back =
  QCheck.Test.make ~name:"back of push_back" ~count:200 int_list_arb (fun l ->
      Il.back (Il.push_back 42 (Il.of_list l)) = Some 42)

let prop_fifo_order =
  QCheck.Test.make ~name:"push_back stream dequeues in order" ~count:200 int_list_arb (fun l ->
      let il = List.fold_left (fun acc v -> Il.push_back v acc) Il.empty l in
      let rec drain acc il =
        match Il.front il with
        | None -> List.rev acc
        | Some v -> drain (v :: acc) (Il.pop_front il)
      in
      drain [] il = l)

let test_int_map () =
  let m = Im.put ~key:1 ~value:10 (Im.put ~key:2 ~value:20 Im.empty) in
  Alcotest.(check (option int)) "get" (Some 10) (Im.get ~key:1 m);
  Alcotest.(check int) "get_or hit" 20 (Im.get_or 0 ~key:2 m);
  Alcotest.(check int) "get_or miss" 0 (Im.get_or 0 ~key:3 m);
  Alcotest.(check int) "cardinal" 2 (Im.cardinal m);
  Alcotest.(check (option int)) "overwrite" (Some 11) (Im.get ~key:1 (Im.put ~key:1 ~value:11 m));
  Alcotest.(check (option int)) "remove" None (Im.get ~key:1 (Im.remove ~key:1 m))

(* -------------------- running tiny programs ---------------------- *)

(* Capture one feasible execution (with its annotations) of a program. *)
let one_execution program =
  let captured = ref None in
  ignore
    (Mc.Explorer.explore
       ~config:{ Mc.Explorer.default_config with max_executions = Some 1 }
       ~on_feasible:(fun exec annots ->
         captured := Some (exec, annots);
         [])
       program);
  match !captured with
  | Some x -> x
  | None -> Alcotest.fail "program had no feasible execution"

let calls_of program =
  let exec, annots = one_execution program in
  (exec, Cdsspec.History.calls_of_annots exec annots)

(* ---------------------- call extraction -------------------------- *)

let test_calls_basic () =
  let _, calls =
    calls_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"put" ~args:[ 7 ] (fun () ->
            P.store Relaxed x 7;
            A.op_define ());
        ignore
          (A.api_fun ~name:"get" ~args:[] (fun () ->
               let v = P.load Relaxed x in
               A.op_define ();
               v)))
  in
  match calls with
  | [ put; get ] ->
    Alcotest.(check string) "name" "put" put.Call.name;
    Alcotest.(check (list int)) "args" [ 7 ] put.args;
    Alcotest.(check (option int)) "void ret" None put.ret;
    Alcotest.(check int) "one op" 1 (List.length put.ordering_points);
    Alcotest.(check (option int)) "get ret" (Some 7) get.Call.ret;
    Alcotest.(check int) "ids dense" 1 get.id
  | l -> Alcotest.failf "expected 2 calls, got %d" (List.length l)

let test_calls_nested () =
  (* the inner api_call is an internal call: only the outermost counts,
     and ordering points inside the nested call accrue to it *)
  let _, calls =
    calls_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"outer" ~args:[] (fun () ->
            A.api_proc ~name:"inner" ~args:[] (fun () ->
                P.store Relaxed x 1;
                A.op_define ())))
  in
  match calls with
  | [ c ] ->
    Alcotest.(check string) "outermost only" "outer" c.Call.name;
    Alcotest.(check int) "inner op attributed" 1 (List.length c.ordering_points)
  | l -> Alcotest.failf "expected 1 call, got %d" (List.length l)

let test_calls_op_clear () =
  let _, calls =
    calls_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"m" ~args:[] (fun () ->
            P.store Relaxed x 1;
            A.op_define ();
            P.store Relaxed x 2;
            A.op_clear ();
            P.store Relaxed x 3;
            A.op_define ()))
  in
  match calls with
  | [ c ] -> Alcotest.(check int) "only post-clear op" 1 (List.length c.Call.ordering_points)
  | _ -> Alcotest.fail "expected 1 call"

let test_calls_potential_op () =
  let _, calls =
    calls_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"m" ~args:[] (fun () ->
            P.store Relaxed x 1;
            A.potential_op "maybe";
            P.store Relaxed x 2;
            A.potential_op "other";
            A.op_check "maybe"))
  in
  match calls with
  | [ c ] ->
    (* only the "maybe" potential op is confirmed *)
    Alcotest.(check int) "confirmed op" 1 (List.length c.Call.ordering_points)
  | _ -> Alcotest.fail "expected 1 call"

let test_calls_unchecked_potential_op () =
  let _, calls =
    calls_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"m" ~args:[] (fun () ->
            P.store Relaxed x 1;
            A.potential_op "maybe"))
  in
  match calls with
  | [ c ] -> Alcotest.(check int) "unconfirmed -> no op" 0 (List.length c.Call.ordering_points)
  | _ -> Alcotest.fail "expected 1 call"

(* --------------------- ordering relation ------------------------- *)

let test_ordering_same_thread () =
  let exec, calls =
    calls_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"a" ~args:[] (fun () ->
            P.store Relaxed x 1;
            A.op_define ());
        A.api_proc ~name:"b" ~args:[] (fun () ->
            P.store Relaxed x 2;
            A.op_define ()))
  in
  let r = Cdsspec.History.ordering_relation exec calls in
  Alcotest.(check bool) "sequenced-before orders calls" true (C11.Relation.reachable r 0 1);
  Alcotest.(check bool) "no reverse edge" false (C11.Relation.reachable r 1 0);
  Alcotest.(check int) "no unordered pairs" 0
    (List.length (Cdsspec.History.unordered_pairs r calls))

let test_ordering_concurrent () =
  (* two relaxed writers in different threads: unordered *)
  let program () =
    let x = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          A.api_proc ~name:"a" ~args:[] (fun () ->
              P.store Relaxed x 1;
              A.op_define ()))
    in
    let t2 =
      P.spawn (fun () ->
          A.api_proc ~name:"b" ~args:[] (fun () ->
              P.store Relaxed x 2;
              A.op_define ()))
    in
    P.join t1;
    P.join t2
  in
  let exec, calls = calls_of program in
  let r = Cdsspec.History.ordering_relation exec calls in
  Alcotest.(check int) "one unordered pair" 1
    (List.length (Cdsspec.History.unordered_pairs r calls));
  match calls with
  | [ a; b ] ->
    Alcotest.(check int) "a concurrent with b" 1
      (List.length (Cdsspec.History.concurrent r calls a));
    Alcotest.(check int) "b concurrent with a" 1
      (List.length (Cdsspec.History.concurrent r calls b))
  | _ -> Alcotest.fail "expected 2 calls"

let test_justifying_subhistories () =
  let exec, calls =
    calls_of (fun () ->
        let x = P.malloc ~init:0 1 in
        let m name =
          A.api_proc ~name ~args:[] (fun () ->
              P.store Relaxed x 1;
              A.op_define ())
        in
        m "a";
        m "b";
        m "c")
  in
  let r = Cdsspec.History.ordering_relation exec calls in
  let c = List.nth calls 2 in
  let subs, truncated = Cdsspec.History.justifying_subhistories r calls c in
  Alcotest.(check bool) "not truncated" false truncated;
  Alcotest.(check int) "chain has one linearization" 1 (List.length subs);
  Alcotest.(check (list string)) "prefix then m" [ "a"; "b"; "c" ]
    (List.map (fun (x : Call.t) -> x.name) (List.hd subs))

(* ------------------------ checker semantics ---------------------- *)

(* A deterministic register spec: read must return the current value in
   EVERY history (Definition 6's forall-histories). *)
let strict_register_spec =
  let write_spec =
    {
      Spec.default_method with
      side_effect = Some (fun _st (info : Spec.info) -> (Call.arg info.call 0, None));
    }
  in
  let read_spec =
    {
      Spec.default_method with
      side_effect = Some (fun st _ -> (st, Some st));
      postcondition =
        Some (fun _st (info : Spec.info) ~s_ret -> Some (Call.ret_or min_int info.call) = s_ret);
    }
  in
  Spec.Packed
    {
      name = "strict-register";
      initial = (fun () -> 0);
      methods = [ ("write", write_spec); ("read", read_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 0; ordering_point_lines = 0; admissibility_lines = 0; api_methods = 2 };
    }

let register_program () =
  let x = P.malloc ~init:0 1 in
  let t1 =
    P.spawn (fun () ->
        A.api_proc ~name:"write" ~args:[ 1 ] (fun () ->
            P.store Relaxed x 1;
            A.op_define ()))
  in
  let t2 =
    P.spawn (fun () ->
        ignore
          (A.api_fun ~name:"read" ~args:[] (fun () ->
               let v = P.load Relaxed x in
               A.op_define ();
               v)))
  in
  P.join t1;
  P.join t2

let explore_with_spec spec program =
  Mc.Explorer.explore ~on_feasible:(Cdsspec.Checker.hook spec) program

let test_forall_histories_rejects () =
  (* concurrent write/read: some history orders the write first, where a
     read of 0 fails the deterministic postcondition *)
  let r = explore_with_spec strict_register_spec register_program in
  Alcotest.(check bool) "deterministic spec violated" true
    (List.exists (function Mc.Bug.Spec_violation _ -> true | _ -> false) r.bugs)

let test_justification_accepts () =
  (* the proper non-deterministic register spec accepts the same program *)
  let r = explore_with_spec Structures.Atomic_register.spec register_program in
  Alcotest.(check (list string)) "no violations" [] (List.map Mc.Bug.key r.bugs)

let test_admissibility_violation () =
  let rule = { Spec.first = "write"; second = "read"; requires_order = (fun _ _ -> true) } in
  let spec =
    match Structures.Atomic_register.spec with
    | Spec.Packed s -> Spec.Packed { s with admissibility = [ rule ] }
  in
  let r = explore_with_spec spec register_program in
  Alcotest.(check bool) "admissibility violation reported" true
    (List.exists
       (function Mc.Bug.Spec_violation { kind; _ } -> kind = "admissibility" | _ -> false)
       r.bugs)

let test_cyclic_ordering_detected () =
  (* overlapping calls with multiple seq_cst ordering points can induce a
     cyclic relation; the checker reports it rather than looping *)
  let program () =
    let x = P.malloc ~init:0 1 in
    let y = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          A.api_proc ~name:"a" ~args:[] (fun () ->
              P.store Seq_cst x 1;
              A.op_define ();
              P.store Seq_cst x 2;
              A.op_define ()))
    in
    let t2 =
      P.spawn (fun () ->
          A.api_proc ~name:"b" ~args:[] (fun () ->
              P.store Seq_cst y 1;
              A.op_define ();
              P.store Seq_cst y 2;
              A.op_define ()))
    in
    P.join t1;
    P.join t2
  in
  let r = explore_with_spec strict_register_spec program in
  Alcotest.(check bool) "cycle reported in some execution" true
    (List.exists
       (function Mc.Bug.Spec_violation { kind; _ } -> kind = "cyclic-ordering" | _ -> false)
       r.bugs)

let test_precondition_failure () =
  (* unlock with no lock: precondition fails in the (only) history *)
  let spec =
    Structures.Ticket_lock.mutex_spec ~name:"m" ~lock_names:[ "lock" ] ~unlock_names:[ "unlock" ]
      ()
  in
  let program () =
    let x = P.malloc ~init:0 1 in
    A.api_proc ~name:"unlock" ~args:[] (fun () ->
        P.store Relaxed x 0;
        A.op_define ())
  in
  let r = explore_with_spec spec program in
  Alcotest.(check bool) "precondition failure reported" true
    (List.exists (function Mc.Bug.Spec_violation _ -> true | _ -> false) r.bugs)

let test_objects_checked_independently () =
  (* two registers: a write to one must not affect the other's checking *)
  let program () =
    let r1 = Structures.Atomic_register.create () in
    let r2 = Structures.Atomic_register.create () in
    let ords = Structures.Ords.default Structures.Atomic_register.sites in
    Structures.Atomic_register.write ords r1 5;
    let v = Structures.Atomic_register.read ords r2 in
    ignore v
  in
  let r = explore_with_spec Structures.Atomic_register.spec program in
  Alcotest.(check (list string)) "no cross-object pollution" [] (List.map Mc.Bug.key r.bugs)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core-layer"
    [
      ( "seq-state",
        [
          Alcotest.test_case "int list" `Quick test_int_list;
          Alcotest.test_case "int map" `Quick test_int_map;
          qt prop_push_pop_front;
          qt prop_push_back_back;
          qt prop_fifo_order;
        ] );
      ( "calls",
        [
          Alcotest.test_case "basic" `Quick test_calls_basic;
          Alcotest.test_case "nested" `Quick test_calls_nested;
          Alcotest.test_case "op_clear" `Quick test_calls_op_clear;
          Alcotest.test_case "potential op confirmed" `Quick test_calls_potential_op;
          Alcotest.test_case "potential op unconfirmed" `Quick test_calls_unchecked_potential_op;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "same thread" `Quick test_ordering_same_thread;
          Alcotest.test_case "concurrent" `Quick test_ordering_concurrent;
          Alcotest.test_case "justifying subhistories" `Quick test_justifying_subhistories;
        ] );
      ( "checker",
        [
          Alcotest.test_case "forall histories rejects" `Quick test_forall_histories_rejects;
          Alcotest.test_case "justification accepts" `Quick test_justification_accepts;
          Alcotest.test_case "admissibility" `Quick test_admissibility_violation;
          Alcotest.test_case "cyclic ordering" `Quick test_cyclic_ordering_detected;
          Alcotest.test_case "precondition" `Quick test_precondition_failure;
          Alcotest.test_case "object isolation" `Quick test_objects_checked_independently;
        ] );
    ]
