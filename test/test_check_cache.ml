(* PR-4 differential and regression tests.

   Differential: the prefix-sharing history replay (with and without the
   cross-execution check cache) must report byte-identical bug lists to
   the legacy list-then-replay path — over every exhaustive registry
   structure, in serial, parallel and seeded-fuzz exploration modes, on
   correct and known-buggy memory orders.

   Regression: the OP-annotation semantics fixes (op_clear /
   op_clear_define must clear the potential set, repeated op_check must
   not duplicate ordering points), the both-orientations admissibility
   check for same-name rules, the surfaced truncation counters, and the
   [strict_histories] failure mode. *)

module P = Mc.Program
module A = Cdsspec.Annotations
module E = Mc.Explorer
module B = Structures.Benchmark
module Ck = Cdsspec.Checker
module Call = Cdsspec.Call
module Spec = Cdsspec.Spec
open C11.Memory_order

let legacy_config = { Ck.default_config with legacy_replay = true }

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let explore ~config ?cache ?(jobs = 1) ?cap (b : B.t) ~ords (t : B.test) =
  let econfig = { E.default_config with scheduler = b.B.scheduler; max_executions = cap } in
  let hook = Ck.hook ~config ?cache b.B.spec in
  if jobs <= 1 then E.explore ~config:econfig ~on_feasible:hook (t.B.program ords)
  else Mc.Parallel.explore ~config:econfig ~on_feasible:hook ~jobs (t.B.program ords)

let keys (r : E.result) = List.map Mc.Bug.key r.bugs

let bench name =
  match Structures.Registry.find name with
  | Some b -> b
  | None -> Alcotest.fail ("unknown benchmark " ^ name)

(* ----------------------- differential: serial --------------------- *)

(* Every unit test of every exhaustive registry structure: legacy
   replay, prefix-sharing replay, and prefix-sharing + cache must agree
   on the bug list. Capped serial DFS is deterministic, so identical
   per-execution verdicts imply identical explorations. *)
let test_differential_serial () =
  List.iter
    (fun (b : B.t) ->
      let ords = Structures.Ords.default b.B.sites in
      List.iter
        (fun (t : B.test) ->
          let where = b.B.name ^ "/" ^ t.B.test_name in
          let legacy = keys (explore ~config:legacy_config ~cap:300 b ~ords t) in
          let shared = keys (explore ~config:Ck.default_config ~cap:300 b ~ords t) in
          let cache = Ck.create_cache () in
          let cached = keys (explore ~config:Ck.default_config ~cache ~cap:300 b ~ords t) in
          Alcotest.(check (list string)) (where ^ ": shared = legacy") legacy shared;
          Alcotest.(check (list string)) (where ^ ": cached = legacy") legacy cached)
        b.B.tests)
    Structures.Registry.exhaustive

(* Known-buggy memory orders: the assertion-violation messages embed the
   violating history and call, so byte-identical bug keys pin the
   message-reconstruction path of the prefix-sharing walker. *)
let test_differential_buggy () =
  let b = bench "M&S Queue" in
  let found = ref false in
  List.iter
    (fun (label, ords) ->
      List.iter
        (fun (t : B.test) ->
          let where = "M&S Queue[" ^ label ^ "]/" ^ t.B.test_name in
          let legacy = keys (explore ~config:legacy_config ~cap:2000 b ~ords t) in
          let cache = Ck.create_cache () in
          let cached = keys (explore ~config:Ck.default_config ~cache ~cap:2000 b ~ords t) in
          if legacy <> [] then found := true;
          Alcotest.(check (list string)) (where ^ ": cached = legacy") legacy cached)
        b.B.tests)
      Structures.Ms_queue.known_bugs;
  Alcotest.(check bool) "some buggy configuration produced bugs" true !found

(* ---------------------- differential: parallel -------------------- *)

(* Uncapped exploration so the parallel determinism contract applies:
   jobs=2 with the cache on must equal the serial legacy path. *)
let test_differential_parallel () =
  List.iter
    (fun name ->
      let b = bench name in
      let ords = Structures.Ords.default b.B.sites in
      let t = List.hd b.B.tests in
      let legacy = keys (explore ~config:legacy_config b ~ords t) in
      let cache = Ck.create_cache () in
      let cached = keys (explore ~config:Ck.default_config ~cache ~jobs:2 b ~ords t) in
      Alcotest.(check (list string)) (name ^ ": -j2 cached = serial legacy") legacy cached)
    [ "Ticket Lock"; "Seqlock"; "M&S Queue" ];
  (* and a buggy configuration through the parallel cached path *)
  let b = bench "M&S Queue" in
  let ords = snd (List.hd Structures.Ms_queue.known_bugs) in
  let t = List.hd b.B.tests in
  let legacy = keys (explore ~config:legacy_config b ~ords t) in
  let cache = Ck.create_cache () in
  let cached = keys (explore ~config:Ck.default_config ~cache ~jobs:2 b ~ords t) in
  Alcotest.(check bool) "buggy M&S queue found" true (legacy <> []);
  Alcotest.(check (list string)) "buggy: -j2 cached = serial legacy" legacy cached

(* ------------------------ differential: fuzz ---------------------- *)

(* Same seed, same execution budget: run [i] of seed [s] is a pure
   function of [(s, i)], so the cached and legacy campaigns see the same
   executions and must report the same bugs. *)
let fuzz_keys ~config ?cache (b : B.t) ~ords (t : B.test) =
  let fconfig =
    {
      Fuzz.Engine.default_config with
      scheduler = b.B.scheduler;
      max_executions = Some 400;
      minimize = false;
    }
  in
  let r =
    Fuzz.Engine.run ~config:fconfig ~on_feasible:(Ck.hook ~config ?cache b.B.spec) ~seed:42
      (t.B.program ords)
  in
  List.map (fun (f : Fuzz.Engine.found) -> Mc.Bug.key f.bug) r.found

let test_differential_fuzz () =
  let b = bench "M&S Queue" in
  let t = List.hd b.B.tests in
  List.iter
    (fun (label, ords) ->
      let legacy = fuzz_keys ~config:legacy_config b ~ords t in
      let cache = Ck.create_cache () in
      let cached = fuzz_keys ~config:Ck.default_config ~cache b ~ords t in
      Alcotest.(check (list string)) (label ^ ": fuzz cached = legacy") legacy cached)
    (("default", Structures.Ords.default b.B.sites) :: Structures.Ms_queue.known_bugs)

(* ---------------------- OP annotation semantics ------------------- *)

let one_execution program =
  let captured = ref None in
  ignore
    (E.explore
       ~config:{ E.default_config with max_executions = Some 1 }
       ~on_feasible:(fun exec annots ->
         captured := Some (exec, annots);
         [])
       program);
  match !captured with
  | Some x -> x
  | None -> Alcotest.fail "program had no feasible execution"

let calls_of program =
  let exec, annots = one_execution program in
  (exec, Cdsspec.History.calls_of_annots exec annots)

let ops_of program =
  match snd (calls_of program) with
  | [ c ] -> List.length c.Call.ordering_points
  | l -> Alcotest.failf "expected 1 call, got %d" (List.length l)

(* [@OPClear] discards remembered potential ordering points, not just
   confirmed ones: a later [@OPCheck] of the cleared label is a no-op. *)
let test_op_clear_clears_potential () =
  let n =
    ops_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"m" ~args:[] (fun () ->
            P.store Relaxed x 1;
            A.potential_op "l";
            A.op_clear ();
            P.store Relaxed x 2;
            A.op_check "l"))
  in
  Alcotest.(check int) "cleared potential op is not confirmable" 0 n

let test_op_clear_define_clears_potential () =
  let n =
    ops_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"m" ~args:[] (fun () ->
            P.store Relaxed x 1;
            A.potential_op "l";
            P.store Relaxed x 2;
            A.op_clear_define ();
            A.op_check "l"))
  in
  Alcotest.(check int) "only the op_clear_define point survives" 1 n

let test_op_check_no_duplicates () =
  let n =
    ops_of (fun () ->
        let x = P.malloc ~init:0 1 in
        A.api_proc ~name:"m" ~args:[] (fun () ->
            P.store Relaxed x 1;
            A.potential_op "l";
            A.op_check "l";
            A.op_check "l"))
  in
  Alcotest.(check int) "repeated op_check confirms once" 1 n

(* ---------------- admissibility: both orientations ---------------- *)

let accounting =
  { Spec.spec_lines = 0; ordering_point_lines = 0; admissibility_lines = 0; api_methods = 0 }

let mk_call ~id ~args =
  {
    Call.id;
    tid = id;
    obj = 0;
    name = "m";
    args;
    ret = None;
    ordering_points = [];
    begin_index = 0;
    end_index = 0;
  }

(* A same-name rule with an asymmetric guard: only the orientation
   (larger-arg, smaller-arg) demands an order. The legacy checker
   evaluated one orientation per unordered pair, so whether the finding
   fired depended on enumeration order; now both orientations are always
   checked. *)
let test_admissibility_orientations () =
  let spec =
    {
      Spec.name = "adm";
      initial = (fun () -> ());
      methods = [];
      admissibility =
        [
          {
            Spec.first = "m";
            second = "m";
            requires_order = (fun m1 m2 -> Call.arg m1 0 > Call.arg m2 0);
          };
        ];
      accounting;
    }
  in
  let check label calls =
    let r = C11.Relation.create 2 in
    let vs = Ck.check_admissibility spec r calls in
    Alcotest.(check int) (label ^ ": exactly one finding") 1 (List.length vs)
  in
  (* the triggering orientation is (args=[2], args=[1]); it must be
     found whichever way the unordered pair is enumerated *)
  check "small id first" [ mk_call ~id:0 ~args:[ 1 ]; mk_call ~id:1 ~args:[ 2 ] ];
  check "large arg first" [ mk_call ~id:0 ~args:[ 2 ]; mk_call ~id:1 ~args:[ 1 ] ]

(* ------------------ truncation surfacing / strict ----------------- *)

let trivial_spec methods =
  Spec.Packed
    {
      Spec.name = "trivial";
      initial = (fun () -> ());
      methods;
      admissibility = [];
      accounting;
    }

(* Two concurrent calls: two sequential histories. *)
let two_concurrent () =
  let x = P.malloc ~init:0 1 in
  let t1 =
    P.spawn (fun () ->
        A.api_proc ~name:"a" ~args:[] (fun () ->
            P.store Relaxed x 1;
            A.op_define ()))
  in
  let t2 =
    P.spawn (fun () ->
        A.api_proc ~name:"b" ~args:[] (fun () ->
            P.store Relaxed x 2;
            A.op_define ()))
  in
  P.join t1;
  P.join t2

let test_strict_histories () =
  let exec, annots = one_execution two_concurrent in
  let spec = trivial_spec [ ("a", Spec.default_method); ("b", Spec.default_method) ] in
  let capped = { Ck.default_config with max_histories = 1 } in
  (* default: the capped check passes silently at the verdict level... *)
  Alcotest.(check int) "non-strict: no violation" 0
    (List.length (Ck.check_execution ~config:capped spec exec annots));
  (* ...but the truncation is counted, even with memoization off *)
  let cache = Ck.create_cache ~memoize:false () in
  ignore (Ck.check_execution ~config:capped ~cache spec exec annots);
  let c = Ck.cache_counters cache in
  Alcotest.(check bool) "histories_truncated counted" true (c.histories_truncated >= 1);
  Alcotest.(check int) "memoize:false stores nothing" 0 c.cache_entries;
  (* strict mode turns the partial proof into a failure *)
  let vs =
    Ck.check_execution ~config:{ capped with strict_histories = true } spec exec annots
  in
  Alcotest.(check bool) "strict: `Truncated violation" true
    (List.exists (fun (v : Ck.violation) -> v.kind = `Truncated) vs)

(* Justifying-subhistory cap: a∥b then c, where c needs justification
   and never gets it — its down-set has two linear extensions, so
   max_prefixes = 1 truncates, and strict mode reports it alongside the
   unjustified-call violation. *)
let test_strict_prefixes () =
  let program () =
    let x = P.malloc ~init:0 1 in
    let t1 =
      P.spawn (fun () ->
          A.api_proc ~name:"a" ~args:[] (fun () ->
              P.store Relaxed x 1;
              A.op_define ()))
    in
    let t2 =
      P.spawn (fun () ->
          A.api_proc ~name:"b" ~args:[] (fun () ->
              P.store Relaxed x 2;
              A.op_define ()))
    in
    P.join t1;
    P.join t2;
    A.api_proc ~name:"c" ~args:[] (fun () ->
        P.store Relaxed x 3;
        A.op_define ())
  in
  let exec, annots = one_execution program in
  let never_justified =
    {
      Spec.default_method with
      justifying_postcondition = Some (fun _ _ ~s_ret:_ -> false);
    }
  in
  let spec =
    trivial_spec
      [ ("a", Spec.default_method); ("b", Spec.default_method); ("c", never_justified) ]
  in
  let config = { Ck.default_config with max_prefixes = 1; strict_histories = true } in
  let vs = Ck.check_execution ~config spec exec annots in
  Alcotest.(check bool) "unjustified call reported" true
    (List.exists (fun (v : Ck.violation) -> v.kind = `Unjustified) vs);
  Alcotest.(check bool) "prefix truncation reported" true
    (List.exists
       (fun (v : Ck.violation) ->
         match v.kind with
         | `Truncated -> contains_substring v.message "max_prefixes"
         | _ -> false)
       vs)

(* ------------------------- fingerprints --------------------------- *)

let test_fingerprint () =
  let with_obj obj ret = { (mk_call ~id:0 ~args:[ 7 ]) with Call.obj; ret } in
  let chain () =
    let r = C11.Relation.create 2 in
    C11.Relation.add_edge r 0 1;
    r
  in
  let free () = C11.Relation.create 2 in
  let calls ?(obj = 0) ?ret () = [ with_obj obj ret; mk_call ~id:1 ~args:[] ] in
  Alcotest.(check string) "obj is not part of the fingerprint"
    (Ck.fingerprint (chain ()) (calls ~obj:0 ()))
    (Ck.fingerprint (chain ()) (calls ~obj:9 ()));
  Alcotest.(check bool) "C_RET distinguishes" true
    (Ck.fingerprint (chain ()) (calls ()) <> Ck.fingerprint (chain ()) (calls ~ret:3 ()));
  Alcotest.(check bool) "ordering edges distinguish" true
    (Ck.fingerprint (chain ()) (calls ()) <> Ck.fingerprint (free ()) (calls ()))

let test_cache_hits () =
  let exec, annots = one_execution two_concurrent in
  let spec = trivial_spec [ ("a", Spec.default_method); ("b", Spec.default_method) ] in
  let cache = Ck.create_cache () in
  ignore (Ck.check_execution ~cache spec exec annots);
  ignore (Ck.check_execution ~cache spec exec annots);
  let c = Ck.cache_counters cache in
  Alcotest.(check int) "one miss" 1 c.cache_misses;
  Alcotest.(check int) "one hit" 1 c.cache_hits;
  Alcotest.(check int) "one entry" 1 c.cache_entries;
  let off = Ck.create_cache ~memoize:false () in
  ignore (Ck.check_execution ~cache:off spec exec annots);
  ignore (Ck.check_execution ~cache:off spec exec annots);
  let c = Ck.cache_counters off in
  Alcotest.(check int) "memoize:false never hits" 0 c.cache_hits;
  Alcotest.(check int) "memoize:false counts misses" 2 c.cache_misses;
  Alcotest.(check int) "memoize:false stores nothing" 0 c.cache_entries

(* ------------------------------ main ------------------------------ *)

let () =
  Alcotest.run "check_cache"
    [
      ( "differential",
        [
          Alcotest.test_case "serial: every exhaustive structure" `Slow
            test_differential_serial;
          Alcotest.test_case "serial: known-buggy orders" `Slow test_differential_buggy;
          Alcotest.test_case "parallel (-j2)" `Slow test_differential_parallel;
          Alcotest.test_case "seeded fuzz" `Slow test_differential_fuzz;
        ] );
      ( "op annotations",
        [
          Alcotest.test_case "op_clear clears potential" `Quick test_op_clear_clears_potential;
          Alcotest.test_case "op_clear_define clears potential" `Quick
            test_op_clear_define_clears_potential;
          Alcotest.test_case "repeated op_check" `Quick test_op_check_no_duplicates;
        ] );
      ( "admissibility",
        [ Alcotest.test_case "both orientations" `Quick test_admissibility_orientations ] );
      ( "truncation",
        [
          Alcotest.test_case "strict histories" `Quick test_strict_histories;
          Alcotest.test_case "strict prefixes" `Quick test_strict_prefixes;
        ] );
      ( "cache",
        [
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
          Alcotest.test_case "hit/miss counters" `Quick test_cache_hits;
        ] );
    ]
