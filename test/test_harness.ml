(* Tests for the experiment harness: Figure 7/8 row construction,
   detection classification, expressiveness arithmetic, and the
   memory-order site tables. *)

module X = Harness.Experiments
module B = Structures.Benchmark

let cheap_limits =
  {
    X.max_executions = 20_000;
    checker = Cdsspec.Checker.default_config;
    jobs = 1;
    check_cache = true;
    prune = true;
  }

(* ------------------------------ Ords ----------------------------- *)

let test_ords_basics () =
  let sites = Structures.Blocking_queue.sites in
  let t = Structures.Ords.default sites in
  Alcotest.(check bool) "default lookup" true
    (Structures.Ords.get t "enq_cas_next" = C11.Memory_order.Release);
  Alcotest.check_raises "unknown site rejected"
    (Invalid_argument "Ords.get: unknown site nonsense") (fun () ->
      ignore (Structures.Ords.get t "nonsense"));
  (match Structures.Ords.weakened sites "enq_cas_next" with
  | Some w ->
    Alcotest.(check bool) "weakened one step" true
      (Structures.Ords.get w "enq_cas_next" = C11.Memory_order.Relaxed);
    Alcotest.(check bool) "others untouched" true
      (Structures.Ords.get w "deq_load_next" = C11.Memory_order.Acquire)
  | None -> Alcotest.fail "release should weaken");
  let pinned = Structures.Ords.with_order sites "deq_load_next" C11.Memory_order.Seq_cst in
  Alcotest.(check bool) "with_order pins" true
    (Structures.Ords.get pinned "deq_load_next" = C11.Memory_order.Seq_cst)

let test_ords_weakenable_counts () =
  (* every site of these benchmarks is weakenable except the relaxed ones *)
  let count name expected =
    match Structures.Registry.find name with
    | None -> Alcotest.fail ("missing benchmark " ^ name)
    | Some b ->
      Alcotest.(check int)
        (name ^ " weakenable sites")
        expected
        (List.length (Structures.Ords.weakenable b.sites))
  in
  count "Blocking Queue" 6;
  count "SPSC Queue" 2;
  count "Ticket Lock" 2;
  count "Atomic Register" 0;
  count "Contention-Free Lock" 2

(* --------------------------- Figure 7 ---------------------------- *)

let test_fig7_rows () =
  let benches = List.filter_map Structures.Registry.find [ "SPSC Queue"; "Atomic Register" ] in
  let rows = X.figure7 ~limits:cheap_limits benches in
  Alcotest.(check int) "one row per benchmark" 2 (List.length rows);
  List.iter
    (fun (r : X.fig7_row) ->
      Alcotest.(check bool) (r.name ^ " explored") true (r.executions > 0);
      Alcotest.(check bool) (r.name ^ " feasible") true
        (r.feasible > 0 && r.feasible <= r.executions))
    rows

(* --------------------------- Figure 8 ---------------------------- *)

let test_fig8_blocking_queue () =
  match Structures.Registry.find "Blocking Queue" with
  | None -> Alcotest.fail "missing"
  | Some b ->
    let rows = X.figure8 ~limits:cheap_limits [ b ] in
    (match rows with
    | [ r ] ->
      Alcotest.(check int) "injections" 6 r.injections;
      Alcotest.(check int) "all detected" 6 (r.builtin + r.admissibility + r.assertion);
      Alcotest.(check (list (pair string string))) "none undetected" [] (X.undetected rows)
    | _ -> Alcotest.fail "one row expected")

let test_fig8_register_trivial () =
  match Structures.Registry.find "Atomic Register" with
  | None -> Alcotest.fail "missing"
  | Some b ->
    let rows = X.figure8 ~limits:cheap_limits [ b ] in
    (match rows with
    | [ r ] -> Alcotest.(check int) "no weakenable sites" 0 r.injections
    | _ -> Alcotest.fail "one row expected")

(* ------------------------- expressiveness ------------------------ *)

let test_expressiveness_arithmetic () =
  let benches = List.filter_map Structures.Registry.find [ "Blocking Queue"; "SPSC Queue" ] in
  let e = X.expressiveness benches in
  Alcotest.(check int) "benchmarks" 2 e.benchmarks;
  Alcotest.(check int) "spec lines" (10 + 12) e.total_spec_lines;
  Alcotest.(check int) "methods" 4 e.api_methods;
  Alcotest.(check int) "ordering points" 4 e.ordering_points;
  Alcotest.(check int) "admissibility" 2 e.admissibility_lines;
  Alcotest.(check (float 0.01)) "avg" 11.0 e.avg_spec_lines;
  Alcotest.(check (float 0.01)) "ops per method" 1.0 e.ordering_points_per_method

(* --------------------------- known bugs -------------------------- *)

let test_known_bugs_found () =
  let rows = X.known_bugs ~limits:cheap_limits () in
  Alcotest.(check int) "three known bugs" 3 (List.length rows);
  List.iter
    (fun (r : X.known_bug_row) -> Alcotest.(check bool) (r.label ^ " found") true r.found)
    rows

(* --------------------------- fuzz rows --------------------------- *)

let test_fuzz_campaign_rows () =
  let limits = { X.default_fuzz_limits with fuzz_executions = Some 120 } in
  let rows = X.fuzz_campaign ~limits ~seed:13 (X.fuzz_workloads ()) in
  Alcotest.(check int) "one row per oversized workload" 5 (List.length rows);
  List.iter
    (fun (r : X.fuzz_row) ->
      Alcotest.(check int) (r.workload ^ ": ran the budget") 120 r.fuzz_execs;
      Alcotest.(check bool) (r.workload ^ ": some feasible") true (r.fuzz_feasible > 0);
      Alcotest.(check int) (r.workload ^ ": clean at default orders") 0 r.distinct_bugs;
      Alcotest.(check bool) (r.workload ^ ": throughput recorded") true (r.execs_per_sec > 0.))
    rows;
  (* deterministic: the same seed reproduces every count *)
  let rows' = X.fuzz_campaign ~limits ~seed:13 (X.fuzz_workloads ()) in
  List.iter2
    (fun (a : X.fuzz_row) (b : X.fuzz_row) ->
      Alcotest.(check int) (a.workload ^ ": coverage deterministic") a.fuzz_coverage
        b.fuzz_coverage;
      Alcotest.(check int) (a.workload ^ ": feasible deterministic") a.fuzz_feasible
        b.fuzz_feasible)
    rows rows'

(* ------------------------------ bugs ----------------------------- *)

let test_bug_keys_stable () =
  let b1 = Mc.Bug.Assertion_failure { tid = 1; message = "m" } in
  let b2 = Mc.Bug.Assertion_failure { tid = 2; message = "m" } in
  Alcotest.(check string) "assert keys dedupe by message" (Mc.Bug.key b1) (Mc.Bug.key b2);
  let s1 = Mc.Bug.Spec_violation { kind = "assertion"; message = "x" } in
  let s2 = Mc.Bug.Spec_violation { kind = "unjustified"; message = "x" } in
  Alcotest.(check bool) "spec keys distinguish kinds" true (Mc.Bug.key s1 <> Mc.Bug.key s2)

let () =
  Alcotest.run "harness"
    [
      ( "ords",
        [
          Alcotest.test_case "basics" `Quick test_ords_basics;
          Alcotest.test_case "weakenable counts" `Quick test_ords_weakenable_counts;
        ] );
      ("figure7", [ Alcotest.test_case "rows" `Quick test_fig7_rows ]);
      ( "figure8",
        [
          Alcotest.test_case "blocking queue" `Quick test_fig8_blocking_queue;
          Alcotest.test_case "register trivial" `Quick test_fig8_register_trivial;
        ] );
      ("expressiveness", [ Alcotest.test_case "arithmetic" `Quick test_expressiveness_arithmetic ]);
      ("known-bugs", [ Alcotest.test_case "found" `Quick test_known_bugs_found ]);
      ("fuzz-campaign", [ Alcotest.test_case "oversized rows" `Quick test_fuzz_campaign_rows ]);
      ("bugs", [ Alcotest.test_case "keys" `Quick test_bug_keys_stable ]);
    ]
