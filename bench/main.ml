(* Regenerates every table and figure in the paper's evaluation
   (section 6), plus the ablations called out in DESIGN.md.

   Usage:
     bench/main.exe            run everything (fig7 fig8 expr known ablation timing fuzz)
     bench/main.exe fig7       Figure 7  — benchmark results
     bench/main.exe fig8       Figure 8  — bug-injection detection
     bench/main.exe expr       section 6.2 expressiveness statistics
     bench/main.exe known      section 6.4.1 known bugs
     bench/main.exe ablation   design-choice ablations
     bench/main.exe timing     wall-clock timing per Figure-7 row; writes BENCH_PR1.json
     bench/main.exe fuzz       randomized vs exhaustive exploration; writes BENCH_PR2.json
     bench/main.exe lint       memory-order lint + weakening advisor; writes BENCH_PR3.json
     bench/main.exe check-cache  cross-execution check cache; writes BENCH_PR4.json
     bench/main.exe explore    equivalence pruning + work stealing; writes BENCH_PR5.json
     bench/main.exe replay     arena engine vs legacy re-execution; writes BENCH_PR6.json
                               (--smoke: capped CI subset; hard-fails on any divergence)
     bench/main.exe serve      persistent store cold-vs-warm + serve daemon throughput;
                               writes BENCH_PR7.json (--smoke: capped CI subset;
                               hard-fails on any cold/warm verdict divergence)
     bench/main.exe rf         incremental rf-consistency kernel on vs off; writes
                               BENCH_PR9.json (--smoke: capped CI subset; hard-fails
                               on any graph-set or verdict divergence)

   `--jobs N` (or CDSSPEC_JOBS=N) runs every exploration on N domains;
   0 means one per recommended core. The timing job records the jobs
   count in BENCH_PR1.json so perf trajectories are comparable. *)

module E = Mc.Explorer
module B = Structures.Benchmark
module X = Harness.Experiments

let fig7_benches =
  (* the ten rows of the paper's Figure 7 *)
  List.filter_map Structures.Registry.find
    [
      "Chase-Lev Deque";
      "SPSC Queue";
      "RCU";
      "Lockfree Hashtable";
      "MCS Lock";
      "MPMC Queue";
      "M&S Queue";
      "Linux RW Lock";
      "Seqlock";
      "Ticket Lock";
    ]

let extra_benches =
  List.filter_map Structures.Registry.find
    [
      "Blocking Queue";
      "Atomic Register";
      "Contention-Free Lock";
      "Treiber Stack";
      "Peterson Lock";
      "Barrier";
      "RCU Grace";
      "Lockfree Set";
      "Dekker Lock";
      "Lamport Ring";
      "CLH Lock";
      "Lazy Init";
    ]

let section title = Format.printf "@.== %s ==@.@." title

(* Shared provenance header for every BENCH_*.json emitter, so the
   perf-trajectory series is joinable across PRs: without rev/date/host
   the files cannot be attributed to a commit or a machine. *)
let metadata_json () =
  let rev =
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  let date =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
  in
  let host = try Unix.gethostname () with _ -> "unknown" in
  Printf.sprintf "\"rev\": %S,\n  \"date\": %S,\n  \"host\": %S,\n  \"cores\": %d,\n  \
                  \"engine_rev\": %S"
    rev date host
    (Domain.recommended_domain_count ())
    Mc.Engine_rev.current

(* Every BENCH_*.json emitter shares this skeleton: the
   CDSSPEC_BENCH_OUT path override, the provenance header above
   (engine_rev is [Mc.Engine_rev.current] — the same constant whose
   change flushes the persistent store, so a trajectory file and a store
   directory are attributable to the same engine), and the trailing
   "wrote ..." line. [body] emits everything between the header and the
   closing brace, ending after its last array's "  ]\n". *)
let write_bench_file ~default ~pr ?(note = "") body =
  let path =
    match Sys.getenv_opt "CDSSPEC_BENCH_OUT" with Some p -> p | None -> default
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  %s,\n  \"pr\": %d,\n" (metadata_json ()) pr;
  body oc;
  Printf.fprintf oc "}\n";
  close_out oc;
  Format.printf "@.wrote %s%s@." path note

(* Set once from --jobs/CDSSPEC_JOBS before any job runs. *)
let jobs = ref 1

let limits () = { X.default_limits with jobs = !jobs }

let run_fig7 () =
  section "Figure 7: benchmark results (paper: all rows finish within seconds)";
  let rows = X.figure7 ~limits:(limits ()) fig7_benches in
  X.pp_figure7 Format.std_formatter rows;
  Format.printf "@.Extensions (not in the paper's table):@.";
  X.pp_figure7 Format.std_formatter (X.figure7 ~limits:(limits ()) extra_benches)

let run_fig8 () =
  section "Figure 8: bug-injection detection (paper: 93%% overall, MPMC the outlier)";
  let rows = X.figure8 ~limits:(limits ()) fig7_benches in
  X.pp_figure8 Format.std_formatter rows;
  (match X.undetected rows with
  | [] -> Format.printf "@.No undetected injections.@."
  | l ->
    Format.printf
      "@.Undetected injections (candidate overly-strong parameters, cf. section 6.4.3):@.";
    List.iter (fun (b, s) -> Format.printf "  %-22s %s@." b s) l);
  Format.printf "@.Extensions (not in the paper's table):@.";
  X.pp_figure8 Format.std_formatter (X.figure8 ~limits:(limits ()) extra_benches)

let run_expr () =
  section "Section 6.2: expressiveness statistics";
  Format.printf
    "(paper: 11.5 lines of spec per benchmark, 27 API methods, 33 ordering points = 1.22 per \
     method, 7 admissibility lines)@.@.";
  X.pp_expressiveness Format.std_formatter (X.expressiveness fig7_benches)

let run_known () =
  section "Section 6.4.1: known bugs (paper: 3 known bugs detected)";
  X.pp_known_bugs Format.std_formatter (X.known_bugs ~limits:(limits ()) ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let explore_with ?(scheduler = Mc.Scheduler.default_config) ?checker (b : B.t) (t : B.test)
    ~ords =
  E.explore
    ~config:{ E.default_config with scheduler; max_executions = Some 400_000 }
    ~on_feasible:(Cdsspec.Checker.hook ?config:checker b.spec)
    (t.program ords)

let find_test (b : B.t) name = List.find (fun (t : B.test) -> t.test_name = name) b.tests

let ablation_sleep_sets () =
  Format.printf "@.-- Ablation: sleep-set partial-order reduction --@.";
  Format.printf "%-18s %-14s %10s %10s %8s@." "Benchmark" "Test" "explored" "feasible" "time";
  let cases =
    [
      (Structures.Ms_queue.benchmark, "2enq-2deq");
      (Structures.Blocking_queue.benchmark, "racing-enqs");
      (Structures.Ticket_lock.benchmark, "two-threads");
    ]
  in
  List.iter
    (fun ((b : B.t), test_name) ->
      let t = find_test b test_name in
      let ords = Structures.Ords.default b.sites in
      List.iter
        (fun sleep_sets ->
          let r = explore_with ~scheduler:{ b.scheduler with sleep_sets } b t ~ords in
          Format.printf "%-18s %-14s %10d %10d %7.2fs   (sleep sets %s)@." b.name test_name
            r.stats.explored r.stats.feasible r.stats.time
            (if sleep_sets then "on" else "off"))
        [ true; false ])
    cases

let ablation_history_sampling () =
  Format.printf "@.-- Ablation: exhaustive vs sampled sequential histories --@.";
  let b = Structures.Ms_queue.benchmark in
  let t = find_test b "2enq-2deq" in
  let buggy = snd (List.hd Structures.Ms_queue.known_bugs) in
  List.iter
    (fun (label, checker) ->
      let correct = explore_with ~checker b t ~ords:(Structures.Ords.default b.sites) in
      let bug = explore_with ~checker b t ~ords:buggy in
      Format.printf "%-28s correct: %.2fs, %d false reports; buggy: %s@." label
        correct.stats.time
        (List.length correct.bugs)
        (if bug.bugs <> [] then "detected" else "MISSED"))
    [
      ("exhaustive histories", Cdsspec.Checker.default_config);
      ( "sampled (5 per execution)",
        { Cdsspec.Checker.default_config with sample_histories = Some (5, 42) } );
      ( "sampled (1 per execution)",
        { Cdsspec.Checker.default_config with sample_histories = Some (1, 42) } );
    ]

let ablation_loop_bound () =
  Format.printf "@.-- Ablation: spin-loop bound sensitivity --@.";
  let b = Structures.Seqlock.benchmark in
  let t = find_test b "1write-1read" in
  let ords = Structures.Ords.default b.sites in
  List.iter
    (fun loop_bound ->
      let r = explore_with ~scheduler:{ b.scheduler with loop_bound } b t ~ords in
      Format.printf "loop bound %d: explored=%d feasible=%d time=%.2fs@." loop_bound
        r.stats.explored r.stats.feasible r.stats.time)
    [ 2; 3; 4; 6 ]

let run_ablation () =
  section "Ablations (DESIGN.md design choices)";
  ablation_sleep_sets ();
  ablation_history_sampling ();
  ablation_loop_bound ()

(* ------------------------------------------------------------------ *)
(* Timing: wall-clock per Figure-7 row (full exploration of the first
   unit test, the same workload the old Bechamel harness staged), under
   the requested number of domains, emitted both as a table and as the
   machine-readable BENCH_PR1.json perf-trajectory point. Later PRs add
   BENCH_PR<n>.json and diff executions/sec against this file.         *)

type timing_row = {
  bench : string;
  test : string;
  wall_s : float;
  explored : int;
  feasible : int;
  execs_per_sec : float;
}

let time_one (b : B.t) =
  let t = List.hd b.tests in
  let ords = Structures.Ords.default b.sites in
  let t0 = Unix.gettimeofday () in
  let r =
    Mc.Parallel.explore ~jobs:!jobs
      ~config:{ E.default_config with scheduler = b.scheduler }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      (t.program ords)
  in
  let wall = Unix.gettimeofday () -. t0 in
  {
    bench = b.name;
    test = t.test_name;
    wall_s = wall;
    explored = r.stats.explored;
    feasible = r.stats.feasible;
    execs_per_sec = (if wall > 0. then float_of_int r.stats.explored /. wall else 0.);
  }

let bench_json_file = "BENCH_PR1.json"

let write_bench_json rows =
  let total = List.fold_left (fun acc r -> acc +. r.wall_s) 0. rows in
  write_bench_file ~default:bench_json_file ~pr:1
    ~note:(Printf.sprintf " (jobs=%d)" !jobs)
    (fun oc ->
      Printf.fprintf oc "  \"jobs\": %d,\n  \"total_wall_s\": %.3f,\n  \"benchmarks\": [\n" !jobs
        total;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"name\": %S, \"test\": %S, \"wall_s\": %.4f, \"explored\": %d, \"feasible\": \
             %d, \"execs_per_sec\": %.1f}%s\n"
            r.bench r.test r.wall_s r.explored r.feasible r.execs_per_sec
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n")

let run_timing () =
  section
    (Printf.sprintf "Timing: full exploration of each first unit test (jobs=%d)" !jobs);
  Format.printf "%-24s %-16s %10s %10s %10s %14s@." "Benchmark" "Test" "wall (s)" "explored"
    "feasible" "execs/sec";
  let rows =
    List.map
      (fun b ->
        let r = time_one b in
        Format.printf "%-24s %-16s %10.3f %10d %10d %14.1f@." r.bench r.test r.wall_s r.explored
          r.feasible r.execs_per_sec;
        r)
      (fig7_benches @ extra_benches)
  in
  write_bench_json rows

(* ------------------------------------------------------------------ *)
(* Fuzz: randomized exploration vs the exhaustive baseline, emitted as
   BENCH_PR2.json. Two kinds of rows: seeded-buggy workloads measure
   time-to-first-bug (fuzz stops at the first finding; the exhaustive
   baseline's capped total time upper-bounds its own), and bug-free
   oversized workloads measure throughput and coverage.                *)

let fuzz_seed = 1

let fuzz_json_file = "BENCH_PR2.json"

type fuzz_buggy_row = {
  fbr_workload : string;
  fbr_ttfb : float option;  (* fuzz time-to-first-bug, seconds *)
  fbr_exec_index : int option;  (* which run found it *)
  fbr_fuzz_time : float;
  fbr_repro : string option;
  fbr_exh_time : float;
  fbr_exh_explored : int;
  fbr_exh_found : bool;
}

type fuzz_tp_row = {
  ftr_workload : string;
  ftr_execs : int;
  ftr_feasible : int;
  ftr_coverage : int;
  ftr_bugs : int;
  ftr_eps : float;  (* fuzz executions per second *)
  ftr_exh_eps : float;  (* exhaustive executions per second, same cap *)
}

let fuzz_config (b : B.t) ~max_execs ~stop_on_first_bug =
  {
    Fuzz.Engine.default_config with
    scheduler = { b.scheduler with Mc.Scheduler.sleep_sets = false };
    max_executions = Some max_execs;
    stop_on_first_bug;
  }

let exhaustive_capped (b : B.t) ~ords ~max_execs (t : B.test) =
  Mc.Parallel.explore ~jobs:!jobs
    ~config:{ E.default_config with scheduler = b.scheduler; max_executions = Some max_execs }
    ~on_feasible:(Cdsspec.Checker.hook b.spec)
    (t.program ords)

let fuzz_buggy_case (b : B.t) test_name ~ords ~max_execs =
  let t = find_test b test_name in
  let r =
    Fuzz.Engine.run
      ~config:(fuzz_config b ~max_execs ~stop_on_first_bug:true)
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      ~seed:fuzz_seed (t.program ords)
  in
  let ex = exhaustive_capped b ~ords ~max_execs t in
  {
    fbr_workload = b.name ^ "/" ^ test_name;
    fbr_ttfb = r.stats.time_to_first_bug;
    fbr_exec_index = (match r.found with f :: _ -> Some f.execution | [] -> None);
    fbr_fuzz_time = r.stats.time;
    fbr_repro =
      (match r.found with
      | f :: _ ->
        Some (Printf.sprintf "--fuzz --seed %d / --replay %s" fuzz_seed
                (Fuzz.Engine.trace_to_string f.minimized))
      | [] -> None);
    fbr_exh_time = ex.stats.time;
    fbr_exh_explored = ex.stats.explored;
    fbr_exh_found = ex.bugs <> [];
  }

let fuzz_throughput_case (b : B.t) ~max_execs =
  let t = List.hd b.tests in
  let ords = Structures.Ords.default b.sites in
  let r =
    Fuzz.Engine.run
      ~config:(fuzz_config b ~max_execs ~stop_on_first_bug:false)
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      ~seed:fuzz_seed (t.program ords)
  in
  let ex = exhaustive_capped b ~ords ~max_execs t in
  {
    ftr_workload = b.name ^ "/" ^ t.test_name;
    ftr_execs = r.stats.executions;
    ftr_feasible = r.stats.feasible;
    ftr_coverage = r.stats.coverage;
    ftr_bugs = List.length r.found;
    ftr_eps = (if r.stats.time > 0. then float_of_int r.stats.executions /. r.stats.time else 0.);
    ftr_exh_eps =
      (if ex.stats.time > 0. then float_of_int ex.stats.explored /. ex.stats.time else 0.);
  }

let write_fuzz_json buggy throughput =
  let opt_f = function None -> "null" | Some v -> Printf.sprintf "%.4f" v in
  let opt_i = function None -> "null" | Some v -> string_of_int v in
  write_bench_file ~default:fuzz_json_file ~pr:2
    ~note:(Printf.sprintf " (jobs=%d)" !jobs)
    (fun oc ->
      Printf.fprintf oc "  \"jobs\": %d,\n  \"seed\": %d,\n  \"bias\": %S,\n" !jobs fuzz_seed
        (Fuzz.Bias.to_string Fuzz.Engine.default_config.bias);
      Printf.fprintf oc "  \"time_to_first_bug\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"workload\": %S, \"fuzz_ttfb_s\": %s, \"fuzz_exec_index\": %s, \
             \"fuzz_wall_s\": %.4f, \"exhaustive_wall_s\": %.4f, \"exhaustive_explored\": %d, \
             \"exhaustive_found\": %b}%s\n"
            r.fbr_workload (opt_f r.fbr_ttfb) (opt_i r.fbr_exec_index) r.fbr_fuzz_time
            r.fbr_exh_time r.fbr_exh_explored r.fbr_exh_found
            (if i = List.length buggy - 1 then "" else ","))
        buggy;
      Printf.fprintf oc "  ],\n  \"throughput\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"workload\": %S, \"execs\": %d, \"feasible\": %d, \"coverage\": %d, \"bugs\": \
             %d, \"execs_per_sec\": %.1f, \"exhaustive_execs_per_sec\": %.1f}%s\n"
            r.ftr_workload r.ftr_execs r.ftr_feasible r.ftr_coverage r.ftr_bugs r.ftr_eps
            r.ftr_exh_eps
            (if i = List.length throughput - 1 then "" else ","))
        throughput;
      Printf.fprintf oc "  ]\n")

let run_fuzz () =
  section (Printf.sprintf "Fuzz: randomized vs exhaustive exploration (seed=%d)" fuzz_seed);
  Format.printf "%-34s %10s %9s %12s %11s %9s@." "Seeded-buggy workload" "fuzz ttfb" "at exec"
    "fuzz wall" "exh wall" "exh found";
  let ms = Structures.Ms_queue.benchmark in
  let buggy_ords = Structures.Ms_queue.known_buggy_ords in
  let buggy =
    List.map
      (fun row ->
        let r = row () in
        Format.printf "%-34s %10s %9s %11.3fs %10.3fs %9b@." r.fbr_workload
          (match r.fbr_ttfb with None -> "-" | Some t -> Printf.sprintf "%.3fs" t)
          (match r.fbr_exec_index with None -> "-" | Some i -> string_of_int i)
          r.fbr_fuzz_time r.fbr_exh_time r.fbr_exh_found;
        (match r.fbr_repro with
        | Some repro -> Format.printf "    repro: %s@." repro
        | None -> ());
        r)
      [
        (fun () -> fuzz_buggy_case ms "1enq-1deq" ~ords:buggy_ords ~max_execs:50_000);
        (fun () -> fuzz_buggy_case ms "2enq-2deq" ~ords:buggy_ords ~max_execs:50_000);
        (fun () ->
          fuzz_buggy_case Structures.Oversized.ms_queue "2x4enq-2x4deq" ~ords:buggy_ords
            ~max_execs:5_000);
      ]
  in
  Format.printf "@.%-34s %8s %9s %9s %6s %10s %12s@." "Bug-free oversized workload" "execs"
    "feasible" "coverage" "bugs" "execs/s" "exh execs/s";
  let throughput =
    List.map
      (fun b ->
        let r = fuzz_throughput_case b ~max_execs:1_000 in
        Format.printf "%-34s %8d %9d %9d %6d %10.0f %12.0f@." r.ftr_workload r.ftr_execs
          r.ftr_feasible r.ftr_coverage r.ftr_bugs r.ftr_eps r.ftr_exh_eps;
        r)
      (X.fuzz_workloads ())
  in
  write_fuzz_json buggy throughput

(* ------------------------------------------------------------------ *)
(* Lint: the PR-3 static-analysis layer. Run the fact collection, the
   lint rules and the full weakening advisor over a spread of registry
   structures, and emit BENCH_PR3.json: advisor wall time and verdict
   counts per structure. Per-candidate re-explorations reuse
   Mc.Parallel via the jobs knob.                                      *)

let lint_json_file = "BENCH_PR3.json"
let lint_max_execs = 10_000

type lint_row = {
  lr_bench : string;
  lr_findings : int;
  lr_baseline_wall_s : float;
  lr_advisor_wall_s : float;
  lr_candidates : int;
  lr_safe : int;
  lr_changing : int;
  lr_violating : int;
  lr_agree : int;  (* first-rung verdicts matching the lint prediction *)
  lr_disagree : int;
}

let lint_benches =
  List.filter_map Structures.Registry.find
    [
      "SPSC Queue";
      "RCU";
      "Ticket Lock";
      "Atomic Register";
      "Contention-Free Lock";
      "Treiber Stack";
      "Lamport Ring";
      "CLH Lock";
      "Lazy Init";
      "Seqlock";
    ]

let lint_one (b : B.t) =
  let cfg =
    {
      Analyze.Access_summary.default_config with
      max_executions = Some lint_max_execs;
      jobs = !jobs;
    }
  in
  let summary = Analyze.Access_summary.collect ~config:cfg b in
  let findings = Analyze.Lint.lint summary in
  let wcfg =
    { Analyze.Weaken.default_config with max_executions = Some lint_max_execs; jobs = !jobs }
  in
  let advice = Analyze.Weaken.advise ~config:wcfg ~findings b ~summary in
  let count p = List.length (List.filter p advice.candidates) in
  {
    lr_bench = b.name;
    lr_findings = List.length findings;
    lr_baseline_wall_s = summary.time;
    lr_advisor_wall_s = advice.time;
    lr_candidates = List.length advice.candidates;
    lr_safe =
      count (fun (c : Analyze.Weaken.candidate) -> c.verdict = Analyze.Weaken.Safe_to_weaken);
    lr_changing =
      count (fun (c : Analyze.Weaken.candidate) ->
          match c.verdict with Analyze.Weaken.Behaviour_changing _ -> true | _ -> false);
    lr_violating =
      count (fun (c : Analyze.Weaken.candidate) ->
          match c.verdict with Analyze.Weaken.Spec_violating _ -> true | _ -> false);
    lr_agree =
      count (fun (c : Analyze.Weaken.candidate) -> c.agrees_with_lint = Some true);
    lr_disagree =
      count (fun (c : Analyze.Weaken.candidate) -> c.agrees_with_lint = Some false);
  }

let write_lint_json rows =
  let total = List.fold_left (fun acc r -> acc +. r.lr_advisor_wall_s) 0. rows in
  write_bench_file ~default:lint_json_file ~pr:3
    ~note:(Printf.sprintf " (jobs=%d)" !jobs)
    (fun oc ->
      Printf.fprintf oc
        "  \"jobs\": %d,\n  \"max_executions\": %d,\n  \"total_advisor_wall_s\": %.3f,\n  \
         \"structures\": [\n"
        !jobs lint_max_execs total;
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"name\": %S, \"lint_findings\": %d, \"baseline_wall_s\": %.4f, \
             \"advisor_wall_s\": %.4f, \"candidates\": %d, \"safe_to_weaken\": %d, \
             \"behaviour_changing\": %d, \"spec_violating\": %d, \"lint_agreements\": %d, \
             \"lint_disagreements\": %d}%s\n"
            r.lr_bench r.lr_findings r.lr_baseline_wall_s r.lr_advisor_wall_s r.lr_candidates
            r.lr_safe r.lr_changing r.lr_violating r.lr_agree r.lr_disagree
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n")

let run_lint () =
  section
    (Printf.sprintf "Lint + weakening advisor (max %d execs per test, jobs=%d)" lint_max_execs
       !jobs);
  Format.printf "%-22s %8s %10s %10s %11s %5s %9s %10s %6s@." "Benchmark" "findings" "base (s)"
    "advise (s)" "candidates" "safe" "changing" "violating" "agree";
  let rows =
    List.map
      (fun b ->
        let r = lint_one b in
        Format.printf "%-22s %8d %10.3f %10.3f %11d %5d %9d %10d %3d/%d@." r.lr_bench
          r.lr_findings r.lr_baseline_wall_s r.lr_advisor_wall_s r.lr_candidates r.lr_safe
          r.lr_changing r.lr_violating r.lr_agree (r.lr_agree + r.lr_disagree);
        r)
      lint_benches
  in
  write_lint_json rows

(* ------------------------------------------------------------------ *)
(* Check cache: the PR-4 prefix-sharing replay + cross-execution check
   cache. Each workload is explored twice — memoization off (the
   counters still flow, so the runs are otherwise identical) and on —
   and BENCH_PR4.json records wall times, hit rates and the speedup.
   History-heavy entries (many calls per execution, so history replay
   dominates the wall clock) are where the cache pays; small workloads
   are included as context. `--smoke` runs a CI-sized subset.          *)

let check_cache_json_file = "BENCH_PR4.json"
let smoke = ref false

type cc_row = {
  cc_workload : string;
  cc_heavy : bool;
  cc_max_execs : int option;
  cc_explored : int;
  cc_feasible : int;
  cc_wall_on_s : float;
  cc_wall_off_s : float;
  cc_speedup : float;
  cc_hits : int;
  cc_misses : int;
  cc_entries : int;
  cc_hist_trunc : int;
  cc_pref_trunc : int;
}

(* History-heavy workloads, defined here because the stock unit tests
   stop at 4 calls: 8 calls across 4 threads make the per-execution
   history replay dominate the wall clock (~70% of it, measured), which
   is the regime the cache targets. They are driven by seeded fuzzing
   rather than a capped exhaustive DFS — the DFS visits near-sequential
   interleavings first, whose ordering relations are almost total (few
   histories, cheap checks), while random schedules hit the
   concurrency-rich executions whose history sets are expensive. *)
let ms_heavy =
  let test ords () =
    let module P = Mc.Program in
    let q = Structures.Ms_queue.create () in
    let producer base =
      P.spawn (fun () ->
          Structures.Ms_queue.enq ords q (base + 1);
          Structures.Ms_queue.enq ords q (base + 2))
    in
    let consumer () =
      P.spawn (fun () ->
          ignore (Structures.Ms_queue.deq ords q);
          ignore (Structures.Ms_queue.deq ords q))
    in
    let t1 = producer 10 and t2 = consumer () and t3 = producer 30 and t4 = consumer () in
    P.join t1;
    P.join t2;
    P.join t3;
    P.join t4
  in
  B.make ~name:"M&S Queue (8 calls)" ~spec:Structures.Ms_queue.spec
    ~sites:Structures.Ms_queue.sites
    [ ("2x2enq-2x2deq", test) ]

let treiber_heavy =
  let test ords () =
    let module P = Mc.Program in
    let s = Structures.Treiber_stack.create () in
    let pusher base =
      P.spawn (fun () ->
          Structures.Treiber_stack.push ords s (base + 1);
          Structures.Treiber_stack.push ords s (base + 2))
    in
    let popper () =
      P.spawn (fun () ->
          ignore (Structures.Treiber_stack.pop ords s);
          ignore (Structures.Treiber_stack.pop ords s))
    in
    let t1 = pusher 10 and t2 = popper () and t3 = pusher 30 and t4 = popper () in
    P.join t1;
    P.join t2;
    P.join t3;
    P.join t4
  in
  B.make ~name:"Treiber Stack (8 calls)" ~spec:Structures.Treiber_stack.spec
    ~sites:Structures.Treiber_stack.sites
    [ ("2x2push-2x2pop", test) ]

(* (benchmark, unit test or first, execution cap, history-heavy?); a
   history-heavy case is fuzzed with [fuzz_seed], the rest run the capped
   exhaustive DFS. *)
let check_cache_cases () =
  let case find name test max heavy =
    match find name with
    | Some b -> Some (b, test, max, heavy)
    | None ->
      Format.printf "check-cache: no benchmark %S, skipping@." name;
      None
  in
  let reg = case Structures.Registry.find in
  let inline b test max heavy = Some (b, test, max, heavy) in
  List.filter_map Fun.id
    (if !smoke then
       [
         reg "M&S Queue" (Some "2enq-2deq") (Some 3_000) false;
         inline ms_heavy None (Some 6_000) true;
       ]
     else
       [
         reg "M&S Queue" (Some "2enq-2deq") None false;
         reg "Blocking Queue" (Some "racing-enqs") None false;
         reg "Ticket Lock" None None false;
         reg "SPSC Queue" None None false;
         inline ms_heavy None (Some 50_000) true;
         inline treiber_heavy None (Some 50_000) true;
       ])

let check_cache_one ((b : B.t), test, max_execs, heavy) =
  let t = match test with Some name -> find_test b name | None -> List.hd b.tests in
  let ords = Structures.Ords.default b.sites in
  let run ~memoize =
    let cache = Cdsspec.Checker.create_cache ~memoize () in
    let t0 = Unix.gettimeofday () in
    let r =
      if heavy then
        Fuzz.Engine.explorer_result
          (Fuzz.Engine.run
             ~config:
               {
                 Fuzz.Engine.default_config with
                 scheduler = { b.scheduler with Mc.Scheduler.sleep_sets = false };
                 max_executions = max_execs;
                 minimize = false;
               }
             ~on_feasible:(Cdsspec.Checker.hook ~cache b.spec)
             ~check:(fun () -> Cdsspec.Checker.cache_counters cache)
             ~seed:fuzz_seed (t.program ords))
      else
        Mc.Parallel.explore ~jobs:!jobs
          ~config:{ E.default_config with scheduler = b.scheduler; max_executions = max_execs }
          ~on_feasible:(Cdsspec.Checker.hook ~cache b.spec)
          ~check:(fun () -> Cdsspec.Checker.cache_counters cache)
          (t.program ords)
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let wall_off, r_off = run ~memoize:false in
  let wall_on, r_on = run ~memoize:true in
  if List.map Mc.Bug.key r_on.bugs <> List.map Mc.Bug.key r_off.bugs then
    failwith ("check-cache: verdicts diverge between cached and uncached runs on " ^ b.name);
  let c = r_on.stats.E.check in
  {
    cc_workload = b.name ^ "/" ^ t.test_name;
    cc_heavy = heavy;
    cc_max_execs = max_execs;
    cc_explored = r_on.stats.explored;
    cc_feasible = r_on.stats.feasible;
    cc_wall_on_s = wall_on;
    cc_wall_off_s = wall_off;
    cc_speedup = (if wall_on > 0. then wall_off /. wall_on else 1.);
    cc_hits = c.cache_hits;
    cc_misses = c.cache_misses;
    cc_entries = c.cache_entries;
    cc_hist_trunc = c.histories_truncated;
    cc_pref_trunc = c.prefixes_truncated;
  }

let median l =
  match List.sort compare l with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let write_check_cache_json rows =
  let heavy = List.filter (fun r -> r.cc_heavy) rows in
  write_bench_file ~default:check_cache_json_file ~pr:4
    ~note:(Printf.sprintf " (jobs=%d%s)" !jobs (if !smoke then ", smoke" else ""))
    (fun oc ->
      Printf.fprintf oc
        "  \"jobs\": %d,\n  \"smoke\": %b,\n  \"median_speedup\": %.2f,\n  \
         \"median_speedup_history_heavy\": %.2f,\n  \"entries\": [\n"
        !jobs !smoke
        (median (List.map (fun r -> r.cc_speedup) rows))
        (median (List.map (fun r -> r.cc_speedup) heavy));
      List.iteri
        (fun i r ->
          let hit_rate =
            if r.cc_hits + r.cc_misses > 0 then
              float_of_int r.cc_hits /. float_of_int (r.cc_hits + r.cc_misses)
            else 0.
          in
          Printf.fprintf oc
            "    {\"workload\": %S, \"history_heavy\": %b, \"max_executions\": %s, \"explored\": \
             %d, \"feasible\": %d, \"wall_cache_on_s\": %.4f, \"wall_cache_off_s\": %.4f, \
             \"speedup\": %.2f, \"cache_hits\": %d, \"cache_misses\": %d, \"cache_entries\": %d, \
             \"hit_rate\": %.3f, \"histories_truncated\": %d, \"prefixes_truncated\": %d}%s\n"
            r.cc_workload r.cc_heavy
            (match r.cc_max_execs with None -> "null" | Some m -> string_of_int m)
            r.cc_explored r.cc_feasible r.cc_wall_on_s r.cc_wall_off_s r.cc_speedup r.cc_hits
            r.cc_misses r.cc_entries hit_rate r.cc_hist_trunc r.cc_pref_trunc
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n")

let run_check_cache () =
  section
    (Printf.sprintf "Check cache: cross-execution verdict memoization (jobs=%d%s)" !jobs
       (if !smoke then ", smoke subset" else ""));
  Format.printf "%-36s %9s %10s %10s %8s %9s %8s %8s@." "Workload" "feasible" "off (s)" "on (s)"
    "speedup" "hits" "misses" "entries";
  let rows =
    List.map
      (fun case ->
        let r = check_cache_one case in
        Format.printf "%-36s %9d %10.3f %10.3f %7.2fx %9d %8d %8d%s@." r.cc_workload
          r.cc_feasible r.cc_wall_off_s r.cc_wall_on_s r.cc_speedup r.cc_hits r.cc_misses
          r.cc_entries
          (if r.cc_heavy then "  (history-heavy)" else "");
        r)
      (check_cache_cases ())
  in
  (match List.filter (fun r -> r.cc_hist_trunc > 0 || r.cc_pref_trunc > 0) rows with
  | [] -> ()
  | l ->
    Format.printf "@.Truncated enumerations (capped checks are partial proofs):@.";
    List.iter
      (fun r ->
        Format.printf "  %-36s max_histories cap hit %d times, max_prefixes %d times@."
          r.cc_workload r.cc_hist_trunc r.cc_pref_trunc)
      l);
  write_check_cache_json rows

(* ------------------------------------------------------------------ *)
(* Explore: the PR-5 exploration-throughput benchmark. Two sections in
   BENCH_PR5.json:

   - pruning: every Registry.exhaustive structure explored twice (first
     unit test, serial) — equivalence pruning off then on — recording
     interleavings vs distinct graphs, wall time and execs/sec. For rows
     where both runs exhaust the tree (no cap hit), the distinct-graph
     sets and bug lists must be identical; any divergence is a hard
     failure, so the `--smoke` run doubles as CI's pruning-soundness
     gate.
   - scaling: skewed workloads explored at several job counts under the
     static prefix split vs the work-stealing pool, recording wall
     times. Skewed trees are where a static split leaves domains idle
     behind one fat subtree. Pruning is off here: the big unpruned
     trees are what parallel exploration exists for (pruned trees are
     small enough to run serially, and per-item visited tables would
     charge the pruned run for lost sharing rather than measuring the
     split strategy).                                                  *)

let explore_json_file = "BENCH_PR5.json"

type pe_row = {
  pe_workload : string;
  pe_off_explored : int;
  pe_off_wall_s : float;
  pe_on_explored : int;
  pe_on_equiv_pruned : int;
  pe_on_wall_s : float;
  pe_graphs : int;
  pe_reduction : float;  (* unpruned interleavings / pruned runs *)
  pe_speedup : float;  (* unpruned wall / pruned wall *)
  pe_gated : bool;  (* both runs exhausted: equivalence gate applied *)
}

type sc_row = {
  sc_workload : string;
  sc_jobs : int;
  sc_serial_wall_s : float;
  sc_static_wall_s : float;
  sc_steal_wall_s : float;
}

let pe_explore ~prune ~strategy ~jobs:j ~max_execs (b : B.t) (t : B.test) =
  let ords = Structures.Ords.default b.sites in
  let t0 = Unix.gettimeofday () in
  let r =
    Mc.Parallel.explore ~jobs:j ~strategy
      ~config:
        { E.default_config with scheduler = b.scheduler; max_executions = max_execs; prune }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      (t.program ords)
  in
  (Unix.gettimeofday () -. t0, r)

let pruning_one ~max_execs (b : B.t) =
  let t = List.hd b.tests in
  let wall_off, off = pe_explore ~prune:false ~strategy:`Steal ~jobs:1 ~max_execs b t in
  let wall_on, on = pe_explore ~prune:true ~strategy:`Steal ~jobs:1 ~max_execs b t in
  let gated = (not off.stats.truncated) && not on.stats.truncated in
  if gated then begin
    if off.graphs <> on.graphs then
      failwith ("explore-bench: distinct-graph sets diverge with pruning on " ^ b.name);
    if List.map Mc.Bug.key off.bugs <> List.map Mc.Bug.key on.bugs then
      failwith ("explore-bench: bug lists diverge with pruning on " ^ b.name)
  end
  else
    (* no silent caps: a truncated pair contributes numbers but not the
       equivalence gate, and says so *)
    Format.printf "  note: %s truncated at the execution cap; equivalence gate skipped@." b.name;
  {
    pe_workload = b.name ^ "/" ^ t.test_name;
    pe_off_explored = off.stats.explored;
    pe_off_wall_s = wall_off;
    pe_on_explored = on.stats.explored;
    pe_on_equiv_pruned = on.stats.pruned_equiv;
    pe_on_wall_s = wall_on;
    pe_graphs = on.stats.distinct_graphs;
    pe_reduction =
      (if on.stats.explored > 0 then
         float_of_int off.stats.explored /. float_of_int on.stats.explored
       else 1.);
    pe_speedup = (if wall_on > 0. then wall_off /. wall_on else 1.);
    pe_gated = gated;
  }

let scaling_one ~max_execs ~jobs_list (b : B.t) test_name =
  let t = find_test b test_name in
  let serial_wall, _ = pe_explore ~prune:false ~strategy:`Steal ~jobs:1 ~max_execs b t in
  List.map
    (fun j ->
      let static_wall, _ = pe_explore ~prune:false ~strategy:`Static ~jobs:j ~max_execs b t in
      let steal_wall, _ = pe_explore ~prune:false ~strategy:`Steal ~jobs:j ~max_execs b t in
      {
        sc_workload = b.name ^ "/" ^ test_name;
        sc_jobs = j;
        sc_serial_wall_s = serial_wall;
        sc_static_wall_s = static_wall;
        sc_steal_wall_s = steal_wall;
      })
    jobs_list

let write_explore_json ~skipped_single_core pruning scaling =
  write_bench_file ~default:explore_json_file ~pr:5
    ~note:(if !smoke then " (smoke)" else "")
    (fun oc ->
      Printf.fprintf oc
        "  \"smoke\": %b,\n  \"skipped_single_core\": %b,\n  \
         \"median_interleaving_reduction\": %.2f,\n  \"median_speedup\": %.2f,\n  \"pruning\": [\n"
        !smoke skipped_single_core
        (median (List.map (fun r -> r.pe_reduction) pruning))
        (median (List.map (fun r -> r.pe_speedup) pruning));
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"workload\": %S, \"unpruned_explored\": %d, \"unpruned_wall_s\": %.4f, \
             \"pruned_explored\": %d, \"equiv_pruned\": %d, \"pruned_wall_s\": %.4f, \
             \"distinct_graphs\": %d, \"interleaving_reduction\": %.2f, \"speedup\": %.2f, \
             \"exhausted\": %b}%s\n"
            r.pe_workload r.pe_off_explored r.pe_off_wall_s r.pe_on_explored r.pe_on_equiv_pruned
            r.pe_on_wall_s r.pe_graphs r.pe_reduction r.pe_speedup r.pe_gated
            (if i = List.length pruning - 1 then "" else ","))
        pruning;
      Printf.fprintf oc "  ],\n  \"scaling\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"workload\": %S, \"jobs\": %d, \"serial_wall_s\": %.4f, \"static_wall_s\": \
             %.4f, \"steal_wall_s\": %.4f, \"static_speedup\": %.2f, \"steal_speedup\": %.2f}%s\n"
            r.sc_workload r.sc_jobs r.sc_serial_wall_s r.sc_static_wall_s r.sc_steal_wall_s
            (if r.sc_static_wall_s > 0. then r.sc_serial_wall_s /. r.sc_static_wall_s else 1.)
            (if r.sc_steal_wall_s > 0. then r.sc_serial_wall_s /. r.sc_steal_wall_s else 1.)
            (if i = List.length scaling - 1 then "" else ","))
        scaling;
      Printf.fprintf oc "  ]\n")

let run_explore () =
  section
    (Printf.sprintf "Explore: equivalence pruning + work stealing%s"
       (if !smoke then " (smoke subset)" else ""));
  let max_execs = if !smoke then Some 20_000 else Some 400_000 in
  Format.printf "%-34s %10s %10s %8s %9s %9s %8s@." "Workload" "unpruned" "pruned" "graphs"
    "reduce" "speedup" "gate";
  let pruning =
    List.map
      (fun b ->
        let r = pruning_one ~max_execs b in
        Format.printf "%-34s %10d %10d %8d %8.2fx %8.2fx %8s@." r.pe_workload r.pe_off_explored
          r.pe_on_explored r.pe_graphs r.pe_reduction r.pe_speedup
          (if r.pe_gated then "checked" else "skipped");
        r)
      Structures.Registry.exhaustive
  in
  if not (List.exists (fun r -> r.pe_gated) pruning) then
    failwith "explore-bench: every pruning pair truncated; the equivalence gate never ran";
  (* the spin-heavy trees are the skewed ones: one contention branch
     carries most of the interleavings, so a static prefix split leaves
     domains idle behind it while the stealing pool rebalances *)
  let scaling_cases =
    if !smoke then [ (Structures.Mcs_lock.benchmark, "two-threads", [ 2 ]) ]
    else
      [
        (Structures.Mcs_lock.benchmark, "two-threads", [ 2; 4 ]);
        (Structures.Chase_lev_deque.benchmark, "small", [ 2; 4 ]);
        (Structures.Seqlock.benchmark, "1write-1read", [ 2; 4 ]);
      ]
  in
  (* no silent misreadings: on a single-core host the parallel rows
     timeshare one CPU, so wall times would measure strategy overhead,
     not parallel speedup — skip them and say so in the JSON rather than
     emit numbers that read as a regression *)
  let skipped_single_core = Domain.recommended_domain_count () < 2 in
  let scaling =
    if skipped_single_core then begin
      Format.printf
        "@.note: single-core host — scaling rows skipped (domains would timeshare one CPU;@.      \
         speedups > 1x are unreachable, so the numbers would only mislead)@.";
      []
    end
    else begin
      Format.printf "@.%-34s %5s %10s %10s %10s@." "Scaling workload" "jobs" "serial" "static"
        "steal";
      List.concat_map
        (fun (b, test_name, jobs_list) ->
          let rows = scaling_one ~max_execs ~jobs_list b test_name in
          List.iter
            (fun r ->
              Format.printf "%-34s %5d %9.3fs %9.3fs %9.3fs@." r.sc_workload r.sc_jobs
                r.sc_serial_wall_s r.sc_static_wall_s r.sc_steal_wall_s)
            rows;
          rows)
        scaling_cases
    end
  in
  write_explore_json ~skipped_single_core pruning scaling

(* ------------------------------------------------------------------ *)
(* Replay: the PR-6 arena-engine benchmark. Every exhaustive registry
   structure (first unit test, serial, pruning off — the regime where
   the engine's per-execution cost dominates) is explored under both
   engines. The arena run must be observably identical to the legacy
   run — stats, distinct-graph set, bug list, first buggy trace — and
   any divergence is a hard failure, so the `--smoke` run doubles as
   CI's engine-soundness gate. Timings are best-of-N (the engines are
   deterministic; the host is not), emitted as BENCH_PR6.json together
   with snapshot/restore counts, allocation per execution, and the
   speedup against the two PR-5 trajectory rows.                       *)

let replay_json_file = "BENCH_PR6.json"
let replay_reps = 3

(* The PR-5 baseline this PR's target is defined against: unpruned
   serial wall times of the committed BENCH_PR5.json pruning rows. *)
let pr5_baseline_eps =
  [ ("MCS Lock/two-threads", 41624. /. 1.9868); ("Chase-Lev Deque/small", 7530. /. 0.3747) ]

type rp_row = {
  rp_workload : string;
  rp_explored : int;
  rp_arena_wall_s : float;
  rp_legacy_wall_s : float;
  rp_snapshots : int;
  rp_restores : int;
  rp_arena_words_per_exec : float;
  rp_legacy_words_per_exec : float;
}

let rp_eps explored wall = if wall > 0. then float_of_int explored /. wall else 0.

let replay_one ~max_execs (b : B.t) =
  let t = List.hd b.tests in
  let ords = Structures.Ords.default b.sites in
  let run engine =
    let t0 = Unix.gettimeofday () in
    let r =
      E.explore
        ~config:
          {
            E.default_config with
            scheduler = b.scheduler;
            max_executions = max_execs;
            prune = false;
            engine;
          }
        ~on_feasible:(Cdsspec.Checker.hook b.spec)
        (t.program ords)
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let best engine =
    let runs = List.init replay_reps (fun _ -> run engine) in
    let wall = List.fold_left (fun acc (w, _) -> Float.min acc w) Float.infinity runs in
    (wall, snd (List.hd runs))
  in
  let arena_wall, a = best `Arena in
  let legacy_wall, l = best `Legacy in
  let key (r : E.result) =
    let s = r.stats in
    ( ( s.explored,
        s.feasible,
        s.pruned_loop_bound,
        s.pruned_max_actions,
        s.pruned_sleep_set,
        s.pruned_equiv ),
      (s.distinct_graphs, s.buggy, s.truncated),
      r.graphs,
      List.map Mc.Bug.key r.bugs,
      r.first_buggy_trace )
  in
  if key a <> key l then
    failwith ("replay-bench: arena and legacy engines diverge on " ^ b.name ^ "/" ^ t.test_name);
  let per_exec w (r : E.result) = if r.stats.explored > 0 then w /. float_of_int r.stats.explored else 0. in
  {
    rp_workload = b.name ^ "/" ^ t.test_name;
    rp_explored = a.stats.explored;
    rp_arena_wall_s = arena_wall;
    rp_legacy_wall_s = legacy_wall;
    rp_snapshots = a.stats.snapshots;
    rp_restores = a.stats.restores;
    rp_arena_words_per_exec = per_exec a.stats.minor_words a;
    rp_legacy_words_per_exec = per_exec l.stats.minor_words l;
  }

let write_replay_json rows =
  let speedup r = rp_eps r.rp_explored r.rp_arena_wall_s /. Float.max 1e-9 (rp_eps r.rp_explored r.rp_legacy_wall_s) in
  write_bench_file ~default:replay_json_file ~pr:6
    ~note:(if !smoke then " (smoke)" else "")
    (fun oc ->
      Printf.fprintf oc
        "  \"smoke\": %b,\n  \"best_of\": %d,\n  \"divergences\": 0,\n  \
         \"median_speedup_vs_legacy\": %.2f,\n  \"pr5_trajectory\": [\n"
        !smoke replay_reps
        (median (List.map speedup rows));
      let traj =
        List.filter_map
          (fun (workload, base_eps) ->
            List.find_opt (fun r -> r.rp_workload = workload) rows
            |> Option.map (fun r -> (workload, base_eps, r)))
          pr5_baseline_eps
      in
      List.iteri
        (fun i (workload, base_eps, r) ->
          let eps = rp_eps r.rp_explored r.rp_arena_wall_s in
          Printf.fprintf oc
            "    {\"workload\": %S, \"pr5_execs_per_sec\": %.1f, \"arena_execs_per_sec\": %.1f, \
             \"speedup_vs_pr5\": %.2f}%s\n"
            workload base_eps eps
            (eps /. base_eps)
            (if i = List.length traj - 1 then "" else ","))
        traj;
      Printf.fprintf oc "  ],\n  \"engine\": [\n";
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"workload\": %S, \"explored\": %d, \"arena_wall_s\": %.4f, \"legacy_wall_s\": \
             %.4f, \"arena_execs_per_sec\": %.1f, \"legacy_execs_per_sec\": %.1f, \"speedup\": \
             %.2f, \"snapshots\": %d, \"restores\": %d, \"arena_minor_words_per_exec\": %.0f, \
             \"legacy_minor_words_per_exec\": %.0f, \"identical\": true}%s\n"
            r.rp_workload r.rp_explored r.rp_arena_wall_s r.rp_legacy_wall_s
            (rp_eps r.rp_explored r.rp_arena_wall_s)
            (rp_eps r.rp_explored r.rp_legacy_wall_s)
            (speedup r) r.rp_snapshots r.rp_restores r.rp_arena_words_per_exec
            r.rp_legacy_words_per_exec
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n")

let run_replay () =
  section
    (Printf.sprintf "Replay: arena engine vs legacy re-execution%s"
       (if !smoke then " (smoke subset)" else ""));
  let max_execs = if !smoke then Some 10_000 else Some 400_000 in
  Format.printf "%-34s %9s %10s %10s %9s %11s %11s@." "Workload" "explored" "arena/s" "legacy/s"
    "speedup" "words/exec" "(legacy)";
  let rows =
    List.map
      (fun b ->
        let r = replay_one ~max_execs b in
        Format.printf "%-34s %9d %10.0f %10.0f %8.2fx %11.0f %11.0f@." r.rp_workload
          r.rp_explored
          (rp_eps r.rp_explored r.rp_arena_wall_s)
          (rp_eps r.rp_explored r.rp_legacy_wall_s)
          (rp_eps r.rp_explored r.rp_arena_wall_s
          /. Float.max 1e-9 (rp_eps r.rp_explored r.rp_legacy_wall_s))
          r.rp_arena_words_per_exec r.rp_legacy_words_per_exec;
        r)
      Structures.Registry.exhaustive
  in
  write_replay_json rows

(* ------------------------------------------------------------------ *)
(* Serve: the PR-7 checking-as-a-service + persistent-store benchmark.
   Three sections in BENCH_PR7.json:

   - "store": cold-vs-warm job latency through Store.explore_checked on
     history-heavy and spin-heavy workloads. The cold run explores and
     saves; the warm run preloads the closed prune keys and collapses to
     a re-validation. Cold and warm verdicts (graph set, bug keys, first
     buggy trace) are compared row by row and any divergence is a hard
     failure, so the `--smoke` run doubles as CI's store-soundness gate.
   - "advisor": the weakening advisor's behaviour sweeps recalled from
     the store instead of re-explored.
   - "serve": an in-process daemon on a scratch socket, two concurrent
     clients driving the same 3-job batch twice against one store —
     jobs/sec cold vs warm plus the protocol-visible hit rates.        *)

let serve_json_file = "BENCH_PR7.json"

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

type sv_row = {
  sv_workload : string;
  sv_kind : string;  (* "history-heavy" | "spin-heavy" *)
  sv_cold_wall_s : float;
  sv_warm_wall_s : float;
  sv_cold_explored : int;
  sv_warm_explored : int;
  sv_graphs : int;
  sv_warm_hit : bool;
  sv_identical : bool;
}

let sv_speedup r = r.sv_cold_wall_s /. Float.max 1e-9 r.sv_warm_wall_s

let store_cold_warm ~dir ~max_execs ~kind (b : B.t) test_name =
  let t = find_test b test_name in
  let ords = Structures.Ords.default b.sites in
  let run () =
    (* reopen per run: a warm run must pay the real open-and-load cost *)
    let store = Store.open_dir dir in
    let t0 = Unix.gettimeofday () in
    let r, d =
      Store.explore_checked ~store ~checker:Cdsspec.Checker.default_config ~use_cache:true
        ~max_execs ~jobs:1 ~prune:true ~engine:`Arena b ~ords t
    in
    (Unix.gettimeofday () -. t0, r, d)
  in
  let cold_wall, cold, _ = run () in
  let warm_wall, warm, warm_d = run () in
  {
    sv_workload = b.name ^ "/" ^ t.B.test_name;
    sv_kind = kind;
    sv_cold_wall_s = cold_wall;
    sv_warm_wall_s = warm_wall;
    sv_cold_explored = cold.E.stats.explored;
    sv_warm_explored = warm.E.stats.explored;
    sv_graphs = warm.E.stats.distinct_graphs;
    sv_warm_hit = warm_d = `Hit;
    sv_identical =
      cold.E.graphs = warm.E.graphs
      && List.map Mc.Bug.key cold.E.bugs = List.map Mc.Bug.key warm.E.bugs
      && cold.E.first_buggy_trace = warm.E.first_buggy_trace;
  }

let serve_store_cases () =
  let case name test kind =
    match Structures.Registry.find name with
    | Some b -> Some (b, test, kind)
    | None ->
      Format.printf "serve-bench: no benchmark %S, skipping@." name;
      None
  in
  List.filter_map Fun.id
    (if !smoke then
       [ case "M&S Queue" "2enq-2deq" "history-heavy"; case "MCS Lock" "two-threads" "spin-heavy" ]
     else
       [
         case "M&S Queue" "2enq-2deq" "history-heavy";
         case "Treiber Stack" "2push-2pop" "history-heavy";
         case "MCS Lock" "two-threads" "spin-heavy";
         case "Seqlock" "1write-1read" "spin-heavy";
       ])

type sv_adv = {
  sva_bench : string;
  sva_cold_wall_s : float;
  sva_warm_wall_s : float;
  sva_store_hits : int;
  sva_identical : bool;
}

let advisor_cold_warm ~dir (b : B.t) ~max_execs =
  let summary =
    Analyze.Access_summary.collect
      ~config:{ Analyze.Access_summary.default_config with max_executions = max_execs }
      b
  in
  let strip (r : Analyze.Weaken.report) =
    List.map
      (fun (c : Analyze.Weaken.candidate) ->
        (c.site, c.to_order, Analyze.Weaken.verdict_to_string c.verdict))
      r.candidates
  in
  let run () =
    let store = Store.open_dir dir in
    let config =
      { Analyze.Weaken.default_config with max_executions = max_execs; store = Some store }
    in
    let t0 = Unix.gettimeofday () in
    let r = Analyze.Weaken.advise ~config b ~summary in
    (Unix.gettimeofday () -. t0, r, store)
  in
  let cold_wall, cold, _ = run () in
  let warm_wall, warm, warm_store = run () in
  {
    sva_bench = b.name;
    sva_cold_wall_s = cold_wall;
    sva_warm_wall_s = warm_wall;
    sva_store_hits = (Store.stats warm_store).hits;
    sva_identical = strip cold = strip warm;
  }

(* One 3-job batch over two concurrent client connections; returns the
   wall time, the per-job verdict summaries (sorted, so batch-to-batch
   comparison ignores completion order) and the hit/miss tallies the
   result events report. *)
let serve_batch ~socket ~max_execs cases =
  let module C = Serve.Client in
  let module J = Analyze.Json in
  let ev j = Option.bind (J.member "event" j) J.to_str in
  (* fire every submit up front, then drain each connection until one
     terminal (done/error) event per submitted job has arrived — two
     jobs share a connection, so a result line of the first may land
     before the accept of the second; ordering is per job, not global *)
  let drain c n =
    let results = ref [] in
    let seen = ref 0 in
    while !seen < n do
      match C.recv ~timeout:300. c with
      | C.Msg j -> (
        match ev j with
        | Some "result" ->
          results :=
            ( Option.bind (J.member "test" j) J.to_str,
              (match J.member "bugs" j with
              | Some (J.List bs) ->
                List.filter_map (fun b -> Option.bind (J.member "key" b) J.to_str) bs
              | _ -> []),
              Option.bind (J.member "store" j) J.to_str )
            :: !results
        | Some ("done" | "error") -> incr seen
        | _ -> ())
      | _ -> failwith "serve-bench: connection dropped mid-batch"
    done;
    List.rev !results
  in
  let c0 = C.connect socket and c1 = C.connect socket in
  Fun.protect
    ~finally:(fun () ->
      C.close c0;
      C.close c1)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let counts = [| 0; 0 |] in
      List.iteri
        (fun i (b, test, _) ->
          let c = if i mod 2 = 0 then c0 else c1 in
          counts.(i mod 2) <- counts.(i mod 2) + 1;
          C.send c
            (J.Obj
               [
                 ("op", J.Str "check");
                 ("bench", J.Str (b : B.t).name);
                 ("test", J.Str test);
                 ("max_executions", J.Int max_execs);
               ]))
        cases;
      let results = drain c0 counts.(0) @ drain c1 counts.(1) in
      let wall = Unix.gettimeofday () -. t0 in
      let hits = List.length (List.filter (fun (_, _, d) -> d = Some "hit") results) in
      let misses = List.length (List.filter (fun (_, _, d) -> d = Some "miss") results) in
      let verdicts = List.sort compare (List.map (fun (t, bugs, _) -> (t, bugs)) results) in
      (wall, verdicts, hits, misses))

let run_serve () =
  section
    (Printf.sprintf "Serve: persistent store + checking-as-a-service%s"
       (if !smoke then " (smoke subset)" else ""));
  let max_execs = if !smoke then 20_000 else 400_000 in
  let store_dir = "_bench_pr7_store" in
  let serve_dir = "_bench_pr7_serve_store" in
  rm_rf store_dir;
  rm_rf serve_dir;
  let divergences = ref [] in
  (* store rows *)
  Format.printf "%-34s %-14s %10s %10s %9s %10s %10s %6s@." "Workload" "kind" "cold (s)"
    "warm (s)" "speedup" "cold runs" "warm runs" "store";
  let rows =
    List.map
      (fun (b, test, kind) ->
        let r = store_cold_warm ~dir:store_dir ~max_execs:(Some max_execs) ~kind b test in
        Format.printf "%-34s %-14s %10.3f %10.3f %8.2fx %10d %10d %6s@." r.sv_workload r.sv_kind
          r.sv_cold_wall_s r.sv_warm_wall_s (sv_speedup r) r.sv_cold_explored r.sv_warm_explored
          (if r.sv_warm_hit then "hit" else "miss");
        if not r.sv_identical then divergences := r.sv_workload :: !divergences;
        r)
      (serve_store_cases ())
  in
  if not (List.exists (fun r -> r.sv_warm_hit) rows) then
    failwith "serve-bench: no store row produced a warm hit; the warm path never ran";
  (* advisor row *)
  let adv =
    match Structures.Registry.find "Treiber Stack" with
    | None -> None
    | Some b ->
      let a =
        advisor_cold_warm ~dir:store_dir b
          ~max_execs:(Some (if !smoke then 5_000 else 50_000))
      in
      Format.printf "@.advisor %-26s %10.3f %10.3f %8.2fx %10s hits=%d@." a.sva_bench
        a.sva_cold_wall_s a.sva_warm_wall_s
        (a.sva_cold_wall_s /. Float.max 1e-9 a.sva_warm_wall_s)
        "" a.sva_store_hits;
      if not a.sva_identical then divergences := ("advisor " ^ a.sva_bench) :: !divergences;
      Some a
  in
  (* serve throughput: daemon + 2 clients, same 3-job batch twice *)
  let serve_cases =
    List.filteri (fun i _ -> i < 3) (serve_store_cases () @ serve_store_cases ())
  in
  let socket = "_bench_pr7.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let daemon =
    Domain.spawn (fun () -> Serve.Server.serve ~socket ~jobs:2 ~store_dir:serve_dir ())
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  let serve_max = if !smoke then 10_000 else 100_000 in
  let cold_wall, cold_verdicts, cold_hits, cold_misses =
    serve_batch ~socket ~max_execs:serve_max serve_cases
  in
  let warm_wall, warm_verdicts, warm_hits, warm_misses =
    serve_batch ~socket ~max_execs:serve_max serve_cases
  in
  (let module C = Serve.Client in
   let module J = Analyze.Json in
   let c = C.connect socket in
   C.send c (J.Obj [ ("op", J.Str "shutdown") ]);
   ignore (C.recv ~timeout:30. c);
   C.close c);
  Domain.join daemon;
  if cold_verdicts <> warm_verdicts then divergences := "serve batch" :: !divergences;
  let batch = List.length serve_cases in
  let jps wall = float_of_int batch /. Float.max 1e-9 wall in
  Format.printf
    "@.serve batch (%d jobs, 2 clients, 2 workers): cold %.3fs (%.2f jobs/s, %d/%d hits), warm \
     %.3fs (%.2f jobs/s, %d/%d hits)@."
    batch cold_wall (jps cold_wall) cold_hits (cold_hits + cold_misses) warm_wall (jps warm_wall)
    warm_hits (warm_hits + warm_misses);
  (* the gate: cold and warm must be indistinguishable to a client *)
  (match !divergences with
  | [] -> ()
  | l ->
    List.iter (Format.printf "DIVERGENCE: cold and warm verdicts differ on %s@.") l;
    failwith "serve-bench: cold/warm verdict divergence — the store changed a verdict");
  write_bench_file ~default:serve_json_file ~pr:7
    ~note:(if !smoke then " (smoke)" else "")
    (fun oc ->
      Printf.fprintf oc
        "  \"smoke\": %b,\n  \"divergences\": 0,\n  \"median_warm_speedup\": %.2f,\n  \
         \"store\": [\n"
        !smoke
        (median (List.map sv_speedup (List.filter (fun r -> r.sv_warm_hit) rows)));
      List.iteri
        (fun i r ->
          Printf.fprintf oc
            "    {\"workload\": %S, \"kind\": %S, \"cold_wall_s\": %.4f, \"warm_wall_s\": %.4f, \
             \"speedup\": %.2f, \"cold_explored\": %d, \"warm_explored\": %d, \
             \"distinct_graphs\": %d, \"warm_hit\": %b, \"identical\": true}%s\n"
            r.sv_workload r.sv_kind r.sv_cold_wall_s r.sv_warm_wall_s (sv_speedup r)
            r.sv_cold_explored r.sv_warm_explored r.sv_graphs r.sv_warm_hit
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n";
      (match adv with
      | None -> Printf.fprintf oc "  \"advisor\": null,\n"
      | Some a ->
        Printf.fprintf oc
          "  \"advisor\": {\"bench\": %S, \"cold_wall_s\": %.4f, \"warm_wall_s\": %.4f, \
           \"speedup\": %.2f, \"store_hits\": %d, \"identical\": true},\n"
          a.sva_bench a.sva_cold_wall_s a.sva_warm_wall_s
          (a.sva_cold_wall_s /. Float.max 1e-9 a.sva_warm_wall_s)
          a.sva_store_hits);
      Printf.fprintf oc
        "  \"serve\": {\"workers\": 2, \"clients\": 2, \"batch_jobs\": %d, \"cold_wall_s\": \
         %.4f, \"warm_wall_s\": %.4f, \"cold_jobs_per_sec\": %.2f, \"warm_jobs_per_sec\": %.2f, \
         \"cold_hits\": %d, \"cold_misses\": %d, \"warm_hits\": %d, \"warm_misses\": %d, \
         \"identical\": true}\n"
        batch cold_wall warm_wall (jps cold_wall) (jps warm_wall) cold_hits cold_misses warm_hits
        warm_misses);
  rm_rf store_dir;
  rm_rf serve_dir

(* ------------------------------------------------------------------ *)
(* Rf kernel: the PR-9 benchmark. Every exhaustive registry structure
   (first unit test, pruning on) is explored with the incremental
   rf-consistency kernel on and off, serial and on two domains. For
   rows where every run exhausts the tree, the distinct-graph sets and
   bug lists must be bit-identical across all four runs — and the
   serial pair must also agree on the first buggy trace and on the
   pre-replay rejection ledger (same queries, same stores excluded);
   any divergence is a hard failure, so the `--smoke` run doubles as
   CI's kernel-soundness gate. The spin-heavy MCS/Chase-Lev rows
   (pruning off, best-of-N) measure the kernel's wall-clock win in the
   regime that motivates it: long per-location histories rescanned on
   every read. Emitted as BENCH_PR9.json with the rejected-before-replay
   counts next to the post-replay prune counts.                        *)

let rf_json_file = "BENCH_PR9.json"

type rf_row = {
  rf_workload : string;
  rf_explored : int;
  rf_graphs : int;
  rf_on_wall_s : float;
  rf_off_wall_s : float;
  rf_queries : int;
  rf_fast : int;
  rf_rejected : int;  (* stores excluded before replay (kernel-on run) *)
  rf_pruned : int;  (* runs pruned after replay (kernel-on run) *)
  rf_gated : bool;
}

let rf_explore ?loop_bound ~kernel ~prune ~jobs:j ~max_execs (b : B.t) (t : B.test) =
  let ords = Structures.Ords.default b.sites in
  let sched = { b.scheduler with Mc.Scheduler.rf_kernel = kernel } in
  let sched =
    match loop_bound with
    | None -> sched
    | Some lb -> { sched with Mc.Scheduler.loop_bound = lb }
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Mc.Parallel.explore ~jobs:j ~strategy:`Steal
      ~config:{ E.default_config with scheduler = sched; max_executions = max_execs; prune }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      (t.program ords)
  in
  (Unix.gettimeofday () -. t0, r)

let rf_one ~max_execs (b : B.t) =
  let t = List.hd b.tests in
  let timed kernel =
    (* compact before each timed leg: heap state drifts over the
       process lifetime and would otherwise bias whichever mode runs
       later *)
    Gc.compact ();
    rf_explore ~kernel ~prune:true ~jobs:1 ~max_execs b t
  in
  let wall_on, on = timed true in
  let wall_off, off = timed false in
  let _, on2 = rf_explore ~kernel:true ~prune:true ~jobs:2 ~max_execs b t in
  let _, off2 = rf_explore ~kernel:false ~prune:true ~jobs:2 ~max_execs b t in
  (* The serial pair's identity gate is unconditional: the kernel only
     changes how fast a candidate window is computed, never its
     contents, so a serial DFS explores the same prefix even when the
     cap truncates it. *)
  if off.stats.explored <> on.stats.explored then
    failwith ("rf-bench: explored counts diverge between kernel-on and kernel-off on " ^ b.name);
  if off.graphs <> on.graphs then
    failwith
      ("rf-bench: distinct-graph sets diverge between kernel-on and kernel-off on " ^ b.name);
  if List.map Mc.Bug.key off.bugs <> List.map Mc.Bug.key on.bugs then
    failwith ("rf-bench: bug lists diverge between kernel-on and kernel-off on " ^ b.name);
  if on.first_buggy_trace <> off.first_buggy_trace then
    failwith ("rf-bench: first buggy traces diverge between kernel-on and kernel-off on " ^ b.name);
  if on.stats.rf_queries <> off.stats.rf_queries || on.stats.rf_rejected <> off.stats.rf_rejected
  then
    failwith
      ("rf-bench: the pre-replay rejection ledger diverges between kernel-on and kernel-off on "
     ^ b.name);
  (* Work-stealing split order is legitimately cap-dependent, so the
     -j2 legs join the gate only when the whole quadruple completes. *)
  let gated =
    (not on.stats.truncated)
    && List.for_all
         (fun (r : E.result) -> not r.stats.truncated)
         [ off; on2; off2 ]
  in
  if gated then
    List.iter
      (fun (what, (r : E.result)) ->
        if r.graphs <> on.graphs then
          failwith
            (Printf.sprintf "rf-bench: distinct-graph sets diverge (kernel-on vs %s) on %s" what
               b.name);
        if List.map Mc.Bug.key r.bugs <> List.map Mc.Bug.key on.bugs then
          failwith
            (Printf.sprintf "rf-bench: bug lists diverge (kernel-on vs %s) on %s" what b.name))
      [ ("kernel-on -j2", on2); ("kernel-off -j2", off2) ]
  else
    (* no silent caps: a truncated quadruple still passes the serial
       gate above but skips the parallel legs, and says so *)
    Format.printf "  note: %s truncated at the execution cap; -j2 identity legs skipped@." b.name;
  {
    rf_workload = b.name ^ "/" ^ t.test_name;
    rf_explored = on.stats.explored;
    rf_graphs = on.stats.distinct_graphs;
    rf_on_wall_s = wall_on;
    rf_off_wall_s = wall_off;
    rf_queries = on.stats.rf_queries;
    rf_fast = on.stats.rf_fast;
    rf_rejected = on.stats.rf_rejected;
    rf_pruned =
      on.stats.pruned_equiv + on.stats.pruned_sleep_set + on.stats.pruned_loop_bound
      + on.stats.pruned_max_actions;
    rf_gated = gated;
  }

(* Spin rows: pruning off, serial, best-of-N walls (the engines are
   deterministic; the host is not). Modes alternate within each round
   with the leading mode flipped per round, and the heap is compacted
   before every timed run — timing all reps of one mode and then all of
   the other lets heap drift load onto the second batch and has shown
   itself as a phantom ±5% on seconds-scale walls. *)
let rf_spin_one ?loop_bound ~max_execs ~reps (b : B.t) test_name =
  let t = find_test b test_name in
  let best_on = ref (infinity, None) in
  let best_off = ref (infinity, None) in
  let run kernel =
    Gc.compact ();
    let w, r = rf_explore ?loop_bound ~kernel ~prune:false ~jobs:1 ~max_execs b t in
    let best = if kernel then best_on else best_off in
    if w < fst !best then best := (w, Some r)
  in
  for rep = 0 to reps - 1 do
    let first = rep land 1 = 0 in
    run first;
    run (not first)
  done;
  let take best = match !best with _, None -> assert false | w, Some r -> (w, r) in
  let wall_on, on = take best_on in
  let wall_off, off = take best_off in
  (* Serial prune-off exploration is deterministic and the kernel never
     changes a candidate window, so the two modes must agree on the
     explored prefix even when the cap truncates it — the spin-row
     identity gate is unconditional. *)
  if on.stats.explored <> off.stats.explored then
    failwith
      ("rf-bench: spin-row explored counts diverge between kernel-on and kernel-off on " ^ b.name);
  if on.graphs <> off.graphs then
    failwith ("rf-bench: spin-row graph sets diverge between kernel-on and kernel-off on " ^ b.name);
  if List.map Mc.Bug.key on.bugs <> List.map Mc.Bug.key off.bugs then
    failwith ("rf-bench: spin-row bug lists diverge between kernel-on and kernel-off on " ^ b.name);
  if on.stats.rf_queries <> off.stats.rf_queries || on.stats.rf_rejected <> off.stats.rf_rejected
  then
    failwith
      ("rf-bench: spin-row rejection ledgers diverge between kernel-on and kernel-off on " ^ b.name);
  {
    rf_workload = b.name ^ "/" ^ test_name;
    rf_explored = on.stats.explored;
    rf_graphs = on.stats.distinct_graphs;
    rf_on_wall_s = wall_on;
    rf_off_wall_s = wall_off;
    rf_queries = on.stats.rf_queries;
    rf_fast = on.stats.rf_fast;
    rf_rejected = on.stats.rf_rejected;
    rf_pruned =
      on.stats.pruned_equiv + on.stats.pruned_sleep_set + on.stats.pruned_loop_bound
      + on.stats.pruned_max_actions;
    (* the serial identity gate above is unconditional for spin rows *)
    rf_gated = true;
  }

let rf_speedup r = if r.rf_on_wall_s > 0. then r.rf_off_wall_s /. r.rf_on_wall_s else 1.

let write_rf_json registry spin =
  write_bench_file ~default:rf_json_file ~pr:9
    ~note:(if !smoke then " (smoke)" else "")
    (fun oc ->
      Printf.fprintf oc
        "  \"smoke\": %b,\n  \"median_speedup\": %.2f,\n  \"median_spin_speedup\": %.2f,\n  \
         \"registry\": [\n"
        !smoke
        (median (List.map rf_speedup registry))
        (median (List.map rf_speedup spin));
      let row i n r =
        Printf.fprintf oc
          "    {\"workload\": %S, \"explored\": %d, \"distinct_graphs\": %d, \"wall_kernel_on_s\": \
           %.4f, \"wall_kernel_off_s\": %.4f, \"speedup\": %.2f, \"rf_queries\": %d, \
           \"rf_fast\": %d, \"rejected_before_replay\": %d, \"pruned_after_replay\": %d, \
           \"identical\": %b}%s\n"
          r.rf_workload r.rf_explored r.rf_graphs r.rf_on_wall_s r.rf_off_wall_s (rf_speedup r)
          r.rf_queries r.rf_fast r.rf_rejected r.rf_pruned r.rf_gated
          (if i = n - 1 then "" else ",")
      in
      List.iteri (fun i r -> row i (List.length registry) r) registry;
      Printf.fprintf oc "  ],\n  \"spin\": [\n";
      List.iteri (fun i r -> row i (List.length spin) r) spin;
      Printf.fprintf oc "  ]\n")

let run_rf () =
  section
    (Printf.sprintf "Rf kernel: incremental consistency summaries%s"
       (if !smoke then " (smoke subset)" else ""));
  let max_execs = if !smoke then Some 20_000 else Some 400_000 in
  Format.printf "%-34s %9s %7s %10s %10s %8s %12s %11s@." "Workload" "explored" "graphs"
    "off (s)" "on (s)" "speedup" "rejected<rp" "pruned>rp";
  let print r =
    Format.printf "%-34s %9d %7d %10.3f %10.3f %7.2fx %12d %11d%s@." r.rf_workload r.rf_explored
      r.rf_graphs r.rf_off_wall_s r.rf_on_wall_s (rf_speedup r) r.rf_rejected r.rf_pruned
      (if r.rf_gated then "" else "  (gate skipped)")
  in
  let registry =
    List.map
      (fun b ->
        let r = rf_one ~max_execs b in
        print r;
        r)
      Structures.Registry.exhaustive
  in
  if not (List.exists (fun r -> r.rf_gated) registry) then
    failwith "rf-bench: every kernel quadruple truncated; the identity gate never ran";
  (* best-of walls even in smoke: single-shot sub-second timings on a
     shared host are +-20% noise, which would misread as regressions *)
  let reps = if !smoke then 3 else 5 in
  Format.printf "@.%-34s %9s %7s %10s %10s %8s %12s@." "Spin workload (prune off)" "explored"
    "graphs" "off (s)" "on (s)" "speedup" "rejected<rp";
  let spin =
    List.map
      (fun (b, test_name, loop_bound) ->
        let r = rf_spin_one ?loop_bound ~max_execs ~reps b test_name in
        Format.printf "%-34s %9d %7d %10.3f %10.3f %7.2fx %12d@." r.rf_workload r.rf_explored
          r.rf_graphs r.rf_off_wall_s r.rf_on_wall_s (rf_speedup r) r.rf_rejected;
        r)
      [
        (Structures.Mcs_lock.benchmark, "two-threads", Some 48);
        (Structures.Chase_lev_deque.benchmark, "small", None);
      ]
  in
  write_rf_json registry spin

(* ------------------------------------------------------------------ *)
(* Commit path: the PR-10 benchmark. The commit-path overhaul's
   dispatch layer — first-run direct dispatch ([inline_visible]) plus
   the finished-thread replay skip ([replay_finished = false], sound
   here: these workloads observe only the execution graph) — against
   the PR-9-equivalent dispatch (every operation a fiber switch, every
   finished thread replayed). Both legs share the packed-clock and
   monomorphic commit kernels, so the delta isolates the dispatch
   layer. Every exhaustive registry structure (first unit test, prune
   on, checker on) runs in both modes plus the legacy fresh-run engine;
   serial DFS is deterministic, so explored counts, distinct-graph
   sets, bug lists and first traces must be bit-identical across all
   three — any divergence is a hard failure, making the `--smoke` run
   CI's dispatch-soundness gate. The spin rows (prune off, best-of-N)
   measure the wall-clock win in the restore-dominated regime the
   overhaul targets. Emitted as BENCH_PR10.json with the per-phase
   counters (commits, fiber switches, inline ops, snapshots, restores)
   in every row.                                                       *)

let commit_json_file = "BENCH_PR10.json"

type cm_row = {
  cm_workload : string;
  cm_explored : int;
  cm_graphs : int;
  cm_base_wall_s : float;
  cm_over_wall_s : float;
  cm_commits : int;
  cm_switches : int;
  cm_inline : int;
  cm_snapshots : int;
  cm_restores : int;
}

let cm_explore ?loop_bound ~mode ~prune ~max_execs (b : B.t) (t : B.test) =
  let ords = Structures.Ords.default b.sites in
  let sched, engine =
    match mode with
    | `Base ->
      ({ b.scheduler with Mc.Scheduler.inline_visible = false; replay_finished = true }, `Arena)
    | `Overhaul ->
      ({ b.scheduler with Mc.Scheduler.inline_visible = true; replay_finished = false }, `Arena)
    | `Legacy -> (b.scheduler, `Legacy)
  in
  let sched =
    match loop_bound with
    | None -> sched
    | Some lb -> { sched with Mc.Scheduler.loop_bound = lb }
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Mc.Parallel.explore ~jobs:1 ~strategy:`Steal
      ~config:
        { E.default_config with scheduler = sched; engine; max_executions = max_execs; prune }
      ~on_feasible:(Cdsspec.Checker.hook b.spec)
      (t.program ords)
  in
  (Unix.gettimeofday () -. t0, r)

(* Serial DFS is deterministic and the dispatch mode never changes a
   decision, so the identity gates are unconditional even when the
   execution cap truncates the tree. *)
let cm_gate ~what (b : B.t) (r : E.result) (base : E.result) =
  if r.stats.explored <> base.stats.explored then
    failwith (Printf.sprintf "commit-bench: explored counts diverge (%s) on %s" what b.name);
  if r.graphs <> base.graphs then
    failwith (Printf.sprintf "commit-bench: distinct-graph sets diverge (%s) on %s" what b.name);
  if List.map Mc.Bug.key r.bugs <> List.map Mc.Bug.key base.bugs then
    failwith (Printf.sprintf "commit-bench: bug lists diverge (%s) on %s" what b.name);
  if r.first_buggy_trace <> base.first_buggy_trace then
    failwith (Printf.sprintf "commit-bench: first buggy traces diverge (%s) on %s" what b.name)

let cm_row (b : B.t) test_name ~wall_base ~wall_over (over : E.result) =
  {
    cm_workload = b.name ^ "/" ^ test_name;
    cm_explored = over.stats.explored;
    cm_graphs = over.stats.distinct_graphs;
    cm_base_wall_s = wall_base;
    cm_over_wall_s = wall_over;
    cm_commits = over.stats.commits;
    cm_switches = over.stats.fiber_switches;
    cm_inline = over.stats.inline_ops;
    cm_snapshots = over.stats.snapshots;
    cm_restores = over.stats.restores;
  }

let cm_one ~max_execs (b : B.t) =
  let t = List.hd b.tests in
  let timed mode =
    Gc.compact ();
    cm_explore ~mode ~prune:true ~max_execs b t
  in
  let wall_base, base = timed `Base in
  let wall_over, over = timed `Overhaul in
  let _, legacy = cm_explore ~mode:`Legacy ~prune:true ~max_execs b t in
  cm_gate ~what:"overhaul vs base" b over base;
  cm_gate ~what:"overhaul vs legacy" b over legacy;
  cm_row b t.test_name ~wall_base ~wall_over over

(* Spin rows: prune off, best-of-N walls, modes alternating within each
   round with the leading mode flipped per round (same discipline as
   the rf spin rows — heap drift otherwise loads onto the later
   batch). *)
let cm_spin_one ?loop_bound ~max_execs ~reps (b : B.t) test_name =
  let t = find_test b test_name in
  let best_base = ref (infinity, None) in
  let best_over = ref (infinity, None) in
  let run over =
    Gc.compact ();
    let mode = if over then `Overhaul else `Base in
    let w, r = cm_explore ?loop_bound ~mode ~prune:false ~max_execs b t in
    let best = if over then best_over else best_base in
    if w < fst !best then best := (w, Some r)
  in
  for rep = 0 to reps - 1 do
    let first = rep land 1 = 0 in
    run first;
    run (not first)
  done;
  let take best = match !best with _, None -> assert false | w, Some r -> (w, r) in
  let wall_base, base = take best_base in
  let wall_over, over = take best_over in
  cm_gate ~what:"overhaul vs base, spin" b over base;
  cm_row b test_name ~wall_base ~wall_over over

let cm_speedup r = if r.cm_over_wall_s > 0. then r.cm_base_wall_s /. r.cm_over_wall_s else 1.

let write_commit_json registry spin =
  write_bench_file ~default:commit_json_file ~pr:10
    ~note:(if !smoke then " (smoke)" else "")
    (fun oc ->
      Printf.fprintf oc
        "  \"smoke\": %b,\n  \"baseline\": \"inline_visible=off, replay_finished=on \
         (PR9-equivalent dispatch; packed clocks and monomorphic commit kernels in both \
         legs)\",\n  \"median_speedup\": %.2f,\n  \"median_spin_speedup\": %.2f,\n  \
         \"registry\": [\n"
        !smoke
        (median (List.map cm_speedup registry))
        (median (List.map cm_speedup spin));
      let row i n r =
        Printf.fprintf oc
          "    {\"workload\": %S, \"explored\": %d, \"distinct_graphs\": %d, \
           \"wall_base_s\": %.4f, \"wall_overhaul_s\": %.4f, \"speedup\": %.2f, \
           \"commits\": %d, \"fiber_switches\": %d, \"inline_ops\": %d, \"snapshots\": %d, \
           \"restores\": %d, \"identical\": true}%s\n"
          r.cm_workload r.cm_explored r.cm_graphs r.cm_base_wall_s r.cm_over_wall_s
          (cm_speedup r) r.cm_commits r.cm_switches r.cm_inline r.cm_snapshots r.cm_restores
          (if i = n - 1 then "" else ",")
      in
      List.iteri (fun i r -> row i (List.length registry) r) registry;
      Printf.fprintf oc "  ],\n  \"spin\": [\n";
      List.iteri (fun i r -> row i (List.length spin) r) spin;
      Printf.fprintf oc "  ]\n")

let run_commit () =
  section
    (Printf.sprintf "Commit path: first-run direct dispatch%s"
       (if !smoke then " (smoke subset)" else ""));
  let max_execs = if !smoke then Some 20_000 else Some 400_000 in
  Format.printf "%-34s %9s %7s %10s %10s %8s %10s %10s@." "Workload" "explored" "graphs"
    "base (s)" "over (s)" "speedup" "inline" "switches";
  let print r =
    Format.printf "%-34s %9d %7d %10.3f %10.3f %7.2fx %10d %10d@." r.cm_workload r.cm_explored
      r.cm_graphs r.cm_base_wall_s r.cm_over_wall_s (cm_speedup r) r.cm_inline r.cm_switches
  in
  let registry =
    List.map
      (fun b ->
        let r = cm_one ~max_execs b in
        print r;
        r)
      Structures.Registry.exhaustive
  in
  let reps = if !smoke then 3 else 5 in
  Format.printf "@.%-34s %9s %7s %10s %10s %8s %10s %10s@." "Spin workload (prune off)" "explored"
    "graphs" "base (s)" "over (s)" "speedup" "restores" "snapshots";
  let spin =
    List.map
      (fun (b, test_name, loop_bound) ->
        let r = cm_spin_one ?loop_bound ~max_execs ~reps b test_name in
        Format.printf "%-34s %9d %7d %10.3f %10.3f %7.2fx %10d %10d@." r.cm_workload r.cm_explored
          r.cm_graphs r.cm_base_wall_s r.cm_over_wall_s (cm_speedup r) r.cm_restores
          r.cm_snapshots;
        r)
      [
        (Structures.Mcs_lock.benchmark, "two-threads", Some 48);
        (Structures.Chase_lev_deque.benchmark, "small", None);
      ]
  in
  write_commit_json registry spin

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* split --jobs N / --jobs=N / -j N off the job-name list *)
  let rec parse acc = function
    | [] -> List.rev acc
    | [ ("--jobs" | "-j") ] -> failwith "--jobs: missing value"
    | ("--jobs" | "-j") :: n :: rest -> (
      match int_of_string_opt n with
      | Some n ->
        jobs := (if n <= 0 then Domain.recommended_domain_count () else n);
        parse acc rest
      | None -> failwith ("--jobs: not an integer: " ^ n))
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
      let n = String.sub arg 7 (String.length arg - 7) in
      match int_of_string_opt n with
      | Some n ->
        jobs := (if n <= 0 then Domain.recommended_domain_count () else n);
        parse acc rest
      | None -> failwith ("--jobs=: not an integer: " ^ n))
    | "--smoke" :: rest ->
      smoke := true;
      parse acc rest
    | arg :: rest -> parse (arg :: acc) rest
  in
  (match Harness.Experiments.jobs_of_env () with
  | n -> jobs := n
  | exception Invalid_argument msg ->
    prerr_endline msg;
    exit 2);
  let names = try parse [] args with Failure msg -> prerr_endline msg; exit 2 in
  let names =
    if names = [] then [ "fig7"; "fig8"; "expr"; "known"; "ablation"; "timing"; "fuzz"; "lint" ]
    else names
  in
  List.iter
    (fun job ->
      match job with
      | "fig7" -> run_fig7 ()
      | "fig8" -> run_fig8 ()
      | "expr" -> run_expr ()
      | "known" -> run_known ()
      | "ablation" -> run_ablation ()
      | "timing" -> run_timing ()
      | "fuzz" -> run_fuzz ()
      | "lint" -> run_lint ()
      | "check-cache" -> run_check_cache ()
      | "explore" -> run_explore ()
      | "replay" -> run_replay ()
      | "serve" -> run_serve ()
      | "rf" -> run_rf ()
      | "commit" -> run_commit ()
      | other ->
        Format.printf
          "unknown job %S \
           (fig7|fig8|expr|known|ablation|timing|fuzz|lint|check-cache|explore|replay|serve|rf|commit)@."
          other)
    names
