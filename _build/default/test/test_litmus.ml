(* Run the whole litmus corpus: every allowed outcome must be observed,
   no forbidden outcome may appear. *)

let test_one (t : Litmus.t) () =
  let r = Litmus.run t in
  if not (Litmus.ok r) then
    Alcotest.failf "%s: %a" t.name Litmus.pp_result r;
  Alcotest.(check bool) (t.name ^ " feasible") true (r.feasible > 0)

let () =
  Alcotest.run "litmus"
    [
      ( "corpus",
        List.map (fun (t : Litmus.t) -> Alcotest.test_case t.name `Quick (test_one t)) Litmus.all
      );
    ]
