(* Per-benchmark validation: the published memory orders pass the
   specification on every unit test, and exploration stays tractable.
   Injection coverage is exercised by the Figure 8 experiment (bench/)
   and by targeted tests here. *)

module E = Mc.Explorer
module B = Structures.Benchmark

let explore (b : B.t) ?(ords = Structures.Ords.default b.sites) (t : B.test) =
  E.explore
    ~config:{ E.default_config with scheduler = b.scheduler; max_executions = Some 25_000 }
    ~on_feasible:(Cdsspec.Checker.hook b.spec)
    (t.program ords)

let test_correct_passes (b : B.t) () =
  List.iter
    (fun (t : B.test) ->
      let r = explore b t in
      Alcotest.(check (list string))
        (b.name ^ "/" ^ t.test_name ^ ": no bugs")
        []
        (List.map Mc.Bug.key r.bugs);
      Alcotest.(check bool)
        (b.name ^ "/" ^ t.test_name ^ ": feasible")
        true (r.stats.feasible > 0))
    b.tests

let test_injection_rate (b : B.t) ~expect_at_least () =
  let weakenable = Structures.Ords.weakenable b.sites in
  let detected =
    List.filter
      (fun (s : Structures.Ords.site) ->
        match Structures.Ords.weakened b.sites s.name with
        | None -> false
        | Some ords -> List.exists (fun t -> (explore b ~ords t).bugs <> []) b.tests)
      weakenable
  in
  let rate = List.length detected * 100 / max 1 (List.length weakenable) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: detection rate %d%% >= %d%%" b.name rate expect_at_least)
    true (rate >= expect_at_least)

(* The M&S queue's two known bugs (AutoMO, paper section 6.4.1) are
   caught as specification violations. *)
let test_ms_known_bugs () =
  let module MS = Structures.Ms_queue in
  List.iter
    (fun (site, ords) ->
      let detected =
        List.exists (fun t -> (explore MS.benchmark ~ords t).bugs <> []) MS.benchmark.tests
      in
      Alcotest.(check bool) ("known bug at " ^ site ^ " detected") true detected)
    MS.known_bugs;
  let detected =
    List.exists
      (fun t -> (explore MS.benchmark ~ords:MS.known_buggy_ords t).bugs <> [])
      MS.benchmark.tests
  in
  Alcotest.(check bool) "combined buggy port detected" true detected

let benchmark_cases (b : B.t) ~expect_at_least =
  [
    Alcotest.test_case (b.name ^ " correct") `Quick (test_correct_passes b);
    Alcotest.test_case (b.name ^ " injections") `Quick (test_injection_rate b ~expect_at_least);
  ]

let () =
  let module R = Structures.Registry in
  let with_rate name expect_at_least =
    match R.find name with
    | Some b -> benchmark_cases b ~expect_at_least
    | None -> Alcotest.fail ("unknown benchmark " ^ name)
  in
  Alcotest.run "structures"
    [
      ("blocking-queue", with_rate "Blocking Queue" 100);
      ("spsc-queue", with_rate "SPSC Queue" 100);
      ("ms-queue", with_rate "M&S Queue" 80);
      ("seqlock", with_rate "Seqlock" 60);
      ("ticket-lock", with_rate "Ticket Lock" 100);
      ("chase-lev-deque", with_rate "Chase-Lev Deque" 50);
      ("rcu", with_rate "RCU" 100);
      ("lockfree-hashtable", with_rate "Lockfree Hashtable" 60);
      ("mcs-lock", with_rate "MCS Lock" 50);
      ("mpmc-queue", with_rate "MPMC Queue" 30);
      ("linux-rwlock", with_rate "Linux RW Lock" 50);
      ("atomic-register", with_rate "Atomic Register" 0);
      ("contention-free-lock", with_rate "Contention-Free Lock" 100);
      ("treiber-stack", with_rate "Treiber Stack" 60);
      ("peterson-lock", with_rate "Peterson Lock" 40);
      ("barrier", with_rate "Barrier" 100);
      ("rcu-grace", with_rate "RCU Grace" 100);
      ("lockfree-set", with_rate "Lockfree Set" 50);
      ("dekker-lock", with_rate "Dekker Lock" 25);
      ("lamport-ring", with_rate "Lamport Ring" 100);
      ("clh-lock", with_rate "CLH Lock" 100);
      ("lazy-init", with_rate "Lazy Init" 100);
      ("ms-known-bugs", [ Alcotest.test_case "known bugs" `Quick test_ms_known_bugs ]);
    ]
