(* Admissibility as a usage contract (paper section 2, "constrain the
   valid usage patterns"): structures whose specifications carry @Admit
   rules reject unit tests that break the usage assumptions, with an
   admissibility violation rather than a confusing assertion failure. *)

module P = Mc.Program
module E = Mc.Explorer
module B = Structures.Benchmark

let explore_spec spec program = E.explore ~on_feasible:(Cdsspec.Checker.hook spec) program

let admissibility_violation bugs =
  List.exists
    (function Mc.Bug.Spec_violation { kind; _ } -> kind = "admissibility" | _ -> false)
    bugs

(* SPSC queue used with TWO producers: the enq<->enq rule fires. *)
let test_spsc_two_producers () =
  let module Q = Structures.Spsc_queue in
  let ords = Structures.Ords.default Q.sites in
  let program () =
    let q = Q.create () in
    let p1 = P.spawn (fun () -> Q.enq ords q 1) in
    let p2 = P.spawn (fun () -> Q.enq ords q 2) in
    P.join p1;
    P.join p2
  in
  let r = explore_spec Q.spec program in
  (* misuse surfaces immediately as a data race on the producer-owned
     tail pointer (a built-in check, which precedes spec checking); the
     admissibility rule is the backstop for race-free misuse *)
  Alcotest.(check bool) "two producers rejected" true (r.bugs <> [])

(* ...and with the intended single producer, no violation. *)
let test_spsc_single_producer_ok () =
  let module Q = Structures.Spsc_queue in
  let ords = Structures.Ords.default Q.sites in
  let program () =
    let q = Q.create () in
    let p = P.spawn (fun () -> Q.enq ords q 1) in
    let c = P.spawn (fun () -> ignore (Q.deq ords q)) in
    P.join p;
    P.join c
  in
  let r = explore_spec Q.spec program in
  Alcotest.(check (list string)) "intended usage clean" [] (List.map Mc.Bug.key r.bugs)

(* Chase-Lev deque: push/take must be owner-only; two pushers violate
   the push<->push rule. *)
let test_deque_two_owners () =
  let module D = Structures.Chase_lev_deque in
  let ords = Structures.Ords.default D.sites in
  let program () =
    let q = D.create ~capacity:2 ~init_resize:false () in
    let o1 = P.spawn (fun () -> D.push ords q 1) in
    let o2 = P.spawn (fun () -> D.push ords q 2) in
    P.join o1;
    P.join o2
  in
  let r = explore_spec D.spec program in
  Alcotest.(check bool) "two owners rejected" true (admissibility_violation r.bugs)

(* RCU: two unsynchronized writers violate the single-updater rule. *)
let test_rcu_two_writers () =
  let module R = Structures.Rcu in
  let ords = Structures.Ords.default R.sites in
  let program () =
    let t = R.create () in
    let w1 = P.spawn (fun () -> R.write ords t 1) in
    let w2 = P.spawn (fun () -> R.write ords t 2) in
    P.join w1;
    P.join w2
  in
  let r = explore_spec R.spec program in
  Alcotest.(check bool) "racing writers rejected" true (admissibility_violation r.bugs)

(* Sequential writers (hb-ordered) are fine. *)
let test_rcu_sequential_writers_ok () =
  let module R = Structures.Rcu in
  let ords = Structures.Ords.default R.sites in
  let program () =
    let t = R.create () in
    R.write ords t 1;
    let w = P.spawn (fun () -> R.write ords t 2) in
    P.join w;
    ignore (R.read ords t)
  in
  let r = explore_spec R.spec program in
  Alcotest.(check (list string)) "sequential writers clean" [] (List.map Mc.Bug.key r.bugs)

let () =
  Alcotest.run "admissibility"
    [
      ( "usage-contracts",
        [
          Alcotest.test_case "spsc two producers" `Quick test_spsc_two_producers;
          Alcotest.test_case "spsc intended usage" `Quick test_spsc_single_producer_ok;
          Alcotest.test_case "deque two owners" `Quick test_deque_two_owners;
          Alcotest.test_case "rcu racing writers" `Quick test_rcu_two_writers;
          Alcotest.test_case "rcu sequential writers" `Quick test_rcu_sequential_writers_ok;
        ] );
    ]
