(* Single-threaded conformance: driven by one thread, each structure is
   deterministic and must agree exactly with its sequential model on
   random operation sequences. This exercises the implementations (and
   the DSL they are written against) independently of weak-memory
   effects. *)

module P = Mc.Program
module E = Mc.Explorer
module Il = Cdsspec.Seq_state.Int_list

let run_single_threaded program =
  (* a single-threaded program has exactly one schedule; reads-from
     choices remain (coherence can still offer stale values on relaxed
     reads in general), so model-check exhaustively and require every
     feasible execution to agree *)
  let r = E.explore program in
  Alcotest.(check (list string)) "no bugs" [] (List.map Mc.Bug.key r.bugs);
  r

(* ------------------------------ queues --------------------------- *)

type queue_op = Enq of int | Deq

let queue_ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (frequency [ (2, map (fun v -> Enq (v + 1)) (int_bound 8)); (1, return Deq) ]))

let queue_ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function Enq v -> Printf.sprintf "enq %d" v | Deq -> "deq") ops))
    queue_ops_gen

let fifo_model ops =
  let rec go q acc = function
    | [] -> List.rev acc
    | Enq v :: rest -> go (q @ [ v ]) acc rest
    | Deq :: rest -> (
      match q with
      | [] -> go [] ((-1) :: acc) rest
      | v :: q -> go q (v :: acc) rest)
  in
  go [] [] ops

let check_queue_model ~enq ~deq ~create ops =
  let results = ref [] in
  let ok = ref true in
  let program () =
    let q = create () in
    results := [];
    List.iter
      (function
        | Enq v -> enq q v
        | Deq -> results := deq q :: !results)
      ops
  in
  let _ =
    E.explore
      ~on_feasible:(fun _ _ ->
        if List.rev !results <> fifo_model ops then ok := false;
        [])
      program
  in
  !ok

let prop_blocking_queue_sequential =
  let ords = Structures.Ords.default Structures.Blocking_queue.sites in
  QCheck.Test.make ~name:"blocking queue = sequential FIFO (single thread)" ~count:60
    queue_ops_arb
    (check_queue_model
       ~enq:(fun q v -> Structures.Blocking_queue.enq ords q v)
       ~deq:(fun q -> Structures.Blocking_queue.deq ords q)
       ~create:Structures.Blocking_queue.create)

let prop_ms_queue_sequential =
  let ords = Structures.Ords.default Structures.Ms_queue.sites in
  QCheck.Test.make ~name:"M&S queue = sequential FIFO (single thread)" ~count:40 queue_ops_arb
    (check_queue_model
       ~enq:(fun q v -> Structures.Ms_queue.enq ords q v)
       ~deq:(fun q -> Structures.Ms_queue.deq ords q)
       ~create:Structures.Ms_queue.create)

let prop_mpmc_queue_sequential =
  let ords = Structures.Ords.default Structures.Mpmc_queue.sites in
  QCheck.Test.make ~name:"MPMC queue = sequential FIFO (single thread)" ~count:40 queue_ops_arb
    (fun ops ->
      (* capacity 8 >= max enqueues so the FIFO model applies *)
      check_queue_model
        ~enq:(fun q v -> ignore (Structures.Mpmc_queue.enq ords q v))
        ~deq:(fun q -> Structures.Mpmc_queue.deq ords q)
        ~create:(fun () -> Structures.Mpmc_queue.create 8)
        ops)

(* ------------------------------ deque ---------------------------- *)

type deque_op = Push of int | Take

let deque_ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function Push v -> Printf.sprintf "push %d" v | Take -> "take") ops))
    QCheck.Gen.(
      list_size (int_range 1 6)
        (frequency [ (2, map (fun v -> Push (v + 1)) (int_bound 8)); (1, return Take) ]))

let lifo_model ops =
  let rec go stack acc = function
    | [] -> List.rev acc
    | Push v :: rest -> go (v :: stack) acc rest
    | Take :: rest -> (
      match stack with
      | [] -> go [] ((-1) :: acc) rest
      | v :: stack -> go stack (v :: acc) rest)
  in
  go [] [] ops

let prop_chase_lev_owner_sequential =
  let ords = Structures.Ords.default Structures.Chase_lev_deque.sites in
  QCheck.Test.make ~name:"Chase-Lev owner ops = LIFO (single thread)" ~count:40 deque_ops_arb
    (fun ops ->
      let results = ref [] in
      let ok = ref true in
      let program () =
        let q = Structures.Chase_lev_deque.create ~capacity:2 ~init_resize:false () in
        results := [];
        List.iter
          (function
            | Push v -> Structures.Chase_lev_deque.push ords q v
            | Take -> results := Structures.Chase_lev_deque.take ords q :: !results)
          ops
      in
      let _ =
        E.explore
          ~on_feasible:(fun _ _ ->
            if List.rev !results <> lifo_model ops then ok := false;
            [])
          program
      in
      !ok)

(* --------------------------- locks ------------------------------- *)

let test_ticket_lock_sequential () =
  let ords = Structures.Ords.default Structures.Ticket_lock.sites in
  let program () =
    let l = Structures.Ticket_lock.create () in
    for _ = 1 to 3 do
      Structures.Ticket_lock.lock ords l;
      Structures.Ticket_lock.unlock ords l
    done
  in
  ignore (run_single_threaded program)

let test_mcs_lock_sequential () =
  let ords = Structures.Ords.default Structures.Mcs_lock.sites in
  let program () =
    let l = Structures.Mcs_lock.create () in
    for _ = 1 to 3 do
      let me = Structures.Mcs_lock.make_node () in
      Structures.Mcs_lock.lock ords l me;
      Structures.Mcs_lock.unlock ords l me
    done
  in
  ignore (run_single_threaded program)

let test_rwlock_sequential () =
  let ords = Structures.Ords.default Structures.Linux_rwlock.sites in
  let program () =
    let l = Structures.Linux_rwlock.create () in
    Structures.Linux_rwlock.read_lock ords l;
    Structures.Linux_rwlock.read_unlock ords l;
    Structures.Linux_rwlock.write_lock ords l;
    Structures.Linux_rwlock.write_unlock ords l;
    let r = Structures.Linux_rwlock.write_trylock ords l in
    P.check (r = 1) "uncontended trylock succeeds";
    Structures.Linux_rwlock.write_unlock ords l
  in
  ignore (run_single_threaded program)

(* --------------------------- hashtable --------------------------- *)

type ht_op = Put of int * int | Get of int

let ht_ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Put (k, v) -> Printf.sprintf "put %d %d" k v
             | Get k -> Printf.sprintf "get %d" k)
           ops))
    QCheck.Gen.(
      list_size (int_range 1 5)
        (frequency
           [
             (2, map2 (fun k v -> Put (k + 1, v + 1)) (int_bound 2) (int_bound 8));
             (1, map (fun k -> Get (k + 1)) (int_bound 2));
           ]))

let ht_model ops =
  let module M = Map.Make (Int) in
  let rec go m acc = function
    | [] -> List.rev acc
    | Put (k, v) :: rest -> go (M.add k v m) acc rest
    | Get k :: rest -> go m ((match M.find_opt k m with Some v -> v | None -> 0) :: acc) rest
  in
  go M.empty [] ops

let prop_hashtable_sequential =
  let ords = Structures.Ords.default Structures.Lockfree_hashtable.sites in
  QCheck.Test.make ~name:"hashtable = sequential map (single thread)" ~count:40 ht_ops_arb
    (fun ops ->
      let results = ref [] in
      let ok = ref true in
      let program () =
        let t = Structures.Lockfree_hashtable.create 4 in
        results := [];
        List.iter
          (function
            | Put (k, v) -> Structures.Lockfree_hashtable.put ords t ~key:k ~value:v
            | Get k -> results := Structures.Lockfree_hashtable.get ords t ~key:k :: !results)
          ops
      in
      let _ =
        E.explore
          ~on_feasible:(fun _ _ ->
            if List.rev !results <> ht_model ops then ok := false;
            [])
          program
      in
      !ok)

(* --------------------------- seqlock/rcu ------------------------- *)

let test_seqlock_sequential () =
  let ords = Structures.Ords.default Structures.Seqlock.sites in
  let program () =
    let l = Structures.Seqlock.create () in
    P.check (Structures.Seqlock.read ords l = 0) "initial snapshot";
    Structures.Seqlock.write ords l 3;
    P.check (Structures.Seqlock.read ords l = (3 * 16) + 3) "snapshot after write"
  in
  ignore (run_single_threaded program)

let test_rcu_sequential () =
  let ords = Structures.Ords.default Structures.Rcu.sites in
  let program () =
    let t = Structures.Rcu.create () in
    P.check (Structures.Rcu.read ords t = 0) "initial";
    Structures.Rcu.write ords t 5;
    P.check (Structures.Rcu.read ords t = 5) "after write"
  in
  ignore (run_single_threaded program)

let test_spsc_sequential () =
  let ords = Structures.Ords.default Structures.Spsc_queue.sites in
  let program () =
    let q = Structures.Spsc_queue.create () in
    P.check (Structures.Spsc_queue.deq ords q = -1) "empty";
    Structures.Spsc_queue.enq ords q 1;
    Structures.Spsc_queue.enq ords q 2;
    P.check (Structures.Spsc_queue.deq ords q = 1) "fifo 1";
    P.check (Structures.Spsc_queue.deq ords q = 2) "fifo 2";
    P.check (Structures.Spsc_queue.deq ords q = -1) "empty again"
  in
  ignore (run_single_threaded program)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sequential-conformance"
    [
      ( "queues",
        [
          qt prop_blocking_queue_sequential;
          qt prop_ms_queue_sequential;
          qt prop_mpmc_queue_sequential;
          Alcotest.test_case "spsc" `Quick test_spsc_sequential;
        ] );
      ("deque", [ qt prop_chase_lev_owner_sequential ]);
      ( "locks",
        [
          Alcotest.test_case "ticket" `Quick test_ticket_lock_sequential;
          Alcotest.test_case "mcs" `Quick test_mcs_lock_sequential;
          Alcotest.test_case "rwlock" `Quick test_rwlock_sequential;
        ] );
      ("hashtable", [ qt prop_hashtable_sequential ]);
      ( "snapshots",
        [
          Alcotest.test_case "seqlock" `Quick test_seqlock_sequential;
          Alcotest.test_case "rcu" `Quick test_rcu_sequential;
        ] );
    ]
