(* Soundness of the sleep-set partial-order reduction: on random
   straight-line programs, exploration with and without the reduction
   must produce exactly the same set of execution graphs (the reduction
   may only prune redundant interleavings of one graph).

   An execution graph is fingerprinted by its actions keyed by (tid, seq)
   — schedule-independent names — with their reads-from edges and values,
   plus the per-location modification orders. That is everything the
   semantics observes: the SC constraints only relate same-location
   operations (captured by rf and mo) and fences (which never commute
   with anything, so their interleavings are never pruned). *)

module P = Mc.Program
module E = Mc.Explorer
open C11.Memory_order

type op_desc =
  | OStore of int * int * C11.Memory_order.t
  | OLoad of int * C11.Memory_order.t
  | OCas of int * int * int * C11.Memory_order.t
  | OFadd of int * int * C11.Memory_order.t
  | OFence of C11.Memory_order.t
  | ONaStore of int * int
  | ONaLoad of int

type _prog_desc = op_desc list list  (* one op list per thread *)

let print_op = function
  | OStore (l, v, mo) -> Printf.sprintf "store(%d,%d,%s)" l v (C11.Memory_order.to_string mo)
  | OLoad (l, mo) -> Printf.sprintf "load(%d,%s)" l (C11.Memory_order.to_string mo)
  | OCas (l, e, d, mo) -> Printf.sprintf "cas(%d,%d,%d,%s)" l e d (C11.Memory_order.to_string mo)
  | OFadd (l, d, mo) -> Printf.sprintf "fadd(%d,%d,%s)" l d (C11.Memory_order.to_string mo)
  | OFence mo -> Printf.sprintf "fence(%s)" (C11.Memory_order.to_string mo)
  | ONaStore (l, v) -> Printf.sprintf "na_store(%d,%d)" l v
  | ONaLoad l -> Printf.sprintf "na_load(%d)" l

let print_prog p =
  String.concat " || " (List.map (fun t -> String.concat "; " (List.map print_op t)) p)

let gen_mo kind =
  QCheck.Gen.oneofl (C11.Memory_order.all_for kind)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map3 (fun l v mo -> OStore (l, v, mo)) (int_bound 1) (int_range 1 2) (gen_mo For_store));
        (4, map2 (fun l mo -> OLoad (l, mo)) (int_bound 1) (gen_mo For_load));
        ( 2,
          map3 (fun l e mo -> OCas (l, e, e + 1, mo)) (int_bound 1) (int_bound 2) (gen_mo For_rmw)
        );
        (2, map3 (fun l d mo -> OFadd (l, d, mo)) (int_bound 1) (int_range 1 2) (gen_mo For_rmw));
        (1, map (fun mo -> OFence mo) (gen_mo For_fence));
        (1, map2 (fun l v -> ONaStore (l, v)) (int_bound 1) (int_range 1 2));
        (1, map (fun l -> ONaLoad l) (int_bound 1));
      ])

let gen_prog =
  QCheck.Gen.(
    let* nthreads = int_range 2 3 in
    list_repeat nthreads (list_size (int_range 1 3) gen_op))

let prog_arb = QCheck.make ~print:print_prog gen_prog

let run_thread base ops =
  List.iter
    (fun op ->
      match op with
      | OStore (l, v, mo) -> P.store mo (base + l) v
      | OLoad (l, mo) -> ignore (P.load mo (base + l))
      | OCas (l, e, d, mo) -> ignore (P.cas mo (base + l) ~expected:e ~desired:d)
      | OFadd (l, d, mo) -> ignore (P.fetch_add mo (base + l) d)
      | OFence mo -> P.fence mo
      | ONaStore (l, v) -> P.na_store (base + l) v
      | ONaLoad l -> ignore (P.na_load (base + l)))
    ops

let program_of desc () =
  let base = P.malloc ~init:0 2 in
  let tids = List.map (fun ops -> P.spawn (fun () -> run_thread base ops)) desc in
  List.iter P.join tids

(* Schedule-independent fingerprint (see header comment). *)
let fingerprint exec =
  let n = C11.Execution.num_actions exec in
  let name (a : C11.Action.t) = Printf.sprintf "%d.%d" a.tid a.seq in
  let actions = List.init n (C11.Execution.action exec) in
  let act_str (a : C11.Action.t) =
    Printf.sprintf "%s:%s%s%s"
      (name a)
      (Fmt.str "%a@%d" C11.Memory_order.pp a.mo a.loc)
      (match a.rf with
      | Some id -> ":rf=" ^ name (C11.Execution.action exec id)
      | None -> "")
      (match a.read_value with Some v -> ":r" ^ string_of_int v | None -> "")
  in
  let sorted = List.sort Stdlib.compare (List.map act_str actions) in
  let mo_per_loc =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (a : C11.Action.t) ->
        if C11.Action.is_write a then
          Hashtbl.replace tbl a.loc
            ((match Hashtbl.find_opt tbl a.loc with Some l -> l | None -> []) @ [ name a ]))
      actions;
    Hashtbl.fold (fun loc l acc -> (loc, l) :: acc) tbl [] |> List.sort Stdlib.compare
  in
  (sorted, mo_per_loc)

module FpSet = Set.Make (struct
  type t = string list * (int * string list) list

  let compare = Stdlib.compare
end)

let graphs_of ~sleep_sets desc =
  let acc = ref FpSet.empty in
  let config =
    {
      E.default_config with
      scheduler = { Mc.Scheduler.default_config with sleep_sets };
      max_executions = Some 60_000;
    }
  in
  let r =
    E.explore ~config
      ~on_feasible:(fun exec _ ->
        acc := FpSet.add (fingerprint exec) !acc;
        [])
      (program_of desc)
  in
  (!acc, r.stats.truncated)

let prop_sleep_sets_preserve_graphs =
  QCheck.Test.make ~name:"sleep sets preserve the execution-graph set" ~count:60 prog_arb
    (fun desc ->
      let with_ss, t1 = graphs_of ~sleep_sets:true desc in
      let without, t2 = graphs_of ~sleep_sets:false desc in
      QCheck.assume (not (t1 || t2));
      FpSet.equal with_ss without)

(* Determinism: exploring twice yields identical statistics. *)
let prop_exploration_deterministic =
  QCheck.Test.make ~name:"exploration is deterministic" ~count:40 prog_arb (fun desc ->
      let r1 = E.explore (program_of desc) in
      let r2 = E.explore (program_of desc) in
      r1.stats.explored = r2.stats.explored && r1.stats.feasible = r2.stats.feasible)

(* Every feasible execution satisfies basic well-formedness: reads read
   committed same-location writes, and rf respects per-location coherence
   with respect to reads-from indices. *)
let prop_wellformed_rf =
  QCheck.Test.make ~name:"reads-from is well-formed" ~count:60 prog_arb (fun desc ->
      let ok = ref true in
      let _ =
        E.explore
          ~on_feasible:(fun exec _ ->
            let n = C11.Execution.num_actions exec in
            for i = 0 to n - 1 do
              let a = C11.Execution.action exec i in
              match a.rf with
              | Some id ->
                let w = C11.Execution.action exec id in
                if not (C11.Action.is_write w && w.loc = a.loc && id < i) then ok := false
              | None -> ()
            done;
            [])
          (program_of desc)
      in
      !ok)

(* hb is consistent with commit order: an action never happens before an
   earlier-committed one. *)
let prop_hb_respects_commit =
  QCheck.Test.make ~name:"happens-before respects commit order" ~count:60 prog_arb (fun desc ->
      let ok = ref true in
      let _ =
        E.explore
          ~on_feasible:(fun exec _ ->
            let n = C11.Execution.num_actions exec in
            for i = 0 to n - 1 do
              for j = i + 1 to n - 1 do
                if C11.Execution.happens_before exec j i then ok := false
              done
            done;
            [])
          (program_of desc)
      in
      !ok)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "reduction"
    [
      ( "properties",
        [
          qt prop_sleep_sets_preserve_graphs;
          qt prop_exploration_deterministic;
          qt prop_wellformed_rf;
          qt prop_hb_respects_commit;
        ] );
    ]
