(* Complement to the detection tests: the non-deterministic behaviours
   the specifications ALLOW must actually be observable — i.e. the
   explorer does not over-prune. Each case enumerates an operation's
   outcomes across all feasible executions and checks both the strong and
   the weak result occur. *)

module P = Mc.Program
module E = Mc.Explorer
module B = Structures.Benchmark

let collect_outcomes ~ords ~spec ~observe program =
  let acc = ref [] in
  let r =
    E.explore
      ~on_feasible:(fun exec annots ->
        let o = observe () in
        if not (List.mem o !acc) then acc := o :: !acc;
        Cdsspec.Checker.hook spec exec annots)
      program
  in
  Alcotest.(check (list string)) "spec holds" [] (List.map Mc.Bug.key r.bugs);
  ignore ords;
  List.sort compare !acc

let test_queue_spurious_empty () =
  let module Q = Structures.Blocking_queue in
  let ords = Structures.Ords.default Q.sites in
  let seen = ref 99 in
  let program () =
    let q = Q.create () in
    let t1 = P.spawn (fun () -> Q.enq ords q 1) in
    let t2 = P.spawn (fun () -> seen := Q.deq ords q) in
    P.join t1;
    P.join t2
  in
  let outs = collect_outcomes ~ords ~spec:Q.spec ~observe:(fun () -> !seen) program in
  Alcotest.(check (list int)) "both empty and hit observed" [ -1; 1 ] outs

let test_ms_queue_spurious_empty () =
  let module Q = Structures.Ms_queue in
  let ords = Structures.Ords.default Q.sites in
  let seen = ref 99 in
  let program () =
    let q = Q.create () in
    let t1 = P.spawn (fun () -> Q.enq ords q 1) in
    let t2 = P.spawn (fun () -> seen := Q.deq ords q) in
    P.join t1;
    P.join t2
  in
  let outs = collect_outcomes ~ords ~spec:Q.spec ~observe:(fun () -> !seen) program in
  Alcotest.(check (list int)) "both empty and hit observed" [ -1; 1 ] outs

let test_register_weakness () =
  let module R = Structures.Atomic_register in
  let ords = Structures.Ords.default R.sites in
  let seen = ref 99 in
  let program () =
    let r = R.create () in
    let t1 = P.spawn (fun () -> R.write ords r 1) in
    let t2 = P.spawn (fun () -> seen := R.read ords r) in
    P.join t1;
    P.join t2
  in
  let outs = collect_outcomes ~ords ~spec:R.spec ~observe:(fun () -> !seen) program in
  Alcotest.(check (list int)) "stale and fresh observed" [ 0; 1 ] outs

let test_treiber_spurious_empty () =
  let module S = Structures.Treiber_stack in
  let ords = Structures.Ords.default S.sites in
  let seen = ref 99 in
  let program () =
    let s = S.create () in
    let t1 = P.spawn (fun () -> S.push ords s 1) in
    let t2 = P.spawn (fun () -> seen := S.pop ords s) in
    P.join t1;
    P.join t2
  in
  let outs = collect_outcomes ~ords ~spec:S.spec ~observe:(fun () -> !seen) program in
  Alcotest.(check (list int)) "both empty and hit observed" [ -1; 1 ] outs

let test_seqlock_old_and_new_snapshots () =
  let module L = Structures.Seqlock in
  let ords = Structures.Ords.default L.sites in
  let seen = ref 99 in
  let program () =
    let l = L.create () in
    let t1 = P.spawn (fun () -> L.write ords l 1) in
    let t2 = P.spawn (fun () -> seen := L.read ords l) in
    P.join t1;
    P.join t2
  in
  let outs = collect_outcomes ~ords ~spec:L.spec ~observe:(fun () -> !seen) program in
  (* packed snapshots: initial (0,0) -> 0, fresh (1,1) -> 17 *)
  Alcotest.(check (list int)) "old and new snapshots" [ 0; 17 ] outs

let test_steal_take_race_outcomes () =
  (* the single element goes to exactly one of take/steal, and both
     assignments occur across executions *)
  let module D = Structures.Chase_lev_deque in
  let ords = Structures.Ords.default D.sites in
  let take_got = ref 99 and steal_got = ref 99 in
  let program () =
    let q = D.create ~capacity:2 ~init_resize:false () in
    D.push ords q 1;
    let thief = P.spawn (fun () -> steal_got := D.steal ords q) in
    take_got := D.take ords q;
    P.join thief
  in
  let outs =
    collect_outcomes ~ords ~spec:D.spec ~observe:(fun () -> (!take_got, !steal_got)) program
  in
  Alcotest.(check bool) "take can win" true (List.mem (1, -1) outs);
  Alcotest.(check bool) "steal can win" true (List.mem (-1, 1) outs);
  Alcotest.(check bool) "element never duplicated" false (List.mem (1, 1) outs)

let test_rcu_old_and_new () =
  let module R = Structures.Rcu in
  let ords = Structures.Ords.default R.sites in
  let seen = ref 99 in
  let program () =
    let t = R.create () in
    let w = P.spawn (fun () -> R.write ords t 1) in
    let r = P.spawn (fun () -> seen := R.read ords t) in
    P.join w;
    P.join r
  in
  let outs = collect_outcomes ~ords ~spec:R.spec ~observe:(fun () -> !seen) program in
  Alcotest.(check (list int)) "old and new versions" [ 0; 1 ] outs

let () =
  Alcotest.run "weak-behaviors"
    [
      ( "observable",
        [
          Alcotest.test_case "queue spurious empty" `Quick test_queue_spurious_empty;
          Alcotest.test_case "ms queue spurious empty" `Quick test_ms_queue_spurious_empty;
          Alcotest.test_case "register staleness" `Quick test_register_weakness;
          Alcotest.test_case "treiber spurious empty" `Quick test_treiber_spurious_empty;
          Alcotest.test_case "seqlock snapshots" `Quick test_seqlock_old_and_new_snapshots;
          Alcotest.test_case "steal/take race" `Quick test_steal_take_race_outcomes;
          Alcotest.test_case "rcu versions" `Quick test_rcu_old_and_new;
        ] );
    ]
