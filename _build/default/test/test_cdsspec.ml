(* End-to-end tests of the CDSSpec pipeline on the paper's running
   example (the blocking queue of Figures 2 and 6). *)

module P = Mc.Program
module E = Mc.Explorer
module BQ = Structures.Blocking_queue

let check_benchmark ?(ords = Structures.Ords.default BQ.sites) program =
  E.explore
    ~on_feasible:(Cdsspec.Checker.hook BQ.spec)
    (program ords)

let has_spec_violation bugs =
  List.exists (function Mc.Bug.Spec_violation _ -> true | _ -> false) bugs

let has_builtin bugs =
  List.exists
    (function Mc.Bug.Data_race _ | Mc.Bug.Uninitialized_load _ -> true | _ -> false)
    bugs

let test_correct_queue_passes () =
  List.iter
    (fun (t : Structures.Benchmark.test) ->
      let r = check_benchmark t.program in
      Alcotest.(check (list string))
        (t.test_name ^ ": no bugs")
        []
        (List.map Mc.Bug.key r.bugs);
      Alcotest.(check bool) (t.test_name ^ ": feasible > 0") true (r.stats.feasible > 0))
    BQ.benchmark.tests

(* Weakening each single site must be detected (built-in check or spec
   violation) for this structure: the paper's injection experiment. *)
let test_injections_detected () =
  let weakenable = Structures.Ords.weakenable BQ.sites in
  Alcotest.(check int) "6 injectable sites" 6 (List.length weakenable);
  List.iter
    (fun (s : Structures.Ords.site) ->
      match Structures.Ords.weakened BQ.sites s.name with
      | None -> ()
      | Some ords ->
        let detected =
          List.exists
            (fun (t : Structures.Benchmark.test) ->
              let r = check_benchmark ~ords t.program in
              r.bugs <> [])
            BQ.benchmark.tests
        in
        Alcotest.(check bool) ("injection at " ^ s.name ^ " detected") true detected)
    weakenable

(* The Figure 1 scenario: with deq_load_next relaxed, the dequeuer can
   obtain a node whose contents it is not synchronized with — a data race
   on the data field and/or a FIFO violation. *)
let test_figure1_bug () =
  let ords = Structures.Ords.with_order BQ.sites "deq_load_next" C11.Memory_order.Relaxed in
  let test =
    List.find
      (fun (t : Structures.Benchmark.test) -> t.test_name = "1enq-1deq")
      BQ.benchmark.tests
  in
  let r = check_benchmark ~ords test.program in
  Alcotest.(check bool) "bug found" true (has_builtin r.bugs || has_spec_violation r.bugs)

(* Single-thread sanity: enq then deq must return the value; a deq on the
   empty queue returns -1 and is justified. *)
let test_single_thread () =
  let ords = Structures.Ords.default BQ.sites in
  let seen = ref [] in
  let main () =
    let q = BQ.create () in
    let empty1 = BQ.deq ords q in
    BQ.enq ords q 7;
    let v = BQ.deq ords q in
    seen := [ empty1; v ]
  in
  let r = E.explore ~on_feasible:(Cdsspec.Checker.hook BQ.spec) main in
  Alcotest.(check (list string)) "no bugs" [] (List.map Mc.Bug.key r.bugs);
  Alcotest.(check (list int)) "values" [ -1; 7 ] !seen

(* The justifying condition is what makes a spurious -1 after an
   hb-ordered enq illegal (paper section 2.1): build a fake "deq" whose
   ordering point is hb-after the enq's but which still claims empty. The
   checker must flag it as unjustified. *)
let test_justification_rejects_lazy_deq () =
  (* hand-written calls against the queue spec: an hb-ordered deq that
     still claims empty has no justifying subhistory *)
  let broken_main () =
    let cell = P.malloc ~init:0 1 in
    Cdsspec.Annotations.api_proc ~name:"enq" ~args:[ 3 ] (fun () ->
        P.store C11.Memory_order.Release cell 1;
        Cdsspec.Annotations.op_define ());
    ignore
      (Cdsspec.Annotations.api_fun ~name:"deq" ~args:[] (fun () ->
           ignore (P.load C11.Memory_order.Acquire cell);
           Cdsspec.Annotations.op_define ();
           -1))
  in
  let r = E.explore ~on_feasible:(Cdsspec.Checker.hook BQ.spec) broken_main in
  Alcotest.(check bool) "spurious empty rejected" true (has_spec_violation r.bugs)

let () =
  Alcotest.run "cdsspec"
    [
      ( "blocking-queue",
        [
          Alcotest.test_case "correct queue passes" `Quick test_correct_queue_passes;
          Alcotest.test_case "single thread" `Quick test_single_thread;
          Alcotest.test_case "figure 1 bug" `Quick test_figure1_bug;
          Alcotest.test_case "injections detected" `Quick test_injections_detected;
          Alcotest.test_case "justification" `Quick test_justification_rejects_lazy_deq;
        ] );
    ]
