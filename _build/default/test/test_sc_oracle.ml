(* Oracle test: on programs whose every operation is seq_cst, the
   engine's outcome set must equal that of a naive sequentially
   consistent reference interpreter (direct enumeration of interleavings
   over a flat memory). This pins the strongest end of the memory model
   to an independently implemented semantics. *)

module P = Mc.Program
module E = Mc.Explorer

type op =
  | SLoad of int  (* load loc, record observation *)
  | SStore of int * int
  | SCas of int * int * int  (* loc, expected, desired; record success bit *)
  | SFadd of int * int  (* loc, delta; record old value *)

type prog = op list list

let print_prog p =
  String.concat " || "
    (List.map
       (fun t ->
         String.concat ";"
           (List.map
              (function
                | SLoad l -> Printf.sprintf "r%d" l
                | SStore (l, v) -> Printf.sprintf "w%d=%d" l v
                | SCas (l, e, d) -> Printf.sprintf "cas%d(%d,%d)" l e d
                | SFadd (l, d) -> Printf.sprintf "fa%d+%d" l d)
              t))
       p)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun l -> SLoad l) (int_bound 1));
        (3, map2 (fun l v -> SStore (l, v + 1)) (int_bound 1) (int_bound 2));
        (1, map3 (fun l e d -> SCas (l, e, d + 1)) (int_bound 1) (int_bound 2) (int_bound 2));
        (1, map2 (fun l d -> SFadd (l, d + 1)) (int_bound 1) (int_bound 1));
      ])

let gen_prog =
  QCheck.Gen.(
    let* n = int_range 2 3 in
    list_repeat n (list_size (int_range 1 3) gen_op))

let prog_arb = QCheck.make ~print:print_prog gen_prog

(* ------------------ reference SC interpreter --------------------- *)

module Outcomes = Set.Make (struct
  type t = int list

  let compare = compare
end)

(* Enumerate all interleavings over a 2-cell memory; observations are
   appended per THREAD then concatenated in thread order, so the outcome
   tuple is schedule-independent. *)
let reference (prog : prog) =
  let nthreads = List.length prog in
  let outcomes = ref Outcomes.empty in
  let rec go mem pcs observations =
    let progressed = ref false in
    List.iteri
      (fun tid ops ->
        let pc = List.nth pcs tid in
        match List.nth_opt ops pc with
        | None -> ()
        | Some op ->
          progressed := true;
          let mem', obs =
            match op with
            | SLoad l -> (mem, [ (tid, mem.(l)) ])
            | SStore (l, v) ->
              let m = Array.copy mem in
              m.(l) <- v;
              (m, [])
            | SCas (l, e, d) ->
              if mem.(l) = e then begin
                let m = Array.copy mem in
                m.(l) <- d;
                (m, [ (tid, 1) ])
              end
              else (mem, [ (tid, 0) ])
            | SFadd (l, d) ->
              let m = Array.copy mem in
              m.(l) <- mem.(l) + d;
              (m, [ (tid, mem.(l)) ])
          in
          let pcs' = List.mapi (fun i pc -> if i = tid then pc + 1 else pc) pcs in
          go mem' pcs' (observations @ obs))
      prog;
    if not !progressed then begin
      (* all threads done: flatten observations by thread id *)
      let by_tid tid =
        List.filter_map (fun (t, v) -> if t = tid then Some v else None) observations
      in
      let outcome = List.concat (List.init nthreads by_tid) in
      outcomes := Outcomes.add outcome !outcomes
    end
  in
  go [| 0; 0 |] (List.map (fun _ -> 0) prog) [];
  !outcomes

(* --------------------- engine execution -------------------------- *)

let engine (prog : prog) =
  let outcomes = ref Outcomes.empty in
  let nthreads = List.length prog in
  let observations = Array.make nthreads [] in
  let program () =
    let base = P.malloc ~init:0 2 in
    Array.fill observations 0 nthreads [];
    let tids =
      List.mapi
        (fun i ops ->
          P.spawn (fun () ->
              List.iter
                (fun op ->
                  match op with
                  | SLoad l -> observations.(i) <- observations.(i) @ [ P.load Seq_cst (base + l) ]
                  | SStore (l, v) -> P.store Seq_cst (base + l) v
                  | SCas (l, e, d) ->
                    let ok = P.cas Seq_cst (base + l) ~expected:e ~desired:d in
                    observations.(i) <- observations.(i) @ [ (if ok then 1 else 0) ]
                  | SFadd (l, d) ->
                    observations.(i) <- observations.(i) @ [ P.fetch_add Seq_cst (base + l) d ])
                ops))
        prog
    in
    List.iter P.join tids
  in
  let r =
    E.explore
      ~on_feasible:(fun _ _ ->
        outcomes := Outcomes.add (List.concat (Array.to_list observations)) !outcomes;
        [])
      program
  in
  (!outcomes, r)

let prop_sc_matches_reference =
  QCheck.Test.make ~name:"seq_cst-only programs match the SC reference" ~count:80 prog_arb
    (fun prog ->
      let expected = reference prog in
      let got, r = engine prog in
      if not (Outcomes.equal expected got) then
        QCheck.Test.fail_reportf "expected %d outcomes, engine produced %d (feasible %d)"
          (Outcomes.cardinal expected) (Outcomes.cardinal got) r.stats.feasible
      else true)

let () =
  Alcotest.run "sc-oracle"
    [ ("oracle", [ QCheck_alcotest.to_alcotest prop_sc_matches_reference ]) ]
