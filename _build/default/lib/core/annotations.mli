(** Instrumentation calls placed inside data-structure implementations —
    the runtime half of the paper's annotation language. Each simply
    records a marker in the model checker's annotation stream; the
    checker interprets them after each feasible execution.

    Ordering-point annotations designate the calling thread's most recent
    atomic operation, exactly like placing a [/** @OPDefine */] comment
    right after an atomic operation in the C sources. *)

(** [api_call ?obj ~name ~args f] brackets [f] with method begin/end
    markers and records its return value. [obj] identifies the instance
    the call operates on (default 0); the checker checks each object
    independently against the specification, which the composability
    theorem (paper section 3.2) justifies. Nested [api_call]s are treated
    as internal calls: only the outermost is checked (section 4.3). *)
val api_call : ?obj:int -> name:string -> args:int list -> (unit -> int option) -> int option

(** [api_call] for int-returning methods. *)
val api_fun : ?obj:int -> name:string -> args:int list -> (unit -> int) -> int

(** [api_call] for void methods. *)
val api_proc : ?obj:int -> name:string -> args:int list -> (unit -> unit) -> unit

(** [@OPDefine: true] — the preceding atomic operation is an ordering
    point. Make it conditional with ordinary OCaml [if]. *)
val op_define : unit -> unit

(** [@OPClear: true] — discard the ordering points collected so far in
    the current method call. *)
val op_clear : unit -> unit

(** [@OPClearDefine: true] — [op_clear] followed by [op_define]; the
    idiom for "the ordering point is the operation from the last loop
    iteration". *)
val op_clear_define : unit -> unit

(** [@PotentialOP(label): true] — remember the preceding atomic operation
    under [label]. *)
val potential_op : string -> unit

(** [@OPCheck(label): true] — confirm the operations remembered under
    [label] as ordering points of the current method call. *)
val op_check : string -> unit
