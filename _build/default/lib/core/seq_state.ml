module Int_list = struct
  type t = int list

  let empty = []
  let is_empty t = t = []
  let length = List.length
  let push_back v t = t @ [ v ]
  let push_front v t = v :: t

  let front = function
    | [] -> None
    | x :: _ -> Some x

  let rec back = function
    | [] -> None
    | [ x ] -> Some x
    | _ :: tl -> back tl

  let pop_front = function
    | [] -> []
    | _ :: tl -> tl

  let rec pop_back = function
    | [] | [ _ ] -> []
    | x :: tl -> x :: pop_back tl

  let mem = List.mem

  let rec remove v = function
    | [] -> []
    | x :: tl -> if x = v then tl else x :: remove v tl

  let to_list t = t
  let of_list t = t

  let pp ppf t =
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Format.pp_print_int)
      t
end

module Int_set = struct
  module S = Set.Make (Int)

  type t = S.t

  let empty = S.empty
  let add = S.add
  let remove = S.remove
  let mem = S.mem
  let cardinal = S.cardinal
  let to_list = S.elements
end

module Int_map = struct
  module M = Map.Make (Int)

  type t = int M.t

  let empty = M.empty
  let put ~key ~value t = M.add key value t
  let get ~key t = M.find_opt key t
  let get_or default ~key t = match M.find_opt key t with Some v -> v | None -> default
  let remove ~key t = M.remove key t
  let cardinal = M.cardinal
  let bindings = M.bindings
end
