(** CDSSpec specifications: the OCaml rendering of the paper's annotation
    language (Figure 5). A specification pairs an equivalent sequential
    data structure (its state type ['st] and per-method side effects)
    with assertions, justifying conditions for non-deterministic
    behaviours, and admissibility rules.

    Correspondence with the paper's annotations:
    - [@DeclareState]/[@Initial] — the ['st] type and [initial];
      [@Copy]/[@Clear] are unnecessary because states are immutable.
    - [@SideEffect] — [side_effect], which also computes [S_RET].
    - [@PreCondition]/[@PostCondition] — [precondition]/[postcondition],
      evaluated when replaying valid sequential histories.
    - [@JustifyingPrecondition]/[@JustifyingPostcondition] —
      evaluated when replaying justifying subhistories; these predicates
      may consult the CONCURRENT set.
    - [@Admit: m1 <-> m2 (guard)] — an {!admissibility_rule}. *)

(** Everything a predicate may inspect about the concurrent call being
    checked: the call itself (C_RET, arguments) and its CONCURRENT set. *)
type info = {
  call : Call.t;
  concurrent : Call.t list;
}

(** Specification of one API method against sequential state ['st].
    [side_effect] returns the updated state and the sequential return
    value [S_RET] (None for void methods). Omitted predicates default to
    [true]; an omitted side effect leaves the state unchanged. *)
type 'st method_spec = {
  side_effect : ('st -> info -> 'st * int option) option;
  precondition : ('st -> info -> bool) option;
  postcondition : ('st -> info -> s_ret:int option -> bool) option;
  justifying_precondition : ('st -> info -> bool) option;
  justifying_postcondition : ('st -> info -> s_ret:int option -> bool) option;
}

val default_method : 'st method_spec

(** [@Admit: first <-> second (guard)]: when an unordered pair of calls
    matches [(first, second)] (in either orientation; the call bound to
    [first] is passed first) and [requires_order] returns true, the
    execution is inadmissible. Absent any matching rule a pair need not
    be ordered. *)
type admissibility_rule = {
  first : string;
  second : string;
  requires_order : Call.t -> Call.t -> bool;
}

(** Static accounting used by the paper's section 6.2 expressiveness
    table; filled in by hand per benchmark, mirroring counting lines of
    [/** @... */] annotations in the C sources. *)
type accounting = {
  spec_lines : int;  (** total lines of specification *)
  ordering_point_lines : int;  (** lines that are ordering-point annotations *)
  admissibility_lines : int;
  api_methods : int;
}

type 'st t = {
  name : string;
  initial : unit -> 'st;
  methods : (string * 'st method_spec) list;
  admissibility : admissibility_rule list;
  accounting : accounting;
}

(** Existential wrapper so heterogeneous specifications can share a
    checker. *)
type packed = Packed : 'st t -> packed

val method_spec : 'st t -> string -> 'st method_spec

(** True when the method declares a justifying pre- or postcondition,
    i.e. has specified non-deterministic behaviours that must be
    justified. *)
val needs_justification : 'st method_spec -> bool
