module P = Mc.Program

let api_call ?(obj = 0) ~name ~args f =
  P.annotate (P.Method_begin { name; args; obj });
  let ret = f () in
  P.annotate (P.Method_end { ret });
  ret

let api_fun ?obj ~name ~args f =
  match api_call ?obj ~name ~args (fun () -> Some (f ())) with
  | Some v -> v
  | None -> assert false

let api_proc ?obj ~name ~args f = ignore (api_call ?obj ~name ~args (fun () -> f (); None))

let op_define () = P.annotate P.Op_define

let op_clear () = P.annotate P.Op_clear

let op_clear_define () = P.annotate P.Op_clear_define

let potential_op label = P.annotate (P.Potential_op label)

let op_check label = P.annotate (P.Op_check label)
