lib/core/seq_state.ml: Format Int List Map Set
