lib/core/history.ml: C11 Call Hashtbl List Mc
