lib/core/history.mli: C11 Call Mc
