lib/core/spec.mli: Call
