lib/core/spec.ml: Call List
