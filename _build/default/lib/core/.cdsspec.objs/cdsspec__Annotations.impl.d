lib/core/annotations.ml: Mc
