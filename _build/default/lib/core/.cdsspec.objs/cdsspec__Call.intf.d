lib/core/call.mli: Format
