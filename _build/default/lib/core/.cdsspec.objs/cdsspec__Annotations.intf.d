lib/core/annotations.mli:
