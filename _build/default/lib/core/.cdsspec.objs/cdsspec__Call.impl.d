lib/core/call.ml: Format List Printf
