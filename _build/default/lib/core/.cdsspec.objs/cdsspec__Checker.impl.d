lib/core/checker.ml: C11 Call Fmt Format Hashtbl History List Mc Spec
