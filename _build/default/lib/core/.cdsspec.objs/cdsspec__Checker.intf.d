lib/core/checker.mli: C11 Format Mc Spec
