lib/core/seq_state.mli: Format
