(** A data-structure method call extracted from an execution's
    instrumentation stream: its identity, arguments, return value and the
    ordering points that position it in the method-call ordering
    relation. *)

type t = {
  id : int;  (** dense index among the calls of one execution *)
  tid : int;
  obj : int;  (** data-structure instance the call operates on *)
  name : string;
  args : int list;
  ret : int option;
  ordering_points : int list;  (** action ids, in annotation order *)
  begin_index : int;  (** actions committed when the call began *)
  end_index : int;  (** actions committed when the call returned *)
}

(** Argument access with a default, for guard expressions. *)
val arg : t -> int -> int

(** Return value, or [default] when the method returned nothing. *)
val ret_or : int -> t -> int

val pp : Format.formatter -> t -> unit
