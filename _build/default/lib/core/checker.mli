(** The CDSSpec checking pass run on every feasible execution (paper
    section 5.2): extract the method calls and the ordering relation,
    check admissibility, replay every valid sequential history against
    the equivalent sequential data structure, and require every
    non-deterministic behaviour to be justified by some justifying
    subhistory (or by the CONCURRENT set, which the justifying predicates
    may consult). *)

type config = {
  max_histories : int;
      (** truncate exhaustive enumeration of sequential histories *)
  sample_histories : (int * int) option;
      (** [(count, seed)]: randomly sample instead of exhausting — the
          checker's "check a user-customized number of histories" option *)
  max_prefixes : int;  (** cap on justifying subhistories per call *)
}

val default_config : config

type violation = {
  kind : [ `Admissibility | `Assertion | `Unjustified | `Cyclic_ordering ];
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** Check one execution; the empty list means the specification holds. *)
val check_execution :
  ?config:config ->
  Spec.packed ->
  C11.Execution.t ->
  Mc.Scheduler.annot list ->
  violation list

(** [hook spec] packages {!check_execution} as an [Explorer.explore]
    [on_feasible] callback, mapping violations to
    {!Mc.Bug.Spec_violation}s. *)
val hook :
  ?config:config -> Spec.packed -> C11.Execution.t -> Mc.Scheduler.annot list -> Mc.Bug.t list
