type t = {
  id : int;
  tid : int;
  obj : int;
  name : string;
  args : int list;
  ret : int option;
  ordering_points : int list;
  begin_index : int;
  end_index : int;
}

let arg c i = match List.nth_opt c.args i with Some v -> v | None -> 0

let ret_or default c = match c.ret with Some v -> v | None -> default

let pp ppf c =
  Format.fprintf ppf "%s(%a)%s [T%d]" c.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Format.pp_print_int)
    c.args
    (match c.ret with Some r -> Printf.sprintf " = %d" r | None -> "")
    c.tid
