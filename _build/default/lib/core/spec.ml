type info = {
  call : Call.t;
  concurrent : Call.t list;
}

type 'st method_spec = {
  side_effect : ('st -> info -> 'st * int option) option;
  precondition : ('st -> info -> bool) option;
  postcondition : ('st -> info -> s_ret:int option -> bool) option;
  justifying_precondition : ('st -> info -> bool) option;
  justifying_postcondition : ('st -> info -> s_ret:int option -> bool) option;
}

let default_method =
  {
    side_effect = None;
    precondition = None;
    postcondition = None;
    justifying_precondition = None;
    justifying_postcondition = None;
  }

type admissibility_rule = {
  first : string;
  second : string;
  requires_order : Call.t -> Call.t -> bool;
}

type accounting = {
  spec_lines : int;
  ordering_point_lines : int;
  admissibility_lines : int;
  api_methods : int;
}

type 'st t = {
  name : string;
  initial : unit -> 'st;
  methods : (string * 'st method_spec) list;
  admissibility : admissibility_rule list;
  accounting : accounting;
}

type packed = Packed : 'st t -> packed

let method_spec t name =
  match List.assoc_opt name t.methods with
  | Some m -> m
  | None -> default_method

let needs_justification m =
  match m.justifying_precondition, m.justifying_postcondition with
  | None, None -> false
  | Some _, _ | _, Some _ -> true
