(** Pre-defined equivalent-sequential-structure state types (the paper's
    [IntList], set and hashmap "useful pre-defined types", section 4.1).
    All are immutable, so the checker's Copy/Clear obligations are
    trivially satisfied by sharing. *)

module Int_list : sig
  (** An ordered list of ints — the sequential FIFO/deque state. *)
  type t

  val empty : t
  val is_empty : t -> bool
  val length : t -> int
  val push_back : int -> t -> t
  val push_front : int -> t -> t

  (** [front t] is [None] on the empty list. *)
  val front : t -> int option

  val back : t -> int option
  val pop_front : t -> t
  val pop_back : t -> t
  val mem : int -> t -> bool

  (** Remove the first occurrence, if any. *)
  val remove : int -> t -> t

  val to_list : t -> int list
  val of_list : int list -> t
  val pp : Format.formatter -> t -> unit
end

module Int_set : sig
  type t

  val empty : t
  val add : int -> t -> t
  val remove : int -> t -> t
  val mem : int -> t -> bool
  val cardinal : t -> int
  val to_list : t -> int list
end

module Int_map : sig
  (** The sequential hashmap state: int keys to int values. *)
  type t

  val empty : t
  val put : key:int -> value:int -> t -> t
  val get : key:int -> t -> int option

  (** [get_or default] mirrors hashtables that return 0/NULL on a miss. *)
  val get_or : int -> key:int -> t -> int

  val remove : key:int -> t -> t
  val cardinal : t -> int
  val bindings : t -> (int * int) list
end
