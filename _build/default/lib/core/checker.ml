type config = {
  max_histories : int;
  sample_histories : (int * int) option;
  max_prefixes : int;
}

let default_config = { max_histories = 5000; sample_histories = None; max_prefixes = 2000 }

type violation = {
  kind : [ `Admissibility | `Assertion | `Unjustified | `Cyclic_ordering ];
  message : string;
}

let pp_violation ppf v =
  let kind =
    match v.kind with
    | `Admissibility -> "admissibility"
    | `Assertion -> "assertion"
    | `Unjustified -> "unjustified"
    | `Cyclic_ordering -> "cyclic-ordering"
  in
  Format.fprintf ppf "%s: %s" kind v.message

let str = Format.asprintf

(* Replay one sequential history: thread the sequential state through the
   calls, checking pre/postconditions. Returns the first failure. *)
let replay_history (type st) (spec : st Spec.t) info_of (history : Call.t list) =
  let rec go state = function
    | [] -> None
    | (call : Call.t) :: rest ->
      let m = Spec.method_spec spec call.name in
      let info = info_of call in
      let pre_ok = match m.precondition with Some p -> p state info | None -> true in
      if not pre_ok then Some (call, "precondition failed")
      else begin
        let state, s_ret =
          match m.side_effect with
          | Some f -> f state info
          | None -> (state, None)
        in
        let post_ok = match m.postcondition with Some p -> p state info ~s_ret | None -> true in
        if not post_ok then
          Some
            ( call,
              str "postcondition failed (C_RET=%s, S_RET=%s)"
                (match call.ret with Some r -> string_of_int r | None -> "-")
                (match s_ret with Some r -> string_of_int r | None -> "-") )
        else go state rest
      end
  in
  go (spec.initial ()) history

(* Replay one justifying subhistory of [m] (m is its last element): the
   prefix must itself satisfy the specification, and m's justifying
   pre/postconditions must hold around m's own side effect (Def. 4). *)
let replay_justifying (type st) (spec : st Spec.t) info_of (subhistory : Call.t list) =
  let rec go state = function
    | [] -> false
    | [ (m : Call.t) ] ->
      let ms = Spec.method_spec spec m.name in
      let info = info_of m in
      let pre_ok =
        match ms.justifying_precondition with Some p -> p state info | None -> true
      in
      pre_ok
      &&
      let state, s_ret =
        match ms.side_effect with Some f -> f state info | None -> (state, None)
      in
      (match ms.justifying_postcondition with Some p -> p state info ~s_ret | None -> true)
    | (call : Call.t) :: rest ->
      let m = Spec.method_spec spec call.name in
      let info = info_of call in
      let pre_ok = match m.precondition with Some p -> p state info | None -> true in
      pre_ok
      &&
      let state, s_ret =
        match m.side_effect with Some f -> f state info | None -> (state, None)
      in
      (match m.postcondition with Some p -> p state info ~s_ret | None -> true) && go state rest
  in
  go (spec.initial ()) subhistory

let check_admissibility (type st) (spec : st Spec.t) relation calls =
  let violations = ref [] in
  let pairs = History.unordered_pairs relation calls in
  List.iter
    (fun ((a : Call.t), (b : Call.t)) ->
      List.iter
        (fun (rule : Spec.admissibility_rule) ->
          let check m1 m2 =
            if m1.Call.name = rule.first && m2.Call.name = rule.second && rule.requires_order m1 m2
            then
              violations :=
                {
                  kind = `Admissibility;
                  message =
                    str "calls %a and %a must be ordered but are not" Call.pp m1 Call.pp m2;
                }
                :: !violations
          in
          check a b;
          if a.name <> b.name || rule.first <> rule.second then check b a)
        spec.admissibility)
    pairs;
  List.rev !violations

(* Check the calls of ONE object instance (ids renumbered densely). *)
let check_object (type st) ~config (spec : st Spec.t) exec calls =
  if calls = [] then []
  else begin
    let relation = History.ordering_relation exec calls in
    if not (C11.Relation.is_acyclic relation) then
      [
        {
          kind = `Cyclic_ordering;
          message = "ordering points induce a cyclic method-call relation";
        };
      ]
    else begin
      let info_of =
        let cache = Hashtbl.create 8 in
        fun (c : Call.t) ->
          match Hashtbl.find_opt cache c.id with
          | Some i -> i
          | None ->
            let i = { Spec.call = c; concurrent = History.concurrent relation calls c } in
            Hashtbl.add cache c.id i;
            i
      in
      let admissibility = check_admissibility spec relation calls in
      if admissibility <> [] then admissibility
      else begin
        (* Def. 6: the specification must hold on every valid sequential
           history. *)
        let histories, _truncated =
          History.histories ~max:config.max_histories ?sample:config.sample_histories relation
            calls
        in
        let history_violation =
          List.find_map
            (fun history ->
              match replay_history spec info_of history with
              | None -> None
              | Some (call, why) ->
                Some
                  {
                    kind = `Assertion;
                    message =
                      str "%s in history %a for call %a" why
                        Fmt.(list ~sep:(any " -> ") Call.pp)
                        history Call.pp call;
                  })
            histories
        in
        match history_violation with
        | Some v -> [ v ]
        | None ->
          (* Justify non-deterministic behaviours: some justifying
             subhistory (with the CONCURRENT set available to the
             predicates) must accept each call (Defs. 3-4). *)
          let unjustified =
            List.filter_map
              (fun (m : Call.t) ->
                let ms = Spec.method_spec spec m.name in
                if not (Spec.needs_justification ms) then None
                else begin
                  let subs =
                    History.justifying_subhistories ~max:config.max_prefixes relation calls m
                  in
                  if List.exists (replay_justifying spec info_of) subs then None
                  else
                    Some
                      {
                        kind = `Unjustified;
                        message =
                          str "call %a has no justifying subhistory for its behaviour" Call.pp m;
                      }
                end)
              calls
          in
          unjustified
      end
    end
  end

(* Composability (paper section 3.2): each object instance is checked
   against the specification independently. *)
let check_spec (type st) ~config (spec : st Spec.t) exec annots =
  let calls = History.calls_of_annots exec annots in
  let objs = List.sort_uniq compare (List.map (fun (c : Call.t) -> c.obj) calls) in
  List.concat_map
    (fun obj ->
      let group = List.filter (fun (c : Call.t) -> c.obj = obj) calls in
      let group = List.mapi (fun i (c : Call.t) -> { c with id = i }) group in
      check_object ~config spec exec group)
    objs

let check_execution ?(config = default_config) (Spec.Packed spec) exec annots =
  check_spec ~config spec exec annots

let hook ?config packed exec annots =
  List.map
    (fun v ->
      let kind =
        match v.kind with
        | `Admissibility -> "admissibility"
        | `Assertion -> "assertion"
        | `Unjustified -> "unjustified"
        | `Cyclic_ordering -> "cyclic-ordering"
      in
      Mc.Bug.Spec_violation { kind; message = v.message })
    (check_execution ?config packed exec annots)
