(** Bug reports produced during exploration. The first three are the
    model checker's built-in checks (what the paper's Figure 8 calls
    "Built-in"); [Assertion_failure] backs the DSL's [check]; the
    specification checker layers its own report kinds on top via
    [Spec_violation]. *)

type t =
  | Data_race of { first : C11.Action.t; second : C11.Action.t }
  | Uninitialized_load of C11.Action.t
  | Deadlock of { blocked_tids : int list }
  | Assertion_failure of { tid : int; message : string }
  | Spec_violation of { kind : string; message : string }

(** Stable one-line description, independent of action ids, used to
    deduplicate reports across executions. *)
val key : t -> string

val pp : Format.formatter -> t -> unit
