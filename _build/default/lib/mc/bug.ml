type t =
  | Data_race of { first : C11.Action.t; second : C11.Action.t }
  | Uninitialized_load of C11.Action.t
  | Deadlock of { blocked_tids : int list }
  | Assertion_failure of { tid : int; message : string }
  | Spec_violation of { kind : string; message : string }

let site_or a = match a.C11.Action.site with Some s -> s | None -> Printf.sprintf "T%d" a.tid

let key = function
  | Data_race { first; second } -> Printf.sprintf "race:%s/%s@%d" (site_or first) (site_or second) first.loc
  | Uninitialized_load a -> Printf.sprintf "uninit:%s@%d" (site_or a) a.loc
  | Deadlock { blocked_tids } ->
    Printf.sprintf "deadlock:%s" (String.concat "," (List.map string_of_int blocked_tids))
  | Assertion_failure { message; _ } -> Printf.sprintf "assert:%s" message
  | Spec_violation { kind; message } -> Printf.sprintf "spec:%s:%s" kind message

let pp ppf = function
  | Data_race { first; second } ->
    Format.fprintf ppf "data race between %a and %a" C11.Action.pp first C11.Action.pp second
  | Uninitialized_load a -> Format.fprintf ppf "uninitialized load %a" C11.Action.pp a
  | Deadlock { blocked_tids } ->
    Format.fprintf ppf "deadlock/livelock: threads %a blocked"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Format.pp_print_int)
      blocked_tids
  | Assertion_failure { tid; message } -> Format.fprintf ppf "assertion failed in T%d: %s" tid message
  | Spec_violation { kind; message } -> Format.fprintf ppf "specification violation (%s): %s" kind message
