(** Exhaustive stateless exploration: depth-first search over the choice
    tree (scheduling choices × reads-from choices), replaying the program
    from scratch for each execution, as CDSChecker does. *)

type config = {
  scheduler : Scheduler.config;
  max_executions : int option;  (** stop after this many runs; None = exhaust *)
  progress : (int -> unit) option;  (** called with the run count periodically *)
}

val default_config : config

type stats = {
  explored : int;  (** total runs, feasible + pruned *)
  feasible : int;  (** complete, consistent executions *)
  pruned_loop_bound : int;
  pruned_max_actions : int;
  pruned_sleep_set : int;
  buggy : int;  (** feasible executions on which at least one bug fired *)
  truncated : bool;  (** true when max_executions stopped the search *)
  time : float;  (** wall-clock seconds *)
}

type result = {
  stats : stats;
  bugs : Bug.t list;  (** deduplicated by {!Bug.key}, discovery order *)
  first_buggy_trace : string option;
      (** pretty-printed action log of the first buggy execution *)
  first_buggy_exec : C11.Execution.t option;
      (** the graph itself, e.g. for {!C11.Dot} rendering *)
}

(** [explore ~config ?on_feasible main] enumerates the behaviours of
    [main]. [on_feasible] runs on every complete bug-free execution (the
    specification checker hooks in here) and returns any violations it
    finds, which are recorded like built-in bugs. *)
val explore :
  ?config:config ->
  ?on_feasible:(C11.Execution.t -> Scheduler.annot list -> Bug.t list) ->
  (unit -> unit) ->
  result
