lib/mc/program.mli: C11 Effect
