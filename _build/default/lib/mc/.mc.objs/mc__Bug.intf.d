lib/mc/bug.mli: C11 Format
