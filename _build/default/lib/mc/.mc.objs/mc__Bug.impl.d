lib/mc/bug.ml: C11 Format List Printf String
