lib/mc/scheduler.mli: Bug C11 Program
