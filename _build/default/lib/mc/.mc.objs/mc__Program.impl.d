lib/mc/program.ml: C11 Effect
