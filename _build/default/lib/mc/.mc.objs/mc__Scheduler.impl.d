lib/mc/scheduler.ml: Array Bug C11 Effect Hashtbl List Printexc Printf Program
