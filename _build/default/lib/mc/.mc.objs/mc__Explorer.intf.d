lib/mc/explorer.mli: Bug C11 Scheduler
