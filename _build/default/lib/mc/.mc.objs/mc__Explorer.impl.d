lib/mc/explorer.ml: Array Bug C11 Fmt Hashtbl List Scheduler Unix
