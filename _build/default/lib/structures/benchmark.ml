type test = {
  test_name : string;
  program : Ords.t -> unit -> unit;
}

type t = {
  name : string;
  spec : Cdsspec.Spec.packed;
  sites : Ords.site list;
  tests : test list;
  scheduler : Mc.Scheduler.config;
}

let make ?(scheduler = Mc.Scheduler.default_config) ~name ~spec ~sites tests =
  {
    name;
    spec;
    sites;
    tests = List.map (fun (test_name, program) -> { test_name; program }) tests;
    scheduler;
  }
