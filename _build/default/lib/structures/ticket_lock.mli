(** Ticket lock [42] (ported for AutoMO). The ticket grab is an
    intentionally relaxed fetch_add — synchronization is established on
    the [now_serving] variable instead (paper section 6.1). *)

type t

val create : unit -> t
val lock : Ords.t -> t -> unit
val unlock : Ords.t -> t -> unit

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t

(** The mutual-exclusion specification shared by all lock benchmarks:
    boolean held state, [lock] requires free, [unlock] requires held.
    [name] labels the spec; [lock_names]/[unlock_names] give the API
    method names. *)
val mutex_spec :
  name:string ->
  ?accounting:Cdsspec.Spec.accounting ->
  lock_names:string list ->
  unlock_names:string list ->
  unit ->
  Cdsspec.Spec.packed
