(** Harris–Michael lock-free ordered linked-list set. Logical deletion
    marks a bit encoded in the next pointer (stored as [2*ptr + mark]);
    traversals help unlink marked nodes. Keys must be positive and small.

    The specification maps it to a sequential set: add/remove are
    deterministic (their CAS chain orders same-key operations);
    [contains] is non-deterministic and must be justified by a prefix on
    which the answer matches, or by a concurrent add/remove of that key. *)

type t

val create : unit -> t

(** 1 if inserted, 0 if the key was already present. *)
val add : Ords.t -> t -> int -> int

(** 1 if removed, 0 if absent. *)
val remove : Ords.t -> t -> int -> int

(** 1 if present, 0 otherwise. *)
val contains : Ords.t -> t -> int -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
