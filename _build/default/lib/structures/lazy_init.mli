(** Double-checked locking lazy initialization — the canonical C++11
    idiom whose pre-C++11 form was famously broken. A fast-path acquire
    load of the pointer; on miss, take a spinlock, re-check, construct,
    and publish with release. [get] returns the payload of the singleton
    object; every caller must observe the same fully initialized value. *)

type t

(** [create ~payload] — the value the (single) construction writes. *)
val create : payload:int -> t

val get : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
