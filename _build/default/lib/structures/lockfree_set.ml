module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Is = Cdsspec.Seq_state.Int_set
open C11.Memory_order

(* Node layout: [next_enc (atomic); key (non-atomic)]. The next field
   encodes mark and pointer as [2*ptr + mark]; pointer 0 is the list
   end. The head sentinel holds no key. *)
let f_next node = node
let f_key node = node + 1

let enc ?(mark = 0) ptr = (2 * ptr) + mark
let ptr_of e = e / 2
let mark_of e = e land 1

type t = { head : P.loc }

let sites =
  [
    Ords.site "find_load_next" For_load Acquire;
    Ords.site "find_cas_unlink" For_rmw Acq_rel;
    Ords.site "add_cas_link" For_rmw Release;
    Ords.site "remove_cas_mark" For_rmw Acq_rel;
    Ords.site "remove_cas_unlink" For_rmw Acq_rel;
    Ords.site "contains_load_next" For_load Acquire;
  ]

let new_node key next_enc =
  let n = P.malloc 2 in
  P.na_store (f_key n) key;
  P.store Relaxed (f_next n) next_enc;
  n

let create () =
  let head = new_node 0 (enc 0) in
  { head }

let o = Ords.get

(* Find the first unmarked node with key >= [key]; returns (prev, curr)
   where curr = 0 at the end of the list. Helps unlink marked nodes,
   restarting when a CAS loses. Every next-field load refreshes the
   call's ordering point. *)
let rec find ords t key =
  let rec walk prev curr_enc =
    let curr = ptr_of curr_enc in
    if curr = 0 then Some (prev, 0)
    else begin
      let succ_enc = P.load ~site:"find_load_next" (o ords "find_load_next") (f_next curr) in
      A.op_clear_define ();
      if mark_of succ_enc = 1 then begin
        (* help unlink the logically deleted node *)
        if
          P.cas ~site:"find_cas_unlink" (o ords "find_cas_unlink") (f_next prev)
            ~expected:(enc curr)
            ~desired:(enc (ptr_of succ_enc))
        then walk prev (enc (ptr_of succ_enc))
        else None (* lost a race: restart the traversal *)
      end
      else begin
        let ckey = P.na_load (f_key curr) in
        if ckey >= key then Some (prev, curr) else walk curr succ_enc
      end
    end
  in
  let first = P.load ~site:"find_load_next" (o ords "find_load_next") (f_next t.head) in
  A.op_clear_define ();
  match walk t.head first with
  | Some result -> result
  | None -> find ords t key

let add ords t key =
  A.api_fun ~obj:t.head ~name:"add" ~args:[ key ] (fun () ->
      let rec attempt () =
        let prev, curr = find ords t key in
        if curr <> 0 && P.na_load (f_key curr) = key then 0
        else begin
          let n = new_node key (enc curr) in
          if
            P.cas ~site:"add_cas_link" (o ords "add_cas_link") (f_next prev) ~expected:(enc curr)
              ~desired:(enc n)
          then begin
            A.op_clear_define ();
            1
          end
          else attempt ()
        end
      in
      attempt ())

let remove ords t key =
  A.api_fun ~obj:t.head ~name:"remove" ~args:[ key ] (fun () ->
      let rec attempt () =
        let prev, curr = find ords t key in
        if curr = 0 || P.na_load (f_key curr) <> key then 0
        else begin
          let succ_enc = P.load ~site:"find_load_next" (o ords "find_load_next") (f_next curr) in
          if mark_of succ_enc = 1 then attempt ()
          else if
            P.cas ~site:"remove_cas_mark" (o ords "remove_cas_mark") (f_next curr)
              ~expected:succ_enc
              ~desired:(succ_enc lor 1)
          then begin
            A.op_clear_define ();
            (* best-effort physical unlink; find() helps if this loses *)
            ignore
              (P.cas ~site:"remove_cas_unlink" (o ords "remove_cas_unlink") (f_next prev)
                 ~expected:(enc curr)
                 ~desired:(enc (ptr_of succ_enc)));
            1
          end
          else attempt ()
        end
      in
      attempt ())

let contains ords t key =
  A.api_fun ~obj:t.head ~name:"contains" ~args:[ key ] (fun () ->
      let rec walk node =
        let next_enc = P.load ~site:"contains_load_next" (o ords "contains_load_next") (f_next node) in
        A.op_clear_define ();
        let curr = ptr_of next_enc in
        if curr = 0 then 0
        else begin
          let ckey = P.na_load (f_key curr) in
          if ckey < key then walk curr
          else if ckey = key then begin
            (* present iff not logically deleted *)
            let e = P.load ~site:"contains_load_next" (o ords "contains_load_next") (f_next curr) in
            A.op_clear_define ();
            if mark_of e = 0 then 1 else 0
          end
          else 0
        end
      in
      walk t.head)

let spec =
  let key_of (info : Spec.info) = Cdsspec.Call.arg info.call 0 in
  let add_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let k = key_of info in
            if Is.mem k st then (st, Some 0) else (Is.add k st, Some 1));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret -> Some (Cdsspec.Call.ret_or 0 info.call) = s_ret);
    }
  in
  let remove_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let k = key_of info in
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            if Is.mem k st && c_ret = 1 then (Is.remove k st, Some 1)
            else (st, Some (if Is.mem k st then 1 else 0)));
      (* a successful remove is deterministic; "absent" may be spurious
         (the adding call was merely concurrent) and needs justification *)
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            c_ret = 0 || s_ret = Some 1);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            if c_ret = 1 then true
            else
              s_ret = Some 0
              || List.exists
                   (fun (c : Cdsspec.Call.t) ->
                     c.name = "remove" && Cdsspec.Call.arg c 0 = key_of info && c.ret = Some 1)
                   info.concurrent);
    }
  in
  let contains_spec =
    {
      Spec.default_method with
      side_effect =
        Some (fun st (info : Spec.info) -> (st, Some (if Is.mem (key_of info) st then 1 else 0)));
      postcondition = Some (fun _st _info ~s_ret:_ -> true);
      (* an answer is justified by a prefix on which it holds, or by a
         concurrent add/remove of the same key *)
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            Some c_ret = s_ret
            || List.exists
                 (fun (c : Cdsspec.Call.t) ->
                   (c.name = "add" || c.name = "remove")
                   && Cdsspec.Call.arg c 0 = key_of info)
                 info.concurrent);
    }
  in
  Spec.Packed
    {
      name = "lockfree-set";
      initial = (fun () -> Is.empty);
      methods = [ ("add", add_spec); ("remove", remove_spec); ("contains", contains_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 14; ordering_point_lines = 4; admissibility_lines = 0; api_methods = 3 };
    }

let test_add_contains ords () =
  let t = create () in
  let t1 = P.spawn (fun () -> ignore (add ords t 1)) in
  let t2 = P.spawn (fun () -> ignore (contains ords t 1)) in
  P.join t1;
  P.join t2

let test_racing_adds ords () =
  let t = create () in
  let t1 = P.spawn (fun () -> ignore (add ords t 1)) in
  let t2 = P.spawn (fun () -> ignore (add ords t 1)) in
  P.join t1;
  P.join t2

let test_add_remove ords () =
  let t = create () in
  ignore (add ords t 1);
  let t1 = P.spawn (fun () -> ignore (remove ords t 1)) in
  let t2 = P.spawn (fun () -> ignore (add ords t 2)) in
  P.join t1;
  P.join t2;
  ignore (contains ords t 1)

let benchmark =
  Benchmark.make ~name:"Lockfree Set" ~spec ~sites
    [
      ("add-contains", test_add_contains);
      ("racing-adds", test_racing_adds);
      ("add-remove", test_add_remove);
    ]
