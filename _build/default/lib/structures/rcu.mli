(** User-level RCU in the style of the AutoMO benchmark: a writer
    publishes a freshly initialized copy of the data through an atomic
    pointer; readers dereference the pointer and read the (non-atomic)
    fields. Correctness hinges on the release/acquire pair on the
    pointer — weakening it makes the field reads race with
    initialization, which the built-in checks catch (this is why the
    paper's Figure 8 reports RCU's injections as all caught by built-in
    checks). *)

type t

val create : unit -> t

(** [write ords t v] publishes a new version whose two fields are both
    [v]. Writers must be externally serialized (single updater), which
    the spec states as an admissibility rule. *)
val write : Ords.t -> t -> int -> unit

(** [read] returns the version it observed; it also checks the snapshot
    is internally consistent (both fields equal). *)
val read : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
