module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

type t = { count : P.loc; sense : P.loc; participants : int }

let sites =
  [
    Ords.site "await_fs_count" For_rmw Acq_rel;
    Ords.site "await_store_sense" For_store Release;
    Ords.site "await_spin_sense" For_load Acquire;
  ]

let create participants =
  let count = P.malloc 1 in
  let sense = P.malloc 1 in
  P.store Relaxed count participants;
  P.store Relaxed sense 0;
  { count; sense; participants }

let o = Ords.get

let await ords b =
  A.api_fun ~obj:b.count ~name:"await" ~args:[] (fun () ->
      let prior = P.fetch_add ~site:"await_fs_count" (o ords "await_fs_count") b.count (-1) in
      A.op_define ();
      if prior = 1 then
        (* last arrival: release everyone *)
        P.store ~site:"await_store_sense" (o ords "await_store_sense") b.sense 1
      else begin
        let rec spin () =
          if P.load ~site:"await_spin_sense" (o ords "await_spin_sense") b.sense = 0 then spin ()
        in
        spin ()
      end;
      prior)

let spec_for participants =
  let await_spec =
    {
      Spec.default_method with
      (* the k-th arrival (in the ordering relation, which follows the
         acq_rel countdown chain) returns participants - k + 1 *)
      side_effect = Some (fun arrived _ -> (arrived + 1, Some (participants - arrived)));
      postcondition =
        Some
          (fun _ (info : Spec.info) ~s_ret ->
            Some (Cdsspec.Call.ret_or 0 info.call) = s_ret);
    }
  in
  Spec.Packed
    {
      name = "barrier";
      initial = (fun () -> 0);
      methods = [ ("await", await_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 4; ordering_point_lines = 1; admissibility_lines = 0; api_methods = 1 };
    }

let spec = spec_for 2

(* Each participant publishes data before the barrier and reads the
   other's after: the barrier's synchronization makes the non-atomic
   accesses race-free, so weakening any site surfaces as a data race. *)
let test_two_phases ords () =
  let b = create 2 in
  let d0 = P.malloc ~init:0 1 in
  let d1 = P.malloc ~init:0 1 in
  let worker mine theirs v () =
    P.na_store mine v;
    ignore (await ords b);
    ignore (P.na_load theirs)
  in
  let t0 = P.spawn (worker d0 d1 1) in
  let t1 = P.spawn (worker d1 d0 2) in
  P.join t0;
  P.join t1

let test_positions ords () =
  let b = create 2 in
  let t0 = P.spawn (fun () -> ignore (await ords b)) in
  let t1 = P.spawn (fun () -> ignore (await ords b)) in
  P.join t0;
  P.join t1

let benchmark =
  Benchmark.make ~name:"Barrier" ~spec ~sites
    [ ("two-phases", test_two_phases); ("positions", test_positions) ]
