module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

(* Two data words guarded by the sequence number: a torn snapshot (word_a
   from one write, word_b from another) is observable, which is what the
   sequence validation protocol must prevent. A write [v] stores [v] in
   both words; a validated read returns word_a and asserts the words
   match. *)
type t = { seq : P.loc; data_a : P.loc; data_b : P.loc }

let sites =
  [
    Ords.site "write_load_seq" For_load Acquire;
    Ords.site "write_cas_seq" For_rmw Acq_rel;
    Ords.site "write_store_a" For_store Release;
    Ords.site "write_store_b" For_store Release;
    Ords.site "write_store_seq" For_store Release;
    Ords.site "read_load_seq1" For_load Acquire;
    Ords.site "read_load_a" For_load Acquire;
    Ords.site "read_load_b" For_load Acquire;
    Ords.site "read_load_seq2" For_load Relaxed;
  ]

let create () =
  let seq = P.malloc 1 in
  let data_a = P.malloc 1 in
  let data_b = P.malloc 1 in
  P.store Relaxed seq 0;
  P.store Relaxed data_a 0;
  P.store Relaxed data_b 0;
  { seq; data_a; data_b }

let o = Ords.get

let write ords l value =
  A.api_proc ~obj:l.seq ~name:"write" ~args:[ value ] (fun () ->
      let rec acquire_seq () =
        let s = P.load ~site:"write_load_seq" (o ords "write_load_seq") l.seq in
        if s mod 2 = 1 then acquire_seq ()
        else if P.cas ~site:"write_cas_seq" (o ords "write_cas_seq") l.seq ~expected:s ~desired:(s + 1)
        then s
        else acquire_seq ()
      in
      let s = acquire_seq () in
      P.store ~site:"write_store_a" (o ords "write_store_a") l.data_a value;
      P.store ~site:"write_store_b" (o ords "write_store_b") l.data_b value;
      A.op_define ();
      P.store ~site:"write_store_seq" (o ords "write_store_seq") l.seq (s + 2))

let read ords l =
  A.api_fun ~obj:l.seq ~name:"read" ~args:[] (fun () ->
      let rec attempt () =
        let s1 = P.load ~site:"read_load_seq1" (o ords "read_load_seq1") l.seq in
        if s1 mod 2 = 1 then attempt ()
        else begin
          let a = P.load ~site:"read_load_a" (o ords "read_load_a") l.data_a in
          let b = P.load ~site:"read_load_b" (o ords "read_load_b") l.data_b in
          A.op_clear_define ();
          let s2 = P.load ~site:"read_load_seq2" (o ords "read_load_seq2") l.seq in
          (* return the snapshot as a pair encoding so the specification
             sees both words: a consistent snapshot has a = b *)
          if s1 = s2 then (a * 16) + b else attempt ()
        end
      in
      attempt ())

let spec =
  let write_spec =
    {
      Spec.default_method with
      side_effect = Some (fun _st (info : Spec.info) -> (Cdsspec.Call.arg info.call 0, None));
    }
  in
  let read_spec =
    {
      Spec.default_method with
      (* the sequential read returns the packed consistent snapshot *)
      side_effect = Some (fun st _ -> (st, Some ((st * 16) + st)));
      (* non-deterministic: a read may observe an older snapshot... *)
      postcondition = Some (fun _st _info ~s_ret:_ -> true);
      (* ...but it must be the snapshot of some justifying prefix — not a
         torn value from a merely concurrent writer. *)
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            Some (Cdsspec.Call.ret_or min_int info.call) = s_ret);
    }
  in
  Spec.Packed
    {
      name = "seqlock";
      initial = (fun () -> 0);
      methods = [ ("write", write_spec); ("read", read_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 7; ordering_point_lines = 2; admissibility_lines = 0; api_methods = 2 };
    }

let test_1write_1read ords () =
  let l = create () in
  let t1 = P.spawn (fun () -> write ords l 1) in
  let t2 = P.spawn (fun () -> ignore (read ords l)) in
  P.join t1;
  P.join t2

let test_2write_1read ords () =
  let l = create () in
  let t1 = P.spawn (fun () -> write ords l 1) in
  let t2 = P.spawn (fun () -> write ords l 2) in
  let t3 = P.spawn (fun () -> ignore (read ords l)) in
  P.join t1;
  P.join t2;
  P.join t3

let test_write_read_same_thread ords () =
  let l = create () in
  let t1 =
    P.spawn (fun () ->
        write ords l 1;
        ignore (read ords l))
  in
  let t2 = P.spawn (fun () -> ignore (read ords l)) in
  P.join t1;
  P.join t2

let benchmark =
  (* Writers/readers retry in tight spin loops; two retries per static
     operation suffice to expose every distinct behaviour, so bound loops
     harder than the default to keep the 3-thread test tractable. *)
  Benchmark.make
    ~scheduler:{ Mc.Scheduler.default_config with loop_bound = 2 }
    ~name:"Seqlock" ~spec ~sites
    [
      ("1write-1read", test_1write_1read);
      ("2write-1read", test_2write_1read);
      ("write-then-read", test_write_read_same_thread);
    ]
