module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

(* Version node layout: [field_a; field_b] (non-atomic). *)
let f_a node = node
let f_b node = node + 1

type t = { published : P.loc; active : P.loc; readers : int }

let sites =
  [
    Ords.site "reader_lock_store" For_store Seq_cst;
    Ords.site "read_load_published" For_load Seq_cst;
    Ords.site "reader_unlock_store" For_store Release;
    Ords.site "write_store_publish" For_store Seq_cst;
    Ords.site "sync_load_active" For_load Seq_cst;
  ]

let new_version v =
  let n = P.malloc 2 in
  P.na_store (f_a n) v;
  P.na_store (f_b n) v;
  n

let create ~readers =
  let published = P.malloc 1 in
  let active = P.malloc readers in
  P.store Relaxed published (new_version 0);
  for slot = 0 to readers - 1 do
    P.store Relaxed (active + slot) 0
  done;
  { published; active; readers }

let o = Ords.get

let read ords t ~slot =
  A.api_fun ~obj:t.published ~name:"read" ~args:[ slot ] (fun () ->
      P.store ~site:"reader_lock_store" (o ords "reader_lock_store") (t.active + slot) 1;
      let p = P.load ~site:"read_load_published" (o ords "read_load_published") t.published in
      A.op_define ();
      let a = P.na_load (f_a p) in
      let b = P.na_load (f_b p) in
      P.check (a = b) "rcu_grace: torn snapshot (reclaimed under a reader)";
      P.store ~site:"reader_unlock_store" (o ords "reader_unlock_store") (t.active + slot) 0;
      a)

let synchronize ords t =
  for slot = 0 to t.readers - 1 do
    let rec quiesce () =
      if P.load ~site:"sync_load_active" (o ords "sync_load_active") (t.active + slot) = 1 then
        quiesce ()
    in
    quiesce ()
  done

let write ords t v =
  A.api_proc ~obj:t.published ~name:"write" ~args:[ v ] (fun () ->
      let old = P.load Relaxed t.published in
      let n = new_version v in
      P.store ~site:"write_store_publish" (o ords "write_store_publish") t.published n;
      A.op_define ();
      synchronize ords t;
      (* reclaim: scribble distinct markers over the retired version *)
      P.na_store (f_a old) (-99);
      P.na_store (f_b old) (-98))

let spec =
  let write_spec =
    {
      Spec.default_method with
      side_effect = Some (fun _st (info : Spec.info) -> (Cdsspec.Call.arg info.call 0, None));
    }
  in
  let read_spec =
    {
      Spec.default_method with
      side_effect = Some (fun st _ -> (st, Some st));
      postcondition = Some (fun _st _info ~s_ret:_ -> true);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or min_int info.call in
            Some c_ret = s_ret
            || List.exists
                 (fun (c : Cdsspec.Call.t) -> c.name = "write" && Cdsspec.Call.arg c 0 = c_ret)
                 info.concurrent);
    }
  in
  Spec.Packed
    {
      name = "rcu-grace";
      initial = (fun () -> 0);
      methods = [ ("write", write_spec); ("read", read_spec) ];
      admissibility =
        [ { Spec.first = "write"; second = "write"; requires_order = (fun _ _ -> true) } ];
      accounting =
        { spec_lines = 9; ordering_point_lines = 2; admissibility_lines = 1; api_methods = 2 };
    }

let test_1write_1read ords () =
  let t = create ~readers:1 in
  let w = P.spawn (fun () -> write ords t 1) in
  let r = P.spawn (fun () -> ignore (read ords t ~slot:0)) in
  P.join w;
  P.join r

let test_1write_2read ords () =
  let t = create ~readers:2 in
  let w = P.spawn (fun () -> write ords t 1) in
  let r0 = P.spawn (fun () -> ignore (read ords t ~slot:0)) in
  let r1 = P.spawn (fun () -> ignore (read ords t ~slot:1)) in
  P.join w;
  P.join r0;
  P.join r1

let test_reader_rereads ords () =
  let t = create ~readers:1 in
  let w = P.spawn (fun () -> write ords t 1) in
  let r =
    P.spawn (fun () ->
        ignore (read ords t ~slot:0);
        ignore (read ords t ~slot:0))
  in
  P.join w;
  P.join r

let benchmark =
  Benchmark.make ~name:"RCU Grace" ~spec ~sites
    [
      ("1write-1read", test_1write_1read);
      ("1write-2read", test_1write_2read);
      ("reader-rereads", test_reader_rereads);
    ]
