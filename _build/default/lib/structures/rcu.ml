module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

(* Data node layout: [field_a; field_b], both non-atomic. *)
let f_a node = node
let f_b node = node + 1

type t = { published : P.loc }

let sites =
  [
    Ords.site "write_store_publish" For_store Release;
    Ords.site "read_load_publish" For_load Acquire;
  ]

let new_version v =
  let n = P.malloc 2 in
  P.na_store (f_a n) v;
  P.na_store (f_b n) v;
  n

let create () =
  let published = P.malloc 1 in
  let initial = new_version 0 in
  P.store Relaxed published initial;
  { published }

let write ords t v =
  A.api_proc ~obj:t.published ~name:"write" ~args:[ v ] (fun () ->
      let n = new_version v in
      P.store ~site:"write_store_publish" (Ords.get ords "write_store_publish") t.published n;
      A.op_define ())

let read ords t =
  A.api_fun ~obj:t.published ~name:"read" ~args:[] (fun () ->
      let p = P.load ~site:"read_load_publish" (Ords.get ords "read_load_publish") t.published in
      A.op_define ();
      let a = P.na_load (f_a p) in
      let b = P.na_load (f_b p) in
      P.check (a = b) "rcu: torn snapshot";
      a)

let spec =
  let write_spec =
    {
      Spec.default_method with
      side_effect = Some (fun _st (info : Spec.info) -> (Cdsspec.Call.arg info.call 0, None));
    }
  in
  let read_spec =
    {
      Spec.default_method with
      side_effect = Some (fun st _ -> (st, Some st));
      postcondition = Some (fun _st _info ~s_ret:_ -> true);
      (* grace semantics: a read returns the version current in some
         justifying prefix, or one being published concurrently *)
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or min_int info.call in
            Some c_ret = s_ret
            || List.exists
                 (fun (c : Cdsspec.Call.t) -> c.name = "write" && Cdsspec.Call.arg c 0 = c_ret)
                 info.concurrent);
    }
  in
  Spec.Packed
    {
      name = "rcu";
      initial = (fun () -> 0);
      methods = [ ("write", write_spec); ("read", read_spec) ];
      admissibility =
        [ { Spec.first = "write"; second = "write"; requires_order = (fun _ _ -> true) } ];
      accounting =
        { spec_lines = 8; ordering_point_lines = 2; admissibility_lines = 1; api_methods = 2 };
    }

let test_1write_1read ords () =
  let t = create () in
  let w = P.spawn (fun () -> write ords t 1) in
  let r = P.spawn (fun () -> ignore (read ords t)) in
  P.join w;
  P.join r

let test_1write_2read ords () =
  let t = create () in
  let w = P.spawn (fun () -> write ords t 1) in
  let r1 = P.spawn (fun () -> ignore (read ords t)) in
  let r2 =
    P.spawn (fun () ->
        ignore (read ords t);
        ignore (read ords t))
  in
  P.join w;
  P.join r1;
  P.join r2

let test_2write_1read ords () =
  let t = create () in
  let w =
    P.spawn (fun () ->
        write ords t 1;
        write ords t 2)
  in
  let r = P.spawn (fun () -> ignore (read ords t)) in
  P.join w;
  P.join r

let benchmark =
  Benchmark.make ~name:"RCU" ~spec ~sites
    [
      ("1write-1read", test_1write_1read);
      ("1write-2read", test_1write_2read);
      ("2write-1read", test_2write_1read);
    ]
