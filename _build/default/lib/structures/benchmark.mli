(** The uniform shape of a benchmark: an implementation parameterized by
    a memory-order table, a CDSSpec specification, and the unit tests the
    experiments model-check (paper section 6: at most 3 threads, a
    handful of API calls each). *)

type test = {
  test_name : string;
  program : Ords.t -> unit -> unit;
      (** the unit test's main function, instrumented with the spec *)
}

type t = {
  name : string;  (** row label, matching the paper's Figure 7/8 *)
  spec : Cdsspec.Spec.packed;
  sites : Ords.site list;  (** injectable atomic-operation sites *)
  tests : test list;
  scheduler : Mc.Scheduler.config;  (** per-benchmark exploration bounds *)
}

(** Convenience: build with the default scheduler configuration. *)
val make :
  ?scheduler:Mc.Scheduler.config ->
  name:string ->
  spec:Cdsspec.Spec.packed ->
  sites:Ords.site list ->
  (string * (Ords.t -> unit -> unit)) list ->
  t
