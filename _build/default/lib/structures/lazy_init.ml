module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

(* instance: atomic pointer to a 1-cell object holding the payload
   (written non-atomically during construction — the bug the release /
   acquire pair prevents); guard: a test-and-set spinlock. *)
type t = { instance : P.loc; guard : P.loc; payload : int }

let sites =
  [
    Ords.site "get_load_fast" For_load Acquire;
    Ords.site "guard_xchg" For_rmw Acquire;
    Ords.site "get_load_slow" For_load Relaxed;  (* under the lock *)
    Ords.site "get_store_publish" For_store Release;
    Ords.site "guard_store" For_store Release;
  ]

let create ~payload =
  let instance = P.malloc 1 in
  let guard = P.malloc 1 in
  P.store Relaxed instance 0;
  P.store Relaxed guard 0;
  { instance; guard; payload }

let o = Ords.get

(* Returns the singleton's identity (its pointer); the payload is read
   non-atomically on every path, so a broken publication order surfaces
   as a data race, and a double construction surfaces as two gets
   returning different identities — a deterministic-spec violation. *)
let get ords t =
  A.api_fun ~obj:t.instance ~name:"get" ~args:[] (fun () ->
      let fast = P.load ~site:"get_load_fast" (o ords "get_load_fast") t.instance in
      A.op_define ();
      if fast <> 0 then begin
        P.check (P.na_load fast = t.payload) "lazy_init: payload intact";
        fast
      end
      else begin
        (* slow path: lock, re-check, construct, publish *)
        let rec acquire_guard () =
          if P.exchange ~site:"guard_xchg" (o ords "guard_xchg") t.guard 1 = 1 then
            acquire_guard ()
        in
        acquire_guard ();
        let cur = P.load ~site:"get_load_slow" (o ords "get_load_slow") t.instance in
        let obj =
          if cur <> 0 then cur
          else begin
            let obj = P.malloc 1 in
            P.na_store obj t.payload;
            P.store ~site:"get_store_publish" (o ords "get_store_publish") t.instance obj;
            A.op_clear_define ();
            obj
          end
        in
        P.store ~site:"guard_store" (o ords "guard_store") t.guard 0;
        P.check (P.na_load obj = t.payload) "lazy_init: payload intact";
        obj
      end)

let spec =
  let get_spec =
    {
      Spec.default_method with
      (* deterministic: every get returns the constructed payload, which
         the sequential model fixes on first call *)
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            match st with
            | Some v -> (st, Some v)
            | None -> (Some (Cdsspec.Call.ret_or 0 info.call), Some (Cdsspec.Call.ret_or 0 info.call)));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            Some (Cdsspec.Call.ret_or min_int info.call) = s_ret);
    }
  in
  Spec.Packed
    {
      name = "lazy-init";
      initial = (fun () -> None);
      methods = [ ("get", get_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 5; ordering_point_lines = 2; admissibility_lines = 0; api_methods = 1 };
    }

let test_two_getters ords () =
  let t = create ~payload:7 in
  let g1 = P.spawn (fun () -> ignore (get ords t)) in
  let g2 = P.spawn (fun () -> ignore (get ords t)) in
  P.join g1;
  P.join g2

let test_reget ords () =
  let t = create ~payload:7 in
  let g1 =
    P.spawn (fun () ->
        ignore (get ords t);
        ignore (get ords t))
  in
  let g2 = P.spawn (fun () -> ignore (get ords t)) in
  P.join g1;
  P.join g2

let benchmark =
  Benchmark.make ~name:"Lazy Init" ~spec ~sites
    [ ("two-getters", test_two_getters); ("reget", test_reget) ]
