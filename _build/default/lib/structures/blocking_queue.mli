(** The simple blocking queue of the paper's Figure 2 — the running
    example — with the non-deterministic specification of Figure 6:
    [deq] may spuriously return empty (-1), justified by a justifying
    subhistory on which the sequential queue is also empty. *)

type t

(** Allocate the queue (one dummy node; [tail = head = dummy]). *)
val create : unit -> t

val enq : Ords.t -> t -> int -> unit

(** [deq] returns the dequeued value or -1 when (it believes) the queue
    is empty. *)
val deq : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
