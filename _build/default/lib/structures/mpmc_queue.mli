(** Bounded multi-producer multi-consumer queue: an array of cells with
    per-cell sequence numbers plus enqueue/dequeue position counters
    (Vyukov-style, the "array-based implementation with read/write
    counters" of the paper's section 6.4.2). Cell sequence numbers wrap
    by +capacity per epoch, so a full counter rollover — the structure's
    known (practically untriggerable) bug — needs more positions than any
    unit test exercises, which is why some injections are undetectable at
    unit-test scale (the paper reports a 50% detection rate here). *)

type t

(** [create capacity] — capacity cells. *)
val create : int -> t

(** [enq] returns false when the queue is full. *)
val enq : Ords.t -> t -> int -> bool

(** The dequeued value, or -1 when the queue appears empty. *)
val deq : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
