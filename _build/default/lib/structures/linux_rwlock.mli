(** Port of the Linux kernel reader-writer spinlock (as in the
    CDSChecker benchmark suite): a single counter biased by
    [rw_lock_bias]; readers subtract 1, writers subtract the whole bias.

    [write_trylock] has a transient side effect (subtract then restore
    the bias on failure), so racing trylocks can both fail while the
    sequential specification would force one to succeed — the paper's
    section 6.1 example of iteratively refining a spec to allow spurious
    failure. *)

type t

val rw_lock_bias : int

val create : unit -> t
val read_lock : Ords.t -> t -> unit
val read_unlock : Ords.t -> t -> unit
val write_lock : Ords.t -> t -> unit
val write_unlock : Ords.t -> t -> unit

(** 1 on success, 0 on (possibly spurious) failure. *)
val write_trylock : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
