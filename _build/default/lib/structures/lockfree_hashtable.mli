(** Fixed-capacity lock-free hashtable in the style of the paper's port
    of Doug Lea's ConcurrentHashMap slot array: open addressing over
    atomic key/value slots, with seq_cst operations establishing strong
    ordering between [get] and [put] on the same key — which is what lets
    the specification be a plain deterministic sequential map. Keys and
    values must be non-zero (0 encodes an empty slot / absent key). *)

type t

(** [create capacity] *)
val create : int -> t

val put : Ords.t -> t -> key:int -> value:int -> unit

(** 0 when absent. *)
val get : Ords.t -> t -> key:int -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
