(** The bug-fixed C11 adaptation of the Chase-Lev work-stealing deque
    (Lê, Pop, Cohen and Zappa Nardelli, PPoPP 2013 [34]). An owner thread
    pushes and takes at the bottom; thieves steal from the top with a
    seq_cst CAS. Growth reallocates the buffer; publishing the new buffer
    with release order is the fix for the bug CDSChecker found (a steal
    racing with a resizing push could read uninitialized memory).

    Returns -1 for empty (steal also returns -1 when it loses the top
    race, like the original's ABORT). *)

type t

(** [create ~capacity ~init_resize ()] — [init_resize] zero-fills freshly
    grown buffers; the paper turns this on to suppress the built-in
    uninitialized-load report and show the known bug is also caught as a
    specification violation. *)
val create : capacity:int -> init_resize:bool -> unit -> t

(** Owner-only. *)
val push : Ords.t -> t -> int -> unit

(** Owner-only; -1 when empty. *)
val take : Ords.t -> t -> int

(** Any thread; -1 when empty or when the race for the top element is
    lost. *)
val steal : Ords.t -> t -> int

val sites : Ords.site list

(** The published (pre-fix) orders: the resize buffer publication was too
    weak. *)
val known_buggy_ords : Ords.t

val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
