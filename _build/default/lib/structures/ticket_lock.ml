module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

type t = { cur_ticket : P.loc; now_serving : P.loc; data : P.loc }

let sites =
  [
    Ords.site "lock_fa_ticket" For_rmw Relaxed;  (* intentionally relaxed *)
    Ords.site "lock_load_serving" For_load Acquire;
    Ords.site "unlock_load_serving" For_load Relaxed;
    Ords.site "unlock_store_serving" For_store Release;
  ]

let create () =
  let cur_ticket = P.malloc 1 in
  let now_serving = P.malloc 1 in
  let data = P.malloc ~init:0 1 in
  P.store Relaxed cur_ticket 0;
  P.store Relaxed now_serving 0;
  { cur_ticket; now_serving; data }

let lock ords l =
  A.api_proc ~obj:l.cur_ticket ~name:"lock" ~args:[] (fun () ->
      let my = P.fetch_add ~site:"lock_fa_ticket" (Ords.get ords "lock_fa_ticket") l.cur_ticket 1 in
      let rec spin () =
        let s = P.load ~site:"lock_load_serving" (Ords.get ords "lock_load_serving") l.now_serving in
        A.op_clear_define ();
        if s <> my then spin ()
      in
      spin ())

let unlock ords l =
  A.api_proc ~obj:l.cur_ticket ~name:"unlock" ~args:[] (fun () ->
      let s = P.load ~site:"unlock_load_serving" (Ords.get ords "unlock_load_serving") l.now_serving in
      P.store ~site:"unlock_store_serving" (Ords.get ords "unlock_store_serving") l.now_serving (s + 1);
      A.op_define ())

(* Critical-section body used by the unit tests: a non-atomic read-modify-
   write of shared data, so mutual-exclusion violations also surface as
   data races (a built-in check). *)
let critical_section l =
  let v = P.na_load l.data in
  P.na_store l.data (v + 1)

let mutex_spec ~name ?accounting ~lock_names ~unlock_names () =
  let accounting =
    match accounting with
    | Some a -> a
    | None ->
      {
        Spec.spec_lines = 6;
        ordering_point_lines = 2;
        admissibility_lines = 0;
        api_methods = List.length lock_names + List.length unlock_names;
      }
  in
  let lock_spec =
    {
      Spec.default_method with
      precondition = Some (fun held _ -> not held);
      side_effect = Some (fun _held _ -> (true, None));
    }
  in
  let unlock_spec =
    {
      Spec.default_method with
      precondition = Some (fun held _ -> held);
      side_effect = Some (fun _held _ -> (false, None));
    }
  in
  Spec.Packed
    {
      name;
      initial = (fun () -> false);
      methods =
        List.map (fun n -> (n, lock_spec)) lock_names
        @ List.map (fun n -> (n, unlock_spec)) unlock_names;
      admissibility = [];
      accounting;
    }

let spec = mutex_spec ~name:"ticket-lock" ~lock_names:[ "lock" ] ~unlock_names:[ "unlock" ] ()

let test_two_threads ords () =
  let l = create () in
  let worker () =
    lock ords l;
    critical_section l;
    unlock ords l
  in
  let t1 = P.spawn worker in
  let t2 = P.spawn worker in
  P.join t1;
  P.join t2

let test_reentry ords () =
  let l = create () in
  let t1 =
    P.spawn (fun () ->
        lock ords l;
        critical_section l;
        unlock ords l;
        lock ords l;
        critical_section l;
        unlock ords l)
  in
  let t2 =
    P.spawn (fun () ->
        lock ords l;
        critical_section l;
        unlock ords l)
  in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"Ticket Lock" ~spec ~sites
    [ ("two-threads", test_two_threads); ("reentry", test_reentry) ]
