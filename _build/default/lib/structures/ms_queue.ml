module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Il = Cdsspec.Seq_state.Int_list
open C11.Memory_order

(* Node layout: [next; data]; 0 is NULL. *)
let f_next node = node
let f_data node = node + 1

type t = { head : P.loc; tail : P.loc }

let sites =
  [
    Ords.site "enq_load_tail" For_load Acquire;
    Ords.site "enq_load_next" For_load Acquire;
    Ords.site "enq_check_tail" For_load Relaxed;
    Ords.site "enq_cas_next" For_rmw Release;
    Ords.site "enq_cas_tail_help" For_rmw Release;
    Ords.site "enq_cas_tail" For_rmw Release;
    Ords.site "deq_load_head" For_load Acquire;
    Ords.site "deq_load_tail" For_load Acquire;
    Ords.site "deq_load_next" For_load Acquire;
    Ords.site "deq_check_head" For_load Relaxed;
    Ords.site "deq_cas_tail_help" For_rmw Release;
    Ords.site "deq_cas_head" For_rmw Release;
  ]

(* The two AutoMO bugs: the linking CAS published with relaxed order, and
   the dequeue next-pointer load missing its acquire. *)
let known_bugs =
  [
    ("enq_cas_next", Ords.with_order sites "enq_cas_next" Relaxed);
    ("deq_load_next", Ords.with_order sites "deq_load_next" Relaxed);
  ]

let known_buggy_ords =
  Ords.with_order
    (List.map
       (fun (s : Ords.site) ->
         if s.name = "enq_cas_next" then { s with order = Relaxed } else s)
       sites)
    "deq_load_next" Relaxed

let new_node value =
  let n = P.malloc 2 in
  P.store Relaxed (f_next n) 0;
  P.na_store (f_data n) value;
  n

let create () =
  let dummy = new_node 0 in
  let head = P.malloc 1 in
  let tail = P.malloc 1 in
  P.store Relaxed head dummy;
  P.store Relaxed tail dummy;
  { head; tail }

let o ords name = Ords.get ords name

let enq ords q value =
  A.api_proc ~obj:q.head ~name:"enq" ~args:[ value ] (fun () ->
      let node = new_node value in
      let rec loop () =
        let t = P.load ~site:"enq_load_tail" (o ords "enq_load_tail") q.tail in
        let next = P.load ~site:"enq_load_next" (o ords "enq_load_next") (f_next t) in
        if t = P.load ~site:"enq_check_tail" (o ords "enq_check_tail") q.tail then begin
          if next = 0 then begin
            if
              P.cas ~site:"enq_cas_next" (o ords "enq_cas_next") (f_next t) ~expected:0
                ~desired:node
            then begin
              A.op_define ();
              ignore
                (P.cas ~site:"enq_cas_tail" (o ords "enq_cas_tail") q.tail ~expected:t
                   ~desired:node)
            end
            else loop ()
          end
          else begin
            (* help lagging tail along *)
            ignore
              (P.cas ~site:"enq_cas_tail_help" (o ords "enq_cas_tail_help") q.tail ~expected:t
                 ~desired:next);
            loop ()
          end
        end
        else loop ()
      in
      loop ())

let deq ords q =
  A.api_fun ~obj:q.head ~name:"deq" ~args:[] (fun () ->
      let rec loop () =
        let h = P.load ~site:"deq_load_head" (o ords "deq_load_head") q.head in
        let t = P.load ~site:"deq_load_tail" (o ords "deq_load_tail") q.tail in
        let next = P.load ~site:"deq_load_next" (o ords "deq_load_next") (f_next h) in
        A.op_clear_define ();
        if h = P.load ~site:"deq_check_head" (o ords "deq_check_head") q.head then begin
          if h = t then begin
            if next = 0 then -1
            else begin
              (* tail is lagging: help and retry *)
              ignore
                (P.cas ~site:"deq_cas_tail_help" (o ords "deq_cas_tail_help") q.tail ~expected:t
                   ~desired:next);
              loop ()
            end
          end
          else begin
            let value = P.na_load (f_data next) in
            if P.cas ~site:"deq_cas_head" (o ords "deq_cas_head") q.head ~expected:h ~desired:next
            then value
            else loop ()
          end
        end
        else loop ()
      in
      loop ())

(* Same specification shape as the blocking queue (the paper notes the
   M&S queue has the same justifying condition for dequeue). *)
let spec =
  let enq_spec =
    {
      Spec.default_method with
      side_effect =
        Some (fun st (info : Spec.info) -> (Il.push_back (Cdsspec.Call.arg info.call 0) st, None));
    }
  in
  let deq_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.front st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_front st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret = -1 then s_ret = Some (-1) else true);
    }
  in
  Spec.Packed
    {
      name = "ms-queue";
      initial = (fun () -> Il.empty);
      methods = [ ("enq", enq_spec); ("deq", deq_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 10; ordering_point_lines = 2; admissibility_lines = 0; api_methods = 2 };
    }

let test_1enq_1deq ords () =
  let q = create () in
  let t1 = P.spawn (fun () -> enq ords q 1) in
  let t2 = P.spawn (fun () -> ignore (deq ords q)) in
  P.join t1;
  P.join t2

let test_2enq_2deq ords () =
  let q = create () in
  let t1 =
    P.spawn (fun () ->
        enq ords q 1;
        enq ords q 2)
  in
  let t2 =
    P.spawn (fun () ->
        ignore (deq ords q);
        ignore (deq ords q))
  in
  P.join t1;
  P.join t2

let test_racing_deqs ords () =
  let q = create () in
  enq ords q 1;
  enq ords q 2;
  let t1 = P.spawn (fun () -> ignore (deq ords q)) in
  let t2 = P.spawn (fun () -> ignore (deq ords q)) in
  P.join t1;
  P.join t2

let test_racing_enqs ords () =
  let q = create () in
  let t1 = P.spawn (fun () -> enq ords q 1) in
  let t2 = P.spawn (fun () -> enq ords q 2) in
  P.join t1;
  P.join t2;
  ignore (deq ords q)

let benchmark =
  Benchmark.make ~name:"M&S Queue" ~spec ~sites
    [
      ("1enq-1deq", test_1enq_1deq);
      ("2enq-2deq", test_2enq_2deq);
      ("racing-deqs", test_racing_deqs);
      ("racing-enqs", test_racing_enqs);
    ]
