(** A single-phase centralized barrier: arrivals count down with an
    acq_rel fetch-sub, the last arrival releases the sense flag, earlier
    arrivals spin-acquire it. Everything sequenced before any [await]
    happens before everything sequenced after any other [await].

    [await] returns the arrival position (the first arriver gets [n],
    the last gets 1) — deterministic relative to the ordering relation
    because the fetch-subs form a release/acquire chain. *)

type t

(** [create n] — a barrier for [n] participants (single use). *)
val create : int -> t

val await : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
