(** All benchmarks, in the paper's Figure 7 row order where applicable. *)

val all : Benchmark.t list

val find : string -> Benchmark.t option
