(** MCS queue lock: contending threads enqueue per-thread nodes on an
    atomic tail and spin on their own node's flag, so each handoff
    synchronizes exactly one pair of threads. *)

type t

val create : unit -> t

(** Per-thread queue node; allocate one per thread per acquisition. *)
type node

val make_node : unit -> node

val lock : Ords.t -> t -> node -> unit
val unlock : Ords.t -> t -> node -> unit

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
