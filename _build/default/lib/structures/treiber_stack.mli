(** Treiber lock-free stack: CAS on a top pointer. An extension beyond
    the paper's benchmark set, specified the same way as the queues: pop
    may spuriously report empty, justified by an empty justifying
    prefix. *)

type t

val create : unit -> t
val push : Ords.t -> t -> int -> unit

(** -1 when the stack appears empty. *)
val pop : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
