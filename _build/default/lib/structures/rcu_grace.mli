(** User-level RCU with explicit grace periods (in the spirit of
    Desnoyers et al. [24]): readers mark per-slot active flags around
    their critical sections; a writer publishes a new version and then
    waits until every reader slot is quiescent before reclaiming the old
    version (overwriting its fields with distinct poison markers).

    The seq_cst flag/pointer protocol is load-bearing: the reader's
    active-store vs published-load and the writer's published-store vs
    active-load form a store-buffering shape that only seq_cst forbids —
    weaken any of those orders and a reader can still hold the old
    version while the writer reclaims it, which surfaces as a data race
    and a torn-snapshot assertion. *)

type t

(** [create ~readers] — fixed number of reader slots. *)
val create : readers:int -> t

(** [read ords t ~slot] — a full read-side critical section on reader
    slot [slot]: lock, dereference, read both fields, unlock. Returns
    the observed version. *)
val read : Ords.t -> t -> slot:int -> int

(** [write ords t v] — publish version [v], wait for a grace period,
    reclaim the previous version. Single writer (admissibility rule). *)
val write : Ords.t -> t -> int -> unit

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
