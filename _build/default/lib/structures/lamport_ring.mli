(** Lamport's classic single-producer single-consumer ring buffer: a
    bounded array with head/tail indices, the producer owning the tail
    and the consumer the head. The release/acquire pair on the indices is
    what publishes the slots. *)

type t

(** [create capacity] *)
val create : int -> t

(** Producer-only; false when full. *)
val enq : Ords.t -> t -> int -> bool

(** Consumer-only; -1 when empty. *)
val deq : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
