module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Il = Cdsspec.Seq_state.Int_list
open C11.Memory_order

(* Node layout: [next; data]. Pointers are location ids; 0 is NULL. *)
let f_next node = node
let f_data node = node + 1

type t = { tail : P.loc; head : P.loc }

let sites =
  [
    Ords.site "enq_load_tail" For_load Acquire;
    Ords.site "enq_cas_next" For_rmw Release;
    Ords.site "enq_store_tail" For_store Release;
    Ords.site "deq_load_head" For_load Acquire;
    Ords.site "deq_load_next" For_load Acquire;
    Ords.site "deq_cas_head" For_rmw Release;
  ]

let new_node value =
  let n = P.malloc 2 in
  P.store Relaxed (f_next n) 0;
  (* atomic field initialization *)
  P.na_store (f_data n) value;
  n

let create () =
  let dummy = new_node 0 in
  let tail = P.malloc 1 in
  let head = P.malloc 1 in
  P.store Relaxed tail dummy;
  P.store Relaxed head dummy;
  { tail; head }

let enq ords q value =
  A.api_proc ~obj:q.tail ~name:"enq" ~args:[ value ] (fun () ->
      let n = new_node value in
      let rec loop () =
        let t = P.load ~site:"enq_load_tail" (Ords.get ords "enq_load_tail") q.tail in
        if
          P.cas ~site:"enq_cas_next" (Ords.get ords "enq_cas_next") (f_next t) ~expected:0
            ~desired:n
        then begin
          A.op_define ();
          P.store ~site:"enq_store_tail" (Ords.get ords "enq_store_tail") q.tail n
        end
        else loop ()
      in
      loop ())

let deq ords q =
  A.api_fun ~obj:q.tail ~name:"deq" ~args:[] (fun () ->
      let rec loop () =
        let h = P.load ~site:"deq_load_head" (Ords.get ords "deq_load_head") q.head in
        let n = P.load ~site:"deq_load_next" (Ords.get ords "deq_load_next") (f_next h) in
        A.op_clear_define ();
        if n = 0 then -1
        else if P.cas ~site:"deq_cas_head" (Ords.get ords "deq_cas_head") q.head ~expected:h ~desired:n
        then P.na_load (f_data n)
        else loop ()
      in
      loop ())

(* Figure 6's specification, transliterated. *)
let spec =
  let enq_spec =
    {
      Spec.default_method with
      side_effect = Some (fun st (info : Spec.info) -> (Il.push_back (Cdsspec.Call.arg info.call 0) st, None));
    }
  in
  let deq_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.front st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_front st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret = -1 then s_ret = Some (-1) else true);
    }
  in
  Spec.Packed
    {
      name = "blocking-queue";
      initial = (fun () -> Il.empty);
      methods = [ ("enq", enq_spec); ("deq", deq_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 10; ordering_point_lines = 2; admissibility_lines = 0; api_methods = 2 };
    }

(* Unit tests (paper-scale: <= 3 threads). *)
let test_1enq_1deq ords () =
  let q = create () in
  let t1 = P.spawn (fun () -> enq ords q 1) in
  let t2 = P.spawn (fun () -> ignore (deq ords q)) in
  P.join t1;
  P.join t2

let test_2enq_2deq ords () =
  let q = create () in
  let t1 =
    P.spawn (fun () ->
        enq ords q 1;
        enq ords q 2)
  in
  let t2 =
    P.spawn (fun () ->
        ignore (deq ords q);
        ignore (deq ords q))
  in
  P.join t1;
  P.join t2

let test_racing_deqs ords () =
  let q = create () in
  enq ords q 1;
  enq ords q 2;
  let t1 = P.spawn (fun () -> ignore (deq ords q)) in
  let t2 = P.spawn (fun () -> ignore (deq ords q)) in
  P.join t1;
  P.join t2

let test_racing_enqs ords () =
  let q = create () in
  let t1 = P.spawn (fun () -> enq ords q 1) in
  let t2 = P.spawn (fun () -> enq ords q 2) in
  P.join t1;
  P.join t2;
  ignore (deq ords q)

let benchmark =
  Benchmark.make ~name:"Blocking Queue" ~spec ~sites
    [
      ("1enq-1deq", test_1enq_1deq);
      ("2enq-2deq", test_2enq_2deq);
      ("racing-deqs", test_racing_deqs);
      ("racing-enqs", test_racing_enqs);
    ]
