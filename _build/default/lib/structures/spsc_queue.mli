(** Single-producer single-consumer linked queue (from the CDSChecker
    benchmark suite). Only the node [next] pointers are atomic; the
    producer-side tail and consumer-side head are owned by one thread
    each, which the specification captures with admissibility rules. *)

type t

val create : unit -> t

(** Producer-only. *)
val enq : Ords.t -> t -> int -> unit

(** Consumer-only; -1 when the queue appears empty. *)
val deq : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
