module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Il = Cdsspec.Seq_state.Int_list
open C11.Memory_order

(* Array block layout: [size; cell_0 .. cell_{size-1}]; all cells are
   (relaxed) atomics, as in the C11 original. Deque: top, bottom, array
   pointer. *)
type t = { top : P.loc; bottom : P.loc; array : P.loc; init_resize : bool }

let a_size arr = arr

(* [size] may be garbage when read through an unsynchronized array
   pointer (the known bug); clamp so the access stays in-model — the
   uninitialized load has already been reported by then. *)
let a_cell arr size i = arr + 1 + (i mod max 1 size)

let sites =
  [
    Ords.site "push_load_bottom" For_load Relaxed;
    Ords.site "push_load_top" For_load Acquire;
    Ords.site "push_load_array" For_load Relaxed;
    Ords.site "push_store_buffer" For_store Relaxed;
    Ords.site "push_fence" For_fence Release;
    Ords.site "push_store_bottom" For_store Relaxed;
    Ords.site "take_load_bottom" For_load Relaxed;
    Ords.site "take_load_array" For_load Relaxed;
    Ords.site "take_store_bottom" For_store Relaxed;
    Ords.site "take_fence" For_fence Seq_cst;
    Ords.site "take_load_top" For_load Relaxed;
    Ords.site "take_cas_top" For_rmw Seq_cst;
    Ords.site "take_restore_bottom" For_store Relaxed;
    Ords.site "steal_load_top" For_load Acquire;
    Ords.site "steal_fence" For_fence Seq_cst;
    Ords.site "steal_load_bottom" For_load Acquire;
    Ords.site "steal_load_array" For_load Acquire;  (* consume in the original *)
    Ords.site "steal_load_buffer" For_load Relaxed;
    Ords.site "steal_cas_top" For_rmw Seq_cst;
    Ords.site "resize_store_array" For_store Release;  (* the bug fix *)
  ]

let known_buggy_ords = Ords.with_order sites "resize_store_array" Relaxed

let new_array ?init size =
  let arr = P.malloc ?init (1 + size) in
  (match init with
  | Some _ -> ()
  | None ->
    (* the size header is always initialized; only cells may be raw *)
    ());
  P.store Relaxed (a_size arr) size;
  arr

let create ~capacity ~init_resize () =
  let arr = new_array ~init:0 capacity in
  let top = P.malloc 1 in
  let bottom = P.malloc 1 in
  let array = P.malloc 1 in
  P.store Relaxed top 0;
  P.store Relaxed bottom 0;
  P.store Relaxed array arr;
  { top; bottom; array; init_resize }

let o = Ords.get

(* Grow the buffer: copy the live range [top, bottom) into a buffer of
   twice the size and publish it. *)
let resize ords q ~bottom:b ~top:t ~old_arr =
  let old_size = P.load ~site:"resize_load_size" Relaxed (a_size old_arr) in
  let size = 2 * old_size in
  let arr = new_array ?init:(if q.init_resize then Some 0 else None) size in
  let rec copy i =
    if i < b then begin
      let v = P.load ~site:"resize_load_cell" Relaxed (a_cell old_arr old_size i) in
      P.store ~site:"resize_store_cell" Relaxed (a_cell arr size i) v;
      copy (i + 1)
    end
  in
  copy t;
  P.store ~site:"resize_store_array" (o ords "resize_store_array") q.array arr;
  arr

let push ords q value =
  A.api_proc ~obj:q.top ~name:"push" ~args:[ value ] (fun () ->
      let b = P.load ~site:"push_load_bottom" (o ords "push_load_bottom") q.bottom in
      let t = P.load ~site:"push_load_top" (o ords "push_load_top") q.top in
      let arr = P.load ~site:"push_load_array" (o ords "push_load_array") q.array in
      let size = P.load ~site:"push_load_size" Relaxed (a_size arr) in
      let arr = if b - t > size - 1 then resize ords q ~bottom:b ~top:t ~old_arr:arr else arr in
      let size = P.load ~site:"push_load_size2" Relaxed (a_size arr) in
      P.store ~site:"push_store_buffer" (o ords "push_store_buffer") (a_cell arr size b) value;
      A.op_define ();
      P.fence (o ords "push_fence");
      P.store ~site:"push_store_bottom" (o ords "push_store_bottom") q.bottom (b + 1))

let take ords q =
  A.api_fun ~obj:q.top ~name:"take" ~args:[] (fun () ->
      let b = P.load ~site:"take_load_bottom" (o ords "take_load_bottom") q.bottom - 1 in
      let arr = P.load ~site:"take_load_array" (o ords "take_load_array") q.array in
      P.store ~site:"take_store_bottom" (o ords "take_store_bottom") q.bottom b;
      P.fence (o ords "take_fence");
      let t = P.load ~site:"take_load_top" (o ords "take_load_top") q.top in
      if t <= b then begin
        let size = P.load ~site:"take_load_size" Relaxed (a_size arr) in
        let x = P.load ~site:"take_load_buffer" Relaxed (a_cell arr size b) in
        if t = b then begin
          (* last element: race the thieves for it *)
          let won =
            P.cas ~site:"take_cas_top" (o ords "take_cas_top")
              ~fail_mo:Relaxed q.top ~expected:t ~desired:(t + 1)
          in
          P.store ~site:"take_restore_bottom" (o ords "take_restore_bottom") q.bottom (b + 1);
          A.op_clear_define ();
          if won then x else -1
        end
        else begin
          A.op_clear_define ();
          x
        end
      end
      else begin
        (* empty: restore bottom *)
        P.store ~site:"take_restore_bottom" (o ords "take_restore_bottom") q.bottom (b + 1);
        A.op_clear_define ();
        -1
      end)

let steal ords q =
  A.api_fun ~obj:q.top ~name:"steal" ~args:[] (fun () ->
      let t = P.load ~site:"steal_load_top" (o ords "steal_load_top") q.top in
      P.fence (o ords "steal_fence");
      let b = P.load ~site:"steal_load_bottom" (o ords "steal_load_bottom") q.bottom in
      if t < b then begin
        let arr = P.load ~site:"steal_load_array" (o ords "steal_load_array") q.array in
        let size = P.load ~site:"steal_load_size" Relaxed (a_size arr) in
        let x = P.load ~site:"steal_load_buffer" (o ords "steal_load_buffer") (a_cell arr size t) in
        A.op_clear_define ();
        if
          P.cas ~site:"steal_cas_top" (o ords "steal_cas_top") ~fail_mo:Relaxed q.top ~expected:t
            ~desired:(t + 1)
        then x
        else -1 (* lost the race: ABORT *)
      end
      else begin
        A.op_clear_define ();
        -1
      end)

let spec =
  let push_spec =
    {
      Spec.default_method with
      side_effect =
        Some (fun st (info : Spec.info) -> (Il.push_back (Cdsspec.Call.arg info.call 0) st, None));
    }
  in
  let take_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.back st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_back st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      (* an empty-handed take is justified when the deque really was
         empty, or when concurrent steals account for everything left *)
      justifying_postcondition =
        Some
          (fun st (info : Spec.info) ~s_ret:_ ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret <> -1 then true
            else
              Il.is_empty st
              || List.for_all
                   (fun v ->
                     List.exists
                       (fun (c : Cdsspec.Call.t) -> c.name = "steal" && c.ret = Some v)
                       info.concurrent)
                   (Il.to_list st));
    }
  in
  let steal_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.front st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_front st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      (* empty-handed steal: genuinely empty, or it lost the race for the
         front element to a concurrent steal or take *)
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret <> -1 then true
            else
              s_ret = Some (-1)
              || List.exists
                   (fun (c : Cdsspec.Call.t) ->
                     (c.name = "steal" || c.name = "take") && c.ret = s_ret)
                   info.concurrent);
    }
  in
  let owner_rules =
    [
      { Spec.first = "push"; second = "push"; requires_order = (fun _ _ -> true) };
      { Spec.first = "take"; second = "take"; requires_order = (fun _ _ -> true) };
      { Spec.first = "push"; second = "take"; requires_order = (fun _ _ -> true) };
    ]
  in
  Spec.Packed
    {
      name = "chase-lev-deque";
      initial = (fun () -> Il.empty);
      methods = [ ("push", push_spec); ("take", take_spec); ("steal", steal_spec) ];
      admissibility = owner_rules;
      accounting =
        { spec_lines = 16; ordering_point_lines = 3; admissibility_lines = 3; api_methods = 3 };
    }

(* The paper's bug-finding test: the owner pushes 3 and takes 2 while a
   thief steals twice; capacity 2 makes the third push resize. *)
let test_push_take_steal ords () =
  let q = create ~capacity:2 ~init_resize:false () in
  let thief =
    P.spawn (fun () ->
        ignore (steal ords q);
        ignore (steal ords q))
  in
  push ords q 1;
  push ords q 2;
  push ords q 3;
  ignore (take ords q);
  ignore (take ords q);
  P.join thief

let test_small ords () =
  let q = create ~capacity:2 ~init_resize:false () in
  let thief = P.spawn (fun () -> ignore (steal ords q)) in
  push ords q 1;
  push ords q 2;
  ignore (take ords q);
  P.join thief

(* take and steal race for the single remaining element: exercises both
   seq_cst CASes on top and the seq_cst fences *)
let test_last_element ords () =
  let q = create ~capacity:2 ~init_resize:false () in
  push ords q 1;
  let thief = P.spawn (fun () -> ignore (steal ords q)) in
  ignore (take ords q);
  P.join thief

let test_resize_race ords () =
  let q = create ~capacity:1 ~init_resize:false () in
  let thief = P.spawn (fun () -> ignore (steal ords q)) in
  push ords q 1;
  push ords q 2;
  P.join thief

let benchmark =
  Benchmark.make
    ~scheduler:{ Mc.Scheduler.default_config with loop_bound = 4 }
    ~name:"Chase-Lev Deque" ~spec ~sites
    [
      ("small", test_small);
      ("last-element", test_last_element);
      ("resize-race", test_resize_race);
      ("push-take-steal", test_push_take_steal);
    ]
