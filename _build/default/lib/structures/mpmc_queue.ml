module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Il = Cdsspec.Seq_state.Int_list
open C11.Memory_order

(* Cell layout: [seq; data]; cells are consecutive pairs after the
   header. Queue layout: [enq_pos; deq_pos; cells...]. *)
type t = { base : P.loc; capacity : int }

let f_enq_pos q = q.base
let f_deq_pos q = q.base + 1
let f_cell_seq q i = q.base + 2 + (2 * (i mod q.capacity))
let f_cell_data q i = f_cell_seq q i + 1

let sites =
  [
    Ords.site "enq_load_pos" For_load Relaxed;
    Ords.site "enq_load_seq" For_load Acquire;
    Ords.site "enq_cas_pos" For_rmw Acq_rel;
    Ords.site "enq_store_seq" For_store Release;
    Ords.site "deq_load_pos" For_load Relaxed;
    Ords.site "deq_load_seq" For_load Acquire;
    Ords.site "deq_cas_pos" For_rmw Acq_rel;
    Ords.site "deq_store_seq" For_store Release;
  ]

let create capacity =
  let base = P.malloc (2 + (2 * capacity)) in
  P.store Relaxed base 0;
  P.store Relaxed (base + 1) 0;
  let q = { base; capacity } in
  for i = 0 to capacity - 1 do
    P.store Relaxed (f_cell_seq q i) i;
    P.store Relaxed (f_cell_data q i) 0
  done;
  q

let o = Ords.get

let enq ords q value =
  let result =
    A.api_call ~obj:q.base ~name:"enq" ~args:[ value ] (fun () ->
        let rec attempt () =
          let pos = P.load ~site:"enq_load_pos" (o ords "enq_load_pos") (f_enq_pos q) in
          let s = P.load ~site:"enq_load_seq" (o ords "enq_load_seq") (f_cell_seq q pos) in
          if s = pos then begin
            if
              P.cas ~site:"enq_cas_pos" (o ords "enq_cas_pos") (f_enq_pos q) ~expected:pos
                ~desired:(pos + 1)
            then begin
              A.op_define ();
              (* we own cell pos for this epoch *)
              P.store Relaxed (f_cell_data q pos) value;
              P.store ~site:"enq_store_seq" (o ords "enq_store_seq") (f_cell_seq q pos) (pos + 1);
              A.op_define ();
              Some 1
            end
            else attempt ()
          end
          else if s < pos then Some 0 (* full *)
          else attempt ()
        in
        attempt ())
  in
  result = Some 1

let deq ords q =
  match
    A.api_call ~obj:q.base ~name:"deq" ~args:[] (fun () ->
        let rec attempt () =
          let pos = P.load ~site:"deq_load_pos" (o ords "deq_load_pos") (f_deq_pos q) in
          let s = P.load ~site:"deq_load_seq" (o ords "deq_load_seq") (f_cell_seq q pos) in
          A.op_clear_define ();
          if s = pos + 1 then begin
            if
              P.cas ~site:"deq_cas_pos" (o ords "deq_cas_pos") (f_deq_pos q) ~expected:pos
                ~desired:(pos + 1)
            then begin
              A.op_define ();
              let v = P.load Relaxed (f_cell_data q pos) in
              P.store ~site:"deq_store_seq" (o ords "deq_store_seq") (f_cell_seq q pos)
                (pos + q.capacity);
              Some v
            end
            else attempt ()
          end
          else if s < pos + 1 then Some (-1) (* empty *)
          else attempt ()
        in
        attempt ())
  with
  | Some v -> v
  | None -> -1

let spec =
  let enq_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            if c_ret = 1 then (Il.push_back (Cdsspec.Call.arg info.call 0) st, Some 1)
            else (st, Some 0));
    }
  in
  let deq_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.front st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_front st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret = -1 then s_ret = Some (-1) else true);
    }
  in
  (* @Admit: deq <-> enq (M1->C_RET != -1 && M1->C_RET == M2->val):
     dequeuing a value requires being ordered with its enqueue *)
  let deq_of_enq =
    {
      Spec.first = "deq";
      second = "enq";
      requires_order =
        (fun d e -> Cdsspec.Call.ret_or (-1) d <> -1
                    && Cdsspec.Call.ret_or (-1) d = Cdsspec.Call.arg e 0);
    }
  in
  Spec.Packed
    {
      name = "mpmc-queue";
      initial = (fun () -> Il.empty);
      methods = [ ("enq", enq_spec); ("deq", deq_spec) ];
      admissibility = [ deq_of_enq ];
      accounting =
        { spec_lines = 13; ordering_point_lines = 4; admissibility_lines = 1; api_methods = 2 };
    }

let test_1enq_1deq ords () =
  let q = create 2 in
  let t1 = P.spawn (fun () -> ignore (enq ords q 1)) in
  let t2 = P.spawn (fun () -> ignore (deq ords q)) in
  P.join t1;
  P.join t2

let test_2enq_2deq ords () =
  let q = create 2 in
  let t1 =
    P.spawn (fun () ->
        ignore (enq ords q 1);
        ignore (enq ords q 2))
  in
  let t2 =
    P.spawn (fun () ->
        ignore (deq ords q);
        ignore (deq ords q))
  in
  P.join t1;
  P.join t2

let test_racing_deqs ords () =
  let q = create 2 in
  ignore (enq ords q 1);
  ignore (enq ords q 2);
  let t1 = P.spawn (fun () -> ignore (deq ords q)) in
  let t2 = P.spawn (fun () -> ignore (deq ords q)) in
  P.join t1;
  P.join t2

let test_racing_enqs ords () =
  let q = create 2 in
  let t1 = P.spawn (fun () -> ignore (enq ords q 1)) in
  let t2 = P.spawn (fun () -> ignore (enq ords q 2)) in
  P.join t1;
  P.join t2;
  ignore (deq ords q)

let benchmark =
  Benchmark.make ~name:"MPMC Queue" ~spec ~sites
    [
      ("1enq-1deq", test_1enq_1deq);
      ("2enq-2deq", test_2enq_2deq);
      ("racing-deqs", test_racing_deqs);
      ("racing-enqs", test_racing_enqs);
    ]
