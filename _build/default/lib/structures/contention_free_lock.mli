(** A simple test-and-set spinlock, used as the paper's "contention-free
    lock" benchmark: its unit tests exercise uncontended handoffs plus a
    mild contention case. *)

type t

val create : unit -> t
val lock : Ords.t -> t -> unit
val unlock : Ords.t -> t -> unit

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
