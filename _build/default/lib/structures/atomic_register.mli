(** The C/C++11 atomic register accessed with relaxed operations —
    the paper's section 2.2 example. Its specification is the canonical
    use of constrained non-determinism: a read may return the most recent
    write of one of its justifying prefixes, or the value of a concurrent
    write, and nothing else. *)

type t

val create : unit -> t
val write : Ords.t -> t -> int -> unit
val read : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
