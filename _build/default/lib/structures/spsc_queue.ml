module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Il = Cdsspec.Seq_state.Int_list
open C11.Memory_order

(* Node layout: [next; data]. head/tail are non-atomic cells: each is
   touched by a single thread (consumer/producer respectively). *)
let f_next node = node
let f_data node = node + 1

type t = { head : P.loc; tail : P.loc }

let sites =
  [
    Ords.site "enq_store_next" For_store Release;
    Ords.site "deq_load_next" For_load Acquire;
  ]

let new_node value =
  let n = P.malloc 2 in
  P.store Relaxed (f_next n) 0;
  P.na_store (f_data n) value;
  n

let create () =
  let dummy = new_node 0 in
  let head = P.malloc 1 in
  let tail = P.malloc 1 in
  P.na_store head dummy;
  P.na_store tail dummy;
  { head; tail }

let enq ords q value =
  A.api_proc ~obj:q.head ~name:"enq" ~args:[ value ] (fun () ->
      let n = new_node value in
      let t = P.na_load q.tail in
      P.store ~site:"enq_store_next" (Ords.get ords "enq_store_next") (f_next t) n;
      A.op_define ();
      P.na_store q.tail n)

let deq ords q =
  A.api_fun ~obj:q.head ~name:"deq" ~args:[] (fun () ->
      let h = P.na_load q.head in
      let n = P.load ~site:"deq_load_next" (Ords.get ords "deq_load_next") (f_next h) in
      A.op_define ();
      if n = 0 then -1
      else begin
        let value = P.na_load (f_data n) in
        P.na_store q.head n;
        value
      end)

let spec =
  let enq_spec =
    {
      Spec.default_method with
      side_effect =
        Some (fun st (info : Spec.info) -> (Il.push_back (Cdsspec.Call.arg info.call 0) st, None));
    }
  in
  let deq_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.front st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_front st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret = -1 then s_ret = Some (-1) else true);
    }
  in
  (* SPSC usage contract: all enqueues are one thread, all dequeues
     another, so same-kind calls must be ordered. *)
  let same_kind_ordered =
    [
      { Spec.first = "enq"; second = "enq"; requires_order = (fun _ _ -> true) };
      { Spec.first = "deq"; second = "deq"; requires_order = (fun _ _ -> true) };
    ]
  in
  Spec.Packed
    {
      name = "spsc-queue";
      initial = (fun () -> Il.empty);
      methods = [ ("enq", enq_spec); ("deq", deq_spec) ];
      admissibility = same_kind_ordered;
      accounting =
        { spec_lines = 12; ordering_point_lines = 2; admissibility_lines = 2; api_methods = 2 };
    }

let test_1enq_1deq ords () =
  let q = create () in
  let producer = P.spawn (fun () -> enq ords q 1) in
  let consumer = P.spawn (fun () -> ignore (deq ords q)) in
  P.join producer;
  P.join consumer

let test_2enq_2deq ords () =
  let q = create () in
  let producer =
    P.spawn (fun () ->
        enq ords q 1;
        enq ords q 2)
  in
  let consumer =
    P.spawn (fun () ->
        ignore (deq ords q);
        ignore (deq ords q))
  in
  P.join producer;
  P.join consumer

let benchmark =
  Benchmark.make ~name:"SPSC Queue" ~spec ~sites
    [ ("1enq-1deq", test_1enq_1deq); ("2enq-2deq", test_2enq_2deq) ]
