(** Peterson's two-thread mutual-exclusion algorithm — the textbook
    example of an algorithm that is only correct under sequential
    consistency. The flag stores and the cross-flag load must all be
    seq_cst; weakening any of them admits both threads into the critical
    section, which the injection experiment catches as a data race and a
    lock-specification violation. Thread slots are 0 and 1. *)

type t

val create : unit -> t

(** [lock ords t ~slot] with [slot] 0 or 1; each slot owned by one
    thread. *)
val lock : Ords.t -> t -> slot:int -> unit

val unlock : Ords.t -> t -> slot:int -> unit

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
