module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Il = Cdsspec.Seq_state.Int_list
open C11.Memory_order

(* Layout: [head; tail; slot_0 .. slot_{cap-1}]; slots are non-atomic —
   index publication is the only synchronization, as in the original. *)
type t = { base : P.loc; capacity : int }

let f_head q = q.base
let f_tail q = q.base + 1
let f_slot q i = q.base + 2 + (i mod q.capacity)

let sites =
  [
    Ords.site "enq_load_head" For_load Acquire;
    Ords.site "enq_load_tail" For_load Relaxed;  (* producer-owned *)
    Ords.site "enq_store_tail" For_store Release;
    Ords.site "deq_load_tail" For_load Acquire;
    Ords.site "deq_load_head" For_load Relaxed;  (* consumer-owned *)
    Ords.site "deq_store_head" For_store Release;
  ]

let create capacity =
  let base = P.malloc ~init:0 (2 + capacity) in
  { base; capacity }

let o = Ords.get

let enq ords q value =
  A.api_call ~obj:q.base ~name:"enq" ~args:[ value; q.capacity ] (fun () ->
      let tail = P.load ~site:"enq_load_tail" (o ords "enq_load_tail") (f_tail q) in
      let head = P.load ~site:"enq_load_head" (o ords "enq_load_head") (f_head q) in
      if tail - head >= q.capacity then begin
        A.op_clear_define ();
        Some 0 (* full *)
      end
      else begin
        P.na_store (f_slot q tail) value;
        P.store ~site:"enq_store_tail" (o ords "enq_store_tail") (f_tail q) (tail + 1);
        A.op_clear_define ();
        Some 1
      end)
  = Some 1

let deq ords q =
  match
    A.api_call ~obj:q.base ~name:"deq" ~args:[] (fun () ->
        let head = P.load ~site:"deq_load_head" (o ords "deq_load_head") (f_head q) in
        let tail = P.load ~site:"deq_load_tail" (o ords "deq_load_tail") (f_tail q) in
        if tail = head then begin
          A.op_clear_define ();
          Some (-1) (* empty *)
        end
        else begin
          let v = P.na_load (f_slot q head) in
          P.store ~site:"deq_store_head" (o ords "deq_store_head") (f_head q) (head + 1);
          A.op_clear_define ();
          Some v
        end)
  with
  | Some v -> v
  | None -> -1

let spec =
  let enq_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            if c_ret = 1 then (Il.push_back (Cdsspec.Call.arg info.call 0) st, Some 1)
            else (st, Some 0));
      (* full may be reported spuriously: the consumer's progress was not
         yet visible *)
      postcondition = Some (fun _st _info ~s_ret:_ -> true);
      justifying_postcondition =
        Some
          (fun st (info : Spec.info) ~s_ret:_ ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            (* "full" is justified by a prefix holding >= capacity items
               (the capacity travels as the call's second argument) *)
            c_ret = 1 || Il.length st >= Cdsspec.Call.arg info.call 1);
    }
  in
  let deq_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.front st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_front st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret = -1 then s_ret = Some (-1) else true);
    }
  in
  let same_kind_ordered =
    [
      { Spec.first = "enq"; second = "enq"; requires_order = (fun _ _ -> true) };
      { Spec.first = "deq"; second = "deq"; requires_order = (fun _ _ -> true) };
    ]
  in
  Spec.Packed
    {
      name = "lamport-ring";
      initial = (fun () -> Il.empty);
      methods = [ ("enq", enq_spec); ("deq", deq_spec) ];
      admissibility = same_kind_ordered;
      accounting =
        { spec_lines = 13; ordering_point_lines = 2; admissibility_lines = 2; api_methods = 2 };
    }

let test_1enq_1deq ords () =
  let q = create 2 in
  let p = P.spawn (fun () -> ignore (enq ords q 1)) in
  let c = P.spawn (fun () -> ignore (deq ords q)) in
  P.join p;
  P.join c

let test_wraparound ords () =
  let q = create 2 in
  let p =
    P.spawn (fun () ->
        ignore (enq ords q 1);
        ignore (enq ords q 2);
        ignore (enq ords q 3))
  in
  let c =
    P.spawn (fun () ->
        ignore (deq ords q);
        ignore (deq ords q))
  in
  P.join p;
  P.join c

let benchmark =
  Benchmark.make ~name:"Lamport Ring" ~spec ~sites
    [ ("1enq-1deq", test_1enq_1deq); ("wraparound", test_wraparound) ]
