module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Il = Cdsspec.Seq_state.Int_list
open C11.Memory_order

(* Node layout: [next; data]; 0 is NULL. *)
let f_next node = node
let f_data node = node + 1

type t = { top : P.loc }

let sites =
  [
    Ords.site "push_load_top" For_load Relaxed;
    (* acq_rel on both CASes: every successful operation synchronizes
       with the one whose top value it consumed, so the RMW chain on top
       totally orders the stack's commits — which the strict per-history
       LIFO specification requires. (The checker found the weaker
       release-only variant inadequate: a push that does not acquire a
       preceding pop admits a history interleaving the pop after it.) *)
    Ords.site "push_cas_top" For_rmw Acq_rel;
    Ords.site "pop_load_top" For_load Acquire;
    Ords.site "pop_load_next" For_load Relaxed;
    Ords.site "pop_cas_top" For_rmw Acq_rel;
  ]

let create () =
  let top = P.malloc 1 in
  P.store Relaxed top 0;
  { top }

let o = Ords.get

let push ords s value =
  A.api_proc ~obj:s.top ~name:"push" ~args:[ value ] (fun () ->
      let n = P.malloc 2 in
      P.na_store (f_data n) value;
      let rec attempt () =
        let t = P.load ~site:"push_load_top" (o ords "push_load_top") s.top in
        P.store Relaxed (f_next n) t;
        if P.cas ~site:"push_cas_top" (o ords "push_cas_top") s.top ~expected:t ~desired:n then
          A.op_define ()
        else attempt ()
      in
      attempt ())

let pop ords s =
  A.api_fun ~obj:s.top ~name:"pop" ~args:[] (fun () ->
      let rec attempt () =
        let t = P.load ~site:"pop_load_top" (o ords "pop_load_top") s.top in
        A.op_clear_define ();
        if t = 0 then -1
        else begin
          let next = P.load ~site:"pop_load_next" (o ords "pop_load_next") (f_next t) in
          if P.cas ~site:"pop_cas_top" (o ords "pop_cas_top") s.top ~expected:t ~desired:next then begin
            A.op_clear_define ();
            P.na_load (f_data t)
          end
          else attempt ()
        end
      in
      attempt ())

let spec =
  let push_spec =
    {
      Spec.default_method with
      side_effect =
        Some (fun st (info : Spec.info) -> (Il.push_front (Cdsspec.Call.arg info.call 0) st, None));
    }
  in
  let pop_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.front st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_front st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret = -1 then s_ret = Some (-1) else true);
    }
  in
  Spec.Packed
    {
      name = "treiber-stack";
      initial = (fun () -> Il.empty);
      methods = [ ("push", push_spec); ("pop", pop_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 10; ordering_point_lines = 2; admissibility_lines = 0; api_methods = 2 };
    }

let test_1push_1pop ords () =
  let s = create () in
  let t1 = P.spawn (fun () -> push ords s 1) in
  let t2 = P.spawn (fun () -> ignore (pop ords s)) in
  P.join t1;
  P.join t2

let test_2push_2pop ords () =
  let s = create () in
  let t1 =
    P.spawn (fun () ->
        push ords s 1;
        push ords s 2)
  in
  let t2 =
    P.spawn (fun () ->
        ignore (pop ords s);
        ignore (pop ords s))
  in
  P.join t1;
  P.join t2

let test_racing_pops ords () =
  let s = create () in
  push ords s 1;
  push ords s 2;
  let t1 = P.spawn (fun () -> ignore (pop ords s)) in
  let t2 = P.spawn (fun () -> ignore (pop ords s)) in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"Treiber Stack" ~spec ~sites
    [
      ("1push-1pop", test_1push_1pop);
      ("2push-2pop", test_2push_2pop);
      ("racing-pops", test_racing_pops);
    ]
