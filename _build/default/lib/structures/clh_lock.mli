(** CLH queue lock: contenders enqueue by swapping a fresh node into the
    tail and spin on their *predecessor's* flag (where MCS spins on its
    own node). Handoff is just the predecessor clearing its flag. *)

type t

val create : unit -> t

(** An acquisition handle: allocate per lock/unlock pair. *)
type handle

val lock : Ords.t -> t -> handle
val unlock : Ords.t -> t -> handle -> unit

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
