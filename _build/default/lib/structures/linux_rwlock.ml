module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

let rw_lock_bias = 0x100

type t = { lock : P.loc; data : P.loc }

let sites =
  [
    Ords.site "readlock_fs" For_rmw Acquire;
    Ords.site "readlock_restore" For_rmw Relaxed;
    Ords.site "readlock_spin" For_load Relaxed;
    Ords.site "readunlock_fa" For_rmw Release;
    Ords.site "writelock_fs" For_rmw Acquire;
    Ords.site "writelock_restore" For_rmw Relaxed;
    Ords.site "writelock_spin" For_load Relaxed;
    Ords.site "writeunlock_fa" For_rmw Release;
    Ords.site "trylock_fs" For_rmw Acquire;
    Ords.site "trylock_restore" For_rmw Relaxed;
  ]

let create () =
  let lock = P.malloc 1 in
  let data = P.malloc ~init:0 1 in
  P.store Relaxed lock rw_lock_bias;
  { lock; data }

let o = Ords.get

let read_lock ords l =
  A.api_proc ~obj:l.lock ~name:"read_lock" ~args:[] (fun () ->
      let rec attempt () =
        let prior = P.fetch_add ~site:"readlock_fs" (o ords "readlock_fs") l.lock (-1) in
        if prior > 0 then A.op_clear_define ()
        else begin
          ignore (P.fetch_add ~site:"readlock_restore" (o ords "readlock_restore") l.lock 1);
          let rec spin () =
            if P.load ~site:"readlock_spin" (o ords "readlock_spin") l.lock <= 0 then spin ()
          in
          spin ();
          attempt ()
        end
      in
      attempt ())

let read_unlock ords l =
  A.api_proc ~obj:l.lock ~name:"read_unlock" ~args:[] (fun () ->
      ignore (P.fetch_add ~site:"readunlock_fa" (o ords "readunlock_fa") l.lock 1);
      A.op_define ())

let write_lock ords l =
  A.api_proc ~obj:l.lock ~name:"write_lock" ~args:[] (fun () ->
      let rec attempt () =
        let prior =
          P.fetch_add ~site:"writelock_fs" (o ords "writelock_fs") l.lock (-rw_lock_bias)
        in
        if prior = rw_lock_bias then A.op_clear_define ()
        else begin
          ignore
            (P.fetch_add ~site:"writelock_restore" (o ords "writelock_restore") l.lock rw_lock_bias);
          let rec spin () =
            if P.load ~site:"writelock_spin" (o ords "writelock_spin") l.lock <> rw_lock_bias then
              spin ()
          in
          spin ();
          attempt ()
        end
      in
      attempt ())

let write_unlock ords l =
  A.api_proc ~obj:l.lock ~name:"write_unlock" ~args:[] (fun () ->
      ignore (P.fetch_add ~site:"writeunlock_fa" (o ords "writeunlock_fa") l.lock rw_lock_bias);
      A.op_define ())

let write_trylock ords l =
  A.api_fun ~obj:l.lock ~name:"write_trylock" ~args:[] (fun () ->
      let prior = P.fetch_add ~site:"trylock_fs" (o ords "trylock_fs") l.lock (-rw_lock_bias) in
      A.op_define ();
      if prior = rw_lock_bias then 1
      else begin
        (* transient side effect: restore the bias *)
        ignore (P.fetch_add ~site:"trylock_restore" (o ords "trylock_restore") l.lock rw_lock_bias);
        0
      end)

(* Sequential state: writer held + reader count. *)
type rw_state = { writer : bool; readers : int }

let spec =
  let read_lock_spec =
    {
      Spec.default_method with
      precondition = Some (fun st _ -> not st.writer);
      side_effect = Some (fun st _ -> ({ st with readers = st.readers + 1 }, None));
    }
  in
  let read_unlock_spec =
    {
      Spec.default_method with
      precondition = Some (fun st _ -> st.readers > 0);
      side_effect = Some (fun st _ -> ({ st with readers = st.readers - 1 }, None));
    }
  in
  let write_lock_spec =
    {
      Spec.default_method with
      precondition = Some (fun st _ -> (not st.writer) && st.readers = 0);
      side_effect = Some (fun st _ -> ({ st with writer = true }, None));
    }
  in
  let write_unlock_spec =
    {
      Spec.default_method with
      precondition = Some (fun st _ -> st.writer);
      side_effect = Some (fun st _ -> ({ st with writer = false }, None));
    }
  in
  let write_trylock_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = if st.writer || st.readers > 0 then 0 else 1 in
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            let st = if c_ret = 1 then { st with writer = true } else st in
            (st, Some s_ret));
      (* success must be sequentially possible; failure may be spurious *)
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            c_ret = 0 || s_ret = Some 1);
      (* a spurious failure must be explainable: either some justifying
         prefix leaves the lock busy, or another lock operation ran
         concurrently (racing trylocks' transient side effects can make
         both fail) *)
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            if c_ret = 1 then true
            else
              s_ret = Some 0
              || List.exists
                   (fun (c : Cdsspec.Call.t) -> c.name <> "read_unlock" && c.name <> "write_unlock")
                   info.concurrent);
    }
  in
  Spec.Packed
    {
      name = "linux-rwlock";
      initial = (fun () -> { writer = false; readers = 0 });
      methods =
        [
          ("read_lock", read_lock_spec);
          ("read_unlock", read_unlock_spec);
          ("write_lock", write_lock_spec);
          ("write_unlock", write_unlock_spec);
          ("write_trylock", write_trylock_spec);
        ];
      admissibility = [];
      accounting =
        { spec_lines = 18; ordering_point_lines = 5; admissibility_lines = 0; api_methods = 5 };
    }

let critical_write l =
  let v = P.na_load l.data in
  P.na_store l.data (v + 1)

let critical_read l = ignore (P.na_load l.data)

let test_two_writers ords () =
  let l = create () in
  let writer () =
    write_lock ords l;
    critical_write l;
    write_unlock ords l
  in
  let t1 = P.spawn writer in
  let t2 = P.spawn writer in
  P.join t1;
  P.join t2

let test_reader_writer ords () =
  let l = create () in
  let t1 =
    P.spawn (fun () ->
        write_lock ords l;
        critical_write l;
        write_unlock ords l)
  in
  let t2 =
    P.spawn (fun () ->
        read_lock ords l;
        critical_read l;
        read_unlock ords l)
  in
  P.join t1;
  P.join t2

let test_trylock ords () =
  let l = create () in
  let t1 =
    P.spawn (fun () ->
        write_lock ords l;
        critical_write l;
        write_unlock ords l)
  in
  let t2 =
    P.spawn (fun () ->
        if write_trylock ords l = 1 then begin
          critical_write l;
          write_unlock ords l
        end)
  in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"Linux RW Lock" ~spec ~sites
    [
      ("two-writers", test_two_writers);
      ("reader-writer", test_reader_writer);
      ("trylock", test_trylock);
    ]
