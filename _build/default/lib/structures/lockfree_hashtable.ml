module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Im = Cdsspec.Seq_state.Int_map
open C11.Memory_order

(* Slot layout: [key; value] pairs in one block. *)
type t = { base : P.loc; capacity : int }

let s_key t i = t.base + (2 * (i mod t.capacity))
let s_value t i = s_key t i + 1

let sites =
  [
    Ords.site "put_load_key" For_load Seq_cst;
    Ords.site "put_cas_key" For_rmw Seq_cst;
    Ords.site "put_store_value" For_store Seq_cst;
    Ords.site "get_load_key" For_load Seq_cst;
    Ords.site "get_load_value" For_load Seq_cst;
  ]

let create capacity =
  let base = P.malloc ~init:0 (2 * capacity) in
  { base; capacity }

let o = Ords.get

let put ords t ~key ~value =
  A.api_proc ~obj:t.base ~name:"put" ~args:[ key; value ] (fun () ->
      let rec probe i =
        if i >= t.capacity then P.check false "hashtable full"
        else begin
          let k = P.load ~site:"put_load_key" (o ords "put_load_key") (s_key t (key + i)) in
          if k = key then begin
            P.store ~site:"put_store_value" (o ords "put_store_value") (s_value t (key + i)) value;
            A.op_clear_define ()
          end
          else if k = 0 then begin
            if
              P.cas ~site:"put_cas_key" (o ords "put_cas_key") (s_key t (key + i)) ~expected:0
                ~desired:key
            then begin
              P.store ~site:"put_store_value" (o ords "put_store_value") (s_value t (key + i)) value;
              A.op_clear_define ()
            end
            else probe i (* someone claimed it; re-read this slot *)
          end
          else probe (i + 1)
        end
      in
      probe 0)

let get ords t ~key =
  A.api_fun ~obj:t.base ~name:"get" ~args:[ key ] (fun () ->
      let rec probe i =
        if i >= t.capacity then -1 (* full table, key absent *)
        else begin
          let k = P.load ~site:"get_load_key" (o ords "get_load_key") (s_key t (key + i)) in
          A.op_clear_define ();
          if k = key then begin
            let v = P.load ~site:"get_load_value" (o ords "get_load_value") (s_value t (key + i)) in
            A.op_clear_define ();
            v
          end
          else if k = 0 then 0 (* absent *)
          else probe (i + 1)
        end
      in
      let r = probe 0 in
      if r = -1 then 0 else r)

let spec =
  let put_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            ( Im.put ~key:(Cdsspec.Call.arg info.call 0) ~value:(Cdsspec.Call.arg info.call 1) st,
              None ));
    }
  in
  let get_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            (st, Some (Im.get_or 0 ~key:(Cdsspec.Call.arg info.call 0) st)));
      (* fully deterministic: seq_cst ordering points totally order
         same-key operations *)
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            Some c_ret = s_ret);
    }
  in
  Spec.Packed
    {
      name = "lockfree-hashtable";
      initial = (fun () -> Im.empty);
      methods = [ ("put", put_spec); ("get", get_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 8; ordering_point_lines = 4; admissibility_lines = 0; api_methods = 2 };
    }

let test_put_get ords () =
  let t = create 2 in
  let t1 = P.spawn (fun () -> put ords t ~key:1 ~value:7) in
  let t2 = P.spawn (fun () -> ignore (get ords t ~key:1)) in
  P.join t1;
  P.join t2

let test_two_keys ords () =
  let t = create 4 in
  let t1 =
    P.spawn (fun () ->
        put ords t ~key:1 ~value:7;
        ignore (get ords t ~key:2))
  in
  let t2 =
    P.spawn (fun () ->
        put ords t ~key:2 ~value:9;
        ignore (get ords t ~key:1))
  in
  P.join t1;
  P.join t2

let test_update ords () =
  let t = create 2 in
  put ords t ~key:1 ~value:5;
  let t1 = P.spawn (fun () -> put ords t ~key:1 ~value:7) in
  let t2 = P.spawn (fun () -> ignore (get ords t ~key:1)) in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"Lockfree Hashtable" ~spec ~sites
    [ ("put-get", test_put_get); ("two-keys", test_two_keys); ("update", test_update) ]
