lib/structures/linux_rwlock.mli: Benchmark Cdsspec Ords
