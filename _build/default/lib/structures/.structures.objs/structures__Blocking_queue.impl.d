lib/structures/blocking_queue.ml: Benchmark C11 Cdsspec Mc Ords
