lib/structures/lockfree_hashtable.ml: Benchmark C11 Cdsspec Mc Ords
