lib/structures/rcu_grace.mli: Benchmark Cdsspec Ords
