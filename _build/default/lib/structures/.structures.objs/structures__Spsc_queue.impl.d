lib/structures/spsc_queue.ml: Benchmark C11 Cdsspec Mc Ords
