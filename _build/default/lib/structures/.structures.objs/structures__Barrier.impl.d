lib/structures/barrier.ml: Benchmark C11 Cdsspec Mc Ords
