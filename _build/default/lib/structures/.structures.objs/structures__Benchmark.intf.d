lib/structures/benchmark.mli: Cdsspec Mc Ords
