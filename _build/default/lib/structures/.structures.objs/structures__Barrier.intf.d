lib/structures/barrier.mli: Benchmark Cdsspec Ords
