lib/structures/ticket_lock.ml: Benchmark C11 Cdsspec List Mc Ords
