lib/structures/chase_lev_deque.mli: Benchmark Cdsspec Ords
