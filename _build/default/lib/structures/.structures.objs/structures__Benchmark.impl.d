lib/structures/benchmark.ml: Cdsspec List Mc Ords
