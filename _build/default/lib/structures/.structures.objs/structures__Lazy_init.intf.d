lib/structures/lazy_init.mli: Benchmark Cdsspec Ords
