lib/structures/rcu.mli: Benchmark Cdsspec Ords
