lib/structures/treiber_stack.mli: Benchmark Cdsspec Ords
