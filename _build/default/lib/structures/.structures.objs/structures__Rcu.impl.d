lib/structures/rcu.ml: Benchmark C11 Cdsspec List Mc Ords
