lib/structures/lockfree_hashtable.mli: Benchmark Cdsspec Ords
