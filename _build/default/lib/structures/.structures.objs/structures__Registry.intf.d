lib/structures/registry.mli: Benchmark
