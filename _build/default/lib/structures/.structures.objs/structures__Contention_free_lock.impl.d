lib/structures/contention_free_lock.ml: Benchmark C11 Cdsspec Mc Ords Ticket_lock
