lib/structures/lamport_ring.mli: Benchmark Cdsspec Ords
