lib/structures/clh_lock.ml: Benchmark C11 Cdsspec Mc Ords Ticket_lock
