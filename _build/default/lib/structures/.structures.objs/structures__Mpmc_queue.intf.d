lib/structures/mpmc_queue.mli: Benchmark Cdsspec Ords
