lib/structures/seqlock.ml: Benchmark C11 Cdsspec Mc Ords
