lib/structures/treiber_stack.ml: Benchmark C11 Cdsspec Mc Ords
