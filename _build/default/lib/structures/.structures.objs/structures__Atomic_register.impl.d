lib/structures/atomic_register.ml: Benchmark C11 Cdsspec List Mc Ords
