lib/structures/ords.mli: C11
