lib/structures/mcs_lock.mli: Benchmark Cdsspec Ords
