lib/structures/lockfree_set.ml: Benchmark C11 Cdsspec List Mc Ords
