lib/structures/ords.ml: C11 Hashtbl List
