lib/structures/seqlock.mli: Benchmark Cdsspec Ords
