lib/structures/chase_lev_deque.ml: Benchmark C11 Cdsspec List Mc Ords
