lib/structures/spsc_queue.mli: Benchmark Cdsspec Ords
