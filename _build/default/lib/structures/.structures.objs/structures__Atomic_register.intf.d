lib/structures/atomic_register.mli: Benchmark Cdsspec Ords
