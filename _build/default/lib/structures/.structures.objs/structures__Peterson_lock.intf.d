lib/structures/peterson_lock.mli: Benchmark Cdsspec Ords
