lib/structures/dekker_lock.mli: Benchmark Cdsspec Ords
