lib/structures/linux_rwlock.ml: Benchmark C11 Cdsspec List Mc Ords
