lib/structures/rcu_grace.ml: Benchmark C11 Cdsspec List Mc Ords
