lib/structures/blocking_queue.mli: Benchmark Cdsspec Ords
