lib/structures/lockfree_set.mli: Benchmark Cdsspec Ords
