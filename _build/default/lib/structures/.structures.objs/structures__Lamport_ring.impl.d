lib/structures/lamport_ring.ml: Benchmark C11 Cdsspec Mc Ords
