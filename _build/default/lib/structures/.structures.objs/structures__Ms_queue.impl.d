lib/structures/ms_queue.ml: Benchmark C11 Cdsspec List Mc Ords
