lib/structures/contention_free_lock.mli: Benchmark Cdsspec Ords
