lib/structures/ms_queue.mli: Benchmark Cdsspec Ords
