lib/structures/lazy_init.ml: Benchmark C11 Cdsspec Mc Ords
