lib/structures/mpmc_queue.ml: Benchmark C11 Cdsspec Mc Ords
