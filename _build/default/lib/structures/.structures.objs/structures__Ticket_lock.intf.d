lib/structures/ticket_lock.mli: Benchmark Cdsspec Ords
