lib/structures/clh_lock.mli: Benchmark Cdsspec Ords
