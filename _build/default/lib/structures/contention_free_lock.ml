module P = Mc.Program
module A = Cdsspec.Annotations
open C11.Memory_order

type t = { flag : P.loc; data : P.loc }

let sites =
  [
    Ords.site "lock_xchg" For_rmw Acquire;
    Ords.site "unlock_store" For_store Release;
  ]

let create () =
  let flag = P.malloc 1 in
  let data = P.malloc ~init:0 1 in
  P.store Relaxed flag 0;
  { flag; data }

let lock ords l =
  A.api_proc ~obj:l.flag ~name:"lock" ~args:[] (fun () ->
      let rec spin () =
        let prev = P.exchange ~site:"lock_xchg" (Ords.get ords "lock_xchg") l.flag 1 in
        A.op_clear_define ();
        if prev = 1 then spin ()
      in
      spin ())

let unlock ords l =
  A.api_proc ~obj:l.flag ~name:"unlock" ~args:[] (fun () ->
      P.store ~site:"unlock_store" (Ords.get ords "unlock_store") l.flag 0;
      A.op_define ())

let spec =
  Ticket_lock.mutex_spec ~name:"contention-free-lock" ~lock_names:[ "lock" ]
    ~unlock_names:[ "unlock" ] ()

let critical_section (l : t) =
  let v = P.na_load l.data in
  P.na_store l.data (v + 1)

let test_uncontended ords () =
  let l = create () in
  let t1 =
    P.spawn (fun () ->
        lock ords l;
        critical_section l;
        unlock ords l;
        lock ords l;
        critical_section l;
        unlock ords l)
  in
  P.join t1

let test_handoff ords () =
  let l = create () in
  let t1 =
    P.spawn (fun () ->
        lock ords l;
        critical_section l;
        unlock ords l)
  in
  P.join t1;
  let t2 =
    P.spawn (fun () ->
        lock ords l;
        critical_section l;
        unlock ords l)
  in
  P.join t2

let test_contended ords () =
  let l = create () in
  let worker () =
    lock ords l;
    critical_section l;
    unlock ords l
  in
  let t1 = P.spawn worker in
  let t2 = P.spawn worker in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"Contention-Free Lock" ~spec ~sites
    [
      ("uncontended", test_uncontended);
      ("handoff", test_handoff);
      ("contended", test_contended);
    ]
