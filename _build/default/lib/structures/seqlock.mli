(** Sequence lock (ported for AutoMO). Writers bump the sequence number
    to odd, write, then bump to even; readers retry until they observe an
    even, unchanged sequence around their data read.

    The specification is a synchronized register: a read must return the
    value of a write in its justifying prefix — unlike a relaxed register,
    a torn read of a merely concurrent write is NOT acceptable, because a
    validated seqlock read claims a consistent snapshot. *)

type t

val create : unit -> t

(** [write ords t v] stores the snapshot [(v, v)]. Values must be small
    (< 16) so snapshots pack into one return value. *)
val write : Ords.t -> t -> int -> unit

(** Returns the packed snapshot [16*a + b]; a torn read shows up as
    [a <> b], which the specification rejects as unjustifiable. *)
val read : Ords.t -> t -> int

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
