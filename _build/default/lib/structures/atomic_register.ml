module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

type t = { cell : P.loc }

let sites =
  [ Ords.site "reg_store" For_store Relaxed; Ords.site "reg_load" For_load Relaxed ]

let create () =
  let cell = P.malloc 1 in
  P.store Relaxed cell 0;
  { cell }

let write ords t v =
  A.api_proc ~obj:t.cell ~name:"write" ~args:[ v ] (fun () ->
      P.store ~site:"reg_store" (Ords.get ords "reg_store") t.cell v;
      A.op_define ())

let read ords t =
  A.api_fun ~obj:t.cell ~name:"read" ~args:[] (fun () ->
      let v = P.load ~site:"reg_load" (Ords.get ords "reg_load") t.cell in
      A.op_define ();
      v)

let spec =
  let write_spec =
    {
      Spec.default_method with
      side_effect = Some (fun _st (info : Spec.info) -> (Cdsspec.Call.arg info.call 0, None));
    }
  in
  let read_spec =
    {
      Spec.default_method with
      side_effect = Some (fun st _ -> (st, Some st));
      postcondition = Some (fun _st _info ~s_ret:_ -> true);
      (* Definition 4's two cases, verbatim: justified by the most recent
         write of some justifying prefix, or by a concurrent write. *)
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or min_int info.call in
            Some c_ret = s_ret
            || List.exists
                 (fun (c : Cdsspec.Call.t) -> c.name = "write" && Cdsspec.Call.arg c 0 = c_ret)
                 info.concurrent);
    }
  in
  Spec.Packed
    {
      name = "atomic-register";
      initial = (fun () -> 0);
      methods = [ ("write", write_spec); ("read", read_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 6; ordering_point_lines = 2; admissibility_lines = 0; api_methods = 2 };
    }

let test_concurrent_write_read ords () =
  let r = create () in
  let t1 = P.spawn (fun () -> write ords r 1) in
  let t2 = P.spawn (fun () -> ignore (read ords r)) in
  P.join t1;
  P.join t2

let test_write_then_read ords () =
  let r = create () in
  let t1 =
    P.spawn (fun () ->
        write ords r 1;
        ignore (read ords r))
  in
  let t2 = P.spawn (fun () -> write ords r 2) in
  P.join t1;
  P.join t2

let test_two_writers ords () =
  let r = create () in
  let t1 = P.spawn (fun () -> write ords r 1) in
  let t2 = P.spawn (fun () -> write ords r 2) in
  let t3 =
    P.spawn (fun () ->
        ignore (read ords r);
        ignore (read ords r))
  in
  P.join t1;
  P.join t2;
  P.join t3

let benchmark =
  Benchmark.make ~name:"Atomic Register" ~spec ~sites
    [
      ("concurrent-write-read", test_concurrent_write_read);
      ("write-then-read", test_write_then_read);
      ("two-writers", test_two_writers);
    ]
