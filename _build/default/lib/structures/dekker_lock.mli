(** Dekker's mutual-exclusion algorithm for two threads — like Peterson's
    lock, correct only with sequentially consistent flag traffic, but
    with a different shape: a polite back-off on the turn variable
    instead of an eager tie-break. Slots are 0 and 1. *)

type t

val create : unit -> t
val lock : Ords.t -> t -> slot:int -> unit
val unlock : Ords.t -> t -> slot:int -> unit

val sites : Ords.site list
val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
