module P = Mc.Program
module A = Cdsspec.Annotations
open C11.Memory_order

(* flag.(0), flag.(1), turn; plus the critical-section data cell. *)
type t = { flag0 : P.loc; flag1 : P.loc; turn : P.loc; data : P.loc }

let sites =
  [
    Ords.site "lock_store_flag" For_store Seq_cst;
    Ords.site "lock_store_turn" For_store Seq_cst;
    Ords.site "lock_load_otherflag" For_load Seq_cst;
    Ords.site "lock_load_turn" For_load Seq_cst;
    Ords.site "unlock_store_flag" For_store Seq_cst;
  ]

let create () =
  let flag0 = P.malloc 1 in
  let flag1 = P.malloc 1 in
  let turn = P.malloc 1 in
  let data = P.malloc ~init:0 1 in
  P.store Relaxed flag0 0;
  P.store Relaxed flag1 0;
  P.store Relaxed turn 0;
  { flag0; flag1; turn; data }

let o = Ords.get

let my_flag t slot = if slot = 0 then t.flag0 else t.flag1
let other_flag t slot = if slot = 0 then t.flag1 else t.flag0

let lock ords t ~slot =
  A.api_proc ~obj:t.turn ~name:"lock" ~args:[ slot ] (fun () ->
      P.store ~site:"lock_store_flag" (o ords "lock_store_flag") (my_flag t slot) 1;
      P.store ~site:"lock_store_turn" (o ords "lock_store_turn") t.turn (1 - slot);
      let rec spin () =
        let other = P.load ~site:"lock_load_otherflag" (o ords "lock_load_otherflag") (other_flag t slot) in
        A.op_clear_define ();
        if other = 1 then begin
          let turn = P.load ~site:"lock_load_turn" (o ords "lock_load_turn") t.turn in
          A.op_clear_define ();
          if turn = 1 - slot then spin ()
        end
      in
      spin ())

let unlock ords t ~slot =
  A.api_proc ~obj:t.turn ~name:"unlock" ~args:[ slot ] (fun () ->
      P.store ~site:"unlock_store_flag" (o ords "unlock_store_flag") (my_flag t slot) 0;
      A.op_define ())

let spec = Ticket_lock.mutex_spec ~name:"peterson-lock" ~lock_names:[ "lock" ] ~unlock_names:[ "unlock" ] ()

let critical_section (t : t) =
  let v = P.na_load t.data in
  P.na_store t.data (v + 1)

let test_two_threads ords () =
  let t = create () in
  let worker slot () =
    lock ords t ~slot;
    critical_section t;
    unlock ords t ~slot
  in
  let t1 = P.spawn (worker 0) in
  let t2 = P.spawn (worker 1) in
  P.join t1;
  P.join t2

let test_relock ords () =
  let t = create () in
  let t1 =
    P.spawn (fun () ->
        lock ords t ~slot:0;
        critical_section t;
        unlock ords t ~slot:0;
        lock ords t ~slot:0;
        critical_section t;
        unlock ords t ~slot:0)
  in
  let t2 =
    P.spawn (fun () ->
        lock ords t ~slot:1;
        critical_section t;
        unlock ords t ~slot:1)
  in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"Peterson Lock" ~spec ~sites
    [ ("two-threads", test_two_threads); ("relock", test_relock) ]
