(** Michael & Scott non-blocking queue [38], ported from the CDSChecker
    benchmark suite. Two bugs in the original port were found by AutoMO
    (paper section 6.4.1): weaker-than-necessary memory orders on the
    enqueue CAS that links the new node and on the dequeue load of the
    next pointer. [known_buggy_ords] reproduces them. *)

type t

val create : unit -> t
val enq : Ords.t -> t -> int -> unit

(** Returns the dequeued value or -1 when the queue appears empty. *)
val deq : Ords.t -> t -> int

val sites : Ords.site list

(** The memory orders of the original buggy port (both known bugs
    enabled). *)
val known_buggy_ords : Ords.t

(** Each known bug individually: site name and the buggy table. *)
val known_bugs : (string * Ords.t) list

val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
