module P = Mc.Program
open C11.Memory_order

type t = {
  name : string;
  description : string;
  program : unit -> int list;
  allowed : int list list;
  forbidden : int list list;
}

type result = {
  test : t;
  observed : int list list;
  missing : int list list;
  violations : int list list;
  executions : int;
  feasible : int;
}

let ok r = r.missing = [] && r.violations = []

(* Observation cells are ordinary locations written non-atomically by the
   observing threads before they finish; joins make the final values
   well-defined race-free reads. *)
let cell () = P.malloc ~init:(-1) 1

let run test =
  let cells = ref [] in
  let observed = ref [] in
  let r =
    Mc.Explorer.explore
      ~on_feasible:(fun exec _ ->
        let outcome =
          List.map
            (fun loc ->
              match C11.Execution.last_write exec loc with
              | Some w -> ( match w.C11.Action.written_value with Some v -> v | None -> -1)
              | None -> -1)
            !cells
        in
        if not (List.mem outcome !observed) then observed := outcome :: !observed;
        [])
      (fun () -> cells := test.program ())
  in
  let observed = List.sort Stdlib.compare !observed in
  {
    test;
    observed;
    missing = List.filter (fun o -> not (List.mem o observed)) test.allowed;
    violations = List.filter (fun o -> List.mem o observed) test.forbidden;
    executions = r.stats.explored;
    feasible = r.stats.feasible;
  }

let pp_result ppf r =
  let pp_outcome ppf o =
    Format.fprintf ppf "(%s)" (String.concat "," (List.map string_of_int o))
  in
  let pp_set = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_outcome in
  Format.fprintf ppf "%-24s %-4s observed: %a" r.test.name
    (if ok r then "ok" else "FAIL")
    pp_set r.observed;
  if r.missing <> [] then Format.fprintf ppf "  MISSING: %a" pp_set r.missing;
  if r.violations <> [] then Format.fprintf ppf "  FORBIDDEN SEEN: %a" pp_set r.violations

(* ------------------------------------------------------------------ *)
(* Corpus. Each program returns its observation cells.                 *)

let two_threads f1 f2 =
  let t1 = P.spawn f1 in
  let t2 = P.spawn f2 in
  P.join t1;
  P.join t2

let sb mo_s mo_l () =
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let r1 = cell () in
  let r2 = cell () in
  two_threads
    (fun () ->
      P.store mo_s x 1;
      P.na_store r1 (P.load mo_l y))
    (fun () ->
      P.store mo_s y 1;
      P.na_store r2 (P.load mo_l x));
  [ r1; r2 ]

let mp mo_s mo_l () =
  let d = P.malloc ~init:0 1 in
  let f = P.malloc ~init:0 1 in
  let r1 = cell () in
  let r2 = cell () in
  two_threads
    (fun () ->
      P.store Relaxed d 1;
      P.store mo_s f 1)
    (fun () ->
      P.na_store r1 (P.load mo_l f);
      P.na_store r2 (P.load Relaxed d));
  [ r1; r2 ]

let lb mo () =
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let r1 = cell () in
  let r2 = cell () in
  two_threads
    (fun () ->
      P.na_store r1 (P.load mo x);
      P.store mo y 1)
    (fun () ->
      P.na_store r2 (P.load mo y);
      P.store mo x 1);
  [ r1; r2 ]

let iriw mo_s mo_l () =
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let a = cell () and b = cell () and c = cell () and d = cell () in
  let w1 = P.spawn (fun () -> P.store mo_s x 1) in
  let w2 = P.spawn (fun () -> P.store mo_s y 1) in
  let r1 =
    P.spawn (fun () ->
        P.na_store a (P.load mo_l x);
        P.na_store b (P.load mo_l y))
  in
  let r2 =
    P.spawn (fun () ->
        P.na_store c (P.load mo_l y);
        P.na_store d (P.load mo_l x))
  in
  P.join w1;
  P.join w2;
  P.join r1;
  P.join r2;
  [ a; b; c; d ]

let coherence_rr () =
  let x = P.malloc ~init:0 1 in
  let r1 = cell () and r2 = cell () in
  two_threads
    (fun () -> P.store Relaxed x 1)
    (fun () ->
      P.na_store r1 (P.load Relaxed x);
      P.na_store r2 (P.load Relaxed x));
  [ r1; r2 ]

let two_plus_two_w () =
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let r1 = cell () and r2 = cell () in
  two_threads
    (fun () ->
      P.store Relaxed x 1;
      P.store Relaxed y 2)
    (fun () ->
      P.store Relaxed y 1;
      P.store Relaxed x 2);
  P.na_store r1 (P.load Relaxed x);
  P.na_store r2 (P.load Relaxed y);
  [ r1; r2 ]

let rwc () =
  (* read-to-write causality: T1: x=1. T2: r1=x; r2=y. T3: y=1; r3=x
     (sc everywhere forbids r1=1, r2=0, r3=0) *)
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let r1 = cell () and r2 = cell () and r3 = cell () in
  let t1 = P.spawn (fun () -> P.store Seq_cst x 1) in
  let t2 =
    P.spawn (fun () ->
        P.na_store r1 (P.load Seq_cst x);
        P.na_store r2 (P.load Seq_cst y))
  in
  let t3 =
    P.spawn (fun () ->
        P.store Seq_cst y 1;
        P.na_store r3 (P.load Seq_cst x))
  in
  P.join t1;
  P.join t2;
  P.join t3;
  [ r1; r2; r3 ]

let sb_fences () =
  let x = P.malloc ~init:0 1 in
  let y = P.malloc ~init:0 1 in
  let r1 = cell () and r2 = cell () in
  two_threads
    (fun () ->
      P.store Relaxed x 1;
      P.fence Seq_cst;
      P.na_store r1 (P.load Relaxed y))
    (fun () ->
      P.store Relaxed y 1;
      P.fence Seq_cst;
      P.na_store r2 (P.load Relaxed x));
  [ r1; r2 ]

let mp_fences () =
  let d = P.malloc ~init:0 1 in
  let f = P.malloc ~init:0 1 in
  let r1 = cell () and r2 = cell () in
  two_threads
    (fun () ->
      P.store Relaxed d 1;
      P.fence Release;
      P.store Relaxed f 1)
    (fun () ->
      P.na_store r1 (P.load Relaxed f);
      P.fence Acquire;
      P.na_store r2 (P.load Relaxed d));
  [ r1; r2 ]

let release_sequence () =
  let d = P.malloc ~init:0 1 in
  let f = P.malloc ~init:0 1 in
  let r1 = cell () and r2 = cell () in
  let t1 =
    P.spawn (fun () ->
        P.store Relaxed d 1;
        P.store Release f 1)
  in
  let t2 = P.spawn (fun () -> ignore (P.fetch_add Relaxed f 1)) in
  let t3 =
    P.spawn (fun () ->
        let v = P.load Acquire f in
        P.na_store r1 v;
        if v = 2 then P.na_store r2 (P.load Relaxed d) else P.na_store r2 9)
  in
  P.join t1;
  P.join t2;
  P.join t3;
  [ r1; r2 ]

let all =
  [
    {
      name = "SB+rlx";
      description = "store buffering, relaxed: all four outcomes";
      program = sb Relaxed Relaxed;
      allowed = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ];
      forbidden = [];
    };
    {
      name = "SB+sc";
      description = "store buffering, seq_cst: 0,0 forbidden";
      program = sb Seq_cst Seq_cst;
      allowed = [ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ];
      forbidden = [ [ 0; 0 ] ];
    };
    {
      name = "SB+scfences";
      description = "store buffering with seq_cst fences: 0,0 forbidden";
      program = sb_fences;
      allowed = [ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ];
      forbidden = [ [ 0; 0 ] ];
    };
    {
      name = "MP+rlx";
      description = "message passing, relaxed: stale data observable";
      program = mp Relaxed Relaxed;
      allowed = [ [ 0; 0 ]; [ 1; 0 ]; [ 1; 1 ] ];
      forbidden = [];
    };
    {
      name = "MP+rel+acq";
      description = "message passing, release/acquire: flag=1 implies data=1";
      program = mp Release Acquire;
      allowed = [ [ 0; 0 ]; [ 1; 1 ] ];
      forbidden = [ [ 1; 0 ] ];
    };
    {
      name = "MP+fences";
      description = "message passing through release/acquire fences";
      program = mp_fences;
      allowed = [ [ 0; 0 ]; [ 1; 1 ] ];
      forbidden = [ [ 1; 0 ] ];
    };
    {
      name = "LB+rlx";
      description =
        "load buffering: C11 allows 1,1 but no exhaustive explorer without promises generates \
         it (documented approximation, like CDSChecker's exclusion of satisfaction cycles)";
      program = lb Relaxed;
      allowed = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ];
      forbidden = [];
    };
    {
      name = "IRIW+rel+acq";
      description = "independent reads of independent writes: split under rel/acq";
      program = iriw Release Acquire;
      allowed = [ [ 1; 0; 1; 0 ]; [ 1; 1; 1; 1 ]; [ 0; 0; 0; 0 ] ];
      forbidden = [];
    };
    {
      name = "IRIW+sc";
      description = "IRIW, seq_cst: readers agree on the order";
      program = iriw Seq_cst Seq_cst;
      allowed = [ [ 1; 1; 1; 1 ]; [ 0; 0; 0; 0 ] ];
      forbidden = [ [ 1; 0; 1; 0 ] ];
    };
    {
      name = "CoRR";
      description = "read-read coherence: per-location new-then-old forbidden";
      program = coherence_rr;
      allowed = [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ];
      forbidden = [ [ 1; 0 ] ];
    };
    {
      name = "2+2W+rlx";
      description =
        "double write crossing. C11 additionally allows (1,1) — modification orders that \
         embed in no global order — which the mo-as-commit-order approximation (shared \
         with schedule-based explorers; see DESIGN.md) does not generate";
      program = two_plus_two_w;
      allowed = [ [ 2; 2 ]; [ 2; 1 ]; [ 1; 2 ] ];
      forbidden = [];
    };
    {
      name = "RWC+sc";
      description = "read-to-write causality under seq_cst";
      program = rwc;
      allowed = [ [ 1; 1; 1 ] ];
      forbidden = [ [ 1; 0; 0 ] ];
    };
    {
      name = "RelSeq";
      description = "release sequence through a foreign RMW transfers synchronization";
      program = release_sequence;
      allowed = [ [ 2; 1 ] ];
      forbidden = [ [ 2; 0 ] ];
    };
  ]

let find name = List.find_opt (fun t -> t.name = name) all
