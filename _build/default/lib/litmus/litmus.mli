(** A corpus of classic C/C++11 litmus tests with their expected outcome
    sets, used to validate the memory-model engine (and as living
    documentation of which weak behaviours it admits). Each test is a
    small program whose threads record observations; running it collects
    the set of observed outcome tuples across all feasible executions. *)

type t = {
  name : string;
  description : string;
  program : unit -> int list;
      (** build and return observation cells; the harness reads them after
          each feasible execution (see {!run}) *)
  allowed : int list list;  (** outcomes that MUST be observed *)
  forbidden : int list list;  (** outcomes that must NOT be observed *)
}

(** All corpus entries. *)
val all : t list

val find : string -> t option

type result = {
  test : t;
  observed : int list list;  (** sorted, deduplicated *)
  missing : int list list;  (** allowed but never observed *)
  violations : int list list;  (** forbidden but observed *)
  executions : int;
  feasible : int;
}

val ok : result -> bool

(** Run one litmus test to completion. *)
val run : t -> result

val pp_result : Format.formatter -> result -> unit
