type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data = Array.make cap' x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let last v = if v.len = 0 then invalid_arg "Vec.last" else v.data.(v.len - 1)

let is_empty v = v.len = 0

let truncate v n = if n < 0 || n > v.len then invalid_arg "Vec.truncate" else v.len <- n

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop"
  else begin
    v.len <- v.len - 1;
    v.data.(v.len)
  end

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let to_list v = List.init v.len (fun i -> v.data.(i))

let fold_right_while f v init =
  let rec go i acc =
    if i < 0 then acc
    else
      match f i v.data.(i) acc with
      | `Continue acc -> go (i - 1) acc
      | `Stop acc -> acc
  in
  go (v.len - 1) init
