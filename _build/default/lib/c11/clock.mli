(** Vector clocks over thread ids.

    Clocks represent happens-before knowledge: entry [i] is the largest
    per-thread sequence number of thread [i] known to happen before the
    holder. Thread ids are small dense integers; clocks grow on demand. *)

type t

(** The clock that knows nothing. *)
val empty : t

(** [singleton ~tid ~seq] knows only step [seq] of thread [tid]. *)
val singleton : tid:int -> seq:int -> t

val get : t -> int -> int

(** [set c tid seq] functionally updates entry [tid] to [max current seq]. *)
val set : t -> int -> int -> t

(** Pointwise maximum. *)
val join : t -> t -> t

(** [covers c ~tid ~seq] holds when [c] already knows step [seq] of
    [tid], i.e. that step happens before the holder of [c]. *)
val covers : t -> tid:int -> seq:int -> bool

(** [leq a b] is pointwise ordering: [b] knows everything [a] knows. *)
val leq : t -> t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
