lib/c11/execution.ml: Action Array Clock Format Hashtbl Int List Memory_order Set Vec
