lib/c11/clock.mli: Format
