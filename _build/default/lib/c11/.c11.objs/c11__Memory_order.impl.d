lib/c11/memory_order.ml: Format Int Stdlib
