lib/c11/clock.ml: Array Format
