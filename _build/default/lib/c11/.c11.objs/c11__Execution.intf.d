lib/c11/execution.mli: Action Format Memory_order
