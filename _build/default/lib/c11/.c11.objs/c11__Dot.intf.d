lib/c11/dot.mli: Execution
