lib/c11/vec.ml: Array List
