lib/c11/dot.ml: Action Buffer Execution Fmt List Printf String
