lib/c11/action.ml: Clock Format Memory_order Printf
