lib/c11/vec.mli:
