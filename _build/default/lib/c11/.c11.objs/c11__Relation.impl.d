lib/c11/relation.ml: Array List Random
