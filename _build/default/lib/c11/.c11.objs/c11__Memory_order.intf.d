lib/c11/memory_order.mli: Format
