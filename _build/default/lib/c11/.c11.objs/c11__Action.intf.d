lib/c11/action.mli: Clock Format Memory_order
