lib/c11/relation.mli:
