let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_label (a : Action.t) = escape (Fmt.str "%a" Action.pp a)

let render exec =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph execution {\n";
  pr "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  let n = Execution.num_actions exec in
  let actions = List.init n (Execution.action exec) in
  let tids = List.sort_uniq compare (List.map (fun (a : Action.t) -> a.tid) actions) in
  (* per-thread clusters in program order *)
  List.iter
    (fun tid ->
      pr "  subgraph cluster_t%d {\n    label=\"T%d\";\n" tid tid;
      let mine =
        List.sort
          (fun (a : Action.t) (b : Action.t) -> compare a.seq b.seq)
          (List.filter (fun (a : Action.t) -> a.tid = tid) actions)
      in
      List.iter (fun (a : Action.t) -> pr "    a%d [label=\"%s\"];\n" a.id (node_label a)) mine;
      let rec chain = function
        | (a : Action.t) :: (b : Action.t) :: rest ->
          pr "    a%d -> a%d [style=bold, color=gray40];\n" a.id b.id;
          chain (b :: rest)
        | _ -> ()
      in
      chain mine;
      pr "  }\n")
    tids;
  (* reads-from *)
  List.iter
    (fun (a : Action.t) ->
      match a.rf with
      | Some src -> pr "  a%d -> a%d [color=darkgreen, label=\"rf\", fontsize=8];\n" src a.id
      | None -> ())
    actions;
  (* per-location modification order (commit order of writes) *)
  let locs = List.sort_uniq compare (List.filter_map (fun (a : Action.t) -> if Action.is_write a then Some a.loc else None) actions) in
  List.iter
    (fun loc ->
      let writes = List.filter (fun (a : Action.t) -> Action.is_write a && a.loc = loc) actions in
      let rec chain = function
        | (a : Action.t) :: (b : Action.t) :: rest ->
          pr "  a%d -> a%d [style=dashed, color=orange, label=\"mo\", fontsize=8];\n" a.id b.id;
          chain (b :: rest)
        | _ -> ()
      in
      chain writes)
    locs;
  pr "}\n";
  Buffer.contents buf

let write_file exec path =
  let oc = open_out path in
  output_string oc (render exec);
  close_out oc
