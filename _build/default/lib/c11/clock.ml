(* Persistent vector clocks as immutable int arrays. Unit tests have at
   most a handful of threads, so copying on update is cheap and buys us
   sharing across the millions of actions a full exploration commits. *)

type t = int array

let empty = [||]

let get c tid = if tid < Array.length c then c.(tid) else 0

let extend c n =
  if Array.length c >= n then Array.copy c
  else begin
    let c' = Array.make n 0 in
    Array.blit c 0 c' 0 (Array.length c);
    c'
  end

let set c tid seq =
  if get c tid >= seq then c
  else begin
    let c' = extend c (tid + 1) in
    c'.(tid) <- seq;
    c'
  end

let singleton ~tid ~seq = set empty tid seq

let join a b =
  if a == b then a
  else begin
    let la = Array.length a and lb = Array.length b in
    if la >= lb then begin
      let need_copy = ref false in
      (try
         for i = 0 to lb - 1 do
           if b.(i) > a.(i) then begin
             need_copy := true;
             raise Exit
           end
         done
       with Exit -> ());
      if not !need_copy then a
      else begin
        let c = Array.copy a in
        for i = 0 to lb - 1 do
          if b.(i) > c.(i) then c.(i) <- b.(i)
        done;
        c
      end
    end
    else begin
      let c = Array.copy b in
      for i = 0 to la - 1 do
        if a.(i) > c.(i) then c.(i) <- a.(i)
      done;
      c
    end
  end

let covers c ~tid ~seq = get c tid >= seq

let leq a b =
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) > get b i then ok := false
  done;
  !ok

let equal a b = leq a b && leq b a

let pp ppf c =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list c)
