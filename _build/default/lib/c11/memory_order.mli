(** C/C++11 memory orders.

    [memory_order_consume] is intentionally absent: like every production
    compiler (and like CDSChecker's default configuration) we promote
    consume to acquire. *)

type t =
  | Relaxed
  | Acquire
  | Release
  | Acq_rel
  | Seq_cst

(** Kind of operation a memory order is attached to, used to decide which
    orders are meaningful and what "one step weaker" means for the
    bug-injection experiment (paper section 6.4.2). *)
type op_kind =
  | For_load
  | For_store
  | For_rmw
  | For_fence

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val of_string : string -> t option

(** [is_acquire mo] holds when an operation with order [mo] performs an
    acquire operation (Acquire, Acq_rel or Seq_cst). *)
val is_acquire : t -> bool

(** [is_release mo] holds when an operation with order [mo] performs a
    release operation (Release, Acq_rel or Seq_cst). *)
val is_release : t -> bool

val is_seq_cst : t -> bool

(** [valid_for kind mo] rejects meaningless combinations such as an
    acquire store or a release load. *)
val valid_for : op_kind -> t -> bool

(** [weaken kind mo] is the next weaker order used by the injection
    experiment: seq_cst -> acq_rel (or release/acquire for plain
    stores/loads), acq_rel -> release/acquire, acquire/release -> relaxed,
    relaxed -> None. *)
val weaken : op_kind -> t -> t option

(** All orders valid for the given kind, strongest last. *)
val all_for : op_kind -> t list
