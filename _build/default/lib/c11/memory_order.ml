type t =
  | Relaxed
  | Acquire
  | Release
  | Acq_rel
  | Seq_cst

type op_kind =
  | For_load
  | For_store
  | For_rmw
  | For_fence

let equal (a : t) (b : t) = a = b

let rank = function
  | Relaxed -> 0
  | Acquire -> 1
  | Release -> 1
  | Acq_rel -> 2
  | Seq_cst -> 3

let compare a b =
  let c = Int.compare (rank a) (rank b) in
  if c <> 0 then c else Stdlib.compare a b

let to_string = function
  | Relaxed -> "relaxed"
  | Acquire -> "acquire"
  | Release -> "release"
  | Acq_rel -> "acq_rel"
  | Seq_cst -> "seq_cst"

let of_string = function
  | "relaxed" -> Some Relaxed
  | "acquire" -> Some Acquire
  | "release" -> Some Release
  | "acq_rel" -> Some Acq_rel
  | "seq_cst" -> Some Seq_cst
  | _ -> None

let pp ppf mo = Format.pp_print_string ppf (to_string mo)

let is_acquire = function
  | Acquire | Acq_rel | Seq_cst -> true
  | Relaxed | Release -> false

let is_release = function
  | Release | Acq_rel | Seq_cst -> true
  | Relaxed | Acquire -> false

let is_seq_cst = function
  | Seq_cst -> true
  | Relaxed | Acquire | Release | Acq_rel -> false

let valid_for kind mo =
  match kind, mo with
  | For_load, (Relaxed | Acquire | Seq_cst) -> true
  | For_load, (Release | Acq_rel) -> false
  | For_store, (Relaxed | Release | Seq_cst) -> true
  | For_store, (Acquire | Acq_rel) -> false
  | For_rmw, _ -> true
  (* a relaxed fence is a no-op; the injection experiment uses it to
     model deleting a fence *)
  | For_fence, _ -> true

let weaken kind mo =
  match kind, mo with
  | For_load, Seq_cst -> Some Acquire
  | For_load, Acquire -> Some Relaxed
  | For_store, Seq_cst -> Some Release
  | For_store, Release -> Some Relaxed
  | For_rmw, Seq_cst -> Some Acq_rel
  | For_rmw, Acq_rel -> Some Release
  | For_rmw, (Acquire | Release) -> Some Relaxed
  | For_fence, Seq_cst -> Some Acq_rel
  | For_fence, Acq_rel -> Some Release
  | For_fence, (Acquire | Release) -> Some Relaxed
  | _, Relaxed -> None
  | For_load, (Release | Acq_rel) | For_store, (Acquire | Acq_rel) -> None

let all_for = function
  | For_load -> [ Relaxed; Acquire; Seq_cst ]
  | For_store -> [ Relaxed; Release; Seq_cst ]
  | For_rmw -> [ Relaxed; Acquire; Release; Acq_rel; Seq_cst ]
  | For_fence -> [ Acquire; Release; Acq_rel; Seq_cst ]
