(** Graphviz rendering of execution graphs: one cluster per thread with
    actions in program order, reads-from edges (green), per-location
    modification-order edges (dashed), and synchronizes-with-carrying
    reads highlighted. Useful for inspecting the buggy executions the
    checker reports. *)

(** [render exec] is a complete DOT document. *)
val render : Execution.t -> string

(** [write_file exec path] renders into [path]. *)
val write_file : Execution.t -> string -> unit
