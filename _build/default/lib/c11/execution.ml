module IntSet = Set.Make (Int)

type problem =
  | Data_race of { first : Action.t; second : Action.t }
  | Uninitialized_load of Action.t

type thread_state = {
  mutable clock : Clock.t;  (* knowledge including own committed steps *)
  mutable seq : int;
  mutable pending_acquire : Clock.t;  (* rule 29.8p3/p4: consumed by acquire fences *)
  mutable release_fence : Clock.t option;  (* clock at the latest release fence *)
  mutable sc_fences : (int * int) list;  (* (seq, commit id), newest first *)
  mutable inherited : Clock.t;  (* parent clock at Create, joined at Start *)
}

type loc_state = {
  stores : Action.t Vec.t;  (* every write, commit order = modification order *)
  reads : (Action.t * int) Vec.t;  (* atomic reads with the mo index they read *)
  na_reads : Action.t Vec.t;
}

type t = {
  actions : Action.t Vec.t;
  mutable threads : thread_state array;
  locs : (int, loc_state) Hashtbl.t;
  mutable next_loc : int;
}

let create () = { actions = Vec.create (); threads = [||]; locs = Hashtbl.create 64; next_loc = 0 }

let new_thread_state () =
  {
    clock = Clock.empty;
    seq = 0;
    pending_acquire = Clock.empty;
    release_fence = None;
    sc_fences = [];
    inherited = Clock.empty;
  }

let thread t tid =
  let n = Array.length t.threads in
  if tid >= n then begin
    let threads = Array.init (tid + 4) (fun i -> if i < n then t.threads.(i) else new_thread_state ()) in
    t.threads <- threads
  end;
  t.threads.(tid)

let loc_state t loc =
  match Hashtbl.find_opt t.locs loc with
  | Some ls -> ls
  | None ->
    let ls = { stores = Vec.create (); reads = Vec.create (); na_reads = Vec.create () } in
    Hashtbl.add t.locs loc ls;
    ls

let num_actions t = Vec.length t.actions

let action t id = Vec.get t.actions id

(* hb(a, b) where [b] may be a not-yet-committed action of a thread whose
   current clock is [clock_b]. *)
let hb_clock clock_b (a : Action.t) = Clock.covers clock_b ~tid:a.tid ~seq:a.seq

let happens_before t a b =
  let a = action t a and b = action t b in
  Action.happens_before a b

let hb_or_sc t a b =
  if a = b then false
  else
    let aa = action t a and ab = action t b in
    Action.happens_before aa ab
    || (Action.is_seq_cst aa && Action.is_seq_cst ab && aa.id < ab.id)

let last_write t loc =
  match Hashtbl.find_opt t.locs loc with
  | Some ls when not (Vec.is_empty ls.stores) -> Some (Vec.last ls.stores)
  | _ -> None

(* Release-sequence walk (C++11 1.10p7, plus the hypothetical release
   sequences of 29.8): the clock acquired by a read of [stores.(rf_index)].
   A head candidate at index [i] is valid when every later chain element up
   to [rf_index] is an RMW or a store by the head's own thread. *)
let acquired_clock (ls : loc_state) rf_index =
  let rec walk i foreign acc =
    if i < 0 then acc
    else begin
      let w = Vec.get ls.stores i in
      let valid = IntSet.is_empty foreign || IntSet.equal foreign (IntSet.singleton w.Action.tid) in
      let acc =
        if valid then
          match w.Action.release_clock with
          | Some rc -> Clock.join acc rc
          | None -> acc
        else acc
      in
      let foreign = if w.Action.kind = Action.Rmw then foreign else IntSet.add w.Action.tid foreign in
      if IntSet.cardinal foreign >= 2 then acc else walk (i - 1) foreign acc
    end
  in
  walk rf_index IntSet.empty Clock.empty

(* A poison write models the pristine contents of uninitialized malloc'd
   memory: reads that are not forced past it observe garbage, which is
   reported as an uninitialized load. *)
let is_poison (a : Action.t) = Action.is_write a && a.written_value = None

(* Race detection: conflicting accesses (same location, at least one write,
   at least one non-atomic, different threads) unordered by hb. The new
   action [a] commits last, so only hb(prev, a) needs checking. *)
let race_problems (ls : loc_state) (a : Action.t) =
  let races = ref [] in
  let check (prev : Action.t) =
    if prev.tid <> a.tid && (not (is_poison prev)) && not (hb_clock a.clock prev) then
      races := Data_race { first = prev; second = a } :: !races
  in
  let a_is_na = Action.is_non_atomic a in
  (* against previous writes: conflict whenever one side is non-atomic *)
  Vec.iter (fun (w : Action.t) -> if a_is_na || Action.is_non_atomic w then check w) ls.stores;
  if Action.is_write a then begin
    (* against previous reads *)
    Vec.iter (fun ((r : Action.t), _) -> if a_is_na then check r) ls.reads;
    Vec.iter (fun (r : Action.t) -> check r) ls.na_reads
  end;
  !races

let store_index (ls : loc_state) (w : Action.t) =
  let n = Vec.length ls.stores in
  let rec go i =
    if i < 0 then invalid_arg "store_index: not a store of this location"
    else if (Vec.get ls.stores i).Action.id = w.id then i
    else go (i - 1)
  in
  go (n - 1)

(* Smallest modification-order index a new load by [tid] may read,
   combining per-location coherence with the seq_cst rules (see .mli). *)
let min_readable_index t ~tid ~mo (ls : loc_state) =
  let ts = thread t tid in
  let n = Vec.length ls.stores in
  let min_idx = ref 0 in
  let raise_to i = if i > !min_idx then min_idx := i in
  (* CoWR/CoRW: newest hb-visible write *)
  (try
     for i = n - 1 downto 0 do
       if hb_clock ts.clock (Vec.get ls.stores i) then begin
         raise_to i;
         raise Exit
       end
     done
   with Exit -> ());
  (* CoRR: newest mo index observed by an hb-prior read *)
  Vec.iter (fun (r, j) -> if hb_clock ts.clock r then raise_to j) ls.reads;
  let latest_sc_fence = match ts.sc_fences with (_, id) :: _ -> Some id | [] -> None in
  let fence_after_store ?bound (w : Action.t) =
    let fences = (thread t w.tid).sc_fences in
    List.exists
      (fun (seq, id) ->
        seq > w.Action.seq && match bound with Some b -> id < b | None -> true)
      fences
  in
  (* seq_cst load: at least the newest seq_cst store (29.3p3) *)
  if Memory_order.is_seq_cst mo then begin
    (try
       for i = n - 1 downto 0 do
         if Action.is_seq_cst (Vec.get ls.stores i) then begin
           raise_to i;
           raise Exit
         end
       done
     with Exit -> ());
    (* store sequenced before a seq_cst fence, seq_cst load (29.3p6) *)
    try
      for i = n - 1 downto 0 do
        if fence_after_store (Vec.get ls.stores i) then begin
          raise_to i;
          raise Exit
        end
      done
    with Exit -> ()
  end;
  (match latest_sc_fence with
  | None -> ()
  | Some fence_id ->
    (* seq_cst fence sequenced before the load (29.3p5): newest seq_cst
       store committed before that fence *)
    (try
       for i = n - 1 downto 0 do
         let w = Vec.get ls.stores i in
         if Action.is_seq_cst w && w.Action.id < fence_id then begin
           raise_to i;
           raise Exit
         end
       done
     with Exit -> ());
    (* fence-to-fence (29.3p7): store before fence X, X before our fence *)
    try
      for i = n - 1 downto 0 do
        if fence_after_store ~bound:fence_id (Vec.get ls.stores i) then begin
          raise_to i;
          raise Exit
        end
      done
    with Exit -> ());
  !min_idx

let read_candidates t ~tid ~mo ~loc =
  let ls = loc_state t loc in
  let n = Vec.length ls.stores in
  if n = 0 then []
  else begin
    let min_idx = min_readable_index t ~tid ~mo ls in
    (* newest-first *)
    let rec collect i acc = if i > n - 1 then acc else collect (i + 1) (Vec.get ls.stores i :: acc) in
    collect min_idx []
  end

let rmw_candidate t ~loc =
  match Hashtbl.find_opt t.locs loc with
  | Some ls when not (Vec.is_empty ls.stores) -> Some (Vec.last ls.stores)
  | _ -> None

let mk_action t ~tid ~kind ~loc ~mo ?read_value ?written_value ?rf ?site ~clock ~release_clock () =
  let ts = thread t tid in
  let seq = ts.seq + 1 in
  let a =
    {
      Action.id = num_actions t;
      tid;
      seq;
      kind;
      loc;
      mo;
      read_value;
      written_value;
      rf;
      site;
      clock;
      release_clock;
    }
  in
  ts.seq <- seq;
  ts.clock <- clock;
  Vec.push t.actions a;
  a

let base_clock t tid =
  let ts = thread t tid in
  Clock.set ts.clock tid (ts.seq + 1)

let commit_load t ~tid ~mo ~loc ~rf ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  let base = base_clock t tid in
  match rf with
  | None ->
    let a =
      mk_action t ~tid ~kind:Action.Load ~loc ~mo ~read_value:0 ?site ~clock:base ~release_clock:None ()
    in
    (a, Uninitialized_load a :: race_problems ls a)
  | Some (w : Action.t) ->
    let idx = store_index ls w in
    let acquired = acquired_clock ls idx in
    let clock = if Memory_order.is_acquire mo then Clock.join base acquired else base in
    ts.pending_acquire <- Clock.join ts.pending_acquire acquired;
    let read_value = match w.written_value with Some v -> v | None -> 0 in
    let a =
      mk_action t ~tid ~kind:Action.Load ~loc ~mo ~read_value ~rf:w.id ?site ~clock
        ~release_clock:None ()
    in
    Vec.push ls.reads (a, idx);
    let problems = race_problems ls a in
    let problems = if is_poison w then Uninitialized_load a :: problems else problems in
    (a, problems)

let commit_na_load t ~tid ~loc ?site () =
  let ls = loc_state t loc in
  let base = base_clock t tid in
  let n = Vec.length ls.stores in
  if n = 0 then begin
    let a =
      mk_action t ~tid ~kind:Action.Na_load ~loc ~mo:Memory_order.Relaxed ~read_value:0 ?site ~clock:base
        ~release_clock:None ()
    in
    (a, Uninitialized_load a :: race_problems ls a)
  end
  else begin
    let w = Vec.last ls.stores in
    let read_value = match w.Action.written_value with Some v -> v | None -> 0 in
    let a =
      mk_action t ~tid ~kind:Action.Na_load ~loc ~mo:Memory_order.Relaxed ~read_value
        ~rf:w.Action.id ?site ~clock:base ~release_clock:None ()
    in
    Vec.push ls.na_reads a;
    let problems = race_problems ls a in
    let problems = if is_poison w then Uninitialized_load a :: problems else problems in
    (a, problems)
  end

let write_release_clock t ~tid ~mo ~clock =
  if Memory_order.is_release mo then Some clock
  else
    match (thread t tid).release_fence with
    | Some fc -> Some fc
    | None -> None

let commit_store t ~tid ~mo ~loc ~value ?site () =
  let ls = loc_state t loc in
  let clock = base_clock t tid in
  let release_clock = write_release_clock t ~tid ~mo ~clock in
  let a = mk_action t ~tid ~kind:Action.Store ~loc ~mo ~written_value:value ?site ~clock ~release_clock () in
  Vec.push ls.stores a;
  (a, race_problems ls a)

let commit_na_store t ~tid ~loc ~value ?site () =
  let ls = loc_state t loc in
  let clock = base_clock t tid in
  let a =
    mk_action t ~tid ~kind:Action.Na_store ~loc ~mo:Memory_order.Relaxed ~written_value:value ?site ~clock
      ~release_clock:None ()
  in
  Vec.push ls.stores a;
  (a, race_problems ls a)

let commit_rmw t ~tid ~mo ~loc ~value ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  if Vec.is_empty ls.stores then invalid_arg "commit_rmw: uninitialized location";
  let w = Vec.last ls.stores in
  let idx = Vec.length ls.stores - 1 in
  let base = base_clock t tid in
  let acquired = acquired_clock ls idx in
  let clock = if Memory_order.is_acquire mo then Clock.join base acquired else base in
  ts.pending_acquire <- Clock.join ts.pending_acquire acquired;
  let release_clock = write_release_clock t ~tid ~mo ~clock in
  let read_value = match w.Action.written_value with Some v -> v | None -> 0 in
  let a =
    mk_action t ~tid ~kind:Action.Rmw ~loc ~mo ~read_value ~written_value:value
      ~rf:w.Action.id ?site ~clock ~release_clock ()
  in
  Vec.push ls.reads (a, idx);
  Vec.push ls.stores a;
  let problems = race_problems ls a in
  let problems = if is_poison w then Uninitialized_load a :: problems else problems in
  (a, problems)

let commit_fence t ~tid ~mo =
  let ts = thread t tid in
  let base = base_clock t tid in
  let clock = if Memory_order.is_acquire mo then Clock.join base ts.pending_acquire else base in
  let a =
    mk_action t ~tid ~kind:Action.Fence ~loc:Action.no_loc ~mo ~clock ~release_clock:None ()
  in
  if Memory_order.is_release mo then ts.release_fence <- Some clock;
  if Memory_order.is_seq_cst mo then ts.sc_fences <- (a.Action.seq, a.Action.id) :: ts.sc_fences;
  a

let commit_create t ~tid ~child =
  let clock = base_clock t tid in
  let a =
    mk_action t ~tid ~kind:(Action.Create child) ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock
      ~release_clock:None ()
  in
  (thread t child).inherited <- clock;
  a

let commit_start t ~tid =
  let ts = thread t tid in
  let clock = Clock.join (base_clock t tid) ts.inherited in
  mk_action t ~tid ~kind:Action.Start ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock ~release_clock:None
    ()

let commit_finish t ~tid =
  let clock = base_clock t tid in
  mk_action t ~tid ~kind:Action.Finish ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock ~release_clock:None
    ()

let commit_join t ~tid ~target =
  let clock = Clock.join (base_clock t tid) (thread t target).clock in
  mk_action t ~tid ~kind:(Action.Join target) ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock
    ~release_clock:None ()

let commit_poison t ~tid ~loc =
  let ls = loc_state t loc in
  let clock = base_clock t tid in
  let a =
    mk_action t ~tid ~kind:Action.Store ~loc ~mo:Memory_order.Relaxed ~site:"<alloc>" ~clock
      ~release_clock:None ()
  in
  Vec.push ls.stores a

let alloc t ~tid ~count ~init =
  let base = t.next_loc in
  t.next_loc <- t.next_loc + count;
  (match init with
  | None ->
    (* pristine malloc'd cells: a poison write per cell, so loads not
       forced past it observe uninitialized memory *)
    for i = 0 to count - 1 do
      commit_poison t ~tid ~loc:(base + i)
    done
  | Some v ->
    (* calloc-style zeroing: part of allocation, so it never races — model
       it as a relaxed atomic initialization *)
    for i = 0 to count - 1 do
      ignore (commit_store t ~tid ~mo:Memory_order.Relaxed ~loc:(base + i) ~value:v ~site:"<init>" ())
    done);
  base

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Vec.iter (fun a -> Format.fprintf ppf "%a@," Action.pp a) t.actions;
  Format.fprintf ppf "@]"
