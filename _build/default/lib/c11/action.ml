type kind =
  | Load
  | Store
  | Rmw
  | Na_load
  | Na_store
  | Fence
  | Create of int
  | Start
  | Join of int
  | Finish

type t = {
  id : int;
  tid : int;
  seq : int;
  kind : kind;
  loc : int;
  mo : Memory_order.t;
  read_value : int option;
  written_value : int option;
  rf : int option;
  site : string option;
  clock : Clock.t;
  release_clock : Clock.t option;
}

let no_loc = -1

let is_read a =
  match a.kind with
  | Load | Rmw | Na_load -> true
  | Store | Na_store | Fence | Create _ | Start | Join _ | Finish -> false

let is_write a =
  match a.kind with
  | Store | Rmw | Na_store -> true
  | Load | Na_load | Fence | Create _ | Start | Join _ | Finish -> false

let is_atomic_read a =
  match a.kind with
  | Load | Rmw -> true
  | _ -> false

let is_atomic_write a =
  match a.kind with
  | Store | Rmw -> true
  | _ -> false

let is_non_atomic a =
  match a.kind with
  | Na_load | Na_store -> true
  | _ -> false

let is_fence a =
  match a.kind with
  | Fence -> true
  | _ -> false

let is_seq_cst a = Memory_order.is_seq_cst a.mo

let sb a b = a.tid = b.tid && a.seq < b.seq

let happens_before a b = a.id <> b.id && Clock.covers b.clock ~tid:a.tid ~seq:a.seq

let kind_to_string = function
  | Load -> "load"
  | Store -> "store"
  | Rmw -> "rmw"
  | Na_load -> "na-load"
  | Na_store -> "na-store"
  | Fence -> "fence"
  | Create t -> Printf.sprintf "create(%d)" t
  | Start -> "start"
  | Join t -> Printf.sprintf "join(%d)" t
  | Finish -> "finish"

let pp ppf a =
  Format.fprintf ppf "#%d T%d.%d %s %a" a.id a.tid a.seq (kind_to_string a.kind)
    Memory_order.pp a.mo;
  if a.loc <> no_loc then Format.fprintf ppf " @%d" a.loc;
  (match a.read_value with
  | Some v -> Format.fprintf ppf " r=%d" v
  | None -> ());
  (match a.written_value with
  | Some v -> Format.fprintf ppf " w=%d" v
  | None -> ());
  (match a.rf with
  | Some id -> Format.fprintf ppf " rf=#%d" id
  | None -> ());
  match a.site with
  | Some s -> Format.fprintf ppf " [%s]" s
  | None -> ()
