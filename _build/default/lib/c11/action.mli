(** Memory actions: the nodes of a C/C++11 execution graph. *)

type kind =
  | Load  (** atomic load; a failed CAS also commits as a [Load] *)
  | Store  (** atomic store *)
  | Rmw  (** successful read-modify-write: both a read and a write *)
  | Na_load  (** non-atomic load (participates in race detection) *)
  | Na_store  (** non-atomic store *)
  | Fence
  | Create of int  (** thread creation; payload is the child tid *)
  | Start  (** pseudo-action opening a thread *)
  | Join of int  (** join on the given tid *)
  | Finish  (** pseudo-action closing a thread *)

type t = {
  id : int;  (** global commit index, dense from 0 *)
  tid : int;
  seq : int;  (** per-thread step number, 1-based; orders sb within a thread *)
  kind : kind;
  loc : int;  (** memory location, or [no_loc] for fences and thread ops *)
  mo : Memory_order.t;
  read_value : int option;  (** value read, for reads *)
  written_value : int option;  (** value written, for writes *)
  rf : int option;  (** id of the store this read reads from *)
  site : string option;  (** static site label, for diagnostics and injection *)
  clock : Clock.t;
      (** happens-before predecessors at commit time, including this action *)
  release_clock : Clock.t option;
      (** for writes: the clock an acquire reader synchronizing with (a
          release sequence containing) this write acquires; [None] when the
          write heads no release sequence and sits under no release fence *)
}

val no_loc : int

val is_read : t -> bool
val is_write : t -> bool
val is_atomic_read : t -> bool
val is_atomic_write : t -> bool
val is_non_atomic : t -> bool
val is_fence : t -> bool
val is_seq_cst : t -> bool

(** [sb a b]: [a] is sequenced before [b] (same thread, earlier step). *)
val sb : t -> t -> bool

(** [happens_before a b] using [b]'s clock. *)
val happens_before : t -> t -> bool

val pp : Format.formatter -> t -> unit
