lib/harness/experiments.ml: C11 Cdsspec Fmt Format List Mc Structures
