lib/harness/experiments.mli: C11 Cdsspec Format Structures
