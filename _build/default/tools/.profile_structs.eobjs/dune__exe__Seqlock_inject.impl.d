tools/seqlock_inject.ml: Array Cdsspec List Mc Printf String Structures Sys
