tools/profile_structs.ml: Array Cdsspec Format List Mc Printf Structures Sys Unix
