tools/seqlock_inject.mli:
