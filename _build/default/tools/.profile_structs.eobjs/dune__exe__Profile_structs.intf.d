tools/profile_structs.mli:
