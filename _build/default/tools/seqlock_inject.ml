(* Per-site injection probe: tools/seqlock_inject.exe "<benchmark name>" *)
module E = Mc.Explorer
module B = Structures.Benchmark

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "Seqlock" in
  match Structures.Registry.find name with
  | None -> prerr_endline ("unknown benchmark " ^ name)
  | Some b ->
    List.iter
      (fun (s : Structures.Ords.site) ->
        match Structures.Ords.weakened b.sites s.name with
        | None -> ()
        | Some ords ->
          let detected =
            List.filter_map
              (fun (t : B.test) ->
                let r =
                  E.explore
                    ~config:
                      { E.default_config with scheduler = b.scheduler; max_executions = Some 150_000 }
                    ~on_feasible:(Cdsspec.Checker.hook b.spec)
                    (t.program ords)
                in
                match r.bugs with
                | [] -> None
                | bug :: _ -> Some (t.test_name ^ ":" ^ Mc.Bug.key bug))
              b.tests
          in
          Printf.printf "%-24s %s\n%!" s.name
            (match detected with [] -> "UNDETECTED" | l -> String.concat " " l))
      (Structures.Ords.weakenable b.sites)
