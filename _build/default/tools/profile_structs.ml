module E = Mc.Explorer
module B = Structures.Benchmark

let () =
  let names = if Array.length Sys.argv > 1 then Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)) else [] in
  let benches =
    if names = [] then Structures.Registry.all
    else List.filter_map Structures.Registry.find names
  in
  List.iter
    (fun (b : B.t) ->
      List.iter
        (fun (t : B.test) ->
          let t0 = Unix.gettimeofday () in
          let r =
            E.explore
              ~config:{ E.default_config with scheduler = b.scheduler;
                        max_executions = Some 200000 }
              ~on_feasible:(Cdsspec.Checker.hook b.spec)
              (t.program (Structures.Ords.default b.sites))
          in
          Printf.printf "%-18s %-16s explored=%7d feasible=%7d bugs=%d trunc=%b %.2fs\n%!"
            b.name t.test_name r.stats.explored r.stats.feasible (List.length r.bugs)
            r.stats.truncated (Unix.gettimeofday () -. t0);
          List.iter (fun bug -> Format.printf "    %a@." Mc.Bug.pp bug) r.bugs)
        b.tests)
    benches
