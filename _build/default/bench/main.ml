(* Regenerates every table and figure in the paper's evaluation
   (section 6), plus the ablations called out in DESIGN.md.

   Usage:
     bench/main.exe            run everything (fig7 fig8 expr known ablation)
     bench/main.exe fig7       Figure 7  — benchmark results
     bench/main.exe fig8       Figure 8  — bug-injection detection
     bench/main.exe expr       section 6.2 expressiveness statistics
     bench/main.exe known      section 6.4.1 known bugs
     bench/main.exe ablation   design-choice ablations
     bench/main.exe timing     Bechamel timing (one Test per Figure-7 row) *)

module E = Mc.Explorer
module B = Structures.Benchmark
module X = Harness.Experiments

let fig7_benches =
  (* the ten rows of the paper's Figure 7 *)
  List.filter_map Structures.Registry.find
    [
      "Chase-Lev Deque";
      "SPSC Queue";
      "RCU";
      "Lockfree Hashtable";
      "MCS Lock";
      "MPMC Queue";
      "M&S Queue";
      "Linux RW Lock";
      "Seqlock";
      "Ticket Lock";
    ]

let extra_benches =
  List.filter_map Structures.Registry.find
    [
      "Blocking Queue";
      "Atomic Register";
      "Contention-Free Lock";
      "Treiber Stack";
      "Peterson Lock";
      "Barrier";
      "RCU Grace";
      "Lockfree Set";
      "Dekker Lock";
      "Lamport Ring";
      "CLH Lock";
      "Lazy Init";
    ]

let section title = Format.printf "@.== %s ==@.@." title

let run_fig7 () =
  section "Figure 7: benchmark results (paper: all rows finish within seconds)";
  let rows = X.figure7 fig7_benches in
  X.pp_figure7 Format.std_formatter rows;
  Format.printf "@.Extensions (not in the paper's table):@.";
  X.pp_figure7 Format.std_formatter (X.figure7 extra_benches)

let run_fig8 () =
  section "Figure 8: bug-injection detection (paper: 93%% overall, MPMC the outlier)";
  let rows = X.figure8 fig7_benches in
  X.pp_figure8 Format.std_formatter rows;
  (match X.undetected rows with
  | [] -> Format.printf "@.No undetected injections.@."
  | l ->
    Format.printf
      "@.Undetected injections (candidate overly-strong parameters, cf. section 6.4.3):@.";
    List.iter (fun (b, s) -> Format.printf "  %-22s %s@." b s) l);
  Format.printf "@.Extensions (not in the paper's table):@.";
  X.pp_figure8 Format.std_formatter (X.figure8 extra_benches)

let run_expr () =
  section "Section 6.2: expressiveness statistics";
  Format.printf
    "(paper: 11.5 lines of spec per benchmark, 27 API methods, 33 ordering points = 1.22 per \
     method, 7 admissibility lines)@.@.";
  X.pp_expressiveness Format.std_formatter (X.expressiveness fig7_benches)

let run_known () =
  section "Section 6.4.1: known bugs (paper: 3 known bugs detected)";
  X.pp_known_bugs Format.std_formatter (X.known_bugs ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let explore_with ?(scheduler = Mc.Scheduler.default_config) ?checker (b : B.t) (t : B.test)
    ~ords =
  E.explore
    ~config:{ E.default_config with scheduler; max_executions = Some 400_000 }
    ~on_feasible:(Cdsspec.Checker.hook ?config:checker b.spec)
    (t.program ords)

let find_test (b : B.t) name = List.find (fun (t : B.test) -> t.test_name = name) b.tests

let ablation_sleep_sets () =
  Format.printf "@.-- Ablation: sleep-set partial-order reduction --@.";
  Format.printf "%-18s %-14s %10s %10s %8s@." "Benchmark" "Test" "explored" "feasible" "time";
  let cases =
    [
      (Structures.Ms_queue.benchmark, "2enq-2deq");
      (Structures.Blocking_queue.benchmark, "racing-enqs");
      (Structures.Ticket_lock.benchmark, "two-threads");
    ]
  in
  List.iter
    (fun ((b : B.t), test_name) ->
      let t = find_test b test_name in
      let ords = Structures.Ords.default b.sites in
      List.iter
        (fun sleep_sets ->
          let r = explore_with ~scheduler:{ b.scheduler with sleep_sets } b t ~ords in
          Format.printf "%-18s %-14s %10d %10d %7.2fs   (sleep sets %s)@." b.name test_name
            r.stats.explored r.stats.feasible r.stats.time
            (if sleep_sets then "on" else "off"))
        [ true; false ])
    cases

let ablation_history_sampling () =
  Format.printf "@.-- Ablation: exhaustive vs sampled sequential histories --@.";
  let b = Structures.Ms_queue.benchmark in
  let t = find_test b "2enq-2deq" in
  let buggy = snd (List.hd Structures.Ms_queue.known_bugs) in
  List.iter
    (fun (label, checker) ->
      let correct = explore_with ~checker b t ~ords:(Structures.Ords.default b.sites) in
      let bug = explore_with ~checker b t ~ords:buggy in
      Format.printf "%-28s correct: %.2fs, %d false reports; buggy: %s@." label
        correct.stats.time
        (List.length correct.bugs)
        (if bug.bugs <> [] then "detected" else "MISSED"))
    [
      ("exhaustive histories", Cdsspec.Checker.default_config);
      ( "sampled (5 per execution)",
        { Cdsspec.Checker.default_config with sample_histories = Some (5, 42) } );
      ( "sampled (1 per execution)",
        { Cdsspec.Checker.default_config with sample_histories = Some (1, 42) } );
    ]

let ablation_loop_bound () =
  Format.printf "@.-- Ablation: spin-loop bound sensitivity --@.";
  let b = Structures.Seqlock.benchmark in
  let t = find_test b "1write-1read" in
  let ords = Structures.Ords.default b.sites in
  List.iter
    (fun loop_bound ->
      let r = explore_with ~scheduler:{ b.scheduler with loop_bound } b t ~ords in
      Format.printf "loop bound %d: explored=%d feasible=%d time=%.2fs@." loop_bound
        r.stats.explored r.stats.feasible r.stats.time)
    [ 2; 3; 4; 6 ]

let run_ablation () =
  section "Ablations (DESIGN.md design choices)";
  ablation_sleep_sets ();
  ablation_history_sampling ();
  ablation_loop_bound ()

(* ------------------------------------------------------------------ *)
(* Bechamel timing: one Test.make per Figure-7 row, measuring a full
   model-checking run of the benchmark's first unit test.              *)

let bechamel_tests () =
  let open Bechamel in
  let test_of (b : B.t) =
    let t = List.hd b.tests in
    let ords = Structures.Ords.default b.sites in
    Test.make ~name:b.name
      (Staged.stage (fun () ->
           ignore
             (E.explore
                ~config:{ E.default_config with scheduler = b.scheduler }
                ~on_feasible:(Cdsspec.Checker.hook b.spec)
                (t.program ords))))
  in
  Test.make_grouped ~name:"figure7" (List.map test_of (fig7_benches @ extra_benches))

let run_timing () =
  section "Bechamel: per-benchmark model-checking latency (first unit test)";
  let open Bechamel in
  let open Toolkit in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "%-34s %14s@." "Benchmark" "time/run";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
        let ms = est /. 1e6 in
        Format.printf "%-34s %11.2f ms@." name ms
      | _ -> Format.printf "%-34s %14s@." name "n/a")
    results

let () =
  let jobs =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> [ "fig7"; "fig8"; "expr"; "known"; "ablation"; "timing" ]
  in
  List.iter
    (fun job ->
      match job with
      | "fig7" -> run_fig7 ()
      | "fig8" -> run_fig8 ()
      | "expr" -> run_expr ()
      | "known" -> run_known ()
      | "ablation" -> run_ablation ()
      | "timing" -> run_timing ()
      | other -> Format.printf "unknown job %S (fig7|fig8|expr|known|ablation|timing)@." other)
    jobs
