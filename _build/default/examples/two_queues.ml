(* The paper's motivating example (Figures 3 and 4): two queues, two
   threads:

       T1: x.enq(1); r1 = y.deq()      T2: y.enq(1); r2 = x.deq()

   Under release/acquire there are executions with r1 = r2 = -1 — no
   sequential history of a FIFO queue explains that, so the queues are
   not linearizable (and not even sequentially consistent). CDSSpec's
   non-deterministic specification accepts the execution anyway: each
   empty-handed deq is justified by a justifying prefix on which the
   sequential queue is also empty (Figure 4e).

     dune exec examples/two_queues.exe *)

module P = Mc.Program
module BQ = Structures.Blocking_queue

let () =
  let ords = Structures.Ords.default BQ.sites in
  let r1 = ref 99 and r2 = ref 99 in
  let outcomes = ref [] in
  let program () =
    let x = BQ.create () in
    let y = BQ.create () in
    let t1 =
      P.spawn (fun () ->
          BQ.enq ords x 1;
          r1 := BQ.deq ords y)
    in
    let t2 =
      P.spawn (fun () ->
          BQ.enq ords y 1;
          r2 := BQ.deq ords x)
    in
    P.join t1;
    P.join t2
  in
  let result =
    Mc.Explorer.explore
      ~on_feasible:(fun exec annots ->
        let o = (!r1, !r2) in
        if not (List.mem o !outcomes) then outcomes := o :: !outcomes;
        (* both queues share one specification; check each call stream *)
        Cdsspec.Checker.hook BQ.spec exec annots)
      program
  in
  Format.printf "explored %d executions (%d feasible)@." result.stats.explored
    result.stats.feasible;
  Format.printf "observed outcomes (r1, r2): %s@."
    (String.concat ", "
       (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) (List.sort compare !outcomes)));
  if List.mem (-1, -1) !outcomes then
    Format.printf
      "-> the non-linearizable outcome r1 = r2 = -1 occurs, as the paper's Figure 3 shows@.";
  match result.bugs with
  | [] ->
    Format.printf
      "-> and CDSSpec accepts every execution: each spurious empty deq has a justifying prefix@."
  | bugs -> List.iter (fun b -> Format.printf "UNEXPECTED: %a@." Mc.Bug.pp b) bugs
