examples/quickstart.mli:
