examples/counter_tutorial.ml: C11 Cdsspec Format List Mc
