examples/bughunt.mli:
