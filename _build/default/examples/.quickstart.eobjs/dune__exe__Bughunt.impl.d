examples/bughunt.ml: Cdsspec Format List Mc Printf Structures
