examples/two_queues.mli:
