examples/counter_tutorial.mli:
