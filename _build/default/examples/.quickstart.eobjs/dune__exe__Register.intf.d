examples/register.mli:
