examples/two_queues.ml: Cdsspec Format List Mc Printf String Structures
