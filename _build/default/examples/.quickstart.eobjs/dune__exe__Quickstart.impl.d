examples/quickstart.ml: C11 Cdsspec Format List Mc Structures
