examples/register.ml: Cdsspec Format List Mc String Structures
