(* Tutorial: specifying YOUR data structure from scratch.

     dune exec examples/counter_tutorial.exe

   We build the paper's section 3.2 example — a counter implemented
   exclusively with relaxed atomics — and give it the "very weak"
   specification the paper sketches: increments and reads may observe
   stale values, but a read is only justified if its value is consistent
   with some justifying prefix plus concurrently running increments. In
   particular, after a synchronization point (a thread join), a read MUST
   return the exact number of increments — which the checker verifies. *)

module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
open C11.Memory_order

(* ---------- 1. the implementation, against the atomics DSL ---------- *)

type counter = { cell : P.loc }

let create () =
  let cell = P.malloc 1 in
  P.store Relaxed cell 0;
  { cell }

let increment c =
  A.api_proc ~obj:c.cell ~name:"increment" ~args:[] (fun () ->
      ignore (P.fetch_add Relaxed c.cell 1);
      (* the fetch_add is this call's ordering point *)
      A.op_define ())

let read c =
  A.api_fun ~obj:c.cell ~name:"read" ~args:[] (fun () ->
      let v = P.load Relaxed c.cell in
      A.op_define ();
      v)

(* ---------- 2. the specification -------------------------------------

   Equivalent sequential structure: an integer counter. The read is
   non-deterministic; its justifying condition says: on some justifying
   prefix, the returned value lies between the prefix's count and the
   prefix's count plus the number of concurrent increments. *)

let spec =
  let increment_spec =
    { Spec.default_method with side_effect = Some (fun st _ -> (st + 1, None)) }
  in
  let read_spec =
    {
      Spec.default_method with
      side_effect = Some (fun st _ -> (st, Some st));
      postcondition = Some (fun _ _ ~s_ret:_ -> true);
      justifying_postcondition =
        Some
          (fun st (info : Spec.info) ~s_ret:_ ->
            let c_ret = Cdsspec.Call.ret_or min_int info.call in
            let concurrent_incs =
              List.length
                (List.filter (fun (c : Cdsspec.Call.t) -> c.name = "increment") info.concurrent)
            in
            st <= c_ret && c_ret <= st + concurrent_incs);
    }
  in
  Spec.Packed
    {
      name = "relaxed-counter";
      initial = (fun () -> 0);
      methods = [ ("increment", increment_spec); ("read", read_spec) ];
      admissibility = [];
      accounting =
        { spec_lines = 6; ordering_point_lines = 2; admissibility_lines = 0; api_methods = 2 };
    }

(* ---------- 3. model-check unit tests against the spec --------------- *)

let () =
  (* concurrent reads may lag, but never exceed what could have happened *)
  let concurrent_test () =
    let c = create () in
    let t1 =
      P.spawn (fun () ->
          increment c;
          increment c)
    in
    let t2 = P.spawn (fun () -> ignore (read c)) in
    P.join t1;
    P.join t2
  in
  let r = Mc.Explorer.explore ~on_feasible:(Cdsspec.Checker.hook spec) concurrent_test in
  Format.printf "concurrent reads: %d executions, violations: %d@." r.stats.explored
    (List.length r.bugs);

  (* after a join, the count is exact — the paper's synchronization-point
     guarantee. We assert it in the program; the spec also enforces it
     (no concurrent increments remain, so only the exact prefix count is
     justified). *)
  let post_join_test () =
    let c = create () in
    let t1 = P.spawn (fun () -> increment c) in
    let t2 = P.spawn (fun () -> increment c) in
    P.join t1;
    P.join t2;
    let v = read c in
    P.check (v = 2) "count exact after join"
  in
  let r = Mc.Explorer.explore ~on_feasible:(Cdsspec.Checker.hook spec) post_join_test in
  Format.printf "post-join read:   %d executions, violations: %d@." r.stats.explored
    (List.length r.bugs);

  (* and the spec has teeth: a counter whose read lies about the total is
     rejected as unjustifiable *)
  let lying_test () =
    let c = create () in
    increment c;
    ignore
      (A.api_fun ~obj:c.cell ~name:"read" ~args:[] (fun () ->
           ignore (P.load Relaxed c.cell);
           A.op_define ();
           7))
  in
  let r = Mc.Explorer.explore ~on_feasible:(Cdsspec.Checker.hook spec) lying_test in
  Format.printf "lying counter:    rejected = %b@." (r.bugs <> [])
