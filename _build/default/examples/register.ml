(* The relaxed atomic register of the paper's section 2.2: the simplest
   data structure whose behaviour no sequential history explains. The
   specification constrains non-determinism exactly as Definition 4
   prescribes: a read is justified by the most recent write of one of its
   justifying prefixes, or by a concurrent write.

     dune exec examples/register.exe *)

module P = Mc.Program
module R = Structures.Atomic_register

let () =
  let ords = Structures.Ords.default R.sites in

  (* Two writers and a reader: the reader may see 0 (initial), 1 or 2
     depending on coherence — every outcome is justified. *)
  let seen = ref [] in
  let program () =
    let r = R.create () in
    let w1 = P.spawn (fun () -> R.write ords r 1) in
    let w2 = P.spawn (fun () -> R.write ords r 2) in
    let rd =
      P.spawn (fun () ->
          let v = R.read ords r in
          if not (List.mem v !seen) then seen := v :: !seen)
    in
    P.join w1;
    P.join w2;
    P.join rd
  in
  let result = Mc.Explorer.explore ~on_feasible:(Cdsspec.Checker.hook R.spec) program in
  Format.printf "reader observed: %s — all justified (%d executions, no violations: %b)@."
    (String.concat ", " (List.map string_of_int (List.sort compare !seen)))
    result.stats.explored (result.bugs = []);

  (* The same-thread case the paper stresses: after a write, the writer's
     own read cannot return an older value — the justifying prefix pins
     it. Model a buggy register that ignores coherence by lying in the
     instrumentation: CDSSpec rejects it. *)
  let lying_program () =
    let r = R.create () in
    R.write ords r 5;
    ignore
      (Cdsspec.Annotations.api_fun ~name:"read" ~args:[] (fun () ->
           let real = R.read ords r in
           ignore real;
           0 (* claim we read the initial value *)))
  in
  let result = Mc.Explorer.explore ~on_feasible:(Cdsspec.Checker.hook R.spec) lying_program in
  Format.printf "@.a register that returns stale values it happens-after is rejected:@.";
  List.iter (fun b -> Format.printf "  %a@." Mc.Bug.pp b) result.bugs
