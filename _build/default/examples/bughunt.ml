(* Reproduce the paper's section 6.4.1: the three known bugs.

     dune exec examples/bughunt.exe

   - Two AutoMO bugs in the Michael-Scott queue port (weaker-than-
     necessary memory orders on the linking CAS and on the dequeue's
     next load).
   - The CDSChecker-found bug in the published C11 Chase-Lev deque: a
     steal racing with a resizing push reads uninitialized memory because
     the new buffer is published with a too-weak order. As in the paper,
     the bug is caught both by the built-in uninitialized-load check and
     — when the resized buffer is zero-initialized to silence that check
     — as a specification violation (the steal returns the wrong item). *)

module P = Mc.Program
module E = Mc.Explorer
module MS = Structures.Ms_queue
module CL = Structures.Chase_lev_deque

let hunt label spec program =
  let r = E.explore ~on_feasible:(Cdsspec.Checker.hook spec) program in
  Format.printf "%s:@." label;
  (match r.bugs with
  | [] -> Format.printf "  nothing found@."
  | bugs -> List.iter (fun b -> Format.printf "  %a@." Mc.Bug.pp b) bugs);
  Format.printf "  (%d executions explored in %.2fs)@.@." r.stats.explored r.stats.time

let () =
  List.iter
    (fun (site, ords) ->
      let program () =
        let q = MS.create () in
        let t1 = P.spawn (fun () -> MS.enq ords q 1) in
        let t2 = P.spawn (fun () -> ignore (MS.deq ords q)) in
        P.join t1;
        P.join t2
      in
      hunt (Printf.sprintf "M&S queue with %s weakened (AutoMO bug)" site) MS.spec program)
    MS.known_bugs;

  let steal_during_resize ~init_resize ords () =
    let q = CL.create ~capacity:1 ~init_resize () in
    let thief = P.spawn (fun () -> ignore (CL.steal ords q)) in
    CL.push ords q 1;
    CL.push ords q 2;
    P.join thief
  in
  hunt "Chase-Lev deque, pre-fix buffer publication (CDSChecker bug)" CL.spec
    (steal_during_resize ~init_resize:false CL.known_buggy_ords);
  hunt "same bug with the resized buffer zero-initialized (spec catches it instead)" CL.spec
    (steal_during_resize ~init_resize:true CL.known_buggy_ords);
  hunt "fixed publication (release): clean" CL.spec
    (steal_during_resize ~init_resize:false (Structures.Ords.default CL.sites))
