(* Quickstart: specify and model-check the paper's blocking queue
   (Figures 2 and 6) in a few lines.

     dune exec examples/quickstart.exe

   The flow is always the same:
   1. write the data structure against the Mc.Program DSL, with
      ordering-point annotations (here: Structures.Blocking_queue);
   2. write its CDSSpec specification (an equivalent sequential structure
      plus assertions — here Figure 6's non-deterministic spec);
   3. model-check a unit test, checking the spec on every feasible
      execution. *)

module P = Mc.Program
module BQ = Structures.Blocking_queue

let explore ~ords =
  (* one enqueuer racing one dequeuer, as in the paper's Figure 1 *)
  let unit_test () =
    let q = BQ.create () in
    let t1 = P.spawn (fun () -> BQ.enq ords q 42) in
    let t2 = P.spawn (fun () -> ignore (BQ.deq ords q)) in
    P.join t1;
    P.join t2
  in
  Mc.Explorer.explore ~on_feasible:(Cdsspec.Checker.hook BQ.spec) unit_test

let () =
  (* With the published memory orders the specification holds on every
     execution. *)
  let r = explore ~ords:(Structures.Ords.default BQ.sites) in
  Format.printf "correct queue:   explored %d executions (%d feasible) in %.3fs — %s@."
    r.stats.explored r.stats.feasible r.stats.time
    (if r.bugs = [] then "specification holds" else "BUGS?!");

  (* Weaken the dequeue's next-pointer load to relaxed — the Figure 1
     scenario: the dequeuer can obtain a node it is not synchronized
     with. CDSSpec reports it on the spot. *)
  let weak = Structures.Ords.with_order BQ.sites "deq_load_next" C11.Memory_order.Relaxed in
  let r = explore ~ords:weak in
  Format.printf "@.weakened queue (deq_load_next := relaxed):@.";
  List.iter (fun bug -> Format.printf "  found: %a@." Mc.Bug.pp bug) r.bugs;
  if r.bugs = [] then Format.printf "  (nothing found — unexpected!)@."
