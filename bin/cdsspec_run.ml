(* Command-line driver: model-check benchmark unit tests against their
   CDSSpec specifications, optionally weakening memory-order sites. *)

module E = Mc.Explorer
module B = Structures.Benchmark

let find_bench name =
  match Structures.Registry.find name with
  | Some b -> Ok b
  | None ->
    Error
      (`Msg
        (Printf.sprintf "unknown benchmark %S; try: %s" name
           (String.concat ", "
              (List.map (fun (b : B.t) -> b.name) Structures.Registry.all))))

let list_cmd () =
  List.iter
    (fun (b : B.t) ->
      Format.printf "%-22s tests: %s@." b.name
        (String.concat ", " (List.map (fun (t : B.test) -> t.test_name) b.tests));
      Format.printf "%-22s sites: %s@." ""
        (String.concat ", "
           (List.map
              (fun (s : Structures.Ords.site) ->
                Printf.sprintf "%s:%s" s.name (C11.Memory_order.to_string s.order))
              b.sites)))
    Structures.Registry.all;
  0

let build_ords (b : B.t) weaken overrides =
  let sites =
    List.map
      (fun (s : Structures.Ords.site) ->
        match List.assoc_opt s.name overrides with
        | Some order -> { s with Structures.Ords.order }
        | None -> s)
      b.sites
  in
  match weaken with
  | None -> Ok (Structures.Ords.default sites)
  | Some site -> (
    match Structures.Ords.weakened sites site with
    | Some ords -> Ok ords
    | None -> Error (`Msg (Printf.sprintf "site %s cannot be weakened further" site))
    | exception Invalid_argument m -> Error (`Msg m))

let litmus_cmd filter =
  let tests =
    match filter with
    | None -> Litmus.all
    | Some name -> ( match Litmus.find name with Some t -> [ t ] | None -> [])
  in
  if tests = [] then `Msg "unknown litmus test (see `litmus` with no argument for the corpus)"
  else begin
    let all_ok = ref true in
    List.iter
      (fun t ->
        let r = Litmus.run t in
        if not (Litmus.ok r) then all_ok := false;
        Format.printf "%a@." Litmus.pp_result r)
      tests;
    if !all_ok then `Ok else `Bug
  end

let check_cmd name test_filter weaken overrides max_execs verbose dot jobs =
  match find_bench name with
  | Error e -> e
  | Ok b -> (
    match build_ords b weaken overrides with
    | Error e -> e
    | Ok ords ->
      let tests =
        match test_filter with
        | None -> b.tests
        | Some t -> List.filter (fun (x : B.test) -> x.test_name = t) b.tests
      in
      if tests = [] then `Msg "no matching test"
      else begin
        let any_bug = ref false in
        List.iter
          (fun (t : B.test) ->
            let r =
              Mc.Parallel.explore ~jobs
                ~config:
                  { E.default_config with scheduler = b.scheduler; max_executions = max_execs }
                ~on_feasible:(Cdsspec.Checker.hook b.spec)
                (t.program ords)
            in
            Format.printf "%s/%s: explored %d, feasible %d, %.2fs%s@." b.name t.test_name
              r.stats.explored r.stats.feasible r.stats.time
              (if r.stats.truncated then " (truncated)" else "");
            List.iter (fun bug -> Format.printf "  BUG: %a@." Mc.Bug.pp bug) r.bugs;
            if r.bugs <> [] then any_bug := true;
            (match r.first_buggy_trace with
            | Some trace when verbose ->
              Format.printf "  first buggy execution:@.%s@."
                (String.concat "\n"
                   (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' trace)))
            | _ -> ());
            match r.first_buggy_exec, dot with
            | Some exec, Some path ->
              C11.Dot.write_file exec path;
              Format.printf "  wrote %s (render with `dot -Tsvg`)@." path
            | _ -> ())
          tests;
        if !any_bug then `Bug else `Ok
      end)

let inject_cmd name jobs =
  match find_bench name with
  | Error e -> e
  | Ok b ->
    let limits = { Harness.Experiments.default_limits with jobs } in
    let rows = Harness.Experiments.figure8 ~limits [ b ] in
    List.iter
      (fun (r : Harness.Experiments.fig8_row) ->
        List.iter
          (fun (o : Harness.Experiments.injection_outcome) ->
            Format.printf "%-24s -> %-8s %s@." o.site
              (C11.Memory_order.to_string o.weakened_to)
              (match o.detection with
              | Harness.Experiments.Builtin -> "detected (built-in)"
              | Admissibility -> "detected (admissibility)"
              | Assertion -> "detected (assertion)"
              | Missed -> "NOT DETECTED"))
          r.outcomes)
      rows;
    `Ok

open Cmdliner

let bench_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")

let exit_of = function
  | `Ok -> 0
  | `Bug -> 1
  | `Msg m ->
    prerr_endline m;
    2

let ord_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i -> (
      let site = String.sub s 0 i in
      let o = String.sub s (i + 1) (String.length s - i - 1) in
      match C11.Memory_order.of_string o with
      | Some order -> Ok (site, order)
      | None -> Error (`Msg ("unknown memory order " ^ o)))
    | None -> Error (`Msg "expected SITE=ORDER")
  in
  let print ppf (site, order) = Format.fprintf ppf "%s=%a" site C11.Memory_order.pp order in
  Arg.conv (parse, print)

(* 0 means "one domain per recommended core"; the default comes from
   CDSSPEC_JOBS so scripted sweeps can set parallelism globally. *)
let jobs_term =
  let doc = "Explore with $(docv) parallel domains (0 = one per core)." in
  Term.(
    const (fun j -> if j <= 0 then Domain.recommended_domain_count () else j)
    $ Arg.(
        value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "CDSSPEC_JOBS") ~doc))

let check_term =
  let test =
    Arg.(value & opt (some string) None & info [ "t"; "test" ] ~docv:"TEST" ~doc:"Run only this unit test.")
  in
  let weaken =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "weaken" ] ~docv:"SITE" ~doc:"Weaken this memory-order site one step.")
  in
  let overrides =
    Arg.(
      value & opt_all ord_conv [] & info [ "o"; "ord" ] ~docv:"SITE=ORDER" ~doc:"Pin a site's order.")
  in
  let max_execs =
    Arg.(
      value
      & opt (some int) (Some 500_000)
      & info [ "max-executions" ] ~docv:"N" ~doc:"Stop exploration after N runs.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the first buggy trace.") in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the first buggy execution graph as Graphviz DOT.")
  in
  Term.(
    const (fun name test weaken overrides max_execs verbose dot jobs ->
        exit_of (check_cmd name test weaken overrides max_execs verbose dot jobs))
    $ bench_arg $ test $ weaken $ overrides $ max_execs $ verbose $ dot $ jobs_term)

let cmds =
  [
    Cmd.v (Cmd.info "list" ~doc:"List benchmarks, unit tests and memory-order sites.")
      Term.(const list_cmd $ const ());
    Cmd.v
      (Cmd.info "check"
         ~doc:"Model-check a benchmark's unit tests against its CDSSpec specification.")
      check_term;
    Cmd.v
      (Cmd.info "inject" ~doc:"Weaken each site in turn and report how each injection is caught.")
      Term.(const (fun name jobs -> exit_of (inject_cmd name jobs)) $ bench_arg $ jobs_term);
    Cmd.v
      (Cmd.info "litmus" ~doc:"Run the litmus-test corpus (or one named test).")
      Term.(
        const (fun filter -> exit_of (litmus_cmd filter))
        $ Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"));
  ]

let () =
  let doc = "CDSSpec: check concurrent data structures under the C/C++11 memory model" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "cdsspec_run" ~doc) cmds))
