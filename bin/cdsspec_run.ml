(* Command-line driver: model-check benchmark unit tests against their
   CDSSpec specifications, optionally weakening memory-order sites. *)

module E = Mc.Explorer
module B = Structures.Benchmark

let find_bench name =
  match Structures.Registry.find name with
  | Some b -> Ok b
  | None ->
    (* Near-miss suggestions beat dumping the whole registry; the serve
       daemon returns the same suggestions in its structured error. *)
    Error
      (`Msg
        (match Structures.Registry.suggest name with
        | [] ->
          Printf.sprintf "unknown structure %S (run `cdsspec_run list` for the registry)" name
        | suggestions ->
          Printf.sprintf "unknown structure %S; did you mean %s?" name
            (String.concat ", " suggestions)))

let list_cmd () =
  List.iter
    (fun (b : B.t) ->
      Format.printf "%-22s tests: %s@." b.name
        (String.concat ", " (List.map (fun (t : B.test) -> t.test_name) b.tests));
      Format.printf "%-22s sites: %s@." ""
        (String.concat ", "
           (List.map
              (fun (s : Structures.Ords.site) ->
                Printf.sprintf "%s:%s" s.name (C11.Memory_order.to_string s.order))
              (Structures.Registry.sites b)));
      let weakenable, total = Structures.Registry.advisor_coverage b in
      Format.printf "%-22s advisor: %d/%d sites weakenable@." "" weakenable total)
    Structures.Registry.all;
  0

let build_ords (b : B.t) weaken overrides =
  match Structures.Ords.with_overrides b.sites overrides with
  | exception Invalid_argument m -> Error (`Msg m)
  | sites -> (
  match weaken with
  | None -> Ok (Structures.Ords.default sites)
  | Some site -> (
    match Structures.Ords.weakened sites site with
    | Some ords -> Ok ords
    | None -> Error (`Msg (Printf.sprintf "site %s cannot be weakened further" site))
    | exception Invalid_argument m -> Error (`Msg m)))

let litmus_cmd filter =
  let tests =
    match filter with
    | None -> Litmus.all
    | Some name -> ( match Litmus.find name with Some t -> [ t ] | None -> [])
  in
  if tests = [] then `Msg "unknown litmus test (see `litmus` with no argument for the corpus)"
  else begin
    let all_ok = ref true in
    List.iter
      (fun t ->
        let r = Litmus.run t in
        if not (Litmus.ok r) then all_ok := false;
        Format.printf "%a@." Litmus.pp_result r)
      tests;
    if !all_ok then `Ok else `Bug
  end

(* Shared post-exploration reporting: the exhaustive and fuzz paths both
   funnel through an Explorer-shaped result. *)
let report_result ~verbose ~dot (b : B.t) (t : B.test) (r : E.result) =
  let c = r.stats.E.check in
  if c.cache_hits + c.cache_misses > 0 then
    Format.printf "  check cache: %d hits / %d misses (%d entries)@." c.cache_hits c.cache_misses
      c.cache_entries;
  (* A capped enumeration is only a partial proof: say so instead of
     silently under-checking (use --strict-histories to make it fail). *)
  if c.histories_truncated > 0 then
    Format.printf
      "  WARNING: %d check instance(s) hit the max_histories cap; unchecked histories remain@."
      c.histories_truncated;
  if c.prefixes_truncated > 0 then
    Format.printf
      "  WARNING: %d check instance(s) hit the max_prefixes cap; unchecked justifying \
       subhistories remain@."
      c.prefixes_truncated;
  List.iter (fun bug -> Format.printf "  BUG: %a@." Mc.Bug.pp bug) r.bugs;
  (match r.first_buggy_trace with
  | Some trace when verbose ->
    Format.printf "  first buggy execution:@.%s@."
      (String.concat "\n" (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' trace)))
  | _ -> ());
  (match r.first_buggy_exec, dot with
  | Some exec, Some path ->
    C11.Dot.write_file exec path;
    Format.printf "  wrote %s (render with `dot -Tsvg`)@." path
  | _ -> ());
  ignore (b, t);
  r.bugs <> []

let exhaustive_one ?store ~checker ~use_cache ~max_execs ~jobs ~prune ~engine ~profile (b : B.t)
    ~ords (t : B.test) =
  let r, disposition =
    Store.explore_checked ?store ~checker ~use_cache ~max_execs ~jobs ~prune ~engine b ~ords t
  in
  Format.printf "%s/%s: explored %d, feasible %d, %d distinct graph%s, %.2fs%s@." b.name
    t.test_name r.stats.explored r.stats.feasible r.stats.distinct_graphs
    (if r.stats.distinct_graphs = 1 then "" else "s")
    r.stats.time
    (if r.stats.truncated then " (truncated)" else "");
  (match disposition with
  | `Off -> ()
  | `Hit -> Format.printf "  store: hit (warm re-validation; stored graph set merged)@."
  | `Miss ->
    let saved =
      if prune && r.bugs = [] then
        if r.stats.truncated then ", saved (partial)" else ", saved"
      else ", not saved"
    in
    Format.printf "  store: miss (cold run%s)@." saved);
  let s = r.stats in
  if s.pruned_equiv + s.pruned_sleep_set + s.pruned_loop_bound + s.pruned_max_actions > 0 then
    Format.printf "  pruned: %d equivalence, %d sleep-set, %d loop-bound, %d max-actions@."
      s.pruned_equiv s.pruned_sleep_set s.pruned_loop_bound s.pruned_max_actions;
  Format.printf "  engine: %s, %.0f minor words/exec%s@."
    (match engine with `Arena -> "arena" | `Legacy -> "legacy")
    (if s.explored > 0 then s.minor_words /. float_of_int s.explored else 0.)
    (if s.snapshots > 0 || s.restores > 0 then
       Printf.sprintf ", %d snapshots, %d restores" s.snapshots s.restores
     else "");
  if profile then begin
    (* Per-phase work units: where an execution's wall time goes. *)
    let per v = if s.explored > 0 then float_of_int v /. float_of_int s.explored else 0. in
    Format.printf "  profile: %d commits (%.1f/exec), %d fiber switches (%.1f/exec), %d inline \
                   ops (%.1f/exec)@."
      s.commits (per s.commits) s.fiber_switches (per s.fiber_switches) s.inline_ops
      (per s.inline_ops);
    Format.printf "  profile: %d rf queries (%d fast, %d rejected), %d snapshots, %d restores, \
                   check cache %d/%d@."
      s.rf_queries s.rf_fast s.rf_rejected s.snapshots s.restores s.check.cache_hits
      (s.check.cache_hits + s.check.cache_misses)
  end;
  r

let fuzz_one ~checker ~use_cache ~max_execs ~seed ~time_budget ~bias (b : B.t) ~ords (t : B.test)
    =
  let cache = Cdsspec.Checker.create_cache ~memoize:use_cache () in
  let r =
    Fuzz.Engine.run
      ~config:
        {
          Fuzz.Engine.default_config with
          scheduler = { b.scheduler with Mc.Scheduler.sleep_sets = false };
          bias;
          max_executions = max_execs;
          time_budget;
        }
      ~on_feasible:(Cdsspec.Checker.hook ~config:checker ~cache b.spec)
      ~check:(fun () -> Cdsspec.Checker.cache_counters cache)
      ~seed (t.program ords)
  in
  Format.printf "%s/%s: fuzzed %d (%s, seed %d), feasible %d, coverage %d, %.0f execs/s, %.2fs%s@."
    b.name t.test_name r.stats.executions
    (Fuzz.Bias.to_string r.bias)
    r.seed r.stats.feasible r.stats.coverage
    (if r.stats.time > 0. then float_of_int r.stats.executions /. r.stats.time else 0.)
    r.stats.time
    (if r.stats.truncated then " (truncated)" else "");
  (match r.stats.time_to_first_bug with
  | Some t -> Format.printf "  time to first bug: %.3fs@." t
  | None -> ());
  List.iter
    (fun (f : Fuzz.Engine.found) ->
      Format.printf "  repro: --fuzz --seed %d (execution %d), or --replay %s@." r.seed
        f.execution
        (Fuzz.Engine.trace_to_string f.minimized))
    r.found;
  Fuzz.Engine.explorer_result r

let replay_one ~checker ~use_cache ~decisions (b : B.t) ~ords (t : B.test) =
  let cache = Cdsspec.Checker.create_cache ~memoize:use_cache () in
  let run_r, bugs =
    Fuzz.Engine.replay
      ~scheduler:{ b.scheduler with Mc.Scheduler.sleep_sets = false }
      ~on_feasible:(Cdsspec.Checker.hook ~config:checker ~cache b.spec)
      ~decisions (t.program ords)
  in
  let outcome =
    match run_r.outcome with
    | Mc.Scheduler.Complete -> "complete"
    | Pruned_loop_bound _ -> "pruned (loop bound)"
    | Pruned_max_actions -> "pruned (max actions)"
    | Pruned_sleep_set -> "pruned (sleep set)"
    | Pruned_equiv -> "pruned (equivalence)"
  in
  Format.printf "%s/%s: replayed %d decisions, %s@." b.name t.test_name (List.length decisions)
    outcome;
  let complete = run_r.outcome = Mc.Scheduler.Complete in
  {
    E.stats =
      {
        E.explored = 1;
        feasible = (if complete then 1 else 0);
        pruned_sleep_set = 0;
        pruned_loop_bound = 0;
        pruned_max_actions = 0;
        pruned_equiv = 0;
        distinct_graphs = (if complete then 1 else 0);
        buggy = (if bugs <> [] then 1 else 0);
        time = 0.;
        truncated = false;
        minor_words = 0.;
        snapshots = 0;
        restores = 0;
        commits = C11.Execution.commit_count run_r.exec;
        fiber_switches = run_r.switches;
        inline_ops = run_r.inline_ops;
        rf_queries = 0;
        rf_fast = 0;
        rf_rejected = 0;
        check = Cdsspec.Checker.cache_counters cache;
      };
    bugs;
    first_buggy_trace =
      (if bugs <> [] then Some (Fmt.str "%a" C11.Execution.pp run_r.exec) else None);
    first_buggy_exec = (if bugs <> [] then Some run_r.exec else None);
    graphs = (if complete then [ C11.Execution.fingerprint run_r.exec ] else []);
    closed = [];
  }

let check_cmd name test_filter weaken overrides max_execs verbose dot jobs no_prune legacy
    no_rf_kernel profile fuzzing replay store_dir =
  match find_bench name with
  | Error e -> e
  | Ok b -> (
    (* Override before anything touches [b]: the store keys on
       [b.scheduler], so kernel-off runs get their own entries. *)
    let b =
      if no_rf_kernel then
        { b with B.scheduler = { b.B.scheduler with Mc.Scheduler.rf_kernel = false } }
      else b
    in
    match build_ords b weaken overrides with
    | Error e -> e
    | Ok ords -> (
      let fuzz, seed, time_budget, bias, checker, use_cache = fuzzing in
      let store = Option.map Store.open_dir store_dir in
      let tests =
        match test_filter with
        | None -> b.tests
        | Some t -> List.filter (fun (x : B.test) -> x.test_name = t) b.tests
      in
      let run =
        match replay with
        | Some s -> (
          match Fuzz.Engine.trace_of_string s with
          | Some decisions -> Ok (replay_one ~checker ~use_cache ~decisions)
          | None -> Error (`Msg (Printf.sprintf "bad trace %S: expected dot-separated indices" s)))
        | None ->
          if fuzz then Ok (fuzz_one ~checker ~use_cache ~max_execs ~seed ~time_budget ~bias)
          else
            Ok
              (exhaustive_one ?store ~checker ~use_cache ~max_execs ~jobs ~prune:(not no_prune)
                 ~engine:(if legacy then `Legacy else `Arena) ~profile)
      in
      match run with
      | Error e -> e
      | Ok run ->
        if tests = [] then `Msg "no matching test"
        else begin
          let any_bug = ref false in
          List.iter
            (fun (t : B.test) ->
              let r = run b ~ords t in
              if report_result ~verbose ~dot b t r then any_bug := true)
            tests;
          (match store with
          | Some s ->
            let st = Store.stats s in
            Format.printf "store %s: %d hits, %d misses%s@." (Store.dir s) st.hits st.misses
              (if st.corrupt > 0 then Printf.sprintf ", %d corrupt entries discarded" st.corrupt
               else "")
          | None -> ());
          if !any_bug then `Bug else `Ok
        end))

(* The static-analysis pass: aggregate per-site facts, run the lint
   rules and (with --advise) the counterexample-guided weakening
   advisor. Exit codes are CI-friendly: 1 iff an error-severity finding
   (a violation under the published orders) exists. *)
let lint_cmd name all json advise max_execs time_budget jobs only_sites dot_dir =
  let benches =
    if all then Ok Structures.Registry.exhaustive
    else
      match name with
      | Some n -> Result.map (fun b -> [ b ]) (find_bench n)
      | None -> Error (`Msg "lint: name a benchmark or pass --all")
  in
  match benches with
  | Error e -> e
  | Ok benches ->
    let t0 = Mc.Monotonic.now () in
    let remaining () =
      Option.map (fun budget -> Float.max 0. (budget -. (Mc.Monotonic.now () -. t0))) time_budget
    in
    let any_error = ref false in
    let reports =
      List.filter_map
        (fun (b : B.t) ->
          match remaining () with
          | Some r when r <= 0. ->
            if not json then Format.printf "== %s == skipped (time budget exhausted)@." b.name;
            None
          | budget ->
            let scfg =
              {
                Analyze.Access_summary.default_config with
                max_executions = max_execs;
                time_budget = budget;
                jobs;
              }
            in
            let summary = Analyze.Access_summary.collect ~config:scfg b in
            let findings = Analyze.Lint.lint summary in
            if Analyze.Lint.max_severity findings = Some Analyze.Lint.Error then
              any_error := true;
            let advice =
              if advise then
                let wcfg =
                  {
                    Analyze.Weaken.default_config with
                    max_executions = max_execs;
                    time_budget = remaining ();
                    jobs;
                  }
                in
                Some (Analyze.Weaken.advise ~config:wcfg ?only_sites ~findings b ~summary)
              else None
            in
            (match (advice, dot_dir) with
            | Some a, Some dir ->
              List.iter
                (fun (c : Analyze.Weaken.candidate) ->
                  match c.witness_exec with
                  | Some exec ->
                    let sanitize s =
                      String.map (fun ch -> if ch = ' ' || ch = '/' then '-' else ch) s
                    in
                    let path =
                      Filename.concat dir
                        (Printf.sprintf "%s-%s-%s.dot" (sanitize b.name) (sanitize c.site)
                           (C11.Memory_order.to_string c.to_order))
                    in
                    (* cite the rf edges touching the weakened site *)
                    let highlight = ref [] in
                    for id = 0 to C11.Execution.num_actions exec - 1 do
                      let act = C11.Execution.action exec id in
                      match act.rf with
                      | Some src ->
                        let w = C11.Execution.action exec src in
                        if act.site = Some c.site || w.site = Some c.site then
                          highlight := (src, id) :: !highlight
                      | None -> ()
                    done;
                    C11.Dot.write_file ~highlight:!highlight ~highlight_sites:[ c.site ] exec
                      path;
                    if not json then Format.printf "  wrote %s@." path
                  | None -> ())
                a.candidates
            | _ -> ());
            Some { Analyze.Report.summary; findings; advice })
        benches
    in
    if json then
      print_string
        (Analyze.Json.to_string
           (Analyze.Report.wrap (List.map (Analyze.Report.to_json ~timings:true) reports)))
    else List.iter (Format.printf "%a" Analyze.Report.pp) reports;
    if !any_error then `Bug else `Ok

let inject_cmd name jobs =
  match find_bench name with
  | Error e -> e
  | Ok b ->
    let limits = { Harness.Experiments.default_limits with jobs } in
    let rows = Harness.Experiments.figure8 ~limits [ b ] in
    List.iter
      (fun (r : Harness.Experiments.fig8_row) ->
        List.iter
          (fun (o : Harness.Experiments.injection_outcome) ->
            Format.printf "%-24s -> %-8s %s@." o.site
              (C11.Memory_order.to_string o.weakened_to)
              (match o.detection with
              | Harness.Experiments.Builtin -> "detected (built-in)"
              | Admissibility -> "detected (admissibility)"
              | Assertion -> "detected (assertion)"
              | Missed -> "NOT DETECTED"))
          r.outcomes)
      rows;
    `Ok

(* ------------------------------------------------------------------ *)
(* Checking-as-a-service: daemon and client *)

let serve_cmd socket jobs store_dir =
  Serve.Server.serve ~socket ~jobs ?store_dir ();
  `Ok

module J = Analyze.Json

let ev_name ev = Option.bind (J.member "event" ev) J.to_str

let error_text ev =
  let message =
    Option.value (Option.bind (J.member "message" ev) J.to_str) ~default:"unknown error"
  in
  match J.member "suggestions" ev with
  | Some (J.List (_ :: _ as l)) ->
    Printf.sprintf "%s; did you mean %s?" message
      (String.concat ", " (List.filter_map J.to_str l))
  | _ -> message

let render_event ev =
  match ev_name ev with
  | Some "result" ->
    let test = Option.value (Option.bind (J.member "test" ev) J.to_str) ~default:"-" in
    let bugs = match J.member "bugs" ev with Some (J.List l) -> l | _ -> [] in
    let stat name = Option.value (Option.bind (J.member name ev) J.to_int) ~default:0 in
    let store =
      match Option.bind (J.member "store" ev) J.to_str with
      | Some ("hit" | "miss" as s) -> Printf.sprintf ", store %s" s
      | _ -> ""
    in
    Format.printf "%s: %s, explored %d, %d distinct graphs%s@." test
      (match bugs with
      | [] -> "ok"
      | l -> Printf.sprintf "%d bug%s" (List.length l) (if List.length l = 1 then "" else "s"))
      (stat "explored") (stat "distinct_graphs") store;
    List.iter
      (fun b ->
        match Option.bind (J.member "message" b) J.to_str with
        | Some m -> Format.printf "  BUG: %s@." m
        | None -> ())
      bugs;
    (match J.member "findings" ev with
    | Some (J.List findings) ->
      List.iter
        (fun f ->
          let field name =
            Option.value (Option.bind (J.member name f) J.to_str) ~default:"-"
          in
          Format.printf "  [%s] %s: %s@." (field "severity") (field "rule") (field "message"))
        findings
    | _ -> ())
  | Some "progress" -> ()
  | Some "accepted" -> ()
  | Some "done" ->
    Format.printf "%s@."
      (match J.member "ok" ev with Some (J.Bool true) -> "ok" | _ -> "BUG")
  | _ -> ()

let client_cmd socket op bench test overrides max_execs json_out =
  let module C = Serve.Client in
  match C.connect socket with
  | exception Unix.Unix_error (e, _, _) ->
    `Msg (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
  | c -> (
    let finally () = C.close c in
    Fun.protect ~finally @@ fun () ->
    let print_ev ev =
      if json_out then print_endline (J.to_line ev) else render_event ev
    in
    let one_shot req =
      C.send c (J.Obj [ ("op", J.Str req) ]);
      match C.recv ~timeout:30. c with
      | C.Msg ev ->
        if json_out then print_endline (J.to_line ev) else print_string (J.to_string ev);
        `Ok
      | C.Eof -> `Msg "server closed the connection"
      | C.Timeout -> `Msg "timed out waiting for the server"
    in
    match op with
    | "ping" | "list" | "shutdown" -> one_shot op
    | "check" | "lint" | "fuzz" -> (
      match bench with
      | None -> `Msg (Printf.sprintf "client %s: name a benchmark" op)
      | Some bench ->
        let fields =
          [ ("op", J.Str op); ("bench", J.Str bench) ]
          @ (match test with Some t -> [ ("test", J.Str t) ] | None -> [])
          @ (match overrides with
            | [] -> []
            | l ->
              [
                ( "overrides",
                  J.List
                    (List.map
                       (fun (site, order) ->
                         J.List [ J.Str site; J.Str (C11.Memory_order.to_string order) ])
                       l) );
              ])
          @ match max_execs with Some n -> [ ("max_executions", J.Int n) ] | None -> []
        in
        C.send c (J.Obj fields);
        let rec stream () =
          match C.recv c with
          | C.Msg ev -> (
            print_ev ev;
            match ev_name ev with
            | Some "done" -> (
              match J.member "ok" ev with Some (J.Bool true) -> `Ok | _ -> `Bug)
            | Some "error" -> `Msg (error_text ev)
            | _ -> stream ())
          | C.Eof -> `Msg "server closed the connection mid-job"
          | C.Timeout -> `Msg "timed out"
        in
        stream ())
    | op -> `Msg (Printf.sprintf "unknown client op %S (check, lint, fuzz, ping, list, shutdown)" op))

open Cmdliner

let bench_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")

let exit_of = function
  | `Ok -> 0
  | `Bug -> 1
  | `Msg m ->
    prerr_endline m;
    2

let ord_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i -> (
      let site = String.sub s 0 i in
      let o = String.sub s (i + 1) (String.length s - i - 1) in
      match C11.Memory_order.of_string o with
      | Some order -> Ok (site, order)
      | None -> Error (`Msg ("unknown memory order " ^ o)))
    | None -> Error (`Msg "expected SITE=ORDER")
  in
  let print ppf (site, order) = Format.fprintf ppf "%s=%a" site C11.Memory_order.pp order in
  Arg.conv (parse, print)

(* 0 means "one domain per recommended core"; the default comes from
   CDSSPEC_JOBS so scripted sweeps can set parallelism globally. *)
let jobs_term =
  let doc = "Explore with $(docv) parallel domains (0 = one per core)." in
  Term.(
    const (fun j -> if j <= 0 then Domain.recommended_domain_count () else j)
    $ Arg.(
        value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "CDSSPEC_JOBS") ~doc))

let bias_conv =
  let parse s =
    match Fuzz.Bias.of_string s with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown bias %S; expected one of: %s" s
             (String.concat ", " (List.map Fuzz.Bias.to_string Fuzz.Bias.all))))
  in
  Arg.conv (parse, Fuzz.Bias.pp)

(* --fuzz and its knobs, plus the checker's history-sampling options,
   bundled into one term so [check_cmd] stays legible. *)
let fuzzing_term =
  let fuzz =
    Arg.(
      value & flag
      & info [ "fuzz" ]
          ~doc:
            "Sample executions randomly (C11Tester-style) instead of exhausting the decision \
             tree. Each reported bug prints a seed and a minimized decision trace that replays \
             it deterministically.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed for $(b,--fuzz); same seed, same campaign.")
  in
  let time_budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS" ~doc:"Stop fuzzing after this much wall-clock.")
  in
  let bias =
    Arg.(
      value
      & opt bias_conv Fuzz.Bias.Prefer_stale_rf
      & info [ "bias" ] ~docv:"POLICY"
          ~doc:"Fuzz decision bias: $(b,uniform), $(b,prefer-switch) or $(b,prefer-stale-rf).")
  in
  let sample_histories =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-histories" ] ~docv:"N"
          ~doc:
            "Have the spec checker randomly sample N sequential histories per execution instead \
             of enumerating them exhaustively.")
  in
  let history_seed =
    Arg.(
      value & opt int 0
      & info [ "history-seed" ] ~docv:"S" ~doc:"PRNG seed for $(b,--sample-histories).")
  in
  let strict_histories =
    Arg.(
      value & flag
      & info [ "strict-histories" ]
          ~doc:
            "Treat a truncated history/subhistory enumeration (max_histories or max_prefixes \
             cap hit) as a reported violation instead of a warning: a capped check is only a \
             partial proof.")
  in
  let no_check_cache =
    Arg.(
      value & flag
      & info [ "no-check-cache" ]
          ~doc:
            "Disable the cross-execution check cache (verdicts memoized by canonical \
             call-history fingerprint). Hit/miss/truncation counters are still reported.")
  in
  Term.(
    const (fun fuzz seed time_budget bias sample hseed strict no_cache ->
        let checker =
          {
            Cdsspec.Checker.default_config with
            sample_histories = Option.map (fun n -> (n, hseed)) sample;
            strict_histories = strict;
          }
        in
        (fuzz, seed, time_budget, bias, checker, not no_cache))
    $ fuzz $ seed $ time_budget $ bias $ sample_histories $ history_seed $ strict_histories
    $ no_check_cache)

let check_term =
  let test =
    Arg.(value & opt (some string) None & info [ "t"; "test" ] ~docv:"TEST" ~doc:"Run only this unit test.")
  in
  let weaken =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "weaken" ] ~docv:"SITE" ~doc:"Weaken this memory-order site one step.")
  in
  let overrides =
    Arg.(
      value & opt_all ord_conv [] & info [ "o"; "ord" ] ~docv:"SITE=ORDER" ~doc:"Pin a site's order.")
  in
  let max_execs =
    Arg.(
      value
      & opt (some int) (Some 500_000)
      & info [ "max-executions" ] ~docv:"N" ~doc:"Stop exploration after N runs.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the first buggy trace.") in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the first buggy execution graph as Graphviz DOT.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"TRACE"
          ~doc:
            "Replay one execution from a dot-separated decision trace (as printed by \
             $(b,--fuzz) reproducers) and report its bugs.")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable execution-graph equivalence pruning: explore every interleaving instead of \
             every distinct graph. Bug lists and verdicts are identical either way (that \
             equivalence is tested); this is the escape hatch for differential debugging and for \
             exact interleaving counts.")
  in
  let legacy_engine =
    Arg.(
      value & flag
      & info [ "legacy-engine" ]
          ~doc:
            "Explore with the pre-arena engine (a fresh scheduler run per execution, rebuilding \
             from action zero) instead of the arena engine's copy-free snapshot restore. Both \
             produce bit-identical verdicts, graph sets, bug lists and traces; this is the \
             differential oracle.")
  in
  let no_rf_kernel =
    Arg.(
      value & flag
      & info [ "no-rf-kernel" ]
          ~doc:
            "Disable the incremental rf-consistency kernel: read candidates are recomputed from \
             scratch by the full per-rule scan instead of the kernel's saturated summaries. \
             Graph sets, bug lists and verdicts are identical either way (that equivalence is \
             tested); this is the escape hatch for differential debugging.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print the per-phase work counters after each exhaustive run: commits, fiber \
             switches, direct-dispatch inline ops, rf-kernel queries, snapshot/restore counts \
             and check-cache traffic — where the wall time went, without re-profiling.")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent cross-run result store: closed decision subtrees, distinct-graph sets \
             and memoized check verdicts are saved per job fingerprint, so re-running an \
             identical check collapses to a warm re-validation with identical verdicts. The \
             store flushes itself wholesale when the engine revision changes.")
  in
  Term.(
    const
      (fun name test weaken overrides max_execs verbose dot jobs no_prune legacy no_rf_kernel
           profile fuzzing replay store_dir ->
        exit_of
          (check_cmd name test weaken overrides max_execs verbose dot jobs no_prune legacy
             no_rf_kernel profile fuzzing replay store_dir))
    $ bench_arg $ test $ weaken $ overrides $ max_execs $ verbose $ dot $ jobs_term $ no_prune
    $ legacy_engine $ no_rf_kernel $ profile $ fuzzing_term $ replay $ store_dir)

let lint_term =
  let bench = Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCHMARK") in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Lint every exhaustively-explorable registry benchmark (the CI sweep).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the versioned machine-readable report (schema $(b,cdsspec-lint/1)) instead of \
             text.")
  in
  let advise =
    Arg.(
      value & flag
      & info [ "advise" ]
          ~doc:
            "Run the counterexample-guided weakening advisor: re-explore each weakenable site's \
             full downgrade chain and classify it safe-to-weaken, behaviour-changing or \
             spec-violating (with a replayable witness).")
  in
  let max_execs =
    Arg.(
      value
      & opt (some int) (Some 200_000)
      & info [ "max-executions" ] ~docv:"N"
          ~doc:"Per-test exploration cap, for both the fact collection and each advisor candidate.")
  in
  let time_budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:"Overall wall-clock budget; benchmarks/candidates beyond it are skipped.")
  in
  let sites =
    Arg.(
      value & opt_all string []
      & info [ "site" ] ~docv:"SITE" ~doc:"Restrict the advisor to these sites (repeatable).")
  in
  let dot_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot-dir" ] ~docv:"DIR"
          ~doc:
            "Write each spec-violating witness execution as Graphviz DOT into $(docv), with the \
             weakened site's actions and its reads-from edges highlighted.")
  in
  Term.(
    const (fun name all json advise max_execs time_budget jobs sites dot_dir ->
        let only_sites = match sites with [] -> None | l -> Some l in
        exit_of (lint_cmd name all json advise max_execs time_budget jobs only_sites dot_dir))
    $ bench $ all $ json $ advise $ max_execs $ time_budget $ jobs_term $ sites $ dot_dir)

let serve_term =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent cross-run result store shared by all jobs (see $(b,check --store)); \
             flushed wholesale on engine-revision changes.")
  in
  Term.(
    const (fun socket jobs store_dir -> exit_of (serve_cmd socket jobs store_dir))
    $ socket $ jobs_term $ store_dir)

let client_term =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket the daemon listens on.")
  in
  let op =
    Arg.(
      value & pos 0 string "check"
      & info [] ~docv:"OP"
          ~doc:
            "One of $(b,check), $(b,lint), $(b,fuzz) (job ops, streamed), or $(b,ping), \
             $(b,list), $(b,shutdown).")
  in
  let bench = Arg.(value & pos 1 (some string) None & info [] ~docv:"BENCHMARK") in
  let test =
    Arg.(
      value & opt (some string) None & info [ "t"; "test" ] ~docv:"TEST" ~doc:"Run only this unit test.")
  in
  let overrides =
    Arg.(
      value & opt_all ord_conv []
      & info [ "o"; "ord" ] ~docv:"SITE=ORDER" ~doc:"Pin a site's order for the submitted job.")
  in
  let max_execs =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-executions" ] ~docv:"N" ~doc:"Per-test exploration cap for the submitted job.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw NDJSON event stream instead of human-readable text.")
  in
  Term.(
    const (fun socket op bench test overrides max_execs json ->
        exit_of (client_cmd socket op bench test overrides max_execs json))
    $ socket $ op $ bench $ test $ overrides $ max_execs $ json)

let cmds =
  [
    Cmd.v (Cmd.info "list" ~doc:"List benchmarks, unit tests and memory-order sites.")
      Term.(const list_cmd $ const ());
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Aggregate per-site dynamic facts across all feasible executions, report memory-order \
            lint findings, and optionally advise which sites are provably weakenable.")
      lint_term;
    Cmd.v
      (Cmd.info "check"
         ~doc:"Model-check a benchmark's unit tests against its CDSSpec specification.")
      check_term;
    Cmd.v
      (Cmd.info "inject" ~doc:"Weaken each site in turn and report how each injection is caught.")
      Term.(const (fun name jobs -> exit_of (inject_cmd name jobs)) $ bench_arg $ jobs_term);
    Cmd.v
      (Cmd.info "litmus" ~doc:"Run the litmus-test corpus (or one named test).")
      Term.(
        const (fun filter -> exit_of (litmus_cmd filter))
        $ Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"));
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run the checking daemon: accept check/lint/fuzz jobs over a Unix-domain socket \
            (newline-delimited JSON), shard them across a resident worker-domain pool, stream \
            progress and verdicts, and reuse results across runs through the persistent store.")
      serve_term;
    Cmd.v
      (Cmd.info "client"
         ~doc:
           "Submit a job to a running $(b,serve) daemon and watch its event stream ($(b,--json) \
            for the raw protocol).")
      client_term;
  ]

let () =
  let doc = "CDSSpec: check concurrent data structures under the C/C++11 memory model" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "cdsspec_run" ~doc) cmds))
