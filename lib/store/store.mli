(** Persistent cross-run result store: the disk half of
    checking-as-a-service.

    A store is a directory of binary entry files, each holding the
    artifacts of one fully-completed exploration — the distinct-graph
    fingerprint set, the closed prune keys ({!Mc.Explorer.result}
    [closed]), the memoized check-cache verdicts, and (for advisor
    entries) per-test behaviour fingerprint sets. Entries are keyed by a
    canonical fingerprint of everything the result is a function of: the
    program identity (benchmark + test name), the full per-site
    memory-order table, the scheduler bounds, the explorer and checker
    configs.

    Soundness rests on two rules, both coarse by design:

    - {b Engine-rev flush}: the directory records
      {!Mc.Engine_rev.current}; on any mismatch {!open_dir} deletes every
      entry wholesale. Invalidation is coarse and safe, never clever and
      wrong — a semantics change anywhere in the engine costs one cold
      rebuild, not a wrong verdict.
    - {b Clean only, caps scoped}: {!explore_checked} saves entries only
      for bug-free, pruning-on runs — a warm hit never has to reproduce
      serialized bugs; the stored verdict is "clean" and the warm run
      re-derives everything else. Complete runs save unconditionally.
      A clean run truncated by its execution cap saves under a [partial]
      flag recording the cap: its closed prune keys are genuinely
      fully-explored subtrees, but the entry as a whole is incomplete,
      so it only warms later runs whose cap is at most the stored one
      (anything larger is treated as a miss), is never allowed to
      overwrite a complete entry, and is upgraded in place the first
      time a run under its key explores to completion. Runs truncated
      by a [stop] callback (client cancellation) are never saved — the
      store cannot tell how far they got.

    Corruption is handled the same way: an entry that fails its length,
    magic, trailing-hash or key-echo check is deleted and reported as a
    miss, never trusted. *)

type t

(** [open_dir dir] creates [dir] if needed, then validates its [meta]
    file: a missing, malformed, or engine-rev-mismatched meta flushes
    every entry and rewrites meta for the current engine. *)
val open_dir : string -> t

val dir : t -> string

(** Lookup/decode accounting since [open_dir]. [corrupt] counts entries
    deleted because they failed a decode check. *)
type stats = { mutable hits : int; mutable misses : int; mutable corrupt : int }

val stats : t -> stats

(** {2 Keys and entries} *)

(** Canonical job key: carries both the human-readable description
    string and its fingerprint (the entry filename). *)
type key

(** [`Check] entries hold graphs/closed/check-cache; [`Advisor] entries
    hold per-test behaviour sets (the advisor explores with pruning off,
    so it has no closed keys to save). *)
val job_key :
  kind:[ `Check | `Advisor ] ->
  bench:string ->
  test:string ->
  ords:(string * C11.Memory_order.t) list ->
  sched:Mc.Scheduler.config ->
  prune:bool ->
  engine:[ `Arena | `Legacy ] ->
  max_execs:int option ->
  checker:Cdsspec.Checker.config ->
  use_cache:bool ->
  key

(** The fingerprint in hex — the entry's filename stem; exposed for the
    tests and the serve protocol's job echo. *)
val fingerprint : key -> string

type entry = {
  graphs : int64 list;  (** sorted canonical execution-graph fingerprints *)
  closed : Mc.Scheduler.prune_key list;
      (** fully-explored decision-point states — a later identical run
          preloads these as the explorer's [warm] set *)
  check_entries : Cdsspec.Checker.cache_entry list;
  behaviours : (string * int64 list) list;
      (** advisor entries: per-test behaviour fingerprints, test order *)
  explored : int;  (** the original cold run's execution count *)
  time : float;  (** the original cold run's wall-clock seconds *)
  partial : int option;
      (** [None]: the run explored to completion. [Some cap]: a clean
          run truncated by [max_execs = cap]; sound but incomplete, and
          only warm-loaded by runs capped at [<= cap] *)
}

(** [None] on absent, corrupt (deleted, counted) or key-collision
    entries. *)
val load : t -> key -> entry option

(** Atomic (write-to-temp, rename) entry write. *)
val save : t -> key -> entry -> unit

(** {2 Checked exploration through the store} *)

(** [explore_checked ?store ... b ~ords t] is the one checked-exploration
    path shared by [cdsspec_run check --store], the serve daemon and the
    benchmarks: build a check cache, consult the store, explore, check,
    and save back.

    On a store hit the entry's closed prune keys become the explorer's
    [warm] set and its memoized verdicts preload the check cache, so the
    exploration collapses to the handful of runs needed to re-prune each
    closed subtree at its root; the stored graph set is merged back into
    the result, making graphs, bugs and verdicts identical to the cold
    run's. On a miss (or with no store) this is exactly the cold path.

    [stop] forces a serial exploration polled per run (the serve daemon
    cancels abandoned jobs this way); [jobs] is used otherwise.

    Check keys are cap-agnostic ([max_execs] is not part of the key):
    clean-but-capped runs save partial entries scoped by their cap, a
    partial entry only warms runs whose cap is at most the stored one,
    and the first completing run upgrades the entry in place. Stopped
    and buggy runs are never saved. Returns the result plus the store
    disposition ([`Miss] includes a stored entry rejected for a
    too-large cap). *)
val explore_checked :
  ?store:t ->
  ?stop:(unit -> bool) ->
  ?progress:(int -> unit) ->
  checker:Cdsspec.Checker.config ->
  use_cache:bool ->
  max_execs:int option ->
  jobs:int ->
  prune:bool ->
  engine:[ `Arena | `Legacy ] ->
  Structures.Benchmark.t ->
  ords:Structures.Ords.t ->
  Structures.Benchmark.test ->
  Mc.Explorer.result * [ `Off | `Miss | `Hit ]
