module B = Structures.Benchmark
module Ords = Structures.Ords

(* ------------------------------------------------------------------ *)
(* FNV-1a — the repo's standard content fingerprint *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let hex64 h = Printf.sprintf "%016Lx" h

(* ------------------------------------------------------------------ *)
(* Store handle *)

type stats = { mutable hits : int; mutable misses : int; mutable corrupt : int }

type t = { dir : string; stats : stats; lock : Mutex.t }

let dir t = t.dir

let stats t = t.stats

let meta_format = "cdsspec-store/1"

let meta_path dir = Filename.concat dir "meta"

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".bin")
  |> List.map (Filename.concat dir)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  with Sys_error _ | End_of_file -> None

(* Atomic write: entries must never be observed half-written (the serve
   daemon's workers and a concurrent CLI run may share a store dir). *)
let write_file path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let flush_entries dir = List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) (entry_files dir)

let open_dir dirname =
  if not (Sys.file_exists dirname) then Sys.mkdir dirname 0o755;
  let expected = Printf.sprintf "%s\n%s\n" meta_format Mc.Engine_rev.current in
  (match read_file (meta_path dirname) with
  | Some m when m = expected -> ()
  | _ ->
    (* Missing, malformed, or another engine revision: flush wholesale.
       Coarse and safe — one cold rebuild, never a stale verdict. *)
    flush_entries dirname;
    write_file (meta_path dirname) expected);
  { dir = dirname; stats = { hits = 0; misses = 0; corrupt = 0 }; lock = Mutex.create () }

(* ------------------------------------------------------------------ *)
(* Keys *)

type key = { descr : string; fp : string }

let fingerprint k = k.fp

let job_key ~kind ~bench ~test ~ords ~sched ~prune ~engine ~max_execs ~checker ~use_cache =
  let buf = Buffer.create 256 in
  let add s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\x1f'
  in
  add (match kind with `Check -> "check" | `Advisor -> "advisor");
  add bench;
  add test;
  List.iter
    (fun (site, order) ->
      add site;
      add (C11.Memory_order.to_string order))
    ords;
  add (string_of_int sched.Mc.Scheduler.loop_bound);
  add (string_of_int sched.Mc.Scheduler.max_actions);
  add (string_of_bool sched.Mc.Scheduler.sleep_sets);
  add (string_of_bool sched.Mc.Scheduler.rf_kernel);
  add (string_of_bool prune);
  add (match engine with `Arena -> "arena" | `Legacy -> "legacy");
  (* Check entries are cap-agnostic: the cap lives in the entry's
     [partial] field, so runs under different caps share one key and a
     clean-but-capped run can warm a later, smaller-capped one. Advisor
     entries keep the cap in the key — their behaviour sets are a
     function of exactly how far the sweep got. *)
  add
    (match kind, max_execs with
    | `Check, _ -> "any"
    | `Advisor, None -> "none"
    | `Advisor, Some m -> string_of_int m);
  add (string_of_int checker.Cdsspec.Checker.max_histories);
  add
    (match checker.Cdsspec.Checker.sample_histories with
    | None -> "none"
    | Some (count, seed) -> Printf.sprintf "%d:%d" count seed);
  add (string_of_int checker.Cdsspec.Checker.max_prefixes);
  add (string_of_bool checker.Cdsspec.Checker.strict_histories);
  add (string_of_bool checker.Cdsspec.Checker.legacy_replay);
  add (string_of_bool use_cache);
  let descr = Buffer.contents buf in
  { descr; fp = hex64 (fnv64 descr) }

(* ------------------------------------------------------------------ *)
(* Entry codec *)

type entry = {
  graphs : int64 list;
  closed : Mc.Scheduler.prune_key list;
  check_entries : Cdsspec.Checker.cache_entry list;
  behaviours : (string * int64 list) list;
  explored : int;
  time : float;
  partial : int option;
      (* None: the run explored to completion. Some cap: a clean run
         truncated by max_execs = cap — its closed keys and graphs are
         sound but incomplete, usable to warm runs capped at <= cap. *)
}

let magic = "CDSS1"

exception Corrupt

let put_i64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let put_int buf v = put_i64 buf (Int64.of_int v)

let put_bool buf v = Buffer.add_char buf (if v then '\x01' else '\x00')

let put_str buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_i64_list buf l =
  put_int buf (List.length l);
  List.iter (put_i64 buf) l

type reader = { src : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.src then raise Corrupt

let get_i64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.src.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  !v

let get_int r =
  let v = Int64.to_int (get_i64 r) in
  if v < 0 then raise Corrupt;
  v

let get_bool r =
  need r 1;
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  match c with '\x00' -> false | '\x01' -> true | _ -> raise Corrupt

let get_str r =
  let n = get_int r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* Length-prefixed lists bound-check the count before allocating: a
   corrupt count must fail cleanly, not OOM. *)
let get_list r f =
  let n = get_int r in
  if n > String.length r.src then raise Corrupt;
  List.init n (fun _ -> f r)

let get_i64_list r = get_list r get_i64

let violation_kind_tag = function
  | `Admissibility -> 0
  | `Assertion -> 1
  | `Unjustified -> 2
  | `Cyclic_ordering -> 3
  | `Truncated -> 4

let violation_kind_of_tag = function
  | 0 -> `Admissibility
  | 1 -> `Assertion
  | 2 -> `Unjustified
  | 3 -> `Cyclic_ordering
  | 4 -> `Truncated
  | _ -> raise Corrupt

let put_violation buf (v : Cdsspec.Checker.violation) =
  put_int buf (violation_kind_tag v.kind);
  put_str buf v.message

let get_violation r : Cdsspec.Checker.violation =
  let kind = violation_kind_of_tag (get_int r) in
  let message = get_str r in
  { kind; message }

let put_prune_key buf (k : Mc.Scheduler.prune_key) =
  put_i64 buf k.fp;
  put_int buf (List.length k.sleeping);
  List.iter (put_int buf) k.sleeping;
  put_int buf k.nacts

let get_prune_key r : Mc.Scheduler.prune_key =
  let fp = get_i64 r in
  let sleeping = get_list r get_int in
  let nacts = get_int r in
  { fp; sleeping; nacts }

let put_check_entry buf (e : Cdsspec.Checker.cache_entry) =
  put_str buf e.entry_key;
  put_int buf (List.length e.entry_verdict);
  List.iter (put_violation buf) e.entry_verdict;
  put_bool buf e.entry_h_trunc;
  put_bool buf e.entry_p_trunc

let get_check_entry r : Cdsspec.Checker.cache_entry =
  let entry_key = get_str r in
  let entry_verdict = get_list r get_violation in
  let entry_h_trunc = get_bool r in
  let entry_p_trunc = get_bool r in
  { entry_key; entry_verdict; entry_h_trunc; entry_p_trunc }

let encode key e =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  (* Key-string echo: two jobs colliding on the 64-bit fingerprint must
     read each other's entries as misses, not as wrong answers. *)
  put_str buf key.descr;
  put_i64_list buf e.graphs;
  put_int buf (List.length e.closed);
  List.iter (put_prune_key buf) e.closed;
  put_int buf (List.length e.check_entries);
  List.iter (put_check_entry buf) e.check_entries;
  put_int buf (List.length e.behaviours);
  List.iter
    (fun (name, fps) ->
      put_str buf name;
      put_i64_list buf fps)
    e.behaviours;
  put_int buf e.explored;
  put_i64 buf (Int64.bits_of_float e.time);
  (match e.partial with
  | None -> put_bool buf false
  | Some cap ->
    put_bool buf true;
    put_int buf cap);
  let body = Buffer.contents buf in
  let trailer = Buffer.create 8 in
  put_i64 trailer (fnv64 body);
  body ^ Buffer.contents trailer

let decode key s =
  let n = String.length s in
  if n < String.length magic + 8 then raise Corrupt;
  let body = String.sub s 0 (n - 8) in
  let hash_r = { src = s; pos = n - 8 } in
  if get_i64 hash_r <> fnv64 body then raise Corrupt;
  let r = { src = body; pos = 0 } in
  need r (String.length magic);
  if String.sub body 0 (String.length magic) <> magic then raise Corrupt;
  r.pos <- String.length magic;
  let descr = get_str r in
  if descr <> key.descr then raise Corrupt;
  let graphs = get_i64_list r in
  let closed = get_list r get_prune_key in
  let check_entries = get_list r get_check_entry in
  let behaviours =
    get_list r (fun r ->
        let name = get_str r in
        let fps = get_i64_list r in
        (name, fps))
  in
  let explored = get_int r in
  let time = Int64.float_of_bits (get_i64 r) in
  let partial = if get_bool r then Some (get_int r) else None in
  if r.pos <> String.length body then raise Corrupt;
  { graphs; closed; check_entries; behaviours; explored; time; partial }

let entry_path t key = Filename.concat t.dir (key.fp ^ ".bin")

let load t key =
  let path = entry_path t key in
  let bump f = Mutex.protect t.lock (fun () -> f t.stats) in
  match read_file path with
  | None ->
    bump (fun s -> s.misses <- s.misses + 1);
    None
  | Some raw -> (
    match decode key raw with
    | e ->
      bump (fun s -> s.hits <- s.hits + 1);
      Some e
    | exception Corrupt ->
      (* Discard, never trust: a bad entry is a miss plus a deletion. *)
      (try Sys.remove path with Sys_error _ -> ());
      bump (fun s ->
          s.corrupt <- s.corrupt + 1;
          s.misses <- s.misses + 1);
      None)

let save t key e = write_file (entry_path t key) (encode key e)

(* ------------------------------------------------------------------ *)
(* Checked exploration through the store *)

let union_closed a b =
  let h : (Mc.Scheduler.prune_key, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace h k ()) a;
  List.iter (fun k -> Hashtbl.replace h k ()) b;
  Hashtbl.fold (fun k () acc -> k :: acc) h []

let explore_checked ?store ?stop ?progress ~checker ~use_cache ~max_execs ~jobs ~prune ~engine
    (b : B.t) ~ords (t : B.test) =
  let cache = Cdsspec.Checker.create_cache ~memoize:use_cache () in
  let key =
    Option.map
      (fun _ ->
        job_key ~kind:`Check ~bench:b.name ~test:t.test_name ~ords:(Ords.to_list ords)
          ~sched:b.scheduler ~prune ~engine ~max_execs ~checker ~use_cache)
      store
  in
  let stored =
    match store, key with Some s, Some k -> load s k | _ -> None
  in
  (* Partial entries are cap-scoped: a clean-but-capped run's closed
     keys are sound only for runs that stop at or before the same cap —
     a larger-capped (or uncapped) run would prune subtrees whose tails
     the stored run never reached. An incompatible entry is a miss. *)
  let stored =
    match stored, store with
    | Some e, Some s
      when (match e.partial with
           | None -> false
           | Some cap -> ( match max_execs with Some n -> n > cap | None -> true)) ->
      Mutex.protect s.lock (fun () ->
          s.stats.hits <- s.stats.hits - 1;
          s.stats.misses <- s.stats.misses + 1);
      None
    | _ -> stored
  in
  (match stored with
  | Some e -> Cdsspec.Checker.import_entries cache e.check_entries
  | None -> ());
  let warm =
    match stored with
    | Some e when prune ->
      let h = Hashtbl.create (max 16 (List.length e.closed)) in
      List.iter (fun k -> Hashtbl.replace h k ()) e.closed;
      Some h
    | _ -> None
  in
  let config =
    {
      Mc.Explorer.scheduler = b.scheduler;
      max_executions = max_execs;
      progress;
      prune;
      engine;
    }
  in
  let on_feasible = Cdsspec.Checker.hook ~config:checker ~cache b.spec in
  let check () = Cdsspec.Checker.cache_counters cache in
  let program = t.program ords in
  let r =
    match stop with
    | Some stop ->
      (* Cancellable path (the serve daemon): serial, polled per run. *)
      Mc.Explorer.explore_subtree ~config ~on_feasible ~check ~stop ?warm
        ~trace:(C11.Vec.create ()) ~frozen:0 program
    | None -> Mc.Parallel.explore ~config ~on_feasible ~check ?warm ~jobs program
  in
  (* A warm run only re-discovers graphs reachable without entering a
     closed subtree; the stored set is the rest. The union equals the
     cold run's graph set exactly. *)
  let r =
    match stored with
    | None -> r
    | Some e ->
      let graphs = List.sort_uniq Int64.compare (List.rev_append e.graphs r.graphs) in
      {
        r with
        graphs;
        closed = union_closed e.closed r.closed;
        stats = { r.stats with distinct_graphs = List.length graphs };
      }
  in
  (* Save clean, pruning-on runs. Complete runs save unconditionally —
     including the upgrade of a previously-partial entry once a warm run
     finishes the job. Clean-but-capped runs save under a [partial] flag
     keyed by the cap, but only when the truncation is known to come
     from the cap itself ([stop] runs are cancelled by a client, which
     looks identical in [truncated]), and never downgrading an entry
     that is already complete or already covers a larger cap. Buggy
     runs never save: bugs would need serializing to reproduce the
     verdict from a hit. *)
  (match store, key with
  | Some s, Some k when prune && r.bugs = [] ->
    let complete = not r.stats.truncated in
    let cap_partial =
      match stop, max_execs with None, Some n when not complete -> Some n | _ -> None
    in
    let covered =
      match stored with
      | Some e -> (
        match e.partial, cap_partial with
        | None, _ -> true (* already complete: never downgrade *)
        | Some c, Some n -> c >= n
        | Some _, None -> false)
      | None -> false
    in
    if complete || (cap_partial <> None && not covered) then begin
      let explored =
        match stored with Some e -> e.explored | None -> r.stats.explored
      in
      let time = match stored with Some e -> e.time | None -> r.stats.time in
      save s k
        {
          graphs = r.graphs;
          closed = r.closed;
          check_entries = Cdsspec.Checker.export_entries cache;
          behaviours = [];
          explored;
          time;
          partial = (if complete then None else cap_partial);
        }
    end
  | _ -> ());
  let disposition =
    match store with None -> `Off | Some _ -> ( match stored with Some _ -> `Hit | None -> `Miss)
  in
  (r, disposition)
