module J = Analyze.Json
module B = Structures.Benchmark
module Registry = Structures.Registry
module Ords = Structures.Ords

(* ------------------------------------------------------------------ *)
(* Connections *)

type conn = {
  fd : Unix.file_descr;
  conn_id : int;
  inbuf : Buffer.t;
  out_mu : Mutex.t;
  mutable alive : bool;  (* false after EOF or a failed write *)
  mutable jobs_active : int;  (* guarded by the server mutex *)
  mutable closed : bool;  (* fd actually closed (main loop only) *)
}

type t = {
  listen_fd : Unix.file_descr;
  socket_path : string;
  pool : Mc.Parallel.pool;
  store : Store.t option;
  mu : Mutex.t;  (* conns list + jobs_active + job counter *)
  mutable conns : conn list;
  mutable next_conn : int;
  mutable next_job : int;
  mutable shutdown : bool;
}

(* One full line per write call keeps NDJSON framing atomic even with
   several worker domains streaming events to the same client; a failed
   write just marks the connection dead (the main loop reaps it). *)
let send conn (j : J.t) =
  Mutex.lock conn.out_mu;
  (if conn.alive then
     let line = J.to_line j ^ "\n" in
     let len = String.length line in
     let bytes = Bytes.of_string line in
     try
       let off = ref 0 in
       while !off < len do
         let n = Unix.write conn.fd bytes !off (len - !off) in
         if n <= 0 then raise Exit;
         off := !off + n
       done
     with _ -> conn.alive <- false);
  Mutex.unlock conn.out_mu

let event name fields = J.Obj (("event", J.Str name) :: fields)

let send_error conn ?job ?(suggestions = []) message =
  let fields =
    (match job with Some id -> [ ("job", J.Int id) ] | None -> [])
    @ [ ("message", J.Str message) ]
    @
    if suggestions = [] then []
    else [ ("suggestions", J.List (List.map (fun s -> J.Str s) suggestions)) ]
  in
  send conn (event "error" fields)

(* ------------------------------------------------------------------ *)
(* Request parsing *)

let str_field j name = Option.bind (J.member name j) J.to_str

let int_field j name = Option.bind (J.member name j) J.to_int

let bool_field j name =
  match J.member name j with Some (J.Bool b) -> Some b | _ -> None

(* overrides: [["site","order"], ...] *)
let overrides_field j =
  match J.member "overrides" j with
  | None -> Ok []
  | Some (J.List pairs) ->
    let parse = function
      | J.List [ J.Str site; J.Str order ] -> (
        match C11.Memory_order.of_string order with
        | Some o -> Ok (site, o)
        | None -> Error (Printf.sprintf "unknown memory order %S" order))
      | _ -> Error "overrides must be [site, order] pairs"
    in
    List.fold_left
      (fun acc p ->
        match acc, parse p with
        | Ok l, Ok x -> Ok (l @ [ x ])
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) pairs
  | Some _ -> Error "overrides must be a list"

let find_bench_or_report conn ?job name =
  match Registry.find name with
  | Some b -> Some b
  | None ->
    send_error conn ?job
      ~suggestions:(Registry.suggest name)
      (Printf.sprintf "unknown structure %S" name);
    None

let tests_of b = function
  | None -> (b : B.t).tests
  | Some t -> List.filter (fun (x : B.test) -> x.test_name = t) b.tests

(* ------------------------------------------------------------------ *)
(* Result rendering *)

let bug_json b = J.Obj [ ("key", J.Str (Mc.Bug.key b)); ("message", J.Str (Fmt.str "%a" Mc.Bug.pp b)) ]

let result_json ~job ~(t : B.test) ~store_disposition (r : Mc.Explorer.result) =
  event "result"
    [
      ("job", J.Int job);
      ("test", J.Str t.test_name);
      ("bugs", J.List (List.map bug_json r.bugs));
      ("explored", J.Int r.stats.explored);
      ("feasible", J.Int r.stats.feasible);
      ("distinct_graphs", J.Int r.stats.distinct_graphs);
      ("truncated", J.Bool r.stats.truncated);
      ("time", J.Float r.stats.time);
      ( "store",
        J.Str
          (match store_disposition with `Off -> "off" | `Miss -> "miss" | `Hit -> "hit") );
    ]

(* ------------------------------------------------------------------ *)
(* Jobs *)

let run_check server conn ~job req =
  match str_field req "bench" with
  | None -> send_error conn ~job "check: missing \"bench\""
  | Some name -> (
    match find_bench_or_report conn ~job name with
    | None -> ()
    | Some b -> (
      match overrides_field req with
      | Error m -> send_error conn ~job m
      | Ok overrides -> (
        match Ords.with_overrides b.sites overrides with
        | exception Invalid_argument m -> send_error conn ~job m
        | sites -> (
          let ords = Ords.default sites in
          match tests_of b (str_field req "test") with
          | [] -> send_error conn ~job "no matching test"
          | tests ->
            let max_execs = int_field req "max_executions" in
            let prune = Option.value (bool_field req "prune") ~default:true in
            let any_bug = ref false in
            let aborted = ref false in
            List.iter
              (fun (t : B.test) ->
                if conn.alive && not !aborted then begin
                  let r, disposition =
                    Store.explore_checked ?store:server.store
                      ~stop:(fun () -> not conn.alive)
                      ~progress:(fun n ->
                        send conn
                          (event "progress"
                             [ ("job", J.Int job); ("test", J.Str t.test_name); ("explored", J.Int n) ]))
                      ~checker:Cdsspec.Checker.default_config ~use_cache:true ~max_execs
                      ~jobs:1 ~prune ~engine:`Arena b ~ords t
                  in
                  if not conn.alive then aborted := true
                  else begin
                    if r.bugs <> [] then any_bug := true;
                    send conn (result_json ~job ~t ~store_disposition:disposition r)
                  end
                end)
              tests;
            if not !aborted then
              send conn (event "done" [ ("job", J.Int job); ("ok", J.Bool (not !any_bug)) ])))))

let severity_json s = J.Str (Analyze.Lint.severity_to_string s)

let run_lint _server conn ~job req =
  match str_field req "bench" with
  | None -> send_error conn ~job "lint: missing \"bench\""
  | Some name -> (
    match find_bench_or_report conn ~job name with
    | None -> ()
    | Some b ->
      let config =
        {
          Analyze.Access_summary.default_config with
          max_executions = int_field req "max_executions";
        }
      in
      let summary = Analyze.Access_summary.collect ~config b in
      let findings = Analyze.Lint.lint summary in
      let ok = Analyze.Lint.max_severity findings <> Some Analyze.Lint.Error in
      send conn
        (event "result"
           [
             ("job", J.Int job);
             ("bench", J.Str b.name);
             ( "findings",
               J.List
                 (List.map
                    (fun (f : Analyze.Lint.finding) ->
                      J.Obj
                        [
                          ("rule", J.Str f.rule);
                          ("severity", severity_json f.severity);
                          ("site", match f.site with Some s -> J.Str s | None -> J.Null);
                          ("message", J.Str f.message);
                        ])
                    findings) );
           ]);
      send conn (event "done" [ ("job", J.Int job); ("ok", J.Bool ok) ]))

let run_fuzz _server conn ~job req =
  match str_field req "bench" with
  | None -> send_error conn ~job "fuzz: missing \"bench\""
  | Some name -> (
    match find_bench_or_report conn ~job name with
    | None -> ()
    | Some b -> (
      match tests_of b (str_field req "test") with
      | [] -> send_error conn ~job "no matching test"
      | tests ->
        let seed = Option.value (int_field req "seed") ~default:0 in
        let max_execs = Option.value (int_field req "max_executions") ~default:10_000 in
        let ords = Ords.default b.sites in
        let any_bug = ref false in
        let aborted = ref false in
        List.iter
          (fun (t : B.test) ->
            if conn.alive && not !aborted then begin
              let cache = Cdsspec.Checker.create_cache () in
              let r =
                Fuzz.Engine.run
                  ~config:
                    {
                      Fuzz.Engine.default_config with
                      scheduler = { b.scheduler with Mc.Scheduler.sleep_sets = false };
                      max_executions = Some max_execs;
                    }
                  ~on_feasible:(Cdsspec.Checker.hook ~cache b.spec)
                  ~check:(fun () -> Cdsspec.Checker.cache_counters cache)
                  ~seed (t.program ords)
              in
              let er = Fuzz.Engine.explorer_result r in
              if not conn.alive then aborted := true
              else begin
                if er.bugs <> [] then any_bug := true;
                send conn (result_json ~job ~t ~store_disposition:`Off er)
              end
            end)
          tests;
        if not !aborted then
          send conn (event "done" [ ("job", J.Int job); ("ok", J.Bool (not !any_bug)) ])))

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let benchmarks_json () =
  J.List
    (List.map
       (fun (b : B.t) ->
         J.Obj
           [
             ("name", J.Str b.name);
             ("tests", J.List (List.map (fun (t : B.test) -> J.Str t.test_name) b.tests));
             ( "sites",
               J.List
                 (List.map
                    (fun (s : Ords.site) ->
                      J.List [ J.Str s.name; J.Str (C11.Memory_order.to_string s.order) ])
                    b.sites) );
           ])
       Registry.all)

let submit_job server conn ~op run req =
  Mutex.lock server.mu;
  let job = server.next_job in
  server.next_job <- job + 1;
  conn.jobs_active <- conn.jobs_active + 1;
  Mutex.unlock server.mu;
  send conn
    (event "accepted"
       ([ ("job", J.Int job); ("op", J.Str op) ]
       @ match str_field req "bench" with Some b -> [ ("bench", J.Str b) ] | None -> []));
  Mc.Parallel.pool_submit server.pool (fun () ->
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock server.mu;
          conn.jobs_active <- conn.jobs_active - 1;
          Mutex.unlock server.mu)
        (fun () -> run server conn ~job req))

let handle_request server conn line =
  match J.of_string line with
  | Error m -> send_error conn (Printf.sprintf "bad request: %s" m)
  | Ok req -> (
    match str_field req "op" with
    | Some "ping" ->
      send conn
        (event "pong"
           [
             ("engine_rev", J.Str Mc.Engine_rev.current);
             ("jobs", J.Int (Mc.Parallel.pool_size server.pool));
             ("store", match server.store with Some s -> J.Str (Store.dir s) | None -> J.Null);
           ])
    | Some "list" -> send conn (event "benchmarks" [ ("benchmarks", benchmarks_json ()) ])
    | Some "shutdown" ->
      send conn (event "bye" []);
      server.shutdown <- true
    | Some "check" -> submit_job server conn ~op:"check" run_check req
    | Some "lint" -> submit_job server conn ~op:"lint" run_lint req
    | Some "fuzz" -> submit_job server conn ~op:"fuzz" run_fuzz req
    | Some op -> send_error conn (Printf.sprintf "unknown op %S" op)
    | None -> send_error conn "missing \"op\"")

(* ------------------------------------------------------------------ *)
(* Main loop *)

let drain_lines server conn =
  let rec go () =
    let s = Buffer.contents conn.inbuf in
    match String.index_opt s '\n' with
    | None -> ()
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear conn.inbuf;
      Buffer.add_substring conn.inbuf s (i + 1) (String.length s - i - 1);
      if String.trim line <> "" then handle_request server conn line;
      go ()
  in
  go ()

let read_conn server conn =
  let bytes = Bytes.create 65536 in
  match Unix.read conn.fd bytes 0 (Bytes.length bytes) with
  | 0 -> conn.alive <- false
  | n ->
    Buffer.add_subbytes conn.inbuf bytes 0 n;
    drain_lines server conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> conn.alive <- false

(* Reap dead connections once their jobs have noticed (the stop hook
   polls [alive]) and finished; closing the fd earlier would race
   workers still holding it. *)
let reap server =
  Mutex.lock server.mu;
  let dead =
    List.filter (fun c -> (not c.alive) && c.jobs_active = 0 && not c.closed) server.conns
  in
  List.iter (fun c -> c.closed <- true) dead;
  server.conns <- List.filter (fun c -> not c.closed) server.conns;
  Mutex.unlock server.mu;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()) dead

let serve ~socket ~jobs ?store_dir () =
  (* A worker writing to a vanished client must get EPIPE as a return
     value, not a process-killing signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists socket then Sys.remove socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 16;
  let store = Option.map Store.open_dir store_dir in
  let server =
    {
      listen_fd;
      socket_path = socket;
      pool = Mc.Parallel.pool_create ~jobs;
      store;
      mu = Mutex.create ();
      conns = [];
      next_conn = 0;
      next_job = 0;
      shutdown = false;
    }
  in
  Printf.printf "serving on %s (%d workers%s, engine %s)\n%!" socket
    (Mc.Parallel.pool_size server.pool)
    (match store with Some s -> ", store " ^ Store.dir s | None -> "")
    Mc.Engine_rev.current;
  while not server.shutdown do
    let live = List.filter (fun c -> c.alive && not c.closed) server.conns in
    let fds = server.listen_fd :: List.map (fun c -> c.fd) live in
    let readable, _, _ =
      try Unix.select fds [] [] 0.2
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = server.listen_fd then begin
          match Unix.accept server.listen_fd with
          | client_fd, _ ->
            Mutex.lock server.mu;
            let conn =
              {
                fd = client_fd;
                conn_id = server.next_conn;
                inbuf = Buffer.create 256;
                out_mu = Mutex.create ();
                alive = true;
                jobs_active = 0;
                closed = false;
              }
            in
            ignore conn.conn_id;
            server.next_conn <- server.next_conn + 1;
            server.conns <- conn :: server.conns;
            Mutex.unlock server.mu
          | exception Unix.Unix_error (_, _, _) -> ()
        end
        else
          match List.find_opt (fun c -> c.fd = fd) live with
          | Some conn -> read_conn server conn
          | None -> ())
      readable;
    reap server
  done;
  (* Drain: running jobs finish (jobs of vanished clients abort through
     their stop hook), then workers exit and are joined. *)
  Mc.Parallel.pool_shutdown server.pool;
  List.iter
    (fun c -> if not c.closed then try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
    server.conns;
  (try Unix.close server.listen_fd with Unix.Unix_error (_, _, _) -> ());
  if Sys.file_exists server.socket_path then Sys.remove server.socket_path
