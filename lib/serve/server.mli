(** Checking-as-a-service: the [cdsspec_run serve] daemon.

    A long-lived process listening on a Unix-domain socket, accepting
    check / lint / fuzz jobs as newline-delimited JSON (one message per
    line, {!Analyze.Json.to_line} framing) and streaming progress events
    and verdicts back. Jobs are sharded across a resident
    {!Mc.Parallel.pool} of worker domains — each job explores serially
    inside one worker, so concurrent clients get job-level parallelism
    without nesting domain pools — and exploration results flow through
    the persistent cross-run {!Store} when one is configured, so a
    repeated job collapses to a warm re-validation.

    Protocol summary (full schema in HACKING.md):

    - requests: [{"op":"ping"}], [{"op":"list"}],
      [{"op":"check","bench":B,...}], [{"op":"lint","bench":B,...}],
      [{"op":"fuzz","bench":B,...}], [{"op":"shutdown"}]
    - responses: every line is an object with an ["event"] field;
      job-scoped events carry the ["job"] id assigned by the
      ["accepted"] event. A job ends with exactly one ["done"] or
      ["error"] event.

    A client that disconnects mid-job does not wedge the pool: its
    running jobs observe the dead connection through their stop hook and
    abort within one exploration step; aborted (truncated) runs are
    never written to the store. *)

(** [serve ~socket ~jobs ?store_dir ()] binds [socket] (an existing
    socket file is replaced), prints one "serving ..." line to stdout,
    and blocks until a client sends [{"op":"shutdown"}]. [jobs] is the
    resident worker-domain count. [store_dir], when given, is opened
    with {!Store.open_dir} (engine-rev flush semantics apply). *)
val serve : socket:string -> jobs:int -> ?store_dir:string -> unit -> unit
