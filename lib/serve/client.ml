module J = Analyze.Json

type t = { fd : Unix.file_descr; inbuf : Buffer.t }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; inbuf = Buffer.create 256 }

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

let send t j =
  let line = J.to_line j ^ "\n" in
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write t.fd bytes !off (len - !off) in
    if n <= 0 then failwith "Serve.Client.send: connection closed";
    off := !off + n
  done

type msg = Msg of J.t | Eof | Timeout

(* Pop one complete line from the buffer, if any. *)
let take_line t =
  let s = Buffer.contents t.inbuf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    let line = String.sub s 0 i in
    Buffer.clear t.inbuf;
    Buffer.add_substring t.inbuf s (i + 1) (String.length s - i - 1);
    Some line

let recv ?timeout t =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let rec go () =
    match take_line t with
    | Some line -> (
      match J.of_string line with
      | Ok j -> Msg j
      | Error m -> failwith (Printf.sprintf "Serve.Client.recv: bad event %S: %s" line m))
    | None -> (
      let wait =
        match deadline with
        | None -> -1.
        | Some d ->
          let r = d -. Unix.gettimeofday () in
          if r <= 0. then 0. else r
      in
      if wait = 0. && deadline <> None then Timeout
      else
        let readable, _, _ =
          try Unix.select [ t.fd ] [] [] wait
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        match readable with
        | [] -> if deadline <> None then Timeout else go ()
        | _ -> (
          let bytes = Bytes.create 65536 in
          match Unix.read t.fd bytes 0 (Bytes.length bytes) with
          | 0 -> if Buffer.length t.inbuf > 0 then failwith "Serve.Client.recv: truncated line" else Eof
          | n ->
            Buffer.add_subbytes t.inbuf bytes 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()))
  in
  go ()

let job_id j = Option.bind (J.member "job" j) J.to_int

let wait ?(on_event = fun _ -> ()) t ~job =
  let rec go acc =
    match recv t with
    | Eof -> failwith "Serve.Client.wait: connection closed before job finished"
    | Timeout -> assert false (* no timeout requested *)
    | Msg j ->
      if job_id j = Some job then begin
        let acc = j :: acc in
        match Option.bind (J.member "event" j) J.to_str with
        | Some ("done" | "error") -> List.rev acc
        | _ -> go acc
      end
      else begin
        on_event j;
        go acc
      end
  in
  go []
