(** Client side of the serve protocol: connect to a {!Server} socket,
    send one-line JSON requests, receive one-line JSON events. Used by
    the [cdsspec_run client] subcommand, the protocol tests and the
    serve benchmark. *)

type t

val connect : string -> t

val close : t -> unit

(** Send one request (the compact one-line framing is applied here). *)
val send : t -> Analyze.Json.t -> unit

type msg =
  | Msg of Analyze.Json.t
  | Eof  (** server closed the connection *)
  | Timeout  (** only with [?timeout] *)

(** Next event line. Blocks (or waits up to [timeout] seconds) for a
    complete line. Raises [Failure] on a line that is not valid JSON —
    a protocol violation, not a recoverable condition. *)
val recv : ?timeout:float -> t -> msg

(** [wait ?on_event t ~job] collects events carrying ["job"] = [job]
    until the terminal ["done"] or ["error"] event, returning all of the
    job's events in order (terminal last). Events for other jobs on the
    same connection are passed to [on_event] (default: dropped), so two
    interleaved jobs can be driven from one connection. Raises [Failure]
    on EOF before the terminal event. *)
val wait : ?on_event:(Analyze.Json.t -> unit) -> t -> job:int -> Analyze.Json.t list

(** [job_id j] is the ["job"] field of an ["accepted"] event. *)
val job_id : Analyze.Json.t -> int option
