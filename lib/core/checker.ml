type config = {
  max_histories : int;
  sample_histories : (int * int) option;
  max_prefixes : int;
  strict_histories : bool;
  legacy_replay : bool;
}

let default_config =
  {
    max_histories = 5000;
    sample_histories = None;
    max_prefixes = 2000;
    strict_histories = false;
    legacy_replay = false;
  }

type violation = {
  kind : [ `Admissibility | `Assertion | `Unjustified | `Cyclic_ordering | `Truncated ];
  message : string;
}

let kind_name = function
  | `Admissibility -> "admissibility"
  | `Assertion -> "assertion"
  | `Unjustified -> "unjustified"
  | `Cyclic_ordering -> "cyclic-ordering"
  | `Truncated -> "truncated"

let pp_violation ppf v = Format.fprintf ppf "%s: %s" (kind_name v.kind) v.message

let str = Format.asprintf

(* ------------------------------------------------------------------ *)
(* Sequential replay                                                   *)

(* One step of sequential replay: apply [call]'s pre/side/postcondition
   to [state], returning the post-side-effect state or the failure
   message. Both the legacy whole-history replay and the prefix-sharing
   DFS are built on this, so their failure messages agree byte for
   byte. *)
let step (type st) (spec : st Spec.t) info_of state (call : Call.t) =
  let m = Spec.method_spec spec call.name in
  let info = info_of call in
  let pre_ok = match m.precondition with Some p -> p state info | None -> true in
  if not pre_ok then Error "precondition failed"
  else begin
    let state, s_ret =
      match m.side_effect with Some f -> f state info | None -> (state, None)
    in
    let post_ok = match m.postcondition with Some p -> p state info ~s_ret | None -> true in
    if post_ok then Ok state
    else
      Error
        (str "postcondition failed (C_RET=%s, S_RET=%s)"
           (match call.ret with Some r -> string_of_int r | None -> "-")
           (match s_ret with Some r -> string_of_int r | None -> "-"))
  end

(* Justifying pre/side/postcondition of the last call of a subhistory
   (Def. 4). *)
let justify_last (type st) (spec : st Spec.t) info_of state (m : Call.t) =
  let ms = Spec.method_spec spec m.name in
  let info = info_of m in
  (match ms.justifying_precondition with Some p -> p state info | None -> true)
  &&
  let state, s_ret =
    match ms.side_effect with Some f -> f state info | None -> (state, None)
  in
  match ms.justifying_postcondition with Some p -> p state info ~s_ret | None -> true

(* Legacy list-then-replay of one sequential history, kept as the
   reference implementation (differential tests; [sample_histories],
   whose random draws are not a DFS). Returns the first failure. *)
let replay_history (type st) (spec : st Spec.t) info_of (history : Call.t list) =
  let rec go state = function
    | [] -> None
    | (call : Call.t) :: rest -> (
      match step spec info_of state call with
      | Ok state -> go state rest
      | Error why -> Some (call, why))
  in
  go (spec.initial ()) history

(* Legacy replay of one justifying subhistory of [m] (m is its last
   element): the prefix must itself satisfy the specification, and m's
   justifying pre/postconditions must hold around m's own side effect
   (Def. 4). *)
let replay_justifying (type st) (spec : st Spec.t) info_of (subhistory : Call.t list) =
  let rec go state = function
    | [] -> false
    | [ (m : Call.t) ] -> justify_last spec info_of state m
    | (call : Call.t) :: rest -> (
      match step spec info_of state call with
      | Ok state -> go state rest
      | Error _ -> false)
  in
  go (spec.initial ()) subhistory

(* ------------------------------------------------------------------ *)
(* Prefix-sharing replay                                               *)

let assertion_violation ~history ~call why =
  {
    kind = `Assertion;
    message =
      str "%s in history %a for call %a" why
        Fmt.(list ~sep:(any " -> ") Call.pp)
        history Call.pp call;
  }

(* Def. 6 via prefix sharing: DFS over the topological-sort tree of ⊑r,
   threading the persistent sequential state down the recursion, so a
   prefix shared by many histories is replayed once instead of once per
   history. The walk stops at the first failing call; the reported
   history is that prefix completed greedily ([any_topological_sort]
   picks the first available node, i.e. the leftmost leaf of the failing
   subtree), which is exactly the first failing history in enumeration
   order — every leaf left of the failing node passed, so the verdict
   and message are byte-identical to the legacy path. The [max] budget
   is charged before entering a node, so no call belonging only to
   histories beyond the legacy cap is ever replayed. *)
let check_histories_shared (type st) ~max (spec : st Spec.t) info_of relation calls find =
  let nodes = List.map (fun (c : Call.t) -> c.id) calls in
  let failure = ref None in
  let truncated =
    C11.Relation.walk_linear_extensions ~max ~nodes relation
      ~init:(spec.initial (), [])
      ~enter:(fun (state, rev_prefix) id ->
        let call = find id in
        match step spec info_of state call with
        | Ok state' -> `Enter (state', call :: rev_prefix)
        | Error why ->
          failure := Some (call :: rev_prefix, call, why);
          `Stop)
      ~leaf:(fun _ -> `Continue)
  in
  let violation =
    match !failure with
    | None -> None
    | Some (rev_prefix, call, why) ->
      let prefix = List.rev rev_prefix in
      let in_prefix = Hashtbl.create 16 in
      List.iter (fun (c : Call.t) -> Hashtbl.replace in_prefix c.id ()) prefix;
      let remaining = List.filter (fun id -> not (Hashtbl.mem in_prefix id)) nodes in
      let completion =
        if remaining = [] then []
        else List.map find (C11.Relation.any_topological_sort ~nodes:remaining relation)
      in
      Some (assertion_violation ~history:(prefix @ completion) ~call why)
  in
  (violation, truncated)

(* Justification of [m] (Defs. 3-4) via prefix sharing: DFS over the
   linearizations of m's strict down-set, threading [Some state] while
   the prefix satisfies the spec and [None] once it has failed. Failed
   prefixes still walk to their leaves so the [max] budget is consumed
   exactly as the legacy enumerate-then-replay path consumes it (one
   unit per linearization, accepted or not); the walk stops at the
   first accepting subhistory. *)
let justified_shared (type st) ~max (spec : st Spec.t) info_of relation find (m : Call.t) =
  let nodes = C11.Relation.down_set relation m.id in
  let accepted = ref false in
  let truncated =
    C11.Relation.walk_linear_extensions ~max ~nodes relation
      ~init:(Some (spec.initial ()))
      ~enter:(fun state id ->
        match state with
        | None -> `Enter None
        | Some st -> (
          match step spec info_of st (find id) with
          | Ok st' -> `Enter (Some st')
          | Error _ -> `Enter None))
      ~leaf:(fun state ->
        match state with
        | None -> `Continue
        | Some st ->
          if justify_last spec info_of st m then begin
            accepted := true;
            `Stop
          end
          else `Continue)
  in
  (!accepted, truncated)

(* ------------------------------------------------------------------ *)
(* Admissibility                                                       *)

let check_admissibility (type st) (spec : st Spec.t) relation calls =
  let violations = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let pairs = History.unordered_pairs relation calls in
  List.iter
    (fun ((a : Call.t), (b : Call.t)) ->
      List.iter
        (fun (rule : Spec.admissibility_rule) ->
          let check m1 m2 =
            if m1.Call.name = rule.first && m2.Call.name = rule.second && rule.requires_order m1 m2
            then begin
              let message =
                str "calls %a and %a must be ordered but are not" Call.pp m1 Call.pp m2
              in
              if not (Hashtbl.mem seen message) then begin
                Hashtbl.add seen message ();
                violations := { kind = `Admissibility; message } :: !violations
              end
            end
          in
          (* Both orientations, always: a same-name rule whose
             [requires_order] is not symmetric holds in only one
             direction, and skipping the reversed check silently
             admitted the pair. Symmetric rules just produce the two
             mirror findings (deduplicated by message). *)
          check a b;
          check b a)
        spec.admissibility)
    pairs;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Per-object check                                                    *)

(* The full result of checking one object instance: the verdict plus
   whether either enumeration hit its cap — previously the truncation
   flags were silently discarded, so a capped (hence partial) check was
   indistinguishable from a complete one. *)
type outcome = {
  violations : violation list;
  histories_truncated : bool;
  prefixes_truncated : bool;
}

let clean = { violations = []; histories_truncated = false; prefixes_truncated = false }

(* Check the calls of ONE object instance (caller renumbers ids densely
   and precomputes ⊑r over them). *)
let check_object (type st) ~config (spec : st Spec.t) relation calls =
  if calls = [] then clean
  else if not (C11.Relation.is_acyclic relation) then
    {
      clean with
      violations =
        [
          {
            kind = `Cyclic_ordering;
            message = "ordering points induce a cyclic method-call relation";
          };
        ];
    }
  else begin
    let find = History.by_id calls in
    let info_of =
      let cache = Hashtbl.create 8 in
      fun (c : Call.t) ->
        match Hashtbl.find_opt cache c.id with
        | Some i -> i
        | None ->
          let i = { Spec.call = c; concurrent = History.concurrent relation calls c } in
          Hashtbl.add cache c.id i;
          i
    in
    let admissibility = check_admissibility spec relation calls in
    if admissibility <> [] then { clean with violations = admissibility }
    else begin
      (* Def. 6: the specification must hold on every valid sequential
         history. Random sampling has no tree to share prefixes over, so
         it keeps the list-then-replay path; [legacy_replay] keeps it
         unconditionally for the differential tests. *)
      let history_violation, h_trunc =
        if config.legacy_replay || config.sample_histories <> None then begin
          let histories, truncated =
            History.histories ~max:config.max_histories ?sample:config.sample_histories
              relation calls
          in
          let v =
            List.find_map
              (fun history ->
                match replay_history spec info_of history with
                | None -> None
                | Some (call, why) -> Some (assertion_violation ~history ~call why))
              histories
          in
          (v, truncated)
        end
        else check_histories_shared ~max:config.max_histories spec info_of relation calls find
      in
      match history_violation with
      | Some v -> { clean with violations = [ v ]; histories_truncated = h_trunc }
      | None ->
        (* Justify non-deterministic behaviours: some justifying
           subhistory (with the CONCURRENT set available to the
           predicates) must accept each call (Defs. 3-4). *)
        let p_trunc = ref false in
        let unjustified =
          List.filter_map
            (fun (m : Call.t) ->
              let ms = Spec.method_spec spec m.name in
              if not (Spec.needs_justification ms) then None
              else begin
                let justified, truncated =
                  if config.legacy_replay then begin
                    let subs, truncated =
                      History.justifying_subhistories ~max:config.max_prefixes relation calls
                        m
                    in
                    (List.exists (replay_justifying spec info_of) subs, truncated)
                  end
                  else justified_shared ~max:config.max_prefixes spec info_of relation find m
                in
                if truncated then p_trunc := true;
                if justified then None
                else
                  Some
                    {
                      kind = `Unjustified;
                      message =
                        str "call %a has no justifying subhistory for its behaviour" Call.pp m;
                    }
              end)
            calls
        in
        let strict =
          if not config.strict_histories then []
          else
            (if h_trunc then
               [
                 {
                   kind = `Truncated;
                   message =
                     str
                       "sequential-history enumeration hit the max_histories cap (%d): \
                        unchecked histories remain"
                       config.max_histories;
                 };
               ]
             else [])
            @
            if !p_trunc then
              [
                {
                  kind = `Truncated;
                  message =
                    str
                      "justifying-subhistory enumeration hit the max_prefixes cap (%d): \
                       unchecked subhistories remain"
                      config.max_prefixes;
                };
              ]
            else []
        in
        {
          violations = unjustified @ strict;
          histories_truncated = h_trunc;
          prefixes_truncated = !p_trunc;
        }
    end
  end

(* ------------------------------------------------------------------ *)
(* Cross-execution check cache                                         *)

type cached = { verdict : violation list; h_trunc : bool; p_trunc : bool }

type cache = {
  memoize : bool;
  table : (string, cached) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable histories_truncated : int;
  mutable prefixes_truncated : int;
}

let create_cache ?(memoize = true) () =
  {
    memoize;
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    histories_truncated = 0;
    prefixes_truncated = 0;
  }

let cache_counters c =
  Mutex.lock c.lock;
  let r =
    {
      Mc.Explorer.cache_hits = c.hits;
      cache_misses = c.misses;
      cache_entries = Hashtbl.length c.table;
      histories_truncated = c.histories_truncated;
      prefixes_truncated = c.prefixes_truncated;
    }
  in
  Mutex.unlock c.lock;
  r

type cache_entry = {
  entry_key : string;
  entry_verdict : violation list;
  entry_h_trunc : bool;
  entry_p_trunc : bool;
}

let export_entries c =
  Mutex.lock c.lock;
  let r =
    Hashtbl.fold
      (fun key (v : cached) acc ->
        { entry_key = key; entry_verdict = v.verdict; entry_h_trunc = v.h_trunc;
          entry_p_trunc = v.p_trunc }
        :: acc)
      c.table []
  in
  Mutex.unlock c.lock;
  r

(* Imported entries land in the table without bumping hit/miss counters:
   a preloaded verdict is neither — the counters describe this run's
   lookups. No-op with memoization off, so [--no-check-cache] keeps its
   meaning even against a warm store. *)
let import_entries c entries =
  if c.memoize then begin
    Mutex.lock c.lock;
    List.iter
      (fun e ->
        if not (Hashtbl.mem c.table e.entry_key) then
          Hashtbl.replace c.table e.entry_key
            { verdict = e.entry_verdict; h_trunc = e.entry_h_trunc; p_trunc = e.entry_p_trunc })
      entries;
    Mutex.unlock c.lock
  end

(* Canonical fingerprint of one per-object check instance: the calls in
   dense-id order (name, args, C_RET, tid) plus the reachability closure
   of ⊑r as an n*n bit matrix. Everything the checker's verdict depends
   on is a function of exactly these: histories and justifying
   subhistories are the linear extensions of the closure, CONCURRENT
   sets are its complement, and spec predicates are pure functions of
   the call fields and CONCURRENT (they must not read [obj],
   [begin_index], [end_index] or [ordering_points] — see HACKING.md).
   Two executions whose renumbered call lists collide here are the same
   check instance, so the verdict is memoized across executions. *)
let fingerprint relation (calls : Call.t list) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (c : Call.t) ->
      Buffer.add_string buf c.name;
      Buffer.add_char buf '\x01';
      List.iter
        (fun a ->
          Buffer.add_string buf (string_of_int a);
          Buffer.add_char buf ',')
        c.args;
      Buffer.add_char buf '\x02';
      (match c.ret with
      | Some r -> Buffer.add_string buf (string_of_int r)
      | None -> ());
      Buffer.add_char buf '\x02';
      Buffer.add_string buf (string_of_int c.tid);
      Buffer.add_char buf '\x03')
    calls;
  List.iter
    (fun (a : Call.t) ->
      List.iter
        (fun (b : Call.t) ->
          Buffer.add_char buf
            (if a.id <> b.id && C11.Relation.reachable relation a.id b.id then '1' else '0'))
        calls)
    calls;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Whole-execution check                                               *)

(* Composability (paper section 3.2): each object instance is checked
   against the specification independently (ids renumbered densely per
   object, which is also what makes fingerprints collide across
   executions and across objects). *)
let check_spec (type st) ~config ?cache (spec : st Spec.t) exec annots =
  let calls = History.calls_of_annots exec annots in
  let objs = List.sort_uniq compare (List.map (fun (c : Call.t) -> c.obj) calls) in
  List.concat_map
    (fun obj ->
      let group = List.filter (fun (c : Call.t) -> c.obj = obj) calls in
      let group = List.mapi (fun i (c : Call.t) -> { c with id = i }) group in
      let relation = History.ordering_relation exec group in
      let outcome =
        match cache with
        | None -> check_object ~config spec relation group
        | Some cache ->
          let key = fingerprint relation group in
          let cached =
            if not cache.memoize then None
            else begin
              Mutex.lock cache.lock;
              let r = Hashtbl.find_opt cache.table key in
              Mutex.unlock cache.lock;
              r
            end
          in
          (match cached with
          | Some c ->
            Mutex.lock cache.lock;
            cache.hits <- cache.hits + 1;
            if c.h_trunc then
              cache.histories_truncated <- cache.histories_truncated + 1;
            if c.p_trunc then cache.prefixes_truncated <- cache.prefixes_truncated + 1;
            Mutex.unlock cache.lock;
            {
              violations = c.verdict;
              histories_truncated = c.h_trunc;
              prefixes_truncated = c.p_trunc;
            }
          | None ->
            let o = check_object ~config spec relation group in
            (* The lock is released during the (possibly long) check, so
               another domain may have inserted the same key meanwhile;
               keep the first entry (verdicts for equal keys are equal
               anyway). *)
            Mutex.lock cache.lock;
            cache.misses <- cache.misses + 1;
            if o.histories_truncated then
              cache.histories_truncated <- cache.histories_truncated + 1;
            if o.prefixes_truncated then
              cache.prefixes_truncated <- cache.prefixes_truncated + 1;
            if cache.memoize && not (Hashtbl.mem cache.table key) then
              Hashtbl.add cache.table key
                {
                  verdict = o.violations;
                  h_trunc = o.histories_truncated;
                  p_trunc = o.prefixes_truncated;
                };
            Mutex.unlock cache.lock;
            o)
      in
      outcome.violations)
    objs

let check_execution ?(config = default_config) ?cache (Spec.Packed spec) exec annots =
  check_spec ~config ?cache spec exec annots

let hook ?config ?cache packed exec annots =
  List.map
    (fun v -> Mc.Bug.Spec_violation { kind = kind_name v.kind; message = v.message })
    (check_execution ?config ?cache packed exec annots)
