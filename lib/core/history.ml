module Annot = Mc.Scheduler

(* Per-thread reconstruction state while scanning the annotation stream. *)
type open_call = {
  name : string;
  args : int list;
  obj : int;
  begin_index : int;
  mutable depth : int;  (* nesting of internal api_call brackets *)
  mutable ops : int list;  (* ordering-point action ids, reverse order *)
  mutable potential : (string * int) list;  (* labelled potential OPs *)
}

let calls_of_annots _exec annots =
  let open_calls : (int, open_call) Hashtbl.t = Hashtbl.create 8 in
  let finished = ref [] in
  let count = ref 0 in
  let handle (a : Annot.annot) =
    let current = Hashtbl.find_opt open_calls a.tid in
    match a.annotation, current with
    | Mc.Program.Method_begin { name; args; obj }, None ->
      Hashtbl.replace open_calls a.tid
        { name; args; obj; begin_index = a.index; depth = 1; ops = []; potential = [] }
    | Method_begin _, Some oc -> oc.depth <- oc.depth + 1
    | Method_end { ret }, Some oc ->
      oc.depth <- oc.depth - 1;
      if oc.depth = 0 then begin
        Hashtbl.remove open_calls a.tid;
        let id = !count in
        incr count;
        finished :=
          {
            Call.id;
            tid = a.tid;
            obj = oc.obj;
            name = oc.name;
            args = oc.args;
            ret;
            ordering_points = List.rev oc.ops;
            begin_index = oc.begin_index;
            end_index = a.index;
          }
          :: !finished
      end
    | Method_end _, None -> invalid_arg "calls_of_annots: Method_end without Method_begin"
    | Op_define, Some oc -> (
      match a.op_action with
      | Some id -> oc.ops <- id :: oc.ops
      | None -> ())
    (* @OPClear discards the call's ordering-point state wholesale:
       uncommitted potential OPs are part of that state, so they are
       dropped too — otherwise a later @OPCheck could resurrect an
       operation from before the clear. *)
    | Op_clear, Some oc ->
      oc.ops <- [];
      oc.potential <- []
    | Op_clear_define, Some oc -> (
      oc.ops <- [];
      oc.potential <- [];
      match a.op_action with
      | Some id -> oc.ops <- [ id ]
      | None -> ())
    | Potential_op label, Some oc -> (
      match a.op_action with
      | Some id -> oc.potential <- (label, id) :: oc.potential
      | None -> ())
    (* @OPCheck commits the remembered operations; committing twice (two
       checks of the same label, or a label remembered twice for the
       same action) must not duplicate an ordering point. *)
    | Op_check label, Some oc ->
      List.iter
        (fun (l, id) -> if l = label && not (List.mem id oc.ops) then oc.ops <- id :: oc.ops)
        oc.potential
    | (Op_define | Op_clear | Op_clear_define | Potential_op _ | Op_check _), None ->
      (* an ordering-point annotation outside any API call is ignored *)
      ()
  in
  List.iter handle annots;
  List.sort (fun (a : Call.t) b -> compare a.id b.id) !finished

(* Hot path: runs on every feasible execution, over all pairs of calls.
   The action lookups (id -> Action.t) and seq_cst tests are hoisted out
   of the pair loop into per-call arrays so the inner loop is pure
   vector-clock queries, short-circuited on the first ordered pair. *)
let ordering_relation exec (calls : Call.t list) =
  let calls = Array.of_list calls in
  let n = Array.length calls in
  let r = C11.Relation.create n in
  let acts =
    Array.map
      (fun (c : Call.t) ->
        Array.of_list (List.map (C11.Execution.action exec) c.ordering_points))
      calls
  in
  let sc = Array.map (Array.map C11.Action.is_seq_cst) acts in
  let ordered i j =
    let ops_a = acts.(i) and ops_b = acts.(j) in
    let sc_a = sc.(i) and sc_b = sc.(j) in
    try
      for x = 0 to Array.length ops_a - 1 do
        let a = ops_a.(x) in
        for y = 0 to Array.length ops_b - 1 do
          let b = ops_b.(y) in
          if
            a.C11.Action.id <> b.C11.Action.id
            && (C11.Action.happens_before a b || (sc_a.(x) && sc_b.(y) && a.id < b.id))
          then raise Exit
        done
      done;
      false
    with Exit -> true
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if calls.(i).id <> calls.(j).id && ordered i j then
        C11.Relation.add_edge r calls.(i).id calls.(j).id
    done
  done;
  r

let concurrent r calls (m : Call.t) =
  List.filter (fun (c : Call.t) -> c.id <> m.id && not (C11.Relation.ordered r c.id m.id)) calls

let unordered_pairs r calls =
  let pairs = ref [] in
  List.iter
    (fun (a : Call.t) ->
      List.iter
        (fun (b : Call.t) ->
          if a.id < b.id && not (C11.Relation.ordered r a.id b.id) then pairs := (a, b) :: !pairs)
        calls)
    calls;
  List.rev !pairs

let by_id calls =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (c : Call.t) -> Hashtbl.replace tbl c.id c) calls;
  fun id ->
    match Hashtbl.find_opt tbl id with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "History.by_id: no call with id %d" id)

let histories ?max ?sample r calls =
  let find = by_id calls in
  let nodes = List.map (fun (c : Call.t) -> c.id) calls in
  let sorts, truncated = C11.Relation.topological_sorts ?max ?sample ~nodes r in
  (List.map (List.map find) sorts, truncated)

let justifying_subhistories ?max r calls (m : Call.t) =
  let find = by_id calls in
  let nodes = C11.Relation.down_set r m.id in
  let sorts, truncated = C11.Relation.topological_sorts ?max ~nodes r in
  (List.map (fun sort -> List.map find sort @ [ m ]) sorts, truncated)
