(** From one feasible execution to the method-call level: extract calls
    from the annotation stream, build the ordering relation ⊑r from the
    hb/sc ordering of their ordering points, and enumerate the valid
    sequential histories and justifying subhistories the checker replays
    (paper Definitions 2 and 3, section 5.2). *)

(** [calls_of_annots exec annots] reconstructs the outermost API method
    calls per thread. Ordering-point annotations inside nested (internal)
    calls accrue to the outermost call. *)
val calls_of_annots : C11.Execution.t -> Mc.Scheduler.annot list -> Call.t list

(** [ordering_relation exec calls] is ⊑r: call [a] precedes call [b] when
    some ordering point of [a] is hb- or SC-ordered before one of [b].
    Node ids are call ids. *)
val ordering_relation : C11.Execution.t -> Call.t list -> C11.Relation.t

(** The CONCURRENT set of a call: calls unordered with it under ⊑r. *)
val concurrent : C11.Relation.t -> Call.t list -> Call.t -> Call.t list

(** Unordered pairs [(a, b)] with [a.id < b.id], for admissibility. *)
val unordered_pairs : C11.Relation.t -> Call.t list -> (Call.t * Call.t) list

(** Memoized id -> call lookup over one call list (raises
    [Invalid_argument] on an unknown id). *)
val by_id : Call.t list -> int -> Call.t

(** [histories ?max ?sample r calls] enumerates valid sequential
    histories (linear extensions of ⊑r over all calls). Returns the
    histories and whether enumeration was truncated. *)
val histories :
  ?max:int -> ?sample:int * int -> C11.Relation.t -> Call.t list -> Call.t list list * bool

(** [justifying_subhistories ?max r calls m] enumerates the justifying
    subhistories of [m]: linearizations of ⊑r's strict down-set of [m],
    each with [m] appended. Returns the subhistories and whether
    enumeration hit the [max] cap (so callers can surface the
    truncation instead of silently under-checking). *)
val justifying_subhistories :
  ?max:int -> C11.Relation.t -> Call.t list -> Call.t -> Call.t list list * bool
