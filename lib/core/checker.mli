(** The CDSSpec checking pass run on every feasible execution (paper
    section 5.2): extract the method calls and the ordering relation,
    check admissibility, replay every valid sequential history against
    the equivalent sequential data structure, and require every
    non-deterministic behaviour to be justified by some justifying
    subhistory (or by the CONCURRENT set, which the justifying predicates
    may consult).

    History replay shares prefixes: instead of materializing every
    linear extension of ⊑r and replaying each from scratch, the checker
    walks the topological-sort tree once, threading the persistent
    sequential state down the recursion ({!Spec} states must therefore
    be persistent values — see HACKING.md). Verdicts and messages are
    byte-identical to the legacy list-then-replay path, which is kept
    behind [legacy_replay] for differential testing. *)

type config = {
  max_histories : int;
      (** truncate exhaustive enumeration of sequential histories *)
  sample_histories : (int * int) option;
      (** [(count, seed)]: randomly sample instead of exhausting — the
          checker's "check a user-customized number of histories" option.
          Sampling always uses the legacy list-then-replay path. *)
  max_prefixes : int;  (** cap on justifying subhistories per call *)
  strict_histories : bool;
      (** report a [`Truncated] violation when an enumeration cap was
          hit (a capped check is only a partial proof); otherwise the
          truncation is surfaced only through the {!cache} counters *)
  legacy_replay : bool;
      (** use the pre-PR-4 list-then-replay path (reference
          implementation for the differential tests) *)
}

val default_config : config

type violation = {
  kind : [ `Admissibility | `Assertion | `Unjustified | `Cyclic_ordering | `Truncated ];
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** {2 Cross-execution check cache}

    Distinct executions routinely induce the same per-object check
    instance (same calls, same ordering relation up to dense id
    renumbering); the cache memoizes verdicts across them, keyed on
    {!fingerprint}. It is domain-safe (a single mutex guards the table
    and counters; the check itself runs outside the lock) and is meant
    to live for one exploration run under one [config] — never share a
    cache across different configs or specs. *)

type cache

(** [create_cache ()] makes an empty cache. [~memoize:false] disables
    the verdict table but keeps every counter, so hit/miss/truncation
    accounting still flows to {!cache_counters} — this is the
    [--no-check-cache] path. *)
val create_cache : ?memoize:bool -> unit -> cache

(** Snapshot the counters in the shape {!Mc.Explorer.stats} carries
    ([cache_entries] is the current table size; the truncation counters
    count per-object check instances whose enumeration hit a cap,
    including cached ones). *)
val cache_counters : cache -> Mc.Explorer.check_counters

(** One memoized verdict, in serializable form — what the persistent
    cross-run store saves and restores. [entry_key] is the
    {!fingerprint} string; the truncation flags record whether this
    verdict was computed under a hit enumeration cap (a warm run must
    re-surface the same truncation warnings a cold run would). *)
type cache_entry = {
  entry_key : string;
  entry_verdict : violation list;
  entry_h_trunc : bool;
  entry_p_trunc : bool;
}

(** Snapshot every memoized verdict (unspecified order). *)
val export_entries : cache -> cache_entry list

(** Preload verdicts from an earlier run of the identical spec/config.
    Existing keys are kept, hit/miss counters are untouched (preloading
    is neither), and the call is a no-op on a [~memoize:false] cache. *)
val import_entries : cache -> cache_entry list -> unit

(** Canonical fingerprint of one per-object check instance: the calls
    in dense-id order (name, args, C_RET, tid) plus the reachability
    closure of the ordering relation. Exposed for the tests. *)
val fingerprint : C11.Relation.t -> Call.t list -> string

(** Admissibility findings for one object's calls under ⊑r (both
    orientations of every rule are checked, mirror findings
    deduplicated). Exposed for the regression tests. *)
val check_admissibility :
  'st Spec.t -> C11.Relation.t -> Call.t list -> violation list

(** Check one execution; the empty list means the specification holds. *)
val check_execution :
  ?config:config ->
  ?cache:cache ->
  Spec.packed ->
  C11.Execution.t ->
  Mc.Scheduler.annot list ->
  violation list

(** [hook spec] packages {!check_execution} as an [Explorer.explore]
    [on_feasible] callback, mapping violations to
    {!Mc.Bug.Spec_violation}s. *)
val hook :
  ?config:config ->
  ?cache:cache ->
  Spec.packed ->
  C11.Execution.t ->
  Mc.Scheduler.annot list ->
  Mc.Bug.t list
