module P = Mc.Program
module A = Cdsspec.Annotations
open C11.Memory_order

(* A node is one cell: its "busy" flag. The lock holds an atomic tail
   pointing at the most recent node; a handle remembers the node we
   installed (to release) and the predecessor node we waited on. *)
type t = { tail : P.loc; data : P.loc }

type handle = { mine : P.loc }

let sites =
  [
    Ords.site "lock_init_busy" For_store Relaxed;
    Ords.site "lock_xchg_tail" For_rmw Acq_rel;
    Ords.site "lock_spin_pred" For_load Acquire;
    Ords.site "unlock_store_busy" For_store Release;
  ]

let create () =
  let sentinel = P.malloc 1 in
  P.store Relaxed sentinel 0;
  (* sentinel: not busy *)
  let tail = P.malloc 1 in
  P.store Relaxed tail sentinel;
  let data = P.malloc ~init:0 1 in
  { tail; data }

let o = Ords.get

let lock ords l =
  A.api_call ~obj:l.tail ~name:"lock" ~args:[] (fun () ->
      let mine = P.malloc 1 in
      P.store ~site:"lock_init_busy" (o ords "lock_init_busy") mine 1;
      (* busy *)
      let pred = P.exchange ~site:"lock_xchg_tail" (o ords "lock_xchg_tail") l.tail mine in
      A.op_define ();
      let rec spin () =
        let busy = P.load ~site:"lock_spin_pred" (o ords "lock_spin_pred") pred in
        A.op_clear_define ();
        if busy = 1 then spin ()
      in
      spin ();
      Some mine)
  |> function
  | Some mine -> { mine }
  | None -> assert false

let unlock ords l handle =
  ignore l;
  A.api_proc ~obj:l.tail ~name:"unlock" ~args:[] (fun () ->
      P.store ~site:"unlock_store_busy" (o ords "unlock_store_busy") handle.mine 0;
      A.op_define ())

let spec = Ticket_lock.mutex_spec ~name:"clh-lock" ~lock_names:[ "lock" ] ~unlock_names:[ "unlock" ] ()

let critical_section (l : t) =
  let v = P.na_load l.data in
  P.na_store l.data (v + 1)

let test_two_threads ords () =
  let l = create () in
  let worker () =
    let h = lock ords l in
    critical_section l;
    unlock ords l h
  in
  let t1 = P.spawn worker in
  let t2 = P.spawn worker in
  P.join t1;
  P.join t2

let test_handoff ords () =
  let l = create () in
  let t1 =
    P.spawn (fun () ->
        let h = lock ords l in
        critical_section l;
        unlock ords l h;
        let h2 = lock ords l in
        critical_section l;
        unlock ords l h2)
  in
  let t2 =
    P.spawn (fun () ->
        let h = lock ords l in
        critical_section l;
        unlock ords l h)
  in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"CLH Lock" ~spec ~sites
    [ ("two-threads", test_two_threads); ("handoff", test_handoff) ]
