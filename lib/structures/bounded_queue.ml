module P = Mc.Program
module A = Cdsspec.Annotations
module Spec = Cdsspec.Spec
module Il = Cdsspec.Seq_state.Int_list
open C11.Memory_order

(* Bounded lock-free MPMC queue in the style of Saturn's Bounded_queue:
   a Michael–Scott linked list whose nodes carry a monotonic position
   counter. The queue's length is the position distance between the
   tail and head nodes, so push can refuse ("full") without any shared
   size counter — the check reads only the two list anchors.

   Node layout: [next; data; pos]; 0 is NULL. [pos] is written once,
   before the node is published by the linking CAS, and read only
   through pointers obtained from acquire loads — so plain non-atomic
   accesses suffice, like [data]. The dummy node has position 0 and
   each linked node the predecessor's position plus one. *)
let f_next node = node
let f_data node = node + 1
let f_pos node = node + 2

type t = { head : P.loc; tail : P.loc; capacity : int }

let sites =
  [
    Ords.site "push_load_tail" For_load Acquire;
    Ords.site "push_load_next" For_load Acquire;
    Ords.site "push_load_head" For_load Acquire;
    Ords.site "push_cas_next" For_rmw Release;
    Ords.site "push_cas_tail_help" For_rmw Release;
    Ords.site "push_cas_tail" For_rmw Release;
    Ords.site "pop_load_head" For_load Acquire;
    Ords.site "pop_load_tail" For_load Acquire;
    Ords.site "pop_load_next" For_load Acquire;
    Ords.site "pop_check_head" For_load Relaxed;
    Ords.site "pop_cas_tail_help" For_rmw Release;
    Ords.site "pop_cas_head" For_rmw Release;
  ]

(* Same AutoMO-style weakenings as the unbounded M&S queue: the
   linking CAS published relaxed, and the pop next-pointer load missing
   its acquire. *)
let known_bugs =
  [
    ("push_cas_next", Ords.with_order sites "push_cas_next" Relaxed);
    ("pop_load_next", Ords.with_order sites "pop_load_next" Relaxed);
  ]

let new_node value =
  let n = P.malloc 3 in
  P.store Relaxed (f_next n) 0;
  P.na_store (f_data n) value;
  P.na_store (f_pos n) 0;
  n

let create capacity =
  let dummy = new_node 0 in
  let head = P.malloc 1 in
  let tail = P.malloc 1 in
  P.store Relaxed head dummy;
  P.store Relaxed tail dummy;
  { head; tail; capacity }

let o = Ords.get

let push ords q value =
  A.api_call ~obj:q.head ~name:"push" ~args:[ value; q.capacity ] (fun () ->
      let node = new_node value in
      let rec loop () =
        let t = P.load ~site:"push_load_tail" (o ords "push_load_tail") q.tail in
        let next = P.load ~site:"push_load_next" (o ords "push_load_next") (f_next t) in
        if next <> 0 then begin
          (* help lagging tail along *)
          ignore
            (P.cas ~site:"push_cas_tail_help" (o ords "push_cas_tail_help") q.tail ~expected:t
               ~desired:next);
          loop ()
        end
        else begin
          let h = P.load ~site:"push_load_head" (o ords "push_load_head") q.head in
          if P.na_load (f_pos t) - P.na_load (f_pos h) >= q.capacity then begin
            A.op_clear_define ();
            Some 0 (* full *)
          end
          else begin
            P.na_store (f_pos node) (P.na_load (f_pos t) + 1);
            if
              P.cas ~site:"push_cas_next" (o ords "push_cas_next") (f_next t) ~expected:0
                ~desired:node
            then begin
              A.op_define ();
              ignore
                (P.cas ~site:"push_cas_tail" (o ords "push_cas_tail") q.tail ~expected:t
                   ~desired:node);
              Some 1
            end
            else loop ()
          end
        end
      in
      loop ())
  = Some 1

let pop ords q =
  match
    A.api_call ~obj:q.head ~name:"pop" ~args:[] (fun () ->
        let rec loop () =
          let h = P.load ~site:"pop_load_head" (o ords "pop_load_head") q.head in
          let t = P.load ~site:"pop_load_tail" (o ords "pop_load_tail") q.tail in
          let next = P.load ~site:"pop_load_next" (o ords "pop_load_next") (f_next h) in
          A.op_clear_define ();
          if h = P.load ~site:"pop_check_head" (o ords "pop_check_head") q.head then begin
            if h = t then begin
              if next = 0 then Some (-1)
              else begin
                (* tail is lagging: help and retry *)
                ignore
                  (P.cas ~site:"pop_cas_tail_help" (o ords "pop_cas_tail_help") q.tail
                     ~expected:t ~desired:next);
                loop ()
              end
            end
            else begin
              let value = P.na_load (f_data next) in
              if
                P.cas ~site:"pop_cas_head" (o ords "pop_cas_head") q.head ~expected:h
                  ~desired:next
              then Some value
              else loop ()
            end
          end
          else loop ()
        in
        loop ())
  with
  | Some v -> v
  | None -> -1

(* Push is the Lamport-ring try-enqueue (a spurious "full" is justified
   by a prefix already holding >= capacity items — the capacity travels
   as the call's second argument); pop is the M&S dequeue. Being MPMC,
   the only admissibility rule is that a successful pop is ordered with
   the push it took its value from. *)
let spec =
  let push_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            if c_ret = 1 then (Il.push_back (Cdsspec.Call.arg info.call 0) st, Some 1)
            else (st, Some 0));
      (* full may be reported spuriously: a pop's progress was not yet
         visible to the position check *)
      postcondition = Some (fun _st _info ~s_ret:_ -> true);
      justifying_postcondition =
        Some
          (fun st (info : Spec.info) ~s_ret:_ ->
            let c_ret = Cdsspec.Call.ret_or 0 info.call in
            c_ret = 1 || Il.length st >= Cdsspec.Call.arg info.call 1);
    }
  in
  let pop_spec =
    {
      Spec.default_method with
      side_effect =
        Some
          (fun st (info : Spec.info) ->
            let s_ret = match Il.front st with None -> -1 | Some v -> v in
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            let st = if s_ret <> -1 && c_ret <> -1 then Il.pop_front st else st in
            (st, Some s_ret));
      postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            c_ret = -1 || Some c_ret = s_ret);
      justifying_postcondition =
        Some
          (fun _st (info : Spec.info) ~s_ret ->
            let c_ret = Cdsspec.Call.ret_or (-1) info.call in
            if c_ret = -1 then s_ret = Some (-1) else true);
    }
  in
  let pop_of_push =
    {
      Spec.first = "pop";
      second = "push";
      requires_order =
        (fun d e ->
          Cdsspec.Call.ret_or (-1) d <> -1
          && Cdsspec.Call.ret_or (-1) d = Cdsspec.Call.arg e 0);
    }
  in
  Spec.Packed
    {
      name = "bounded-queue";
      initial = (fun () -> Il.empty);
      methods = [ ("push", push_spec); ("pop", pop_spec) ];
      admissibility = [ pop_of_push ];
      accounting =
        { spec_lines = 14; ordering_point_lines = 3; admissibility_lines = 1; api_methods = 2 };
    }

let test_1push_1pop ords () =
  let q = create 1 in
  let t1 = P.spawn (fun () -> ignore (push ords q 1)) in
  let t2 = P.spawn (fun () -> ignore (pop ords q)) in
  P.join t1;
  P.join t2

(* Capacity 1: the producer's second push races the consumer's pop, so
   it may observe full, succeed after the pop, or see a stale head. *)
let test_full_handoff ords () =
  let q = create 1 in
  let t1 =
    P.spawn (fun () ->
        ignore (push ords q 1);
        ignore (push ords q 2))
  in
  let t2 = P.spawn (fun () -> ignore (pop ords q)) in
  P.join t1;
  P.join t2

let test_racing_pushes ords () =
  let q = create 2 in
  let t1 = P.spawn (fun () -> ignore (push ords q 1)) in
  let t2 = P.spawn (fun () -> ignore (push ords q 2)) in
  P.join t1;
  P.join t2;
  ignore (pop ords q)

let test_racing_pops ords () =
  let q = create 2 in
  ignore (push ords q 1);
  ignore (push ords q 2);
  let t1 = P.spawn (fun () -> ignore (pop ords q)) in
  let t2 = P.spawn (fun () -> ignore (pop ords q)) in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"Bounded Queue" ~spec ~sites
    [
      ("1push-1pop", test_1push_1pop);
      ("full-handoff", test_full_handoff);
      ("racing-pushes", test_racing_pushes);
      ("racing-pops", test_racing_pops);
    ]
