module P = Mc.Program

(* Oversized M&S queue: 2 producers × 4 enqueues racing 2 consumers × 4
   dequeues — 4 threads, 16 calls (the exhaustive unit tests stop at 2
   threads × 2 calls). *)
let ms_test ords () =
  let q = Ms_queue.create () in
  let p1 =
    P.spawn (fun () ->
        Ms_queue.enq ords q 11;
        Ms_queue.enq ords q 12;
        Ms_queue.enq ords q 13;
        Ms_queue.enq ords q 14)
  in
  let p2 =
    P.spawn (fun () ->
        Ms_queue.enq ords q 21;
        Ms_queue.enq ords q 22;
        Ms_queue.enq ords q 23;
        Ms_queue.enq ords q 24)
  in
  let c1 =
    P.spawn (fun () ->
        ignore (Ms_queue.deq ords q);
        ignore (Ms_queue.deq ords q);
        ignore (Ms_queue.deq ords q);
        ignore (Ms_queue.deq ords q))
  in
  let c2 =
    P.spawn (fun () ->
        ignore (Ms_queue.deq ords q);
        ignore (Ms_queue.deq ords q);
        ignore (Ms_queue.deq ords q);
        ignore (Ms_queue.deq ords q))
  in
  P.join p1;
  P.join p2;
  P.join c1;
  P.join c2

let ms_queue =
  Benchmark.make ~name:"M&S Queue (oversized)" ~spec:Ms_queue.spec ~sites:Ms_queue.sites
    [ ("2x4enq-2x4deq", ms_test) ]

(* Oversized Treiber stack: 4 symmetric workers, each 2 pushes then 2
   pops. *)
let stack_worker ords s base () =
  Treiber_stack.push ords s (base + 1);
  Treiber_stack.push ords s (base + 2);
  ignore (Treiber_stack.pop ords s);
  ignore (Treiber_stack.pop ords s)

let stack_test ords () =
  let s = Treiber_stack.create () in
  let t1 = P.spawn (stack_worker ords s 10) in
  let t2 = P.spawn (stack_worker ords s 20) in
  let t3 = P.spawn (stack_worker ords s 30) in
  let t4 = P.spawn (stack_worker ords s 40) in
  P.join t1;
  P.join t2;
  P.join t3;
  P.join t4

let treiber_stack =
  Benchmark.make ~name:"Treiber Stack (oversized)" ~spec:Treiber_stack.spec
    ~sites:Treiber_stack.sites
    [ ("4x2push-2pop", stack_test) ]

(* Oversized Harris–Michael set: 4 threads churning the shared list.
   Each thread owns a distinct key (the spec's deterministic add/remove
   postconditions rely on same-key operations being CAS-ordered, which a
   *failed* add is not — the stock unit tests respect the same contract);
   threads interact through overlapping [contains] probes, traversal over
   each other's nodes, and helping unlinks of marked nodes. *)
let set_worker ords s k probe () =
  ignore (Lockfree_set.add ords s k);
  ignore (Lockfree_set.contains ords s probe);
  ignore (Lockfree_set.remove ords s k)

let set_test ords () =
  let s = Lockfree_set.create () in
  let t1 = P.spawn (set_worker ords s 1 2) in
  let t2 = P.spawn (set_worker ords s 2 1) in
  let t3 = P.spawn (set_worker ords s 3 1) in
  let t4 = P.spawn (set_worker ords s 4 3) in
  P.join t1;
  P.join t2;
  P.join t3;
  P.join t4

let lockfree_set =
  Benchmark.make ~name:"Lockfree Set (oversized)" ~spec:Lockfree_set.spec
    ~sites:Lockfree_set.sites
    [ ("4x3ops", set_test) ]

(* Oversized SPSC queue: still one producer and one consumer (the
   structure's contract), but 8 calls each — beyond the ≤5 calls/thread
   the exhaustive suites hold to. *)
let spsc_test ords () =
  let q = Spsc_queue.create () in
  let producer =
    P.spawn (fun () ->
        Spsc_queue.enq ords q 1;
        Spsc_queue.enq ords q 2;
        Spsc_queue.enq ords q 3;
        Spsc_queue.enq ords q 4;
        Spsc_queue.enq ords q 5;
        Spsc_queue.enq ords q 6;
        Spsc_queue.enq ords q 7;
        Spsc_queue.enq ords q 8)
  in
  let consumer =
    P.spawn (fun () ->
        ignore (Spsc_queue.deq ords q);
        ignore (Spsc_queue.deq ords q);
        ignore (Spsc_queue.deq ords q);
        ignore (Spsc_queue.deq ords q);
        ignore (Spsc_queue.deq ords q);
        ignore (Spsc_queue.deq ords q);
        ignore (Spsc_queue.deq ords q);
        ignore (Spsc_queue.deq ords q))
  in
  P.join producer;
  P.join consumer

let spsc_queue =
  Benchmark.make ~name:"SPSC Queue (oversized)" ~spec:Spsc_queue.spec ~sites:Spsc_queue.sites
    [ ("8enq-8deq", spsc_test) ]

(* Oversized bounded queue: capacity 2 against 2 producers × 3 pushes
   racing 2 consumers × 3 pops — the tight bound keeps the full path
   hot, which the exhaustive unit tests only graze. *)
let bounded_test ords () =
  let q = Bounded_queue.create 2 in
  let p1 =
    P.spawn (fun () ->
        ignore (Bounded_queue.push ords q 11);
        ignore (Bounded_queue.push ords q 12);
        ignore (Bounded_queue.push ords q 13))
  in
  let p2 =
    P.spawn (fun () ->
        ignore (Bounded_queue.push ords q 21);
        ignore (Bounded_queue.push ords q 22);
        ignore (Bounded_queue.push ords q 23))
  in
  let c1 =
    P.spawn (fun () ->
        ignore (Bounded_queue.pop ords q);
        ignore (Bounded_queue.pop ords q);
        ignore (Bounded_queue.pop ords q))
  in
  let c2 =
    P.spawn (fun () ->
        ignore (Bounded_queue.pop ords q);
        ignore (Bounded_queue.pop ords q);
        ignore (Bounded_queue.pop ords q))
  in
  P.join p1;
  P.join p2;
  P.join c1;
  P.join c2

let bounded_queue =
  Benchmark.make ~name:"Bounded Queue (oversized)" ~spec:Bounded_queue.spec
    ~sites:Bounded_queue.sites
    [ ("2x3push-2x3pop", bounded_test) ]

let all () = [ ms_queue; treiber_stack; lockfree_set; spsc_queue; bounded_queue ]
