(** Per-site memory-order tables. Every atomic operation in a benchmark
    names its static site; the implementation reads the site's memory
    order from a table, so the bug-injection experiment (paper section
    6.4.2) can weaken exactly one site per trial without touching the
    code. *)

type site = {
  name : string;
  kind : C11.Memory_order.op_kind;
  order : C11.Memory_order.t;  (** the correct (published) order *)
}

val site : string -> C11.Memory_order.op_kind -> C11.Memory_order.t -> site

type t

(** The table with every site at its correct order. *)
val default : site list -> t

(** [weakened sites name] is the table with [name] weakened one step
    (seq_cst -> acq_rel -> release/acquire -> relaxed), or [None] when
    the site is already relaxed. *)
val weakened : site list -> string -> t option

(** [downgrades s] is the full weakening chain below [s]'s published
    order, strongest first (e.g. a seq_cst RMW yields
    [acq_rel; release; relaxed]); empty when the site is already relaxed.
    The advisor explores every rung, not just the first. *)
val downgrades : site -> C11.Memory_order.t list

(** [with_order sites name order] pins one site to an arbitrary order. *)
val with_order : site list -> string -> C11.Memory_order.t -> t

(** [with_overrides sites pins] is [sites] with each [(name, order)] pin
    applied — the site-list form, so the result can still be fed to
    {!default} or {!weakened}. Raises [Invalid_argument] on a pin naming
    no site: a silently-dropped typo would check the wrong program. *)
val with_overrides : site list -> (string * C11.Memory_order.t) list -> site list

(** Sites that can be weakened at least one step. *)
val weakenable : site list -> site list

(** The table's (site, order) pairs sorted by site name — the canonical
    form the persistent store fingerprints. *)
val to_list : t -> (string * C11.Memory_order.t) list

(** [get t name] — raises [Invalid_argument] on unknown sites, which
    catches typos in implementations. *)
val get : t -> string -> C11.Memory_order.t
