module P = Mc.Program
module A = Cdsspec.Annotations
open C11.Memory_order

(* Node layout: [next; locked]. *)
let f_next node = node
let f_locked node = node + 1

type t = { tail : P.loc; data : P.loc }

type node = P.loc

let sites =
  [
    Ords.site "lock_init_next" For_store Relaxed;
    Ords.site "lock_init_locked" For_store Relaxed;
    Ords.site "lock_xchg_tail" For_rmw Acq_rel;
    Ords.site "lock_store_prednext" For_store Release;
    Ords.site "lock_spin_locked" For_load Acquire;
    Ords.site "unlock_load_next" For_load Acquire;
    Ords.site "unlock_cas_tail" For_rmw Release;
    Ords.site "unlock_spin_next" For_load Acquire;
    Ords.site "unlock_store_locked" For_store Release;
  ]

let create () =
  let tail = P.malloc 1 in
  let data = P.malloc ~init:0 1 in
  P.store Relaxed tail 0;
  { tail; data }

let make_node () =
  let n = P.malloc 2 in
  P.store Relaxed (f_next n) 0;
  P.store Relaxed (f_locked n) 0;
  n

let o = Ords.get

let lock ords l me =
  A.api_proc ~obj:l.tail ~name:"lock" ~args:[] (fun () ->
      P.store ~site:"lock_init_next" (o ords "lock_init_next") (f_next me) 0;
      P.store ~site:"lock_init_locked" (o ords "lock_init_locked") (f_locked me) 1;
      let pred = P.exchange ~site:"lock_xchg_tail" (o ords "lock_xchg_tail") l.tail me in
      if pred = 0 then A.op_define () (* uncontended: the exchange is the OP *)
      else begin
        P.store ~site:"lock_store_prednext" (o ords "lock_store_prednext") (f_next pred) me;
        let rec spin () =
          let locked = P.load ~site:"lock_spin_locked" (o ords "lock_spin_locked") (f_locked me) in
          A.op_clear_define ();
          if locked = 1 then spin ()
        in
        spin ()
      end)

let unlock ords l me =
  A.api_proc ~obj:l.tail ~name:"unlock" ~args:[] (fun () ->
      let next = P.load ~site:"unlock_load_next" (o ords "unlock_load_next") (f_next me) in
      let release_to next = P.store ~site:"unlock_store_locked" (o ords "unlock_store_locked") (f_locked next) 0 in
      if next = 0 then begin
        if P.cas ~site:"unlock_cas_tail" (o ords "unlock_cas_tail") l.tail ~expected:me ~desired:0
        then A.op_define () (* no successor: the CAS is the OP *)
        else begin
          (* a successor is linking itself in: wait for the pointer *)
          let rec spin () =
            let n = P.load ~site:"unlock_spin_next" (o ords "unlock_spin_next") (f_next me) in
            if n = 0 then spin () else n
          in
          let next = spin () in
          release_to next;
          A.op_define ()
        end
      end
      else begin
        release_to next;
        A.op_define ()
      end)

let spec = Ticket_lock.mutex_spec ~name:"mcs-lock" ~lock_names:[ "lock" ] ~unlock_names:[ "unlock" ] ()

let critical_section (l : t) =
  let v = P.na_load l.data in
  P.na_store l.data (v + 1)

let test_two_threads ords () =
  let l = create () in
  let worker () =
    let me = make_node () in
    lock ords l me;
    critical_section l;
    unlock ords l me
  in
  let t1 = P.spawn worker in
  let t2 = P.spawn worker in
  P.join t1;
  P.join t2

let test_handoff ords () =
  let l = create () in
  let t1 =
    P.spawn (fun () ->
        let me = make_node () in
        lock ords l me;
        critical_section l;
        unlock ords l me;
        let me2 = make_node () in
        lock ords l me2;
        critical_section l;
        unlock ords l me2)
  in
  let t2 =
    P.spawn (fun () ->
        let me = make_node () in
        lock ords l me;
        critical_section l;
        unlock ords l me)
  in
  P.join t1;
  P.join t2

let benchmark =
  Benchmark.make ~name:"MCS Lock" ~spec ~sites
    [ ("two-threads", test_two_threads); ("handoff", test_handoff) ]
