(* The first ten rows mirror the paper's Figure 7; the rest are the
   running example and extensions. *)
let all =
  [
    Chase_lev_deque.benchmark;
    Spsc_queue.benchmark;
    Rcu.benchmark;
    Lockfree_hashtable.benchmark;
    Mcs_lock.benchmark;
    Mpmc_queue.benchmark;
    Ms_queue.benchmark;
    Linux_rwlock.benchmark;
    Seqlock.benchmark;
    Ticket_lock.benchmark;
    Blocking_queue.benchmark;
    Atomic_register.benchmark;
    Contention_free_lock.benchmark;
    Treiber_stack.benchmark;
    Peterson_lock.benchmark;
    Barrier.benchmark;
    Rcu_grace.benchmark;
    Lockfree_set.benchmark;
    Dekker_lock.benchmark;
    Lamport_ring.benchmark;
    Clh_lock.benchmark;
    Lazy_init.benchmark;
    Bounded_queue.benchmark;
    (* fuzz-only oversized workloads: beyond exhaustive reach *)
    Oversized.ms_queue;
    Oversized.treiber_stack;
    Oversized.lockfree_set;
    Oversized.spsc_queue;
    Oversized.bounded_queue;
  ]

let find name = List.find_opt (fun (b : Benchmark.t) -> b.name = name) all

(* The registry minus the fuzz-only oversized workloads: every entry
   here can be explored exhaustively under its scheduler bounds, which
   is what the lint/advisor pass and the CI lint job iterate over. *)
let exhaustive =
  let oversized = List.map (fun (b : Benchmark.t) -> b.name) (Oversized.all ()) in
  List.filter (fun (b : Benchmark.t) -> not (List.mem b.name oversized)) all

let sites (b : Benchmark.t) = b.sites

(* Levenshtein distance, the plain O(n*m) two-row version — names are
   short and the registry has a few dozen entries, so this runs in
   microseconds on the error path only. *)
let edit_distance a b =
  let n = String.length a and m = String.length b in
  if n = 0 then m
  else if m = 0 then n
  else begin
    let prev = Array.init (m + 1) (fun j -> j) in
    let curr = Array.make (m + 1) 0 in
    for i = 1 to n do
      curr.(0) <- i;
      for j = 1 to m do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let suggest name =
  let lower = String.lowercase_ascii name in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    nn > 0 && nh >= nn
    && (let found = ref false in
        for i = 0 to nh - nn do
          if (not !found) && String.sub hay i nn = needle then found := true
        done;
        !found)
  in
  let scored =
    List.filter_map
      (fun (b : Benchmark.t) ->
        let cand = String.lowercase_ascii b.name in
        (* substring matches outrank edit-distance matches: "queue"
           should offer every queue, not whatever is 3 edits away *)
        if contains cand lower || contains lower cand then Some (0, b.name)
        else
          let d = edit_distance lower cand in
          if d <= 3 then Some (d, b.name) else None)
      all
  in
  List.sort compare scored |> List.map snd |> fun l ->
  List.filteri (fun i _ -> i < 3) l

let advisor_coverage (b : Benchmark.t) =
  (List.length (Ords.weakenable b.sites), List.length b.sites)
