(* The first ten rows mirror the paper's Figure 7; the rest are the
   running example and extensions. *)
let all =
  [
    Chase_lev_deque.benchmark;
    Spsc_queue.benchmark;
    Rcu.benchmark;
    Lockfree_hashtable.benchmark;
    Mcs_lock.benchmark;
    Mpmc_queue.benchmark;
    Ms_queue.benchmark;
    Linux_rwlock.benchmark;
    Seqlock.benchmark;
    Ticket_lock.benchmark;
    Blocking_queue.benchmark;
    Atomic_register.benchmark;
    Contention_free_lock.benchmark;
    Treiber_stack.benchmark;
    Peterson_lock.benchmark;
    Barrier.benchmark;
    Rcu_grace.benchmark;
    Lockfree_set.benchmark;
    Dekker_lock.benchmark;
    Lamport_ring.benchmark;
    Clh_lock.benchmark;
    Lazy_init.benchmark;
    (* fuzz-only oversized workloads: beyond exhaustive reach *)
    Oversized.ms_queue;
    Oversized.treiber_stack;
    Oversized.lockfree_set;
    Oversized.spsc_queue;
  ]

let find name = List.find_opt (fun (b : Benchmark.t) -> b.name = name) all

(* The registry minus the fuzz-only oversized workloads: every entry
   here can be explored exhaustively under its scheduler bounds, which
   is what the lint/advisor pass and the CI lint job iterate over. *)
let exhaustive =
  let oversized = List.map (fun (b : Benchmark.t) -> b.name) (Oversized.all ()) in
  List.filter (fun (b : Benchmark.t) -> not (List.mem b.name oversized)) all

let sites (b : Benchmark.t) = b.sites

let advisor_coverage (b : Benchmark.t) =
  (List.length (Ords.weakenable b.sites), List.length b.sites)
