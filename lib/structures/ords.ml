module Mo = C11.Memory_order

type site = {
  name : string;
  kind : Mo.op_kind;
  order : Mo.t;
}

let site name kind order =
  assert (Mo.valid_for kind order);
  { name; kind; order }

type t = (string, Mo.t) Hashtbl.t

let table assoc =
  let t = Hashtbl.create 16 in
  List.iter (fun (name, order) -> Hashtbl.replace t name order) assoc;
  t

let default sites = table (List.map (fun s -> (s.name, s.order)) sites)

let weakened sites name =
  match List.find_opt (fun s -> s.name = name) sites with
  | None -> invalid_arg ("Ords.weakened: unknown site " ^ name)
  | Some s -> (
    match Mo.weaken s.kind s.order with
    | None -> None
    | Some weaker ->
      Some (table (List.map (fun s -> (s.name, if s.name = name then weaker else s.order)) sites)))

let downgrades (s : site) =
  let rec chain o acc =
    match Mo.weaken s.kind o with
    | None -> List.rev acc
    | Some w -> chain w (w :: acc)
  in
  chain s.order []

let with_order sites name order =
  if not (List.exists (fun s -> s.name = name) sites) then
    invalid_arg ("Ords.with_order: unknown site " ^ name);
  table (List.map (fun s -> (s.name, if s.name = name then order else s.order)) sites)

let with_overrides sites overrides =
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun s -> s.name = name) sites) then
        invalid_arg ("Ords.with_overrides: unknown site " ^ name))
    overrides;
  List.map
    (fun s ->
      match List.assoc_opt s.name overrides with
      | Some order -> { s with order }
      | None -> s)
    sites

let weakenable sites = List.filter (fun s -> Mo.weaken s.kind s.order <> None) sites

let to_list t =
  Hashtbl.fold (fun name order acc -> (name, order) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let get t name =
  match Hashtbl.find_opt t name with
  | Some o -> o
  | None -> invalid_arg ("Ords.get: unknown site " ^ name)
