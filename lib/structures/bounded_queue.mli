(** Bounded lock-free MPMC queue in the style of Saturn's
    [Bounded_queue]: a Michael–Scott linked list whose nodes carry a
    monotonic position counter, so the capacity check is the position
    distance between the tail and head nodes — no shared size counter.
    Push has try-semantics ("full" may be reported spuriously when a
    concurrent pop's progress is not yet visible; the spec justifies it
    against a prefix already holding [capacity] items, like the Lamport
    ring); pop is the plain M&S dequeue. *)

type t

(** [create capacity] — an empty queue refusing pushes beyond
    [capacity] pending items. *)
val create : int -> t

(** [push] returns false when the queue is full. *)
val push : Ords.t -> t -> int -> bool

(** The popped value, or -1 when the queue appears empty. *)
val pop : Ords.t -> t -> int

val sites : Ords.site list

(** Each seeded bug individually (site name and the weakened table):
    the same AutoMO-style weakenings as the unbounded M&S queue. *)
val known_bugs : (string * Ords.t) list

val spec : Cdsspec.Spec.packed
val benchmark : Benchmark.t
