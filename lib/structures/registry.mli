(** All benchmarks, in the paper's Figure 7 row order where applicable. *)

val all : Benchmark.t list

val find : string -> Benchmark.t option

(** [all] minus the fuzz-only oversized workloads: the benchmarks whose
    unit tests can be explored exhaustively. The lint pass and the CI
    lint job iterate over these. *)
val exhaustive : Benchmark.t list

(** Uniform access to a benchmark's injectable site table. *)
val sites : Benchmark.t -> Ords.site list

(** [advisor_coverage b] is [(weakenable, total)] — how many of [b]'s
    sites the weakening advisor can act on, out of how many declared
    sites. [cdsspec_run list] surfaces this as advisor applicability. *)
val advisor_coverage : Benchmark.t -> int * int
