(** All benchmarks, in the paper's Figure 7 row order where applicable. *)

val all : Benchmark.t list

val find : string -> Benchmark.t option

(** [all] minus the fuzz-only oversized workloads: the benchmarks whose
    unit tests can be explored exhaustively. The lint pass and the CI
    lint job iterate over these. *)
val exhaustive : Benchmark.t list

(** Uniform access to a benchmark's injectable site table. *)
val sites : Benchmark.t -> Ords.site list

(** [suggest name] is up to three registered benchmark names close to
    [name] — case-insensitive substring matches first, then names within
    Levenshtein distance 3 — for the "unknown structure" error paths of
    [cdsspec_run check] and the serve daemon. Empty when nothing is
    plausibly close. *)
val suggest : string -> string list

(** [advisor_coverage b] is [(weakenable, total)] — how many of [b]'s
    sites the weakening advisor can act on, out of how many declared
    sites. [cdsspec_run list] surfaces this as advisor applicability. *)
val advisor_coverage : Benchmark.t -> int * int
