(** Fuzz-only workloads: the same structures as the paper's benchmarks,
    driven by more threads and more calls per thread than exhaustive
    exploration can cover (the unit tests elsewhere stay at the paper's
    ≤3 threads / ≤5 calls scale). Exhaustively exploring any of these
    would take billions of runs; the randomized engine samples them
    instead. They are registered like any benchmark, so
    [cdsspec_run check --fuzz] and the bench harness pick them up — but
    exhaustive [check] on them will only ever cover a truncated slice. *)

val ms_queue : Benchmark.t

val treiber_stack : Benchmark.t

val lockfree_set : Benchmark.t

val spsc_queue : Benchmark.t

val bounded_queue : Benchmark.t

(** All oversized workloads, registry order. *)
val all : unit -> Benchmark.t list
