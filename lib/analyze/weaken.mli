(** The counterexample-guided weakening advisor (paper section 6.4.2,
    inverted): instead of injecting bugs to measure detection, weaken
    each site the table allows, re-explore the whole workload under the
    downgraded table, and classify the result.

    For each {!Structures.Ords.weakenable} site the advisor walks the
    full {!Structures.Ords.downgrades} chain (e.g. seq_cst -> acq_rel ->
    release -> relaxed for an RMW). Every rung is re-explored with the
    spec checker attached and its behaviour-fingerprint set compared to
    the baseline collected by {!Access_summary}:

    - [Safe_to_weaken] — the spec still passes and the (memory-order
      insensitive) fingerprint set is unchanged: the workload cannot tell
      the orders apart.
    - [Behaviour_changing] — the spec still passes but new fingerprints
      appeared (or baseline ones vanished): the weaker order admits
      observable reorderings the spec happens to tolerate.
    - [Spec_violating] — the checker or a built-in check fired; the
      verdict carries the bug key and, when the bounded witness search
      succeeds, a decision trace replayable with
      [cdsspec_run check <bench> --replay TRACE] (the search re-runs the
      scheduler with sleep sets off, matching replay semantics).

    Each first-rung verdict is cross-checked against {!Lint}'s
    prediction for the site ([agrees_with_lint]). *)

type config = {
  max_executions : int option;
      (** per unit test per candidate; use the same cap as the baseline
          {!Access_summary.collect} or the fingerprint diff is noise *)
  jobs : int;  (** [> 1] re-explores candidates with {!Mc.Parallel} *)
  checker : Cdsspec.Checker.config;
  witness_max_runs : int;  (** bound on the serial witness search *)
  time_budget : float option;
      (** wall-clock budget; remaining candidates are skipped and the
          report marked truncated *)
  store : Store.t option;
      (** persistent cross-run store: each candidate's per-test behaviour
          sweep is recalled instead of re-explored when an identical
          sweep (same bench, ords table, caps, checker config, engine
          revision) completed cleanly before. Verdicts are unchanged —
          the behaviour sets diffed downstream are the stored ones.
          Buggy or truncated sweeps are never stored, so those
          candidates always re-explore (the witness search needs the
          live run anyway). *)
}

val default_config : config

type verdict =
  | Safe_to_weaken
  | Behaviour_changing of { new_behaviours : int; lost_behaviours : int }
  | Spec_violating of { bug : string; witness : string option; witness_test : string option }

type candidate = {
  site : string;
  from_order : C11.Memory_order.t;  (** the published order *)
  to_order : C11.Memory_order.t;  (** this rung of the downgrade chain *)
  verdict : verdict;
  explored : int;  (** executions spent on this candidate *)
  time : float;
  lint_predicted : bool;  (** lint advice said the site is over-synchronized *)
  agrees_with_lint : bool option;
      (** first rung only: prediction matched [Safe_to_weaken]? *)
  witness_exec : C11.Execution.t option;
      (** the witness execution graph, for {!C11.Dot} rendering *)
}

type report = {
  bench : string;
  baseline_behaviours : int;
  candidates : candidate list;
  truncated : bool;
  time : float;
}

val verdict_to_string : verdict -> string

(** [advise b ~summary] runs the advisor against the baseline in
    [summary] (which must come from the same caps for a meaningful
    diff). [only_sites] restricts the candidate set; [findings] supplies
    the lint report for cross-checking. When the baseline itself is
    buggy every comparison is meaningless, so the report carries no
    candidates. *)
val advise :
  ?config:config ->
  ?only_sites:string list ->
  ?findings:Lint.finding list ->
  Structures.Benchmark.t ->
  summary:Access_summary.t ->
  report
