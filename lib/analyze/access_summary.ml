module Mo = C11.Memory_order
module Act = C11.Action
module Exec = C11.Execution
module Clock = C11.Clock
module Ords = Structures.Ords
module B = Structures.Benchmark

type config = {
  max_executions : int option;
  time_budget : float option;
  jobs : int;
  checker : Cdsspec.Checker.config;
}

let default_config =
  {
    max_executions = Some 200_000;
    time_budget = None;
    jobs = 1;
    checker = Cdsspec.Checker.default_config;
  }

type site_summary = {
  site : Ords.site;
  occurrences : int;
  executions : int;
  release_writes : int;
  sw_edges : int;
  sw_carried : int;
  acquire_reads : int;
  acquire_gained : int;
  sc_ops : int;
  sc_constrained : int;
  cross_thread_reads : int;
  relaxed_published : int;
  access_tids : int;
  single_thread : bool;
  sample_exec : string option;
  publish_evidence : (string * (int * int)) option;
}

type method_summary = { method_name : string; calls : int; calls_with_op : int }
type rule_summary = { rule_first : string; rule_second : string; exercised : int }

(* ---- behaviour fingerprints (memory-order-insensitive) ---- *)

type behaviour_set = (int64, unit) Hashtbl.t

let behaviour_cardinal = Hashtbl.length

let behaviour_diff ~baseline ~candidate =
  let missing_from tbl other =
    Hashtbl.fold (fun k () acc -> if Hashtbl.mem other k then acc else acc + 1) tbl 0
  in
  (missing_from candidate baseline, missing_from baseline candidate)

let kind_tag : Act.kind -> int = function
  | Load -> 0
  | Store -> 1
  | Rmw -> 2
  | Na_load -> 3
  | Na_store -> 4
  | Fence -> 5
  | Create _ -> 6
  | Start -> 7
  | Join _ -> 8
  | Finish -> 9

let kind_payload : Act.kind -> int = function
  | Create t | Join t -> t
  | Load | Store | Rmw | Na_load | Na_store | Fence | Start | Finish -> 0

(* FNV-1a like Fuzz.Fingerprint.execution, but deliberately skipping the
   mo field: weakening one site rewrites the order of every action it
   emits, and the advisor must recognize the otherwise-identical
   execution as the same behaviour. Commit order (= mo and the SC order)
   is still part of the hash via iteration order. *)
let prime = 0x100000001B3L
let offset = 0xCBF29CE484222325L
let fnv h v = Int64.mul (Int64.logxor h (Int64.of_int v)) prime
let fnv_opt h = function None -> fnv h (-1) | Some v -> fnv (fnv h 1) v

let behaviour_set_create () : behaviour_set = Hashtbl.create 256

let behaviour_elements (set : behaviour_set) =
  List.sort Int64.compare (Hashtbl.fold (fun k () acc -> k :: acc) set [])

let behaviour_set_of_list l : behaviour_set =
  let set = Hashtbl.create (max 16 (List.length l)) in
  List.iter (fun fp -> Hashtbl.replace set fp ()) l;
  set

let behaviour_fingerprint exec =
  let h = ref offset in
  for i = 0 to Exec.num_actions exec - 1 do
    let a = Exec.action exec i in
    h := fnv !h a.tid;
    h := fnv !h (kind_tag a.kind);
    h := fnv !h (kind_payload a.kind);
    h := fnv !h a.loc;
    h := fnv_opt !h a.read_value;
    h := fnv_opt !h a.written_value;
    h := fnv_opt !h a.rf
  done;
  !h

let behaviour_add set exec = Hashtbl.replace set (behaviour_fingerprint exec) ()

(* ---- mutable accumulators ---- *)

type site_acc = {
  s : Ords.site;
  mutable a_occurrences : int;
  mutable a_executions : int;
  mutable a_release_writes : int;
  mutable a_sw_edges : int;
  mutable a_sw_carried : int;
  mutable a_acquire_reads : int;
  mutable a_acquire_gained : int;
  mutable a_sc_ops : int;
  mutable a_sc_constrained : int;
  mutable a_cross_thread_reads : int;
  mutable a_relaxed_published : int;
  mutable a_concurrent : bool;
  tids : (int, unit) Hashtbl.t;
  mutable a_sample_exec : string option;
  mutable a_publish_evidence : (string * (int * int)) option;
}

let fresh_acc s =
  {
    s;
    a_occurrences = 0;
    a_executions = 0;
    a_release_writes = 0;
    a_sw_edges = 0;
    a_sw_carried = 0;
    a_acquire_reads = 0;
    a_acquire_gained = 0;
    a_sc_ops = 0;
    a_sc_constrained = 0;
    a_cross_thread_reads = 0;
    a_relaxed_published = 0;
    a_concurrent = false;
    tids = Hashtbl.create 4;
    a_sample_exec = None;
    a_publish_evidence = None;
  }

type method_acc = { mutable m_calls : int; mutable m_with_op : int }
type rule_acc = { r_first : string; r_second : string; mutable r_hits : int }

type t = {
  bench : string;
  sites : site_summary list;
  methods : method_summary list;
  rules : rule_summary list;
  test_behaviours : (string * behaviour_set) list;
  bugs : Mc.Bug.t list;
  races : (string option * string option) list;
  explored : int;
  feasible : int;
  buggy : int;
  truncated : bool;
  time : float;
}

let is_memory_access (a : Act.t) =
  a.loc <> Act.no_loc
  && (Act.is_atomic_read a || Act.is_atomic_write a || Act.is_non_atomic a)

let sc_eligible (a : Act.t) =
  Act.is_seq_cst a && (Act.is_atomic_read a || Act.is_atomic_write a || Act.is_fence a)

(* A "mattering" SC pairing for [a]: a concurrent (hb-unordered,
   other-thread) seq_cst op on the same location — or either a fence —
   with at least one of the two a write or fence, so the SC total order
   actually restricted what either side could do. *)
let sc_constrained_by sc (a : Act.t) =
  List.exists
    (fun (b : Act.t) ->
      b.id <> a.id && b.tid <> a.tid
      && (Act.is_fence a || Act.is_fence b || (a.loc <> Act.no_loc && a.loc = b.loc))
      && (Act.is_atomic_write a || Act.is_fence a || Act.is_atomic_write b || Act.is_fence b)
      && (not (Act.happens_before a b))
      && not (Act.happens_before b a))
    sc

(* Conflicting cross-thread pair left hb-unordered: two accesses to the
   same location from different threads, at least one a write, neither
   ordered before the other. When a site's locations never exhibit one
   across all feasible executions, its atomicity is carried by other
   synchronization (single_thread in the summary). *)
let has_concurrent_conflict accesses =
  let arr = Array.of_list accesses in
  let n = Array.length arr in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not !found then begin
        let a : Act.t = arr.(i) and b : Act.t = arr.(j) in
        if
          a.tid <> b.tid
          && (Act.is_write a || Act.is_write b)
          && (not (Act.happens_before a b))
          && not (Act.happens_before b a)
        then found := true
      end
    done
  done;
  !found

let collect ?(config = default_config) ?ords (b : B.t) =
  let ords = match ords with Some o -> o | None -> Ords.default b.sites in
  let t0 = Mc.Monotonic.now () in
  let deadline = Option.map (fun s -> t0 +. s) config.time_budget in
  let site_accs : (string, site_acc) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (s : Ords.site) -> Hashtbl.replace site_accs s.name (fresh_acc s)) b.sites;
  let method_accs : (string, method_acc) Hashtbl.t = Hashtbl.create 16 in
  let method_order = ref [] in
  let add_method name =
    if not (Hashtbl.mem method_accs name) then begin
      Hashtbl.add method_accs name { m_calls = 0; m_with_op = 0 };
      method_order := name :: !method_order
    end
  in
  let rule_accs =
    match b.spec with
    | Cdsspec.Spec.Packed sp ->
      List.iter (fun (name, _) -> add_method name) sp.methods;
      List.map
        (fun (r : Cdsspec.Spec.admissibility_rule) ->
          { r_first = r.first; r_second = r.second; r_hits = 0 })
        sp.admissibility
  in

  (* Fold one feasible execution into the fact tables. Called under the
     collector mutex (Parallel runs on_feasible concurrently). *)
  let process exec annots =
    let n = Exec.num_actions exec in
    let exec_pp = lazy (Fmt.str "%a" Exec.pp exec) in
    let bases = Array.make (max n 1) Clock.empty in
    let prev : (int, Clock.t) Hashtbl.t = Hashtbl.create 8 in
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let loc_accesses : (int, Act.t list ref) Hashtbl.t = Hashtbl.create 32 in
    let loc_sites : (int, string list ref) Hashtbl.t = Hashtbl.create 32 in
    let sc = ref [] in
    (* pass 1: program-order base clocks, occurrence-side facts *)
    for id = 0 to n - 1 do
      let a = Exec.action exec id in
      let base =
        match Hashtbl.find_opt prev a.tid with
        | Some c -> Clock.set c a.tid a.seq
        | None -> Clock.set Clock.empty a.tid a.seq
      in
      bases.(id) <- base;
      Hashtbl.replace prev a.tid a.clock;
      if sc_eligible a then sc := a :: !sc;
      if is_memory_access a then begin
        let l =
          match Hashtbl.find_opt loc_accesses a.loc with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add loc_accesses a.loc l;
            l
        in
        l := a :: !l
      end;
      match a.site with
      | Some name -> (
        match Hashtbl.find_opt site_accs name with
        | None -> ()
        | Some acc ->
          acc.a_occurrences <- acc.a_occurrences + 1;
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.add seen name ();
            acc.a_executions <- acc.a_executions + 1
          end;
          if acc.a_sample_exec = None then acc.a_sample_exec <- Some (Lazy.force exec_pp);
          if a.loc <> Act.no_loc then begin
            let ls =
              match Hashtbl.find_opt loc_sites a.loc with
              | Some ls -> ls
              | None ->
                let ls = ref [] in
                Hashtbl.add loc_sites a.loc ls;
                ls
            in
            if not (List.mem name !ls) then ls := name :: !ls
          end;
          if Act.is_atomic_write a && Mo.is_release a.mo then
            acc.a_release_writes <- acc.a_release_writes + 1;
          if Act.is_atomic_read a && Mo.is_acquire a.mo then begin
            acc.a_acquire_reads <- acc.a_acquire_reads + 1;
            if not (Clock.leq a.clock base) then acc.a_acquire_gained <- acc.a_acquire_gained + 1
          end)
      | None -> ()
    done;
    (* pass 2: reader-attributed facts (publication, sw), SC pairings *)
    for id = 0 to n - 1 do
      let a = Exec.action exec id in
      (if Act.is_atomic_read a then
         match a.rf with
         | Some wid -> (
           let w = Exec.action exec wid in
           match w.site with
           | Some ws -> (
             match Hashtbl.find_opt site_accs ws with
             | None -> ()
             | Some accw ->
               if a.tid <> w.tid && Act.is_atomic_write w then begin
                 accw.a_cross_thread_reads <- accw.a_cross_thread_reads + 1;
                 if not (Mo.is_release w.mo) then begin
                   accw.a_relaxed_published <- accw.a_relaxed_published + 1;
                   if accw.a_publish_evidence = None then
                     accw.a_publish_evidence <- Some (Fmt.str "%a" Exec.pp exec, (w.id, a.id))
                 end
               end;
               if Mo.is_acquire a.mo then
                 match w.release_clock with
                 | Some rc ->
                   accw.a_sw_edges <- accw.a_sw_edges + 1;
                   if not (Clock.leq rc bases.(id)) then accw.a_sw_carried <- accw.a_sw_carried + 1
                 | None -> ())
           | None -> ())
         | None -> ());
      match a.site with
      | Some name when sc_eligible a -> (
        match Hashtbl.find_opt site_accs name with
        | None -> ()
        | Some acc ->
          acc.a_sc_ops <- acc.a_sc_ops + 1;
          if sc_constrained_by !sc a then acc.a_sc_constrained <- acc.a_sc_constrained + 1)
      | _ -> ()
    done;
    (* location-level concurrency, attributed to the sites on the loc *)
    Hashtbl.iter
      (fun loc sites ->
        match Hashtbl.find_opt loc_accesses loc with
        | None -> ()
        | Some accesses ->
          let conflict = lazy (has_concurrent_conflict !accesses) in
          List.iter
            (fun name ->
              match Hashtbl.find_opt site_accs name with
              | None -> ()
              | Some acc ->
                List.iter (fun (a : Act.t) -> Hashtbl.replace acc.tids a.tid ()) !accesses;
                if (not acc.a_concurrent) && Lazy.force conflict then acc.a_concurrent <- true)
            !sites)
      loc_sites;
    (* method-call level: calls, ordering points, admissibility firing *)
    let calls = Cdsspec.History.calls_of_annots exec annots in
    List.iter
      (fun (c : Cdsspec.Call.t) ->
        add_method c.name;
        let m = Hashtbl.find method_accs c.name in
        m.m_calls <- m.m_calls + 1;
        if c.ordering_points <> [] then m.m_with_op <- m.m_with_op + 1)
      calls;
    if rule_accs <> [] && calls <> [] then begin
      let rel = Cdsspec.History.ordering_relation exec calls in
      let pairs = Cdsspec.History.unordered_pairs rel calls in
      List.iter
        (fun ra ->
          let matches (x : Cdsspec.Call.t) (y : Cdsspec.Call.t) =
            (x.name = ra.r_first && y.name = ra.r_second)
            || (x.name = ra.r_second && y.name = ra.r_first)
          in
          if List.exists (fun (x, y) -> matches x y) pairs then ra.r_hits <- ra.r_hits + 1)
        rule_accs
    end
  in

  let mu = Mutex.create () in
  let explored = ref 0 and feasible = ref 0 and buggy = ref 0 in
  let truncated = ref false in
  let bug_keys : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let bugs_rev = ref [] in
  let behaviours_rev = ref [] in
  List.iter
    (fun (t : B.test) ->
      let expired =
        match deadline with Some d -> Mc.Monotonic.now () > d | None -> false
      in
      if expired then truncated := true
      else begin
        let bset : behaviour_set = Hashtbl.create 256 in
        let on_feasible exec annots =
          let protect f = Mutex.protect mu f in
          protect (fun () ->
              process exec annots;
              Hashtbl.replace bset (behaviour_fingerprint exec) ());
          Cdsspec.Checker.hook ~config:config.checker b.spec exec annots
        in
        let econfig =
          {
            Mc.Explorer.default_config with
            scheduler = b.scheduler;
            max_executions = config.max_executions;
            (* Fact counts are per-execution occurrence counts: pruning
               would make them depend on the subtree-cut pattern instead
               of the interleaving set the summary documents. *)
            prune = false;
          }
        in
        let r =
          if config.jobs > 1 then
            Mc.Parallel.explore ~config:econfig ~on_feasible ~jobs:config.jobs (t.program ords)
          else begin
            let stop = Option.map (fun d () -> Mc.Monotonic.now () > d) deadline in
            Mc.Explorer.explore_subtree ?stop ~config:econfig ~on_feasible
              ~trace:(C11.Vec.create ()) ~frozen:0 (t.program ords)
          end
        in
        explored := !explored + r.stats.explored;
        feasible := !feasible + r.stats.feasible;
        buggy := !buggy + r.stats.buggy;
        if r.stats.truncated then truncated := true;
        List.iter
          (fun bug ->
            let k = Mc.Bug.key bug in
            if not (Hashtbl.mem bug_keys k) then begin
              Hashtbl.add bug_keys k ();
              bugs_rev := bug :: !bugs_rev
            end)
          r.bugs;
        behaviours_rev := (t.test_name, bset) :: !behaviours_rev
      end)
    b.tests;
  let bugs = List.rev !bugs_rev in
  let races =
    List.filter_map
      (function
        | Mc.Bug.Data_race { first; second } -> Some (first.Act.site, second.Act.site)
        | _ -> None)
      bugs
  in
  let finalize (acc : site_acc) =
    {
      site = acc.s;
      occurrences = acc.a_occurrences;
      executions = acc.a_executions;
      release_writes = acc.a_release_writes;
      sw_edges = acc.a_sw_edges;
      sw_carried = acc.a_sw_carried;
      acquire_reads = acc.a_acquire_reads;
      acquire_gained = acc.a_acquire_gained;
      sc_ops = acc.a_sc_ops;
      sc_constrained = acc.a_sc_constrained;
      cross_thread_reads = acc.a_cross_thread_reads;
      relaxed_published = acc.a_relaxed_published;
      access_tids = Hashtbl.length acc.tids;
      single_thread = acc.a_occurrences > 0 && not acc.a_concurrent;
      sample_exec = acc.a_sample_exec;
      publish_evidence = acc.a_publish_evidence;
    }
  in
  {
    bench = b.name;
    sites = List.map (fun (s : Ords.site) -> finalize (Hashtbl.find site_accs s.name)) b.sites;
    methods =
      List.rev_map
        (fun name ->
          let m = Hashtbl.find method_accs name in
          { method_name = name; calls = m.m_calls; calls_with_op = m.m_with_op })
        !method_order;
    rules =
      List.map
        (fun ra -> { rule_first = ra.r_first; rule_second = ra.r_second; exercised = ra.r_hits })
        rule_accs;
    test_behaviours = List.rev !behaviours_rev;
    bugs;
    races;
    explored = !explored;
    feasible = !feasible;
    buggy = !buggy;
    truncated = !truncated;
    time = Mc.Monotonic.now () -. t0;
  }
