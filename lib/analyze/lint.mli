(** The rule engine over {!Access_summary} fact bases: each rule turns an
    aggregate dynamic fact ("this release store's sw edges never carried
    an hb obligation") into a structured finding with a stable rule id,
    a severity, the site concerned and a pretty-printed evidence
    execution where one exists.

    Severities: [Error] findings (a spec/builtin violation under the
    published orders) fail CI; [Warning]s flag suspicious publication
    patterns; [Advice] marks sites whose declared order looks stronger
    than the workload needs — exactly the candidates the {!Weaken}
    advisor re-explores; [Info] is housekeeping (dead sites, unexercised
    spec clauses). *)

type severity = Info | Advice | Warning | Error

val severity_to_string : severity -> string
val severity_rank : severity -> int

type finding = {
  rule : string;
  severity : severity;
  site : string option;  (** None for spec-level findings *)
  message : string;
  evidence : string option;  (** pretty-printed evidence execution *)
}

(** All rules, in deterministic order: baseline violations, then per-site
    rules in site-declaration order, then spec lints. *)
val lint : Access_summary.t -> finding list

(** Does some advice-class finding predict that [site] can be weakened?
    The advisor cross-checks its verdicts against this. *)
val predicts_weakenable : finding list -> string -> bool

(** Highest severity present, [None] on a clean report. *)
val max_severity : finding list -> severity option
