(** Per-site dynamic facts aggregated across all feasible executions of a
    benchmark's unit tests: the fact base the {!Lint} rules and the
    {!Weaken} advisor consume.

    The collector re-runs each unit test under the exhaustive explorer
    (or {!Mc.Parallel} when [jobs > 1]) with an [on_feasible] hook that
    walks every complete, builtin-bug-free execution graph and folds its
    edges into per-site counters. Racy or otherwise buggy executions
    never reach the hook; their reports surface through [bugs]/[races]
    instead, which the lint turns into an error-severity finding. *)

type config = {
  max_executions : int option;  (** per unit test; [None] exhausts *)
  time_budget : float option;
      (** overall wall-clock budget for the whole collection; checked
          between tests (and per run when [jobs = 1]) *)
  jobs : int;  (** [> 1] explores each test with {!Mc.Parallel} *)
  checker : Cdsspec.Checker.config;
}

val default_config : config

(** Facts about one declared [Ords] site, summed over every feasible
    execution of every unit test. *)
type site_summary = {
  site : Structures.Ords.site;
  occurrences : int;  (** committed actions carrying this site label *)
  executions : int;  (** feasible executions in which the site appears *)
  release_writes : int;  (** occurrences that were release-or-stronger writes *)
  sw_edges : int;
      (** synchronizes-with edges whose writer is this site (an acquire
          read observed a release sequence this write heads or extends) *)
  sw_carried : int;
      (** sw edges that carried a happens-before obligation the reader
          did not already have from program order *)
  acquire_reads : int;  (** occurrences that were acquire-or-stronger reads *)
  acquire_gained : int;
      (** acquire reads that actually learned something new (the read's
          clock strictly exceeds its program-order base) *)
  sc_ops : int;  (** occurrences that were seq_cst atomics or fences *)
  sc_constrained : int;
      (** sc ops with a concurrent (hb-unordered, other-thread) seq_cst
          partner on the same location — at least one of the pair a write
          or fence — i.e. the SC total order actually constrained them *)
  cross_thread_reads : int;
      (** times another thread read a value this site wrote *)
  relaxed_published : int;
      (** cross-thread reads of this site's writes where the write was
          weaker than release: the value crossed threads with no sw edge *)
  access_tids : int;
      (** distinct threads that ever touched a location this site
          touches (any access kind, sited or not) *)
  single_thread : bool;
      (** the site executed, and no location it touches ever saw a
          conflicting cross-thread access pair left hb-unordered: the
          atomic is protected by other synchronization (or by being
          genuinely single-threaded) in every explored execution *)
  sample_exec : string option;
      (** pretty-printed first execution containing the site *)
  publish_evidence : (string * (int * int)) option;
      (** for [relaxed_published]: the evidence execution and the
          [(writer_id, reader_id)] edge within it *)
}

type method_summary = {
  method_name : string;
  calls : int;
  calls_with_op : int;  (** calls that recorded at least one ordering point *)
}

type rule_summary = {
  rule_first : string;
  rule_second : string;
  exercised : int;
      (** executions in which some hb/sc-unordered call pair matched the
          admissibility rule, i.e. its guard was actually consulted *)
}

(** A set of execution fingerprints that deliberately ignores memory
    orders: weakening one site rewrites the [mo] field of every action it
    emits, so the advisor's behaviour comparison must hash everything
    *except* orders (thread, kind, location, values, reads-from, commit
    order) or every candidate would trivially count as new behaviour. *)
type behaviour_set

val behaviour_set_create : unit -> behaviour_set

(** Record one execution's fingerprint (idempotent). *)
val behaviour_add : behaviour_set -> C11.Execution.t -> unit

val behaviour_cardinal : behaviour_set -> int

(** [(fresh, lost)] counts relative to [baseline]. *)
val behaviour_diff : baseline:behaviour_set -> candidate:behaviour_set -> int * int

(** Sorted fingerprint list — the serializable form the persistent
    cross-run store saves advisor behaviour sets in. *)
val behaviour_elements : behaviour_set -> int64 list

(** Inverse of {!behaviour_elements} (duplicates collapse). *)
val behaviour_set_of_list : int64 list -> behaviour_set

val behaviour_fingerprint : C11.Execution.t -> int64

type t = {
  bench : string;
  sites : site_summary list;  (** in declaration order *)
  methods : method_summary list;
  rules : rule_summary list;
  test_behaviours : (string * behaviour_set) list;
      (** per unit test, in declaration order — the advisor's baseline *)
  bugs : Mc.Bug.t list;  (** deduplicated, discovery order *)
  races : (string option * string option) list;
      (** sites of the racing action pairs behind any data-race bugs *)
  explored : int;
  feasible : int;
  buggy : int;
  truncated : bool;
  time : float;
}

(** [collect b] explores [b]'s unit tests under [ords] (default: the
    published table) and aggregates the fact base. Deterministic for
    [jobs = 1] with no budget. *)
val collect :
  ?config:config -> ?ords:Structures.Ords.t -> Structures.Benchmark.t -> t
