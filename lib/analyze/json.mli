(** Minimal JSON document builder for the lint report's machine-readable
    output and the serve daemon's wire protocol. Hand-rolled (like the
    bench JSON emitters) so the repo stays dependency-free; both
    printers are deterministic, which lets the test suite pin schemas
    byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Pretty-printed with two-space indentation and a trailing newline. *)
val to_string : t -> string

(** Compact single-line form with no trailing newline — the serve
    protocol's NDJSON framing (strings escape embedded newlines, so the
    output never contains one). *)
val to_line : t -> string

(** Parse one JSON value; accepts what either printer emits plus
    insignificant whitespace, rejects trailing garbage. Numbers
    containing '.', 'e' or 'E' parse as [Float], others as [Int].
    Errors carry a byte offset. *)
val of_string : string -> (t, string) result

(** [member k j] is field [k] of object [j]; [None] on missing field or
    non-object. *)
val member : string -> t -> t option

val to_str : t -> string option
val to_int : t -> int option
