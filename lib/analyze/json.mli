(** Minimal JSON document builder for the lint report's machine-readable
    output. Hand-rolled (like the bench JSON emitters) so the repo stays
    dependency-free; the printer is deterministic, which lets the test
    suite pin the schema byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Pretty-printed with two-space indentation and a trailing newline. *)
val to_string : t -> string
