type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf depth j =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (depth + 1);
        emit buf (depth + 1) item)
      items;
    Buffer.add_char buf '\n';
    pad depth;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (depth + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        emit buf (depth + 1) v)
      fields;
    Buffer.add_char buf '\n';
    pad depth;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Compact one-line form — the serve protocol's NDJSON framing: one
   message per line, so the value itself must never contain a newline
   (escape handles any embedded in strings). *)
let rec emit_line buf j =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit_line buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        emit_line buf v)
      fields;
    Buffer.add_char buf '}'

let to_line j =
  let buf = Buffer.create 256 in
  emit_line buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

(* Recursive-descent over a cursor. Accepts exactly what the two
   printers emit plus insignificant whitespace; numbers with a '.', 'e'
   or 'E' parse as Float, everything else as Int. Errors carry the byte
   offset — enough to debug a protocol trace. *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let parse_literal cur word v =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    v
  end
  else fail cur (Printf.sprintf "expected '%s'" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some '"' -> Buffer.add_char buf '"'; advance cur
      | Some '\\' -> Buffer.add_char buf '\\'; advance cur
      | Some '/' -> Buffer.add_char buf '/'; advance cur
      | Some 'n' -> Buffer.add_char buf '\n'; advance cur
      | Some 'r' -> Buffer.add_char buf '\r'; advance cur
      | Some 't' -> Buffer.add_char buf '\t'; advance cur
      | Some 'b' -> Buffer.add_char buf '\b'; advance cur
      | Some 'f' -> Buffer.add_char buf '\012'; advance cur
      | Some 'u' ->
        advance cur;
        if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
        let hex = String.sub cur.src cur.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail cur "bad \\u escape"
        in
        cur.pos <- cur.pos + 4;
        (* The printer only emits \u00XX for control bytes; decode the
           BMP range as UTF-8 so round-trips through foreign producers
           do not lose data. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail cur "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance cur;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec go () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') ->
      advance cur;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance cur;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with Some f -> Float f | None -> fail cur "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with Some f -> Float f | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let items = ref [ parse_value cur ] in
      skip_ws cur;
      let rec go () =
        match peek cur with
        | Some ',' ->
          advance cur;
          items := parse_value cur :: !items;
          skip_ws cur;
          go ()
        | Some ']' -> advance cur
        | _ -> fail cur "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws cur;
      let rec go () =
        match peek cur with
        | Some ',' ->
          advance cur;
          fields := field () :: !fields;
          skip_ws cur;
          go ()
        | Some '}' -> advance cur
        | _ -> fail cur "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some c -> fail cur (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos <> String.length s then Error (Printf.sprintf "trailing data at offset %d" cur.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function Int i -> Some i | _ -> None
