module Mo = C11.Memory_order
module Ords = Structures.Ords
module B = Structures.Benchmark
module AS = Access_summary

type config = {
  max_executions : int option;
  jobs : int;
  checker : Cdsspec.Checker.config;
  witness_max_runs : int;
  time_budget : float option;
  store : Store.t option;
}

let default_config =
  {
    max_executions = AS.default_config.AS.max_executions;
    jobs = 1;
    checker = Cdsspec.Checker.default_config;
    witness_max_runs = 200_000;
    time_budget = None;
    store = None;
  }

type verdict =
  | Safe_to_weaken
  | Behaviour_changing of { new_behaviours : int; lost_behaviours : int }
  | Spec_violating of { bug : string; witness : string option; witness_test : string option }

type candidate = {
  site : string;
  from_order : Mo.t;
  to_order : Mo.t;
  verdict : verdict;
  explored : int;
  time : float;
  lint_predicted : bool;
  agrees_with_lint : bool option;
  witness_exec : C11.Execution.t option;
}

type report = {
  bench : string;
  baseline_behaviours : int;
  candidates : candidate list;
  truncated : bool;
  time : float;
}

let verdict_to_string = function
  | Safe_to_weaken -> "safe-to-weaken"
  | Behaviour_changing { new_behaviours; lost_behaviours } ->
    Printf.sprintf "behaviour-changing (+%d/-%d)" new_behaviours lost_behaviours
  | Spec_violating { bug; _ } -> Printf.sprintf "spec-violating (%s)" bug

(* Serial DFS for a replayable counterexample: the advisor's exhaustive
   pass may find the bug under sleep-set reduction, whose decision
   indices do not replay under `--replay` (replay runs with sleep sets
   off). Re-search with the exact replay semantics, capped. *)
let find_witness ~(scheduler : Mc.Scheduler.config) ~checker ~spec ~max_runs program =
  let config = { scheduler with Mc.Scheduler.sleep_sets = false } in
  let trace : Mc.Scheduler.decision C11.Vec.t = C11.Vec.create () in
  let rec loop runs =
    if runs >= max_runs then None
    else begin
      let r = Mc.Scheduler.run ~config ~trace program in
      let bugs =
        match r.outcome with
        | Mc.Scheduler.Complete ->
          if r.bugs <> [] then r.bugs
          else Cdsspec.Checker.hook ~config:checker spec r.exec r.annots
        | _ -> []
      in
      if bugs <> [] then begin
        let decisions =
          List.init (C11.Vec.length trace) (fun i ->
              Mc.Scheduler.decision_chosen (C11.Vec.get trace i))
        in
        Some (decisions, r.exec)
      end
      else if Mc.Explorer.backtrack trace then loop (runs + 1)
      else None
    end
  in
  loop 0

(* One advisor store entry covers the whole [explore_tests] sweep for
   one ords table: the advisor explores with pruning off (no closed keys
   to reuse), so what the store recalls is the per-test behaviour sets
   and the cold execution count — a warm hit skips the exploration
   entirely and the behaviour diff downstream is computed from identical
   sets. Only clean, complete sweeps are saved: a buggy candidate needs
   a witness search anyway, and a truncated sweep's sets are partial. *)
let advisor_key ~config (b : B.t) ords =
  Store.job_key ~kind:`Advisor ~bench:b.name ~test:"*" ~ords:(Ords.to_list ords)
    ~sched:b.scheduler ~prune:false ~engine:`Arena ~max_execs:config.max_executions
    ~checker:config.checker ~use_cache:false

(* Explore every unit test under [ords] with the checker attached,
   collecting behaviour fingerprints per test. Stops at the first test
   with a bug: the verdict is already decided. *)
let explore_tests ~config (b : B.t) ords =
  let key = Option.map (fun s -> (s, advisor_key ~config b ords)) config.store in
  let stored = match key with Some (s, k) -> Store.load s k | None -> None in
  match stored with
  | Some e ->
    ( None,
      List.map (fun (name, fps) -> (name, AS.behaviour_set_of_list fps)) e.Store.behaviours,
      e.Store.explored )
  | None ->

    let mu = Mutex.create () in
    let explored = ref 0 in
    let first_bug = ref None in
    let truncated = ref false in
    let sets = ref [] in
    (try
       List.iter
         (fun (t : B.test) ->
           let bset = AS.behaviour_set_create () in
           let on_feasible exec annots =
             Mutex.protect mu (fun () -> AS.behaviour_add bset exec);
             Cdsspec.Checker.hook ~config:config.checker b.spec exec annots
           in
           let econfig =
             {
               Mc.Explorer.default_config with
               scheduler = b.scheduler;
               max_executions = config.max_executions;
               (* The advisor's evidence counters are per-execution, like
                  the access summary's: keep interleaving counts exact. *)
               prune = false;
             }
           in
           let r =
             if config.jobs > 1 then
               Mc.Parallel.explore ~config:econfig ~on_feasible ~jobs:config.jobs (t.program ords)
             else Mc.Explorer.explore ~config:econfig ~on_feasible (t.program ords)
           in
           explored := !explored + r.stats.explored;
           if r.stats.truncated then truncated := true;
           sets := (t.test_name, bset) :: !sets;
           match r.bugs with
           | bug :: _ ->
             first_bug := Some (bug, t);
             raise Exit
           | [] -> ())
         b.tests
     with Exit -> ());
    let sets = List.rev !sets in
    (match key with
    | Some (s, k) when !first_bug = None && not !truncated ->
      Store.save s k
        {
          Store.graphs = [];
          closed = [];
          check_entries = [];
          behaviours = List.map (fun (name, set) -> (name, AS.behaviour_elements set)) sets;
          explored = !explored;
          time = 0.;
          partial = None;
        }
    | _ -> ());
    (!first_bug, sets, !explored)

let advise ?(config = default_config) ?only_sites ?(findings = []) (b : B.t)
    ~(summary : AS.t) =
  let t0 = Mc.Monotonic.now () in
  let deadline = Option.map (fun s -> t0 +. s) config.time_budget in
  let baseline_behaviours =
    List.fold_left (fun acc (_, set) -> acc + AS.behaviour_cardinal set) 0 summary.AS.test_behaviours
  in
  let truncated = ref false in
  let candidates =
    if summary.AS.bugs <> [] then []
    else
      Ords.weakenable b.sites
      |> List.filter (fun (s : Ords.site) ->
             match only_sites with None -> true | Some names -> List.mem s.name names)
      |> List.concat_map (fun (s : Ords.site) ->
             let lint_predicted = Lint.predicts_weakenable findings s.name in
             Ords.downgrades s
             |> List.mapi (fun step to_order -> (step, to_order))
             |> List.filter_map (fun (step, to_order) ->
                    let expired =
                      match deadline with
                      | Some d -> Mc.Monotonic.now () > d
                      | None -> false
                    in
                    if expired then begin
                      truncated := true;
                      None
                    end
                    else begin
                      let t1 = Mc.Monotonic.now () in
                      let ords = Ords.with_order b.sites s.name to_order in
                      let first_bug, sets, explored = explore_tests ~config b ords in
                      let verdict, witness_exec =
                        match first_bug with
                        | Some (bug, t) ->
                          let witness =
                            find_witness ~scheduler:b.scheduler ~checker:config.checker
                              ~spec:b.spec ~max_runs:config.witness_max_runs (t.program ords)
                          in
                          ( Spec_violating
                              {
                                bug = Mc.Bug.key bug;
                                witness =
                                  Option.map
                                    (fun (ds, _) -> Fuzz.Engine.trace_to_string ds)
                                    witness;
                                witness_test = Some t.test_name;
                              },
                            Option.map snd witness )
                        | None ->
                          let news, losts =
                            List.fold_left
                              (fun (n, l) (test_name, cand) ->
                                match List.assoc_opt test_name summary.AS.test_behaviours with
                                | None -> (n, l)
                                | Some base ->
                                  let dn, dl =
                                    AS.behaviour_diff ~baseline:base ~candidate:cand
                                  in
                                  (n + dn, l + dl))
                              (0, 0) sets
                          in
                          if news = 0 && losts = 0 then (Safe_to_weaken, None)
                          else
                            ( Behaviour_changing
                                { new_behaviours = news; lost_behaviours = losts },
                              None )
                      in
                      let agrees_with_lint =
                        if step = 0 then Some (lint_predicted = (verdict = Safe_to_weaken))
                        else None
                      in
                      Some
                        {
                          site = s.name;
                          from_order = s.order;
                          to_order;
                          verdict;
                          explored;
                          time = Mc.Monotonic.now () -. t1;
                          lint_predicted;
                          agrees_with_lint;
                          witness_exec;
                        }
                    end))
  in
  {
    bench = b.name;
    baseline_behaviours;
    candidates;
    truncated = !truncated;
    time = Mc.Monotonic.now () -. t0;
  }
