module AS = Access_summary
module Mo = C11.Memory_order

let schema_version = "cdsspec-lint/1"

type t = {
  summary : AS.t;
  findings : Lint.finding list;
  advice : Weaken.report option;
}

let kind_to_string : Mo.op_kind -> string = function
  | For_load -> "load"
  | For_store -> "store"
  | For_rmw -> "rmw"
  | For_fence -> "fence"

let opt_str = function None -> Json.Null | Some s -> Json.Str s

let site_json (x : AS.site_summary) =
  Json.Obj
    [
      ("name", Json.Str x.site.name);
      ("kind", Json.Str (kind_to_string x.site.kind));
      ("order", Json.Str (Mo.to_string x.site.order));
      ("occurrences", Json.Int x.occurrences);
      ("executions", Json.Int x.executions);
      ("release_writes", Json.Int x.release_writes);
      ("sw_edges", Json.Int x.sw_edges);
      ("sw_carried", Json.Int x.sw_carried);
      ("acquire_reads", Json.Int x.acquire_reads);
      ("acquire_gained", Json.Int x.acquire_gained);
      ("sc_ops", Json.Int x.sc_ops);
      ("sc_constrained", Json.Int x.sc_constrained);
      ("cross_thread_reads", Json.Int x.cross_thread_reads);
      ("relaxed_published", Json.Int x.relaxed_published);
      ("access_tids", Json.Int x.access_tids);
      ("single_thread", Json.Bool x.single_thread);
    ]

let finding_json (f : Lint.finding) =
  Json.Obj
    [
      ("rule", Json.Str f.rule);
      ("severity", Json.Str (Lint.severity_to_string f.severity));
      ("site", opt_str f.site);
      ("message", Json.Str f.message);
      ("evidence", opt_str f.evidence);
    ]

let candidate_json ~timings (c : Weaken.candidate) =
  let verdict_fields =
    match c.verdict with
    | Weaken.Safe_to_weaken -> [ ("verdict", Json.Str "safe-to-weaken") ]
    | Weaken.Behaviour_changing { new_behaviours; lost_behaviours } ->
      [
        ("verdict", Json.Str "behaviour-changing");
        ("new_behaviours", Json.Int new_behaviours);
        ("lost_behaviours", Json.Int lost_behaviours);
      ]
    | Weaken.Spec_violating { bug; witness; witness_test } ->
      [
        ("verdict", Json.Str "spec-violating");
        ("bug", Json.Str bug);
        ("witness", opt_str witness);
        ("witness_test", opt_str witness_test);
      ]
  in
  Json.Obj
    ([
       ("site", Json.Str c.site);
       ("from", Json.Str (Mo.to_string c.from_order));
       ("to", Json.Str (Mo.to_string c.to_order));
     ]
    @ verdict_fields
    @ [
        ("explored", Json.Int c.explored);
        ("time_s", Json.Float (if timings then c.time else 0.));
        ("lint_predicted", Json.Bool c.lint_predicted);
        ( "agrees_with_lint",
          match c.agrees_with_lint with None -> Json.Null | Some b -> Json.Bool b );
      ])

let to_json ?(timings = true) (r : t) =
  let s = r.summary in
  Json.Obj
    [
      ("bench", Json.Str s.bench);
      ( "summary",
        Json.Obj
          [
            ("explored", Json.Int s.explored);
            ("feasible", Json.Int s.feasible);
            ("buggy", Json.Int s.buggy);
            ("truncated", Json.Bool s.truncated);
            ("time_s", Json.Float (if timings then s.time else 0.));
            ("sites", Json.List (List.map site_json s.sites));
            ( "methods",
              Json.List
                (List.map
                   (fun (m : AS.method_summary) ->
                     Json.Obj
                       [
                         ("name", Json.Str m.method_name);
                         ("calls", Json.Int m.calls);
                         ("calls_with_ordering_point", Json.Int m.calls_with_op);
                       ])
                   s.methods) );
            ( "admissibility_rules",
              Json.List
                (List.map
                   (fun (ru : AS.rule_summary) ->
                     Json.Obj
                       [
                         ("first", Json.Str ru.rule_first);
                         ("second", Json.Str ru.rule_second);
                         ("exercised", Json.Int ru.exercised);
                       ])
                   s.rules) );
          ] );
      ("findings", Json.List (List.map finding_json r.findings));
      ( "advice",
        match r.advice with
        | None -> Json.Null
        | Some a ->
          Json.Obj
            [
              ("baseline_behaviours", Json.Int a.baseline_behaviours);
              ("truncated", Json.Bool a.truncated);
              ("time_s", Json.Float (if timings then a.time else 0.));
              ("candidates", Json.List (List.map (candidate_json ~timings) a.candidates));
            ] );
    ]

let wrap reports =
  Json.Obj [ ("schema", Json.Str schema_version); ("reports", Json.List reports) ]

let pp ppf (r : t) =
  let s = r.summary in
  Format.fprintf ppf "== %s ==@." s.bench;
  Format.fprintf ppf "  explored %d executions (%d feasible, %d buggy) in %.2fs%s@." s.explored
    s.feasible s.buggy s.time
    (if s.truncated then " (truncated)" else "");
  if r.findings = [] then Format.fprintf ppf "  no findings@."
  else begin
    Format.fprintf ppf "  findings:@.";
    List.iter
      (fun (f : Lint.finding) ->
        Format.fprintf ppf "    %-8s %-28s %s%s@."
          (Lint.severity_to_string f.severity)
          f.rule
          (match f.site with Some site -> site ^ ": " | None -> "")
          f.message)
      r.findings
  end;
  match r.advice with
  | None -> ()
  | Some a ->
    Format.fprintf ppf "  advisor: baseline %d behaviours, %d candidates in %.2fs%s@."
      a.baseline_behaviours (List.length a.candidates) a.time
      (if a.truncated then " (truncated)" else "");
    List.iter
      (fun (c : Weaken.candidate) ->
        Format.fprintf ppf "    %-24s %-8s -> %-8s %-28s%s@." c.site
          (Mo.to_string c.from_order) (Mo.to_string c.to_order)
          (Weaken.verdict_to_string c.verdict)
          (match c.verdict with
          | Weaken.Spec_violating { witness = Some w; witness_test; _ } ->
            Printf.sprintf " witness: --replay %s%s" w
              (match witness_test with Some t -> Printf.sprintf " (test %s)" t | None -> "")
          | _ -> ""))
      a.candidates;
    let disagreements =
      List.filter (fun (c : Weaken.candidate) -> c.agrees_with_lint = Some false) a.candidates
    in
    if disagreements <> [] then
      Format.fprintf ppf "  lint/advisor disagreement on: %s@."
        (String.concat ", " (List.map (fun (c : Weaken.candidate) -> c.site) disagreements))
