module AS = Access_summary
module Mo = C11.Memory_order

type severity = Info | Advice | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Advice -> "advice"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Advice -> 1 | Warning -> 2 | Error -> 3

type finding = {
  rule : string;
  severity : severity;
  site : string option;
  message : string;
  evidence : string option;
}

(* The advice rules that predict a site is over-synchronized: the
   weakening advisor checks its empirical verdicts against these. *)
let weakening_rules =
  [
    "release-never-synchronizes";
    "acquire-never-gains";
    "seq-cst-unconstrained";
    "single-thread-atomic";
  ]

let predicts_weakenable findings site =
  List.exists (fun f -> f.site = Some site && List.mem f.rule weakening_rules) findings

let max_severity findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some f.severity
      | Some s -> if severity_rank f.severity > severity_rank s then Some f.severity else acc)
    None findings

let site_findings (x : AS.site_summary) =
  let s = x.site in
  let name = s.name in
  let order = Mo.to_string s.order in
  let f rule severity message evidence = { rule; severity; site = Some name; message; evidence } in
  if x.occurrences = 0 then
    [
      f "site-never-executed" Info
        "never executed by any unit test; lint facts and advisor verdicts are vacuous for this \
         site"
        None;
    ]
  else begin
    let out = ref [] in
    let add x = out := x :: !out in
    if Mo.is_release s.order && x.release_writes > 0 && x.sw_carried = 0 then
      add
        (f "release-never-synchronizes" Advice
           (if x.sw_edges = 0 then
              Printf.sprintf
                "%s write: %d release writes across %d executions, but no acquire read ever \
                 synchronized with one"
                order x.release_writes x.executions
            else
              Printf.sprintf
                "%s write: %d sw edges formed, but none ever carried a happens-before obligation \
                 the reader lacked"
                order x.sw_edges)
           x.sample_exec);
    if Mo.is_acquire s.order && (s.kind = Mo.For_load || s.kind = Mo.For_rmw)
       && x.acquire_reads > 0 && x.acquire_gained = 0
    then
      add
        (f "acquire-never-gains" Advice
           (Printf.sprintf
              "%s read: %d acquire reads, none ever learned an ordering fact program order did \
               not already give it"
              order x.acquire_reads)
           x.sample_exec);
    if Mo.is_seq_cst s.order && x.sc_ops > 0 && x.sc_constrained = 0 then
      add
        (f "seq-cst-unconstrained" Advice
           (Printf.sprintf
              "%d seq_cst ops, none ever met a concurrent seq_cst write/fence the SC total order \
               had to arbitrate"
              x.sc_ops)
           x.sample_exec);
    (match x.publish_evidence with
    | Some (evidence, (w, r)) when s.kind = Mo.For_rmw && not (Mo.is_release s.order) ->
      add
        (f "relaxed-rmw-publishes" Warning
           (Printf.sprintf
              "%s RMW published a value read by another thread %d time(s) with no sw edge (e.g. \
               action #%d read by #%d); readers get no happens-before ordering"
              order x.relaxed_published w r)
           (Some evidence))
    | Some (evidence, (w, r)) when s.kind = Mo.For_store && not (Mo.is_release s.order) ->
      add
        (f "relaxed-store-publishes" Info
           (Printf.sprintf
              "%s store read cross-thread %d time(s) with no sw edge (e.g. action #%d read by \
               #%d); fine if the value is self-contained, an ordering bug if it publishes an \
               object"
              order x.relaxed_published w r)
           (Some evidence))
    | _ -> ());
    if x.single_thread && s.order <> Mo.Relaxed then
      add
        (f "single-thread-atomic" Advice
           (if x.access_tids <= 1 then
              "only one thread ever touches this site's locations; the atomic order buys nothing"
            else
              "every conflicting cross-thread access pair on this site's locations is already \
               happens-before ordered by other synchronization; the declared order buys nothing")
           x.sample_exec);
    List.rev !out
  end

let lint (s : AS.t) : finding list =
  let baseline =
    match s.bugs with
    | [] -> []
    | bugs ->
      let race_detail =
        match s.races with
        | [] -> ""
        | races ->
          let pp_site = function Some x -> x | None -> "<unsited>" in
          Printf.sprintf " (racing sites: %s)"
            (String.concat "; "
               (List.map (fun (a, b) -> pp_site a ^ " vs " ^ pp_site b) races))
      in
      List.map
        (fun bug ->
          {
            rule = "spec-violating-baseline";
            severity = Error;
            site = None;
            message =
              Printf.sprintf "published orders already violate the checker: %s%s"
                (Mc.Bug.key bug) race_detail;
            evidence = None;
          })
        bugs
  in
  let per_site = List.concat_map site_findings s.sites in
  let methods =
    List.filter_map
      (fun (m : AS.method_summary) ->
        if m.calls > 0 && m.calls_with_op = 0 then
          Some
            {
              rule = "no-ordering-point";
              severity = Warning;
              site = None;
              message =
                Printf.sprintf
                  "method %s: %d calls, none designated an ordering point; the checker cannot \
                   position these calls in the ordering relation"
                  m.method_name m.calls;
              evidence = None;
            }
        else None)
      s.methods
  in
  let rules =
    List.filter_map
      (fun (r : AS.rule_summary) ->
        if r.exercised = 0 then
          Some
            {
              rule = "admissibility-rule-unexercised";
              severity = Info;
              site = None;
              message =
                Printf.sprintf
                  "admissibility rule %s <-> %s never saw an unordered matching call pair; the \
                   workload does not exercise it"
                  r.rule_first r.rule_second;
              evidence = None;
            }
        else None)
      s.rules
  in
  baseline @ per_site @ methods @ rules
