(** Rendering of a lint run — the {!Access_summary} facts, the {!Lint}
    findings and optionally the {!Weaken} advice — as human-readable text
    and as versioned machine-readable JSON.

    The JSON schema is [cdsspec-lint/1] and is pinned byte-for-byte by
    [test/test_analyze.ml]; bump the version string on any shape change.
    [~timings:false] zeroes the wall-clock fields so output is
    deterministic (the golden test and diff-friendly CI logs use it). *)

val schema_version : string

type t = {
  summary : Access_summary.t;
  findings : Lint.finding list;
  advice : Weaken.report option;
}

(** One benchmark's report as a JSON object. *)
val to_json : ?timings:bool -> t -> Json.t

(** The top-level document: [{ "schema": ..., "reports": [...] }]. *)
val wrap : Json.t list -> Json.t

(** Human-readable rendering, one block per benchmark. *)
val pp : Format.formatter -> t -> unit
