(** The paper's evaluation, regenerated: Figure 7 (benchmark results),
    Figure 8 (bug-injection detection), the section 6.2 expressiveness
    statistics, and the section 6.4.1 known-bug reproductions. Each
    experiment returns structured rows and can render itself as the same
    table the paper prints. *)

(** Caps applied to every exploration, so experiment wall-clock stays
    bounded on adversarial configurations. *)
type limits = {
  max_executions : int;
  checker : Cdsspec.Checker.config;
  jobs : int;  (** exploration domains per unit test; 1 = serial explorer *)
  check_cache : bool;
      (** memoize per-object check verdicts across executions (one fresh
          cache per exploration run); [false] keeps the counters but
          stores nothing — the benchmark baseline *)
  prune : bool;
      (** execution-graph equivalence pruning ({!Mc.Explorer.config}'s
          [prune]); [false] restores exact interleaving counts — the
          pruning benchmark's baseline *)
}

val default_limits : limits

(** Jobs requested via the [CDSSPEC_JOBS] environment variable: unset
    means 1 (serial), 0 means [Domain.recommended_domain_count ()].
    Raises [Invalid_argument] on garbage. *)
val jobs_of_env : unit -> int

(** {1 Figure 7 — benchmark results} *)

type fig7_row = {
  name : string;
  executions : int;  (** total executions explored, summed over unit tests *)
  feasible : int;
  time : float;  (** seconds *)
}

val figure7 : ?limits:limits -> Structures.Benchmark.t list -> fig7_row list
val pp_figure7 : Format.formatter -> fig7_row list -> unit

(** {1 Figure 8 — bug injection} *)

(** How an injection was detected, in the paper's priority order: a
    built-in check anywhere beats admissibility beats a spec assertion
    (the paper tabulates admissibility/assertion only for injections that
    pass the earlier classes). *)
type detection = Builtin | Admissibility | Assertion | Missed

type injection_outcome = {
  site : string;
  weakened_to : C11.Memory_order.t;
  detection : detection;
}

type fig8_row = {
  bench : string;
  injections : int;
  builtin : int;
  admissibility : int;
  assertion : int;
  outcomes : injection_outcome list;
}

val figure8 : ?limits:limits -> Structures.Benchmark.t list -> fig8_row list
val pp_figure8 : Format.formatter -> fig8_row list -> unit

(** Injections nothing detects — candidate overly-strong parameters
    (paper section 6.4.3). *)
val undetected : fig8_row list -> (string * string) list

(** {1 Randomized exploration — fuzz campaigns}

    Beyond-exhaustive workloads (see {!Structures.Oversized}) sampled by
    the {!Fuzz.Engine} instead of enumerated. *)

type fuzz_limits = {
  fuzz_executions : int option;
  fuzz_time_budget : float option;  (** seconds; both bounds may be set *)
  fuzz_bias : Fuzz.Bias.policy;
  fuzz_checker : Cdsspec.Checker.config;
}

(** 2000 executions, no time budget, [Prefer_stale_rf]. *)
val default_fuzz_limits : fuzz_limits

(** One raw campaign on one unit test — the fuzz analogue of the
    internal exhaustive [explore]. Sleep sets are forced off, as the
    engine requires. *)
val fuzz :
  limits:fuzz_limits ->
  seed:int ->
  Structures.Benchmark.t ->
  ords:Structures.Ords.t ->
  Structures.Benchmark.test ->
  Fuzz.Engine.result

type fuzz_row = {
  workload : string;  (** ["bench/test"] *)
  seed : int;
  fuzz_execs : int;
  fuzz_feasible : int;
  fuzz_coverage : int;  (** distinct execution fingerprints *)
  distinct_bugs : int;  (** deduplicated by {!Mc.Bug.key} *)
  execs_per_sec : float;
  time_to_first_bug : float option;
  fuzz_time : float;  (** seconds *)
  first_repro : string option;  (** seed + minimized trace of the first bug *)
}

(** The oversized fuzz-only registry entries, i.e.
    {!Structures.Oversized.all}. *)
val fuzz_workloads : unit -> Structures.Benchmark.t list

(** Fuzz every unit test of every benchmark at its default (correct)
    memory orders, one row per test. *)
val fuzz_campaign :
  ?limits:fuzz_limits -> ?seed:int -> Structures.Benchmark.t list -> fuzz_row list

val pp_fuzz : Format.formatter -> fuzz_row list -> unit

(** {1 Section 6.2 — expressiveness statistics} *)

type expressiveness = {
  benchmarks : int;
  total_spec_lines : int;
  avg_spec_lines : float;
  api_methods : int;
  ordering_points : int;
  ordering_points_per_method : float;
  admissibility_lines : int;
}

val expressiveness : Structures.Benchmark.t list -> expressiveness
val pp_expressiveness : Format.formatter -> expressiveness -> unit

(** {1 Section 6.4.1 — known bugs} *)

type known_bug_row = {
  label : string;
  found : bool;
  report : string;  (** first diagnostic *)
}

val known_bugs : ?limits:limits -> unit -> known_bug_row list
val pp_known_bugs : Format.formatter -> known_bug_row list -> unit
