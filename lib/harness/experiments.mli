(** The paper's evaluation, regenerated: Figure 7 (benchmark results),
    Figure 8 (bug-injection detection), the section 6.2 expressiveness
    statistics, and the section 6.4.1 known-bug reproductions. Each
    experiment returns structured rows and can render itself as the same
    table the paper prints. *)

(** Caps applied to every exploration, so experiment wall-clock stays
    bounded on adversarial configurations. *)
type limits = {
  max_executions : int;
  checker : Cdsspec.Checker.config;
  jobs : int;  (** exploration domains per unit test; 1 = serial explorer *)
}

val default_limits : limits

(** Jobs requested via the [CDSSPEC_JOBS] environment variable: unset
    means 1 (serial), 0 means [Domain.recommended_domain_count ()].
    Raises [Invalid_argument] on garbage. *)
val jobs_of_env : unit -> int

(** {1 Figure 7 — benchmark results} *)

type fig7_row = {
  name : string;
  executions : int;  (** total executions explored, summed over unit tests *)
  feasible : int;
  time : float;  (** seconds *)
}

val figure7 : ?limits:limits -> Structures.Benchmark.t list -> fig7_row list
val pp_figure7 : Format.formatter -> fig7_row list -> unit

(** {1 Figure 8 — bug injection} *)

(** How an injection was detected, in the paper's priority order: a
    built-in check anywhere beats admissibility beats a spec assertion
    (the paper tabulates admissibility/assertion only for injections that
    pass the earlier classes). *)
type detection = Builtin | Admissibility | Assertion | Missed

type injection_outcome = {
  site : string;
  weakened_to : C11.Memory_order.t;
  detection : detection;
}

type fig8_row = {
  bench : string;
  injections : int;
  builtin : int;
  admissibility : int;
  assertion : int;
  outcomes : injection_outcome list;
}

val figure8 : ?limits:limits -> Structures.Benchmark.t list -> fig8_row list
val pp_figure8 : Format.formatter -> fig8_row list -> unit

(** Injections nothing detects — candidate overly-strong parameters
    (paper section 6.4.3). *)
val undetected : fig8_row list -> (string * string) list

(** {1 Section 6.2 — expressiveness statistics} *)

type expressiveness = {
  benchmarks : int;
  total_spec_lines : int;
  avg_spec_lines : float;
  api_methods : int;
  ordering_points : int;
  ordering_points_per_method : float;
  admissibility_lines : int;
}

val expressiveness : Structures.Benchmark.t list -> expressiveness
val pp_expressiveness : Format.formatter -> expressiveness -> unit

(** {1 Section 6.4.1 — known bugs} *)

type known_bug_row = {
  label : string;
  found : bool;
  report : string;  (** first diagnostic *)
}

val known_bugs : ?limits:limits -> unit -> known_bug_row list
val pp_known_bugs : Format.formatter -> known_bug_row list -> unit
