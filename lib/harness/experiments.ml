module E = Mc.Explorer
module B = Structures.Benchmark

type limits = {
  max_executions : int;
  checker : Cdsspec.Checker.config;
  jobs : int;
  check_cache : bool;  (* memoize per-object check verdicts across executions *)
  prune : bool;  (* execution-graph equivalence pruning *)
}

let default_limits =
  {
    max_executions = 150_000;
    checker = Cdsspec.Checker.default_config;
    jobs = 1;
    check_cache = true;
    prune = true;
  }

let jobs_of_env () =
  match Sys.getenv_opt "CDSSPEC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some 0 -> Domain.recommended_domain_count ()
    | _ -> invalid_arg (Printf.sprintf "CDSSPEC_JOBS=%S: expected a non-negative integer" s))
  | None -> 1

(* One check cache per exploration run: the memoization is
   cross-execution (that is the point) but never crosses a test, a
   config or an ords choice. With [check_cache = false] the cache still
   counts hits/misses/truncations, it just stores no verdicts. *)
let explore ~limits (b : B.t) ~ords (t : B.test) =
  let cache = Cdsspec.Checker.create_cache ~memoize:limits.check_cache () in
  Mc.Parallel.explore ~jobs:limits.jobs
    ~config:
      {
        E.default_config with
        scheduler = b.scheduler;
        max_executions = Some limits.max_executions;
        prune = limits.prune;
      }
    ~on_feasible:(Cdsspec.Checker.hook ~config:limits.checker ~cache b.spec)
    ~check:(fun () -> Cdsspec.Checker.cache_counters cache)
    (t.program ords)

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)

type fig7_row = {
  name : string;
  executions : int;
  feasible : int;
  time : float;
}

let figure7 ?(limits = default_limits) benches =
  List.map
    (fun (b : B.t) ->
      let ords = Structures.Ords.default b.sites in
      let rows = List.map (explore ~limits b ~ords) b.tests in
      {
        name = b.name;
        executions = List.fold_left (fun acc (r : E.result) -> acc + r.stats.explored) 0 rows;
        feasible = List.fold_left (fun acc (r : E.result) -> acc + r.stats.feasible) 0 rows;
        time = List.fold_left (fun acc (r : E.result) -> acc +. r.stats.time) 0. rows;
      })
    benches

let pp_figure7 ppf rows =
  Format.fprintf ppf "%-22s %12s %10s %14s@." "Benchmark" "# Executions" "# Feasible"
    "Total Time (s)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %12d %10d %14.2f@." r.name r.executions r.feasible r.time)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)

type detection = Builtin | Admissibility | Assertion | Missed

type injection_outcome = {
  site : string;
  weakened_to : C11.Memory_order.t;
  detection : detection;
}

type fig8_row = {
  bench : string;
  injections : int;
  builtin : int;
  admissibility : int;
  assertion : int;
  outcomes : injection_outcome list;
}

(* Classify one exploration's reports: built-in checks win, then
   admissibility, then specification assertions — matching how the
   paper's three detection columns are tabulated. *)
let classify bugs =
  let is_builtin = function
    | Mc.Bug.Data_race _ | Uninitialized_load _ | Deadlock _ | Assertion_failure _ -> true
    | Spec_violation _ -> false
  in
  let spec_kind k =
    List.exists (function Mc.Bug.Spec_violation { kind; _ } -> kind = k | _ -> false) bugs
  in
  if bugs = [] then Missed
  else if List.exists is_builtin bugs then Builtin
  else if spec_kind "admissibility" then Admissibility
  else Assertion

let merge_detections a b =
  match a, b with
  | Builtin, _ | _, Builtin -> Builtin
  | Admissibility, _ | _, Admissibility -> Admissibility
  | Assertion, _ | _, Assertion -> Assertion
  | Missed, Missed -> Missed

let figure8 ?(limits = default_limits) benches =
  List.map
    (fun (b : B.t) ->
      let weakenable = Structures.Ords.weakenable b.sites in
      let outcomes =
        List.map
          (fun (s : Structures.Ords.site) ->
            match Structures.Ords.weakened b.sites s.name with
            | None -> assert false (* weakenable sites always weaken *)
            | Some ords ->
              let weakened_to = Structures.Ords.get ords s.name in
              let detection =
                (* stop at the first detecting unit test; within one
                   exploration [classify] already applies the paper's
                   built-in > admissibility > assertion priority *)
                List.fold_left
                  (fun acc (t : B.test) ->
                    match acc with
                    | Missed -> merge_detections acc (classify (explore ~limits b ~ords t).bugs)
                    | found -> found)
                  Missed b.tests
              in
              { site = s.name; weakened_to; detection })
          weakenable
      in
      let count d = List.length (List.filter (fun o -> o.detection = d) outcomes) in
      {
        bench = b.name;
        injections = List.length outcomes;
        builtin = count Builtin;
        admissibility = count Admissibility;
        assertion = count Assertion;
        outcomes;
      })
    benches

let rate_pct r =
  if r.injections = 0 then 100
  else (r.builtin + r.admissibility + r.assertion) * 100 / r.injections

let pp_figure8 ppf rows =
  Format.fprintf ppf "%-22s %11s %10s %15s %11s %6s@." "Benchmark" "# Injection" "# Built-in"
    "# Admissibility" "# Assertion" "Rate";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %11d %10d %15d %11d %5d%%@." r.bench r.injections r.builtin
        r.admissibility r.assertion (rate_pct r))
    rows;
  let tot f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let total_inj = tot (fun r -> r.injections) in
  let total_det = tot (fun r -> r.builtin + r.admissibility + r.assertion) in
  Format.fprintf ppf "%-22s %11d %10d %15d %11d %5d%%@." "Total" total_inj
    (tot (fun r -> r.builtin))
    (tot (fun r -> r.admissibility))
    (tot (fun r -> r.assertion))
    (if total_inj = 0 then 100 else total_det * 100 / total_inj)

let undetected rows =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun o -> if o.detection = Missed then Some (r.bench, o.site) else None)
        r.outcomes)
    rows

(* ------------------------------------------------------------------ *)
(* Randomized exploration — fuzz campaigns over oversized workloads    *)

type fuzz_limits = {
  fuzz_executions : int option;
  fuzz_time_budget : float option;
  fuzz_bias : Fuzz.Bias.policy;
  fuzz_checker : Cdsspec.Checker.config;
}

let default_fuzz_limits =
  {
    fuzz_executions = Some 2_000;
    fuzz_time_budget = None;
    fuzz_bias = Fuzz.Bias.Prefer_stale_rf;
    fuzz_checker = Cdsspec.Checker.default_config;
  }

let fuzz ~limits ~seed (b : B.t) ~ords (t : B.test) =
  let cache = Cdsspec.Checker.create_cache () in
  Fuzz.Engine.run
    ~config:
      {
        Fuzz.Engine.default_config with
        scheduler = { b.scheduler with Mc.Scheduler.sleep_sets = false };
        bias = limits.fuzz_bias;
        max_executions = limits.fuzz_executions;
        time_budget = limits.fuzz_time_budget;
      }
    ~on_feasible:(Cdsspec.Checker.hook ~config:limits.fuzz_checker ~cache b.spec)
    ~check:(fun () -> Cdsspec.Checker.cache_counters cache)
    ~seed (t.program ords)

type fuzz_row = {
  workload : string;
  seed : int;
  fuzz_execs : int;
  fuzz_feasible : int;
  fuzz_coverage : int;
  distinct_bugs : int;
  execs_per_sec : float;
  time_to_first_bug : float option;
  fuzz_time : float;
  first_repro : string option;
}

let fuzz_workloads () = Structures.Oversized.all ()

let fuzz_campaign ?(limits = default_fuzz_limits) ?(seed = 0) benches =
  List.concat_map
    (fun (b : B.t) ->
      let ords = Structures.Ords.default b.sites in
      List.map
        (fun (t : B.test) ->
          let r = fuzz ~limits ~seed b ~ords t in
          {
            workload = b.name ^ "/" ^ t.test_name;
            seed;
            fuzz_execs = r.stats.executions;
            fuzz_feasible = r.stats.feasible;
            fuzz_coverage = r.stats.coverage;
            distinct_bugs = List.length r.found;
            execs_per_sec =
              (if r.stats.time > 0. then float_of_int r.stats.executions /. r.stats.time else 0.);
            time_to_first_bug = r.stats.time_to_first_bug;
            fuzz_time = r.stats.time;
            first_repro =
              (match r.found with
              | [] -> None
              | f :: _ ->
                Some
                  (Printf.sprintf "seed=%d trace=%s" seed
                     (Fuzz.Engine.trace_to_string f.minimized)));
          })
        b.tests)
    benches

let pp_fuzz ppf rows =
  Format.fprintf ppf "%-34s %6s %8s %9s %9s %6s %10s %9s@." "Workload" "Seed" "# Execs"
    "Feasible" "Coverage" "Bugs" "Execs/s" "TTFB (s)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-34s %6d %8d %9d %9d %6d %10.0f %9s@." r.workload r.seed r.fuzz_execs
        r.fuzz_feasible r.fuzz_coverage r.distinct_bugs r.execs_per_sec
        (match r.time_to_first_bug with None -> "-" | Some t -> Printf.sprintf "%.3f" t);
      match r.first_repro with
      | None -> ()
      | Some repro -> Format.fprintf ppf "    repro: %s@." repro)
    rows

(* ------------------------------------------------------------------ *)
(* Section 6.2 expressiveness                                          *)

type expressiveness = {
  benchmarks : int;
  total_spec_lines : int;
  avg_spec_lines : float;
  api_methods : int;
  ordering_points : int;
  ordering_points_per_method : float;
  admissibility_lines : int;
}

let expressiveness benches =
  let acc f =
    List.fold_left
      (fun acc (b : B.t) ->
        let (Cdsspec.Spec.Packed spec) = b.spec in
        acc + f spec.accounting)
      0 benches
  in
  let n = List.length benches in
  let spec_lines = acc (fun a -> a.Cdsspec.Spec.spec_lines) in
  let methods = acc (fun a -> a.Cdsspec.Spec.api_methods) in
  let ops = acc (fun a -> a.Cdsspec.Spec.ordering_point_lines) in
  {
    benchmarks = n;
    total_spec_lines = spec_lines;
    avg_spec_lines = float_of_int spec_lines /. float_of_int (max 1 n);
    api_methods = methods;
    ordering_points = ops;
    ordering_points_per_method = float_of_int ops /. float_of_int (max 1 methods);
    admissibility_lines = acc (fun a -> a.Cdsspec.Spec.admissibility_lines);
  }

let pp_expressiveness ppf e =
  Format.fprintf ppf "benchmarks:                %d@." e.benchmarks;
  Format.fprintf ppf "total spec lines:          %d@." e.total_spec_lines;
  Format.fprintf ppf "avg spec lines/benchmark:  %.1f@." e.avg_spec_lines;
  Format.fprintf ppf "API methods:               %d@." e.api_methods;
  Format.fprintf ppf "ordering points:           %d@." e.ordering_points;
  Format.fprintf ppf "ordering points/method:    %.2f@." e.ordering_points_per_method;
  Format.fprintf ppf "admissibility rule lines:  %d@." e.admissibility_lines

(* ------------------------------------------------------------------ *)
(* Section 6.4.1 known bugs                                            *)

type known_bug_row = {
  label : string;
  found : bool;
  report : string;
}

let first_report (r : E.result) =
  match r.bugs with
  | [] -> "(no reports)"
  | b :: _ -> Fmt.str "%a" Mc.Bug.pp b

let run_known ~limits (b : B.t) ~ords =
  List.fold_left
    (fun acc (t : B.test) ->
      match acc with
      | Some _ -> acc
      | None ->
        let r = explore ~limits b ~ords t in
        if r.bugs <> [] then Some (first_report r) else None)
    None b.tests

let known_bugs ?(limits = default_limits) () =
  let ms = Structures.Ms_queue.benchmark in
  let ms_rows =
    List.map
      (fun (site, ords) ->
        match run_known ~limits ms ~ords with
        | Some report -> { label = "M&S queue: weak " ^ site; found = true; report }
        | None -> { label = "M&S queue: weak " ^ site; found = false; report = "(not found)" })
      Structures.Ms_queue.known_bugs
  in
  let cl = Structures.Chase_lev_deque.benchmark in
  let cl_row =
    match run_known ~limits cl ~ords:Structures.Chase_lev_deque.known_buggy_ords with
    | Some report -> { label = "Chase-Lev deque: weak resize publication"; found = true; report }
    | None ->
      { label = "Chase-Lev deque: weak resize publication"; found = false; report = "(not found)" }
  in
  ms_rows @ [ cl_row ]

let pp_known_bugs ppf rows =
  List.iter
    (fun r ->
      Format.fprintf ppf "%-45s %s@.    %s@." r.label (if r.found then "FOUND" else "MISSED")
        r.report)
    rows
