(** Exhaustive stateless exploration: depth-first search over the choice
    tree (scheduling choices × reads-from choices), replaying the program
    from scratch for each execution, as CDSChecker does. *)

type config = {
  scheduler : Scheduler.config;
  max_executions : int option;  (** stop after this many runs; None = exhaust *)
  progress : (int -> unit) option;  (** called with the run count periodically *)
}

val default_config : config

(** Counters reported by the per-execution checking hook (the cdsspec
    checker's cross-execution cache and truncation warnings). The
    explorer itself never bumps these: the [check] snapshot callback
    passed to {!explore} reads them from whoever owns the counters (see
    [Cdsspec.Checker.cache_counters]). [histories_truncated] /
    [prefixes_truncated] count object checks whose sequential-history /
    justifying-subhistory enumeration hit its cap — i.e. checks that
    silently passed on an unchecked remainder unless strict mode turned
    them into failures. *)
type check_counters = {
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  histories_truncated : int;
  prefixes_truncated : int;
}

(** All-zero counters: what [stats.check] holds when no snapshot
    callback was supplied. *)
val no_check_counters : check_counters

type stats = {
  explored : int;  (** total runs, feasible + pruned *)
  feasible : int;  (** complete, consistent executions *)
  pruned_loop_bound : int;
  pruned_max_actions : int;
  pruned_sleep_set : int;
  buggy : int;  (** feasible executions on which at least one bug fired *)
  truncated : bool;  (** true when max_executions stopped the search *)
  time : float;
      (** wall-clock seconds, measured with the monotonic clock and
          excluding time spent inside the [progress] callback *)
  check : check_counters;
      (** snapshot of the checking hook's counters at the end of the
          search ({!no_check_counters} when none was supplied) *)
}

type result = {
  stats : stats;
  bugs : Bug.t list;  (** deduplicated by {!Bug.key}, discovery order *)
  first_buggy_trace : string option;
      (** pretty-printed action log of the first buggy execution *)
  first_buggy_exec : C11.Execution.t option;
      (** the graph itself, e.g. for {!C11.Dot} rendering *)
}

(** [backtrack ?frozen trace] advances [trace] to the next unexplored
    branch: drops exhausted trailing decisions and bumps the deepest one
    with alternatives left, returning [false] once the (sub)tree is
    exhausted. The first [frozen] decisions (default 0) are never flipped
    or popped — they pin a subtree, which is how {!Parallel} partitions
    the decision tree into independent work items. *)
val backtrack : ?frozen:int -> Scheduler.decision C11.Vec.t -> bool

(** [explore ~config ?on_feasible main] enumerates the behaviours of
    [main]. [on_feasible] runs on every complete bug-free execution (the
    specification checker hooks in here) and returns any violations it
    finds, which are recorded like built-in bugs. [check], when given, is
    called once at the end of the search and its snapshot lands in
    [stats.check] — the checking hook's counter export. *)
val explore :
  ?config:config ->
  ?on_feasible:(C11.Execution.t -> Scheduler.annot list -> Bug.t list) ->
  ?check:(unit -> check_counters) ->
  (unit -> unit) ->
  result

(** [explore_subtree ~trace ~frozen main] is the DFS engine underlying
    {!explore}, seeded with an explicit decision [trace] whose first
    [frozen] decisions are pinned: only the subtree below that prefix is
    enumerated. [stop] is polled once per completed run (after it is
    counted); returning [true] truncates the search — the parallel
    explorer uses it to enforce a global execution cap across domains.
    [explore] is [explore_subtree ~trace:(Vec.create ()) ~frozen:0]. *)
val explore_subtree :
  ?config:config ->
  ?on_feasible:(C11.Execution.t -> Scheduler.annot list -> Bug.t list) ->
  ?check:(unit -> check_counters) ->
  ?stop:(unit -> bool) ->
  trace:Scheduler.decision C11.Vec.t ->
  frozen:int ->
  (unit -> unit) ->
  result
