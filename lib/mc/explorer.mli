(** Exhaustive stateless exploration: depth-first search over the choice
    tree (scheduling choices × reads-from choices), replaying the program
    from scratch for each execution, as CDSChecker does — augmented with
    execution-graph equivalence pruning, so each *behaviour* is visited
    once rather than each *interleaving*. *)

type config = {
  scheduler : Scheduler.config;
  max_executions : int option;  (** stop after this many runs; None = exhaust *)
  progress : (int -> unit) option;  (** called with the run count periodically *)
  prune : bool;
      (** equivalence pruning (default on): cut a decision subtree whose
          canonical state key ({!Scheduler.prune_key} — graph fingerprint
          + sleep set) matches an already fully-explored decision point,
          and skip [on_feasible] on repeated execution graphs. The set of
          distinct feasible graphs, the deduplicated bug list and the
          checker verdicts are unchanged; [explored]-style counters
          shrink (that is the point). [--no-prune] in [cdsspec_run] maps
          to [false]. *)
  engine : [ `Arena | `Legacy ];
      (** [`Arena] (default): one persistent {!Scheduler.session} whose
          arena-backed graph is rewound by snapshot restore on each
          backtrack instead of re-running the program prefix. [`Legacy]:
          a fresh {!Scheduler.run} per execution, rebuilding from action
          zero — the differential oracle ([--legacy-engine] in
          [cdsspec_run]). Both produce bit-identical verdicts, graph
          sets, bug lists and traces. *)
}

val default_config : config

(** Counters reported by the per-execution checking hook (the cdsspec
    checker's cross-execution cache and truncation warnings). The
    explorer itself never bumps these: the [check] snapshot callback
    passed to {!explore} reads them from whoever owns the counters (see
    [Cdsspec.Checker.cache_counters]). [histories_truncated] /
    [prefixes_truncated] count object checks whose sequential-history /
    justifying-subhistory enumeration hit its cap — i.e. checks that
    silently passed on an unchecked remainder unless strict mode turned
    them into failures. *)
type check_counters = {
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  histories_truncated : int;
  prefixes_truncated : int;
}

(** All-zero counters: what [stats.check] holds when no snapshot
    callback was supplied. *)
val no_check_counters : check_counters

type stats = {
  explored : int;  (** total runs, feasible + pruned *)
  feasible : int;  (** complete, consistent executions *)
  pruned_loop_bound : int;
  pruned_max_actions : int;
  pruned_sleep_set : int;
  pruned_equiv : int;
      (** runs cut by equivalence pruning: their decision-point state key
          matched an already fully-explored one *)
  distinct_graphs : int;
      (** distinct feasible execution graphs, by canonical fingerprint
          ({!C11.Execution.fingerprint}); the coverage denominator
          [pruned_equiv] trades interleavings against *)
  buggy : int;  (** feasible executions on which at least one bug fired *)
  truncated : bool;  (** true when max_executions stopped the search *)
  time : float;
      (** wall-clock seconds, measured with the monotonic clock and
          excluding time spent inside the [progress] callback *)
  minor_words : float;
      (** minor-heap words allocated by this domain during the search
          ([Gc.quick_stat] delta); divide by [explored] for the
          allocation-per-execution the arena engine is meant to shrink *)
  snapshots : int;  (** arena snapshots captured; 0 under [`Legacy] *)
  restores : int;  (** arena snapshot restores; 0 under [`Legacy] *)
  commits : int;
      (** actions committed through the {!C11.Execution} commit path
          during the search, including re-commits after a restore
          ({!C11.Execution.commit_count}) — the commit-kernel phase's
          work unit *)
  fiber_switches : int;
      (** operations that suspended their fiber with an effect
          round-trip ({!Scheduler.run_result.switches} totalled over
          the search) *)
  inline_ops : int;
      (** operations committed inside the direct-dispatch hook without
          suspending ({!Scheduler.run_result.inline_ops} totalled);
          [fiber_switches + inline_ops] is every operation the programs
          issued outside restore-replay *)
  rf_queries : int;
      (** rf-candidate floor queries ({!C11.Execution.rf_counters})
          answered during the search *)
  rf_fast : int;
      (** memoized O(1) answers among [rf_queries]; 0 with
          [scheduler.rf_kernel] off *)
  rf_rejected : int;
      (** stores rejected {e before} replay by candidate filtering —
          the pre-replay half of the pruning ledger; the post-replay
          half is the [pruned_*] counters above *)
  check : check_counters;
      (** snapshot of the checking hook's counters at the end of the
          search ({!no_check_counters} when none was supplied) *)
}

type result = {
  stats : stats;
  bugs : Bug.t list;  (** deduplicated by {!Bug.key}, discovery order *)
  first_buggy_trace : string option;
      (** pretty-printed action log of the first buggy execution *)
  first_buggy_exec : C11.Execution.t option;
      (** the graph itself, e.g. for {!C11.Dot} rendering *)
  graphs : int64 list;
      (** sorted canonical fingerprints of every distinct feasible
          execution graph — what the pruned-vs-unpruned differential
          tests compare, and what {!Parallel} unions across subtrees *)
  closed : Scheduler.prune_key list;
      (** decision-point states whose subtrees this search fully explored
          (the keys equivalence pruning armed itself with, in no
          particular order). The persistent cross-run store saves these so
          a later run of the identical program/config can preload them via
          [warm] and skip the corresponding subtrees. Empty with
          [config.prune] off. *)
}

(** Copy a decision record: decision records are mutated by {!backtrack},
    so a prefix handed to another explorer — a parallel work item, or a
    stolen subtree — must own its records or explorers would race on the
    chosen index. The candidates array is immutable after creation and is
    shared, keeping donations O(prefix) record headers. *)
val copy_decision : Scheduler.decision -> Scheduler.decision

(** [backtrack ?frozen ?close trace] advances [trace] to the next
    unexplored branch: drops exhausted trailing decisions and bumps the
    deepest one with alternatives left, returning [false] once the
    (sub)tree is exhausted. The first [frozen] decisions (default 0) are
    never flipped or popped — they pin a subtree, which is how
    {!Parallel} partitions the decision tree into independent work items.
    [close] is called with the state key of every popped scheduling
    decision: popping means its subtree is fully explored, which is what
    arms equivalence pruning against that state. *)
val backtrack :
  ?frozen:int -> ?close:(Scheduler.prune_key -> unit) -> Scheduler.decision C11.Vec.t -> bool

(** [explore ~config ?on_feasible main] enumerates the behaviours of
    [main]. [on_feasible] runs on every complete bug-free execution (the
    specification checker hooks in here) and returns any violations it
    finds, which are recorded like built-in bugs; under [config.prune] it
    is skipped on repeated execution graphs (an identical graph yields
    identical verdicts). [check], when given, is called once at the end
    of the search and its snapshot lands in [stats.check] — the checking
    hook's counter export.

    [warm], when given, is a read-only set of decision-point states
    proven fully explored by an earlier run of the *identical*
    program/config (a prior run's [result.closed], persisted by the
    cross-run store). It is consulted by equivalence pruning alongside
    the run's own visited table but never written; a warm run therefore
    re-discovers only the graphs reachable without entering a
    previously-closed subtree, and the caller is responsible for merging
    the stored graph set back in. Safety is by construction: if the
    program changed, no warm key matches any fresh state and the search
    degrades to a plain cold exploration. Ignored when [config.prune] is
    off. *)
val explore :
  ?config:config ->
  ?on_feasible:(C11.Execution.t -> Scheduler.annot list -> Bug.t list) ->
  ?check:(unit -> check_counters) ->
  ?warm:(Scheduler.prune_key, unit) Hashtbl.t ->
  (unit -> unit) ->
  result

(** [explore_subtree ~trace ~frozen main] is the DFS engine underlying
    {!explore}, seeded with an explicit decision [trace] whose first
    [frozen] decisions are pinned: only the subtree below that prefix is
    enumerated. [stop] is polled once per completed run (after it is
    counted); returning [true] truncates the search — the parallel
    explorer uses it to enforce a global execution cap across domains.

    [want_split]/[on_split] are the work-stealing donation hooks: after
    every successful backtrack, if [want_split ()] holds (the pool has
    idle domains), the shallowest level >= the current frozen depth with
    unexplored sibling branches is donated — [on_split ~key ~prefix
    ~frozen] receives a self-contained deep-copied decision prefix
    pinning those siblings, plus its canonical [key] (the chosen-index
    path, which is its DFS position — lexicographic key order is
    subtree DFS order), and the donor freezes that level so it never
    re-enters what it gave away. Everything a donor subsequently
    explores or donates is DFS-before the donated subtree.

    [explore] is [explore_subtree ~trace:(Vec.create ()) ~frozen:0]. *)
val explore_subtree :
  ?config:config ->
  ?on_feasible:(C11.Execution.t -> Scheduler.annot list -> Bug.t list) ->
  ?check:(unit -> check_counters) ->
  ?stop:(unit -> bool) ->
  ?want_split:(unit -> bool) ->
  ?on_split:(key:int list -> prefix:Scheduler.decision array -> frozen:int -> unit) ->
  ?warm:(Scheduler.prune_key, unit) Hashtbl.t ->
  trace:Scheduler.decision C11.Vec.t ->
  frozen:int ->
  (unit -> unit) ->
  result
