/* Monotonic wall clock for exploration timing: immune to NTP steps and
   settimeofday, unlike Unix.gettimeofday. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value cdsspec_monotonic_now(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
