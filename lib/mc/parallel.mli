(** Parallel state-space exploration across OCaml 5 domains.

    Two partitioning strategies:

    - [`Steal] (the default): the whole tree starts as one work item on a
      shared queue; whenever a domain is starving, a busy domain donates
      the shallowest unexplored sibling branches of its current DFS path
      as a new item and freezes that level, so donated subtrees are
      always DFS-after everything the donor keeps. The split adapts to
      the actual tree shape — skewed trees that defeat a static prefix
      split stay balanced.
    - [`Static]: enumerate every realizable decision prefix up to a split
      depth (one scheduler run per prefix, reusing the replay machinery)
      and drain the fixed subtree list from a pool. Kept as the baseline
      the work-stealing benchmarks compare against.

    Determinism contract: for exhaustive runs ([max_executions = None])
    with pruning off, [explore ~jobs:n] reports exactly the serial
    explorer's [stats] (modulo [time]) under either strategy — work
    items partition the decision tree, and every run's outcome is a
    function of its decision path alone. With [config.prune] on, each
    work item keeps its own visited-state table, so [explored] and
    [pruned_equiv] depend on where the tree was split; the *semantic*
    outputs are still deterministic and identical to the serial pruned
    run: the distinct-graph set ([graphs] / [distinct_graphs]), the
    deduplicated bug list in the same order, the first buggy trace, and
    hence all checker verdicts. Both guarantees rest on merging
    per-subtree results in canonical prefix (DFS) order — work-item keys
    are chosen-index paths, and their lexicographic order is DFS order —
    never completion order. With a [max_executions] cap the global cut
    point depends on domain interleaving, so truncated parallel runs may
    differ from truncated serial runs. *)

(** [prefixes ~config ~depth main] enumerates every realizable decision
    prefix of length <= [depth] in DFS order. The subtrees the prefixes
    pin are pairwise disjoint and cover the whole tree. Exposed for the
    coverage tests and the static split-depth heuristic. *)
val prefixes :
  config:Scheduler.config -> depth:int -> (unit -> unit) -> Scheduler.decision array list

(** [explore ?jobs ?split_depth ?strategy main] explores like
    {!Explorer.explore}. [jobs <= 1] (the default) is exactly the serial
    explorer. [split_depth] only affects [`Static]; it defaults to a
    heuristic that deepens until there are at least [4 * jobs] subtrees
    (or the prefix count plateaus), so the queue stays long enough to
    balance uneven subtree sizes.

    [check] is snapshotted exactly once, after every domain has joined,
    and lands in the merged [stats.check]: the checking hook's counters
    are shared across domains (the cdsspec check cache is domain-safe),
    so summing per-subtree snapshots would double-count.

    [warm] is a read-only set of decision-point states proven fully
    explored by an earlier run of the identical program/config (see
    {!Explorer.explore}); it is shared across all domains without a
    lock, which is safe because no explorer ever writes to it. The
    merged [closed] is the union of every subtree's closures — each is
    sound on its own, so the union is too. *)
val explore :
  ?config:Explorer.config ->
  ?on_feasible:(C11.Execution.t -> Scheduler.annot list -> Bug.t list) ->
  ?check:(unit -> Explorer.check_counters) ->
  ?warm:(Scheduler.prune_key, unit) Hashtbl.t ->
  ?jobs:int ->
  ?split_depth:int ->
  ?strategy:[ `Static | `Steal ] ->
  (unit -> unit) ->
  Explorer.result

(** {1 Resident domain pool}

    A long-lived pool of worker domains for callers that process many
    independent explorations over time — the serve daemon shards client
    jobs across one of these instead of paying a domain spawn per
    request. Tasks are plain thunks drained FIFO. A task that raises is
    contained (logged to stderr, worker moves on), so one bad job never
    wedges the pool. Tasks that themselves call {!explore} with
    [jobs > 1] would nest domain pools; the intended pattern is
    job-level parallelism: each task explores serially ([jobs = 1]) and
    the pool provides the concurrency. *)

type pool

(** [pool_create ~jobs] spawns [max 1 jobs] worker domains, idle until
    tasks arrive. *)
val pool_create : jobs:int -> pool

(** Number of worker domains in the pool. *)
val pool_size : pool -> int

(** Enqueue a task. Raises [Invalid_argument] after {!pool_shutdown}. *)
val pool_submit : pool -> (unit -> unit) -> unit

(** Drain: workers finish all queued tasks, then exit and are joined.
    Blocks until every worker has terminated. *)
val pool_shutdown : pool -> unit
