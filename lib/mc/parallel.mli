(** Parallel state-space exploration across OCaml 5 domains.

    The decision tree is partitioned by enumerating every realizable
    decision prefix up to a split depth (one scheduler run per prefix,
    reusing the replay machinery); each prefix pins a disjoint subtree,
    and a pool of [jobs] domains drains the subtree queue with the
    serial {!Explorer} DFS, each domain on its own deep-copied trace.

    Determinism contract: for exhaustive runs ([max_executions = None]),
    [explore ~jobs:n] reports exactly the serial explorer's [stats]
    (modulo [time]), the same deduplicated bug list in the same order,
    and the same first buggy trace — per-subtree results are merged in
    prefix (DFS) order, never completion order. With a [max_executions]
    cap the global cut point depends on domain interleaving, so
    truncated parallel runs may differ from truncated serial runs. *)

(** [prefixes ~config ~depth main] enumerates every realizable decision
    prefix of length <= [depth] in DFS order. The subtrees the prefixes
    pin are pairwise disjoint and cover the whole tree. Exposed for the
    coverage tests and the split-depth heuristic. *)
val prefixes :
  config:Scheduler.config -> depth:int -> (unit -> unit) -> Scheduler.decision array list

(** [explore ?jobs ?split_depth main] explores like {!Explorer.explore}.
    [jobs <= 1] (the default) is exactly the serial explorer.
    [split_depth] defaults to a heuristic that deepens until there are
    at least [4 * jobs] subtrees (or the prefix count plateaus), so the
    queue stays long enough to balance uneven subtree sizes.

    [check] is snapshotted exactly once, after every domain has joined,
    and lands in the merged [stats.check]: the checking hook's counters
    are shared across domains (the cdsspec check cache is domain-safe),
    so summing per-subtree snapshots would double-count. *)
val explore :
  ?config:Explorer.config ->
  ?on_feasible:(C11.Execution.t -> Scheduler.annot list -> Bug.t list) ->
  ?check:(unit -> Explorer.check_counters) ->
  ?jobs:int ->
  ?split_depth:int ->
  (unit -> unit) ->
  Explorer.result
