(** The embedded C11-atomics DSL that test programs are written in.

    A program is an ordinary OCaml function; every call below performs an
    effect that the scheduler intercepts, so threads only make progress
    when the model checker schedules them. Values and locations are plain
    [int]s ([0] doubles as the null pointer, matching the benchmarks'
    C code). These functions must only be called from inside a program run
    by {!Explorer.explore}; calling them elsewhere raises
    [Effect.Unhandled]. *)

type loc = int

type mo = C11.Memory_order.t

(** Specification-layer instrumentation markers, recorded verbatim in the
    run's annotation stream (interpreted by the [cdsspec] library; the
    model checker itself ignores them). *)
type annotation =
  | Method_begin of { name : string; args : int list; obj : int }
      (** [obj] identifies the data-structure instance, so the checker can
          check each object against its own specification (the paper's
          composability, Definition 9) *)
  | Method_end of { ret : int option }
  | Op_define
  | Op_clear
  | Op_clear_define
  | Potential_op of string
  | Op_check of string

(** The requests threads hand to the scheduler. Exposed so the scheduler
    can interpret them; programs use the wrapper functions below. *)
type op =
  | Load of { mo : mo; loc : loc; site : string option }
  | Store of { mo : mo; loc : loc; value : int; site : string option }
  | Cas of { mo : mo; fail_mo : mo; loc : loc; expected : int; desired : int; site : string option }
  | Fetch_add of { mo : mo; loc : loc; delta : int; site : string option }
  | Exchange of { mo : mo; loc : loc; value : int; site : string option }
  | Fence of { mo : mo }
  | Na_load of { loc : loc; site : string option }
  | Na_store of { loc : loc; value : int; site : string option }
  | Alloc of { count : int; init : int option }
  | Spawn of (unit -> unit)
  | Join of int
  | Annotate of annotation
  | Check of { cond : bool; message : string }

type _ Effect.t += Do : op -> int Effect.t

(** Per-domain dispatcher consulted before performing {!Do}, with two
    tiers. [hook]: the scheduler's general hook — commits invisible
    (and, when sound, visible) operations without suspending the fiber,
    returning [None] for operations that need a scheduling decision,
    which fall back to the effect. [rp_*]: the restore-replay value
    feed — while [rp_next < rp_limit] every operation consumes the next
    logged value directly, building no [op] record and entering no
    closure; [Spawn] additionally re-registers its child's closure
    through [rp_spawn]. [rp_limit = 0] and [hook = None] (the defaults)
    mean every operation performs the effect. *)
type dispatcher = {
  mutable hook : (op -> int option) option;
  mutable rp_vals : int array;
  mutable rp_next : int;
  mutable rp_limit : int;
  mutable rp_spawn : int -> (unit -> unit) -> unit;
}

val dispatch : dispatcher Domain.DLS.key

(** {1 Atomic operations} *)

val load : ?site:string -> mo -> loc -> int
val store : ?site:string -> mo -> loc -> int -> unit

(** [cas ?fail_mo mo loc ~expected ~desired] is
    [compare_exchange_strong]: returns [true] iff the observed value
    equalled [expected] and the write was performed. [fail_mo] defaults to
    the strongest load order implied by [mo]. *)
val cas : ?site:string -> ?fail_mo:mo -> mo -> loc -> expected:int -> desired:int -> bool

(** Like {!cas} but also returns the observed value. *)
val cas_val : ?site:string -> ?fail_mo:mo -> mo -> loc -> expected:int -> desired:int -> bool * int

(** [fetch_add mo loc d] returns the previous value. *)
val fetch_add : ?site:string -> mo -> loc -> int -> int

(** [exchange mo loc v] returns the previous value. *)
val exchange : ?site:string -> mo -> loc -> int -> int

val fence : mo -> unit

(** {1 Non-atomic accesses} *)

val na_load : ?site:string -> loc -> int
val na_store : ?site:string -> loc -> int -> unit

(** {1 Memory and threads} *)

(** [malloc ?init n] returns the base of [n] fresh cells. With [init]
    they are initialized non-atomically (like calloc); without, loading
    them before storing is an uninitialized load. *)
val malloc : ?init:int -> int -> loc

val spawn : (unit -> unit) -> int
val join : int -> unit

(** {1 Checks and instrumentation} *)

(** [check cond msg] records an assertion-failure bug when [cond] is
    false (the analogue of CDSChecker's MODEL_ASSERT). *)
val check : bool -> string -> unit

val annotate : annotation -> unit
