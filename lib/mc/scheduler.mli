(** Runs a single execution of a DSL program under a recorded choice
    trace, extending the trace with default choices at new decision
    points. The explorer replays/backtracks over these traces.

    Scheduling decisions optionally carry sleep-set partial-order
    reduction: a thread explored at a decision node is put to sleep for
    the node's later siblings and only woken by a dependent operation, so
    interleavings that commute to an already-explored one are pruned.
    Two operations are dependent when they touch the same location and at
    least one writes (committing a write enables new reads-from options
    for a pending read, so it must wake sleeping readers), or when either
    is a fence (fences read global state — the SC order). *)

(** Canonical state key of a scheduling decision point: the
    execution-graph fingerprint ({!C11.Execution.fingerprint}), the
    sorted sleep set, and the committed action count (a cheap extra
    collision guard). Two decision points with equal keys generate
    byte-identical subtrees: the graph determines every thread's
    continuation, and the sleep set determines which schedules the DFS
    explores from there. The explorer's equivalence pruning cuts a fresh
    decision point whose key matches an already fully-explored one. *)
type prune_key = { fp : int64; sleeping : int list; nacts : int }

(** One decision point. [Sched] carries the schedulable (enabled and not
    sleeping) thread ids at that point; [Choice] is a reads-from or CAS
    branch. The explorer mutates [chosen] when backtracking; explored
    siblings of a [Sched] node ([candidates.(0 .. chosen-1)]) are its
    sleep-set contribution. [state] is the decision's {!prune_key},
    recorded at creation when pruning is on — the explorer marks it
    fully explored when backtracking pops the record. *)
type sched_decision = {
  mutable sched_chosen : int;
  candidates : int array;
  state : prune_key option;
}

type choice_decision = { mutable choice_chosen : int; num : int }

type decision =
  | Sched of sched_decision
  | Choice of choice_decision

val decision_arity : decision -> int
val decision_chosen : decision -> int

(** An instrumentation marker recorded during the run, tagged with the id
    of the thread's most recent atomic operation (the operation an
    ordering-point annotation designates) and the number of actions
    committed when it was recorded. *)
type annot = {
  tid : int;
  annotation : Program.annotation;
  op_action : int option;
  index : int;
}

type config = {
  loop_bound : int;
      (** Max commits of one operation kind per (thread, location): bounds
          spin loops; branches exceeding it are pruned as redundant. *)
  max_actions : int;  (** Backstop on total committed actions per run. *)
  sleep_sets : bool;  (** Enable sleep-set partial-order reduction. *)
  rf_kernel : bool;
      (** Route rf-candidate filtering through the incremental
          {!C11.Rf_kernel} fast path (see {!C11.Execution.create}).
          Graph sets, bug lists and verdicts are identical either way;
          off exists as the escape hatch / differential baseline. *)
  inline_visible : bool;
      (** Commit a visible operation inside the running fiber — no
          effect round-trip — when no other thread is enabled, i.e. when
          the scheduling point it elides is trivial (one candidate, no
          decision recorded, no prune-key check). Value-level choices the
          commit makes (reads-from, CAS direction) are still recorded in
          the trace, so explored graph sets, decision traces, bug lists
          and prune behaviour are identical either way; off exists as
          the escape hatch / differential baseline. *)
  replay_finished : bool;
      (** Re-run the closures of threads that had already finished at
          the restore point of a session restore (the default). The
          engine itself never needs this — graphs, traces, annotations
          and bugs are all restored engine-side — but user closures may
          publish observations through shared mutable state that the
          main closure's replay resets, and only a full re-run
          reconstructs them (the SC-oracle observation pattern). Turn
          it off — skipping each such thread's whole replay — only when
          every consumer of the run (feasible callbacks, verdicts)
          reads engine state alone, as annotation-based
          specification checking does. *)
}

val default_config : config

type outcome =
  | Complete  (** all threads finished (possibly with bugs reported) *)
  | Pruned_loop_bound of { tid : int; loc : int }
  | Pruned_max_actions
  | Pruned_sleep_set  (** redundant interleaving cut by the sleep set *)
  | Pruned_equiv
      (** subtree cut by equivalence pruning: its state key matched an
          already fully-explored decision point, so every execution graph
          below it has been visited *)

type run_result = {
  exec : C11.Execution.t;
  annots : annot list;  (** in recording order *)
  bugs : Bug.t list;  (** built-in detections, in commit order *)
  outcome : outcome;
  switches : int;
      (** Fiber suspensions performed: operations that went through an
          effect round-trip rather than the direct-dispatch hook. Counts
          since the state was created — per run under {!run}, cumulative
          across a session. *)
  inline_ops : int;
      (** Operations committed inside the dispatch hook without
          suspending the fiber (invisible ops on live runs, plus visible
          ops under [inline_visible]). Same accumulation as [switches]. *)
}

(** [run ~config ~trace main] executes [main] as thread 0.

    [pick], when given, decides the initial index of every *fresh*
    decision point (one the replayed [trace] prefix does not cover); the
    chosen index is recorded in [trace] as usual, so the completed trace
    replays the run deterministically. Out-of-range picks are clamped to
    0. Without [pick] fresh points take index 0 — the DFS explorer's
    convention. Sampled indices carry no "explored siblings" meaning, so
    runs with [pick] contribute nothing to sleep sets; the fuzzer
    disables sleep sets entirely (they would mis-prune under random
    choice).

    [prune], when given, is consulted at every *fresh* non-trivial
    scheduling decision point with the point's {!prune_key}; returning
    [true] aborts the run with outcome {!Pruned_equiv} (the caller has
    already fully explored an identical state, so the subtree can only
    repeat known graphs). When it returns [false] the key is recorded in
    the decision's [state] field so the caller can close it on
    backtrack. Only the DFS explorer passes this; it is meaningless
    under [pick]. *)
val run :
  ?pick:(decision -> int) ->
  ?prune:(prune_key -> bool) ->
  config:config ->
  trace:decision C11.Vec.t ->
  (unit -> unit) ->
  run_result

(** {1 Sessions}

    A session runs a whole DFS exploration over one persistent state and
    one arena-backed execution graph. Where {!run} rebuilds everything
    from action zero on every call, {!session_run} restores the
    snapshot captured at the bumped decision's step: the graph rewinds by
    arena-watermark truncation ({!C11.Execution.restore}), scheduler
    scalars come back from O(threads)-sized saved copies, and only the
    program closures are re-run — in a replay mode that feeds each
    thread the logged values its operations returned, skipping all graph
    work (OCaml effect continuations are one-shot, so closures cannot be
    resumed twice; replaying their values is what makes restore sound,
    by the same determinism contract that underpins trace replay).

    Sessions follow the DFS explorer's backtracking contract: between
    two [session_run] calls the caller must have advanced the trace with
    {!Explorer.backtrack} semantics — trailing decisions popped, the now-
    last decision's [chosen] bumped, nothing before it touched.

    The [run_result.exec] a session returns is the session's single
    arena: it is valid until the next [session_run] and must be copied
    ({!C11.Execution.copy}) to be retained beyond that. *)

type session

(** [session_create ?prune ~config ~trace main]: [prune] and [config] as
    in {!run} ([pick] is meaningless under DFS sessions). A non-empty
    [trace] (a donated work-item prefix) replays through the normal
    commit path on the first run. *)
val session_create :
  ?prune:(prune_key -> bool) ->
  config:config ->
  trace:decision C11.Vec.t ->
  (unit -> unit) ->
  session

(** Run the next execution of the search: the first call runs the trace
    from scratch; later calls restore to the backtracked trace's last
    decision and continue from there. *)
val session_run : session -> run_result

(** [(snapshots, restores)] taken/performed so far. *)
val session_counters : session -> int * int

(** The session's arena graph (same object every run). *)
val session_exec : session -> C11.Execution.t
