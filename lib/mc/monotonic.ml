external now : unit -> float = "cdsspec_monotonic_now"
