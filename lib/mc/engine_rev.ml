(* Bump on ANY change to exploration/checking semantics or persisted
   formats: the cross-run result store flushes wholesale when this string
   differs from the one on disk (see lib/store and engine_rev.mli). *)
let current = "cdsspec-engine/8"
