module Vec = C11.Vec

(* ------------------------------------------------------------------ *)
(* Decision prefixes                                                   *)

(* Decision records are mutated by [Explorer.backtrack]; a prefix handed
   to a worker must own its records (and the candidates array, to keep
   the copy self-contained), or domains would race on [sched_chosen]. *)
let copy_decision : Scheduler.decision -> Scheduler.decision = function
  | Scheduler.Sched d ->
    Scheduler.Sched { sched_chosen = d.sched_chosen; candidates = Array.copy d.candidates }
  | Choice d -> Choice { choice_chosen = d.choice_chosen; num = d.num }

(* Enumerate every realizable decision prefix of length <= [depth], in
   DFS (lexicographic) order: run once to materialize the current path,
   snapshot its first [depth] decisions, then truncate the trace to the
   prefix and backtrack *within it*. Each snapshot pins a subtree; the
   subtrees are pairwise disjoint (two prefixes differ at some frozen
   decision) and jointly cover the tree (every run's first [depth]
   decisions are one of them). Costs one full run per prefix. *)
let prefixes ~config ~depth main =
  let trace : Scheduler.decision Vec.t = Vec.create () in
  let acc = ref [] in
  let continue_ = ref true in
  while !continue_ do
    ignore (Scheduler.run ~config ~trace main);
    let k = min depth (Vec.length trace) in
    acc := Array.init k (fun i -> copy_decision (Vec.get trace i)) :: !acc;
    Vec.truncate trace k;
    if not (Explorer.backtrack trace) then continue_ := false
  done;
  List.rev !acc

(* Split-depth heuristic: deepen until there are enough subtrees to keep
   every domain busy (so one slow subtree does not serialize the pool),
   stopping once the count plateaus — at that point every prefix is a
   full path and deepening only re-runs the whole tree. Each probe costs
   one run per prefix, negligible against full exploration. *)
let auto_split ~config ~jobs main =
  let target = 4 * jobs in
  let rec go depth prev =
    let ps = prefixes ~config ~depth main in
    let n = List.length ps in
    if n >= target || depth >= 16 || n = prev then ps else go (depth + 3) n
  in
  go 3 (-1)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)

(* [check] is a single end-of-run snapshot of the (shared) checking-hook
   counters. Per-subtree snapshots of a cache shared across domains are
   cumulative at whatever moment each subtree finished, so summing them
   would double-count: only the final snapshot is correct. *)
let merge ~t0 ~stopped ~check (results : Explorer.result option array) : Explorer.result =
  let zero =
    {
      Explorer.explored = 0;
      feasible = 0;
      pruned_loop_bound = 0;
      pruned_max_actions = 0;
      pruned_sleep_set = 0;
      buggy = 0;
      truncated = stopped;
      time = 0.;
      check;
    }
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let stats = ref zero in
  let bugs = ref [] in
  let first_trace = ref None in
  let first_exec = ref None in
  Array.iter
    (fun r ->
      match r with
      | None -> stats := { !stats with truncated = true }
      | Some (r : Explorer.result) ->
        let s = !stats in
        stats :=
          {
            explored = s.explored + r.stats.explored;
            feasible = s.feasible + r.stats.feasible;
            pruned_loop_bound = s.pruned_loop_bound + r.stats.pruned_loop_bound;
            pruned_max_actions = s.pruned_max_actions + r.stats.pruned_max_actions;
            pruned_sleep_set = s.pruned_sleep_set + r.stats.pruned_sleep_set;
            buggy = s.buggy + r.stats.buggy;
            truncated = s.truncated || r.stats.truncated;
            time = s.time;
            check = s.check;
          };
        List.iter
          (fun b ->
            let key = Bug.key b in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              bugs := b :: !bugs
            end)
          r.bugs;
        if !first_trace = None then begin
          match r.first_buggy_trace with
          | Some _ ->
            first_trace := r.first_buggy_trace;
            first_exec := r.first_buggy_exec
          | None -> ()
        end)
    results;
  {
    stats = { !stats with time = Monotonic.now () -. t0 };
    bugs = List.rev !bugs;
    first_buggy_trace = !first_trace;
    first_buggy_exec = !first_exec;
  }

let explore ?(config = Explorer.default_config) ?on_feasible ?check ?(jobs = 1) ?split_depth main
    =
  if jobs <= 1 then Explorer.explore ~config ?on_feasible ?check main
  else begin
    let t0 = Monotonic.now () in
    let work =
      Array.of_list
        (match split_depth with
        | Some depth -> prefixes ~config:config.scheduler ~depth main
        | None -> auto_split ~config:config.scheduler ~jobs main)
    in
    let n = Array.length work in
    (* Results indexed by prefix: merge order is the DFS order of the
       enumeration, never completion order, so parallel runs report the
       same bug list and first buggy trace as the serial explorer. *)
    let results : Explorer.result option array = Array.make n None in
    let next = Atomic.make 0 in
    let halted = Atomic.make false in
    (* Workers explore whole subtrees with no per-subtree cap; the global
       cap is enforced by [stop], polled after every counted run. *)
    let stop =
      match config.max_executions with
      | None -> None
      | Some m ->
        let counter = Atomic.make 0 in
        Some
          (fun () ->
            if Atomic.fetch_and_add counter 1 + 1 >= m then begin
              Atomic.set halted true;
              true
            end
            else Atomic.get halted)
    in
    let subtree_config = { config with max_executions = None } in
    let worker () =
      let rec loop () =
        if not (Atomic.get halted) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let trace = Vec.create () in
            Array.iter (fun d -> Vec.push trace (copy_decision d)) work.(i);
            let r =
              Explorer.explore_subtree ~config:subtree_config ?on_feasible ?stop ~trace
                ~frozen:(Array.length work.(i))
                main
            in
            results.(i) <- Some r;
            loop ()
          end
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    let final_check =
      match check with Some f -> f () | None -> Explorer.no_check_counters
    in
    merge ~t0 ~stopped:(Atomic.get halted) ~check:final_check results
  end
