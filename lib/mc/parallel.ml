module Vec = C11.Vec

let copy_decision = Explorer.copy_decision

(* ------------------------------------------------------------------ *)
(* Decision prefixes (static split)                                    *)

(* Enumerate every realizable decision prefix of length <= [depth], in
   DFS (lexicographic) order: run once to materialize the current path,
   snapshot its first [depth] decisions, then truncate the trace to the
   prefix and backtrack *within it*. Each snapshot pins a subtree; the
   subtrees are pairwise disjoint (two prefixes differ at some frozen
   decision) and jointly cover the tree (every run's first [depth]
   decisions are one of them). Costs one full run per prefix. *)
let prefixes ~config ~depth main =
  let trace : Scheduler.decision Vec.t = Vec.create () in
  let acc = ref [] in
  let continue_ = ref true in
  while !continue_ do
    ignore (Scheduler.run ~config ~trace main);
    let k = min depth (Vec.length trace) in
    acc := Array.init k (fun i -> copy_decision (Vec.get trace i)) :: !acc;
    Vec.truncate trace k;
    if not (Explorer.backtrack trace) then continue_ := false
  done;
  List.rev !acc

(* Split-depth heuristic: deepen until there are enough subtrees to keep
   every domain busy (so one slow subtree does not serialize the pool),
   stopping once the count plateaus — at that point every prefix is a
   full path and deepening only re-runs the whole tree. Each probe costs
   one run per prefix, negligible against full exploration. *)
let auto_split ~config ~jobs main =
  let target = 4 * jobs in
  let rec go depth prev =
    let ps = prefixes ~config ~depth main in
    let n = List.length ps in
    if n >= target || depth >= 16 || n = prev then ps else go (depth + 3) n
  in
  go 3 (-1)

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)

(* [results] must arrive in DFS (canonical-prefix) order — never
   completion order — so parallel runs report the serial explorer's bug
   list order and first buggy trace. [check] is a single end-of-run
   snapshot of the (shared) checking-hook counters: per-subtree
   snapshots of a cache shared across domains are cumulative at whatever
   moment each subtree finished, so summing them would double-count. *)
let merge ~t0 ~stopped ~check (results : Explorer.result list) : Explorer.result =
  let zero =
    {
      Explorer.explored = 0;
      feasible = 0;
      pruned_loop_bound = 0;
      pruned_max_actions = 0;
      pruned_sleep_set = 0;
      pruned_equiv = 0;
      distinct_graphs = 0;
      buggy = 0;
      truncated = stopped;
      time = 0.;
      minor_words = 0.;
      snapshots = 0;
      restores = 0;
      commits = 0;
      fiber_switches = 0;
      inline_ops = 0;
      rf_queries = 0;
      rf_fast = 0;
      rf_rejected = 0;
      check;
    }
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let graphs : (int64, unit) Hashtbl.t = Hashtbl.create 256 in
  (* Closed states union across subtrees: each work item's closures are
     sound on their own (a popped decision's subtree is fully explored
     regardless of who explored the siblings), so the union is too. *)
  let closed : (Scheduler.prune_key, unit) Hashtbl.t = Hashtbl.create 256 in
  let stats = ref zero in
  let bugs = ref [] in
  let first_trace = ref None in
  let first_exec = ref None in
  List.iter
    (fun (r : Explorer.result) ->
      let s = !stats in
      stats :=
        {
          explored = s.explored + r.stats.explored;
          feasible = s.feasible + r.stats.feasible;
          pruned_loop_bound = s.pruned_loop_bound + r.stats.pruned_loop_bound;
          pruned_max_actions = s.pruned_max_actions + r.stats.pruned_max_actions;
          pruned_sleep_set = s.pruned_sleep_set + r.stats.pruned_sleep_set;
          pruned_equiv = s.pruned_equiv + r.stats.pruned_equiv;
          distinct_graphs = 0 (* set from the union below *);
          buggy = s.buggy + r.stats.buggy;
          truncated = s.truncated || r.stats.truncated;
          time = s.time;
          minor_words = s.minor_words +. r.stats.minor_words;
          snapshots = s.snapshots + r.stats.snapshots;
          restores = s.restores + r.stats.restores;
          commits = s.commits + r.stats.commits;
          fiber_switches = s.fiber_switches + r.stats.fiber_switches;
          inline_ops = s.inline_ops + r.stats.inline_ops;
          rf_queries = s.rf_queries + r.stats.rf_queries;
          rf_fast = s.rf_fast + r.stats.rf_fast;
          rf_rejected = s.rf_rejected + r.stats.rf_rejected;
          check = s.check;
        };
      List.iter (fun fp -> Hashtbl.replace graphs fp ()) r.graphs;
      List.iter (fun k -> Hashtbl.replace closed k ()) r.closed;
      List.iter
        (fun b ->
          let key = Bug.key b in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            bugs := b :: !bugs
          end)
        r.bugs;
      if !first_trace = None then begin
        match r.first_buggy_trace with
        | Some _ ->
          first_trace := r.first_buggy_trace;
          first_exec := r.first_buggy_exec
        | None -> ()
      end)
    results;
  let graph_list =
    List.sort_uniq Int64.compare (Hashtbl.fold (fun k () acc -> k :: acc) graphs [])
  in
  {
    stats =
      {
        !stats with
        distinct_graphs = Hashtbl.length graphs;
        time = Monotonic.now () -. t0;
      };
    bugs = List.rev !bugs;
    first_buggy_trace = !first_trace;
    first_buggy_exec = !first_exec;
    graphs = graph_list;
    closed = Hashtbl.fold (fun k () acc -> k :: acc) closed [];
  }

(* Global execution cap across domains: each worker polls [stop] after
   every counted run; the shared counter trips [halted] exactly once. *)
let make_stop ~halted = function
  | None -> None
  | Some m ->
    let counter = Atomic.make 0 in
    Some
      (fun () ->
        if Atomic.fetch_and_add counter 1 + 1 >= m then begin
          Atomic.set halted true;
          true
        end
        else Atomic.get halted)

(* ------------------------------------------------------------------ *)
(* Static split: enumerate prefixes up front, drain them from a pool.   *)

let explore_static ~config ?on_feasible ?check ?warm ~jobs ~split_depth main =
  let t0 = Monotonic.now () in
  let work =
    Array.of_list
      (match split_depth with
      | Some depth -> prefixes ~config:config.Explorer.scheduler ~depth main
      | None -> auto_split ~config:config.Explorer.scheduler ~jobs main)
  in
  let n = Array.length work in
  (* Results indexed by prefix: merge order is the DFS order of the
     enumeration, never completion order. *)
  let results : Explorer.result option array = Array.make n None in
  let halted = Atomic.make false in
  let stop = make_stop ~halted config.Explorer.max_executions in
  let subtree_config = { config with Explorer.max_executions = None } in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      if not (Atomic.get halted) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let trace = Vec.create () in
          Array.iter (fun d -> Vec.push trace (copy_decision d)) work.(i);
          let r =
            Explorer.explore_subtree ~config:subtree_config ?on_feasible ?stop ?warm ~trace
              ~frozen:(Array.length work.(i))
              main
          in
          results.(i) <- Some r;
          loop ()
        end
      end
    in
    loop ()
  in
  let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  let final_check = match check with Some f -> f () | None -> Explorer.no_check_counters in
  let stopped = Atomic.get halted in
  (* A None slot means the cap halted the pool before that subtree ran:
     the merged result is truncated either way. *)
  let ordered =
    Array.to_list results |> List.filter_map (fun r -> r)
  in
  merge ~t0 ~stopped ~check:final_check ordered

(* ------------------------------------------------------------------ *)
(* Work stealing                                                       *)

(* A unit of work: a frozen decision prefix pinning one subtree, plus its
   canonical [key] — the chosen-index path of the prefix, which is the
   subtree's DFS position. Items are created by donation ([on_split] in
   the subtree explorer): a busy domain carves off the shallowest
   unexplored sibling branches of its current path whenever some domain
   is starving. Because the donor freezes the donated level, everything
   it subsequently explores or donates is DFS-before the donated
   subtree; item intervals therefore partition the DFS order, and
   lexicographic key order *is* DFS order — merging results sorted by
   key reproduces the serial explorer's bug order exactly. *)
type work_item = { key : int list; prefix : Scheduler.decision array; frozen : int }

let explore_steal ~config ?on_feasible ?check ?warm ~jobs main =
  let t0 = Monotonic.now () in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let queue : work_item Queue.t = Queue.create () in
  let active = ref 0 in
  let finished = ref false in
  let results : (int list * Explorer.result) list ref = ref [] in
  (* Domains blocked waiting for work. Read lock-free by busy donors:
     [want_split] must be cheap enough to poll after every backtrack. *)
  let waiting = Atomic.make 0 in
  let halted = Atomic.make false in
  let stop = make_stop ~halted config.Explorer.max_executions in
  let subtree_config = { config with Explorer.max_executions = None } in
  Queue.push { key = []; prefix = [||]; frozen = 0 } queue;
  let want_split () = Atomic.get waiting > 0 && not (Atomic.get halted) in
  let give ~key ~prefix ~frozen =
    Mutex.lock mutex;
    Queue.push { key; prefix; frozen } queue;
    Condition.signal cond;
    Mutex.unlock mutex
  in
  let take () =
    Mutex.lock mutex;
    let rec wait () =
      if !finished then begin
        Mutex.unlock mutex;
        None
      end
      else
        match Queue.take_opt queue with
        | Some item ->
          incr active;
          Mutex.unlock mutex;
          Some item
        | None ->
          if !active = 0 then begin
            finished := true;
            Condition.broadcast cond;
            Mutex.unlock mutex;
            None
          end
          else begin
            Atomic.incr waiting;
            Condition.wait cond mutex;
            Atomic.decr waiting;
            wait ()
          end
    in
    wait ()
  in
  let finish key r =
    Mutex.lock mutex;
    (match r with Some r -> results := (key, r) :: !results | None -> ());
    decr active;
    if !active = 0 && Queue.is_empty queue then begin
      finished := true;
      Condition.broadcast cond
    end;
    Mutex.unlock mutex
  in
  let worker () =
    let rec loop () =
      match take () with
      | None -> ()
      | Some item ->
        (* After a global halt, drain remaining items without exploring
           them — the merged result is truncated either way. *)
        if Atomic.get halted then finish item.key None
        else begin
          let trace = Vec.create () in
          Array.iter (fun d -> Vec.push trace (copy_decision d)) item.prefix;
          let r =
            Explorer.explore_subtree ~config:subtree_config ?on_feasible ?stop ?warm ~want_split
              ~on_split:give ~trace ~frozen:item.frozen main
          in
          finish item.key (Some r)
        end;
        loop ()
    in
    loop ()
  in
  let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  let final_check = match check with Some f -> f () | None -> Explorer.no_check_counters in
  let ordered =
    List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) !results |> List.map snd
  in
  merge ~t0 ~stopped:(Atomic.get halted) ~check:final_check ordered

let explore ?(config = Explorer.default_config) ?on_feasible ?check ?warm ?(jobs = 1)
    ?split_depth ?(strategy = `Steal) main =
  if jobs <= 1 then Explorer.explore ~config ?on_feasible ?check ?warm main
  else
    match strategy with
    | `Static -> explore_static ~config ?on_feasible ?check ?warm ~jobs ~split_depth main
    | `Steal -> explore_steal ~config ?on_feasible ?check ?warm ~jobs main

(* ------------------------------------------------------------------ *)
(* Resident pool                                                       *)

(* A long-lived domain pool for callers that process many independent
   explorations over time (the serve daemon shards client jobs across
   one of these instead of spawning domains per request). Tasks are
   plain thunks drained FIFO; a task that raises is contained — the
   exception is reported on stderr and the worker moves on, so one bad
   job can never wedge the pool. *)

type pool = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  p_queue : (unit -> unit) Queue.t;
  mutable p_stop : bool;
  mutable p_domains : unit Domain.t array;
  p_size : int;
}

let pool_worker p () =
  let rec loop () =
    Mutex.lock p.p_mutex;
    let rec next () =
      match Queue.take_opt p.p_queue with
      | Some task ->
        Mutex.unlock p.p_mutex;
        Some task
      | None ->
        if p.p_stop then begin
          Mutex.unlock p.p_mutex;
          None
        end
        else begin
          Condition.wait p.p_cond p.p_mutex;
          next ()
        end
    in
    match next () with
    | None -> ()
    | Some task ->
      (try task ()
       with exn ->
         Printf.eprintf "Mc.Parallel.pool: task raised %s\n%!" (Printexc.to_string exn));
      loop ()
  in
  loop ()

let pool_create ~jobs =
  let jobs = max 1 jobs in
  let p =
    {
      p_mutex = Mutex.create ();
      p_cond = Condition.create ();
      p_queue = Queue.create ();
      p_stop = false;
      p_domains = [||];
      p_size = jobs;
    }
  in
  (* Workers only touch the mutex/cond/queue fields, all fully
     initialized above — filling [p_domains] afterwards is safe. *)
  p.p_domains <- Array.init jobs (fun _ -> Domain.spawn (fun () -> pool_worker p ()));
  p

let pool_size p = p.p_size

let pool_submit p task =
  Mutex.lock p.p_mutex;
  if p.p_stop then begin
    Mutex.unlock p.p_mutex;
    invalid_arg "Mc.Parallel.pool_submit: pool is shut down"
  end
  else begin
    Queue.push task p.p_queue;
    Condition.signal p.p_cond;
    Mutex.unlock p.p_mutex
  end

let pool_shutdown p =
  Mutex.lock p.p_mutex;
  p.p_stop <- true;
  Condition.broadcast p.p_cond;
  Mutex.unlock p.p_mutex;
  Array.iter Domain.join p.p_domains
