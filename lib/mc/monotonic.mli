(** Monotonic wall clock. Only differences are meaningful: the epoch is
    arbitrary (boot time on Linux), but the clock never jumps backwards
    or steps with NTP adjustments, so elapsed-time measurements
    ([now () -. t0]) are reliable, unlike [Unix.gettimeofday]. *)

val now : unit -> float
