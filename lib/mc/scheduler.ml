module Execution = C11.Execution
module Vec = C11.Vec

(* The canonical state key of a (fresh, scheduling) decision point: the
   execution-graph fingerprint plus the sleeping-thread set. Two decision
   points with equal keys have byte-identical subtrees — the graph
   determines every thread's continuation (thread code is deterministic
   in the values its operations returned, all of which the fingerprint
   digests), and the sleep set determines which schedules the DFS will
   bother exploring from here. The explorer prunes a fresh decision
   point whose key matches an already fully-explored one. *)
type prune_key = { fp : int64; sleeping : int list; nacts : int }

type sched_decision = {
  mutable sched_chosen : int;
  candidates : int array;
  state : prune_key option;  (* key at creation; None under replay-only construction *)
}

type choice_decision = { mutable choice_chosen : int; num : int }

type decision =
  | Sched of sched_decision
  | Choice of choice_decision

let decision_arity = function
  | Sched { candidates; _ } -> Array.length candidates
  | Choice { num; _ } -> num

let decision_chosen = function
  | Sched { sched_chosen; _ } -> sched_chosen
  | Choice { choice_chosen; _ } -> choice_chosen

type annot = {
  tid : int;
  annotation : Program.annotation;
  op_action : int option;
  index : int;
}

type config = {
  loop_bound : int;
  max_actions : int;
  sleep_sets : bool;
}

let default_config = { loop_bound = 8; max_actions = 4000; sleep_sets = true }

type outcome =
  | Complete
  | Pruned_loop_bound of { tid : int; loc : int }
  | Pruned_max_actions
  | Pruned_sleep_set
  | Pruned_equiv

type run_result = {
  exec : Execution.t;
  annots : annot list;
  bugs : Bug.t list;
  outcome : outcome;
}

exception Prune of outcome

type status =
  | Not_started of (unit -> unit)
  | Paused of Program.op * (int, unit) Effect.Deep.continuation
  | Finished

(* What a committed step touched, for sleep-set wake-ups. *)
type footprint =
  | Mem of { loc : int; write : bool }
  | Global  (* fences: they read/extend the SC order *)
  | Pure

type state = {
  config : config;
  exec : Execution.t;
  mutable threads : status array;
  mutable nthreads : int;
  trace : decision Vec.t;
  pick : (decision -> int) option;  (* initial choice at *fresh* decision points *)
  prune : (prune_key -> bool) option;  (* equivalence pruning at fresh sched points *)
  mutable cursor : int;
  annots : annot Vec.t;
  mutable bugs : Bug.t list;  (* reverse commit order *)
  mutable last_atomic : int option array;
  op_counts : (string, int) Hashtbl.t;  (* per (tid, site|loc, kind) commit counts *)
  mutable step_footprints : footprint list;  (* footprints of the current step *)
}

let get_status st tid = st.threads.(tid)

let set_status st tid s = st.threads.(tid) <- s

let add_thread st status =
  let tid = st.nthreads in
  if tid >= Array.length st.threads then begin
    let threads = Array.make (2 * (tid + 1)) Finished in
    Array.blit st.threads 0 threads 0 st.nthreads;
    st.threads <- threads;
    let last = Array.make (2 * (tid + 1)) None in
    Array.blit st.last_atomic 0 last 0 st.nthreads;
    st.last_atomic <- last
  end;
  st.threads.(tid) <- status;
  st.nthreads <- tid + 1;
  tid

let record_problems st problems =
  List.iter
    (fun p ->
      let bug =
        match p with
        | Execution.Data_race { first; second } -> Bug.Data_race { first; second }
        | Execution.Uninitialized_load a -> Bug.Uninitialized_load a
      in
      st.bugs <- bug :: st.bugs)
    problems

(* The initial index of a fresh decision point: 0 for the DFS explorer,
   or whatever the [pick] hook samples (the fuzzer's biased PRNG).
   Out-of-range picks are clamped to 0 so a replayed index list shrunk
   by trace minimization can never crash the run. *)
let initial_choice st d =
  match st.pick with
  | None -> 0
  | Some f ->
    let i = f d in
    if i < 0 || i >= decision_arity d then 0 else i

(* Decision points: consume the replayed prefix, then extend with the
   default choice. Trivial (single-alternative) points are not recorded. *)
let choose st num =
  if num <= 1 then 0
  else if st.cursor < Vec.length st.trace then begin
    match Vec.get st.trace st.cursor with
    | Choice d ->
      (* replay must be deterministic: same prefix, same alternatives *)
      assert (d.num = num);
      st.cursor <- st.cursor + 1;
      d.choice_chosen
    | Sched _ -> assert false
  end
  else begin
    let d = { choice_chosen = 0; num } in
    d.choice_chosen <- initial_choice st (Choice d);
    Vec.push st.trace (Choice d);
    st.cursor <- st.cursor + 1;
    d.choice_chosen
  end

(* Scheduling decision over candidate tids; returns (chosen tid, sleep
   contribution of already-explored siblings). [sleeping] is the current
   (sorted) sleep set — together with the graph fingerprint it keys the
   state for equivalence pruning at *fresh* decision points. *)
let choose_sched st sleeping candidates =
  if Array.length candidates = 1 then (candidates.(0), [])
  else begin
    let d =
      if st.cursor < Vec.length st.trace then begin
        match Vec.get st.trace st.cursor with
        | Sched d ->
          assert (Array.length d.candidates = Array.length candidates);
          d
        | Choice _ -> assert false
      end
      else begin
        let state =
          match st.prune with
          | None -> None
          | Some seen ->
            let key =
              {
                fp = Execution.fingerprint st.exec;
                sleeping;
                nacts = Execution.num_actions st.exec;
              }
            in
            if seen key then raise (Prune Pruned_equiv);
            Some key
        in
        let d = { sched_chosen = 0; candidates; state } in
        d.sched_chosen <- initial_choice st (Sched d);
        Vec.push st.trace (Sched d);
        d
      end
    in
    st.cursor <- st.cursor + 1;
    (* Earlier siblings are a sleep-set contribution only under DFS, where
       [sched_chosen > 0] means they were already explored. A sampled
       index says nothing about its siblings, so fuzz runs contribute
       nothing (they disable sleep sets anyway). *)
    let slept =
      if st.pick <> None then []
      else Array.to_list (Array.sub d.candidates 0 d.sched_chosen)
    in
    (d.candidates.(d.sched_chosen), slept)
  end

let kind_tag : Program.op -> int = function
  | Load _ -> 0
  | Store _ -> 1
  | Cas _ -> 2
  | Fetch_add _ -> 3
  | Exchange _ -> 4
  | Fence _ -> 5
  | _ -> 6

(* Bound commits per static operation: keyed by the site label when the
   program supplies one (one counter per source-level operation), falling
   back to (location, op-kind). This is what makes spin loops finite. *)
let op_site : Program.op -> string option = function
  | Load { site; _ }
  | Store { site; _ }
  | Cas { site; _ }
  | Fetch_add { site; _ }
  | Exchange { site; _ }
  | Na_load { site; _ }
  | Na_store { site; _ } ->
    site
  | Fence _ | Alloc _ | Spawn _ | Join _ | Annotate _ | Check _ -> None

let bump_op_count st tid loc op =
  let key =
    match op_site op with
    | Some site -> Printf.sprintf "%d/%s/%d" tid site (kind_tag op)
    | None -> Printf.sprintf "%d@%d/%d" tid loc (kind_tag op)
  in
  let n = (match Hashtbl.find_opt st.op_counts key with Some n -> n | None -> 0) + 1 in
  Hashtbl.replace st.op_counts key n;
  if n > st.config.loop_bound then raise (Prune (Pruned_loop_bound { tid; loc }));
  if Execution.num_actions st.exec > st.config.max_actions then raise (Prune Pruned_max_actions)

let note_atomic st tid (a : C11.Action.t) = st.last_atomic.(tid) <- Some a.id

let add_footprint st f = st.step_footprints <- f :: st.step_footprints

(* The footprint a *pending* operation will have, for wake-up tests.
   CAS counts as a write (it may become one). *)
let op_footprint : Program.op -> footprint = function
  | Load { loc; _ } | Na_load { loc; _ } -> Mem { loc; write = false }
  | Store { loc; _ } | Cas { loc; _ } | Fetch_add { loc; _ } | Exchange { loc; _ } | Na_store { loc; _ }
    ->
    Mem { loc; write = true }
  | Fence _ -> Global
  | Alloc _ | Spawn _ | Join _ | Annotate _ | Check _ -> Pure

(* Same-location operations are dependent when at least one writes: two
   writes because modification order is the commit order, and read/write
   pairs because committing the write first enables a new reads-from
   option for the read — a sleeping reader MUST be woken by a write or
   the execution in which it reads the new value is lost. Only read/read
   pairs commute. *)
let dependent f1 f2 =
  match f1, f2 with
  | Pure, _ | _, Pure -> false
  | Global, _ | _, Global -> true
  | Mem a, Mem b -> a.loc = b.loc && (a.write || b.write)

(* Execute a visible operation for [tid] and return the value to resume
   the thread with. *)
let exec_visible st tid (op : Program.op) =
  add_footprint st (op_footprint op);
  (match op with
  | Load { loc; _ } | Store { loc; _ } | Cas { loc; _ } | Fetch_add { loc; _ } | Exchange { loc; _ } ->
    bump_op_count st tid loc op
  (* fences are not bounded: a loop always contains a bounded load/RMW,
     and straight-line code may legitimately fence often *)
  | Fence _ | Join _ | Na_load _ | Na_store _ | Alloc _ | Spawn _ | Annotate _ | Check _ -> ());
  match op with
  | Program.Load { mo; loc; site } ->
    let candidates = Execution.read_candidates st.exec ~tid ~mo ~loc in
    let rf =
      match candidates with
      | [] -> None
      | l -> Some (List.nth l (choose st (List.length l)))
    in
    let a, problems = Execution.commit_load st.exec ~tid ~mo ~loc ~rf ?site () in
    record_problems st problems;
    note_atomic st tid a;
    (match a.read_value with Some v -> v | None -> 0)
  | Store { mo; loc; value; site } ->
    let a, problems = Execution.commit_store st.exec ~tid ~mo ~loc ~value ?site () in
    record_problems st problems;
    note_atomic st tid a;
    0
  | Cas { mo; fail_mo; loc; expected; desired; site } ->
    let candidates = Execution.read_candidates st.exec ~tid ~mo:fail_mo ~loc in
    (match candidates with
    | [] ->
      (* CAS on an uninitialized location: like an uninitialized load *)
      let a, problems = Execution.commit_load st.exec ~tid ~mo:fail_mo ~loc ~rf:None ?site () in
      record_problems st problems;
      note_atomic st tid a;
      0
    | newest :: _ ->
      let can_succeed = newest.C11.Action.written_value = Some expected in
      let fail_candidates =
        List.filter (fun (w : C11.Action.t) -> w.written_value <> Some expected) candidates
      in
      let options =
        (if can_succeed then [ `Success ] else []) @ List.map (fun w -> `Fail w) fail_candidates
      in
      let option = List.nth options (choose st (List.length options)) in
      (match option with
      | `Success ->
        let a, problems = Execution.commit_rmw st.exec ~tid ~mo ~loc ~value:desired ?site () in
        record_problems st problems;
        note_atomic st tid a;
        (match a.read_value with Some v -> v | None -> 0)
      | `Fail w ->
        let a, problems = Execution.commit_load st.exec ~tid ~mo:fail_mo ~loc ~rf:(Some w) ?site () in
        record_problems st problems;
        note_atomic st tid a;
        (match a.read_value with Some v -> v | None -> 0)))
  | Fetch_add { mo; loc; delta; site } ->
    (match Execution.rmw_candidate st.exec ~loc with
    | None ->
      let a, problems = Execution.commit_load st.exec ~tid ~mo ~loc ~rf:None ?site () in
      record_problems st problems;
      note_atomic st tid a;
      0
    | Some newest ->
      let old = match newest.written_value with Some v -> v | None -> 0 in
      let a, problems = Execution.commit_rmw st.exec ~tid ~mo ~loc ~value:(old + delta) ?site () in
      record_problems st problems;
      note_atomic st tid a;
      old)
  | Exchange { mo; loc; value; site } ->
    (match Execution.rmw_candidate st.exec ~loc with
    | None ->
      let a, problems = Execution.commit_load st.exec ~tid ~mo ~loc ~rf:None ?site () in
      record_problems st problems;
      note_atomic st tid a;
      let a', problems' = Execution.commit_store st.exec ~tid ~mo ~loc ~value ?site () in
      record_problems st problems';
      note_atomic st tid a';
      0
    | Some newest ->
      let old = match newest.written_value with Some v -> v | None -> 0 in
      let a, problems = Execution.commit_rmw st.exec ~tid ~mo ~loc ~value ?site () in
      record_problems st problems;
      note_atomic st tid a;
      old)
  | Fence { mo } ->
    let a = Execution.commit_fence st.exec ~tid ~mo in
    note_atomic st tid a;
    0
  | Join target ->
    ignore (Execution.commit_join st.exec ~tid ~target);
    0
  | Na_load _ | Na_store _ | Alloc _ | Spawn _ | Annotate _ | Check _ ->
    invalid_arg "exec_visible: invisible op"

(* Invisible operations commit immediately when the thread reaches them:
   they cannot observe other threads' scheduling (see DESIGN.md), so they
   are not decision points — but their memory footprints still count for
   sleep-set wake-ups. *)
let exec_invisible st tid (op : Program.op) =
  if Execution.num_actions st.exec > st.config.max_actions then raise (Prune Pruned_max_actions);
  add_footprint st (op_footprint op);
  match op with
  | Program.Na_load { loc; site } ->
    let a, problems = Execution.commit_na_load st.exec ~tid ~loc ?site () in
    record_problems st problems;
    (match a.read_value with Some v -> v | None -> 0)
  | Na_store { loc; value; site } ->
    let _, problems = Execution.commit_na_store st.exec ~tid ~loc ~value ?site () in
    record_problems st problems;
    0
  | Alloc { count; init } -> Execution.alloc st.exec ~tid ~count ~init
  | Spawn f ->
    let child = add_thread st (Not_started f) in
    ignore (Execution.commit_create st.exec ~tid ~child);
    child
  | Annotate annotation ->
    Vec.push st.annots
      {
        tid;
        annotation;
        op_action = st.last_atomic.(tid);
        index = Execution.num_actions st.exec;
      };
    0
  | Check { cond; message } ->
    if not cond then st.bugs <- Bug.Assertion_failure { tid; message } :: st.bugs;
    0
  | Load _ | Store _ | Cas _ | Fetch_add _ | Exchange _ | Fence _ | Join _ ->
    invalid_arg "exec_invisible: visible op"

let is_invisible : Program.op -> bool = function
  | Program.Na_load _ | Na_store _ | Alloc _ | Spawn _ | Annotate _ | Check _ -> true
  | Load _ | Store _ | Cas _ | Fetch_add _ | Exchange _ | Fence _ | Join _ -> false

let handler st tid =
  {
    Effect.Deep.retc =
      (fun () ->
        ignore (Execution.commit_finish st.exec ~tid);
        set_status st tid Finished);
    exnc =
      (fun e ->
        (match e with
        | Prune _ -> raise e
        | _ ->
          st.bugs <-
            Bug.Assertion_failure { tid; message = "uncaught exception: " ^ Printexc.to_string e }
            :: st.bugs;
          ignore (Execution.commit_finish st.exec ~tid);
          set_status st tid Finished));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Program.Do op ->
          Some (fun (k : (a, unit) Effect.Deep.continuation) -> set_status st tid (Paused (op, k)))
        | _ -> None);
  }

(* Run thread [tid] until it pauses at a visible operation or finishes,
   committing any invisible operations it passes through. *)
let rec drain st tid =
  match get_status st tid with
  | Paused (op, k) when is_invisible op ->
    let v = exec_invisible st tid op in
    Effect.Deep.continue k v;
    drain st tid
  | Not_started _ | Paused _ | Finished -> ()

let start_thread st tid f =
  ignore (Execution.commit_start st.exec ~tid);
  Effect.Deep.match_with f () (handler st tid);
  drain st tid

(* One scheduling step: start the thread or commit its pending visible
   operation, then run it to its next visible operation. Returns the
   footprints of everything it committed. *)
let step st tid =
  st.step_footprints <- [];
  (match get_status st tid with
  | Not_started f -> start_thread st tid f
  | Paused (op, k) ->
    let v = exec_visible st tid op in
    Effect.Deep.continue k v;
    drain st tid
  | Finished -> invalid_arg "step: finished thread");
  st.step_footprints

let is_enabled st tid =
  match get_status st tid with
  | Not_started _ -> true
  | Finished -> false
  | Paused (Program.Join target, _) ->
    target < st.nthreads && (match get_status st target with Finished -> true | _ -> false)
  | Paused _ -> true

let enabled_threads st =
  let out = ref [] in
  for tid = st.nthreads - 1 downto 0 do
    if is_enabled st tid then out := tid :: !out
  done;
  !out

let all_finished st =
  let ok = ref true in
  for tid = 0 to st.nthreads - 1 do
    match get_status st tid with Finished -> () | _ -> ok := false
  done;
  !ok

(* A sleeping thread stays asleep while every footprint of the committed
   step is independent of its pending operation. Threads without a known
   pending operation (not yet started) are conservatively woken. *)
let keep_asleep st footprints tid =
  match get_status st tid with
  | Paused (op, _) ->
    let f = op_footprint op in
    List.for_all (fun g -> not (dependent g f)) footprints
  | Not_started _ | Finished -> false

let run ?pick ?prune ~config ~trace main =
  let st =
    {
      config;
      exec = Execution.create ();
      threads = Array.make 4 Finished;
      nthreads = 0;
      trace;
      pick;
      prune;
      cursor = 0;
      annots = Vec.create ();
      bugs = [];
      last_atomic = Array.make 4 None;
      op_counts = Hashtbl.create 64;
      step_footprints = [];
    }
  in
  ignore (add_thread st (Not_started main));
  let outcome =
    try
      let rec loop sleep =
        if all_finished st then Complete
        else
          match enabled_threads st with
          | [] ->
            let blocked = ref [] in
            for tid = st.nthreads - 1 downto 0 do
              match get_status st tid with Finished -> () | _ -> blocked := tid :: !blocked
            done;
            st.bugs <- Bug.Deadlock { blocked_tids = !blocked } :: st.bugs;
            Complete
          | enabled ->
            let avail = List.filter (fun t -> not (List.mem t sleep)) enabled in
            if avail = [] then raise (Prune Pruned_sleep_set)
            else begin
              let tid, slept_siblings = choose_sched st sleep (Array.of_list avail) in
              let footprints = step st tid in
              let sleep =
                if not config.sleep_sets then []
                else
                  List.filter (keep_asleep st footprints)
                    (List.sort_uniq compare (slept_siblings @ sleep))
              in
              loop sleep
            end
      in
      loop []
    with Prune reason -> reason
  in
  { exec = st.exec; annots = Vec.to_list st.annots; bugs = List.rev st.bugs; outcome }
