module Execution = C11.Execution
module Vec = C11.Vec

(* The canonical state key of a (fresh, scheduling) decision point: the
   execution-graph fingerprint plus the sleeping-thread set. Two decision
   points with equal keys have byte-identical subtrees — the graph
   determines every thread's continuation (thread code is deterministic
   in the values its operations returned, all of which the fingerprint
   digests), and the sleep set determines which schedules the DFS will
   bother exploring from here. The explorer prunes a fresh decision
   point whose key matches an already fully-explored one. *)
type prune_key = { fp : int64; sleeping : int list; nacts : int }

type sched_decision = {
  mutable sched_chosen : int;
  candidates : int array;
  state : prune_key option;  (* key at creation; None under replay-only construction *)
}

type choice_decision = { mutable choice_chosen : int; num : int }

type decision =
  | Sched of sched_decision
  | Choice of choice_decision

let decision_arity = function
  | Sched { candidates; _ } -> Array.length candidates
  | Choice { num; _ } -> num

let decision_chosen = function
  | Sched { sched_chosen; _ } -> sched_chosen
  | Choice { choice_chosen; _ } -> choice_chosen

type annot = {
  tid : int;
  annotation : Program.annotation;
  op_action : int option;
  index : int;
}

type config = {
  loop_bound : int;
  max_actions : int;
  sleep_sets : bool;
  rf_kernel : bool;
  inline_visible : bool;
  replay_finished : bool;
}

let default_config =
  {
    loop_bound = 8;
    max_actions = 4000;
    sleep_sets = true;
    rf_kernel = true;
    inline_visible = true;
    replay_finished = true;
  }

type outcome =
  | Complete
  | Pruned_loop_bound of { tid : int; loc : int }
  | Pruned_max_actions
  | Pruned_sleep_set
  | Pruned_equiv

type run_result = {
  exec : Execution.t;
  annots : annot list;
  bugs : Bug.t list;
  outcome : outcome;
  switches : int;
  inline_ops : int;
}

exception Prune of outcome


type status =
  | Not_started of (unit -> unit)
  | Paused of Program.op * (int, unit) Effect.Deep.continuation
  | Finished

(* What a committed step touched, for sleep-set wake-ups. *)
type footprint =
  | Mem of { loc : int; write : bool }
  | Global  (* fences: they read/extend the SC order *)
  | Pure

(* Per-(tid, site|loc, kind) commit counters for the loop bound. Counter
   cells are [int ref]s found through an interned-key table (no string
   formatting on the hot path), and every bump is journalled so a
   session restore can rewind the counts to a snapshot by decrementing
   back down the journal. Cells are stable across table growth, which is
   what keeps journal entries valid. *)
type counters = {
  by_site : (string, int ref array ref) Hashtbl.t;  (* site -> cells indexed tid*8+kind *)
  by_loc : (int, int ref array ref) Hashtbl.t;  (* loc -> cells indexed tid*8+kind *)
  cj : int ref Vec.t;  (* journal: one entry per bump, newest last *)
}

let counters_create () = { by_site = Hashtbl.create 64; by_loc = Hashtbl.create 16; cj = Vec.create () }

let counter_cell table key idx =
  let cells =
    match Hashtbl.find_opt table key with
    | Some c -> c
    | None ->
      let c = ref [||] in
      Hashtbl.add table key c;
      c
  in
  let n = Array.length !cells in
  if idx >= n then begin
    let grown = Array.init (idx + 8) (fun i -> if i < n then !cells.(i) else ref 0) in
    cells := grown
  end;
  !cells.(idx)

(* Scheduler scalars + arena watermark captured at a decision's step (or,
   for decisions recorded by hook-inlined operations, just before the
   inlined operation commits — see [capture_inline]). Defined here, ahead
   of the session machinery that stores them, because the dispatch hook
   captures mid-step snapshots itself. *)
type snapshot = {
  s_mark : Execution.mark;
  s_nthreads : int;
  s_stat : int array;  (* 0 = not started, 1 = paused, 2 = finished *)
  s_vcount : int array;  (* values consumed per thread *)
  s_sleep : int;  (* sleep mask at the step's start *)
  s_bugs : Bug.t list;
  s_nannots : int;
  s_last_atomic : int option array;
  s_opc : int;  (* counter-journal length *)
}

type state = {
  config : config;
  exec : Execution.t;
  mutable threads : status array;
  mutable nthreads : int;
  trace : decision Vec.t;
  pick : (decision -> int) option;  (* initial choice at *fresh* decision points *)
  prune : (prune_key -> bool) option;  (* equivalence pruning at fresh sched points *)
  mutable cursor : int;
  annots : annot Vec.t;
  mutable bugs : Bug.t list;  (* reverse commit order *)
  mutable last_atomic : int option array;
  counters : counters;
  mutable values : int Vec.t array;  (* per-thread log of the values ops returned *)
  mutable parents : int array;  (* spawning thread of each tid (-1 for main) *)
  mutable step_footprints : footprint list;  (* footprints of the current step *)
  mutable replaying : bool;  (* inside [replay_threads]: feed logged values, no commits *)
  mutable cur_tid : int;  (* thread whose fiber the scheduler is currently driving *)
  mutable hook : Program.op -> int option;  (* direct-dispatch hook, closed over this state *)
  mutable n_switches : int;  (* fiber suspensions: operations that performed an effect *)
  mutable n_inline : int;  (* operations committed inside the hook, no effect round-trip *)
  (* Session plumbing for mid-step snapshots: when the hook inlines a
     visible operation that records decisions, it captures and files the
     snapshot itself, so a later backtrack restores to the operation
     rather than to its (possibly much earlier) enclosing step. *)
  mutable s_snaps : snapshot Vec.t option;  (* the session's snapshot store *)
  mutable step_snap : snapshot option;  (* current step's start snapshot *)
  mutable step_sleep0 : int;  (* sleep mask at the current step's start *)
  mutable hook_c0 : int;  (* first hook-snapshotted decision index this step *)
  mutable n_hook_snaps : int;
}

let get_status st tid = st.threads.(tid)

let set_status st tid s = st.threads.(tid) <- s

let add_thread st status =
  let tid = st.nthreads in
  if tid >= Sys.int_size - 2 then invalid_arg "add_thread: too many threads for bitmask sleep sets";
  if tid >= Array.length st.threads then begin
    let threads = Array.make (2 * (tid + 1)) Finished in
    Array.blit st.threads 0 threads 0 st.nthreads;
    st.threads <- threads;
    let last = Array.make (2 * (tid + 1)) None in
    Array.blit st.last_atomic 0 last 0 st.nthreads;
    st.last_atomic <- last
  end;
  if tid >= Array.length st.values then begin
    let n = Array.length st.values in
    let values = Array.init (2 * (tid + 1)) (fun i -> if i < n then st.values.(i) else Vec.create ()) in
    st.values <- values
  end;
  if tid >= Array.length st.parents then begin
    let parents = Array.make (2 * (tid + 1)) (-1) in
    Array.blit st.parents 0 parents 0 st.nthreads;
    st.parents <- parents
  end;
  st.threads.(tid) <- status;
  st.nthreads <- tid + 1;
  tid

let record_problems st problems =
  List.iter
    (fun p ->
      let bug =
        match p with
        | Execution.Data_race { first; second } -> Bug.Data_race { first; second }
        | Execution.Uninitialized_load a -> Bug.Uninitialized_load a
      in
      st.bugs <- bug :: st.bugs)
    problems

(* The initial index of a fresh decision point: 0 for the DFS explorer,
   or whatever the [pick] hook samples (the fuzzer's biased PRNG).
   Out-of-range picks are clamped to 0 so a replayed index list shrunk
   by trace minimization can never crash the run. *)
let initial_choice st d =
  match st.pick with
  | None -> 0
  | Some f ->
    let i = f d in
    if i < 0 || i >= decision_arity d then 0 else i

(* Decision points: consume the replayed prefix, then extend with the
   default choice. Trivial (single-alternative) points are not recorded. *)
let choose st num =
  if num <= 1 then 0
  else if st.cursor < Vec.length st.trace then begin
    match Vec.get st.trace st.cursor with
    | Choice d ->
      (* replay must be deterministic: same prefix, same alternatives *)
      assert (d.num = num);
      st.cursor <- st.cursor + 1;
      d.choice_chosen
    | Sched _ -> assert false
  end
  else begin
    let d = { choice_chosen = 0; num } in
    d.choice_chosen <- initial_choice st (Choice d);
    Vec.push st.trace (Choice d);
    st.cursor <- st.cursor + 1;
    d.choice_chosen
  end

(* Thread sets on the scheduling hot path (sleep sets, available
   candidates) are int bitmasks over tids — [add_thread] bounds tids to
   the word size. Bits ascend with tids, so iterating bits in order
   reproduces the sorted lists the decision records and prune keys
   expose. *)
let mask_to_list nthreads m =
  let out = ref [] in
  for tid = nthreads - 1 downto 0 do
    if m land (1 lsl tid) <> 0 then out := tid :: !out
  done;
  !out

(* Scheduling decision over the available-candidate mask [avail] (with
   [nav] >= 2 set bits; single-candidate steps never reach here); returns
   (chosen tid, mask of already-explored siblings to put to sleep).
   [sleep] is the current sleep mask — together with the graph
   fingerprint it keys the state for equivalence pruning at *fresh*
   decision points. *)
let choose_sched st ~sleep ~avail ~nav =
  let d =
    if st.cursor < Vec.length st.trace then begin
      match Vec.get st.trace st.cursor with
      | Sched d ->
        assert (Array.length d.candidates = nav);
        d
      | Choice _ -> assert false
    end
    else begin
      let state =
        match st.prune with
        | None -> None
        | Some seen ->
          let key =
            {
              fp = Execution.fingerprint st.exec;
              sleeping = mask_to_list st.nthreads sleep;
              nacts = Execution.num_actions st.exec;
            }
          in
          if seen key then raise (Prune Pruned_equiv);
          Some key
      in
      let candidates = Array.make nav 0 in
      let i = ref 0 in
      for tid = 0 to st.nthreads - 1 do
        if avail land (1 lsl tid) <> 0 then begin
          candidates.(!i) <- tid;
          incr i
        end
      done;
      let d = { sched_chosen = 0; candidates; state } in
      d.sched_chosen <- initial_choice st (Sched d);
      Vec.push st.trace (Sched d);
      d
    end
  in
  st.cursor <- st.cursor + 1;
  (* Earlier siblings are a sleep-set contribution only under DFS, where
     [sched_chosen > 0] means they were already explored. A sampled
     index says nothing about its siblings, so fuzz runs contribute
     nothing (they disable sleep sets anyway). *)
  let slept =
    if st.pick <> None then 0
    else begin
      let m = ref 0 in
      for i = 0 to d.sched_chosen - 1 do
        m := !m lor (1 lsl d.candidates.(i))
      done;
      !m
    end
  in
  (d.candidates.(d.sched_chosen), slept)

let kind_tag : Program.op -> int = function
  | Load _ -> 0
  | Store _ -> 1
  | Cas _ -> 2
  | Fetch_add _ -> 3
  | Exchange _ -> 4
  | Fence _ -> 5
  | _ -> 6

(* Bound commits per static operation: keyed by the site label when the
   program supplies one (one counter per source-level operation), falling
   back to (location, op-kind). This is what makes spin loops finite. *)
let op_site : Program.op -> string option = function
  | Load { site; _ }
  | Store { site; _ }
  | Cas { site; _ }
  | Fetch_add { site; _ }
  | Exchange { site; _ }
  | Na_load { site; _ }
  | Na_store { site; _ } ->
    site
  | Fence _ | Alloc _ | Spawn _ | Join _ | Annotate _ | Check _ -> None

let bump_op_count st tid loc op =
  let idx = (tid * 8) + kind_tag op in
  let cell =
    match op_site op with
    | Some site -> counter_cell st.counters.by_site site idx
    | None -> counter_cell st.counters.by_loc loc idx
  in
  incr cell;
  Vec.push st.counters.cj cell;
  if !cell > st.config.loop_bound then raise (Prune (Pruned_loop_bound { tid; loc }));
  if Execution.num_actions st.exec > st.config.max_actions then raise (Prune Pruned_max_actions)

let note_atomic st tid (a : C11.Action.t) = st.last_atomic.(tid) <- Some a.id

let add_footprint st f = st.step_footprints <- f :: st.step_footprints

(* The footprint a *pending* operation will have, for wake-up tests.
   CAS counts as a write (it may become one). *)
let op_footprint : Program.op -> footprint = function
  | Load { loc; _ } | Na_load { loc; _ } -> Mem { loc; write = false }
  | Store { loc; _ } | Cas { loc; _ } | Fetch_add { loc; _ } | Exchange { loc; _ } | Na_store { loc; _ }
    ->
    Mem { loc; write = true }
  | Fence _ -> Global
  | Alloc _ | Spawn _ | Join _ | Annotate _ | Check _ -> Pure

(* Same-location operations are dependent when at least one writes: two
   writes because modification order is the commit order, and read/write
   pairs because committing the write first enables a new reads-from
   option for the read — a sleeping reader MUST be woken by a write or
   the execution in which it reads the new value is lost. Only read/read
   pairs commute. *)
let dependent f1 f2 =
  match f1, f2 with
  | Pure, _ | _, Pure -> false
  | Global, _ | _, Global -> true
  | Mem a, Mem b -> a.loc = b.loc && (a.write || b.write)

(* Execute a visible operation for [tid] and return the value to resume
   the thread with. *)
let exec_visible st tid (op : Program.op) =
  add_footprint st (op_footprint op);
  (match op with
  | Load { loc; _ } | Store { loc; _ } | Cas { loc; _ } | Fetch_add { loc; _ } | Exchange { loc; _ } ->
    bump_op_count st tid loc op
  (* fences are not bounded: a loop always contains a bounded load/RMW,
     and straight-line code may legitimately fence often *)
  | Fence _ | Join _ | Na_load _ | Na_store _ | Alloc _ | Spawn _ | Annotate _ | Check _ -> ());
  match op with
  | Program.Load { mo; loc; site } ->
    let n = Execution.read_window st.exec ~tid ~mo ~loc in
    let rf = if n = 0 then None else Some (Execution.read_candidate st.exec ~loc (choose st n)) in
    let a, problems = Execution.commit_load st.exec ~tid ~mo ~loc ~rf ?site () in
    record_problems st problems;
    note_atomic st tid a;
    (match a.read_value with Some v -> v | None -> 0)
  | Store { mo; loc; value; site } ->
    let a, problems = Execution.commit_store st.exec ~tid ~mo ~loc ~value ?site () in
    record_problems st problems;
    note_atomic st tid a;
    0
  | Cas { mo; fail_mo; loc; expected; desired; site } ->
    let n = Execution.read_window st.exec ~tid ~mo:fail_mo ~loc in
    if n = 0 then begin
      (* CAS on an uninitialized location: like an uninitialized load *)
      let a, problems = Execution.commit_load st.exec ~tid ~mo:fail_mo ~loc ~rf:None ?site () in
      record_problems st problems;
      note_atomic st tid a;
      0
    end
    else begin
      (* Options, in the order the list-based implementation enumerated
         them: success (iff the mo-maximal write matches [expected]),
         then each non-matching candidate newest-first as a failure
         read. Scanned over the window instead of materialized. *)
      let matches (w : C11.Action.t) =
        match w.written_value with Some v -> v = expected | None -> false
      in
      let can_succeed = matches (Execution.read_candidate st.exec ~loc 0) in
      let nfail = ref 0 in
      for i = 0 to n - 1 do
        if not (matches (Execution.read_candidate st.exec ~loc i)) then incr nfail
      done;
      let k = choose st ((if can_succeed then 1 else 0) + !nfail) in
      if can_succeed && k = 0 then begin
        let a, problems = Execution.commit_rmw st.exec ~tid ~mo ~loc ~value:desired ?site () in
        record_problems st problems;
        note_atomic st tid a;
        (match a.read_value with Some v -> v | None -> 0)
      end
      else begin
        let fk = if can_succeed then k - 1 else k in
        let rec nth_fail i seen =
          let w = Execution.read_candidate st.exec ~loc i in
          if matches w then nth_fail (i + 1) seen
          else if seen = fk then w
          else nth_fail (i + 1) (seen + 1)
        in
        let w = nth_fail 0 0 in
        let a, problems = Execution.commit_load st.exec ~tid ~mo:fail_mo ~loc ~rf:(Some w) ?site () in
        record_problems st problems;
        note_atomic st tid a;
        (match a.read_value with Some v -> v | None -> 0)
      end
    end
  | Fetch_add { mo; loc; delta; site } ->
    (match Execution.rmw_candidate st.exec ~loc with
    | None ->
      let a, problems = Execution.commit_load st.exec ~tid ~mo ~loc ~rf:None ?site () in
      record_problems st problems;
      note_atomic st tid a;
      0
    | Some newest ->
      let old = match newest.written_value with Some v -> v | None -> 0 in
      let a, problems = Execution.commit_rmw st.exec ~tid ~mo ~loc ~value:(old + delta) ?site () in
      record_problems st problems;
      note_atomic st tid a;
      old)
  | Exchange { mo; loc; value; site } ->
    (match Execution.rmw_candidate st.exec ~loc with
    | None ->
      let a, problems = Execution.commit_load st.exec ~tid ~mo ~loc ~rf:None ?site () in
      record_problems st problems;
      note_atomic st tid a;
      let a', problems' = Execution.commit_store st.exec ~tid ~mo ~loc ~value ?site () in
      record_problems st problems';
      note_atomic st tid a';
      0
    | Some newest ->
      let old = match newest.written_value with Some v -> v | None -> 0 in
      let a, problems = Execution.commit_rmw st.exec ~tid ~mo ~loc ~value ?site () in
      record_problems st problems;
      note_atomic st tid a;
      old)
  | Fence { mo } ->
    let a = Execution.commit_fence st.exec ~tid ~mo in
    note_atomic st tid a;
    0
  | Join target ->
    ignore (Execution.commit_join st.exec ~tid ~target);
    0
  | Na_load _ | Na_store _ | Alloc _ | Spawn _ | Annotate _ | Check _ ->
    invalid_arg "exec_visible: invisible op"

(* Invisible operations commit immediately when the thread reaches them:
   they cannot observe other threads' scheduling (see DESIGN.md), so they
   are not decision points — but their memory footprints still count for
   sleep-set wake-ups. *)
let exec_invisible st tid (op : Program.op) =
  if Execution.num_actions st.exec > st.config.max_actions then raise (Prune Pruned_max_actions);
  add_footprint st (op_footprint op);
  match op with
  | Program.Na_load { loc; site } ->
    let a, problems = Execution.commit_na_load st.exec ~tid ~loc ?site () in
    record_problems st problems;
    (match a.read_value with Some v -> v | None -> 0)
  | Na_store { loc; value; site } ->
    let _, problems = Execution.commit_na_store st.exec ~tid ~loc ~value ?site () in
    record_problems st problems;
    0
  | Alloc { count; init } -> Execution.alloc st.exec ~tid ~count ~init
  | Spawn f ->
    let child = add_thread st (Not_started f) in
    st.parents.(child) <- tid;
    ignore (Execution.commit_create st.exec ~tid ~child);
    child
  | Annotate annotation ->
    Vec.push st.annots
      {
        tid;
        annotation;
        op_action = st.last_atomic.(tid);
        index = Execution.num_actions st.exec;
      };
    0
  | Check { cond; message } ->
    if not cond then st.bugs <- Bug.Assertion_failure { tid; message } :: st.bugs;
    0
  | Load _ | Store _ | Cas _ | Fetch_add _ | Exchange _ | Fence _ | Join _ ->
    invalid_arg "exec_invisible: visible op"

let is_invisible : Program.op -> bool = function
  | Program.Na_load _ | Na_store _ | Alloc _ | Spawn _ | Annotate _ | Check _ -> true
  | Load _ | Store _ | Cas _ | Fetch_add _ | Exchange _ | Fence _ | Join _ -> false

let is_enabled st tid =
  match get_status st tid with
  | Not_started _ -> true
  | Finished -> false
  | Paused (Program.Join target, _) ->
    target < st.nthreads && (match get_status st target with Finished -> true | _ -> false)
  | Paused _ -> true

(* A sleeping thread stays asleep while every footprint of the committed
   step is independent of its pending operation. Threads without a known
   pending operation (not yet started) are conservatively woken. *)
let keep_asleep st footprints tid =
  match get_status st tid with
  | Paused (op, _) ->
    let f = op_footprint op in
    List.for_all (fun g -> not (dependent g f)) footprints
  | Not_started _ | Finished -> false

let capture st sleep =
  {
    s_mark = Execution.mark st.exec;
    s_nthreads = st.nthreads;
    s_stat =
      Array.init st.nthreads (fun i ->
          match st.threads.(i) with Not_started _ -> 0 | Paused _ -> 1 | Finished -> 2);
    s_vcount = Array.init st.nthreads (fun i -> Vec.length st.values.(i));
    s_sleep = sleep;
    s_bugs = st.bugs;
    s_nannots = Vec.length st.annots;
    s_last_atomic = Array.sub st.last_atomic 0 st.nthreads;
    s_opc = Vec.length st.counters.cj;
  }

(* Snapshot for a decision recorded by a hook-inlined visible operation,
   taken just before the operation commits. Restoring it replays the
   running thread up to — and pauses it at — this very operation
   ([s_stat] is patched to "paused"; its value log holds exactly the
   ops before it), so a backtrack re-commits only the operation itself,
   not the whole enclosing step. [s_sleep] is the sleep mask the
   operation's own step would have started with had it not been
   inlined: the enclosing step's start mask filtered by the footprints
   committed so far this step — the same iterated filtering the
   per-step recomputation performs, collapsed into one pass (the
   intermediate statuses cannot change: sleeping threads are paused and
   never stepped while asleep). *)
let capture_inline st tid =
  let sleep =
    let m = st.step_sleep0 in
    if (not st.config.sleep_sets) || m = 0 then 0
    else begin
      let out = ref 0 in
      for u = 0 to st.nthreads - 1 do
        if m land (1 lsl u) <> 0 && keep_asleep st st.step_footprints u then
          out := !out lor (1 lsl u)
      done;
      !out
    end
  in
  let sn = capture st sleep in
  sn.s_stat.(tid) <- 1;
  st.n_hook_snaps <- st.n_hook_snaps + 1;
  sn

(* File snapshot [sn] under every decision index the just-committed
   inlined operation recorded ([c0 ..cursor-1]), backfilling any earlier
   indices of the enclosing step with the step's start snapshot so the
   store stays dense. [hook_c0] tells the step's own [record_snaps] where
   to stop so it never overwrites hook-filed snapshots. *)
let assign_snaps st snaps c0 sn =
  if st.cursor > c0 then begin
    if c0 < st.hook_c0 then st.hook_c0 <- c0;
    (match st.step_snap with
    | Some stepsn ->
      while Vec.length snaps < c0 do
        Vec.push snaps stepsn
      done
    | None ->
      (* capture-skipped step: it recorded no decision of its own, so
         the store is already dense up to [c0] *)
      assert (Vec.length snaps >= c0));
    for i = c0 to st.cursor - 1 do
      if i < Vec.length snaps then Vec.set snaps i sn else Vec.push snaps sn
    done
  end

(* Only loads and CAS can record (reads-from / branch-direction)
   decisions; other visible ops never need a mid-step snapshot. Being
   wrong here costs performance, not soundness: an unsnapshotted
   decision falls back to the enclosing step's snapshot. *)
let may_decide : Program.op -> bool = function
  | Program.Load _ | Cas _ -> true
  | _ -> false

(* First-run direct dispatch of a *visible* operation: sound exactly when
   the scheduling step it elides could not have gone any other way.

   - No thread other than [tid] is enabled: the would-be scheduling
     point has one available candidate, which [run_loop] takes without
     recording a decision ([!nav = 1] short-circuits [choose_sched]), so
     skipping the loop iteration drops no decision and no prune-key
     check (those fire only at non-trivial fresh points).
   - The running thread itself cannot be asleep here: a thread is put to
     sleep only as an unchosen sibling, and a sleeping thread is never
     stepped, so the fiber being live implies [tid] is awake.
   - [op] itself is enabled — a [Join] commits only once its target has
     finished; inlining a blocked [Join] would skip deadlock detection.

   Value-level choices the commit makes (reads-from, CAS direction) are
   NOT elided: [exec_visible] records them in the trace as usual, and the
   enclosing step's snapshot covers them ([record_snaps] walks every
   decision index the step produced). Statuses are restored on session
   rewind, so the gate is deterministic across restore-replays: a prefix
   that inlined an op on the fresh run inlines it again after restore. *)
let can_inline_visible st tid (op : Program.op) =
  (match op with
  | Program.Join target ->
    target < st.nthreads && (match get_status st target with Finished -> true | _ -> false)
  | _ -> true)
  &&
  let rec no_other u =
    u >= st.nthreads || ((u = tid || not (is_enabled st u)) && no_other (u + 1))
  in
  no_other 0

(* The [Program.dispatch] hook: handle an operation inside the running
   fiber, without suspending it, whenever the result does not need a
   scheduling decision. Live runs commit invisible operations directly
   (logging their values as [drain] would) and visible operations too
   when no other thread is enabled (see [can_inline_visible]); replay
   feeds each thread the logged values of *all* its operations, so a
   whole program prefix re-runs without a single effect. [None] — a
   visible operation live at a real scheduling point, or an exhausted
   value log under replay — performs the effect and pauses the fiber at
   its pending operation as before. *)
let make_hook st (op : Program.op) =
  let tid = st.cur_tid in
  if st.replaying then
    (* The replay value feed lives in the dispatcher itself
       ([Program.dispatch]'s [rp_*] tier) and never reaches this hook;
       control only lands here when a replayed thread's feed has drained
       — at the operation it was paused at when the snapshot was taken —
       and [None] performs the effect, parking the fiber there. *)
    None
  else if is_invisible op then begin
    let v = exec_invisible st tid op in
    Vec.push st.values.(tid) v;
    st.n_inline <- st.n_inline + 1;
    Some v
  end
  else if st.config.inline_visible && can_inline_visible st tid op then begin
    match st.s_snaps with
    | Some snaps when may_decide op ->
      (* Session mode: decisions this op records need a restore point at
         the op itself, captured before it commits. *)
      let c0 = st.cursor in
      let sn = capture_inline st tid in
      let v =
        match exec_visible st tid op with
        | v -> v
        | exception e ->
          assign_snaps st snaps c0 sn;
          raise e
      in
      assign_snaps st snaps c0 sn;
      Vec.push st.values.(tid) v;
      st.n_inline <- st.n_inline + 1;
      Some v
    | _ ->
      let v = exec_visible st tid op in
      Vec.push st.values.(tid) v;
      st.n_inline <- st.n_inline + 1;
      Some v
  end
  else None

let handler st tid =
  {
    Effect.Deep.retc =
      (fun () ->
        ignore (Execution.commit_finish st.exec ~tid);
        set_status st tid Finished);
    exnc =
      (fun e ->
        (match e with
        | Prune _ -> raise e
        | _ ->
          st.bugs <-
            Bug.Assertion_failure { tid; message = "uncaught exception: " ^ Printexc.to_string e }
            :: st.bugs;
          ignore (Execution.commit_finish st.exec ~tid);
          set_status st tid Finished));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Program.Do op ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              st.n_switches <- st.n_switches + 1;
              set_status st tid (Paused (op, k)))
        | _ -> None);
  }

(* Run thread [tid] until it pauses at a visible operation or finishes,
   committing any invisible operations it passes through. *)
let rec drain st tid =
  match get_status st tid with
  | Paused (op, k) when is_invisible op ->
    let v = exec_invisible st tid op in
    Vec.push st.values.(tid) v;
    Effect.Deep.continue k v;
    drain st tid
  | Not_started _ | Paused _ | Finished -> ()

let start_thread st tid f =
  ignore (Execution.commit_start st.exec ~tid);
  Effect.Deep.match_with f () (handler st tid);
  drain st tid

(* One scheduling step: start the thread or commit its pending visible
   operation, then run it to its next visible operation. Returns the
   footprints of everything it committed. *)
let step st tid =
  st.cur_tid <- tid;
  st.step_footprints <- [];
  (match get_status st tid with
  | Not_started f -> start_thread st tid f
  | Paused (op, k) ->
    let v = exec_visible st tid op in
    Vec.push st.values.(tid) v;
    Effect.Deep.continue k v;
    drain st tid
  | Finished -> invalid_arg "step: finished thread");
  st.step_footprints

let mk_state ?pick ?prune ~config ~trace main =
  let st =
    {
      config;
      exec = Execution.create ~rf_kernel:config.rf_kernel ();
      threads = Array.make 4 Finished;
      nthreads = 0;
      trace;
      pick;
      prune;
      cursor = 0;
      annots = Vec.create ();
      bugs = [];
      last_atomic = Array.make 4 None;
      counters = counters_create ();
      values = Array.init 4 (fun _ -> Vec.create ());
      parents = Array.make 4 (-1);
      step_footprints = [];
      replaying = false;
      cur_tid = 0;
      hook = (fun _ -> None);
      n_switches = 0;
      n_inline = 0;
      s_snaps = None;
      step_snap = None;
      step_sleep0 = 0;
      hook_c0 = max_int;
      n_hook_snaps = 0;
    }
  in
  st.hook <- make_hook st;
  ignore (add_thread st (Not_started main));
  st

(* ------------------------------------------------------------------ *)
(* Sessions: copy-free snapshot/restore across a DFS exploration.

   A session keeps one [state] (and one arena-backed [Execution.t])
   alive across every run of the search. At each step that records
   decisions it captures a snapshot — arena watermarks plus the few O(1)
   or O(threads) scheduler scalars — indexed by trace position. After
   the explorer backtracks, [session_run] restores the snapshot of the
   bumped decision's step instead of re-running the program prefix:
   the graph rewinds by arena truncation, scheduler scalars come back
   from the snapshot, and only the program closures are re-run — in a
   cheap replay mode that feeds each thread the values its operations
   returned (logged during commit), skipping all graph work. *)

type session = {
  st : state;
  main : unit -> unit;
  mutable started : bool;
  snaps : snapshot Vec.t;  (* parallel to trace indices *)
  mutable n_snapshots : int;
  mutable n_restores : int;
}

(* Rebuild the thread fibers a restored snapshot needs, feeding each
   re-run closure the logged values (truncated to the snapshot's
   consumption counts) and leaving it paused at its pending operation —
   or finished, when the snapshot had it finished. No graph or
   bookkeeping work happens here: the graph was rewound by
   [Execution.restore] and the scheduler scalars come from the snapshot.

   Every thread that had started by the snapshot replays from scratch —
   even one whose live fiber happens to still sit at exactly the
   snapshot position. Partial replay is unsound for side effects: user
   closures are free to touch mutable state shared across threads (the
   canonical pattern is a main closure that resets a per-thread
   observation buffer each execution, which spawned closures then
   append to), and re-executing some closures' effects but not others
   tears that state in ways a fresh run never would. A full replay
   re-executes every effect in a spawn-tree-compatible order, exactly
   like the fresh run the legacy engine does — just without performing
   a single scheduling effect or graph commit. Threads the snapshot has
   as not-yet-started only need their closure re-registered, which
   their parent's replayed Spawn does; a spawned child always has a
   higher tid than its parent, so driving threads in tid order
   guarantees each child's closure is registered before its own
   turn. *)
let replay_threads st main (snap : snapshot) =
  let n = snap.s_nthreads in
  (* need_run: the closure re-executes, replayed up to its snapshot
     position — always for paused threads (they resume live later) and,
     under [replay_finished] (the default — see the config doc), for
     finished threads too, so closure side effects the main closure's
     replay reset are re-applied. With the flag off a finished thread
     re-runs only when a descendant still needs its closure
     re-registered by the finished thread's replayed [Spawn]s; one with
     no such descendant is simply left [Finished] and its whole value
     log is skipped. Not-started threads are merely re-registered by
     their parent. [st.parents] needs no snapshotting: tids below
     [s_nthreads] were spawned in the prefix shared by every run under
     this snapshot, so their entries are never rewritten. *)
  let need_run = Array.make n false in
  for tid = 0 to n - 1 do
    need_run.(tid) <-
      (match snap.s_stat.(tid) with 1 -> true | 2 -> st.config.replay_finished | _ -> false)
  done;
  for tid = n - 1 downto 1 do
    if need_run.(tid) || snap.s_stat.(tid) = 0 then need_run.(st.parents.(tid)) <- true
  done;
  (* every fiber is stale (threads spawned after the snapshot are
     simply gone); parents re-register their children *)
  for tid = 0 to Array.length st.threads - 1 do
    st.threads.(tid) <- Finished
  done;
  if need_run.(0) then st.threads.(0) <- Not_started main;
  (* Value feeding happens in the dispatcher's replay feed (no effect —
     and no [op] record — per replayed operation); a perform only
     reaches this handler when the thread's log is exhausted, i.e. at
     the visible operation it was paused at when the snapshot was
     taken. The handler stays installed on the rebuilt fiber for the
     rest of its life, so retc/exnc must carry both behaviours: while
     [st.replaying] they commit nothing (the restored graph already
     holds those actions); afterwards — when the scheduler resumes the
     fiber live — they are byte-for-byte the normal [handler]. *)
  let replay_handler tid =
    {
      Effect.Deep.retc =
        (fun () ->
          if not st.replaying then ignore (Execution.commit_finish st.exec ~tid);
          set_status st tid Finished);
      exnc =
        (fun e ->
          if st.replaying then set_status st tid Finished
          else begin
            match e with
            | Prune _ -> raise e
            | _ ->
              st.bugs <-
                Bug.Assertion_failure
                  { tid; message = "uncaught exception: " ^ Printexc.to_string e }
                :: st.bugs;
              ignore (Execution.commit_finish st.exec ~tid);
              set_status st tid Finished
          end);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Program.Do op ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                st.n_switches <- st.n_switches + 1;
                set_status st tid (Paused (op, k)))
          | _ -> None);
    }
  in
  let d = Domain.DLS.get Program.dispatch in
  let saved = d.Program.hook in
  d.Program.hook <- Some st.hook;
  (* Replayed [Spawn]s re-register only children whose closure is still
     needed; a skipped finished child must stay [Finished], not be
     resurrected as runnable. *)
  d.Program.rp_spawn <-
    (fun child f ->
      if need_run.(child) || snap.s_stat.(child) = 0 then st.threads.(child) <- Not_started f);
  st.replaying <- true;
  Fun.protect
    ~finally:(fun () ->
      st.replaying <- false;
      d.Program.rp_limit <- 0;
      d.Program.hook <- saved)
    (fun () ->
      for tid = 0 to n - 1 do
        if need_run.(tid) then begin
          match st.threads.(tid) with
          | Not_started f ->
            st.cur_tid <- tid;
            let vs = st.values.(tid) in
            d.Program.rp_vals <- Vec.unsafe_data vs;
            d.Program.rp_next <- 0;
            d.Program.rp_limit <- Vec.length vs;
            Effect.Deep.match_with f () (replay_handler tid)
          | _ -> assert false
        end
      done)

let restore_to s (snap : snapshot) =
  let st = s.st in
  Execution.restore st.exec snap.s_mark;
  let cj = st.counters.cj in
  while Vec.length cj > snap.s_opc do
    decr (Vec.pop cj)
  done;
  st.bugs <- snap.s_bugs;
  Vec.truncate st.annots snap.s_nannots;
  st.nthreads <- snap.s_nthreads;
  Array.blit snap.s_last_atomic 0 st.last_atomic 0 snap.s_nthreads;
  for i = snap.s_nthreads to Array.length st.last_atomic - 1 do
    st.last_atomic.(i) <- None
  done;
  for i = 0 to Array.length st.values - 1 do
    Vec.truncate st.values.(i) (if i < snap.s_nthreads then snap.s_vcount.(i) else 0)
  done;
  replay_threads st s.main snap

(* The search loop shared by [run] (fresh state every call) and
   [session_run] (persistent state, snapshot recording). Snapshots are
   captured at step start and attached to every decision index the step
   records or consumes — including when the step aborts with [Prune], so
   a later backtrack to one of its decisions can still restore. *)
let run_loop ?session st sleep0 =
  let d = Domain.DLS.get Program.dispatch in
  let saved = d.Program.hook in
  d.Program.hook <- Some st.hook;
  (* Decision indices at or past [hook_c0] were already filed (with
     their own mid-step snapshots) by the dispatch hook — never
     overwrite those. *)
  let record_snaps c0 snap =
    match session, snap with
    | Some s, Some sn ->
      let stop = if st.hook_c0 < st.cursor then st.hook_c0 else st.cursor in
      for i = c0 to stop - 1 do
        if i < Vec.length s.snaps then Vec.set s.snaps i sn
        else begin
          assert (i = Vec.length s.snaps);
          Vec.push s.snaps sn
        end
      done
    | _ -> ()
  in
  let rec loop sleep =
    (* One scan classifies every thread: finished, enabled, and (enabled
       and not asleep) available — no list is built on this path. *)
    let all_fin = ref true and nen = ref 0 and nav = ref 0 and first_av = ref (-1) and avail = ref 0 in
    for tid = 0 to st.nthreads - 1 do
      (match st.threads.(tid) with Finished -> () | _ -> all_fin := false);
      if is_enabled st tid then begin
        incr nen;
        if sleep land (1 lsl tid) = 0 then begin
          avail := !avail lor (1 lsl tid);
          incr nav;
          if !first_av < 0 then first_av := tid
        end
      end
    done;
    if !all_fin then Complete
    else if !nen = 0 then begin
      let blocked = ref [] in
      for tid = st.nthreads - 1 downto 0 do
        match get_status st tid with Finished -> () | _ -> blocked := tid :: !blocked
      done;
      st.bugs <- Bug.Deadlock { blocked_tids = !blocked } :: st.bugs;
      Complete
    end
    else if !nav = 0 then raise (Prune Pruned_sleep_set)
    else begin
      let c0 = st.cursor in
      let snap =
        match session with
        | Some s ->
          (* A single-candidate step whose operation makes no value
             choice ([may_decide]) records no decision, so its snapshot
             could never be restored to — skip the capture. Operations
             the step's drain inlines afterwards capture their own
             mid-step snapshots and file every index they record, so no
             decision is left pointing at a skipped snapshot. *)
          let skip =
            !nav = 1
            &&
            match get_status st !first_av with
            | Paused (op, _) -> not (may_decide op)
            | Not_started _ -> true
            | Finished -> false
          in
          if skip then None
          else begin
            s.n_snapshots <- s.n_snapshots + 1;
            Some (capture st sleep)
          end
        | None -> None
      in
      st.step_snap <- snap;
      st.step_sleep0 <- sleep;
      st.hook_c0 <- max_int;
      let slept_mask, footprints =
        try
          let tid, slept =
            if !nav = 1 then (!first_av, 0)
            else choose_sched st ~sleep ~avail:!avail ~nav:!nav
          in
          (slept, step st tid)
        with e ->
          record_snaps c0 snap;
          raise e
      in
      record_snaps c0 snap;
      let sleep =
        if not st.config.sleep_sets then 0
        else begin
          let m = sleep lor slept_mask in
          let out = ref 0 in
          for tid = 0 to st.nthreads - 1 do
            if m land (1 lsl tid) <> 0 && keep_asleep st footprints tid then
              out := !out lor (1 lsl tid)
          done;
          !out
        end
      in
      loop sleep
    end
  in
  Fun.protect
    ~finally:(fun () -> d.Program.hook <- saved)
    (fun () -> try loop sleep0 with Prune reason -> reason)

let mk_result st outcome =
  {
    exec = st.exec;
    annots = Vec.to_list st.annots;
    bugs = List.rev st.bugs;
    outcome;
    switches = st.n_switches;
    inline_ops = st.n_inline;
  }

let run ?pick ?prune ~config ~trace main =
  let st = mk_state ?pick ?prune ~config ~trace main in
  mk_result st (run_loop st 0)

let session_create ?prune ~config ~trace main =
  let st = mk_state ?prune ~config ~trace main in
  let snaps = Vec.create () in
  st.s_snaps <- Some snaps;
  { st; main; started = false; snaps; n_snapshots = 0; n_restores = 0 }

let session_run s =
  let st = s.st in
  if not s.started then begin
    s.started <- true;
    mk_result st (run_loop ~session:s st 0)
  end
  else begin
    (* The explorer's backtrack leaves the bumped decision last in the
       trace; its step-start snapshot is the restore point. Decisions of
       one step share their snapshot physically, so the first decision
       index of that step — where the cursor must resume so the step's
       earlier (unchanged) decisions replay through the normal commit
       path — is found by walking [==]-equal snapshots backwards. *)
    let l = Vec.length st.trace in
    assert (l > 0 && l <= Vec.length s.snaps);
    Vec.truncate s.snaps l;
    let snap = Vec.get s.snaps (l - 1) in
    let first = ref (l - 1) in
    while !first > 0 && Vec.get s.snaps (!first - 1) == snap do
      decr first
    done;
    restore_to s snap;
    st.cursor <- !first;
    s.n_restores <- s.n_restores + 1;
    mk_result st (run_loop ~session:s st snap.s_sleep)
  end

let session_counters s = (s.n_snapshots, s.n_restores)

let session_exec s = s.st.exec
