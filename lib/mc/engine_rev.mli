(** The engine semantics revision — the single source of truth for every
    consumer that persists exploration-derived data across processes (the
    on-disk result store, the [BENCH_*.json] metadata headers).

    Bump [current] whenever a change can alter what any exploration
    produces or how its artifacts are keyed: the execution-graph
    fingerprint, the prune-key construction, sleep-set or equivalence
    pruning semantics, the scheduler's decision enumeration order, the
    checker's verdict fingerprint, or the store's serialized formats.
    The persistent store compares this string against the one recorded on
    disk and flushes itself wholesale on any mismatch — invalidation is
    coarse and safe, never clever and wrong. *)

val current : string
