module Vec = C11.Vec

type config = {
  scheduler : Scheduler.config;
  max_executions : int option;
  progress : (int -> unit) option;
}

let default_config = { scheduler = Scheduler.default_config; max_executions = None; progress = None }

type check_counters = {
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  histories_truncated : int;
  prefixes_truncated : int;
}

let no_check_counters =
  {
    cache_hits = 0;
    cache_misses = 0;
    cache_entries = 0;
    histories_truncated = 0;
    prefixes_truncated = 0;
  }

type stats = {
  explored : int;
  feasible : int;
  pruned_loop_bound : int;
  pruned_max_actions : int;
  pruned_sleep_set : int;
  buggy : int;
  truncated : bool;
  time : float;
  check : check_counters;
}

type result = {
  stats : stats;
  bugs : Bug.t list;
  first_buggy_trace : string option;
  first_buggy_exec : C11.Execution.t option;
}

(* Advance [trace] to the next unexplored branch: drop exhausted trailing
   decisions and bump the deepest one with alternatives left. Returns
   false when the whole (sub)tree has been explored. The first [frozen]
   decisions are never flipped or popped: they pin the subtree being
   explored (the parallel explorer freezes a prefix per work item). *)
let backtrack ?(frozen = 0) (trace : Scheduler.decision Vec.t) =
  let rec go () =
    if Vec.length trace <= frozen then false
    else begin
      match Vec.last trace with
      | Scheduler.Sched d when d.sched_chosen + 1 < Array.length d.candidates ->
        d.sched_chosen <- d.sched_chosen + 1;
        true
      | Choice d when d.choice_chosen + 1 < d.num ->
        d.choice_chosen <- d.choice_chosen + 1;
        true
      | Sched _ | Choice _ ->
        ignore (Vec.pop trace);
        go ()
    end
  in
  go ()

let explore_subtree ?(config = default_config) ?on_feasible ?(check = fun () -> no_check_counters)
    ?stop ~trace ~frozen main =
  let t0 = Monotonic.now () in
  (* Time spent in the caller's [progress] callback is the caller's, not
     the search's: subtract it, or a slow reporter inflates [stats.time]. *)
  let progress_overhead = ref 0. in
  let explored = ref 0 in
  let feasible = ref 0 in
  let pruned_loop = ref 0 in
  let pruned_max = ref 0 in
  let pruned_sleep = ref 0 in
  let buggy = ref 0 in
  let truncated = ref false in
  let seen_bugs : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let bugs = ref [] in
  let first_buggy_trace = ref None in
  let first_buggy_exec = ref None in
  let record_bugs exec found =
    if found <> [] then begin
      incr buggy;
      if !first_buggy_trace = None then begin
        first_buggy_trace := Some (Fmt.str "%a" C11.Execution.pp exec);
        first_buggy_exec := Some exec
      end;
      List.iter
        (fun b ->
          let key = Bug.key b in
          if not (Hashtbl.mem seen_bugs key) then begin
            Hashtbl.add seen_bugs key ();
            bugs := b :: !bugs
          end)
        found
    end
  in
  let continue_ = ref true in
  while !continue_ do
    let r = Scheduler.run ~config:config.scheduler ~trace main in
    incr explored;
    (match config.progress with
    | Some f when !explored mod 1024 = 0 ->
      let p0 = Monotonic.now () in
      f !explored;
      progress_overhead := !progress_overhead +. (Monotonic.now () -. p0)
    | _ -> ());
    (match r.outcome with
    | Scheduler.Complete ->
      incr feasible;
      let found =
        match r.bugs, on_feasible with
        | [], Some check -> check r.exec r.annots
        | builtin, _ -> builtin
      in
      record_bugs r.exec found
    | Pruned_loop_bound _ -> incr pruned_loop
    | Pruned_max_actions -> incr pruned_max
    | Pruned_sleep_set -> incr pruned_sleep);
    let stopped = match stop with Some f -> f () | None -> false in
    let capped = match config.max_executions with Some m -> !explored >= m | None -> false in
    if stopped || capped then begin
      truncated := true;
      continue_ := false
    end
    else if not (backtrack ~frozen trace) then continue_ := false
  done;
  {
    stats =
      {
        explored = !explored;
        feasible = !feasible;
        pruned_loop_bound = !pruned_loop;
        pruned_max_actions = !pruned_max;
        pruned_sleep_set = !pruned_sleep;
        buggy = !buggy;
        truncated = !truncated;
        time = Monotonic.now () -. t0 -. !progress_overhead;
        check = check ();
      };
    bugs = List.rev !bugs;
    first_buggy_trace = !first_buggy_trace;
    first_buggy_exec = !first_buggy_exec;
  }

let explore ?config ?on_feasible ?check main =
  explore_subtree ?config ?on_feasible ?check ~trace:(Vec.create ()) ~frozen:0 main
