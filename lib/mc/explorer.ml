module Vec = C11.Vec

type config = {
  scheduler : Scheduler.config;
  max_executions : int option;
  progress : (int -> unit) option;
  prune : bool;
  engine : [ `Arena | `Legacy ];
}

let default_config =
  {
    scheduler = Scheduler.default_config;
    max_executions = None;
    progress = None;
    prune = true;
    engine = `Arena;
  }

type check_counters = {
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  histories_truncated : int;
  prefixes_truncated : int;
}

let no_check_counters =
  {
    cache_hits = 0;
    cache_misses = 0;
    cache_entries = 0;
    histories_truncated = 0;
    prefixes_truncated = 0;
  }

type stats = {
  explored : int;
  feasible : int;
  pruned_loop_bound : int;
  pruned_max_actions : int;
  pruned_sleep_set : int;
  pruned_equiv : int;
  distinct_graphs : int;
  buggy : int;
  truncated : bool;
  time : float;
  minor_words : float;  (* minor-heap words allocated during the search *)
  snapshots : int;  (* arena snapshots captured (0 under the legacy engine) *)
  restores : int;  (* arena snapshot restores (0 under the legacy engine) *)
  commits : int;  (* actions committed (incl. re-commits after restore) *)
  fiber_switches : int;  (* ops that suspended their fiber via an effect *)
  inline_ops : int;  (* ops committed in the dispatch hook, no suspension *)
  rf_queries : int;  (* rf-candidate floor queries answered *)
  rf_fast : int;  (* memoized O(1) answers among them (0 with the kernel off) *)
  rf_rejected : int;  (* stores rejected before replay, summed over queries *)
  check : check_counters;
}

type result = {
  stats : stats;
  bugs : Bug.t list;
  first_buggy_trace : string option;
  first_buggy_exec : C11.Execution.t option;
  graphs : int64 list;
  closed : Scheduler.prune_key list;
      (* decision-point states whose subtrees this search fully explored —
         what the persistent store saves so a later identical run can
         prune them without re-exploring ([] with pruning off) *)
}

(* Decision records are mutated by [backtrack]; a prefix handed to
   another explorer (a parallel work item, or a stolen subtree) must own
   its records or explorers would race on [sched_chosen]. The candidates
   array is never mutated after creation, so the copy shares it — a
   donation costs O(prefix) record headers, not a deep copy. *)
let copy_decision : Scheduler.decision -> Scheduler.decision = function
  | Scheduler.Sched d ->
    Scheduler.Sched { sched_chosen = d.sched_chosen; candidates = d.candidates; state = d.state }
  | Choice d -> Choice { choice_chosen = d.choice_chosen; num = d.num }

(* Advance [trace] to the next unexplored branch: drop exhausted trailing
   decisions and bump the deepest one with alternatives left. Returns
   false when the whole (sub)tree has been explored. The first [frozen]
   decisions are never flipped or popped: they pin the subtree being
   explored (the parallel explorer freezes a prefix per work item).
   [close] is called with the state key of every popped scheduling
   decision — popping it means its subtree is now fully explored, which
   is what arms equivalence pruning against that state. *)
let backtrack ?(frozen = 0) ?close (trace : Scheduler.decision Vec.t) =
  let rec go () =
    if Vec.length trace <= frozen then false
    else begin
      match Vec.last trace with
      | Scheduler.Sched d when d.sched_chosen + 1 < Array.length d.candidates ->
        d.sched_chosen <- d.sched_chosen + 1;
        true
      | Choice d when d.choice_chosen + 1 < d.num ->
        d.choice_chosen <- d.choice_chosen + 1;
        true
      | Sched { state; _ } ->
        (match state, close with Some k, Some f -> f k | _ -> ());
        ignore (Vec.pop trace);
        go ()
      | Choice _ ->
        ignore (Vec.pop trace);
        go ()
    end
  in
  go ()

(* The shallowest level >= [frozen] of [trace] with unexplored sibling
   branches — the donation point for work stealing (shallowest = the
   largest remaining chunk of this subtree). *)
let donatable ~frozen (trace : Scheduler.decision Vec.t) =
  let n = Vec.length trace in
  let rec go i =
    if i >= n then None
    else
      let d = Vec.get trace i in
      if Scheduler.decision_chosen d + 1 < Scheduler.decision_arity d then Some i else go (i + 1)
  in
  go frozen

let explore_subtree ?(config = default_config) ?on_feasible ?(check = fun () -> no_check_counters)
    ?stop ?want_split ?on_split ?warm ~trace ~frozen main =
  let t0 = Monotonic.now () in
  let g0 = (Gc.quick_stat ()).Gc.minor_words in
  (* Time spent in the caller's [progress] callback is the caller's, not
     the search's: subtract it, or a slow reporter inflates [stats.time]. *)
  let progress_overhead = ref 0. in
  let explored = ref 0 in
  let feasible = ref 0 in
  let pruned_loop = ref 0 in
  let pruned_max = ref 0 in
  let pruned_sleep = ref 0 in
  let pruned_equiv = ref 0 in
  let buggy = ref 0 in
  let truncated = ref false in
  let seen_bugs : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let bugs = ref [] in
  let first_buggy_trace = ref None in
  let first_buggy_exec = ref None in
  (* Fully-explored decision-point states: a fresh decision point whose
     key is in here can only replay an already-explored subtree, so the
     scheduler aborts the run with [Pruned_equiv]. Soundness: keys are
     only added when backtracking pops the decision (subtree complete),
     and the DFS-first representative of every state is therefore never
     pruned. *)
  let visited : (Scheduler.prune_key, unit) Hashtbl.t = Hashtbl.create 256 in
  let close k = Hashtbl.replace visited k () in
  (* [warm] is a read-only set of states proven fully explored by an
     earlier run of the *same* program/config (the persistent store's
     closed prune keys). It is consulted alongside [visited] but never
     written: if the program actually changed, no warm key ever matches
     and the search degrades to a plain cold exploration. Shared across
     domains without a lock — it is frozen before the search starts. *)
  let prune =
    if not config.prune then None
    else
      match warm with
      | None -> Some (fun k -> Hashtbl.mem visited k)
      | Some w -> Some (fun k -> Hashtbl.mem visited k || Hashtbl.mem w k)
  in
  (* Distinct feasible execution graphs, by canonical fingerprint. Under
     pruning, repeated graphs also skip [on_feasible] and bug recording:
     an identical graph yields identical bugs and verdicts, all already
     recorded at its first (DFS-earliest) occurrence. *)
  let graphs : (int64, unit) Hashtbl.t = Hashtbl.create 256 in
  let frozen = ref frozen in
  (* Under the arena engine [exec] is the session's single graph, valid
     only until the next run: retaining it requires a deep copy. *)
  let retain_exec =
    match config.engine with `Arena -> C11.Execution.copy | `Legacy -> fun exec -> exec
  in
  let record_bugs exec found =
    if found <> [] then begin
      incr buggy;
      if !first_buggy_trace = None then begin
        first_buggy_trace := Some (Fmt.str "%a" C11.Execution.pp exec);
        first_buggy_exec := Some (retain_exec exec)
      end;
      List.iter
        (fun b ->
          let key = Bug.key b in
          if not (Hashtbl.mem seen_bugs key) then begin
            Hashtbl.add seen_bugs key ();
            bugs := b :: !bugs
          end)
        found
    end
  in
  let session =
    match config.engine with
    | `Arena -> Some (Scheduler.session_create ?prune ~config:config.scheduler ~trace main)
    | `Legacy -> None
  in
  (* rf-kernel counters: under the arena engine the session's single
     execution accumulates them for the whole search (read once at the
     end); the legacy engine builds a fresh execution per run, so each
     run's totals are summed as they go. *)
  let rf_q = ref 0 and rf_f = ref 0 and rf_r = ref 0 in
  (* Same split for the phase counters: [switches]/[inline_ops] are
     cumulative across a session but per-run under the legacy engine, and
     the arena's single execution accumulates commits for the whole
     search where the legacy engine's per-run executions must be summed. *)
  let commits = ref 0 and switches = ref 0 and inlined = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let r =
      match session with
      | Some s -> Scheduler.session_run s
      | None -> Scheduler.run ?prune ~config:config.scheduler ~trace main
    in
    incr explored;
    (match session with
    | None ->
      let q, f, rej = C11.Execution.rf_counters r.exec in
      rf_q := !rf_q + q;
      rf_f := !rf_f + f;
      rf_r := !rf_r + rej;
      commits := !commits + C11.Execution.commit_count r.exec;
      switches := !switches + r.switches;
      inlined := !inlined + r.inline_ops
    | Some _ ->
      switches := r.switches;
      inlined := r.inline_ops);
    (match config.progress with
    | Some f when !explored mod 1024 = 0 ->
      let p0 = Monotonic.now () in
      f !explored;
      progress_overhead := !progress_overhead +. (Monotonic.now () -. p0)
    | _ -> ());
    (match r.outcome with
    | Scheduler.Complete ->
      incr feasible;
      let fp = C11.Execution.fingerprint r.exec in
      let fresh = not (Hashtbl.mem graphs fp) in
      if fresh then Hashtbl.add graphs fp ();
      if fresh || not config.prune then begin
        let found =
          match r.bugs, on_feasible with
          | [], Some check -> check r.exec r.annots
          | builtin, _ -> builtin
        in
        record_bugs r.exec found
      end
    | Pruned_loop_bound _ -> incr pruned_loop
    | Pruned_max_actions -> incr pruned_max
    | Pruned_sleep_set -> incr pruned_sleep
    | Pruned_equiv -> incr pruned_equiv);
    let stopped = match stop with Some f -> f () | None -> false in
    let capped = match config.max_executions with Some m -> !explored >= m | None -> false in
    if stopped || capped then begin
      truncated := true;
      continue_ := false
    end
    else if not (backtrack ~frozen:!frozen ~close trace) then continue_ := false
    else begin
      (* Work stealing: when the pool is hungry, donate the shallowest
         unexplored sibling branches — the largest chunk — as one new
         work item, then freeze that level so this explorer never
         re-enters what it gave away. *)
      match want_split, on_split with
      | Some want, Some give when want () -> (
        match donatable ~frozen:!frozen trace with
        | None -> ()
        | Some i ->
          let key =
            List.init (i + 1) (fun j ->
                let c = Scheduler.decision_chosen (Vec.get trace j) in
                if j = i then c + 1 else c)
          in
          let prefix =
            Array.init (i + 1) (fun j ->
                let d = copy_decision (Vec.get trace j) in
                if j = i then begin
                  match d with
                  | Scheduler.Sched s -> s.sched_chosen <- s.sched_chosen + 1
                  | Choice c -> c.choice_chosen <- c.choice_chosen + 1
                end;
                d)
          in
          give ~key ~prefix ~frozen:i;
          frozen := i + 1)
      | _ -> ()
    end
  done;
  let graph_list = List.sort_uniq Int64.compare (Hashtbl.fold (fun k () acc -> k :: acc) graphs []) in
  let snapshots, restores =
    match session with Some s -> Scheduler.session_counters s | None -> (0, 0)
  in
  (match session with
  | Some s ->
    let q, f, rej = C11.Execution.rf_counters (Scheduler.session_exec s) in
    rf_q := q;
    rf_f := f;
    rf_r := rej;
    commits := C11.Execution.commit_count (Scheduler.session_exec s)
  | None -> ());
  {
    stats =
      {
        explored = !explored;
        feasible = !feasible;
        pruned_loop_bound = !pruned_loop;
        pruned_max_actions = !pruned_max;
        pruned_sleep_set = !pruned_sleep;
        pruned_equiv = !pruned_equiv;
        distinct_graphs = Hashtbl.length graphs;
        buggy = !buggy;
        truncated = !truncated;
        time = Monotonic.now () -. t0 -. !progress_overhead;
        minor_words = (Gc.quick_stat ()).Gc.minor_words -. g0;
        snapshots;
        restores;
        commits = !commits;
        fiber_switches = !switches;
        inline_ops = !inlined;
        rf_queries = !rf_q;
        rf_fast = !rf_f;
        rf_rejected = !rf_r;
        check = check ();
      };
    bugs = List.rev !bugs;
    first_buggy_trace = !first_buggy_trace;
    first_buggy_exec = !first_buggy_exec;
    graphs = graph_list;
    closed = Hashtbl.fold (fun k () acc -> k :: acc) visited [];
  }

let explore ?config ?on_feasible ?check ?warm main =
  explore_subtree ?config ?on_feasible ?check ?warm ~trace:(Vec.create ()) ~frozen:0 main
