type loc = int

type mo = C11.Memory_order.t

type annotation =
  | Method_begin of { name : string; args : int list; obj : int }
  | Method_end of { ret : int option }
  | Op_define
  | Op_clear
  | Op_clear_define
  | Potential_op of string
  | Op_check of string

type op =
  | Load of { mo : mo; loc : loc; site : string option }
  | Store of { mo : mo; loc : loc; value : int; site : string option }
  | Cas of { mo : mo; fail_mo : mo; loc : loc; expected : int; desired : int; site : string option }
  | Fetch_add of { mo : mo; loc : loc; delta : int; site : string option }
  | Exchange of { mo : mo; loc : loc; value : int; site : string option }
  | Fence of { mo : mo }
  | Na_load of { loc : loc; site : string option }
  | Na_store of { loc : loc; value : int; site : string option }
  | Alloc of { count : int; init : int option }
  | Spawn of (unit -> unit)
  | Join of int
  | Annotate of annotation
  | Check of { cond : bool; message : string }

type _ Effect.t += Do : op -> int Effect.t

(* Fast path around the effect machinery: the scheduler installs a
   per-domain hook that handles an operation *without* suspending the
   fiber whenever it can decide the result locally — invisible
   operations (committed immediately; they are not decision points) and
   replay-fed values. [None] means the operation needs the scheduler:
   fall back to performing the effect, which pauses the fiber. *)
let dispatch : (op -> int option) option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let do_op op =
  match !(Domain.DLS.get dispatch) with
  | Some f -> ( match f op with Some v -> v | None -> Effect.perform (Do op))
  | None -> Effect.perform (Do op)

let load ?site mo loc = do_op (Load { mo; loc; site })

let store ?site mo loc value = ignore (do_op (Store { mo; loc; value; site }))

(* C11 requires the failure order of a CAS to be no stronger than the
   success order and not a release order; this is the strongest legal
   default. *)
let default_fail_mo (mo : mo) : mo =
  match mo with
  | Relaxed | Release -> Relaxed
  | Acquire | Acq_rel -> Acquire
  | Seq_cst -> Seq_cst

let cas_val ?site ?fail_mo mo loc ~expected ~desired =
  let fail_mo = match fail_mo with Some f -> f | None -> default_fail_mo mo in
  let observed = do_op (Cas { mo; fail_mo; loc; expected; desired; site }) in
  (observed = expected, observed)

let cas ?site ?fail_mo mo loc ~expected ~desired =
  fst (cas_val ?site ?fail_mo mo loc ~expected ~desired)

let fetch_add ?site mo loc delta = do_op (Fetch_add { mo; loc; delta; site })

let exchange ?site mo loc value = do_op (Exchange { mo; loc; value; site })

let fence mo = ignore (do_op (Fence { mo }))

let na_load ?site loc = do_op (Na_load { loc; site })

let na_store ?site loc value = ignore (do_op (Na_store { loc; value; site }))

let malloc ?init count = do_op (Alloc { count; init })

let spawn f = do_op (Spawn f)

let join tid = ignore (do_op (Join tid))

let check cond message = ignore (do_op (Check { cond; message }))

let annotate a = ignore (do_op (Annotate a))
