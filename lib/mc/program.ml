type loc = int

type mo = C11.Memory_order.t

type annotation =
  | Method_begin of { name : string; args : int list; obj : int }
  | Method_end of { ret : int option }
  | Op_define
  | Op_clear
  | Op_clear_define
  | Potential_op of string
  | Op_check of string

type op =
  | Load of { mo : mo; loc : loc; site : string option }
  | Store of { mo : mo; loc : loc; value : int; site : string option }
  | Cas of { mo : mo; fail_mo : mo; loc : loc; expected : int; desired : int; site : string option }
  | Fetch_add of { mo : mo; loc : loc; delta : int; site : string option }
  | Exchange of { mo : mo; loc : loc; value : int; site : string option }
  | Fence of { mo : mo }
  | Na_load of { loc : loc; site : string option }
  | Na_store of { loc : loc; value : int; site : string option }
  | Alloc of { count : int; init : int option }
  | Spawn of (unit -> unit)
  | Join of int
  | Annotate of annotation
  | Check of { cond : bool; message : string }

type _ Effect.t += Do : op -> int Effect.t

(* Fast paths around the effect machinery. The scheduler installs a
   per-domain dispatcher with two tiers:

   - [hook]: a general hook consulted before performing {!Do} — it
     commits invisible operations (and, when sound, visible ones)
     without suspending the fiber, returning [None] for operations that
     need a real scheduling decision, which fall back to the effect.
   - [rp_*]: the restore-replay value feed. While a snapshot restore
     re-runs a thread's closure, every operation's result is the next
     entry of its logged value stream; the wrappers below consume it
     directly — no [op] record is built, no option is allocated, no
     closure is entered. The feed is positional, so op payloads are
     irrelevant except for [Spawn], which must also re-register the
     child's closure via [rp_spawn] (fibers are rebuilt from scratch
     after a restore). [rp_limit = 0] (the default) disables the tier;
     a thread's feed drains exactly at the operation it was paused at
     when the snapshot was taken, and that operation then performs the
     effect as usual.

   Replay cost is the hot floor of the arena engine (every explored
   execution replays a whole program prefix), which is why the feed is
   flattened into the dispatcher rather than routed through [hook]. *)
type dispatcher = {
  mutable hook : (op -> int option) option;
  mutable rp_vals : int array;
  mutable rp_next : int;
  mutable rp_limit : int;
  mutable rp_spawn : int -> (unit -> unit) -> unit;
}

let dispatch : dispatcher Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        hook = None;
        rp_vals = [||];
        rp_next = 0;
        rp_limit = 0;
        rp_spawn = (fun _ _ -> invalid_arg "Program: replay feed active with no rp_spawn");
      })

(* Guarded by the callers' [rp_next < rp_limit] check; [rp_limit] never
   exceeds the feed array's length. *)
let[@inline] rp_take d =
  let v = Array.unsafe_get d.rp_vals d.rp_next in
  d.rp_next <- d.rp_next + 1;
  v

let[@inline] slow_op d op =
  match d.hook with
  | Some f -> ( match f op with Some v -> v | None -> Effect.perform (Do op))
  | None -> Effect.perform (Do op)

let do_op op =
  let d = Domain.DLS.get dispatch in
  if d.rp_next < d.rp_limit then rp_take d else slow_op d op

let load ?site mo loc =
  let d = Domain.DLS.get dispatch in
  if d.rp_next < d.rp_limit then rp_take d else slow_op d (Load { mo; loc; site })

let store ?site mo loc value =
  let d = Domain.DLS.get dispatch in
  if d.rp_next < d.rp_limit then ignore (rp_take d)
  else ignore (slow_op d (Store { mo; loc; value; site }))

(* C11 requires the failure order of a CAS to be no stronger than the
   success order and not a release order; this is the strongest legal
   default. *)
let default_fail_mo (mo : mo) : mo =
  match mo with
  | Relaxed | Release -> Relaxed
  | Acquire | Acq_rel -> Acquire
  | Seq_cst -> Seq_cst

let cas_val ?site ?fail_mo mo loc ~expected ~desired =
  let fail_mo = match fail_mo with Some f -> f | None -> default_fail_mo mo in
  let d = Domain.DLS.get dispatch in
  let observed =
    if d.rp_next < d.rp_limit then rp_take d
    else slow_op d (Cas { mo; fail_mo; loc; expected; desired; site })
  in
  (observed = expected, observed)

let cas ?site ?fail_mo mo loc ~expected ~desired =
  fst (cas_val ?site ?fail_mo mo loc ~expected ~desired)

let fetch_add ?site mo loc delta =
  let d = Domain.DLS.get dispatch in
  if d.rp_next < d.rp_limit then rp_take d else slow_op d (Fetch_add { mo; loc; delta; site })

let exchange ?site mo loc value =
  let d = Domain.DLS.get dispatch in
  if d.rp_next < d.rp_limit then rp_take d else slow_op d (Exchange { mo; loc; value; site })

let fence mo = ignore (do_op (Fence { mo }))

let na_load ?site loc =
  let d = Domain.DLS.get dispatch in
  if d.rp_next < d.rp_limit then rp_take d else slow_op d (Na_load { loc; site })

let na_store ?site loc value =
  let d = Domain.DLS.get dispatch in
  if d.rp_next < d.rp_limit then ignore (rp_take d)
  else ignore (slow_op d (Na_store { loc; value; site }))

let malloc ?init count = do_op (Alloc { count; init })

let spawn f =
  let d = Domain.DLS.get dispatch in
  if d.rp_next < d.rp_limit then begin
    (* replayed Spawn: consume the child's tid from the feed and
       re-register its closure — the parent's replay is what rebuilds
       children after a restore *)
    let child = rp_take d in
    d.rp_spawn child f;
    child
  end
  else slow_op d (Spawn f)

let join tid = ignore (do_op (Join tid))

let check cond message = ignore (do_op (Check { cond; message }))

let annotate a = ignore (do_op (Annotate a))
