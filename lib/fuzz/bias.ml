type policy = Uniform | Prefer_switch | Prefer_stale_rf

let all = [ Uniform; Prefer_switch; Prefer_stale_rf ]

let to_string = function
  | Uniform -> "uniform"
  | Prefer_switch -> "prefer-switch"
  | Prefer_stale_rf -> "prefer-stale-rf"

let of_string = function
  | "uniform" -> Some Uniform
  | "prefer-switch" -> Some Prefer_switch
  | "prefer-stale-rf" -> Some Prefer_stale_rf
  | _ -> None

let pp ppf p = Format.pp_print_string ppf (to_string p)

type sampler = { policy : policy; rng : Rng.t; mutable last_tid : int }

let sampler policy rng = { policy; rng; last_tid = -1 }

(* Uniform over the candidate tids that differ from [last], if any. *)
let pick_switch s (candidates : int array) =
  let n = Array.length candidates in
  let others = ref [] in
  Array.iteri (fun i tid -> if tid <> s.last_tid then others := i :: !others) candidates;
  match !others with
  | [] -> Rng.int s.rng n
  | others ->
    (* 3/4 of the time take a switch; always switching would never let a
       thread run twice in a row, missing same-thread reorderings *)
    if Rng.int s.rng 4 < 3 then List.nth others (Rng.int s.rng (List.length others))
    else Rng.int s.rng n

let pick s (d : Mc.Scheduler.decision) =
  let n = Mc.Scheduler.decision_arity d in
  match s.policy, d with
  | Uniform, _ -> Rng.int s.rng n
  | Prefer_switch, Sched { candidates; _ } ->
    let i = pick_switch s candidates in
    s.last_tid <- candidates.(i);
    i
  | Prefer_switch, Choice _ -> Rng.int s.rng n
  | Prefer_stale_rf, Choice _ ->
    (* triangular distribution toward the high end: read candidates are
       listed newest-first, so larger indices are staler writes *)
    max (Rng.int s.rng n) (Rng.int s.rng n)
  | Prefer_stale_rf, Sched _ -> Rng.int s.rng n
