(** Decision-trace minimization by delta debugging.

    A fuzzed execution is identified by its list of chosen decision
    indices; replaying pads missing decisions with index 0 and clamps
    out-of-range ones, so *any* index list is a valid (if different)
    execution. Minimization exploits that tolerance: zero out chunks of
    the list at shrinking granularity, keeping each mutation only if the
    target bug still reproduces, then drop the all-zero tail (replay
    padding regenerates it). Zeroing rather than deleting keeps the
    search well-behaved — deleting an entry shifts every later index onto
    a different decision point, while zeroing perturbs only the points it
    touches.

    The result is never longer than the input, reproduces the bug by
    construction (every kept mutation was verified), and is 1-minimal in
    the limit: no single remaining index can be zeroed. *)

(** [run ~check trace] where [check candidate] replays [candidate] and
    reports whether the target bug fires. [trace] itself must satisfy
    [check]. Returns the minimized trace and the number of [check]
    replays spent. *)
val run : check:(int list -> bool) -> int list -> int list * int
