module A = C11.Action

let kind_tag : A.kind -> int = function
  | Load -> 0
  | Store -> 1
  | Rmw -> 2
  | Na_load -> 3
  | Na_store -> 4
  | Fence -> 5
  | Create _ -> 6
  | Start -> 7
  | Join _ -> 8
  | Finish -> 9

let kind_payload : A.kind -> int = function
  | Create t | Join t -> t
  | Load | Store | Rmw | Na_load | Na_store | Fence | Start | Finish -> 0

let mo_tag : C11.Memory_order.t -> int = function
  | Relaxed -> 0
  | Acquire -> 1
  | Release -> 2
  | Acq_rel -> 3
  | Seq_cst -> 4

(* FNV-1a over the ints describing each action, in commit order. The
   commit order doubles as modification order and the SC order, so it is
   part of the behaviour, not an artifact. *)
let prime = 0x100000001B3L
let offset = 0xCBF29CE484222325L

let fnv h v = Int64.mul (Int64.logxor h (Int64.of_int v)) prime

let fnv_opt h = function
  | None -> fnv h (-1)
  | Some v -> fnv (fnv h 1) v

let execution exec =
  let h = ref offset in
  for i = 0 to C11.Execution.num_actions exec - 1 do
    let a = C11.Execution.action exec i in
    h := fnv !h a.tid;
    h := fnv !h (kind_tag a.kind);
    h := fnv !h (kind_payload a.kind);
    h := fnv !h a.loc;
    h := fnv !h (mo_tag a.mo);
    h := fnv_opt !h a.read_value;
    h := fnv_opt !h a.written_value;
    h := fnv_opt !h a.rf
  done;
  !h
