(* Delegates to the canonical execution-graph fingerprint maintained
   incrementally by [C11.Execution] (per-thread action sequences + rf +
   mo + SC order, tids normalized by creation order). Reusing the
   explorer's equivalence-pruning hash makes fuzz coverage directly
   comparable with the exhaustive explorer's [distinct_graphs]: a fuzz
   campaign's coverage set is a subset of the exhaustive graph set for
   the same program. It is also O(1) per call — the hash is folded in as
   actions commit — where the previous FNV pass rescanned the whole
   committed action list. *)
let execution = C11.Execution.fingerprint
