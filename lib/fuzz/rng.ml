type t = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer (Steele, Lea & Flood; public-domain reference
   constants). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { s = mix (Int64.of_int seed) }

let make2 seed stream =
  { s = mix (Int64.logxor (mix (Int64.of_int seed)) (Int64.mul golden (Int64.of_int (stream + 1)))) }

let bits t =
  t.s <- Int64.add t.s golden;
  mix t.s

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* modulo bias is ~n/2^63 — irrelevant for decision arities *)
  Int64.to_int (Int64.rem (Int64.logand (bits t) Int64.max_int) (Int64.of_int n))

let bool t = Int64.logand (bits t) 1L = 1L
