(** C11Tester-style randomized exploration.

    Where {!Mc.Explorer} enumerates the decision tree exhaustively by
    DFS, this engine samples each scheduling / reads-from decision from a
    seeded, biased PRNG and runs executions until a wall-clock or
    execution budget expires. It reuses the scheduler's replay machinery:
    a run is fully identified by its list of chosen decision indices, so
    every reported bug ships with a seed and a delta-debugged, minimized
    index trace that reproduces it deterministically via {!replay}.

    Determinism contract: execution [i] of seed [s] depends only on
    [(s, i)] and the program, so [run ~seed] with the same
    [max_executions] (and no [time_budget]) reports identical bug lists,
    coverage counts and minimized traces on every host. Time budgets
    trade that for wall-clock control. *)

type config = {
  scheduler : Mc.Scheduler.config;
      (** [sleep_sets] is forcibly disabled: sleep sets encode "earlier
          siblings were explored", which is false under random sampling
          and would mis-prune. *)
  bias : Bias.policy;
  max_executions : int option;  (** stop after this many runs *)
  time_budget : float option;  (** stop after this many seconds *)
  stop_on_first_bug : bool;  (** return as soon as any bug is found *)
  minimize : bool;  (** delta-debug each new bug's trace before reporting *)
  progress : (int -> unit) option;  (** called with the run count periodically *)
}

(** [Prefer_stale_rf] bias, 10_000 executions, no time budget,
    minimization on. At least one of [max_executions] / [time_budget]
    must be set or the campaign never terminates on bug-free programs. *)
val default_config : config

type stats = {
  executions : int;
  feasible : int;  (** complete, consistent executions *)
  pruned_loop_bound : int;
  pruned_max_actions : int;
  buggy : int;  (** feasible executions on which at least one bug fired *)
  coverage : int;  (** distinct {!Fingerprint.execution} values seen *)
  minimization_replays : int;  (** extra executions spent shrinking traces *)
  time : float;  (** monotonic wall-clock seconds, including minimization *)
  time_to_first_bug : float option;  (** seconds from start to first buggy run *)
  truncated : bool;
      (** stopped by [time_budget] or [stop_on_first_bug] before
          [max_executions] ran *)
  check : Mc.Explorer.check_counters;
      (** end-of-campaign snapshot of the checking hook's counters
          (cache hits/misses and truncation warnings); all zero when no
          [check] callback was supplied to {!run} *)
}

(** One deduplicated bug with its reproduction recipe. *)
type found = {
  bug : Mc.Bug.t;
  execution : int;  (** index of the run that found it: replays as [(seed, index)] *)
  trace : int list;  (** decision indices of the finding run *)
  minimized : int list;  (** shrunk trace; never longer than [trace] *)
}

type result = {
  seed : int;
  bias : Bias.policy;
  stats : stats;
  found : found list;  (** deduplicated by {!Mc.Bug.key}, discovery order *)
  graphs : int64 list;
      (** sorted distinct {!Fingerprint.execution} values seen — the
          campaign's coverage set, comparable against the exhaustive
          explorer's [graphs] (same canonical fingerprint) *)
  first_buggy_trace : string option;
  first_buggy_exec : C11.Execution.t option;
}

(** [run ~seed main] fuzzes [main]. [on_feasible] has the same signature
    and contract as {!Mc.Explorer.explore}'s: it runs on every complete
    execution with no built-in bug, so the spec checker's hook plugs in
    unchanged. [check] is snapshotted once at the end of the campaign
    into [stats.check] (note that minimization replays also go through
    [on_feasible], so their cache hits count too). *)
val run :
  ?config:config ->
  ?on_feasible:(C11.Execution.t -> Mc.Scheduler.annot list -> Mc.Bug.t list) ->
  ?check:(unit -> Mc.Explorer.check_counters) ->
  seed:int ->
  (unit -> unit) ->
  result

(** [replay ?scheduler ?on_feasible ~decisions main] re-executes the run
    identified by [decisions] (missing decisions default to index 0,
    out-of-range ones clamp) and returns the scheduler result plus the
    bugs of that single run — built-in bugs, or [on_feasible]'s findings
    when there are none. *)
val replay :
  ?scheduler:Mc.Scheduler.config ->
  ?on_feasible:(C11.Execution.t -> Mc.Scheduler.annot list -> Mc.Bug.t list) ->
  decisions:int list ->
  (unit -> unit) ->
  Mc.Scheduler.run_result * Mc.Bug.t list

(** Repackage a fuzz result as an {!Mc.Explorer.result} so downstream
    consumers of the exhaustive explorer (report printers, the harness)
    work on fuzz campaigns unchanged. [pruned_sleep_set] is 0 by
    construction. *)
val explorer_result : result -> Mc.Explorer.result

(** ["3.0.1.2"]-style rendering of a decision trace, and its inverse
    (for passing reproducers on a command line). *)
val trace_to_string : int list -> string

val trace_of_string : string -> int list option
