(** Decision-sampling policies for randomized exploration, after
    C11Tester (Luo & Demsky, ASPLOS 2021): biasing which thread runs and
    which write a load reads from steers random walks toward the rare
    interleavings and stale reads where weak-memory bugs live. *)

type policy =
  | Uniform  (** every alternative equally likely *)
  | Prefer_switch
      (** scheduling decisions avoid the thread picked at the previous
          decision point, forcing context switches at contended points *)
  | Prefer_stale_rf
      (** reads-from decisions are biased toward older writes —
          C11Tester's key trick for surfacing missing-acquire bugs *)

val all : policy list
val to_string : policy -> string
val of_string : string -> policy option
val pp : Format.formatter -> policy -> unit

(** Per-execution sampler: owns the run's PRNG plus any policy state
    (e.g. the last scheduled thread). Create one per run. *)
type sampler

val sampler : policy -> Rng.t -> sampler

(** [pick s d] samples an index in [\[0, decision_arity d)]. *)
val pick : sampler -> Mc.Scheduler.decision -> int
