(** Execution fingerprints for coverage accounting: two runs that commit
    the same action sequence (same threads, kinds, locations, orders,
    values and reads-from edges, in the same commit order) hash equal, so
    the number of distinct fingerprints counts the distinct behaviours a
    fuzz campaign has actually exercised — random walks revisit the same
    executions constantly, and raw run counts wildly overstate
    coverage. *)

(** Hash of the committed action graph. Deterministic across runs and
    processes (no randomized hashing). *)
val execution : C11.Execution.t -> int64
