(** Execution fingerprints for coverage accounting: two runs that induce
    the same execution graph (same per-thread action sequences, reads-from
    edges, modification order and SC order, with thread ids normalized by
    creation order) hash equal, so the number of distinct fingerprints
    counts the distinct behaviours a fuzz campaign has actually exercised
    — random walks revisit the same executions constantly, and raw run
    counts wildly overstate coverage. *)

(** Canonical hash of the committed execution graph — an alias for
    {!C11.Execution.fingerprint}, the same hash the exhaustive explorer's
    equivalence pruning and [distinct_graphs] counter use, so fuzz
    coverage and exhaustive graph counts share a denominator. O(1): the
    hash is maintained incrementally as actions commit. Deterministic
    across runs and processes (no randomized hashing). *)
val execution : C11.Execution.t -> int64
