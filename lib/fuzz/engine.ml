module S = Mc.Scheduler
module Vec = C11.Vec

type config = {
  scheduler : S.config;
  bias : Bias.policy;
  max_executions : int option;
  time_budget : float option;
  stop_on_first_bug : bool;
  minimize : bool;
  progress : (int -> unit) option;
}

let default_config =
  {
    scheduler = { S.default_config with sleep_sets = false };
    bias = Bias.Prefer_stale_rf;
    max_executions = Some 10_000;
    time_budget = None;
    stop_on_first_bug = false;
    minimize = true;
    progress = None;
  }

type stats = {
  executions : int;
  feasible : int;
  pruned_loop_bound : int;
  pruned_max_actions : int;
  buggy : int;
  coverage : int;
  minimization_replays : int;
  time : float;
  time_to_first_bug : float option;
  truncated : bool;
  check : Mc.Explorer.check_counters;
}

type found = {
  bug : Mc.Bug.t;
  execution : int;
  trace : int list;
  minimized : int list;
}

type result = {
  seed : int;
  bias : Bias.policy;
  stats : stats;
  found : found list;
  graphs : int64 list;
  first_buggy_trace : string option;
  first_buggy_exec : C11.Execution.t option;
}

(* The chosen-index list of a completed run: together with the program it
   replays the execution exactly (the scheduler records every non-trivial
   decision point in order). *)
let decisions_of_trace trace = List.map S.decision_chosen (Vec.to_list trace)

let bugs_of_run ?on_feasible (r : S.run_result) =
  match r.outcome with
  | S.Complete -> (
    match r.bugs, on_feasible with
    | [], Some check -> check r.exec r.annots
    | builtin, _ -> builtin)
  | S.Pruned_loop_bound _ | S.Pruned_max_actions | S.Pruned_sleep_set | S.Pruned_equiv -> []

let replay ?(scheduler = default_config.scheduler) ?on_feasible ~decisions main =
  let scheduler = { scheduler with S.sleep_sets = false } in
  let remaining = ref decisions in
  let pick _ =
    match !remaining with
    | [] -> 0
    | i :: tl ->
      remaining := tl;
      i
  in
  let r = S.run ~pick ~config:scheduler ~trace:(Vec.create ()) main in
  (r, bugs_of_run ?on_feasible r)

let run ?(config = default_config) ?on_feasible
    ?(check = fun () -> Mc.Explorer.no_check_counters) ~seed main =
  let scheduler = { config.scheduler with S.sleep_sets = false } in
  let t0 = Mc.Monotonic.now () in
  let executions = ref 0 in
  let feasible = ref 0 in
  let pruned_loop = ref 0 in
  let pruned_max = ref 0 in
  let buggy = ref 0 in
  let coverage : (int64, unit) Hashtbl.t = Hashtbl.create 256 in
  let seen_bugs : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let found = ref [] in
  let minimization_replays = ref 0 in
  let time_to_first_bug = ref None in
  let first_buggy_trace = ref None in
  let first_buggy_exec = ref None in
  let truncated = ref false in
  let continue_ = ref true in
  while !continue_ do
    let run_index = !executions in
    (* per-run stream: execution i depends only on (seed, i) *)
    let sampler = Bias.sampler config.bias (Rng.make2 seed run_index) in
    let trace = Vec.create () in
    let r = S.run ~pick:(Bias.pick sampler) ~config:scheduler ~trace main in
    incr executions;
    (match config.progress with
    | Some f when !executions mod 256 = 0 -> f !executions
    | _ -> ());
    (match r.outcome with
    | S.Complete -> (
      incr feasible;
      Hashtbl.replace coverage (Fingerprint.execution r.exec) ();
      match bugs_of_run ?on_feasible r with
      | [] -> ()
      | bugs ->
        incr buggy;
        if !time_to_first_bug = None then
          time_to_first_bug := Some (Mc.Monotonic.now () -. t0);
        if !first_buggy_trace = None then begin
          first_buggy_trace := Some (Fmt.str "%a" C11.Execution.pp r.exec);
          first_buggy_exec := Some r.exec
        end;
        let decisions = decisions_of_trace trace in
        List.iter
          (fun b ->
            let key = Mc.Bug.key b in
            if not (Hashtbl.mem seen_bugs key) then begin
              Hashtbl.add seen_bugs key ();
              let minimized =
                if not config.minimize then decisions
                else begin
                  let check cand =
                    let _, bugs = replay ~scheduler ?on_feasible ~decisions:cand main in
                    List.exists (fun b' -> Mc.Bug.key b' = key) bugs
                  in
                  let m, replays = Minimize.run ~check decisions in
                  minimization_replays := !minimization_replays + replays;
                  m
                end
              in
              found := { bug = b; execution = run_index; trace = decisions; minimized } :: !found
            end)
          bugs;
        if config.stop_on_first_bug then begin
          truncated := true;
          continue_ := false
        end)
    | S.Pruned_loop_bound _ -> incr pruned_loop
    | S.Pruned_max_actions -> incr pruned_max
    | S.Pruned_sleep_set -> () (* unreachable: sleep sets are disabled *)
    | S.Pruned_equiv -> () (* unreachable: no [prune] callback is passed *));
    if !continue_ then begin
      let capped =
        match config.max_executions with Some m -> !executions >= m | None -> false
      in
      let timed_out =
        match config.time_budget with
        | Some b -> Mc.Monotonic.now () -. t0 >= b
        | None -> false
      in
      if timed_out && not capped then truncated := true;
      if capped || timed_out then continue_ := false
    end
  done;
  {
    seed;
    bias = config.bias;
    stats =
      {
        executions = !executions;
        feasible = !feasible;
        pruned_loop_bound = !pruned_loop;
        pruned_max_actions = !pruned_max;
        buggy = !buggy;
        coverage = Hashtbl.length coverage;
        minimization_replays = !minimization_replays;
        time = Mc.Monotonic.now () -. t0;
        time_to_first_bug = !time_to_first_bug;
        truncated = !truncated;
        check = check ();
      };
    found = List.rev !found;
    graphs =
      List.sort_uniq Int64.compare (Hashtbl.fold (fun k () acc -> k :: acc) coverage []);
    first_buggy_trace = !first_buggy_trace;
    first_buggy_exec = !first_buggy_exec;
  }

let explorer_result (r : result) : Mc.Explorer.result =
  {
    stats =
      {
        explored = r.stats.executions;
        feasible = r.stats.feasible;
        pruned_loop_bound = r.stats.pruned_loop_bound;
        pruned_max_actions = r.stats.pruned_max_actions;
        pruned_sleep_set = 0;
        pruned_equiv = 0;
        distinct_graphs = r.stats.coverage;
        buggy = r.stats.buggy;
        truncated = r.stats.truncated;
        time = r.stats.time;
        minor_words = 0.;
        snapshots = 0;
        restores = 0;
        commits = 0;
        fiber_switches = 0;
        inline_ops = 0;
        rf_queries = 0;
        rf_fast = 0;
        rf_rejected = 0;
        check = r.stats.check;
      };
    bugs = List.map (fun f -> f.bug) r.found;
    first_buggy_trace = r.first_buggy_trace;
    first_buggy_exec = r.first_buggy_exec;
    graphs = r.graphs;
    closed = [];
  }

let trace_to_string l = String.concat "." (List.map string_of_int l)

let trace_of_string s =
  if String.trim s = "" then Some []
  else
    let parts = String.split_on_char '.' (String.trim s) in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: tl -> (
        match int_of_string_opt p with
        | Some i when i >= 0 -> go (i :: acc) tl
        | _ -> None)
    in
    go [] parts
