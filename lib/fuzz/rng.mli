(** Deterministic splitmix64 PRNG.

    Self-contained so fuzz runs replay bit-for-bit across OCaml versions
    (the stdlib [Random] algorithm changed in 5.0 and may change again);
    a (seed, stream) pair fully determines the sequence. *)

type t

(** [make seed] seeds a generator. The seed is pre-mixed, so nearby
    seeds produce unrelated sequences. *)
val make : int -> t

(** [make2 seed stream] derives the [stream]-th independent generator of
    [seed] — one per fuzzed execution, so any single execution can be
    regenerated from [(seed, index)] without replaying its
    predecessors. *)
val make2 : int -> int -> t

(** Next raw 64-bit output. *)
val bits : t -> int64

(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] when
    [n <= 0]. *)
val int : t -> int -> int

(** Fair coin. *)
val bool : t -> bool
