(* Drop the all-zero tail: replay pads fresh decision points with 0, so
   trailing zeros are redundant. *)
let strip_tail l =
  let rec drop = function 0 :: tl -> drop tl | l -> l in
  List.rev (drop (List.rev l))

let run ~check trace =
  let replays = ref 0 in
  let check l =
    incr replays;
    check l
  in
  let arr = Array.of_list trace in
  let n = Array.length arr in
  let candidate () = strip_tail (Array.to_list arr) in
  (* ddmin-style: zero chunks at halving granularity; [arr] always holds
     a verified reproducer. *)
  let chunk = ref (max 1 ((n + 1) / 2)) in
  let continue_ = ref (n > 0) in
  while !continue_ do
    let pos = ref 0 in
    while !pos < n do
      let hi = min n (!pos + !chunk) in
      let dirty = ref false in
      for i = !pos to hi - 1 do
        if arr.(i) <> 0 then dirty := true
      done;
      if !dirty then begin
        let saved = Array.sub arr !pos (hi - !pos) in
        Array.fill arr !pos (hi - !pos) 0;
        if not (check (candidate ())) then Array.blit saved 0 arr !pos (hi - !pos)
      end;
      pos := hi
    done;
    if !chunk = 1 then continue_ := false else chunk := !chunk / 2
  done;
  (candidate (), !replays)
