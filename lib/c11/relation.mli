(** Small dense-graph kit used for method-call ordering relations:
    reachability, acyclicity, and bounded enumeration of topological
    sorts. Node ids are [0 .. n-1]. *)

type t

(** [create n] is the empty relation over [n] nodes. *)
val create : int -> t

val size : t -> int

(** [add_edge r a b] records [a -> b]. Self-edges are ignored. *)
val add_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool

(** Direct successors of a node. *)
val successors : t -> int -> int list

(** Direct predecessors of a node. *)
val predecessors : t -> int -> int list

(** [reachable r a b]: is there a path [a ->+ b]? *)
val reachable : t -> int -> int -> bool

(** [ordered r a b]: [reachable a b || reachable b a]. *)
val ordered : t -> int -> int -> bool

val is_acyclic : t -> bool

(** Strict down-set of a node: every [x] with [x ->+ node]. *)
val down_set : t -> int -> int list

(** [topological_sorts ?max ?sample ~nodes r] enumerates linear extensions
    of [r] restricted to [nodes].

    With [sample = Some (count, seed)] it instead draws [count] random
    linear extensions (with replacement) from a seeded generator — the
    checker's "randomly generate and check a user-customized number of
    sequential histories" option. Otherwise enumeration is exhaustive but
    truncated after [max] (default 20_000) results. Returns the sorts and
    whether the enumeration was truncated. *)
val topological_sorts :
  ?max:int -> ?sample:int * int -> nodes:int list -> t -> int list list * bool

(** [walk_linear_extensions ?max ~nodes r ~init ~enter ~leaf] is the
    prefix-sharing counterpart of {!topological_sorts}: a DFS over the
    same topological-sort tree that threads a caller state down the
    recursion, so a prefix shared by many extensions is presented to
    [enter] once instead of once per extension.

    [enter st x] extends the prefix state [st] with node [x]; returning
    [`Stop] aborts the entire walk (the checker's early exit on the
    first violating branch). [leaf st] fires on every complete
    extension; [`Stop] likewise aborts the walk.

    Child order and the [max] leaf budget match {!topological_sorts}
    exactly: a walk that never returns [`Stop] attempts precisely the
    extensions the enumerator returns, in the same order, and the result
    is [true] iff the enumerator would have reported truncation. *)
val walk_linear_extensions :
  ?max:int ->
  nodes:int list ->
  t ->
  init:'a ->
  enter:('a -> int -> [ `Enter of 'a | `Stop ]) ->
  leaf:('a -> [ `Continue | `Stop ]) ->
  bool

(** One arbitrary linear extension over the given nodes (raises
    [Invalid_argument] on a cycle). *)
val any_topological_sort : nodes:int list -> t -> int list
