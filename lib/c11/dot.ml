let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_label (a : Action.t) = escape (Fmt.str "%a" Action.pp a)

(* A read synchronizes with its writer when it is an acquire and the
   writer heads (or sits inside) a release sequence: exactly the
   condition under which Execution joined the writer's release clock. *)
let sw_edge exec (a : Action.t) =
  if not (Action.is_atomic_read a && Memory_order.is_acquire a.mo) then None
  else
    match a.rf with
    | None -> None
    | Some src ->
      let w = Execution.action exec src in
      if w.release_clock <> None then Some (src, a.id) else None

let render ?(highlight = []) ?(highlight_sites = []) exec =
  let cited (src, dst) = List.mem (src, dst) highlight in
  let extra e = if cited e then ", color=red, penwidth=2.2" else "" in
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph execution {\n";
  pr "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  let n = Execution.num_actions exec in
  let actions = List.init n (Execution.action exec) in
  let tids = List.sort_uniq compare (List.map (fun (a : Action.t) -> a.tid) actions) in
  (* per-thread clusters in program order; sited actions carry their
     Ords site name in the label (via Action.pp) and lint-cited sites
     are filled so advisor witnesses read at a glance *)
  List.iter
    (fun tid ->
      pr "  subgraph cluster_t%d {\n    label=\"T%d\";\n" tid tid;
      let mine =
        List.sort
          (fun (a : Action.t) (b : Action.t) -> compare a.seq b.seq)
          (List.filter (fun (a : Action.t) -> a.tid = tid) actions)
      in
      List.iter
        (fun (a : Action.t) ->
          let marked =
            match a.site with Some s -> List.mem s highlight_sites | None -> false
          in
          if marked then
            pr "    a%d [label=\"%s\", style=filled, fillcolor=khaki];\n" a.id (node_label a)
          else pr "    a%d [label=\"%s\"];\n" a.id (node_label a))
        mine;
      let rec chain = function
        | (a : Action.t) :: (b : Action.t) :: rest ->
          pr "    a%d -> a%d [style=bold, color=gray40];\n" a.id b.id;
          chain (b :: rest)
        | _ -> ()
      in
      chain mine;
      pr "  }\n")
    tids;
  (* reads-from; synchronizing reads are labelled rf+sw in blue *)
  List.iter
    (fun (a : Action.t) ->
      match a.rf with
      | Some src ->
        (match sw_edge exec a with
        | Some e ->
          pr "  a%d -> a%d [color=blue, label=\"rf+sw\", fontsize=8%s];\n" src a.id (extra e)
        | None ->
          pr "  a%d -> a%d [color=darkgreen, label=\"rf\", fontsize=8%s];\n" src a.id
            (extra (src, a.id)))
      | None -> ())
    actions;
  (* per-location modification order (commit order of writes) *)
  let locs = List.sort_uniq compare (List.filter_map (fun (a : Action.t) -> if Action.is_write a then Some a.loc else None) actions) in
  List.iter
    (fun loc ->
      let writes = List.filter (fun (a : Action.t) -> Action.is_write a && a.loc = loc) actions in
      let rec chain = function
        | (a : Action.t) :: (b : Action.t) :: rest ->
          pr "  a%d -> a%d [style=dashed, color=orange, label=\"mo\", fontsize=8%s];\n" a.id b.id
            (extra (a.id, b.id));
          chain (b :: rest)
        | _ -> ()
      in
      chain writes)
    locs;
  (* cited edges that coincide with no rf/mo edge: draw as bare hb *)
  let drawn (src, dst) =
    (match (Execution.action exec dst).rf with Some s when s = src -> true | _ -> false)
    || List.exists
         (fun (a : Action.t) ->
           Action.is_write a && a.id = src
           && List.exists
                (fun (b : Action.t) -> Action.is_write b && b.id = dst && b.loc = a.loc)
                actions)
         actions
  in
  List.iter
    (fun (src, dst) ->
      if (not (drawn (src, dst))) && src < n && dst < n then
        pr "  a%d -> a%d [color=red, style=dashed, label=\"hb\", fontsize=8, penwidth=2.2];\n" src dst)
    highlight;
  pr "}\n";
  Buffer.contents buf

let write_file ?highlight ?highlight_sites exec path =
  let oc = open_out path in
  output_string oc (render ?highlight ?highlight_sites exec);
  close_out oc
