(** Vector clocks over thread ids.

    Clocks represent happens-before knowledge: entry [i] is the largest
    per-thread sequence number of thread [i] known to happen before the
    holder. Thread ids are small dense integers; clocks grow on demand.

    Representation: clocks confined to tids 0..3 with entries <= 32767
    are packed into a single immediate int (four 15-bit fields), so
    [join]/[set]/[leq] on them are allocation-free word arithmetic and
    equal packed clocks are physically equal. Anything larger spills
    transparently to an immutable int-array fallback. The two forms are
    canonical — a clock is packed iff it is packable — so physical
    equality still implies [equal] and the mixed case is never equal
    (see the representation contract in clock.ml and HACKING.md). *)

type t

(** The clock that knows nothing. *)
val empty : t

(** [singleton ~tid ~seq] knows only step [seq] of thread [tid]. *)
val singleton : tid:int -> seq:int -> t

val get : t -> int -> int

(** [set c tid seq] functionally updates entry [tid] to [max current seq]. *)
val set : t -> int -> int -> t

(** Pointwise maximum. *)
val join : t -> t -> t

(** [covers c ~tid ~seq] holds when [c] already knows step [seq] of
    [tid], i.e. that step happens before the holder of [c]. *)
val covers : t -> tid:int -> seq:int -> bool

(** [leq a b] is pointwise ordering: [b] knows everything [a] knows. *)
val leq : t -> t -> bool

val equal : t -> t -> bool

(** True when the clock is in the packed immediate form — i.e. all its
    knowledge fits tids 0..3 with entries <= 32767. Representation
    introspection for tests and benchmarks; semantics never depend on
    it. *)
val is_packed : t -> bool

val pp : Format.formatter -> t -> unit
