(** An incrementally-built C/C++11 execution graph.

    The scheduler commits one action at a time; the graph maintains
    sequenced-before (per-thread step numbers), reads-from, modification
    order, release sequences, synchronizes-with (including the C11 fence
    rules), happens-before (as vector clocks) and the SC total order.

    Modification order and the SC order are both represented by the commit
    order: the model checker enumerates all schedules, so every mo/SC
    total order consistent with causality is explored (see DESIGN.md,
    "Memory model approximations"). *)

type t

(** Problems detected while committing actions — the "built-in checks" of
    the paper's Figure 8 plus assertion support for the DSL. *)
type problem =
  | Data_race of { first : Action.t; second : Action.t }
  | Uninitialized_load of Action.t

(** [create ?rf_kernel ()]: [rf_kernel] (default on) routes candidate
    filtering through the incremental {!Rf_kernel} fast path — the
    memoized coherence floors that reject incoherent rf choices before
    replay. With it off every query takes the full binary-search rule
    walk; both paths compute identical floors, so graph sets, bug lists
    and verdicts are bit-identical either way (the differential tests
    and the bench equivalence gate enforce this). *)
val create : ?rf_kernel:bool -> unit -> t

(** [(queries, fast, rejected)] accumulated by candidate filtering on
    this execution arena: floor queries answered, memoized O(1) answers
    among them, and the total number of stores excluded before replay
    (the sum of returned floors). Cumulative — never rewound by
    {!restore}. *)
val rf_counters : t -> int * int * int

(** Total actions committed on this arena since creation — the commit
    phase counter. Cumulative like {!rf_counters}: never rewound by
    {!restore}, so across an arena session it counts every commit the
    search performed, including ones later undone. *)
val commit_count : t -> int

(** {1 Locations} *)

(** [alloc t ~tid ~count ~init] reserves [count] fresh consecutive
    locations and returns the first. With [init = Some v] each cell is
    initialized by a committed non-atomic store of [v] (making subsequent
    loads defined); with [None] the cells start uninitialized, as malloc'd
    C memory does. *)
val alloc : t -> tid:int -> count:int -> init:int option -> int

(** {1 Threads} *)

(** [commit_create t ~tid ~child] commits a thread-create action in
    [tid]; the child's first action will happen after it. *)
val commit_create : t -> tid:int -> child:int -> Action.t

val commit_start : t -> tid:int -> Action.t
val commit_finish : t -> tid:int -> Action.t

(** [commit_join t ~tid ~target] requires [target] to have finished. *)
val commit_join : t -> tid:int -> target:int -> Action.t

(** {1 Reads} *)

(** [read_candidates t ~tid ~mo ~loc] lists the writes a new atomic load
    by [tid] with order [mo] may read from, newest-first, after coherence
    and SC filtering. The empty list means the location is
    uninitialized. Candidate filtering is incremental: per-(location,
    thread) monotone coherence indices are maintained on every commit,
    so one query costs O(threads * log stores) instead of rescanning the
    store and read lists. *)
val read_candidates : t -> tid:int -> mo:Memory_order.t -> loc:int -> Action.t list

(** Reference implementation of {!read_candidates} that rescans the full
    per-location store/read lists per query — the oracle the incremental
    coherence indices are differentially tested against. *)
val read_candidates_ref : t -> tid:int -> mo:Memory_order.t -> loc:int -> Action.t list

(** Allocation-free variant of {!read_candidates} for the hot load path:
    the candidate set is always a contiguous suffix of modification
    order, so [read_window] returns just its size and
    [read_candidate t ~loc i] is candidate [i] in the same newest-first
    order the list version uses. A window of [0] means uninitialized. *)
val read_window : t -> tid:int -> mo:Memory_order.t -> loc:int -> int

val read_candidate : t -> loc:int -> int -> Action.t

(** The unique write an RMW may read: the mo-maximal write, if any. *)
val rmw_candidate : t -> loc:int -> Action.t option

(** [commit_load t ~tid ~mo ~loc ~rf ?site ()] commits an atomic load
    reading from write [rf] (an element of [read_candidates]); [rf =
    None] commits an uninitialized load reading 0 and reports it. *)
val commit_load :
  t ->
  tid:int ->
  mo:Memory_order.t ->
  loc:int ->
  rf:Action.t option ->
  ?site:string ->
  unit ->
  Action.t * problem list

val commit_na_load : t -> tid:int -> loc:int -> ?site:string -> unit -> Action.t * problem list

(** {1 Writes} *)

val commit_store :
  t -> tid:int -> mo:Memory_order.t -> loc:int -> value:int -> ?site:string -> unit -> Action.t * problem list

val commit_na_store : t -> tid:int -> loc:int -> value:int -> ?site:string -> unit -> Action.t * problem list

(** [commit_rmw] commits a successful read-modify-write reading the
    mo-maximal write and writing [value]. On an uninitialized location
    the read half observes garbage — reported as an uninitialized
    access, exactly like {!commit_load} with [rf = None] — while the
    write half still commits. *)
val commit_rmw :
  t -> tid:int -> mo:Memory_order.t -> loc:int -> value:int -> ?site:string -> unit -> Action.t * problem list

(** {1 Fences} *)

val commit_fence : t -> tid:int -> mo:Memory_order.t -> Action.t

(** {1 Queries} *)

val num_actions : t -> int

(** [action t id] for [0 <= id < num_actions t]; actions are in commit
    order, which also gives mo per location and the SC total order. *)
val action : t -> int -> Action.t

(** The newest committed write to a location, if any; its value is the
    "current value" non-atomic loads observe. *)
val last_write : t -> int -> Action.t option

(** [happens_before t a b] over action ids. *)
val happens_before : t -> int -> int -> bool

(** [hb_or_sc t a b]: happens-before, or both seq_cst with [a] earlier in
    the SC total order — the relation that orders ordering points (paper
    section 5.2). *)
val hb_or_sc : t -> int -> int -> bool

(** Canonical 64-bit fingerprint of the execution graph committed so
    far, invariant under the commit interleaving: it digests the
    per-thread action sequences (kind, location, memory order, values,
    and reads-from as the (tid, seq) of the source write), per-location
    modification order, and the SC total order restricted to seq_cst
    actions. Two runs hash equal iff their graphs agree on all of those
    (modulo 64-bit collisions); maintained incrementally, so a call is
    O(1). Thread ids are canonical already — they are assigned in
    creation order. *)
val fingerprint : t -> int64

(** {1 Arena watermarks}

    The graph is stored in append-only arenas (flat action store, dense
    per-thread and per-location chains, fingerprint-chain histories)
    plus an undo journal for the few scalars commits overwrite. [mark]
    captures the current high-water marks in O(1); [restore] rewinds the
    graph to a mark by popping arena segments and replaying the journal
    backwards — cost proportional to the number of actions undone, not
    to the size of the graph.

    Restoring invalidates nothing that was committed at or before the
    mark: [Action.t] records and clocks are immutable, so references to
    them stay valid. References to actions committed {e after} the mark
    must not be retained across a restore. *)

type mark

val mark : t -> mark

(** [restore t m] rewinds [t] to the state captured by [m], which must
    come from this [t] with no intervening restore past it. *)
val restore : t -> mark -> unit

(** Deep copy: the result shares only immutable values (actions, clocks)
    with the original and is unaffected by later commits or restores on
    it. Used to retain an execution past the arena's next restore. *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
