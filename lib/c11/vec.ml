type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let[@inline] length v = v.len

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data = Array.make cap' x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

(* Element accesses validate against [len] explicitly, then use unsafe
   array primitives: the explicit check subsumes the bounds check the
   safe primitives would repeat. *)

let[@inline] push v x =
  if v.len = Array.length v.data then grow v x;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let[@inline] get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  Array.unsafe_get v.data i

let[@inline] set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  Array.unsafe_set v.data i x

let[@inline] last v =
  if v.len = 0 then invalid_arg "Vec.last";
  Array.unsafe_get v.data (v.len - 1)

let[@inline] last_or v default =
  if v.len = 0 then default else Array.unsafe_get v.data (v.len - 1)

let[@inline] is_empty v = v.len = 0

let truncate v n = if n < 0 || n > v.len then invalid_arg "Vec.truncate" else v.len <- n

let[@inline] pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let copy v = { data = Array.copy v.data; len = v.len }

let[@inline] unsafe_data v = v.data

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let to_list v = List.init v.len (fun i -> Array.unsafe_get v.data i)

let fold_right_while f v init =
  let rec go i acc =
    if i < 0 then acc
    else
      match f i (Array.unsafe_get v.data i) acc with
      | `Continue acc -> go (i - 1) acc
      | `Stop acc -> acc
  in
  go (v.len - 1) init
