

type problem =
  | Data_race of { first : Action.t; second : Action.t }
  | Uninitialized_load of Action.t

(* ------------------------------------------------------------------ *)
(* Canonical graph fingerprint                                         *)

(* Incremental 64-bit fingerprint of the execution graph, invariant
   under the commit interleaving: two runs whose graphs agree on
   per-thread action sequences (kinds, locations, orders, values, and
   reads-from expressed as the (tid, seq) of the source write), on
   per-location modification order, and on the SC total order restricted
   to seq_cst actions hash equal — and runs differing in any of those
   hash differently (modulo 64-bit collisions). Thread ids are already
   canonical: they are assigned in creation order.

   Representation: an order-sensitive digest chain per thread, per
   location (mo) and for the SC order, XOR-folded into one running
   aggregate. Each chain update costs O(1): the aggregate is XORed with
   [old_chain ^ new_chain], so no end-of-run walk is needed.

   Chains are mixed in native [int] (63-bit, wrapping) so the hot path
   never boxes — an [Int64] digest would allocate on every arithmetic
   step. The exported {!fingerprint} widens to [int64] at the
   boundary. *)

let mixh z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let golden = 0x1E3779B97F4A7C15
let h_step h x = mixh ((h * golden) + x)
let h_int h (i : int) = h_step h i
let h_opt h = function None -> h_int h (-2) | Some v -> h_int (h_int h 2) v

let kind_tag : Action.kind -> int = function
  | Load -> 0
  | Store -> 1
  | Rmw -> 2
  | Na_load -> 3
  | Na_store -> 4
  | Fence -> 5
  | Create _ -> 6
  | Start -> 7
  | Join _ -> 8
  | Finish -> 9

(* The embedded thread id of Create/Join is part of the behaviour: it is
   the value the operation returns to (or consumes from) the program. *)
let kind_payload : Action.kind -> int = function
  | Create t | Join t -> t
  | Load | Store | Rmw | Na_load | Na_store | Fence | Start | Finish -> -1

let mo_tag : Memory_order.t -> int = function
  | Relaxed -> 0
  | Acquire -> 1
  | Release -> 2
  | Acq_rel -> 3
  | Seq_cst -> 4

type thread_state = {
  mutable clock : Clock.t;  (* knowledge including own committed steps *)
  mutable seq : int;
  mutable pending_acquire : Clock.t;  (* rule 29.8p3/p4: consumed by acquire fences *)
  mutable release_fence : Clock.t option;  (* clock at the latest release fence *)
  mutable sc_fences : (int * int) list;  (* (seq, commit id), newest first *)
  mutable inherited : Clock.t;  (* parent clock at Create, joined at Start *)
  mutable fclock : Clock.t;
      (* foreign-knowledge clock: agrees with [clock] on every entry but
         the thread's own, and — the property the rf-kernel memo keys
         on — changes object identity only when a join actually adds
         foreign knowledge. Own-seq bumps leave it untouched, so a
         spin-loop re-reading the same store keeps the same object. *)
  mutable fp_chain : int;  (* fingerprint chain over this thread's actions *)
  chain : int Vec.t;  (* this thread's action ids, in commit order *)
  fp_hist : int Vec.t;  (* fp_chain value before each of this thread's actions *)
}

(* Undo journal for the thread/graph scalars that are overwritten rather
   than appended on commit: each entry stores the value a field held
   before one commit mutated it. [restore] pops entries (newest first)
   until the journal is back at the watermark, so nested overwrites of
   the same field unwind to exactly the value it held at the mark. *)
type jentry =
  | J_pending of int * Clock.t  (* tid, previous pending_acquire *)
  | J_release_fence of int * Clock.t option  (* tid, previous release_fence *)
  | J_inherited of int * Clock.t  (* tid, previous inherited *)
  | J_fclock of int * Clock.t  (* tid, previous foreign-knowledge clock *)
  | J_next_loc of int  (* previous next_loc *)

type loc_state = {
  stores : Action.t Vec.t;  (* every write, commit order = modification order *)
  reads : (Action.t * int) Vec.t;  (* atomic reads with the mo index they read *)
  na_reads : Action.t Vec.t;
  rfk : Rf_kernel.loc;
      (* rf-consistency saturation state: per-thread coherence columns
         and the SC-store order, fed on every commit/undo (see
         rf_kernel.mli). Monotonicity of its columns is what lets
         candidate filtering binary-search instead of rescanning the
         whole store list. *)
  mutable na_stores : int;  (* non-atomic stores: gates race scans *)
  mutable fp_mo : int;  (* fingerprint chain over mo *)
  fp_mo_hist : int Vec.t;  (* fp_mo value before each store to this location *)
  acq_memo : Clock.t option Vec.t;
      (* memoized [acquired_clock] per mo index — a pure function of the
         store prefix up to that index, which arena truncation preserves,
         so entries survive (and pay off across) backtracking restores.
         Kept the same length as [stores]. *)
}

type t = {
  actions : Action.t Vec.t;
  mo_idx : int Vec.t;  (* action id -> mo index of the store, or -1 *)
  mutable threads : thread_state array;
  locs : loc_state option Vec.t;  (* dense: indexed by location id *)
  mutable next_loc : int;
  mutable fp : int;  (* XOR-fold of all fingerprint chains *)
  mutable fp_sc : int;  (* fingerprint chain over the SC order *)
  fp_sc_hist : int Vec.t;  (* fp_sc value before each seq_cst action *)
  journal : jentry Vec.t;
  use_kernel : bool;  (* route candidate floors through the rf kernel *)
  mutable sc_fence_live : int;
      (* committed seq_cst fences across all threads. Zero means the
         fence-mediated SC rules (29.3p5/p6/p7) are all vacuous, which
         is what licenses the kernel's O(1) fast path. *)
  rfc : Rf_kernel.counters;
  mutable n_commits : int;
      (* cumulative actions committed, never rewound by [restore] —
         a phase counter, like [rfc], not graph state *)
}

let create ?(rf_kernel = true) () =
  {
    actions = Vec.create ();
    mo_idx = Vec.create ();
    threads = [||];
    locs = Vec.create ();
    next_loc = 0;
    fp = 0;
    fp_sc = 0;
    fp_sc_hist = Vec.create ();
    journal = Vec.create ();
    use_kernel = rf_kernel;
    sc_fence_live = 0;
    rfc = Rf_kernel.counters_create ();
    n_commits = 0;
  }

let rf_counters t = (t.rfc.Rf_kernel.queries, t.rfc.Rf_kernel.fast, t.rfc.Rf_kernel.rejected)
let commit_count t = t.n_commits

let new_thread_state () =
  {
    clock = Clock.empty;
    seq = 0;
    pending_acquire = Clock.empty;
    release_fence = None;
    sc_fences = [];
    inherited = Clock.empty;
    fclock = Clock.empty;
    fp_chain = 0;
    chain = Vec.create ();
    fp_hist = Vec.create ();
  }

let thread t tid =
  let n = Array.length t.threads in
  if tid >= n then begin
    let threads = Array.init (tid + 4) (fun i -> if i < n then t.threads.(i) else new_thread_state ()) in
    t.threads <- threads
  end;
  t.threads.(tid)

let find_loc t loc = if loc < Vec.length t.locs then Vec.get t.locs loc else None

let loc_state t loc =
  match find_loc t loc with
  | Some ls -> ls
  | None ->
    let ls =
      {
        stores = Vec.create ();
        reads = Vec.create ();
        na_reads = Vec.create ();
        rfk = Rf_kernel.loc_create ();
        na_stores = 0;
        fp_mo = h_int 0 loc;
        fp_mo_hist = Vec.create ();
        acq_memo = Vec.create ();
      }
    in
    while Vec.length t.locs <= loc do
      Vec.push t.locs None
    done;
    Vec.set t.locs loc (Some ls);
    ls

let num_actions t = Vec.length t.actions

let action t id = Vec.get t.actions id

let fingerprint t = Int64.of_int (mixh (t.fp lxor Vec.length t.actions))

(* Index maintenance on commit. *)

let push_store t ls (a : Action.t) =
  let idx = Vec.length ls.stores in
  Vec.push ls.stores a;
  Vec.set t.mo_idx a.id idx;
  Rf_kernel.on_write ls.rfk ~tid:a.tid ~seq:a.seq ~id:a.id ~idx
    ~sc:(Memory_order.is_seq_cst a.mo);
  if a.kind = Action.Na_store then ls.na_stores <- ls.na_stores + 1;
  (* Opportunistic release-sequence memo: [acquired_clock] at the new
     top index is derivable in O(1) for the two shapes the hot paths
     hit — the location's first store (the sequence is just this write),
     and an RMW whose predecessor's memo is known (an RMW atop the chain
     invalidates no lower head, so it only adds its own release clock).
     Anything else stays lazy and is filled by the walk on first read. *)
  let memo =
    if idx = 0 then
      Some (match a.release_clock with Some rc -> rc | None -> Clock.empty)
    else if a.kind = Action.Rmw then begin
      match Vec.get ls.acq_memo (idx - 1) with
      | Some prev ->
        Some
          (match a.release_clock with Some rc -> Clock.join prev rc | None -> prev)
      | None -> None
    end
    else None
  in
  Vec.push ls.acq_memo memo;
  let old = ls.fp_mo in
  Vec.push ls.fp_mo_hist old;
  let nw = h_int (h_int old a.tid) a.seq in
  ls.fp_mo <- nw;
  t.fp <- t.fp lxor old lxor nw

let push_read ls (a : Action.t) idx =
  Vec.push ls.reads (a, idx);
  Rf_kernel.on_read ls.rfk ~tid:a.tid ~seq:a.seq ~idx

(* hb(a, b) where [b] may be a not-yet-committed action of a thread whose
   current clock is [clock_b]. *)
let hb_clock clock_b (a : Action.t) = Clock.covers clock_b ~tid:a.tid ~seq:a.seq

let happens_before t a b =
  let a = action t a and b = action t b in
  Action.happens_before a b

let hb_or_sc t a b =
  if a = b then false
  else
    let aa = action t a and ab = action t b in
    Action.happens_before aa ab
    || (Action.is_seq_cst aa && Action.is_seq_cst ab && aa.id < ab.id)

let last_write t loc =
  match find_loc t loc with
  | Some ls when not (Vec.is_empty ls.stores) -> Some (Vec.last ls.stores)
  | _ -> None

(* Release-sequence walk (C++11 1.10p7, plus the hypothetical release
   sequences of 29.8): the clock acquired by a read of [stores.(rf_index)].
   A head candidate at index [i] is valid when every later chain element up
   to [rf_index] is an RMW or a store by the head's own thread. The walk
   tracks the (at most two relevant) distinct non-RMW tids seen so far in
   two ints, and its result — a pure function of the store prefix — is
   memoized per index in [ls.acq_memo], so across an arena session each
   index is walked once, not once per read. *)
let acquired_clock (ls : loc_state) rf_index =
  match Vec.get ls.acq_memo rf_index with
  | Some c -> c
  | None ->
    (* f1/f2: distinct tids of non-RMW chain elements above the current
       position (-1 = unset). Two distinct foreign tids invalidate every
       lower head, ending the walk. *)
    let rec walk i f1 f2 acc =
      if i < 0 then acc
      else begin
        let w = Vec.get ls.stores i in
        let valid = f1 < 0 || (f2 < 0 && f1 = w.Action.tid) in
        let acc =
          if valid then
            match w.Action.release_clock with
            | Some rc -> Clock.join acc rc
            | None -> acc
          else acc
        in
        let f1, f2 =
          if w.Action.kind = Action.Rmw || w.Action.tid = f1 || w.Action.tid = f2 then (f1, f2)
          else if f1 < 0 then (w.Action.tid, f2)
          else (f1, w.Action.tid)
        in
        if f1 >= 0 && f2 >= 0 then acc else walk (i - 1) f1 f2 acc
      end
    in
    let c = walk rf_index (-1) (-1) Clock.empty in
    Vec.set ls.acq_memo rf_index (Some c);
    c

(* A poison write models the pristine contents of uninitialized malloc'd
   memory: reads that are not forced past it observe garbage, which is
   reported as an uninitialized load. *)
let is_poison (a : Action.t) = Action.is_write a && a.written_value = None

(* Race detection: conflicting accesses (same location, at least one write,
   at least one non-atomic, different threads) unordered by hb. The new
   action [a] commits last, so only hb(prev, a) needs checking. Races need
   a non-atomic party, so for atomic accesses the scans are gated on the
   location having non-atomic accesses at all — on atomics-only locations
   (the common case) the check is O(1). *)
let race_problems (ls : loc_state) (a : Action.t) =
  let races = ref [] in
  let check (prev : Action.t) =
    if prev.tid <> a.tid && (not (is_poison prev)) && not (hb_clock a.clock prev) then
      races := Data_race { first = prev; second = a } :: !races
  in
  let a_is_na = Action.is_non_atomic a in
  (* against previous writes: conflict whenever one side is non-atomic *)
  if a_is_na then Vec.iter (fun (w : Action.t) -> check w) ls.stores
  else if ls.na_stores > 0 then
    Vec.iter (fun (w : Action.t) -> if Action.is_non_atomic w then check w) ls.stores;
  if Action.is_write a then begin
    (* against previous reads *)
    if a_is_na then Vec.iter (fun ((r : Action.t), _) -> check r) ls.reads;
    Vec.iter (fun (r : Action.t) -> check r) ls.na_reads
  end;
  !races

let store_index t (w : Action.t) =
  let i = Vec.get t.mo_idx w.Action.id in
  if i < 0 then invalid_arg "store_index: not a store of this location" else i

(* Smallest modification-order index a new load by [tid] may read,
   combining per-location coherence with the seq_cst rules (see .mli).

   Reference implementation: rescans the full store and read lists per
   query. Kept verbatim as the oracle for the differential tests of the
   incremental version below. *)
let min_readable_index_ref t ~tid ~mo (ls : loc_state) =
  let ts = thread t tid in
  let n = Vec.length ls.stores in
  let min_idx = ref 0 in
  let raise_to i = if i > !min_idx then min_idx := i in
  (* CoWR/CoRW: newest hb-visible write *)
  (try
     for i = n - 1 downto 0 do
       if hb_clock ts.clock (Vec.get ls.stores i) then begin
         raise_to i;
         raise Exit
       end
     done
   with Exit -> ());
  (* CoRR: newest mo index observed by an hb-prior read *)
  Vec.iter (fun (r, j) -> if hb_clock ts.clock r then raise_to j) ls.reads;
  let latest_sc_fence = match ts.sc_fences with (_, id) :: _ -> Some id | [] -> None in
  let fence_after_store ?bound (w : Action.t) =
    let fences = (thread t w.tid).sc_fences in
    List.exists
      (fun (seq, id) ->
        seq > w.Action.seq && match bound with Some b -> id < b | None -> true)
      fences
  in
  (* seq_cst load: at least the newest seq_cst store (29.3p3) *)
  if Memory_order.is_seq_cst mo then begin
    (try
       for i = n - 1 downto 0 do
         if Action.is_seq_cst (Vec.get ls.stores i) then begin
           raise_to i;
           raise Exit
         end
       done
     with Exit -> ());
    (* store sequenced before a seq_cst fence, seq_cst load (29.3p6) *)
    try
      for i = n - 1 downto 0 do
        if fence_after_store (Vec.get ls.stores i) then begin
          raise_to i;
          raise Exit
        end
      done
    with Exit -> ()
  end;
  (match latest_sc_fence with
  | None -> ()
  | Some fence_id ->
    (* seq_cst fence sequenced before the load (29.3p5): newest seq_cst
       store committed before that fence *)
    (try
       for i = n - 1 downto 0 do
         let w = Vec.get ls.stores i in
         if Action.is_seq_cst w && w.Action.id < fence_id then begin
           raise_to i;
           raise Exit
         end
       done
     with Exit -> ());
    (* fence-to-fence (29.3p7): store before fence X, X before our fence *)
    try
      for i = n - 1 downto 0 do
        if fence_after_store ~bound:fence_id (Vec.get ls.stores i) then begin
          raise_to i;
          raise Exit
        end
      done
    with Exit -> ());
  !min_idx

(* Incremental version: every rule reduces to "newest store (or read)
   of thread [u] with seq below a bound", answered by binary search on
   the kernel's per-(location, thread) monotone columns —
   O(threads * log stores) per query instead of O(stores + reads).
   This is the full-rule path; it stays correct with live seq_cst
   fences, which the memoized fast path below does not handle. *)
let min_readable_index t ~tid ~mo (ls : loc_state) =
  let ts = thread t tid in
  let k = ls.rfk in
  let min_idx = ref 0 in
  let raise_to i = if i > !min_idx then min_idx := i in
  let ntl = Array.length k.Rf_kernel.per_tid in
  (* CoWR/CoRW + CoRR: newest hb-visible write, and the newest mo index
     observed by an hb-visible read, per committing thread *)
  for u = 0 to ntl - 1 do
    match k.Rf_kernel.per_tid.(u) with
    | None -> ()
    | Some tl ->
      let bound = Clock.get ts.clock u in
      if bound > 0 then begin
        (match Rf_kernel.bsearch_le tl.Rf_kernel.w_seq bound with
        | -1 -> ()
        | j -> raise_to (Vec.get tl.Rf_kernel.w_idx j));
        match Rf_kernel.bsearch_le tl.Rf_kernel.r_seq bound with
        | -1 -> ()
        | j -> raise_to (Vec.get tl.Rf_kernel.r_idx j)
      end
  done;
  let nthreads = Array.length t.threads in
  (* seq_cst load: at least the newest seq_cst store (29.3p3), and the
     newest store sequenced before any seq_cst fence (29.3p6) *)
  if Memory_order.is_seq_cst mo then begin
    if not (Vec.is_empty k.Rf_kernel.sc_idx) then raise_to (Vec.last k.Rf_kernel.sc_idx);
    for u = 0 to ntl - 1 do
      match k.Rf_kernel.per_tid.(u) with
      | None -> ()
      | Some tl when u < nthreads -> (
        match t.threads.(u).sc_fences with
        | [] -> ()
        | (fence_seq, _) :: _ -> (
          (* newest store by [u] sequenced before u's newest sc fence *)
          match Rf_kernel.bsearch_le tl.Rf_kernel.w_seq (fence_seq - 1) with
          | -1 -> ()
          | j -> raise_to (Vec.get tl.Rf_kernel.w_idx j)))
      | Some _ -> ()
    done
  end;
  (match ts.sc_fences with
  | [] -> ()
  | (_, fence_id) :: _ ->
    (* seq_cst fence sequenced before the load (29.3p5): newest seq_cst
       store committed before that fence *)
    (match Rf_kernel.bsearch_le k.Rf_kernel.sc_ids (fence_id - 1) with
    | -1 -> ()
    | j -> raise_to (Vec.get k.Rf_kernel.sc_idx j));
    (* fence-to-fence (29.3p7): store before fence X, X before our fence.
       Per thread, seq and commit id grow together along its fence list,
       so the newest fence with id < fence_id also has the largest seq. *)
    for u = 0 to ntl - 1 do
      match k.Rf_kernel.per_tid.(u) with
      | None -> ()
      | Some tl when u < nthreads -> (
        match List.find_opt (fun (_, id) -> id < fence_id) t.threads.(u).sc_fences with
        | None -> ()
        | Some (fence_seq, _) -> (
          match Rf_kernel.bsearch_le tl.Rf_kernel.w_seq (fence_seq - 1) with
          | -1 -> ()
          | j -> raise_to (Vec.get tl.Rf_kernel.w_idx j)))
      | Some _ -> ()
    done);
  !min_idx

(* Dispatching floor query: with the kernel enabled and no live seq_cst
   fence, every fence-mediated SC rule is vacuous and the floor
   decomposes into three O(1)-or-memoized parts — the reader's own
   column, the memoized foreign floor under its foreign-knowledge
   clock, and (for seq_cst loads) the newest seq_cst store. That
   computes the same value [min_readable_index] would; the differential
   tests and the kernel-on/off bench gate hold the two paths to bit
   identity. *)
let min_readable t ~tid ~mo (ls : loc_state) =
  let c = t.rfc in
  c.Rf_kernel.queries <- c.Rf_kernel.queries + 1;
  let min_idx =
    if t.use_kernel && t.sc_fence_live = 0 then begin
      let k = ls.rfk in
      let ts = thread t tid in
      let floor = max (Rf_kernel.own_floor k ~tid) (Rf_kernel.foreign_floor c k ~tid ~fclock:ts.fclock) in
      if Memory_order.is_seq_cst mo then max floor (Vec.last_or k.Rf_kernel.sc_idx 0)
      else floor
    end
    else min_readable_index t ~tid ~mo ls
  in
  (* every unit of floor is one store excluded before replay *)
  c.Rf_kernel.rejected <- c.Rf_kernel.rejected + min_idx;
  min_idx

let read_candidates_of min_readable t ~tid ~mo ~loc =
  let ls = loc_state t loc in
  let n = Vec.length ls.stores in
  if n = 0 then []
  else begin
    let min_idx = min_readable t ~tid ~mo ls in
    (* newest-first *)
    let rec collect i acc = if i > n - 1 then acc else collect (i + 1) (Vec.get ls.stores i :: acc) in
    collect min_idx []
  end

let read_candidates t ~tid ~mo ~loc = read_candidates_of min_readable t ~tid ~mo ~loc
let read_candidates_ref t ~tid ~mo ~loc = read_candidates_of min_readable_index_ref t ~tid ~mo ~loc

(* Allocation-free variant for the hot load path: the candidate set is a
   contiguous mo-order suffix, so its size plus newest-first indexing
   replace the materialized list. [read_window] gives the count;
   candidate [i] of [read_candidate] is the [i]-th newest store. *)
let read_window t ~tid ~mo ~loc =
  match find_loc t loc with
  | None -> 0
  | Some ls ->
    let n = Vec.length ls.stores in
    if n = 0 then 0 else n - min_readable t ~tid ~mo ls

let read_candidate t ~loc i =
  let ls = loc_state t loc in
  Vec.get ls.stores (Vec.length ls.stores - 1 - i)

let rmw_candidate t ~loc =
  match find_loc t loc with
  | Some ls when not (Vec.is_empty ls.stores) -> Some (Vec.last ls.stores)
  | _ -> None

(* [mk_action] takes the already-looked-up [ts]: every commit kernel
   resolves its thread state exactly once and threads it through, so the
   bounds-checked (and potentially growing) [thread] lookup is off the
   per-action path. *)
let mk_action t ts ~tid ~kind ~loc ~mo ?read_value ?written_value ?rf ?site ~clock ~release_clock () =
  let seq = ts.seq + 1 in
  let a =
    {
      Action.id = num_actions t;
      tid;
      seq;
      kind;
      loc;
      mo;
      read_value;
      written_value;
      rf;
      site;
      clock;
      release_clock;
    }
  in
  ts.seq <- seq;
  ts.clock <- clock;
  Vec.push t.actions a;
  Vec.push t.mo_idx (-1);
  Vec.push ts.chain a.Action.id;
  Vec.push ts.fp_hist ts.fp_chain;
  (* fingerprint: per-thread chain element — everything the action is,
     with reads-from as the canonical (tid, seq) of the source write *)
  let h = h_int (h_int 0x5fe1 tid) seq in
  let h = h_int (h_int h (kind_tag kind)) (kind_payload kind) in
  let h = h_int (h_int h loc) (mo_tag mo) in
  let h = h_opt (h_opt h read_value) written_value in
  let h =
    match rf with
    | None -> h_int h (-3)
    | Some src ->
      let w = Vec.get t.actions src in
      h_int (h_int h w.Action.tid) w.Action.seq
  in
  let old = ts.fp_chain in
  let nw = h_step old h in
  ts.fp_chain <- nw;
  t.fp <- t.fp lxor old lxor nw;
  if Memory_order.is_seq_cst mo then begin
    let old = t.fp_sc in
    Vec.push t.fp_sc_hist old;
    let nw = h_int (h_int old tid) seq in
    t.fp_sc <- nw;
    t.fp <- t.fp lxor old lxor nw
  end;
  t.n_commits <- t.n_commits + 1;
  a

let[@inline] base_clock ts tid = Clock.set ts.clock tid (ts.seq + 1)

(* Fold newly-acquired knowledge into the thread's foreign-knowledge
   clock, journaling only on a physical change ([Clock.join] returns its
   first argument untouched when the second adds nothing — the common
   spin-loop case). Called at exactly the sites where [clock] gains
   foreign entries, which keeps the invariant that [fclock] and [clock]
   agree outside the thread's own entry. *)
let join_fclock t ts tid c =
  let fc = Clock.join ts.fclock c in
  if fc != ts.fclock then begin
    Vec.push t.journal (J_fclock (tid, ts.fclock));
    ts.fclock <- fc
  end

(* ------------------------------------------------------------------ *)
(* Monomorphic commit kernels                                          *)

(* The read and write halves of a committing action, specialized per
   memory-order class and shared between [commit_load]/[commit_rmw] and
   [commit_store]/[commit_rmw] respectively. The relaxed-class read
   kernel only feeds the pending-acquire accumulator (29.8p3); the
   acquire-class kernel additionally publishes the acquired clock into
   the reader's clock and foreign-knowledge clock. Every kernel journals
   only on a physical change: with packed clocks a join that adds
   nothing returns (a value [==] to) its first operand, so spin-loop
   re-reads of the same store touch neither the journal nor the heap. *)

let[@inline] read_half_pending t ts tid acquired =
  let pending = Clock.join ts.pending_acquire acquired in
  if pending != ts.pending_acquire then begin
    Vec.push t.journal (J_pending (tid, ts.pending_acquire));
    ts.pending_acquire <- pending
  end

let[@inline] read_half_relaxed t ts tid base acquired =
  read_half_pending t ts tid acquired;
  base

let[@inline] read_half_acquire t ts tid base acquired =
  join_fclock t ts tid acquired;
  read_half_pending t ts tid acquired;
  Clock.join base acquired

(* Write half: the release clock carried by a new store — its own clock
   for release-class writes, the clock of the thread's newest release
   fence otherwise (29.8p4), [None] when neither applies. Reads straight
   off the hoisted thread state; no lookup, no allocation. *)
let[@inline] write_release_clock ts ~mo ~clock =
  if Memory_order.is_release mo then Some clock else ts.release_fence

let commit_load t ~tid ~mo ~loc ~rf ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  let base = base_clock ts tid in
  match rf with
  | None ->
    let a =
      mk_action t ts ~tid ~kind:Action.Load ~loc ~mo ~read_value:0 ?site ~clock:base
        ~release_clock:None ()
    in
    (a, Uninitialized_load a :: race_problems ls a)
  | Some (w : Action.t) ->
    let idx = store_index t w in
    let acquired = acquired_clock ls idx in
    let clock =
      if Memory_order.is_acquire mo then read_half_acquire t ts tid base acquired
      else read_half_relaxed t ts tid base acquired
    in
    let read_value = match w.written_value with Some v -> v | None -> 0 in
    let a =
      mk_action t ts ~tid ~kind:Action.Load ~loc ~mo ~read_value ~rf:w.id ?site ~clock
        ~release_clock:None ()
    in
    push_read ls a idx;
    let problems = race_problems ls a in
    let problems = if is_poison w then Uninitialized_load a :: problems else problems in
    (a, problems)

let commit_na_load t ~tid ~loc ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  let base = base_clock ts tid in
  let n = Vec.length ls.stores in
  if n = 0 then begin
    let a =
      mk_action t ts ~tid ~kind:Action.Na_load ~loc ~mo:Memory_order.Relaxed ~read_value:0 ?site
        ~clock:base ~release_clock:None ()
    in
    (a, Uninitialized_load a :: race_problems ls a)
  end
  else begin
    let w = Vec.last ls.stores in
    let read_value = match w.Action.written_value with Some v -> v | None -> 0 in
    let a =
      mk_action t ts ~tid ~kind:Action.Na_load ~loc ~mo:Memory_order.Relaxed ~read_value
        ~rf:w.Action.id ?site ~clock:base ~release_clock:None ()
    in
    Vec.push ls.na_reads a;
    let problems = race_problems ls a in
    let problems = if is_poison w then Uninitialized_load a :: problems else problems in
    (a, problems)
  end

let commit_store t ~tid ~mo ~loc ~value ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  let clock = base_clock ts tid in
  let release_clock = write_release_clock ts ~mo ~clock in
  let a =
    mk_action t ts ~tid ~kind:Action.Store ~loc ~mo ~written_value:value ?site ~clock ~release_clock ()
  in
  push_store t ls a;
  (a, race_problems ls a)

let commit_na_store t ~tid ~loc ~value ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  let clock = base_clock ts tid in
  let a =
    mk_action t ts ~tid ~kind:Action.Na_store ~loc ~mo:Memory_order.Relaxed ~written_value:value ?site
      ~clock ~release_clock:None ()
  in
  push_store t ls a;
  (a, race_problems ls a)

let commit_rmw t ~tid ~mo ~loc ~value ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  if Vec.is_empty ls.stores then begin
    (* uninitialized location: like an uninitialized load, the read half
       observes garbage (reported as a problem, value 0) — but the write
       half still happens, so the RMW commits with no reads-from edge
       instead of crashing the run *)
    let clock = base_clock ts tid in
    let release_clock = write_release_clock ts ~mo ~clock in
    let a =
      mk_action t ts ~tid ~kind:Action.Rmw ~loc ~mo ~read_value:0 ~written_value:value ?site ~clock
        ~release_clock ()
    in
    push_store t ls a;
    (a, Uninitialized_load a :: race_problems ls a)
  end
  else begin
    let w = Vec.last ls.stores in
    let idx = Vec.length ls.stores - 1 in
    let base = base_clock ts tid in
    let acquired = acquired_clock ls idx in
    let clock =
      if Memory_order.is_acquire mo then read_half_acquire t ts tid base acquired
      else read_half_relaxed t ts tid base acquired
    in
    let release_clock = write_release_clock ts ~mo ~clock in
    let read_value = match w.Action.written_value with Some v -> v | None -> 0 in
    let a =
      mk_action t ts ~tid ~kind:Action.Rmw ~loc ~mo ~read_value ~written_value:value
        ~rf:w.Action.id ?site ~clock ~release_clock ()
    in
    push_read ls a idx;
    push_store t ls a;
    let problems = race_problems ls a in
    let problems = if is_poison w then Uninitialized_load a :: problems else problems in
    (a, problems)
  end

let commit_fence t ~tid ~mo =
  let ts = thread t tid in
  let base = base_clock ts tid in
  let clock =
    if Memory_order.is_acquire mo then begin
      join_fclock t ts tid ts.pending_acquire;
      Clock.join base ts.pending_acquire
    end
    else base
  in
  let a =
    mk_action t ts ~tid ~kind:Action.Fence ~loc:Action.no_loc ~mo ~clock ~release_clock:None ()
  in
  if Memory_order.is_release mo then begin
    Vec.push t.journal (J_release_fence (tid, ts.release_fence));
    ts.release_fence <- Some clock
  end;
  if Memory_order.is_seq_cst mo then begin
    ts.sc_fences <- (a.Action.seq, a.Action.id) :: ts.sc_fences;
    t.sc_fence_live <- t.sc_fence_live + 1
  end;
  a

let commit_create t ~tid ~child =
  let ts = thread t tid in
  let clock = base_clock ts tid in
  let a =
    mk_action t ts ~tid ~kind:(Action.Create child) ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock
      ~release_clock:None ()
  in
  let child_ts = thread t child in
  Vec.push t.journal (J_inherited (child, child_ts.inherited));
  child_ts.inherited <- clock;
  a

let commit_start t ~tid =
  let ts = thread t tid in
  join_fclock t ts tid ts.inherited;
  let clock = Clock.join (base_clock ts tid) ts.inherited in
  mk_action t ts ~tid ~kind:Action.Start ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock
    ~release_clock:None ()

let commit_finish t ~tid =
  let ts = thread t tid in
  let clock = base_clock ts tid in
  mk_action t ts ~tid ~kind:Action.Finish ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock
    ~release_clock:None ()

let commit_join t ~tid ~target =
  let ts = thread t tid in
  let target_clock = (thread t target).clock in
  join_fclock t ts tid target_clock;
  let clock = Clock.join (base_clock ts tid) target_clock in
  mk_action t ts ~tid ~kind:(Action.Join target) ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock
    ~release_clock:None ()

let commit_poison t ~tid ~loc =
  let ts = thread t tid in
  let ls = loc_state t loc in
  let clock = base_clock ts tid in
  let a =
    mk_action t ts ~tid ~kind:Action.Store ~loc ~mo:Memory_order.Relaxed ~site:"<alloc>" ~clock
      ~release_clock:None ()
  in
  push_store t ls a

let alloc t ~tid ~count ~init =
  let base = t.next_loc in
  Vec.push t.journal (J_next_loc base);
  t.next_loc <- t.next_loc + count;
  (match init with
  | None ->
    (* pristine malloc'd cells: a poison write per cell, so loads not
       forced past it observe uninitialized memory *)
    for i = 0 to count - 1 do
      commit_poison t ~tid ~loc:(base + i)
    done
  | Some v ->
    (* calloc-style zeroing: part of allocation, so it never races — model
       it as a relaxed atomic initialization *)
    for i = 0 to count - 1 do
      ignore (commit_store t ~tid ~mo:Memory_order.Relaxed ~loc:(base + i) ~value:v ~site:"<init>" ())
    done);
  base

(* ------------------------------------------------------------------ *)
(* Arena watermarks: mark / restore / copy                             *)

type mark = { m_nacts : int; m_jlen : int }

let mark t = { m_nacts = Vec.length t.actions; m_jlen = Vec.length t.journal }

(* Undo the newest committed action: pop every append-only structure it
   pushed and XOR the irreversible hash chains back using the recorded
   history values. Fields that commits overwrite (rather than append to)
   are restored separately by the journal walk in [restore]. *)
let undo_last t =
  let a = Vec.pop t.actions in
  ignore (Vec.pop t.mo_idx);
  let ts = t.threads.(a.Action.tid) in
  ignore (Vec.pop ts.chain);
  let prev_chain = Vec.pop ts.fp_hist in
  t.fp <- t.fp lxor ts.fp_chain lxor prev_chain;
  ts.fp_chain <- prev_chain;
  if Memory_order.is_seq_cst a.Action.mo then begin
    let prev_sc = Vec.pop t.fp_sc_hist in
    t.fp <- t.fp lxor t.fp_sc lxor prev_sc;
    t.fp_sc <- prev_sc
  end;
  ts.seq <- a.Action.seq - 1;
  ts.clock <-
    (if Vec.is_empty ts.chain then Clock.empty
     else (Vec.get t.actions (Vec.last ts.chain)).Action.clock);
  let undo_read ls =
    ignore (Vec.pop ls.reads);
    Rf_kernel.undo_read ls.rfk ~tid:a.Action.tid
  in
  let undo_store ls =
    ignore (Vec.pop ls.stores);
    Rf_kernel.undo_write ls.rfk ~tid:a.Action.tid ~sc:(Memory_order.is_seq_cst a.Action.mo);
    if a.Action.kind = Action.Na_store then ls.na_stores <- ls.na_stores - 1;
    ignore (Vec.pop ls.acq_memo);
    let prev_mo = Vec.pop ls.fp_mo_hist in
    t.fp <- t.fp lxor ls.fp_mo lxor prev_mo;
    ls.fp_mo <- prev_mo
  in
  match a.Action.kind with
  | Action.Load -> if a.Action.rf <> None then undo_read (loc_state t a.Action.loc)
  | Na_load ->
    if a.Action.rf <> None then ignore (Vec.pop (loc_state t a.Action.loc).na_reads)
  | Store | Na_store -> undo_store (loc_state t a.Action.loc)
  | Rmw ->
    (* [rf = None] is the uninitialized-RMW shape: only the write half
       was indexed on commit *)
    let ls = loc_state t a.Action.loc in
    if a.Action.rf <> None then undo_read ls;
    undo_store ls
  | Fence ->
    if Memory_order.is_seq_cst a.Action.mo then begin
      ts.sc_fences <- List.tl ts.sc_fences;
      t.sc_fence_live <- t.sc_fence_live - 1
    end
  | Create _ | Start | Finish | Join _ -> ()

let restore t m =
  while Vec.length t.actions > m.m_nacts do
    undo_last t
  done;
  while Vec.length t.journal > m.m_jlen do
    match Vec.pop t.journal with
    | J_pending (tid, c) -> t.threads.(tid).pending_acquire <- c
    | J_release_fence (tid, rf) -> t.threads.(tid).release_fence <- rf
    | J_inherited (tid, c) -> t.threads.(tid).inherited <- c
    | J_fclock (tid, c) -> t.threads.(tid).fclock <- c
    | J_next_loc n -> t.next_loc <- n
  done

let copy t =
  let copy_ts ts =
    {
      clock = ts.clock;
      seq = ts.seq;
      pending_acquire = ts.pending_acquire;
      release_fence = ts.release_fence;
      sc_fences = ts.sc_fences;
      inherited = ts.inherited;
      fclock = ts.fclock;
      fp_chain = ts.fp_chain;
      chain = Vec.copy ts.chain;
      fp_hist = Vec.copy ts.fp_hist;
    }
  in
  let copy_ls ls =
    {
      stores = Vec.copy ls.stores;
      reads = Vec.copy ls.reads;
      na_reads = Vec.copy ls.na_reads;
      rfk = Rf_kernel.copy_loc ls.rfk;
      na_stores = ls.na_stores;
      fp_mo = ls.fp_mo;
      fp_mo_hist = Vec.copy ls.fp_mo_hist;
      acq_memo = Vec.copy ls.acq_memo;
    }
  in
  let locs = Vec.create () in
  Vec.iter (fun ls -> Vec.push locs (Option.map copy_ls ls)) t.locs;
  {
    actions = Vec.copy t.actions;
    mo_idx = Vec.copy t.mo_idx;
    threads = Array.map copy_ts t.threads;
    locs;
    next_loc = t.next_loc;
    fp = t.fp;
    fp_sc = t.fp_sc;
    fp_sc_hist = Vec.copy t.fp_sc_hist;
    journal = Vec.copy t.journal;
    use_kernel = t.use_kernel;
    sc_fence_live = t.sc_fence_live;
    rfc = Rf_kernel.copy_counters t.rfc;
    n_commits = t.n_commits;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Vec.iter (fun a -> Format.fprintf ppf "%a@," Action.pp a) t.actions;
  Format.fprintf ppf "@]"
